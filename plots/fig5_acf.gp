# Empirical autocorrelation with the composite SRD+LRD fit
# (paper Figs 5-6).
set terminal pngcairo size 800,600
set output "plots/fig5_acf.png"
set xlabel "lag k"
set ylabel "autocorrelation"
set title "Empirical ACF and the composite knee fit"
set grid
set yrange [0:1]
plot "plots/data/fig5.dat" using 1:2 with points pt 6 ps 0.6 title "empirical", \
     "plots/data/fig6.dat" using 1:3 with lines lw 2 title "exp (SRD piece)", \
     "plots/data/fig6.dat" using 1:4 with lines lw 2 title "power law (LRD piece)"

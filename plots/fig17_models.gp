# Model comparison: SRD+LRD vs SRD-only vs LRD-only vs the trace
# (paper Fig 17).
set terminal pngcairo size 800,600
set output "plots/fig17_models.png"
set xlabel "normalized buffer size b"
set ylabel "log10 Pr(Q_k > b)"
set title "Dependence structure and overflow (uti 0.6)"
set grid
set key bottom left
plot "plots/data/fig17.dat" using 1:2 with linespoints lw 2 title "SRD+LRD (unified)", \
     "plots/data/fig17.dat" using 1:3 with linespoints lw 2 title "SRD only", \
     "plots/data/fig17.dat" using 1:4 with linespoints lw 2 title "LRD only (FGN)", \
     "plots/data/fig17.dat" using 1:5 with points pt 4 ps 1.5 title "empirical trace"

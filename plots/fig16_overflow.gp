# Overflow probability vs buffer size for four utilizations
# (paper Fig 16). The data file has four '## utilization' blocks,
# which gnuplot indexes 0..3 (blank-line separated).
set terminal pngcairo size 800,600
set output "plots/fig16_overflow.png"
set xlabel "normalized buffer size b"
set ylabel "log10 Pr(Q_k > b)"
set title "Overflow probability vs buffer (model = lines, trace = points)"
set grid
set key bottom left
plot for [i=0:3] "plots/data/fig16.dat" index i using 1:2 with linespoints lw 2 \
       title sprintf("model, uti %.1f", 0.2 + 0.2*i), \
     for [i=0:3] "plots/data/fig16.dat" index i using 1:3 with points pt 4 \
       title sprintf("trace, uti %.1f", 0.2 + 0.2*i)

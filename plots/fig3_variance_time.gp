# Variance-time plot (paper Fig 3).
set terminal pngcairo size 800,600
set output "plots/fig3_variance_time.png"
set xlabel "log10(m)"
set ylabel "log10(var(X^{(m)}))"
set title "Variance-time plot (paper: slope -0.223, H = 0.89)"
set grid
f(x) = a*x + b
fit f(x) "plots/data/fig3.dat" using 1:2 via a, b
plot "plots/data/fig3.dat" using 1:2 with points pt 7 title "aggregated variance", \
     f(x) with lines lw 2 title sprintf("fit: slope %.3f  (H = %.3f)", a, 1.0 + a/2.0)

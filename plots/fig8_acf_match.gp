# Final synthetic vs empirical autocorrelation (paper Fig 8).
set terminal pngcairo size 800,600
set output "plots/fig8_acf_match.png"
set xlabel "lag k"
set ylabel "autocorrelation"
set title "Empirical vs synthetic ACF after Step-4 compensation"
set grid
plot "plots/data/fig8.dat" using 1:2 with lines lw 2 title "empirical trace", \
     "plots/data/fig8.dat" using 1:3 with lines lw 2 title "synthetic model"

# Importance-sampling variance valley (paper Fig 14).
set terminal pngcairo size 800,600
set output "plots/fig14_valley.png"
set xlabel "background twisted mean m*"
set ylabel "normalized variance of the IS estimator"
set title "IS variance valley (paper: minimum at m* = 3.2)"
set logscale y
set grid
plot "plots/data/fig14.dat" using 1:3 with linespoints pt 7 lw 2 title "normalized variance"

(* Benchmark / reproduction harness.

   Regenerates every table and figure of the paper's evaluation:

     table1 fig1 .. fig17         the paper's artifacts
     abl-gen abl-knee abl-atten abl-trunc   design-choice ablations
     --perf                       Bechamel micro-benchmarks

   With no arguments, everything except --perf runs in order. A
   single id as argument runs just that experiment. Experiment sizes
   follow Ss_core.Defaults (SS_FULL=1 for paper-scale replication
   counts, SS_REPLICATIONS=n to override).

   Output is gnuplot-style: '#'-prefixed commentary, whitespace-
   separated data columns, one block per curve. EXPERIMENTS.md keys
   its paper-vs-measured table to these outputs. *)

module Rng = Ss_stats.Rng
module D = Ss_stats.Descriptive
module Histogram = Ss_stats.Histogram
module Empirical = Ss_stats.Empirical
module Quad = Ss_stats.Quadrature
module Reg = Ss_stats.Regression
module Acf = Ss_fractal.Acf
module Acf_fit = Ss_fractal.Acf_fit
module Hosking = Ss_fractal.Hosking
module DH = Ss_fractal.Davies_harte
module Paxson = Ss_fractal.Paxson
module Hurst = Ss_fractal.Hurst
module Transform = Ss_fractal.Transform
module Trace = Ss_video.Trace
module Frame = Ss_video.Frame
module Gop = Ss_video.Gop
module Mc = Ss_queueing.Mc
module Trace_sim = Ss_queueing.Trace_sim
module Is = Ss_fastsim.Is_estimator
module Valley = Ss_fastsim.Valley
module Model = Ss_core.Model
module Fit = Ss_core.Fit
module Generate = Ss_core.Generate
module Mpeg = Ss_core.Mpeg
module Report = Ss_core.Report
module Defaults = Ss_core.Defaults
module Pool = Ss_parallel.Pool

let pf fmt = Printf.printf fmt
let reps = Defaults.replications

(* Every float cell in a BENCH_*.json writer goes through [jf]:
   non-finite values (a relative half-width over zero hits, a ratio
   with an empty denominator) become JSON null instead of the bare
   nan/inf tokens %g would print, which strict parsers reject. *)
let jf = Ss_json.float_str

(* throughput-smoke variant selectors, set by the driver from
   trailing `--backend`/`--precision`/`--kernel` flags: CI runs the
   smoke gate once per synthesis variant. The default (hosking/exact)
   keeps the original bitwise gates; the paxson/relaxed/fft variants
   swap the cross-backend agreement checks for the statistical gates
   that define those tiers (sample-ACF and variance-time Hurst
   agreement — approximate synthesis has no bitwise contract to
   check). `--kernel` supersedes `--precision` exactly as it does on
   the vbrsim CLI. *)
let smoke_backend : [ `Hosking | `Paxson ] ref = ref `Hosking
let smoke_precision : [ `Exact | `Relaxed ] ref = ref `Exact
let smoke_kernel : Ss_mux.Source.kernel ref = ref `Exact

(* Machine/toolchain metadata (Machine_info is generated at build
   time from the compiler configuration), embedded in every
   BENCH_*.json so recorded numbers carry the configuration that
   produced them. *)
let machine_json () =
  Printf.sprintf
    "{\"cores\": %d, \"ocaml_version\": \"%s\", \"flambda\": %b, \"word_size\": %d, \
     \"architecture\": \"%s\", \"system\": \"%s\"}"
    (Domain.recommended_domain_count ())
    Machine_info.ocaml_version Machine_info.flambda Machine_info.word_size
    Machine_info.architecture Machine_info.system

(* ------------------------------------------------------------------ *)
(* Shared fixtures (lazy: each experiment forces only what it needs)  *)
(* ------------------------------------------------------------------ *)

let intra = lazy (Defaults.reference_trace_intra ())
let ibp = lazy (Defaults.reference_trace_ibp ())

let fitted = lazy (Fit.fit_trace (Lazy.force intra))
let model () = fst (Lazy.force fitted)
let diagnostics () = snd (Lazy.force fitted)
let mpeg = lazy (Mpeg.fit (Lazy.force ibp))

(* A fresh master stream per experiment so experiment order does not
   change results. *)
let rng_for id = Rng.create ~seed:(Defaults.seed + Hashtbl.hash id)

(* Shared domain pool, sized by SS_DOMAINS (1 or unset = fully
   sequential; every estimate is bit-identical either way). *)
let the_pool =
  lazy
    (let d = Pool.env_domains () in
     if d <= 1 then None else Some (Pool.create ~domains:d))

let pool () = Lazy.force the_pool

let print_points ~header pts =
  pf "# %s\n" header;
  List.iter (fun (x, y) -> pf "%.6g  %.6g\n" x y) pts

let print_fit name (f : Reg.fit) =
  pf "# %s: slope=%.6g intercept=%.6g r2=%.4f n=%d\n" name f.Reg.slope f.Reg.intercept
    f.Reg.r2 f.Reg.n

(* Solve for the background twist that gives the foreground a target
   positive drift, so IS paths cross the buffer around 60%% of the
   horizon. Heuristic in the spirit of the paper's Section 4 (they
   sweep; we sweep in fig14 and reuse this elsewhere). *)
let auto_twist ~arrival ~service ~buffer ~horizon =
  let target_rate = service +. (buffer /. (0.6 *. float_of_int horizon)) in
  let mean_at m = Quad.gaussian_expectation (fun z -> arrival 0 (z +. m)) in
  let lo = ref 0.0 and hi = ref 8.0 in
  if mean_at !hi < target_rate then !hi
  else begin
    for _ = 1 to 40 do
      let mid = (!lo +. !hi) /. 2.0 in
      if mean_at mid < target_rate then lo := mid else hi := mid
    done;
    (!lo +. !hi) /. 2.0
  end

(* ------------------------------------------------------------------ *)
(* Table 1                                                              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  pf "# table1: parameters of the reference (synthetic empirical) traces\n";
  pf "# paper: MPEG-1, 2h12m36s, 238626 frames, 30 fps, GOP IBBPBBPBBPBB\n";
  List.iter
    (fun (label, trace) ->
      let s = Trace.summarize trace in
      pf "## %s\n" label;
      pf "coder              scene-model rate simulator (MPEG-1-like)\n";
      pf "frames             %d\n" s.Trace.frames;
      pf "duration           %.0f s (%.1f min)\n" s.Trace.duration_s (s.Trace.duration_s /. 60.0);
      pf "frame rate         %.0f per second\n" trace.Trace.fps;
      pf "gop                %s\n" (Gop.to_string trace.Trace.gop);
      pf "mean bytes/frame   %.1f\n" s.Trace.mean_bytes;
      pf "peak bytes/frame   %.1f\n" s.Trace.peak_bytes;
      pf "std bytes/frame    %.1f\n" s.Trace.std_bytes;
      pf "mean rate          %.3f Mbit/s\n" (s.Trace.mean_rate_bps /. 1e6);
      pf "peak rate          %.3f Mbit/s\n" (s.Trace.peak_rate_bps /. 1e6);
      List.iter
        (fun (k, m) -> pf "mean %c bytes       %.1f\n" (Frame.to_char k) m)
        s.Trace.mean_by_kind)
    [ ("intraframe pass (Sections 3.1-3.2, 4)", Lazy.force intra);
      ("interframe I/B/P pass (Section 3.3)", Lazy.force ibp) ]

(* ------------------------------------------------------------------ *)
(* Figures 1-2: marginal distribution and transform                    *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  pf "# fig1: empirical marginal distribution (paper: long-tailed, bytes/frame)\n";
  let sizes = (Lazy.force intra).Trace.sizes in
  let h = Histogram.make ~bins:60 sizes in
  print_points ~header:"bytes/frame  frequency" (Histogram.to_points h)

let fig2 () =
  pf "# fig2: transform h(x) = F^-1(Phi(x)) for the reference marginal\n";
  let m = model () in
  let pts =
    List.init 49 (fun i ->
        let x = -6.0 +. (0.25 *. float_of_int i) in
        (x, Transform.apply1 m.Model.transform x))
  in
  print_points ~header:"x  h(x)" pts

(* ------------------------------------------------------------------ *)
(* Figures 3-4: Hurst estimation                                       *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  pf "# fig3: variance-time plot (paper: slope -0.223, H = 0.89)\n";
  let d = diagnostics () in
  let e = d.Fit.h_variance_time in
  print_points ~header:"log10(m)  log10(var(X^(m)))" e.Hurst.points;
  print_fit "least-squares" e.Hurst.fit;
  pf "# estimated H = %.3f\n" e.Hurst.h

let fig4 () =
  pf "# fig4: R/S pox diagram (paper: slope 0.929, H = 0.92)\n";
  let d = diagnostics () in
  let e = d.Fit.h_rs in
  print_points ~header:"log10(n)  log10(R/S)" e.Hurst.points;
  print_fit "least-squares" e.Hurst.fit;
  pf "# estimated H = %.3f\n" e.Hurst.h;
  pf "# adopted H = %.2f (combining fig3 and fig4, paper: 0.9)\n" d.Fit.h_adopted

(* ------------------------------------------------------------------ *)
(* Figures 5-8: autocorrelation modeling                               *)
(* ------------------------------------------------------------------ *)

let acf_pts ?(step = 5) sizes ~max_lag =
  let r = D.acf sizes ~max_lag in
  let rec go k acc = if k > max_lag then List.rev acc else go (k + step) ((float_of_int k, r.(k)) :: acc) in
  go 1 []

let fig5 () =
  pf "# fig5: empirical autocorrelation, lags 1..500 (paper: knee near lag 60-80)\n";
  print_points ~header:"lag  r(lag)" (acf_pts (Lazy.force intra).Trace.sizes ~max_lag:500)

let fig6 () =
  pf "# fig6: composite SRD+LRD fit of the autocorrelation\n";
  pf "# paper: r(k) = exp(-0.00565 k), k<60;  1.59 k^-0.2, k>=60\n";
  let d = diagnostics () in
  pf "# fitted: %s\n" (Format.asprintf "%a" Report.pp_params d.Fit.raw_fit);
  let f = d.Fit.raw_fit in
  pf "# lag  empirical  srd-curve  lrd-curve  composite\n";
  List.iter
    (fun (k, r) ->
      let kk = int_of_float k in
      pf "%4.0f  %.4f  %.4f  %.4f  %.4f\n" k r
        (exp (-.f.Acf_fit.lambda *. k))
        (Stdlib.min 1.0 (f.Acf_fit.l *. (k ** -.f.Acf_fit.beta)))
        (Acf_fit.eval f kk))
    (acf_pts (Lazy.force intra).Trace.sizes ~max_lag:500)

let fig7 () =
  pf "# fig7: attenuation of the autocorrelation through h (paper: a = 0.94)\n";
  let m = model () in
  let d = diagnostics () in
  let acf = Acf_fit.to_acf d.Fit.raw_fit in
  let n = 32_768 in
  let x = DH.generate (DH.plan ~acf ~n) (rng_for "fig7") in
  let y = Transform.apply m.Model.transform x in
  let rx = D.acf x ~max_lag:500 and ry = D.acf y ~max_lag:500 in
  pf "# lag  r_X  r_Y  ratio\n";
  let rec go k =
    if k <= 500 then begin
      let ratio = if abs_float rx.(k) > 1e-6 then ry.(k) /. rx.(k) else nan in
      pf "%4d  %.4f  %.4f  %.4f\n" k rx.(k) ry.(k) ratio;
      go (k + 10)
    end
  in
  go 10;
  pf "# attenuation (Gauss-Hermite quadrature) a = %.4f\n" (Transform.attenuation m.Model.transform);
  (* Measured as the paper's Step 3 does: ratio at large lags,
     averaged (here from the same path). *)
  let lags = List.init 10 (fun i -> 200 + (30 * i)) in
  let ratios =
    List.filter_map
      (fun k -> if abs_float rx.(k) > 1e-6 then Some (ry.(k) /. rx.(k)) else None)
      lags
  in
  let measured = List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios) in
  pf "# attenuation (measured at large lags)  a = %.4f\n" measured

let fig8 () =
  pf "# fig8: empirical vs final synthetic autocorrelation (after Step 4 compensation)\n";
  let m = model () in
  let sizes = (Lazy.force intra).Trace.sizes in
  let n = Array.length sizes in
  let synth = Generate.foreground m ~n Generate.Davies_harte (rng_for "fig8") in
  let re = D.acf sizes ~max_lag:500 and rs = D.acf synth ~max_lag:500 in
  pf "# lag  empirical  synthetic\n";
  let rec go k =
    if k <= 500 then begin
      pf "%4d  %.4f  %.4f\n" k re.(k) rs.(k);
      go (k + 5)
    end
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Figures 9-13: composite I/B/P model                                 *)
(* ------------------------------------------------------------------ *)

let composite_synth =
  lazy
    (let m = Lazy.force mpeg in
     Mpeg.generate m ~n:(Trace.length (Lazy.force ibp)) (rng_for "composite"))

let fig_composite_acf ~id ~lo ~hi () =
  pf "# %s: composite model vs empirical trace autocorrelation, lags %d..%d\n" id lo hi;
  let re = D.acf (Lazy.force ibp).Trace.sizes ~max_lag:hi in
  let rs = D.acf (Lazy.force composite_synth).Trace.sizes ~max_lag:hi in
  pf "# lag  empirical  synthetic\n";
  let rec go k =
    if k <= hi then begin
      pf "%4d  %.4f  %.4f\n" k re.(k) rs.(k);
      go (k + 1)
    end
  in
  go lo

let fig9 = fig_composite_acf ~id:"fig9" ~lo:1 ~hi:150
let fig10 = fig_composite_acf ~id:"fig10" ~lo:151 ~hi:300
let fig11 = fig_composite_acf ~id:"fig11" ~lo:301 ~hi:490

let fig12 () =
  pf "# fig12: marginal histograms, composite model vs empirical trace\n";
  let emp = (Lazy.force ibp).Trace.sizes in
  let synth = (Lazy.force composite_synth).Trace.sizes in
  let hi = D.quantile emp 0.999 in
  let h_emp = Histogram.make ~bins:50 ~range:(0.0, hi) emp in
  let h_syn = Histogram.make ~bins:50 ~range:(0.0, hi) synth in
  pf "# bytes/frame  empirical-freq  synthetic-freq\n";
  List.iter2
    (fun (x, fe) (_, fs) -> pf "%8.1f  %.5f  %.5f\n" x fe fs)
    (Histogram.to_points h_emp) (Histogram.to_points h_syn)

let fig13 () =
  pf "# fig13: Q-Q plot, composite model vs empirical trace\n";
  let emp = Empirical.of_data (Lazy.force ibp).Trace.sizes in
  let syn = Empirical.of_data (Lazy.force composite_synth).Trace.sizes in
  print_points ~header:"empirical-quantile  synthetic-quantile" (Empirical.qq emp syn ~n:40)

(* ------------------------------------------------------------------ *)
(* Figures 14-17: queueing and importance sampling                     *)
(* ------------------------------------------------------------------ *)

let fig14 () =
  pf "# fig14: IS normalized variance vs twisted mean m*\n";
  pf "# paper: k=500, uti=0.2, b=25 (normalized), 1000 replications; valley at m*=3.2,\n";
  pf "#        variance reduction ~1000x\n";
  let m = model () in
  let mean = m.Model.mean in
  let table = Generate.table m ~n:500 in
  let arrival = Generate.arrival_fn m in
  let config ~twist =
    Is.make_config ~table ~arrival ~service:(mean /. 0.2) ~buffer:(25.0 *. mean)
      ~horizon:500 ~twist ()
  in
  let twists = List.init 10 (fun i -> 0.5 *. float_of_int (i + 1)) in
  let points = Valley.sweep ?pool:(pool ()) ~config ~twists ~replications:reps (rng_for "fig14") in
  pf "# m*  p  normalized-variance  hits/%d\n" reps;
  List.iter
    (fun p ->
      pf "%4.1f  %.4g  %.4g  %d\n" p.Valley.twist p.Valley.estimate.Mc.p
        p.Valley.estimate.Mc.normalized_variance p.Valley.estimate.Mc.hits)
    points;
  let best = Valley.best points in
  pf "# best twist m* = %.1f (paper: 3.2)\n" best.Valley.twist;
  (* Variance reduction vs plain MC: a Bernoulli(p) indicator has
     normalized variance (1-p)/p. *)
  let p = best.Valley.estimate.Mc.p in
  if p > 0.0 then
    pf "# variance reduction vs plain MC: %.0fx (paper: ~1000x)\n"
      ((1.0 -. p) /. p /. best.Valley.estimate.Mc.normalized_variance)

let fig15 () =
  pf "# fig15: transient overflow probability, empty vs full initial buffer\n";
  pf "# paper: uti=0.4, b=200 (normalized), 1000 replications, k up to 2000\n";
  let m = model () in
  let mean = m.Model.mean in
  let horizon_max = 2000 in
  let table = Generate.table m ~n:horizon_max in
  let arrival = Generate.arrival_fn m in
  let service = mean /. 0.4 in
  let buffer = 200.0 *. mean in
  pf "# k  log10(p)-empty  log10(p)-full\n";
  let rng = rng_for "fig15" in
  List.iter
    (fun k ->
      let twist = auto_twist ~arrival ~service ~buffer ~horizon:k in
      let run full_start =
        let cfg =
          Is.make_config ~table ~arrival ~service ~buffer ~horizon:k ~twist ~full_start ()
        in
        (Is.estimate ?pool:(pool ()) cfg ~replications:reps (Rng.split rng)).Mc.p
      in
      let p_empty = run false and p_full = run true in
      let l p = if p > 0.0 then log10 p else nan in
      pf "%5d  %7.3f  %7.3f\n" k (l p_empty) (l p_full))
    [ 100; 200; 400; 600; 800; 1000; 1200; 1400; 1600; 1800; 2000 ]

let utilizations = [ 0.2; 0.4; 0.6; 0.8 ]
let fig16_buffers = [ 10.0; 25.0; 50.0; 100.0; 150.0; 200.0; 250.0 ]

let overflow_is model_ ~utilization ~buffer_norm ~rng =
  let mean = model_.Model.mean in
  let horizon = Stdlib.max 100 (int_of_float (10.0 *. buffer_norm)) in
  let table = Generate.table model_ ~n:2500 in
  let arrival = Generate.arrival_fn model_ in
  let service = mean /. utilization in
  let buffer = buffer_norm *. mean in
  let twist = auto_twist ~arrival ~service ~buffer ~horizon in
  let cfg = Is.make_config ~table ~arrival ~service ~buffer ~horizon ~twist () in
  Is.estimate ?pool:(pool ()) cfg ~replications:reps rng

let fig16 () =
  pf "# fig16: overflow probability vs normalized buffer size, model vs trace\n";
  pf "# paper: k=10b, 1000 replications; trace curves from one long run\n";
  let m = model () in
  let sizes = (Lazy.force intra).Trace.sizes in
  let rng = rng_for "fig16" in
  let first = ref true in
  List.iter
    (fun uti ->
      (* Two blank lines = a new gnuplot dataset (for `index`). *)
      if not !first then pf "\n\n";
      first := false;
      pf "## utilization %.1f\n" uti;
      let qp = Trace_sim.queue_path ~arrivals:sizes ~utilization:uti in
      pf "# b  log10(p)-model  log10(p)-trace\n";
      List.iter
        (fun b ->
          let e = overflow_is m ~utilization:uti ~buffer_norm:b ~rng:(Rng.split rng) in
          let p_trace =
            Trace_sim.overflow_fraction ~queue_path:qp
              ~buffer:(b *. D.mean sizes)
          in
          let l p = if p > 0.0 then log10 p else nan in
          pf "%5.0f  %7.3f  %7.3f\n" b (l e.Mc.p) (l p_trace))
        fig16_buffers)
    utilizations

let fig17 () =
  pf "# fig17: model comparison at uti=0.6 - SRD+LRD vs SRD-only vs LRD-only (FGN) vs trace\n";
  pf "# paper: SRD-only decays much faster at large buffers; FGN-only too low at small buffers\n";
  let m = model () in
  let d = diagnostics () in
  let variants =
    [
      ("srd+lrd", m);
      ("srd-only", Model.with_dependence m (Model.Srd_only d.Fit.raw_fit.Acf_fit.lambda));
      ("lrd-only", Model.with_dependence m (Model.Lrd_only m.Model.hurst));
    ]
  in
  let sizes = (Lazy.force intra).Trace.sizes in
  let qp = Trace_sim.queue_path ~arrivals:sizes ~utilization:0.6 in
  let rng = rng_for "fig17" in
  pf "# b  log10(p):srd+lrd  srd-only  lrd-only  trace\n";
  List.iter
    (fun b ->
      let l p = if p > 0.0 then log10 p else nan in
      let ps =
        List.map
          (fun (_, variant) ->
            l (overflow_is variant ~utilization:0.6 ~buffer_norm:b ~rng:(Rng.split rng)).Mc.p)
          variants
      in
      let p_trace = l (Trace_sim.overflow_fraction ~queue_path:qp ~buffer:(b *. D.mean sizes)) in
      match ps with
      | [ a; b'; c ] -> pf "%5.0f  %7.3f  %7.3f  %7.3f  %7.3f\n" b a b' c p_trace
      | _ -> assert false)
    fig16_buffers

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let acf_error ~acf sample ~max_lag =
  let r = D.acf sample ~max_lag in
  let s = ref 0.0 in
  for k = 1 to max_lag do
    let e = r.(k) -. acf.Acf.r k in
    s := !s +. (e *. e)
  done;
  sqrt (!s /. float_of_int max_lag)

let abl_gen () =
  pf "# abl-gen: generator comparison on FGN H=0.9, n=4096 (time per path, RMS ACF error to lag 50)\n";
  pf "# note: the error metric includes LRD realization noise; the truncated-AR\n";
  pf "# variant scores lower because it *underestimates* the long-range tail,\n";
  pf "# which also shrinks the variance of its sample ACF - see abl-trunc.\n";
  let acf = Acf.fgn ~h:0.9 in
  let n = 4096 in
  let rng = rng_for "abl-gen" in
  let table, t_table = time_it (fun () -> Hosking.Table.make ~acf ~n) in
  pf "# hosking table build: %.3f s (amortized across replications)\n" t_table;
  let paths = 8 in
  let bench name gen =
    let errs = ref 0.0 and time = ref 0.0 in
    for _ = 1 to paths do
      let x, t = time_it (fun () -> gen (Rng.split rng)) in
      errs := !errs +. acf_error ~acf x ~max_lag:50;
      time := !time +. t
    done;
    pf "%-18s  %8.4f s/path  rms-acf-err %.4f\n" name (!time /. float_of_int paths)
      (!errs /. float_of_int paths)
  in
  bench "hosking-table" (fun rng -> Hosking.generate table rng);
  bench "hosking-stream" (fun rng -> Hosking.generate_stream ~acf ~n rng);
  let plan = DH.plan ~acf ~n in
  bench "davies-harte" (fun rng -> DH.generate plan rng);
  bench "truncated-ar(64)" (fun rng -> Hosking.generate_truncated ~acf ~n ~max_order:64 rng)

let abl_knee () =
  pf "# abl-knee: effect of the knee lag on queueing (uti=0.6, b=100, k=1000)\n";
  let sizes = (Lazy.force intra).Trace.sizes in
  let d = diagnostics () in
  let rng = rng_for "abl-knee" in
  let acf_points = d.Fit.acf_points in
  pf "# knee  lambda  l  log10(p)\n";
  List.iter
    (fun knee ->
      let f = Acf_fit.fit ~knee_candidates:[ knee ] ~fixed_beta:d.Fit.raw_fit.Acf_fit.beta acf_points in
      let transform = (model ()).Model.transform in
      let dependence = Model.Srd_lrd f in
      let m =
        {
          (model ()) with
          Model.dependence;
          background = Model.background_of_dependence ~transform dependence;
        }
      in
      let e = overflow_is m ~utilization:0.6 ~buffer_norm:100.0 ~rng:(Rng.split rng) in
      pf "%5d  %.5f  %.3f  %7.3f\n" knee f.Acf_fit.lambda f.Acf_fit.l
        (if e.Mc.p > 0.0 then log10 e.Mc.p else nan))
    [ 20; 40; 60; 100; 150 ];
  ignore sizes

let abl_atten () =
  pf "# abl-atten: Step-4 compensation methods - paper Eq 14 (divide by a) vs exact Hermite inversion\n";
  let m = model () in
  let d = diagnostics () in
  let sizes = (Lazy.force intra).Trace.sizes in
  let n = Array.length sizes in
  let re = D.acf sizes ~max_lag:300 in
  let compare_method name acf_bg =
    match DH.plan ~acf:acf_bg ~n with
    | exception Invalid_argument msg -> pf "%-12s  NOT GENERATABLE (%s)\n" name msg
    | plan ->
      let synth = Transform.apply m.Model.transform (DH.generate plan (rng_for ("abl-atten-" ^ name))) in
      let rs = D.acf synth ~max_lag:300 in
      let s = ref 0.0 in
      for k = 1 to 300 do
        let e = rs.(k) -. re.(k) in
        s := !s +. (e *. e)
      done;
      pf "%-12s  rms ACF error vs empirical (lags 1-300): %.4f\n" name
        (sqrt (!s /. 300.0))
  in
  pf "# quadrature a = %.4f\n" d.Fit.attenuation;
  compare_method "eq14" (Acf_fit.to_acf d.Fit.compensated);
  compare_method "hermite" (Model.background_acf m);
  compare_method "none" (Acf_fit.to_acf d.Fit.raw_fit)

let abl_trunc () =
  pf "# abl-trunc: truncated-AR Hosking approximation (FGN H=0.9, n=8192)\n";
  let acf = Acf.fgn ~h:0.9 in
  let n = 8192 in
  let rng = rng_for "abl-trunc" in
  pf "# max_order  s/path  rms-acf-err(lag<=100)\n";
  List.iter
    (fun order ->
      let x, t = time_it (fun () -> Hosking.generate_truncated ~acf ~n ~max_order:order (Rng.split rng)) in
      pf "%6d  %8.4f  %.4f\n" order t (acf_error ~acf x ~max_lag:100))
    [ 8; 32; 128; 512 ];
  let x, t = time_it (fun () -> Hosking.generate_stream ~acf ~n (Rng.split rng)) in
  pf "# exact  %8.4f  %.4f\n" t (acf_error ~acf x ~max_lag:100)

let abl_hurst () =
  pf "# abl-hurst: estimator shoot-out on FGN paths with known H (n=32768)\n";
  pf "# true-H  variance-time  R/S  periodogram  whittle\n";
  List.iter
    (fun h ->
      let x =
        DH.generate (DH.plan ~acf:(Acf.fgn ~h) ~n:32_768)
          (rng_for (Printf.sprintf "abl-hurst-%g" h))
      in
      let vt = (Hurst.variance_time ?pool:(pool ()) x).Hurst.h in
      let rs = (Hurst.rs ?pool:(pool ()) x).Hurst.h in
      let pg = (Hurst.periodogram x).Hurst.h in
      let wh = (Ss_fractal.Whittle.estimate x).Ss_fractal.Whittle.h in
      pf "%6.2f  %8.3f  %8.3f  %8.3f  %8.3f\n" h vt rs pg wh)
    [ 0.6; 0.7; 0.8; 0.9 ];
  let sizes = (Lazy.force intra).Trace.sizes in
  let wh = (Ss_fractal.Whittle.estimate sizes).Ss_fractal.Whittle.h in
  pf "# reference trace: whittle H = %.3f (vs VT %.3f, R/S %.3f)\n" wh
    (diagnostics ()).Fit.h_variance_time.Hurst.h (diagnostics ()).Fit.h_rs.Hurst.h

let abl_farima () =
  pf "# abl-farima: FARIMA(1,d,0) baseline vs the paper's direct composite fit\n";
  pf "# (the paper's Section 1 argument: ARIMA(p,d,q) can carry SRD+LRD too,\n";
  pf "# but its parameters are awkward to pin to an empirical ACF)\n";
  let d = diagnostics () in
  let sizes = (Lazy.force intra).Trace.sizes in
  let re = D.acf sizes ~max_lag:300 in
  let frac_d = (model ()).Model.hurst -. 0.5 in
  (* Moment-match the single AR coefficient against the empirical ACF
     by grid search. *)
  let sse_of phi =
    let f = Ss_fractal.Farima_pq.create ~d:frac_d ~ar:(if phi = 0.0 then [||] else [| phi |]) ~ma:[||] in
    let acf = Ss_fractal.Farima_pq.acf f in
    let s = ref 0.0 in
    for k = 1 to 300 do
      let e = acf.Acf.r k -. re.(k) in
      s := !s +. (e *. e)
    done;
    (f, !s)
  in
  let candidates = List.init 10 (fun i -> 0.1 *. float_of_int i) in
  let best_phi, (best_f, best_sse) =
    List.fold_left
      (fun (bphi, (bf, bsse)) phi ->
        let f, sse = sse_of phi in
        if sse < bsse then (phi, (f, sse)) else (bphi, (bf, bsse)))
      (0.0, sse_of 0.0) candidates
  in
  let composite_sse =
    let acf = Acf_fit.to_acf d.Fit.raw_fit in
    let s = ref 0.0 in
    for k = 1 to 300 do
      let e = acf.Acf.r k -. re.(k) in
      s := !s +. (e *. e)
    done;
    !s
  in
  pf "composite fit         sse(1..300) = %.4f  [%s]\n" composite_sse
    (Format.asprintf "%a" Report.pp_params d.Fit.raw_fit);
  pf "farima(1,%.2f,0) phi=%.1f (grid)  sse(1..300) = %.4f\n" frac_d best_phi best_sse;
  (* The actual estimation route (Whittle d + Hannan-Rissanen ARMA) on
     the trace itself. *)
  let hr = Ss_fractal.Farima_fit.fit ~p:1 ~q:1 sizes in
  let hr_acf = Ss_fractal.Farima_pq.acf hr.Ss_fractal.Farima_fit.model in
  let hr_sse =
    let s = ref 0.0 in
    for k = 1 to 300 do
      let e = hr_acf.Acf.r k -. re.(k) in
      s := !s +. (e *. e)
    done;
    !s
  in
  pf "farima(1,d,1) Hannan-Rissanen: d=%.3f phi=%.3f theta=%.3f  sse(1..300) = %.4f\n"
    hr.Ss_fractal.Farima_fit.d
    hr.Ss_fractal.Farima_fit.ar.(0)
    hr.Ss_fractal.Farima_fit.ma.(0) hr_sse;
  pf "# (HR assumes a Gaussian ARMA; run directly on the heavy-tailed foreground\n";
  pf "# it badly overestimates the memory - precisely the estimation difficulty\n";
  pf "# the paper cites as motivation for fitting the ACF directly)\n";
  let facf = Ss_fractal.Farima_pq.acf best_f in
  pf "# lag  empirical  composite  farima-grid  farima-HR\n";
  List.iter
    (fun k ->
      pf "%4d  %.4f  %.4f  %.4f  %.4f\n" k re.(k) (Acf_fit.eval d.Fit.raw_fit k)
        (facf.Acf.r k) (hr_acf.Acf.r k))
    [ 1; 5; 10; 25; 50; 100; 200; 300 ]

let abl_trad () =
  pf "# abl-trad: traditional (Markovian/TES) baselines vs the self-similar model\n";
  pf "# (the Section-1 claim: exponential-ACF models cannot hold the ACF at long lags)\n";
  let sizes = (Lazy.force intra).Trace.sizes in
  let re = D.acf sizes ~max_lag:400 in
  let n = 65_536 in
  (* DAR(1) with rho matched to the empirical lag-1 autocorrelation. *)
  let dar = Ss_video.Dar.of_trace_marginal ~rho:re.(1) sizes in
  let x_dar = Ss_video.Dar.generate dar ~n (rng_for "abl-trad-dar") in
  let r_dar = D.acf x_dar ~max_lag:400 in
  (* TES with innovation bandwidth matched to the same lag-1 value
     (bisection on the analytic background ACF). *)
  let target = re.(1) in
  let hw =
    let lo = ref 0.001 and hi = ref 0.5 in
    for _ = 1 to 40 do
      let mid = (!lo +. !hi) /. 2.0 in
      if Ss_fractal.Tes.background_acf ~half_width:mid 1 > target then lo := mid else hi := mid
    done;
    (!lo +. !hi) /. 2.0
  in
  let tes =
    Ss_fractal.Tes.create ~half_width:hw
      ~dist:(Ss_stats.Dist.of_empirical (Empirical.of_data sizes))
      ()
  in
  let x_tes = Ss_fractal.Tes.generate tes ~n (rng_for "abl-trad-tes") in
  let r_tes = D.acf x_tes ~max_lag:400 in
  (* The unified model's synthetic trace. *)
  let x_ss = Generate.foreground (model ()) ~n Generate.Davies_harte (rng_for "abl-trad-ss") in
  let r_ss = D.acf x_ss ~max_lag:400 in
  pf "# dar rho = %.4f; tes half-width = %.4f (both matched to r(1) = %.4f)\n" re.(1) hw target;
  pf "# lag  empirical  unified  dar(1)  tes\n";
  List.iter
    (fun k -> pf "%4d  %.4f  %.4f  %.4f  %.4f\n" k re.(k) r_ss.(k) r_dar.(k) r_tes.(k))
    [ 1; 5; 10; 25; 50; 100; 200; 400 ];
  (* Queueing consequence at uti 0.6, b = 100 mean units. *)
  let frac arrivals =
    let qp = Trace_sim.queue_path ~arrivals ~utilization:0.6 in
    Trace_sim.overflow_fraction ~queue_path:qp ~buffer:(100.0 *. D.mean arrivals)
  in
  pf "# single-run Pr(Q > 100 mean units) at uti 0.6:\n";
  pf "# empirical %.4g | unified %.4g | dar %.4g | tes %.4g\n" (frac sizes) (frac x_ss)
    (frac x_dar) (frac x_tes)

let abl_marg () =
  pf "# abl-marg: marginal modeling - histogram inversion (the paper) vs\n";
  pf "# parametric Gamma/Pareto (Garrett-Willinger '94) vs lognormal\n";
  let sizes = (Lazy.force intra).Trace.sizes in
  let emp = Empirical.of_data sizes in
  let models =
    [
      ("histogram", Ss_stats.Dist.of_empirical emp);
      ("gamma/pareto", Ss_stats.Fit_dist.gamma_pareto_auto sizes);
      ( "lognormal",
        let mu, sigma = Ss_stats.Fit_dist.lognormal_mle sizes in
        Ss_stats.Dist.lognormal ~mu ~sigma );
      ( "gamma",
        let shape, scale = Ss_stats.Fit_dist.gamma_mle sizes in
        Ss_stats.Dist.gamma ~shape ~scale );
    ]
  in
  pf "# model  KS-vs-data  log-likelihood/n  q(0.99)  q(0.9999)\n";
  List.iter
    (fun (name, dist) ->
      let rng = rng_for ("abl-marg-" ^ name) in
      let sample = Array.init 32_768 (fun _ -> dist.Ss_stats.Dist.sample rng) in
      let ks = Empirical.ks_distance emp (Empirical.of_data sample) in
      let ll =
        Ss_stats.Fit_dist.log_likelihood dist sizes /. float_of_int (Array.length sizes)
      in
      pf "%-14s  %.4f  %10.4f  %9.0f  %9.0f\n" name ks ll
        (dist.Ss_stats.Dist.quantile 0.99)
        (dist.Ss_stats.Dist.quantile 0.9999))
    models;
  pf "# (data quantiles: q(0.99) = %.0f, q(0.9999) = %.0f)\n"
    (Empirical.quantile emp 0.99) (Empirical.quantile emp 0.9999)

let abl_mux () =
  pf "# abl-mux: statistical multiplexing of N independent model sources\n";
  pf "# (total utilization held at 0.7; buffer normalized by the *aggregate* mean)\n";
  let m = model () in
  let n_slots = 65_536 in
  let rng = rng_for "abl-mux" in
  pf "# sources  peak/mean  Pr(Q > 20)  Pr(Q > 100)\n";
  List.iter
    (fun sources ->
      let agg =
        Ss_queueing.Workload.superpose_gen
          (fun sub -> Generate.foreground m ~n:n_slots Generate.Davies_harte sub)
          ~sources (Rng.split rng)
      in
      let qp = Trace_sim.queue_path ~arrivals:agg ~utilization:0.7 in
      let frac b = Trace_sim.overflow_fraction ~queue_path:qp ~buffer:(b *. D.mean agg) in
      pf "%8d  %9.2f  %10.4g  %11.4g\n" sources
        (Ss_queueing.Workload.peak_to_mean agg)
        (frac 20.0) (frac 100.0))
    [ 1; 4; 16 ]

let mux_gain () =
  pf "# mux-gain: streaming multiplexer (lib/mux) - per-source overflow vs number of\n";
  pf "# sources at fixed per-source utilization, Norros FBM prediction overlaid\n";
  let m = model () in
  let u = 0.7 and slots = 32_768 and order = 256 in
  let mean = m.Model.mean in
  pf "# per-source utilization %.1f; total buffer = N * b * mean; %d slots, AR order %d\n"
    u slots order;
  let ns = [| 1; 2; 4; 8; 16 |] in
  (* One substream per N-cell, split in cell order on the caller, and
     each cell buffers its own output: the grid is bit-identical
     whether the cells run sequentially or as pool jobs, at any
     domain count. *)
  let subs = Rng.split_n (rng_for "mux-gain") (Array.length ns) in
  let cell idx =
    let n = ns.(idx) in
    let rng = subs.(idx) in
    let buf = Buffer.create 512 in
    let srcs =
      Array.init n (fun i ->
          Ss_mux.Source.of_model ~name:(Printf.sprintf "s%d" i) ~order m (Rng.split rng))
    in
    let service = float_of_int n *. mean /. u in
    let bs = [ 25.0; 50.0; 100.0 ] in
    let thresholds = List.map (fun b -> b *. mean *. float_of_int n) bs in
    let report = Ss_mux.Mux.run ~thresholds ~service ~slots srcs in
    let load = Array.to_list (Array.map Ss_mux.Admission.descr_of_source srcs) in
    List.iter2
      (fun b (thr, p) ->
        let norros = Ss_mux.Admission.predicted_overflow ~service ~buffer:thr load in
        let l x = if x > 0.0 then log10 x else nan in
        Printf.bprintf buf "%3d  %8.0f  %9.3f  %9.3f\n" n b (l p) (l norros))
      bs report.Ss_mux.Mux.overflow;
    Buffer.contents buf
  in
  pf "# N  b(per-source)  log10 Pr(Q>B) sim  log10 norros\n";
  let outputs =
    match pool () with
    | Some p when Pool.size p > 1 ->
      Pool.run p (Array.init (Array.length ns) (fun i () -> cell i))
    | _ -> Array.init (Array.length ns) cell
  in
  Array.iter print_string outputs;
  pf "# log overflow scales ~linearly in N (Norros: log p proportional to -N):\n";
  pf "# the same per-source buffer and utilization buy ever-rarer losses as\n";
  pf "# sources are added - the statistical multiplexing gain of Section 1.\n"

(* ------------------------------------------------------------------ *)
(* mux-is: importance sampling fills the rare mux-gain cells           *)
(* ------------------------------------------------------------------ *)

(* The large-N mux-gain cells (N >= 8, deep per-source buffers) record
   zero exceedances in the 32768-slot plain run — the events are below
   Monte-Carlo resolution. This experiment estimates the transient
   first-passage probability of the shared queue from empty within a
   10b-slot horizon via Ss_mux.Mux_is, with the per-source twist from
   the same drift heuristic as fig15 applied to the per-source share
   of service and buffer (so the twisted aggregate crosses around 60%
   of the horizon). Plain MC (twist 0) runs on the identical event at
   the identical replication budget to document its hit count. *)
let mux_is_cell ~n ~b ~order ~replications rng =
  let m = model () in
  let u = 0.7 in
  let mean = m.Model.mean in
  let service = float_of_int n *. mean /. u in
  let buffer = b *. mean *. float_of_int n in
  let slots = Stdlib.max 100 (int_of_float (10.0 *. b)) in
  let arrival = Generate.arrival_fn m in
  let twist = auto_twist ~arrival ~service:(mean /. u) ~buffer:(b *. mean) ~horizon:slots in
  let cfg twist =
    Ss_mux.Mux_is.make_config ~model:m ~sources:n ~order ~service ~buffer ~slots ~twist ()
  in
  let sub_is = Rng.split rng in
  let sub_mc = Rng.split rng in
  let e_is = Ss_mux.Mux_is.estimate ?pool:(pool ()) (cfg twist) ~replications sub_is in
  let e_mc = Ss_mux.Mux_is.estimate ?pool:(pool ()) (cfg 0.0) ~replications sub_mc in
  (twist, slots, e_is, e_mc)

let rel_halfwidth_95 (e : Mc.estimate) =
  if e.Mc.p > 0.0 then
    1.96 *. sqrt (e.Mc.variance /. float_of_int e.Mc.replications) /. e.Mc.p
  else nan

let mux_is () =
  pf "# mux-is: importance-sampled shared-buffer overflow for the mux-gain cells\n";
  pf "# plain MC leaves empty; event = first passage of the shared queue above\n";
  pf "# B = N*b*mean within k = 10b slots from empty (per-source utilization 0.7)\n";
  let cells = [ (8, 50.0); (8, 100.0); (16, 25.0); (16, 50.0); (16, 100.0) ] in
  let order = 256 in
  let subs = Rng.split_n (rng_for "mux-is") (List.length cells) in
  pf "#  N    b     k    m*   log10 p(IS)  hits(IS)   nvar  rel95  hits(MC, same budget)\n";
  let rows =
    List.mapi
      (fun i (n, b) ->
        (* The deepest cells get twice the budget: rarer events keep
           the relative half-width under 50% (plain MC still records
           nothing there). *)
        let replications = if n >= 16 then 2 * reps else reps in
        let twist, slots, e_is, e_mc =
          mux_is_cell ~n ~b ~order ~replications subs.(i)
        in
        let rel = rel_halfwidth_95 e_is in
        pf "%4d  %3.0f  %4d  %4.2f  %11.3f  %5d/%d  %6.1f  %5.2f  %d/%d\n" n b slots twist
          (if e_is.Mc.p > 0.0 then log10 e_is.Mc.p else nan)
          e_is.Mc.hits replications e_is.Mc.normalized_variance rel e_mc.Mc.hits replications;
        (n, b, slots, twist, replications, e_is, e_mc))
      cells
  in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "{\n  \"machine\": %s,\n  \"cells\": [\n" (machine_json ());
  let last = List.length rows - 1 in
  List.iteri
    (fun i (n, b, slots, twist, replications, e_is, e_mc) ->
      Printf.bprintf buf
        "    {\"sources\": %d, \"buffer_per_source\": %s, \"slots\": %d, \"twist\": %s, \
         \"replications\": %d, \"p_is\": %s, \"hits_is\": %d, \"nvar_is\": %s, \
         \"rel_halfwidth_95\": %s, \"p_mc\": %s, \"hits_mc\": %d}%s\n"
        n (jf b) slots
        (jf ~decimals:4 twist)
        replications (jf e_is.Mc.p) e_is.Mc.hits
        (jf e_is.Mc.normalized_variance)
        (jf ~decimals:4 (rel_halfwidth_95 e_is))
        (jf e_mc.Mc.p) e_mc.Mc.hits
        (if i = last then "" else ","))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_mux_is.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "# wrote BENCH_mux_is.json\n"

(* Seconds-scale CI gate: on a moderately-rare overflow both plain MC
   and IS record events, and the two estimates must agree within
   their joint 3-sigma band — a cheap end-to-end check that the
   streaming likelihood reweighting is unbiased. *)
let mux_is_smoke () =
  pf "# mux-is-smoke: IS vs plain MC on a moderately-rare mux overflow\n";
  let m = model () in
  let n = 4 and u = 0.7 and b = 35.0 and order = 64 in
  let mean = m.Model.mean in
  let service = float_of_int n *. mean /. u in
  let buffer = b *. mean *. float_of_int n in
  let slots = 250 in
  let twist = 0.3 in
  let cfg twist =
    Ss_mux.Mux_is.make_config ~model:m ~sources:n ~order ~service ~buffer ~slots ~twist ()
  in
  let rng = rng_for "mux-is-smoke" in
  let reps_is = 400 and reps_mc = 2000 in
  let e_is = Ss_mux.Mux_is.estimate ?pool:(pool ()) (cfg twist) ~replications:reps_is (Rng.split rng) in
  let e_mc = Ss_mux.Mux_is.estimate ?pool:(pool ()) (cfg 0.0) ~replications:reps_mc (Rng.split rng) in
  pf "# IS  m*=%.2f  p=%.4g  hits=%d/%d  nvar=%.3g\n" twist e_is.Mc.p e_is.Mc.hits reps_is
    e_is.Mc.normalized_variance;
  pf "# MC         p=%.4g  hits=%d/%d  nvar=%.3g\n" e_mc.Mc.p e_mc.Mc.hits reps_mc
    e_mc.Mc.normalized_variance;
  if e_is.Mc.hits = 0 then failwith "mux-is-smoke: IS recorded no events";
  if e_mc.Mc.hits = 0 then failwith "mux-is-smoke: MC recorded no events";
  let band =
    3.0
    *. sqrt
         ((e_is.Mc.variance /. float_of_int reps_is)
         +. (e_mc.Mc.variance /. float_of_int reps_mc))
  in
  let diff = abs_float (e_is.Mc.p -. e_mc.Mc.p) in
  pf "# |p_is - p_mc| = %.4g, joint 3-sigma band = %.4g\n" diff band;
  if diff > band then failwith "mux-is-smoke: IS and MC disagree beyond 3 sigma";
  pf "# agreement within 3 sigma\n"

(* ------------------------------------------------------------------ *)
(* police: fault injection and measurement-based policing              *)
(* ------------------------------------------------------------------ *)

(* Fresh-but-identical fixtures per run: every run rebuilds its
   sources from the same fixed seed, so the three scenarios (clean,
   faulted, faulted+policed) see bit-identical clean traffic and the
   only difference is the injected fault and the policer's
   sanctions. *)
let police_sources ~tag ~n ~order m =
  let sub = Rng.create ~seed:(Defaults.seed + Hashtbl.hash tag) in
  Array.init n (fun i ->
      Ss_mux.Source.of_model ~name:(Printf.sprintf "s%d" i) ~order m (Rng.split sub))

let police_fault_rng tag = Rng.create ~seed:(Defaults.seed + Hashtbl.hash (tag ^ "-fault"))

(* Smallest buffer whose Norros prediction for the aggregate is at or
   below epsilon (predicted_overflow is decreasing in the buffer). *)
let solve_norros_buffer ~service ~epsilon load =
  let pred b = Ss_mux.Admission.predicted_overflow ~service ~buffer:b load in
  let hi = ref 1.0 in
  while pred !hi > epsilon do hi := !hi *. 2.0 done;
  let lo = ref (!hi /. 2.0) in
  for _ = 1 to 60 do
    let mid = 0.5 *. (!lo +. !hi) in
    if pred mid > epsilon then lo := mid else hi := mid
  done;
  !hi

let police () =
  pf "# police: overflow protection from measurement-based policing under an\n";
  pf "# injected mean-drift fault (one of N sources ramps to drift_factor x mean)\n";
  let m = model () in
  let n = 8 and u = 0.7 and order = 128 and slots = 50_000 in
  let epsilon = 1e-2 in
  let fault_start = 10_000 and ramp = 1_000 and factor = 3.0 in
  let window = Ss_mux.Police.default.Ss_mux.Police.window in
  let mean = m.Model.mean in
  let service = float_of_int n *. mean /. u in
  let mk () = police_sources ~tag:"police-src" ~n ~order m in
  let load = Array.to_list (Array.map Ss_mux.Admission.descr_of_source (mk ())) in
  let b_norros = solve_norros_buffer ~service ~epsilon load in
  pf "# N=%d uti=%.1f order=%d slots=%d epsilon=%g; norros buffer for epsilon: %.0f\n" n u
    order slots epsilon b_norros;
  (* Provision the overflow threshold from a clean calibration run:
     the (1-epsilon) queue quantile, so the clean scenario sits at the
     admission target by construction and the Norros gap (the
     finite-horizon formula is asymptotic) does not contaminate the
     protection comparison. *)
  let calib = Ss_mux.Mux.run ?pool:(pool ()) ~quantiles:[ 1.0 -. epsilon ] ~service ~slots (mk ()) in
  let b = List.assoc (1.0 -. epsilon) calib.Ss_mux.Mux.queue_quantiles in
  pf "# threshold B = empirical %.2f-quantile of the clean run = %.0f (%.1f aggregate-mean units)\n"
    (1.0 -. epsilon) b
    (b /. (float_of_int n *. mean));
  let faults = [ (Some 0, [ Ss_mux.Fault.Drift { start = fault_start; ramp; factor } ]) ] in
  let run ~faulted ~policed =
    let srcs = mk () in
    let srcs =
      if faulted then Ss_mux.Fault.wrap_all ~rng:(police_fault_rng "police") faults srcs
      else srcs
    in
    let policer =
      if not policed then None
      else begin
        (* The CAC holds every source's declared contract, sized at
           the Norros buffer with headroom above the exact epsilon
           boundary; renegotiation of the 3x drifter re-runs this
           admission and is refused, driving the sanction ladder. *)
        let cac =
          Ss_mux.Admission.create ~service ~buffer:b_norros ~epsilon:(1.05 *. epsilon)
        in
        Array.iter
          (fun s ->
            match Ss_mux.Admission.try_admit cac (Ss_mux.Admission.descr_of_source s) with
            | Ss_mux.Admission.Admit _ -> ()
            | Ss_mux.Admission.Reject r -> failwith ("police: clean source rejected: " ^ r))
          srcs;
        Some
          (Ss_mux.Police.create ~cac
             (Array.map Ss_mux.Admission.descr_of_source srcs))
      end
    in
    let report =
      Ss_mux.Mux.run ?pool:(pool ()) ?police:policer ~thresholds:[ b ] ~service ~slots srcs
    in
    (List.assoc b report.Ss_mux.Mux.overflow, report, policer)
  in
  let p_clean, _, _ = run ~faulted:false ~policed:false in
  (* Control for the policer's false-positive cost: over 50k slots the
     honest LRD sources wander far enough from their declared
     contracts to collect sanctions of their own. *)
  let p_clean_policed, _, clean_policer = run ~faulted:false ~policed:true in
  let p_faulted, _, _ = run ~faulted:true ~policed:false in
  let p_policed, rep_policed, policer = run ~faulted:true ~policed:true in
  let policer = Option.get policer in
  pf "# scenario            Pr(q > B)\n";
  pf "clean/unpoliced       %.4g\n" p_clean;
  pf "clean/policed         %.4g   (%d incidents on honest sources)\n" p_clean_policed
    (Ss_mux.Police.incident_count (Option.get clean_policer));
  pf "drift/unpoliced       %.4g\n" p_faulted;
  pf "drift/policed         %.4g\n" p_policed;
  let detected = Ss_mux.Police.detected_at policer 0 in
  let latency = match detected with Some s -> s - fault_start | None -> -1 in
  (match detected with
  | Some s ->
    pf "# detection: fault at slot %d (ramp %d), first flag at slot %d - latency %d slots (%.1f windows)\n"
      fault_start ramp s latency
      (float_of_int latency /. float_of_int window)
  | None -> pf "# detection: drifter was never flagged\n");
  let incidents = Ss_mux.Police.incidents policer in
  pf "# incidents (%d):\n" (List.length incidents);
  List.iter (fun i -> pf "#   %s\n" (Format.asprintf "%a" Ss_mux.Police.pp_incident i)) incidents;
  let drifter = rep_policed.Ss_mux.Mux.per_source.(0) in
  pf "# drifter accounting: throttled %.4g, discarded %.4g, evicted %b\n"
    drifter.Ss_mux.Mux.throttled drifter.Ss_mux.Mux.discarded
    (Ss_mux.Police.evicted policer 0);
  let protected_ = p_policed <= 10.0 *. epsilon and exposed = p_faulted > epsilon in
  pf "# protection: policed %.4g %s 10*epsilon %.4g; unpoliced %.4g %s epsilon  =>  %s\n"
    p_policed
    (if protected_ then "<=" else ">")
    (10.0 *. epsilon) p_faulted
    (if exposed then ">" else "<=")
    (if protected_ && exposed then "PASS" else "FAIL");
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "{\n";
  Printf.bprintf buf "  \"machine\": %s,\n" (machine_json ());
  Printf.bprintf buf "  \"sources\": %d,\n  \"utilization\": %s,\n  \"slots\": %d,\n" n (jf u)
    slots;
  Printf.bprintf buf "  \"epsilon\": %s,\n  \"norros_buffer\": %s,\n  \"threshold\": %s,\n"
    (jf epsilon) (jf b_norros) (jf b);
  Printf.bprintf buf
    "  \"fault\": {\"source\": 0, \"start\": %d, \"ramp\": %d, \"factor\": %s},\n" fault_start
    ramp (jf factor);
  Printf.bprintf buf "  \"overflow_clean\": %s,\n" (jf p_clean);
  Printf.bprintf buf "  \"overflow_clean_policed\": %s,\n" (jf p_clean_policed);
  Printf.bprintf buf "  \"clean_policed_incidents\": %d,\n"
    (Ss_mux.Police.incident_count (Option.get clean_policer));
  Printf.bprintf buf "  \"overflow_faulted_unpoliced\": %s,\n" (jf p_faulted);
  Printf.bprintf buf "  \"overflow_faulted_policed\": %s,\n" (jf p_policed);
  Printf.bprintf buf "  \"detection_slot\": %s,\n"
    (match detected with Some s -> string_of_int s | None -> "null");
  Printf.bprintf buf "  \"detection_latency_slots\": %d,\n" latency;
  Printf.bprintf buf "  \"police_window\": %d,\n" window;
  Printf.bprintf buf "  \"drifter_evicted\": %b,\n" (Ss_mux.Police.evicted policer 0);
  Printf.bprintf buf "  \"incidents\": %d,\n" (List.length incidents);
  Printf.bprintf buf "  \"protected\": %b\n}\n" (protected_ && exposed);
  let oc = open_out "BENCH_police.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "# wrote BENCH_police.json\n"

(* Seconds-scale CI gate: (1) the policer flags an injected 2x mean
   drift within three windows of the fault start and applies a
   sanction; (2) a zero-fault run through the fault wrapper with
   policing on is bit-identical to the plain unwrapped path — the
   robustness layer costs nothing when nothing misbehaves. Runs under
   any SS_DOMAINS. *)
let police_smoke () =
  pf "# police-smoke: drift detection latency + zero-fault bit-identity\n";
  let m = model () in
  let n = 4 and order = 64 and slots = 6_000 in
  (* The fault starts two windows in: late enough that the policer is
     past warmup, early enough that no honest-noise renegotiation has
     re-anchored the drifter's contract to a high-water measurement
     (which would blunt a 2x drift and slow detection). *)
  let window = 256 and fault_start = 512 and factor = 2.0 in
  let config = { Ss_mux.Police.default with Ss_mux.Police.window; warmup_windows = 1 } in
  let mk () = police_sources ~tag:"police-smoke-src" ~n ~order m in
  let service = float_of_int n *. m.Model.mean /. 0.7 in
  let policer_for config srcs =
    Ss_mux.Police.create ~config (Array.map Ss_mux.Admission.descr_of_source srcs)
  in
  (* Zero-fault identity: the full wrapper + policing pipeline must
     cost nothing bit-wise when it sanctions nothing. The identity run
     monitors with generous bands — the heavy-tailed honest sources
     legitimately cross the default violation line in a small fraction
     of windows, and a throttle, however brief, alters traffic. *)
  let monitor =
    { config with Ss_mux.Police.mean_tol = 10.0; sigma2_tol = 1e3; hurst_tol = 10.0;
      violation_factor = 1e6 }
  in
  let plain = Ss_mux.Mux.run ?pool:(pool ()) ~service ~slots (mk ()) in
  let wrapped =
    let srcs = Ss_mux.Fault.wrap_all ~rng:(police_fault_rng "police-smoke") [] (mk ()) in
    Ss_mux.Mux.run ?pool:(pool ()) ~police:(policer_for monitor srcs) ~service ~slots srcs
  in
  let bits = Int64.bits_of_float in
  if bits plain.Ss_mux.Mux.mean_queue <> bits wrapped.Ss_mux.Mux.mean_queue
     || bits plain.Ss_mux.Mux.max_queue <> bits wrapped.Ss_mux.Mux.max_queue
  then failwith "police-smoke: zero-fault policed run is not bit-identical";
  Array.iteri
    (fun i (s : Ss_mux.Mux.source_report) ->
      let w = wrapped.Ss_mux.Mux.per_source.(i) in
      if bits s.Ss_mux.Mux.admitted <> bits w.Ss_mux.Mux.admitted then
        failwith "police-smoke: zero-fault per-source accounting differs")
    plain.Ss_mux.Mux.per_source;
  pf "# zero-fault: policed run bit-identical to plain (mean_queue %.6g)\n"
    plain.Ss_mux.Mux.mean_queue;
  (* Drift detection. *)
  let srcs =
    Ss_mux.Fault.wrap_all
      ~rng:(police_fault_rng "police-smoke")
      [ (Some 0, [ Ss_mux.Fault.Drift { start = fault_start; ramp = 0; factor } ]) ]
      (mk ())
  in
  let policer = policer_for config srcs in
  let _ = Ss_mux.Mux.run ?pool:(pool ()) ~police:policer ~service ~slots srcs in
  (* Honest LRD windows occasionally flag (benign drift) even before
     the fault, so detection is judged from the incident log: the
     first flag against the drifter at or after the fault start. *)
  let drifter = (Array.get srcs 0).Ss_mux.Source.name in
  let post_fault =
    List.filter
      (fun (i : Ss_mux.Police.incident) ->
        i.Ss_mux.Police.source = drifter && i.Ss_mux.Police.slot >= fault_start)
      (Ss_mux.Police.incidents policer)
  in
  (match
     List.find_opt
       (fun (i : Ss_mux.Police.incident) ->
         match i.Ss_mux.Police.event with Ss_mux.Police.Flagged _ -> true | _ -> false)
       post_fault
   with
  | None -> failwith "police-smoke: injected 2x drift was never flagged"
  | Some i ->
    let s = i.Ss_mux.Police.slot in
    pf "# drift at slot %d flagged at slot %d (%.1f windows)\n" fault_start s
      (float_of_int (s - fault_start) /. float_of_int window);
    if s > fault_start + (3 * window) then
      failwith "police-smoke: detection slower than 3 windows");
  let sanctioned =
    List.exists
      (fun (i : Ss_mux.Police.incident) ->
        match i.Ss_mux.Police.event with
        | Ss_mux.Police.Flagged _ -> false
        | Ss_mux.Police.Renegotiated _ | Ss_mux.Police.Demoted _
        | Ss_mux.Police.Throttle_set _ | Ss_mux.Police.Evicted ->
          true)
      post_fault
  in
  if not sanctioned then failwith "police-smoke: drifter was flagged but never sanctioned";
  pf "# drifter sanctioned (%d incidents total)\n"
    (Ss_mux.Police.incident_count policer)

let abl_slice () =
  pf "# abl-slice: frame spreading at slice granularity (15 slices/frame, Table 1)\n";
  pf "# per Ismail et al. [15]: spreading a frame over its interval smooths bursts\n";
  let trace = Lazy.force intra in
  let spread = Ss_video.Slices.spread_evenly trace in
  let front = Ss_video.Slices.front_loaded trace in
  pf "# buffer(mean-frames)  Pr(Q>b)-front-loaded  Pr(Q>b)-spread\n";
  let qp_f = Trace_sim.queue_path ~arrivals:front ~utilization:0.7 in
  let qp_s = Trace_sim.queue_path ~arrivals:spread ~utilization:0.7 in
  let mean_frame = D.mean trace.Trace.sizes in
  List.iter
    (fun b ->
      let buffer = b *. mean_frame in
      pf "%8.1f  %12.4g  %12.4g\n" b
        (Trace_sim.overflow_fraction ~queue_path:qp_f ~buffer)
        (Trace_sim.overflow_fraction ~queue_path:qp_s ~buffer))
    [ 0.5; 1.0; 2.0; 5.0; 20.0; 100.0 ]

let abl_norros () =
  pf "# abl-norros: Norros' FBM storage formula vs IS estimates (uti 0.4)\n";
  let m = model () in
  let mean = m.Model.mean in
  let h = m.Model.hurst in
  let sizes = (Lazy.force intra).Trace.sizes in
  (* Fit the FBM variance coefficient from the aggregate variance:
     Var(sum of t slots) ~ sigma2 t^{2H}. *)
  let sigma2 =
    let samples =
      List.map
        (fun t ->
          let agg = Ss_stats.Timeseries.aggregate sizes ~m:t in
          let v = D.variance agg *. (float_of_int t ** 2.0) in
          v /. (float_of_int t ** (2.0 *. h)))
        [ 16; 32; 64; 128 ]
    in
    List.fold_left ( +. ) 0.0 samples /. 4.0
  in
  pf "# fitted sigma2 = %.4g (per-slot marginal variance %.4g)\n" sigma2 (D.variance sizes);
  let service = mean /. 0.4 in
  let rng = rng_for "abl-norros" in
  pf "# b  log10(p)-IS  log10(p)-norros\n";
  List.iter
    (fun b ->
      let e = overflow_is m ~utilization:0.4 ~buffer_norm:b ~rng:(Rng.split rng) in
      let norros =
        Ss_queueing.Norros.log_overflow ~mean_rate:mean ~service ~hurst:h ~sigma2
          ~buffer:(b *. mean)
        /. log 10.0
      in
      pf "%5.0f  %7.3f  %7.3f\n" b
        (if e.Mc.p > 0.0 then log10 e.Mc.p else nan)
        norros)
    [ 25.0; 50.0; 100.0; 150.0; 200.0; 250.0 ]

let abl_ibp_queue () =
  pf "# abl-ibp-queue: queueing with the composite I/B/P source vs the intraframe\n";
  pf "# model at the same utilization (frame-level GOP burstiness effect)\n";
  let m = Lazy.force mpeg in
  let intra_m = model () in
  let rng = rng_for "abl-ibp-queue" in
  let horizon = 1500 in
  let table = Mpeg.background_table m ~n:horizon in
  let arrival = Mpeg.arrival_fn m in
  (* Composite mean from a short synthetic stretch. *)
  let sample = Mpeg.generate m ~n:12_000 (Rng.split rng) in
  let mean = D.mean sample.Trace.sizes in
  pf "# b  log10(p)-composite  log10(p)-intraframe-model\n";
  List.iter
    (fun b ->
      let service = mean /. 0.6 in
      let buffer = b *. mean in
      let twist = auto_twist ~arrival ~service ~buffer ~horizon in
      let cfg = Is.make_config ~table ~arrival ~service ~buffer ~horizon ~twist () in
      let e = Is.estimate ?pool:(pool ()) cfg ~replications:reps (Rng.split rng) in
      let e_intra =
        overflow_is intra_m ~utilization:0.6 ~buffer_norm:b ~rng:(Rng.split rng)
      in
      let l p = if p > 0.0 then log10 p else nan in
      pf "%5.0f  %7.3f  %7.3f\n" b (l e.Mc.p) (l e_intra.Mc.p))
    [ 10.0; 25.0; 50.0; 100.0; 150.0 ]

let abl_codec () =
  pf "# abl-codec: the pipeline on other VBR compression schemes (paper Section 1:\n";
  pf "# 'the approach itself can be readily applied to JPEG, MPEG-2, H.261')\n";
  let rng = rng_for "abl-codec" in
  List.iter
    (fun (label, gop_s) ->
      let gop = Gop.of_string gop_s in
      let cfg = { Ss_video.Scene_source.default with frames = 36_000; gop } in
      let reference = Ss_video.Scene_source.generate cfg (Rng.split rng) in
      let m = Mpeg.fit ~i_max_lag:60 reference in
      let synth = Mpeg.generate m ~n:36_000 (Rng.split rng) in
      let per_kind t k =
        let xs = Trace.of_kind t k in
        if Array.length xs = 0 then nan else D.mean xs
      in
      pf "## %s (gop %s)\n" label gop_s;
      pf "#   adopted H = %.2f, knee fit: %s\n" m.Mpeg.i_model.Model.hurst
        (Format.asprintf "%a" Report.pp_params m.Mpeg.i_diag.Fit.raw_fit);
      List.iter
        (fun kind ->
          let want = per_kind reference kind and got = per_kind synth kind in
          if not (Float.is_nan want) then
            pf "#   mean %c bytes: reference %.0f, synthetic %.0f\n" (Frame.to_char kind)
              want got)
        [ Frame.I; Frame.P; Frame.B ])
    [
      ("JPEG / intraframe MPEG-2", "I");
      ("H.261-like (no B frames)", "IPPPPPPPPPPP");
      ("MPEG-1 (the paper)", "IBBPBBPBBPBB");
    ]

let abl_twist () =
  pf "# abl-twist: constant vs time-varying twisting profiles (per [13]'s observation\n";
  pf "# that the optimal change of measure for first passage is time-dependent)\n";
  let m = model () in
  let mean = m.Model.mean in
  let horizon = 500 in
  let table = Generate.table m ~n:2500 in
  let arrival = Generate.arrival_fn m in
  let service = mean /. 0.2 in
  let buffer = 25.0 *. mean in
  let run name profile =
    let cfg =
      Is.make_config ~table ~arrival ~service ~buffer ~horizon ~twist:0.0 ~profile ()
    in
    let e = Is.estimate ?pool:(pool ()) cfg ~replications:reps (rng_for ("abl-twist-" ^ name)) in
    pf "%-22s  p=%.4g  nvar=%8.3g  hits=%d/%d\n" name e.Mc.p e.Mc.normalized_variance
      e.Mc.hits reps
  in
  let module Twist = Ss_fastsim.Twist in
  run "constant(3.0)" (Twist.constant 3.0);
  run "ramp(peak 4.5)" (Twist.ramp ~until:horizon ~peak:4.5);
  run "ramp(peak 6.0)" (Twist.ramp ~until:horizon ~peak:6.0);
  run "front(250, 3.5)" (Twist.front ~until:250 ~level:3.5);
  run "front(100, 5.0)" (Twist.front ~until:100 ~level:5.0)

let abl_iter () =
  pf "# abl-iter: the paper's 'systematically iterate until the SRD part matches'\n";
  pf "# fixed-point refinement of the background ACF on top of the one-shot fit\n";
  let m = model () in
  let d = diagnostics () in
  let target = List.filter (fun (k, _) -> k <= 100) d.Fit.acf_points in
  let _refined, history =
    Fit.refine ~rounds:5 ~paths:4 ~path_length:32_768 m ~target (rng_for "abl-iter")
  in
  pf "# round  rms-residual(lags 1..100)\n";
  List.iteri (fun i r -> pf "%6d  %.4f\n" i r) history;
  pf "# iteration stops when further boosting the background would leave the\n";
  pf "# positive-definite cone; the residual floor is dominated by the LRD\n";
  pf "# sample-ACF bias both the empirical and synthetic estimates share.\n"

let abl_batch () =
  pf "# abl-batch: batch-means diagnostics of single-run estimates (the paper's caveat)\n";
  let sizes = (Lazy.force intra).Trace.sizes in
  let qp = Trace_sim.queue_path ~arrivals:sizes ~utilization:0.6 in
  let ind =
    Ss_queueing.Batch_means.overflow_indicator ~queue_path:qp
      ~buffer:(50.0 *. D.mean sizes)
  in
  pf "# batches  mean  95%%-half-width  lag1-batch-correlation\n";
  List.iter
    (fun batches ->
      let r = Ss_queueing.Batch_means.analyze ~batches ind in
      pf "%8d  %.4f  %.4f  %+.3f\n" batches r.Ss_queueing.Batch_means.mean
        r.Ss_queueing.Batch_means.half_width r.Ss_queueing.Batch_means.lag1_batch_corr)
    [ 10; 30; 100 ];
  pf "# under LRD the batch correlation stays positive at every batch size,\n";
  pf "# so the nominal interval understates the true error - hence the paper's\n";
  pf "# reliance on independent replications for the synthetic curves.\n"

(* ------------------------------------------------------------------ *)
(* perf-parallel: domain-pool scaling                                   *)
(* ------------------------------------------------------------------ *)

(* Times the three pool-accelerated hot paths at 1/2/4 domains, checks
   every result is bit-identical to the 1-domain run, and writes the
   machine-readable BENCH_parallel.json artifact. All runs use the
   pooled code path (a 1-domain pool runs on the caller), so the
   identity check exercises the determinism contract, not just the
   sequential fallback. *)
let perf_parallel () =
  pf "# perf-parallel: domain-pool scaling (table build, IS replications, mux slot loop)\n";
  let cores = Domain.recommended_domain_count () in
  pf "# recommended_domain_count = %d (speedup > 1 needs > 1 core)\n" cores;
  let domain_counts = [ 1; 2; 4 ] in
  let results = ref [] in
  let t1 = Hashtbl.create 8 in
  let record name d secs identical =
    if d = 1 then Hashtbl.replace t1 name secs;
    let speedup = Hashtbl.find t1 name /. secs in
    results := (name, d, secs, identical, speedup) :: !results;
    pf "%-22s  domains=%d  %8.4f s  speedup %5.2fx  %s\n" name d secs speedup
      (if identical then "bit-identical" else "MISMATCH")
  in
  let with_domains d f =
    let p = Pool.create ~domains:d in
    Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)
  in
  (* 1. Hosking table construction: parallel Durbin-Levinson inner
     products. *)
  let acf = Acf.fgn ~h:0.9 in
  let table_sig t =
    let x = Hosking.generate t (Rng.create ~seed:97) in
    Array.fold_left (fun h v -> Hashtbl.hash (h, Int64.bits_of_float v)) 0 x
  in
  let table_ref = ref 0 in
  List.iter
    (fun d ->
      with_domains d (fun p ->
          let t, secs =
            time_it (fun () -> Hosking.Table.make_pooled ~pool:p ~par_cutoff:256 ~acf ~n:4096 ())
          in
          let sg = table_sig t in
          if d = 1 then table_ref := sg;
          record "hosking-table-4096" d secs (sg = !table_ref)))
    domain_counts;
  (* 2. Importance-sampling replication fan-out. *)
  let is_table = Hosking.Table.make ~acf ~n:1024 in
  let is_cfg =
    Is.make_config ~table:is_table ~arrival:(fun _ x -> x) ~service:0.5 ~buffer:8.0
      ~horizon:1024 ~twist:1.0 ()
  in
  let p_ref = ref nan in
  List.iter
    (fun d ->
      with_domains d (fun p ->
          let e, secs =
            time_it (fun () ->
                Is.estimate ~pool:p is_cfg ~replications:400
                  (Rng.create ~seed:(Defaults.seed + 17)))
          in
          if d = 1 then p_ref := e.Mc.p;
          record "is-replications-400" d secs
            (Int64.bits_of_float e.Mc.p = Int64.bits_of_float !p_ref)))
    domain_counts;
  (* 3. Mux slot loop: block prefetch across sources. *)
  let m = model () in
  let mux_run p =
    let rng = Rng.create ~seed:(Defaults.seed + 23) in
    let srcs =
      Array.init 8 (fun i ->
          Ss_mux.Source.of_model ~name:(Printf.sprintf "p%d" i) ~order:128 m (Rng.split rng))
    in
    Ss_mux.Mux.run ~pool:p ~service:(8.0 *. m.Model.mean /. 0.7) ~slots:8192 srcs
  in
  let mux_ref = ref nan in
  List.iter
    (fun d ->
      with_domains d (fun p ->
          let r, secs = time_it (fun () -> mux_run p) in
          if d = 1 then mux_ref := r.Ss_mux.Mux.mean_queue;
          record "mux-8src-8192slots" d secs
            (Int64.bits_of_float r.Ss_mux.Mux.mean_queue = Int64.bits_of_float !mux_ref)))
    domain_counts;
  let rs = List.rev !results in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"machine\": %s,\n" (machine_json ());
  Printf.bprintf buf "  \"recommended_domain_count\": %d,\n" cores;
  Buffer.add_string buf "  \"benchmarks\": [\n";
  let last = List.length rs - 1 in
  List.iteri
    (fun i (name, d, secs, identical, speedup) ->
      Printf.bprintf buf
        "    {\"name\": \"%s\", \"domains\": %d, \"seconds\": %s, \"speedup_vs_1\": %s, \"bit_identical_vs_1\": %b}%s\n"
        name d
        (jf ~decimals:6 secs)
        (jf ~decimals:3 speedup)
        identical
        (if i = last then "" else ","))
    rs;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_parallel.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "# wrote BENCH_parallel.json\n"

(* ------------------------------------------------------------------ *)
(* throughput: block-kernel source generation                           *)
(* ------------------------------------------------------------------ *)

(* Source-generation throughput across the three layers the block
   kernel touches: (A) the raw per-slot cost of the cache-blocked AR
   kernel against the legacy scalar background pull (bit-identity is
   asserted, not assumed), (B) the fixed-horizon crossover between
   blocked Hosking streaming and the materialized FFT-exact
   Davies-Harte path — the measurement behind `--backend
   davies-harte`, and (C) end-to-end mux slot loops. Writes
   BENCH_throughput.json. *)
let throughput () =
  pf "# throughput: block-kernel source generation vs scalar pulls\n";
  let m = model () in
  let acf = Model.background_acf m in
  let rows = ref [] in
  (* GC deltas ride refs set by [time_gc]: workloads here are
     deterministic, so every repeat of a cell allocates identically
     and the last repeat's delta is the cell's. Sections that
     interleave variants snapshot the refs per variant before the
     next timing overwrites them. *)
  let gc_minor = ref 0.0 and gc_major = ref 0.0 in
  let time_gc f =
    let s0 = Gc.quick_stat () in
    let r, secs = time_it f in
    let s1 = Gc.quick_stat () in
    gc_minor := s1.Gc.minor_words -. s0.Gc.minor_words;
    gc_major := s1.Gc.major_words -. s0.Gc.major_words;
    (r, secs)
  in
  let row ?gc ~section ~name ~order ~n ~domains secs =
    let gcm, gcj = match gc with Some g -> g | None -> (!gc_minor, !gc_major) in
    rows := (section, name, order, n, domains, secs, float_of_int n /. secs, gcm, gcj) :: !rows;
    pf "%-8s %-24s  %9.4f s  %10.0f slots/s  %7.1f ns/slot\n" section name secs
      (float_of_int n /. secs)
      (1e9 *. secs /. float_of_int n)
  in
  let block = 256 in
  let wbuf = Array.make block 0.0 and cbuf = Array.make block 0 in
  (* Checksum accumulator: keeps the drained arrivals observable so
     no timing loop can be optimized into a no-op. *)
  let sink = ref 0.0 in
  (* Every cell re-seeds its generator, so repeated runs must return
     bitwise-identical results; take the minimum wall time of three
     runs to shed scheduler noise on sub-second cells. [run] returns
     (result, seconds) for one run. *)
  let best_of ?(repeats = 3) run =
    let r0, t0 = run () in
    let t = ref t0 in
    for _ = 1 to repeats - 1 do
      let r, ti = run () in
      if Int64.bits_of_float r <> Int64.bits_of_float r0 then
        failwith "throughput: repeated run disagrees with itself";
      if ti < !t then t := ti
    done;
    (r0, !t)
  in
  let drain s n =
    let acc = ref 0.0 in
    let left = ref n in
    while !left > 0 do
      let l = Stdlib.min block !left in
      let got = Ss_mux.Source.next_block s wbuf cbuf ~off:0 ~len:l in
      for j = 0 to got - 1 do
        acc := !acc +. wbuf.(j)
      done;
      left := (if got < l then 0 else !left - got)
    done;
    !acc
  in
  (* A. Kernel: the scalar per-slot pull interface vs the blocked
     source drained in [block]-slot chunks. The scalar side is the
     pre-PR execution model kept verbatim in-tree ([of_model_twisted]
     at zero shift: per-slot closure, history blit, tuple per pull),
     documented bit-identical to [of_model] on the same generator
     state — so the arrival sums must agree bitwise. *)
  let n_kernel = 1 lsl 17 in
  List.iter
    (fun order ->
      ignore (Ss_mux.Source.table_for ~acf ~order : Hosking.Table.t);
      let scalar () =
        let rng = rng_for (Printf.sprintf "tp-kernel-%d" order) in
        let s = Ss_mux.Source.of_model_twisted ~order ~shift:(fun _ -> 0.0) m rng in
        let acc = ref 0.0 in
        for _ = 1 to n_kernel do
          acc := !acc +. fst (Ss_mux.Source.next s)
        done;
        !acc
      in
      let blocked () =
        let rng = rng_for (Printf.sprintf "tp-kernel-%d" order) in
        drain (Ss_mux.Source.of_model ~order m rng) n_kernel
      in
      let a_s, t_s = best_of (fun () -> time_gc scalar) in
      let gc_s = (!gc_minor, !gc_major) in
      let a_b, t_b = best_of (fun () -> time_gc blocked) in
      let gc_b = (!gc_minor, !gc_major) in
      if Int64.bits_of_float a_s <> Int64.bits_of_float a_b then
        failwith "throughput: block kernel disagrees with the scalar pull";
      sink := !sink +. a_b;
      row ~gc:gc_s ~section:"kernel"
        ~name:(Printf.sprintf "scalar-order-%d" order)
        ~order ~n:n_kernel ~domains:1 t_s;
      row ~gc:gc_b ~section:"kernel"
        ~name:(Printf.sprintf "block-order-%d" order)
        ~order ~n:n_kernel ~domains:1 t_b;
      pf "# order %d: block/scalar speedup %.2fx\n" order (t_s /. t_b);
      (* Relaxed tier: same blocked drain under the reassociated
         4-accumulator dot kernel and erf-free CDF. Deterministic per
         seed (best_of still asserts repeat equality) but on a
         different sample path than the exact tier, so no cross-tier
         bitwise compare — the statistical gates live in
         throughput-smoke and the test suite. *)
      let relaxed () =
        let rng = rng_for (Printf.sprintf "tp-kernel-%d" order) in
        drain (Ss_mux.Source.of_model ~order ~precision:`Relaxed m rng) n_kernel
      in
      let a_r, t_r = best_of (fun () -> time_gc relaxed) in
      sink := !sink +. a_r;
      row ~section:"kernel"
        ~name:(Printf.sprintf "block-relaxed-order-%d" order)
        ~order ~n:n_kernel ~domains:1 t_r;
      pf "# order %d: relaxed/exact block time ratio %.2f\n" order (t_r /. t_b);
      (* FFT tier: the overlap-save block kernel. Same contract as
         relaxed — deterministic per seed, statistically gated, never
         compared bitwise against the exact tier. *)
      let fft () =
        let rng = rng_for (Printf.sprintf "tp-kernel-%d" order) in
        drain (Ss_mux.Source.of_model ~order ~kernel:`Fft m rng) n_kernel
      in
      ignore (Ss_mux.Source.fft_plan_for ~acf ~order : Hosking.Fft_plan.t);
      let a_f, t_f = best_of (fun () -> time_gc fft) in
      sink := !sink +. a_f;
      row ~section:"kernel"
        ~name:(Printf.sprintf "block-fft-order-%d" order)
        ~order ~n:n_kernel ~domains:1 t_f;
      pf "# order %d: fft/exact block speedup %.2fx\n" order (t_b /. t_f))
    [ 64; 512; 2048 ];
  (* B. Fixed-horizon crossover: time to produce all n slots of one
     source. The Davies-Harte plan is cached and prewarmed (shared
     across same-horizon sources); the per-source O(n log n) path
     synthesis stays inside the timing. *)
  List.iter
    (fun n ->
      ignore (Ss_mux.Source.plan_for ~acf ~n : DH.plan);
      let a_h, t_h =
        best_of (fun () ->
            time_gc (fun () ->
                drain
                  (Ss_mux.Source.of_model ~order:512 m (rng_for (Printf.sprintf "tp-h-%d" n)))
                  n))
      in
      let gc_h = (!gc_minor, !gc_major) in
      let a_d, t_d =
        best_of (fun () ->
            time_gc (fun () ->
                drain
                  (Ss_mux.Source.of_model ~order:512 ~backend:`Davies_harte ~horizon:n m
                     (rng_for (Printf.sprintf "tp-dh-%d" n)))
                  n))
      in
      let gc_d = (!gc_minor, !gc_major) in
      ignore (Ss_mux.Source.paxson_plan_for ~acf ~n : Ss_fractal.Paxson.plan);
      let a_p, t_p =
        best_of (fun () ->
            time_gc (fun () ->
                drain
                  (Ss_mux.Source.of_model ~order:512 ~backend:`Paxson ~horizon:n m
                     (rng_for (Printf.sprintf "tp-px-%d" n)))
                  n))
      in
      sink := !sink +. a_h +. a_d +. a_p;
      row ~gc:gc_h ~section:"horizon"
        ~name:(Printf.sprintf "hosking-512-n%d" n)
        ~order:512 ~n ~domains:1 t_h;
      row ~gc:gc_d ~section:"horizon"
        ~name:(Printf.sprintf "davies-harte-n%d" n)
        ~order:512 ~n ~domains:1 t_d;
      row ~section:"horizon" ~name:(Printf.sprintf "paxson-n%d" n) ~order:512 ~n ~domains:1 t_p;
      pf "# n=%d: davies-harte/hosking time ratio %.2f, paxson/hosking %.2f (< 1 means the \
          FFT path wins)\n"
        n (t_d /. t_h) (t_p /. t_h))
    [ 1 lsl 12; 1 lsl 15; 1 lsl 17 ];
  (* C. End-to-end mux slot loop, 8 sources. *)
  let slots = 16384 in
  let service = 8.0 *. m.Model.mean /. 0.7 in
  let mux_row ~name ~order ~domains ?backend ?horizon () =
    let p = if domains > 1 then Some (Pool.create ~domains) else None in
    let q, secs =
      best_of (fun () ->
          (* Sources are stateful: rebuild them (outside the clock)
             for every repeat so each run consumes the same stream. *)
          let rng = rng_for ("tp-mux-" ^ name) in
          let srcs =
            Array.init 8 (fun i ->
                Ss_mux.Source.of_model ~name:(Printf.sprintf "m%d" i) ~order ?backend ?horizon m
                  (Rng.split rng))
          in
          time_gc (fun () ->
              (Ss_mux.Mux.run ?pool:p ~service ~slots srcs).Ss_mux.Mux.mean_queue))
    in
    Option.iter Pool.shutdown p;
    sink := !sink +. q;
    row ~section:"mux" ~name ~order ~n:slots ~domains secs
  in
  mux_row ~name:"hosking-512-d1" ~order:512 ~domains:1 ();
  mux_row ~name:"hosking-512-d4" ~order:512 ~domains:4 ();
  mux_row ~name:"hosking-64-d1" ~order:64 ~domains:1 ();
  mux_row ~name:"davies-harte-d1" ~order:512 ~domains:1 ~backend:`Davies_harte ~horizon:slots ();
  (* D. Sharded-mux scaling: cheap cycling sources so the admission
     machinery (staging layout, transpose, shard fan-out) dominates
     the clock rather than model synthesis, swept over source count x
     domain count at a fixed per-cell slot budget. The reference row
     is the pre-shard pooled-prefetch engine the sharded speedup is
     measured against; all variants of one N must agree bitwise on
     the mean queue. *)
  let feq a b = Int64.bits_of_float a = Int64.bits_of_float b in
  let scaling_ratios = ref [] in
  List.iter
    (fun n ->
      let slots = Stdlib.max 512 (6_291_456 / n) in
      let service = float_of_int n *. 0.64 /. 0.7 in
      let mk () =
        Array.init n (fun i ->
            let len = 384 + (i mod 29) in
            let arr =
              Array.init len (fun t -> abs_float (sin (float_of_int ((t + 1) * (i + 7)))))
            in
            Ss_mux.Source.of_array ~name:(Printf.sprintf "a%d" i) ~cycle:true arr)
      in
      (* One 4-domain pool stays alive across every cell of this N —
         worker-domain existence alone changes GC pacing (multi-domain
         stop-the-world minors), so per-cell pools would fold that
         into the d-ratios. A d<4 cell simply dispatches fewer barrier
         tasks into the same pool. All variants run once per round,
         interleaved; rows keep per-variant minima, while the summary
         speedups are MEDIANS of per-round paired ratios — one round's
         host-noise phase hits every variant, so it moves times, not
         ratios, where ratios of independent minima double the noise. *)
      let p = Pool.create ~domains:4 in
      let run_ref srcs =
        (Ss_mux.Mux.run_reference ~service ~slots srcs).Ss_mux.Mux.mean_queue
      in
      let run_sh ?pool shards srcs =
        (Ss_mux.Mux.run ?pool ~shards ~service ~slots srcs).Ss_mux.Mux.mean_queue
      in
      let variants =
        [|
          (Printf.sprintf "reference-n%d-d1" n, 1, run_ref);
          (Printf.sprintf "sharded-n%d-d1" n, 1, run_sh 1);
          (Printf.sprintf "sharded-n%d-d2" n, 2, run_sh ~pool:p 2);
          (Printf.sprintf "sharded-n%d-d4" n, 4, run_sh ~pool:p 4);
        |]
      in
      let nv = Array.length variants in
      let rounds = 7 in
      let tmin = Array.make nv infinity in
      let qv = Array.make nv nan in
      let gcv = Array.make nv (0.0, 0.0) in
      let ref_over_d1 = Array.make rounds 0.0 in
      let d1_over_d4 = Array.make rounds 0.0 in
      for k = 0 to rounds - 1 do
        let tk = Array.make nv 0.0 in
        for j = 0 to nv - 1 do
          let _, _, run = variants.(j) in
          let srcs = mk () in
          Gc.full_major ();
          let q, secs = time_gc (fun () -> run srcs) in
          if k = 0 then begin
            qv.(j) <- q;
            gcv.(j) <- (!gc_minor, !gc_major)
          end
          else if not (feq qv.(j) q) then
            failwith "throughput: repeated scaling run disagrees with itself";
          tk.(j) <- secs;
          if secs < tmin.(j) then tmin.(j) <- secs
        done;
        ref_over_d1.(k) <- tk.(0) /. tk.(1);
        d1_over_d4.(k) <- tk.(1) /. tk.(3)
      done;
      Pool.shutdown p;
      if not (feq qv.(0) qv.(1) && feq qv.(1) qv.(2) && feq qv.(2) qv.(3)) then
        failwith "throughput: sharded mux disagrees with the reference engine";
      for j = 0 to nv - 1 do
        let name, domains, _ = variants.(j) in
        sink := !sink +. qv.(j);
        row ~gc:gcv.(j) ~section:"mux-scaling" ~name ~order:0 ~n:slots ~domains tmin.(j)
      done;
      let median a =
        let c = Array.copy a in
        Array.sort compare c;
        c.(Array.length c / 2)
      in
      let m_ref = median ref_over_d1 and m_d4 = median d1_over_d4 in
      if n >= 1024 then
        scaling_ratios :=
          !scaling_ratios
          @ [
              (Printf.sprintf "mux_sharded_over_reference_n%d" n, m_ref);
              (Printf.sprintf "mux_d4_over_d1_n%d" n, m_d4);
            ];
      pf "# n=%d: sharded/reference speedup %.2fx (d1), d4/d1 %.2fx (paired medians)\n" n
        m_ref m_d4)
    [ 64; 1024; 8192 ];
  (* D'. FFT-kernel gain under sharding: the N=8192 fleet of model
     sources from the scaling sweep's largest point, on the exact and
     FFT kernels, through the 1-shard sequential engine and the
     4-shard/4-domain engine. Every source is pre-drained past the
     AR ramp (order + partition slots) before timing, so each timed
     slot runs the steady-state kernel — at slots comparable to
     [order] the ramp, where both kernels do identical short-history
     work, would otherwise drag the ratio toward 1. The acceptance
     gate is a ratio of ratios: the exact/fft speedup at 4 shards
     must retain >= 90% of the same fleet's speedup at 1 shard —
     i.e. the sharded staging path consumes the fast kernel without
     eating its gain. (The fleet-level speedup sits below the
     single-source kernel ratio at any layout: 8192 per-source
     states stream through memory once per staging block, a
     capacity effect identical in both layouts — reported as an
     informational ratio, not gated.) Paired per-round ratios,
     median, as in section D. *)
  (let n = 8192 in
   let slots = 768 in
   let order = 512 in
   let warmup = 640 (* order + partition, a multiple of the FFT block *) in
   let service = float_of_int n *. m.Model.mean /. 0.7 in
   let p = Pool.create ~domains:4 in
   let mk kernel tag =
     let rng = rng_for (Printf.sprintf "tp-muxfft-%s" tag) in
     Array.init n (fun i ->
         Ss_mux.Source.of_model ~name:(Printf.sprintf "f%d" i) ~order ~kernel m
           (Rng.split rng))
   in
   let wb = Array.make warmup 0.0 and cb = Array.make warmup 0 in
   let warm srcs =
     Array.iter
       (fun s -> ignore (Ss_mux.Source.next_block s wb cb ~off:0 ~len:warmup : int))
       srcs
   in
   let rounds = 3 in
   let ratio1 = Array.make rounds 0.0 and ratio4 = Array.make rounds 0.0 in
   let rr = Array.make rounds 0.0 in
   let t_e1 = ref infinity and t_f1 = ref infinity in
   let t_e4 = ref infinity and t_f4 = ref infinity in
   (* One reference queue per kernel: rounds AND layouts must agree
      bitwise (the sharded engine's invariance, re-checked here). *)
   let q_e = ref nan and q_f = ref nan in
   let gc_e = ref (0.0, 0.0) and gc_f = ref (0.0, 0.0) in
   for k = 0 to rounds - 1 do
     let once kernel tag sharded q_ref gc_ref t_ref =
       let srcs = mk kernel tag in
       warm srcs;
       Gc.full_major ();
       let q, secs =
         time_gc (fun () ->
             (if sharded then Ss_mux.Mux.run ~pool:p ~shards:4 ~service ~slots srcs
              else Ss_mux.Mux.run ~service ~slots srcs)
               .Ss_mux.Mux.mean_queue)
       in
       if Float.is_nan !q_ref then begin
         q_ref := q;
         gc_ref := (!gc_minor, !gc_major)
       end
       else if not (feq !q_ref q) then
         failwith "throughput: fft-mux run disagrees across rounds/layouts";
       if secs < !t_ref then t_ref := secs;
       secs
     in
     let e1 () = once `Exact "exact" false q_e gc_e t_e1 in
     let f1 () = once `Fft "fft" false q_f gc_f t_f1 in
     let e4 () = once `Exact "exact" true q_e gc_e t_e4 in
     let f4 () = once `Fft "fft" true q_f gc_f t_f4 in
     (* Alternate order so position bias cancels across rounds. *)
     let te1, tf1, te4, tf4 =
       if k land 1 = 0 then
         let a = e1 () in
         let b = f1 () in
         let c = e4 () in
         let d = f4 () in
         (a, b, c, d)
       else
         let d = f4 () in
         let c = e4 () in
         let b = f1 () in
         let a = e1 () in
         (a, b, c, d)
     in
     ratio1.(k) <- te1 /. tf1;
     ratio4.(k) <- te4 /. tf4;
     rr.(k) <- ratio4.(k) /. ratio1.(k)
   done;
   Pool.shutdown p;
   sink := !sink +. !q_e +. !q_f;
   row ~section:"mux-fft"
     ~name:(Printf.sprintf "mux-exact-order-%d-n%d-d1" order n)
     ~order ~n:slots ~domains:1 !t_e1;
   row ~section:"mux-fft"
     ~name:(Printf.sprintf "mux-fft-order-%d-n%d-d1" order n)
     ~order ~n:slots ~domains:1 !t_f1;
   row ~gc:!gc_e ~section:"mux-fft"
     ~name:(Printf.sprintf "mux-exact-order-%d-n%d-d4" order n)
     ~order ~n:slots ~domains:4 !t_e4;
   row ~gc:!gc_f ~section:"mux-fft"
     ~name:(Printf.sprintf "mux-fft-order-%d-n%d-d4" order n)
     ~order ~n:slots ~domains:4 !t_f4;
   Array.sort compare ratio1;
   Array.sort compare ratio4;
   Array.sort compare rr;
   let gain1 = ratio1.(rounds / 2) in
   let gain4 = ratio4.(rounds / 2) in
   let retained = rr.(rounds / 2) in
   let time_of_row name =
     let _, _, _, _, _, secs, _, _, _ =
       List.find (fun (_, nm, _, _, _, _, _, _, _) -> nm = name) !rows
     in
     secs
   in
   let single_gain =
     time_of_row (Printf.sprintf "block-order-%d" order)
     /. time_of_row (Printf.sprintf "block-fft-order-%d" order)
   in
   let vs_single = gain4 /. single_gain in
   pf
     "# n=%d fft mux: exact/fft speedup %.2fx at 4 shards, %.2fx at 1 shard — sharding \
      retains %.0f%%%s\n"
     n gain4 gain1 (100.0 *. retained)
     (if retained >= 0.9 then " (>= 90% gate: ok)" else " (>= 90% gate: MISSED)");
   pf
     "# n=%d fft mux: %.0f%% of the single-source kernel gain %.2fx (informational: the \
      fleet is memory-bound at any layout, see EXPERIMENTS)\n"
     n (100.0 *. vs_single) single_gain;
   scaling_ratios :=
     !scaling_ratios
     @ [
         (Printf.sprintf "fft_mux_speedup_order_%d_n%d" order n, gain4);
         (Printf.sprintf "fft_mux_sharding_retention_n%d" n, retained);
         (Printf.sprintf "fft_mux_gain_over_single_n%d" n, vs_single);
       ]);
  (* E. Checkpoint overhead: the 8-source mux slot loop with the
     periodic snapshot hook armed. Arming the hook caps the staging
     block at [every] (so snapshots cannot be skipped), which by
     itself shifts cache behavior — so the per-[every] baseline is a
     run with a NO-OP hook at the same cadence (same block layout,
     nothing serialized, nothing written), and the reported overhead
     isolates what a snapshot actually costs: serializing the full
     engine + source state and atomically replacing a scratch file.
     The acceptance gate lives at every=8192 (< 5%); no hook may
     perturb the arithmetic, so the mean queue is asserted bitwise
     across every variant. *)
  let ck_path = Filename.temp_file "ss-bench" ".ckpt" in
  let ck_ratios =
    let order = 64 in
    let slots = 131072 in
    let run_once ?checkpoint () =
      let rng = rng_for "tp-ckpt-mux" in
      let srcs =
        Array.init 8 (fun i ->
            Ss_mux.Source.of_model ~name:(Printf.sprintf "c%d" i) ~order m (Rng.split rng))
      in
      time_gc (fun () ->
          (Ss_mux.Mux.run ?checkpoint ~service ~slots srcs).Ss_mux.Mux.mean_queue)
    in
    let q0, t0 = best_of (fun () -> run_once ()) in
    sink := !sink +. q0;
    row ~section:"ckpt" ~name:"mux-ckpt-unhooked" ~order ~n:slots ~domains:1 t0;
    List.map
      (fun every ->
        let hook save = { Ss_mux.Mux.every; save } in
        let noop = hook (fun ~slot:_ _fill -> ()) in
        let saving =
          hook (fun ~slot:_ fill ->
              Ss_checkpoint.to_file ~path:ck_path ~kind:"bench-mux" ~meta:"" fill)
        in
        (* Snapshot cost is sub-ms, well under the run-to-run noise of
           a 0.2 s cell — so pair the noop and saving runs inside each
           round and gate on the MEDIAN of per-round ratios, as the
           mux-scaling section does: one round's host-noise phase hits
           both sides, moving times but not the ratio. *)
        let rounds = 7 in
        let ratios = Array.make rounds 0.0 in
        let t_n = ref infinity and t_s = ref infinity in
        let gc_n = ref (0.0, 0.0) and gc_s = ref (0.0, 0.0) in
        for k = 0 to rounds - 1 do
          (* Alternate which side goes first so position bias (cache
             warmth, GC phase) cancels across rounds. *)
          let (q_n, tn), (q_s, ts) =
            if k land 1 = 0 then
              let a = run_once ~checkpoint:noop () in
              let ga = (!gc_minor, !gc_major) in
              let b = run_once ~checkpoint:saving () in
              if k = 0 then begin
                gc_n := ga;
                gc_s := (!gc_minor, !gc_major)
              end;
              (a, b)
            else
              let b = run_once ~checkpoint:saving () in
              let a = run_once ~checkpoint:noop () in
              (a, b)
          in
          if not (feq q_n q0 && feq q_s q0) then
            failwith "throughput: checkpointed mux disagrees with the baseline";
          if tn < !t_n then t_n := tn;
          if ts < !t_s then t_s := ts;
          ratios.(k) <- ts /. tn
        done;
        row ~gc:!gc_n ~section:"ckpt"
          ~name:(Printf.sprintf "mux-ckpt-noop-every-%d" every)
          ~order ~n:slots ~domains:1 !t_n;
        row ~gc:!gc_s ~section:"ckpt"
          ~name:(Printf.sprintf "mux-ckpt-every-%d" every)
          ~order ~n:slots ~domains:1 !t_s;
        Array.sort compare ratios;
        let pct = 100.0 *. (ratios.(rounds / 2) -. 1.0) in
        pf "# every=%d: checkpoint overhead %.2f%% (%d snapshots, paired median)%s\n" every
          pct
          ((slots - 1) / every)
          (if every = 8192 then
             if pct < 5.0 then " (< 5% gate: ok)" else " (< 5% gate: EXCEEDED)"
           else "");
        (Printf.sprintf "checkpoint_overhead_pct_every_%d" every, pct))
      [ 1024; 8192 ]
  in
  (try Sys.remove ck_path with Sys_error _ -> ());
  scaling_ratios := !scaling_ratios @ ck_ratios;
  (* Cache counters: every plan/table lookup the run just made, so
     the recorded numbers show how much fitting the caches absorbed
     (misses = cold fits, hits = reuse across sources and repeats). *)
  List.iter
    (fun (nm, (s : Ss_mux.Source.cache_stats)) ->
      pf "# cache %-18s hits=%d misses=%d evictions=%d\n" nm s.Ss_mux.Source.hits
        s.Ss_mux.Source.misses s.Ss_mux.Source.evictions)
    (Ss_mux.Source.cache_stats ());
  let rs = List.rev !rows in
  let buf = Buffer.create 2048 in
  Printf.bprintf buf "{\n  \"machine\": %s,\n  \"block\": %d,\n  \"rows\": [\n" (machine_json ())
    block;
  let last = List.length rs - 1 in
  List.iteri
    (fun i (section, name, order, n, domains, secs, rate, gcm, gcj) ->
      Printf.bprintf buf
        "    {\"section\": \"%s\", \"name\": \"%s\", \"order\": %d, \"n\": %d, \"domains\": %d, \
         \"seconds\": %s, \"slots_per_sec\": %s, \"ns_per_slot\": %s, \
         \"gc_minor_words\": %s, \"gc_major_words\": %s}%s\n"
        section name order n domains
        (jf ~decimals:6 secs)
        (jf ~decimals:0 rate)
        (jf ~decimals:1 (1e9 *. secs /. float_of_int n))
        (jf ~decimals:0 gcm)
        (jf ~decimals:0 gcj)
        (if i = last then "" else ","))
    rs;
  Buffer.add_string buf "  ],\n";
  let time_of name =
    let _, _, _, _, _, secs, _, _, _ =
      List.find (fun (_, nm, _, _, _, _, _, _, _) -> nm = name) rs
    in
    secs
  in
  Printf.bprintf buf "  \"summary\": {\n";
  let ratio key num den =
    Printf.bprintf buf "    \"%s\": %s,\n" key (jf ~decimals:3 (time_of num /. time_of den))
  in
  ratio "block_speedup_order_64" "scalar-order-64" "block-order-64";
  ratio "block_speedup_order_512" "scalar-order-512" "block-order-512";
  ratio "block_speedup_order_2048" "scalar-order-2048" "block-order-2048";
  ratio "relaxed_block_speedup_order_64" "block-order-64" "block-relaxed-order-64";
  ratio "relaxed_block_speedup_order_512" "block-order-512" "block-relaxed-order-512";
  ratio "relaxed_block_speedup_order_2048" "block-order-2048" "block-relaxed-order-2048";
  ratio "fft_block_speedup_order_64" "block-order-64" "block-fft-order-64";
  ratio "fft_block_speedup_order_512" "block-order-512" "block-fft-order-512";
  ratio "fft_block_speedup_order_2048" "block-order-2048" "block-fft-order-2048";
  ratio "dh_over_hosking_time_n4096" "davies-harte-n4096" "hosking-512-n4096";
  ratio "dh_over_hosking_time_n32768" "davies-harte-n32768" "hosking-512-n32768";
  ratio "dh_over_hosking_time_n131072" "davies-harte-n131072" "hosking-512-n131072";
  ratio "paxson_over_hosking_time_n4096" "paxson-n4096" "hosking-512-n4096";
  ratio "paxson_over_hosking_time_n32768" "paxson-n32768" "hosking-512-n32768";
  ratio "paxson_over_hosking_time_n131072" "paxson-n131072" "hosking-512-n131072";
  ratio "paxson_speedup_n4096" "hosking-512-n4096" "paxson-n4096";
  let nr = List.length !scaling_ratios in
  List.iteri
    (fun i (k, v) ->
      Printf.bprintf buf "    \"%s\": %s%s\n" k
        (jf ~decimals:3 v)
        (if i = nr - 1 then "" else ","))
    !scaling_ratios;
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out "BENCH_throughput.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "# wrote BENCH_throughput.json (checksum %.6g)\n" !sink

(* throughput-smoke: the cheap CI gate over the block-kernel work.
   (1) A fixed-seed mux run over block-native model sources must
   produce a bitwise-identical report to the same run over
   scalar-adapter rewraps of the same sources (exercising the default
   loop-the-scalar-pull block adapter against the native kernel).
   (2) The Davies-Harte IS backend must agree with the Hosking walk
   on a moderately-likely overflow within a joint 3-sigma band — with
   the table covering the whole horizon both backends are exact
   synthesizers of the same law, so only MC noise separates them. *)
let throughput_smoke () =
  let backend = !smoke_backend in
  (* `--precision relaxed` is the historical spelling of
     `--kernel relaxed`; fold it in so either flag selects the tier. *)
  let kernel =
    match !smoke_precision with `Relaxed -> `Relaxed | `Exact -> !smoke_kernel
  in
  let default_mode = backend = `Hosking && kernel = `Exact in
  pf "# throughput-smoke: block/scalar mux equivalence + cross-backend overflow agreement\n";
  pf "# variant: backend=%s kernel=%s\n"
    (match backend with `Hosking -> "hosking" | `Paxson -> "paxson")
    (match kernel with `Exact -> "exact" | `Relaxed -> "relaxed" | `Fft -> "fft");
  let m = model () in
  let n = 2 and order = 64 and slots = 4096 in
  let service = 2.0 *. m.Model.mean /. 0.7 in
  let buffer = 30.0 *. m.Model.mean in
  let horizon = match backend with `Hosking -> None | `Paxson -> Some slots in
  let mk () =
    let rng = rng_for "tp-smoke-mux" in
    Array.init n (fun i ->
        Ss_mux.Source.of_model ~name:(Printf.sprintf "s%d" i) ~order
          ~backend:(backend :> Ss_mux.Source.backend)
          ~kernel ?horizon m (Rng.split rng))
  in
  let scalarize s =
    Ss_mux.Source.make ~name:s.Ss_mux.Source.name ~mean:s.Ss_mux.Source.mean
      ~sigma2:s.Ss_mux.Source.sigma2 ~hurst:s.Ss_mux.Source.hurst (fun () ->
        s.Ss_mux.Source.pull ())
  in
  let run srcs =
    Ss_mux.Mux.run ?pool:(pool ()) ~buffer ~thresholds:[ 0.5 *. buffer ] ~service ~slots srcs
  in
  let r_b = run (mk ()) in
  let r_s = run (Array.map scalarize (mk ())) in
  let feq a b = Int64.bits_of_float a = Int64.bits_of_float b in
  let ok =
    feq r_b.Ss_mux.Mux.mean_queue r_s.Ss_mux.Mux.mean_queue
    && feq r_b.Ss_mux.Mux.max_queue r_s.Ss_mux.Mux.max_queue
    && feq r_b.Ss_mux.Mux.loss_fraction r_s.Ss_mux.Mux.loss_fraction
    && List.for_all2
         (fun (p1, q1) (p2, q2) -> p1 = p2 && feq q1 q2)
         r_b.Ss_mux.Mux.queue_quantiles r_s.Ss_mux.Mux.queue_quantiles
    && List.for_all2
         (fun (t1, f1) (t2, f2) -> feq t1 t2 && feq f1 f2)
         r_b.Ss_mux.Mux.overflow r_s.Ss_mux.Mux.overflow
    && Array.for_all2
         (fun (a : Ss_mux.Mux.source_report) (b : Ss_mux.Mux.source_report) ->
           feq a.Ss_mux.Mux.offered b.Ss_mux.Mux.offered && feq a.Ss_mux.Mux.lost b.Ss_mux.Mux.lost)
         r_b.Ss_mux.Mux.per_source r_s.Ss_mux.Mux.per_source
  in
  pf "# block mux:  mean_queue=%.6g loss=%.3g\n" r_b.Ss_mux.Mux.mean_queue
    r_b.Ss_mux.Mux.loss_fraction;
  pf "# scalar mux: mean_queue=%.6g loss=%.3g\n" r_s.Ss_mux.Mux.mean_queue
    r_s.Ss_mux.Mux.loss_fraction;
  if not ok then failwith "throughput-smoke: block and scalar mux reports differ";
  pf "# block == scalar (bitwise)\n";
  if not default_mode then begin
    (* Statistical gates for the approximate/relaxed variants: no
       bitwise contract exists against the exact tier, so the gate is
       the definition of those tiers — the synthesized background must
       carry the model's dependence structure. Averaged sample ACF
       (over fixed-seed paths) must track the model ACF at every lag
       <= 100, and the variance-time Hurst estimate must agree with
       the same estimator run on exact Davies-Harte paths (comparing
       estimator-to-estimator cancels the VT estimator's own bias). *)
    let h = 0.8 in
    let acf = Acf.fgn ~h in
    (* Per-path variance-time H carries ~0.04 std at this length, so
       the 0.03 gate needs the averaging: 24 paths put ~2.5 sigma
       between an unbiased variant and the threshold. *)
    let gn = 16384 and paths = 24 in
    let rng = rng_for "tp-smoke-stat" in
    (* Each variant is compared against the exact synthesis it stands
       in for: the Paxson backend replaces Davies-Harte paths, the
       relaxed and fft kernels replace the exact-tier Hosking kernel
       (truncated AR(512) — a slightly different law than the exact
       circulant, so a DH reference would show the truncation, not
       the tier). *)
    let hosking_gen mk_block =
      let table = Ss_mux.Source.table_for ~acf ~order:512 in
      fun r ->
        let b = mk_block table in
        let dst = Array.make gn 0.0 in
        Hosking.Block.fill b r dst ~off:0 ~len:gn;
        dst
    in
    let exact_gen = hosking_gen (fun table -> Hosking.Block.create ~table ~order:512 ()) in
    let dh_gen =
      let plan = Ss_mux.Source.plan_for ~acf ~n:gn in
      fun r -> DH.generate plan r
    in
    let gen_variant, gen_ref =
      match backend with
      | `Paxson ->
        let plan = Paxson.plan ~acf ~n:gn in
        ((fun r -> Paxson.generate plan r), dh_gen)
      | `Hosking ->
        let gen =
          match kernel with
          | `Exact -> exact_gen
          | `Relaxed ->
            hosking_gen (fun table -> Hosking.Block.create ~relaxed:true ~table ~order:512 ())
          | `Fft ->
            hosking_gen (fun table ->
                Hosking.Block.create
                  ~fft_plan:(Ss_mux.Source.fft_plan_for ~acf ~order:512)
                  ~table ~order:512 ())
        in
        (gen, exact_gen)
    in
    let acf_avg = Array.make 101 0.0 in
    let h_var = ref 0.0 and h_ref = ref 0.0 in
    for _ = 1 to paths do
      let xv = gen_variant (Rng.split rng) in
      let xr = gen_ref (Rng.split rng) in
      let rv = D.acf xv ~max_lag:100 in
      for k = 0 to 100 do
        acf_avg.(k) <- acf_avg.(k) +. rv.(k)
      done;
      h_var := !h_var +. (Hurst.variance_time xv).Hurst.h;
      h_ref := !h_ref +. (Hurst.variance_time xr).Hurst.h
    done;
    let fp = float_of_int paths in
    let worst = ref 0.0 and worst_lag = ref 0 in
    for k = 1 to 100 do
      let e = abs_float ((acf_avg.(k) /. fp) -. acf.Acf.r k) in
      if e > !worst then begin
        worst := e;
        worst_lag := k
      end
    done;
    let hv = !h_var /. fp and hr = !h_ref /. fp in
    pf "# acf: max |avg sample - model| over lags 1..100 = %.4f (lag %d; %d paths, n=%d)\n"
      !worst !worst_lag paths gn;
    pf "# variance-time H: variant %.4f, exact reference %.4f (model %.2f)\n" hv hr h;
    if !worst > 0.05 then
      failwith "throughput-smoke: sample ACF disagrees with the model ACF beyond 0.05";
    if abs_float (hv -. hr) > 0.03 then
      failwith
        "throughput-smoke: variance-time Hurst disagrees with the exact reference beyond 0.03";
    pf "# statistical gates passed (acf <= 0.05, |dH| <= 0.03)\n"
  end
  else begin
  let horizon = 200 in
  let table = Generate.table m ~n:horizon in
  let arrival = Generate.arrival_fn m in
  let service = m.Model.mean /. 0.6 in
  let buffer = 5.0 *. m.Model.mean in
  let cfg backend =
    Is.make_config ~table ~arrival ~service ~buffer ~horizon ~twist:0.0 ~backend ()
  in
  let plan = Ss_mux.Source.plan_for ~acf:(Model.background_acf m) ~n:horizon in
  let rng = rng_for "tp-smoke-is" in
  let reps_each = 600 in
  let e_h = Is.estimate ?pool:(pool ()) (cfg `Hosking) ~replications:reps_each (Rng.split rng) in
  let e_d =
    Is.estimate ?pool:(pool ()) (cfg (`Davies_harte plan)) ~replications:reps_each (Rng.split rng)
  in
  pf "# hosking      p=%.4g  hits=%d/%d\n" e_h.Mc.p e_h.Mc.hits reps_each;
  pf "# davies-harte p=%.4g  hits=%d/%d\n" e_d.Mc.p e_d.Mc.hits reps_each;
  if e_h.Mc.hits = 0 then failwith "throughput-smoke: hosking backend recorded no events";
  if e_d.Mc.hits = 0 then failwith "throughput-smoke: davies-harte backend recorded no events";
  let band = 3.0 *. sqrt ((e_h.Mc.variance +. e_d.Mc.variance) /. float_of_int reps_each) in
  let diff = abs_float (e_h.Mc.p -. e_d.Mc.p) in
  pf "# |p_h - p_dh| = %.4g, joint 3-sigma band = %.4g\n" diff band;
  if diff > band then failwith "throughput-smoke: backends disagree beyond 3 sigma";
  pf "# agreement within 3 sigma\n";
  (* (3) Sharded-mux gate: a fixed-seed run must be bitwise invariant
     in the shard count (the whole report, via Mux.equal_report), and
     the coarse per-block barrier must keep the 4-shard dispatch
     within 5% of the single-shard rate even on one core. *)
  let n_s = 256 and slots_s = 16384 in
  let service_s = float_of_int n_s *. 0.64 /. 0.7 in
  let mk_cheap () =
    Array.init n_s (fun i ->
        let len = 384 + (i mod 29) in
        let arr =
          Array.init len (fun t -> abs_float (sin (float_of_int ((t + 1) * (i + 7)))))
        in
        Ss_mux.Source.of_array ~name:(Printf.sprintf "a%d" i) ~cycle:true arr)
  in
  (* The pool is alive for BOTH timings: the mere existence of worker
     domains changes GC pacing (multi-domain stop-the-world minors),
     so creating it between the two cells would fold that into the
     d4/d1 ratio. The d1/d4 repeats are interleaved so a burst of
     host noise lands on both sides rather than biasing one phase;
     each side keeps its minimum of seven. Sources are stateful:
     rebuilt outside the clock per repeat, and repeats must agree
     with themselves bitwise. *)
  let p4 = Pool.create ~domains:4 in
  let once ?pool shards =
    let srcs = mk_cheap () in
    (* Level the heap before the clock starts: each run allocates
       multi-MB staging arrays, and whoever runs second in a pair
       would otherwise pay the first run's deferred major-GC work. *)
    Gc.full_major ();
    time_it (fun () -> Ss_mux.Mux.run ?pool ~shards ~service:service_s ~slots:slots_s srcs)
  in
  let rep1 = ref None and rep4 = ref None in
  let t1 = ref infinity and t4 = ref infinity in
  let keep rep best (r, secs) =
    (match !rep with
    | None -> rep := Some r
    | Some r0 ->
        if not (Ss_mux.Mux.equal_report r0 r) then
          failwith "throughput-smoke: repeated sharded run disagrees with itself");
    if secs < !best then best := secs
  in
  let reps = 15 in
  let ratios = Array.make reps 0.0 in
  for k = 0 to reps - 1 do
    (* Alternate which side goes first so any residual position bias
       (cache warmth, scheduler phase) cancels across repeats. The
       gate uses the MEDIAN of per-pair ratios: the two sides of one
       pair share the same host-noise phase, so a slow phase moves
       both times, not the ratio — where a ratio of two independent
       minima doubles the noise. *)
    let a, b =
      if k land 1 = 0 then
        let a = once 1 in
        let b = once ~pool:p4 4 in
        (a, b)
      else
        let b = once ~pool:p4 4 in
        let a = once 1 in
        (a, b)
    in
    keep rep1 t1 a;
    keep rep4 t4 b;
    ratios.(k) <- snd a /. snd b
  done;
  Pool.shutdown p4;
  let r1 = Option.get !rep1 and r4 = Option.get !rep4 in
  if not (Ss_mux.Mux.equal_report r1 r4) then
    failwith "throughput-smoke: shard=4 report differs from shard=1";
  Array.sort compare ratios;
  let med = ratios.(reps / 2) in
  let best = ratios.(reps - 1) in
  let rate t = float_of_int slots_s /. t in
  pf "# sharded mux: d1 %.0f slots/s, d4 %.0f slots/s (paired d4/d1 median %.2fx, best %.2fx)\n"
    (rate !t1) (rate !t4) med best;
  (* A genuine dispatch regression is deterministic: it slows EVERY
     d4 run, so no pair can show d4 >= d1. Host noise, by contrast,
     scatters pairs on both sides of 1.0. Hence: median >= 0.95
     passes outright; otherwise a single d4-wins pair acquits, with
     a median backstop against gross regressions. *)
  if not (med >= 0.95 || (best >= 1.0 && med >= 0.85)) then
    failwith "throughput-smoke: 4-shard mux below 0.95x the single-shard rate";
  pf "# shard=4 == shard=1 (bitwise), d4 >= 0.95x d1\n"
  end

(* checkpoint-smoke: the cheap CI gate over the crash-safe snapshot
   path. One fixed-seed mux run — police and fault injection active,
   so every serialized subsystem carries live state — with the
   periodic snapshot hook armed must agree bitwise with the
   uncheckpointed baseline (Mux.equal_report), and a run resumed from
   the mid-run snapshot must reproduce the uninterrupted report
   bitwise, including when the resumed run uses a different shard
   count than the one that wrote the snapshot. *)
let checkpoint_smoke () =
  pf "# checkpoint-smoke: snapshot/resume bit-identity on the mux slot loop\n";
  let m = model () in
  let n = 4 and order = 64 and slots = 4096 in
  let service = float_of_int n *. m.Model.mean /. 0.7 in
  let buffer = 30.0 *. m.Model.mean in
  let faults = Ss_mux.Fault.parse "*:burst@0.002+40x2.5;0:corrupt@0.001" in
  let mk () =
    let rng = rng_for "ckpt-smoke" in
    let srcs =
      Array.init n (fun i ->
          Ss_mux.Source.of_model ~name:(Printf.sprintf "s%d" i) ~order m (Rng.split rng))
    in
    Ss_mux.Fault.wrap_all ~rng:(Rng.split rng) faults srcs
  in
  let run ?shards ?checkpoint ?resume () =
    let srcs = mk () in
    let policer =
      Ss_mux.Police.create
        ~config:{ Ss_mux.Police.default with window = 512 }
        (Array.map Ss_mux.Admission.descr_of_source srcs)
    in
    Ss_mux.Mux.run ?shards ?checkpoint ?resume ~police:policer ~buffer ~service ~slots srcs
  in
  let base = run () in
  let path = Filename.temp_file "ss-smoke" ".ckpt" in
  let every = 1500 in
  let ck =
    {
      Ss_mux.Mux.every;
      save =
        (fun ~slot:_ fill -> Ss_checkpoint.to_file ~path ~kind:"bench-smoke" ~meta:"" fill);
    }
  in
  let armed = run ~checkpoint:ck () in
  if not (Ss_mux.Mux.equal_report base armed) then
    failwith "checkpoint-smoke: snapshot hook perturbed the run";
  pf "# armed == baseline (bitwise), snapshots every %d slots\n" every;
  let resume_with shards =
    let _, r = Ss_checkpoint.of_file ~path ~kind:"bench-smoke" in
    let resumed = run ~shards ~resume:r () in
    if not (Ss_mux.Mux.equal_report base resumed) then
      failwith
        (Printf.sprintf "checkpoint-smoke: resumed run (shards=%d) differs from baseline" shards)
  in
  resume_with 1;
  resume_with 4;
  (try Sys.remove path with Sys_error _ -> ());
  pf "# resume (shards=1 and shards=4) == uninterrupted (bitwise)\n";
  pf "# mean_queue=%.6g loss=%.3g\n" base.Ss_mux.Mux.mean_queue base.Ss_mux.Mux.loss_fraction

(* ------------------------------------------------------------------ *)
(* abr: streaming-client fleets over mux trajectories                  *)
(* ------------------------------------------------------------------ *)

(* One mux run whose per-source served/delay trajectory feeds a whole
   fleet of clients. Sources and faults draw from a tag-seeded master
   stream, so every scenario rebuilds bit-identical traffic. Returns
   the advanced generator for the fleet's client substreams. *)
let abr_trajectory ~tag ~n ~order ~utilization ~slots ?faults () =
  let m = model () in
  let rng = Rng.create ~seed:(Defaults.seed + Hashtbl.hash tag) in
  let srcs =
    Array.init n (fun i ->
        Ss_mux.Source.of_model ~name:(Printf.sprintf "s%d" i) ~order m (Rng.split rng))
  in
  let srcs =
    match faults with
    | None -> srcs
    | Some fs -> Ss_mux.Fault.wrap_all ~rng:(Rng.split rng) fs srcs
  in
  let service = float_of_int n *. m.Model.mean /. utilization in
  let fps = Defaults.scene_config_intra.Ss_video.Scene_source.fps in
  let capture = Ss_abr.Trajectory.create ~slots ~sources:n ~slot_s:(1.0 /. fps) in
  let report =
    Ss_mux.Mux.run ?pool:(pool ()) ~trajectory:(Ss_abr.Trajectory.sink capture) ~service
      ~slots srcs
  in
  (capture, report, rng)

let abr_chunk_frames = 30

(* Bitrate ladder shared by the abr experiments: equal-seed
   Scene_source rungs (Scene_source.ladder) calibrated so the 1.0
   rung's mean rate matches the fitted model's per-source mean. *)
let abr_ladder =
  lazy
    (let m = model () in
     let base =
       {
         Defaults.scene_config_intra with
         Ss_video.Scene_source.frames = abr_chunk_frames * 96;
       }
     in
     let rung_rng () = Rng.create ~seed:(Defaults.seed + Hashtbl.hash "abr-ladder") in
     let cal = Ss_video.Scene_source.generate base (rung_rng ()) in
     let scale = m.Model.mean /. D.mean cal.Trace.sizes in
     let cfgs =
       Ss_video.Scene_source.ladder
         ~levels:[ 0.3; 0.55; 1.0; 1.8; 3.0 ]
         {
           base with
           Ss_video.Scene_source.mean_i_bytes =
             base.Ss_video.Scene_source.mean_i_bytes *. scale;
         }
     in
     Ss_abr.Ladder.of_traces ~chunk_frames:abr_chunk_frames
       (List.map (fun c -> Ss_video.Scene_source.generate c (rung_rng ())) cfgs))

let json_summary (s : Ss_abr.Fleet.summary) =
  Printf.sprintf
    "{\"mean\": %s, \"std\": %s, \"min\": %s, \"max\": %s, \"q10\": %s, \"q50\": %s, \
     \"q90\": %s}"
    (jf s.Ss_abr.Fleet.mean) (jf s.Ss_abr.Fleet.std) (jf s.Ss_abr.Fleet.min)
    (jf s.Ss_abr.Fleet.max) (jf s.Ss_abr.Fleet.q10) (jf s.Ss_abr.Fleet.q50)
    (jf s.Ss_abr.Fleet.q90)

let abr () =
  pf "# abr: streaming QoE vs bottleneck utilization (lib/abr fleets over lib/mux\n";
  pf "# trajectories); clients replay per-source served work as their bandwidth\n";
  let ladder = Lazy.force abr_ladder in
  let n_src = 4 and order = 128 and slots = 16_384 in
  let utils = [ 0.5; 0.7; 0.85 ] in
  let fleets = [ 4; 16; 64 ] in
  let config = { Ss_abr.Client.default with Ss_abr.Client.chunks = 120; max_buffer_s = 25.0 } in
  let policies = [ Ss_abr.Policy.bba (); Ss_abr.Policy.rate () ] in
  pf "# %d sources, AR order %d, %d trajectory slots; ladder rates (Mbps):" n_src order slots;
  Array.iter (fun r -> pf " %.3f" (r *. 8.0 /. 1e6)) ladder.Ss_abr.Ladder.rates;
  pf "\n# uti  clients  policy  qoe(mean)  qoe(p10)  bitrate(mean Mbps)  rebuf(mean)  rebuf(p90)  zero-stall\n";
  let rows =
    List.concat_map
      (fun u ->
        let capture, _, rng =
          abr_trajectory ~tag:(Printf.sprintf "abr-%g" u) ~n:n_src ~order ~utilization:u
            ~slots ()
        in
        List.concat_map
          (fun clients ->
            List.map
              (fun policy ->
                (* Rng.copy: client j joins at the same slot under
                   every policy and fleet size, pairing the grid. *)
                let report, _ =
                  Ss_abr.Fleet.run ?pool:(pool ()) ~rng:(Rng.copy rng) ~clients ~policy
                    ~ladder ~trajectory:capture ~config ()
                in
                pf "%5.2f  %7d  %-6s  %9.4f  %8.4f  %18.4f  %11.4f  %10.4f  %9.2f\n" u
                  clients report.Ss_abr.Fleet.policy report.Ss_abr.Fleet.qoe.Ss_abr.Fleet.mean
                  report.Ss_abr.Fleet.qoe.Ss_abr.Fleet.q10
                  report.Ss_abr.Fleet.bitrate_mbps.Ss_abr.Fleet.mean
                  report.Ss_abr.Fleet.rebuffer_ratio.Ss_abr.Fleet.mean
                  report.Ss_abr.Fleet.rebuffer_ratio.Ss_abr.Fleet.q90
                  report.Ss_abr.Fleet.zero_rebuffer_fraction;
                (u, report))
              policies)
          fleets)
      utils
  in
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "{\n  \"machine\": %s,\n" (machine_json ());
  Printf.bprintf buf
    "  \"sources\": %d, \"order\": %d, \"slots\": %d, \"chunks\": %d, \"chunk_s\": %s,\n"
    n_src order slots config.Ss_abr.Client.chunks
    (jf ladder.Ss_abr.Ladder.chunk_s);
  Printf.bprintf buf "  \"ladder_rates_bps\": [%s],\n"
    (String.concat ", " (Array.to_list (Array.map (fun r -> jf r) ladder.Ss_abr.Ladder.rates)));
  Printf.bprintf buf "  \"cells\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (u, (r : Ss_abr.Fleet.report)) ->
      Printf.bprintf buf
        "    {\"utilization\": %s, \"clients\": %d, \"policy\": \"%s\", \"qoe\": %s, \
         \"rebuffer_ratio\": %s, \"bitrate_mbps\": %s, \"startup_s\": %s, \
         \"zero_rebuffer_fraction\": %s, \"mean_level\": %s, \"mean_switches\": %s}%s\n"
        (jf u) r.Ss_abr.Fleet.clients r.Ss_abr.Fleet.policy (json_summary r.Ss_abr.Fleet.qoe)
        (json_summary r.Ss_abr.Fleet.rebuffer_ratio)
        (json_summary r.Ss_abr.Fleet.bitrate_mbps)
        (json_summary r.Ss_abr.Fleet.startup_s)
        (jf ~decimals:4 r.Ss_abr.Fleet.zero_rebuffer_fraction)
        (jf ~decimals:4 r.Ss_abr.Fleet.mean_level)
        (jf ~decimals:4 r.Ss_abr.Fleet.mean_switches)
        (if i = last then "" else ","))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_abr.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "# wrote BENCH_abr.json\n"

(* Seconds-scale CI gate over the ABR layer. One background source
   drifts to 3x its declared mean, squeezing the served-work share of
   the well-behaved sources: (1) the squeeze must actually cause
   rebuffering; (2) a protective buffer-based policy (deep reservoir)
   must stall no more than the throughput-chasing rate policy; (3) a
   fleet rerun without the pool must be bit-identical per client —
   with SS_DOMAINS>1 in the environment this pins the pooled fanout
   to the sequential reference. *)
let abr_smoke () =
  pf "# abr-smoke: drift-squeezed fleet - policy ordering + pool bit-identity\n";
  let faults = [ (Some 0, [ Ss_mux.Fault.Drift { start = 1024; ramp = 512; factor = 3.0 } ]) ] in
  let capture, mux_report, rng =
    abr_trajectory ~tag:"abr-smoke" ~n:4 ~order:64 ~utilization:0.6 ~slots:8192 ~faults ()
  in
  pf "# mux mean queue %.0f B (3x drift on source 0 from slot 1024)\n"
    mux_report.Ss_mux.Mux.mean_queue;
  let ladder = Lazy.force abr_ladder in
  let config = { Ss_abr.Client.default with Ss_abr.Client.chunks = 160; max_buffer_s = 12.0 } in
  let bba = Ss_abr.Policy.bba ~reservoir_s:10.0 ~cushion_s:10.0 () in
  let rate = Ss_abr.Policy.rate () in
  let run ~pool policy =
    Ss_abr.Fleet.run ?pool ~rng:(Rng.copy rng) ~clients:32 ~policy ~ladder
      ~trajectory:capture ~config ()
  in
  let rep_bba, res_bba = run ~pool:(pool ()) bba in
  let rep_rate, _ = run ~pool:(pool ()) rate in
  pf "# bba   rebuffer ratio mean %.4f  (total stall %.1f s, qoe %.4f)\n"
    rep_bba.Ss_abr.Fleet.rebuffer_ratio.Ss_abr.Fleet.mean rep_bba.Ss_abr.Fleet.rebuffer_s_total
    rep_bba.Ss_abr.Fleet.qoe.Ss_abr.Fleet.mean;
  pf "# rate  rebuffer ratio mean %.4f  (total stall %.1f s, qoe %.4f)\n"
    rep_rate.Ss_abr.Fleet.rebuffer_ratio.Ss_abr.Fleet.mean
    rep_rate.Ss_abr.Fleet.rebuffer_s_total rep_rate.Ss_abr.Fleet.qoe.Ss_abr.Fleet.mean;
  if rep_rate.Ss_abr.Fleet.rebuffer_s_total <= 0.0 then
    failwith "abr-smoke: drift squeeze caused no rebuffering";
  if
    rep_bba.Ss_abr.Fleet.rebuffer_ratio.Ss_abr.Fleet.mean
    > rep_rate.Ss_abr.Fleet.rebuffer_ratio.Ss_abr.Fleet.mean
  then failwith "abr-smoke: buffer-based policy stalled more than rate-based";
  let _, res_seq = run ~pool:None bba in
  let feq a b = Int64.bits_of_float a = Int64.bits_of_float b in
  Array.iteri
    (fun j (a : Ss_abr.Client.result) ->
      let b = res_seq.(j) in
      if
        not
          (feq a.Ss_abr.Client.qoe b.Ss_abr.Client.qoe
          && feq a.Ss_abr.Client.rebuffer_s b.Ss_abr.Client.rebuffer_s
          && feq a.Ss_abr.Client.startup_s b.Ss_abr.Client.startup_s
          && feq a.Ss_abr.Client.mean_bitrate_mbps b.Ss_abr.Client.mean_bitrate_mbps
          && a.Ss_abr.Client.switches = b.Ss_abr.Client.switches)
      then failwith (Printf.sprintf "abr-smoke: client %d differs pooled vs sequential" j))
    res_bba;
  pf "# pooled fleet == sequential fleet (bitwise, %d clients)\n" (Array.length res_bba)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let perf () =
  let open Bechamel in
  let rng = Rng.create ~seed:1 in
  let fgn_table = Hosking.Table.make ~acf:(Acf.fgn ~h:0.9) ~n:1024 in
  let dh_plan = DH.plan ~acf:(Acf.fgn ~h:0.9) ~n:4096 in
  let m = model () in
  let xs = Array.init 4096 (fun _ -> Rng.gaussian rng) in
  let arrivals = Array.init 4096 (fun _ -> abs_float (Rng.gaussian rng)) in
  let is_cfg =
    Is.make_config ~table:fgn_table ~arrival:(fun _ x -> x) ~service:0.5 ~buffer:8.0
      ~horizon:1024 ~twist:1.0 ()
  in
  let tests =
    [
      Test.make ~name:"hosking-table-path-1024" (Staged.stage (fun () ->
          ignore (Hosking.generate fgn_table rng)));
      Test.make ~name:"davies-harte-path-4096" (Staged.stage (fun () ->
          ignore (DH.generate dh_plan rng)));
      Test.make ~name:"transform-apply-4096" (Staged.stage (fun () ->
          ignore (Transform.apply m.Model.transform xs)));
      Test.make ~name:"lindley-path-4096" (Staged.stage (fun () ->
          ignore (Ss_queueing.Lindley.path ~service:1.0 arrivals)));
      Test.make ~name:"fft-4096" (Staged.stage (fun () ->
          ignore (Ss_fft.Fft.real_forward_magnitude2 xs)));
      Test.make ~name:"acf-4096-lag100" (Staged.stage (fun () ->
          ignore (D.acf xs ~max_lag:100)));
      Test.make ~name:"normal-quantile" (Staged.stage (fun () ->
          ignore (Ss_stats.Special.normal_quantile 0.123)));
      Test.make ~name:"is-replication-1024" (Staged.stage (fun () ->
          ignore (Is.replicate is_cfg rng)));
    ]
  in
  let benchmark test =
    let quota = Time.second 0.5 in
    Benchmark.all (Benchmark.cfg ~limit:2000 ~quota ~kde:(Some 1000) ())
      Toolkit.Instance.[ monotonic_clock ]
      test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  pf "# perf: Bechamel micro-benchmarks (monotonic clock)\n";
  pf "# %-28s  %14s\n" "benchmark" "time/run";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            let human v =
              if v > 1e9 then Printf.sprintf "%8.3f s" (v /. 1e9)
              else if v > 1e6 then Printf.sprintf "%8.3f ms" (v /. 1e6)
              else if v > 1e3 then Printf.sprintf "%8.3f us" (v /. 1e3)
              else Printf.sprintf "%8.1f ns" v
            in
            pf "%-30s  %14s\n" name (human est)
          | _ -> pf "%-30s  (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
    ("fig17", fig17);
    ("abl-gen", abl_gen);
    ("abl-knee", abl_knee);
    ("abl-atten", abl_atten);
    ("abl-trunc", abl_trunc);
    ("abl-hurst", abl_hurst);
    ("abl-farima", abl_farima);
    ("abl-trad", abl_trad);
    ("abl-marg", abl_marg);
    ("abl-mux", abl_mux);
    ("mux-gain", mux_gain);
    ("mux-is", mux_is);
    ("mux-is-smoke", mux_is_smoke);
    ("police", police);
    ("police-smoke", police_smoke);
    ("abl-slice", abl_slice);
    ("abl-norros", abl_norros);
    ("abl-batch", abl_batch);
    ("abl-ibp-queue", abl_ibp_queue);
    ("abl-codec", abl_codec);
    ("abl-twist", abl_twist);
    ("abl-iter", abl_iter);
    ("perf-parallel", perf_parallel);
    ("throughput", throughput);
    ("throughput-smoke", throughput_smoke);
    ("checkpoint-smoke", checkpoint_smoke);
    ("abr", abr);
    ("abr-smoke", abr_smoke);
  ]

let run_one (id, f) =
  let t0 = Unix.gettimeofday () in
  f ();
  pf "# [%s done in %.1f s]\n\n%!" id (Unix.gettimeofday () -. t0)

(* Run one experiment with stdout redirected into dir/<id>.dat —
   feeds the gnuplot scripts in plots/. *)
let run_into dir (id, f) =
  let path = Filename.concat dir (id ^ ".dat") in
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let finish () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  (try
     let t0 = Unix.gettimeofday () in
     f ();
     flush stdout;
     finish ();
     Printf.printf "wrote %s (%.1f s)\n%!" path (Unix.gettimeofday () -. t0)
   with e ->
     finish ();
     raise e)

(* Strict-parse the given BENCH_*.json artifacts (the CI gate against
   bare nan/inf tokens sneaking back into a writer). *)
let check_json files =
  let bad = ref 0 in
  List.iter
    (fun path ->
      match Ss_json.validate_file path with
      | Ok () -> Printf.printf "%s: ok\n" path
      | Error msg ->
        incr bad;
        Printf.eprintf "%s: %s\n" path msg
      | exception Sys_error msg ->
        incr bad;
        Printf.eprintf "%s\n" msg)
    files;
  if !bad > 0 then exit 1

(* Peel trailing `--backend B` / `--precision P` / `--kernel K`
   smoke-variant selectors off the argument list (setting the smoke
   refs), leaving the rest for the usual dispatch. *)
let rec peel_variant = function
  | "--backend" :: v :: rest ->
    (smoke_backend :=
       match v with
       | "hosking" -> `Hosking
       | "paxson" -> `Paxson
       | _ ->
         prerr_endline ("bad --backend " ^ v ^ " (expected hosking or paxson)");
         exit 1);
    peel_variant rest
  | "--precision" :: v :: rest ->
    (smoke_precision :=
       match v with
       | "exact" -> `Exact
       | "relaxed" -> `Relaxed
       | _ ->
         prerr_endline ("bad --precision " ^ v ^ " (expected exact or relaxed)");
         exit 1);
    peel_variant rest
  | "--kernel" :: v :: rest ->
    (smoke_kernel :=
       match v with
       | "exact" -> `Exact
       | "relaxed" -> `Relaxed
       | "fft" -> `Fft
       | _ ->
         prerr_endline ("bad --kernel " ^ v ^ " (expected exact, relaxed or fft)");
         exit 1);
    peel_variant rest
  | x :: rest -> x :: peel_variant rest
  | [] -> []

let () =
  match List.tl (Array.to_list Sys.argv) with
  | "--check-json" :: files ->
    if files = [] then begin
      prerr_endline "usage: main.exe --check-json FILE...";
      exit 1
    end;
    check_json files
  | args -> (
    match peel_variant args with
    | [] ->
      pf "# Reproduction harness: Huang/Devetsikiotis/Lambadaris/Kaye, SIGCOMM '95\n";
      pf "# replications per estimate: %d%s\n\n" reps
        (if Defaults.full_scale then " (SS_FULL: paper scale)"
         else " (set SS_FULL=1 for paper scale)");
      List.iter run_one experiments;
      run_one ("perf", perf)
    | [ "--perf" ] -> perf ()
    | [ "--out"; dir ] ->
      if not (Sys.file_exists dir && Sys.is_directory dir) then Unix.mkdir dir 0o755;
      List.iter (run_into dir) experiments
    | [ id ] -> (
      match List.assoc_opt id experiments with
      | Some f -> run_one (id, f)
      | None ->
        prerr_endline ("unknown experiment: " ^ id);
        prerr_endline
          ("known: --perf --out DIR --check-json FILE... "
          ^ String.concat " " (List.map fst experiments));
        exit 1)
    | _ ->
      prerr_endline
        "usage: main.exe [experiment-id [--backend hosking|paxson] [--precision \
         exact|relaxed] [--kernel exact|relaxed|fft] | --perf | --out DIR | --check-json \
         FILE...]";
      exit 1)

(* vbrsim: command-line front end to the self-similar VBR video
   modeling library.

   Subcommands mirror the paper's workflow: synthesize a reference
   trace (synth), inspect it (summary, hurst), fit the unified model
   (fit), generate synthetic traffic from a fitted model (generate,
   mpeg), and evaluate queueing behaviour (queue, fastsim). *)

module Rng = Ss_stats.Rng
module D = Ss_stats.Descriptive
module Hurst = Ss_fractal.Hurst
module Trace = Ss_video.Trace
module Gop = Ss_video.Gop
module Scene = Ss_video.Scene_source
module Mc = Ss_queueing.Mc
module Trace_sim = Ss_queueing.Trace_sim
module Is = Ss_fastsim.Is_estimator
module Valley = Ss_fastsim.Valley
module Model = Ss_core.Model
module Pool = Ss_parallel.Pool
module Fit = Ss_core.Fit
module Generate = Ss_core.Generate
module Mpeg = Ss_core.Mpeg
module Report = Ss_core.Report

open Cmdliner

(* --- common arguments --- *)

let trace_arg =
  let doc = "Input trace file (one frame size per line, '#'-metadata header)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)

let output_arg =
  let doc = "Output trace file." in
  Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"INT" ~doc)

let frames_arg ~default =
  let doc = "Number of frames." in
  Arg.(value & opt int default & info [ "frames" ] ~docv:"INT" ~doc)

let max_lag_arg =
  let doc = "Largest autocorrelation lag used by the fit." in
  Arg.(value & opt int 500 & info [ "max-lag" ] ~docv:"INT" ~doc)

let utilization_arg =
  let doc = "Link utilization in (0,1)." in
  Arg.(value & opt float 0.6 & info [ "utilization"; "u" ] ~docv:"FLOAT" ~doc)

let replications_arg =
  let doc = "Independent replications per estimate." in
  Arg.(value & opt int 300 & info [ "replications"; "n" ] ~docv:"INT" ~doc)

let domains_arg =
  let doc =
    "Domains (cores) for the parallel execution layer; estimates are bit-identical for any \
     value. Defaults to $(b,SS_DOMAINS) or 1 (sequential)."
  in
  Arg.(value & opt int (Pool.env_domains ()) & info [ "domains" ] ~docv:"INT" ~doc)

let shards_arg =
  let doc =
    "Source shards for the multiplexer's staging layer (contiguous shards of sources, \
     advanced block-wise and synchronized at a coarse per-block barrier). Reports are \
     bit-identical for any value. Defaults to the pool size ($(b,--domains))."
  in
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"INT" ~doc)

let backend_arg =
  let doc =
    "Background synthesis backend for model sources: $(b,hosking) streams the truncated \
     Durbin-Levinson recursion (open-ended, O(order) memory); $(b,davies-harte) synthesizes \
     the whole fixed horizon exactly at every lag in O(n log n) via circulant embedding; \
     $(b,paxson) is the approximate half-size-circulant FFT sampler — about twice the \
     davies-harte synthesis throughput, statistically (not bitwise) faithful. The \
     materializing backends are incompatible with importance sampling ($(b,--is), nonzero \
     $(b,--twist)), which needs per-step innovations."
  in
  Arg.(
    value & opt string "hosking" & info [ "backend" ] ~docv:"hosking|davies-harte|paxson" ~doc)

let parse_backend = function
  | "hosking" -> `Hosking
  | "davies-harte" | "dh" -> `Davies_harte
  | "paxson" -> `Paxson
  | s ->
    invalid_arg (Printf.sprintf "bad backend %S (expected hosking, davies-harte or paxson)" s)

let precision_arg =
  let doc =
    "Arithmetic tier for model sources: $(b,exact) (default) keeps sample paths bitwise \
     reproducible against the committed fixtures; $(b,relaxed) swaps in the reassociated \
     4-accumulator AR dot kernel and the erf-free normal CDF (absolute error < 7.5e-8) — \
     faster, statistically equivalent, but seed-incompatible with the exact tier. Refused \
     with $(b,--is): the likelihood accumulator replays exact-tier arithmetic."
  in
  Arg.(value & opt string "exact" & info [ "precision" ] ~docv:"exact|relaxed" ~doc)

let parse_precision = function
  | "exact" -> `Exact
  | "relaxed" -> `Relaxed
  | s -> invalid_arg (Printf.sprintf "bad precision %S (expected exact or relaxed)" s)

let kernel_arg =
  let doc =
    "Streaming-synthesis kernel for model sources — supersedes $(b,--precision) with a \
     third tier: $(b,exact) and $(b,relaxed) are the two precision tiers; $(b,fft) runs \
     the overlap-save FFT block kernel, computing the frozen AR filter's long-lag \
     contribution spectrally per 128-slot block — amortized sublinear in $(b,--order) per \
     slot, largest win at high orders. Like relaxed, fft is statistically gated but \
     seed-incompatible with the exact tier. Refused with $(b,--is). When both flags are \
     given they must agree."
  in
  Arg.(value & opt (some string) None & info [ "kernel" ] ~docv:"exact|relaxed|fft" ~doc)

let parse_kernel = function
  | "exact" -> `Exact
  | "relaxed" -> `Relaxed
  | "fft" -> `Fft
  | s -> invalid_arg (Printf.sprintf "bad kernel %S (expected exact, relaxed or fft)" s)

(* CLI face of [Source.resolve_kernel]: --kernel supersedes
   --precision, and a --precision that names a different tier is a
   contradiction, not a preference. *)
let resolve_kernel ~precision_s ~kernel_s : Ss_mux.Source.kernel =
  match kernel_s with
  | None -> (parse_precision precision_s :> Ss_mux.Source.kernel)
  | Some ks ->
    let k = parse_kernel ks in
    (match parse_precision precision_s with
    | `Relaxed when k <> `Relaxed ->
      invalid_arg "--precision and --kernel disagree; pass just --kernel"
    | _ -> k)

let kernel_name = function `Exact -> "exact" | `Relaxed -> "relaxed" | `Fft -> "fft"

let csv_arg =
  let doc =
    "Also write the overflow curve as CSV rows '(buffer, overflow)' to $(docv) (normalized \
     buffer units; '#'-prefixed header), for the plots/ scripts."
  in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let write_overflow_csv ?(class_delays = []) ?trajectory path rows =
  let oc = open_out path in
  output_string oc "# buffer,overflow\n";
  List.iter (fun (b, p) -> Printf.fprintf oc "%g,%g\n" b p) rows;
  if class_delays <> [] then begin
    output_string oc "# class,quantile,delay_slots\n";
    List.iter
      (fun (c, qs) -> List.iter (fun (p, d) -> Printf.fprintf oc "%d,%g,%g\n" c p d) qs)
      class_delays
  end;
  (match trajectory with
  | None -> ()
  | Some tr ->
    output_string oc "# trajectory: slot,source,served,delay_slots\n";
    for t = 0 to tr.Ss_abr.Trajectory.filled - 1 do
      for i = 0 to tr.Ss_abr.Trajectory.sources - 1 do
        Printf.fprintf oc "%d,%d,%g,%g\n" t i
          tr.Ss_abr.Trajectory.served.(i).(t)
          tr.Ss_abr.Trajectory.delays.(i).(t)
      done
    done);
  close_out oc;
  Format.printf "wrote overflow curve to %s@." path

let wrap f =
  try
    f ();
    0
  with
  | Invalid_argument msg | Failure msg ->
    Printf.eprintf "vbrsim: %s\n" msg;
    1
  | Sys_error msg ->
    Printf.eprintf "vbrsim: %s\n" msg;
    1
  | Ss_checkpoint.Corrupt msg ->
    Printf.eprintf "vbrsim: corrupt or mismatched checkpoint: %s\n" msg;
    1

(* --- checkpoint/resume plumbing (mux and abr) --- *)

let checkpoint_every_arg =
  let doc =
    "Snapshot the full simulation state every $(docv) slots (rounded up to the engine's \
     staging block) into $(b,--checkpoint-file). Requires $(b,--checkpoint-file)."
  in
  Arg.(value & opt (some int) None & info [ "checkpoint-every" ] ~docv:"SLOTS" ~doc)

let checkpoint_file_arg =
  let doc =
    "Checkpoint file path. Snapshots are published atomically (temp file + rename), so a \
     crash mid-write never leaves a torn checkpoint."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint-file" ] ~docv:"FILE" ~doc)

let resume_arg =
  let doc =
    "Resume from a checkpoint file written by $(b,--checkpoint-every). The run must be \
     launched with the same parameters (trace, seed, sources, ...); the resumed run is \
     bitwise identical to the uninterrupted one, at any $(b,--domains)/$(b,--shards)."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)

let allow_clipping_arg =
  let doc =
    "Proceed even when the approximate Paxson backend clips more than 1% of its circulant \
     spectrum mass for this model (the synthesis would be statistically distorted; refused \
     by default)."
  in
  Arg.(value & flag & info [ "allow-clipping" ] ~doc)

(* Checkpoint framing shared by mux and abr: the [meta] channel of the
   container carries a fingerprint of every run parameter the snapshot
   depends on (including a digest of the input trace), so resuming
   under different parameters is refused up front with both
   fingerprints shown — never a garbage restore. Shard/domain counts
   are deliberately NOT part of the fingerprint: snapshots are
   engine-layout independent. *)
let checkpoint_plumbing ~kind ~meta ~checkpoint_every ~checkpoint_file ~resume ~save_extra
    ~restore_extra =
  let save =
    match (checkpoint_every, checkpoint_file) with
    | None, None -> None
    | Some every, Some path ->
      if every < 1 then invalid_arg "--checkpoint-every must be positive";
      Some
        ( every,
          fun fill ->
            Ss_checkpoint.to_file ~path ~kind ~meta (fun w ->
                save_extra w;
                fill w) )
    | Some _, None -> invalid_arg "--checkpoint-every requires --checkpoint-file"
    | None, Some _ -> invalid_arg "--checkpoint-file requires --checkpoint-every"
  in
  let resume_reader =
    match resume with
    | None -> None
    | Some path ->
      let saved_meta, r = Ss_checkpoint.of_file ~path ~kind in
      if not (String.equal saved_meta meta) then
        raise
          (Ss_checkpoint.Corrupt
             (Printf.sprintf
                "%s: run parameters differ from the checkpoint's\n  checkpoint: %s\n  this run:   %s"
                path saved_meta meta));
      restore_extra r;
      Some r
  in
  (save, resume_reader)

(* --- synth --- *)

let synth_cmd =
  let gop_arg =
    let doc = "GOP pattern (e.g. IBBPBBPBBPBB, or I for intraframe-only)." in
    Arg.(value & opt string "IBBPBBPBBPBB" & info [ "gop" ] ~docv:"PATTERN" ~doc)
  in
  let hurst_arg =
    let doc = "Target Hurst parameter in (0.5,1)." in
    Arg.(value & opt float 0.9 & info [ "hurst" ] ~docv:"FLOAT" ~doc)
  in
  let mean_arg =
    let doc = "Mean I-frame size in bytes." in
    Arg.(value & opt float 9000.0 & info [ "mean-i-bytes" ] ~docv:"FLOAT" ~doc)
  in
  let run output frames seed gop hurst mean_i_bytes =
    wrap (fun () ->
        let cfg =
          { Scene.default with frames; gop = Gop.of_string gop; hurst; mean_i_bytes }
        in
        let trace = Scene.generate cfg (Rng.create ~seed) in
        Trace.save trace output;
        Format.printf "wrote %d frames to %s@." frames output;
        Format.printf "%a" Trace.pp_summary (Trace.summarize trace))
  in
  let doc = "Synthesize a scene-model VBR video trace." in
  Cmd.v (Cmd.info "synth" ~doc)
    Term.(
      const run $ output_arg $ frames_arg ~default:131_072 $ seed_arg $ gop_arg $ hurst_arg
      $ mean_arg)

(* --- summary --- *)

let summary_cmd =
  let run path =
    wrap (fun () ->
        let trace = Trace.load path in
        Format.printf "trace             %s@." trace.Trace.name;
        Format.printf "gop               %s@." (Gop.to_string trace.Trace.gop);
        Format.printf "%a" Trace.pp_summary (Trace.summarize trace))
  in
  let doc = "Print Table-1 style statistics of a trace." in
  Cmd.v (Cmd.info "summary" ~doc) Term.(const run $ trace_arg)

(* --- hurst --- *)

let hurst_cmd =
  let run path domains =
    wrap (fun () ->
        Pool.with_pool ~domains @@ fun pool ->
        let trace = Trace.load path in
        let sizes = trace.Trace.sizes in
        let vt = Hurst.variance_time ?pool sizes in
        let rs = Hurst.rs ?pool sizes in
        let pg = Hurst.periodogram sizes in
        Format.printf "variance-time  H = %.3f  (fit r2 %.3f)@." vt.Hurst.h
          vt.Hurst.fit.Ss_stats.Regression.r2;
        Format.printf "R/S            H = %.3f  (fit r2 %.3f)@." rs.Hurst.h
          rs.Hurst.fit.Ss_stats.Regression.r2;
        Format.printf "periodogram    H = %.3f@." pg.Hurst.h;
        Format.printf "adopted        H = %.2f@."
          (Fit.hurst_round ((vt.Hurst.h +. rs.Hurst.h) /. 2.0)))
  in
  let doc = "Estimate the Hurst parameter (variance-time, R/S, periodogram)." in
  Cmd.v (Cmd.info "hurst" ~doc) Term.(const run $ trace_arg $ domains_arg)

(* --- acf --- *)

let acf_cmd =
  let lags_arg =
    let doc = "Largest lag to print." in
    Arg.(value & opt int 200 & info [ "max-lag" ] ~docv:"INT" ~doc)
  in
  let step_arg =
    let doc = "Print every STEP-th lag." in
    Arg.(value & opt int 1 & info [ "step" ] ~docv:"INT" ~doc)
  in
  let kind_arg =
    let doc = "Restrict to one frame type (I, P or B)." in
    Arg.(value & opt (some string) None & info [ "kind" ] ~docv:"I|P|B" ~doc)
  in
  let run path max_lag step kind =
    wrap (fun () ->
        if step <= 0 then invalid_arg "step must be positive";
        let trace = Trace.load path in
        let sizes =
          match kind with
          | None -> trace.Trace.sizes
          | Some s when String.length s = 1 ->
            Trace.of_kind trace (Ss_video.Frame.of_char s.[0])
          | Some s -> invalid_arg (Printf.sprintf "bad kind %S" s)
        in
        let r = D.acf sizes ~max_lag in
        Format.printf "# lag  r(lag)@.";
        let k = ref 1 in
        while !k <= max_lag do
          Format.printf "%5d  %.5f@." !k r.(!k);
          k := !k + step
        done)
  in
  let doc = "Print the sample autocorrelation function of a trace." in
  Cmd.v (Cmd.info "acf" ~doc) Term.(const run $ trace_arg $ lags_arg $ step_arg $ kind_arg)

(* --- compare --- *)

let compare_cmd =
  let trace2_arg =
    let doc = "Second trace file." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"TRACE2" ~doc)
  in
  let run path1 path2 =
    wrap (fun () ->
        let a = Trace.load path1 and b = Trace.load path2 in
        let sa = a.Trace.sizes and sb = b.Trace.sizes in
        Format.printf "%24s  %12s  %12s@." "" path1 path2;
        Format.printf "%24s  %12.1f  %12.1f@." "mean bytes/frame" (D.mean sa) (D.mean sb);
        Format.printf "%24s  %12.1f  %12.1f@." "std bytes/frame" (D.std sa) (D.std sb);
        Format.printf "%24s  %12.1f  %12.1f@." "peak bytes/frame" (D.max sa) (D.max sb);
        let ha = (Hurst.variance_time sa).Hurst.h and hb = (Hurst.variance_time sb).Hurst.h in
        Format.printf "%24s  %12.3f  %12.3f@." "Hurst (variance-time)" ha hb;
        let max_lag = Stdlib.min 200 (Stdlib.min (Array.length sa) (Array.length sb) / 10) in
        let ra = D.acf sa ~max_lag and rb = D.acf sb ~max_lag in
        let acf_rmse =
          let s = ref 0.0 in
          for k = 1 to max_lag do
            let e = ra.(k) -. rb.(k) in
            s := !s +. (e *. e)
          done;
          sqrt (!s /. float_of_int max_lag)
        in
        Format.printf "%24s  %12.4f@."
          (Printf.sprintf "ACF rmse (lags<=%d)" max_lag)
          acf_rmse;
        let ks =
          Ss_stats.Empirical.ks_distance
            (Ss_stats.Empirical.of_data sa)
            (Ss_stats.Empirical.of_data sb)
        in
        Format.printf "%24s  %12.4f@." "marginal KS distance" ks)
  in
  let doc = "Statistical comparison of two traces (moments, Hurst, ACF, KS)." in
  Cmd.v (Cmd.info "compare" ~doc) Term.(const run $ trace_arg $ trace2_arg)

(* --- fit --- *)

let fit_cmd =
  let run path max_lag =
    wrap (fun () ->
        let trace = Trace.load path in
        let model, diag = Fit.fit ~max_lag trace.Trace.sizes in
        Format.printf "%a@." Report.pp_diagnostics diag;
        Format.printf "%a@." Report.pp_model model)
  in
  let doc = "Fit the unified SRD+LRD model (the paper's four steps)." in
  Cmd.v (Cmd.info "fit" ~doc) Term.(const run $ trace_arg $ max_lag_arg)

(* --- generate --- *)

let generate_cmd =
  let run path output frames seed max_lag =
    wrap (fun () ->
        let trace = Trace.load path in
        let model, diag = Fit.fit ~max_lag trace.Trace.sizes in
        Format.printf "%a@." Report.pp_diagnostics diag;
        let synth =
          Generate.foreground model ~n:frames Generate.Davies_harte (Rng.create ~seed)
        in
        let out =
          Trace.make ~name:"synthetic" ~fps:trace.Trace.fps ~gop:trace.Trace.gop synth
        in
        Trace.save out output;
        Format.printf "wrote %d synthetic frames to %s@." frames output)
  in
  let doc =
    "Fit a trace and generate a synthetic trace with the same marginal and SRD+LRD dependence."
  in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(
      const run $ trace_arg $ output_arg $ frames_arg ~default:131_072 $ seed_arg $ max_lag_arg)

(* --- mpeg --- *)

let mpeg_cmd =
  let run path output frames seed =
    wrap (fun () ->
        let trace = Trace.load path in
        let m = Mpeg.fit trace in
        Format.printf "I-frame model:@.%a@." Report.pp_diagnostics m.Mpeg.i_diag;
        let synth = Mpeg.generate m ~n:frames (Rng.create ~seed) in
        Trace.save synth output;
        Format.printf "wrote %d composite I/B/P frames to %s@." frames output)
  in
  let doc = "Fit the composite I/B/P model (Section 3.3) and generate a synthetic stream." in
  Cmd.v (Cmd.info "mpeg" ~doc)
    Term.(const run $ trace_arg $ output_arg $ frames_arg ~default:131_072 $ seed_arg)

(* --- queue --- *)

let parse_buffers buffers =
  String.split_on_char ',' buffers
  |> List.map (fun s ->
         match float_of_string_opt (String.trim s) with
         | Some b when b >= 0.0 -> b
         | _ -> invalid_arg (Printf.sprintf "bad buffer size %S" s))

let buffers_arg =
  let doc = "Comma-separated normalized buffer sizes (units of mean frame size)." in
  Arg.(
    value & opt string "10,25,50,100,150,200,250" & info [ "buffers"; "b" ] ~docv:"LIST" ~doc)

let queue_cmd =
  let run path utilization buffers csv =
    wrap (fun () ->
        let trace = Trace.load path in
        let sizes = trace.Trace.sizes in
        let bs = parse_buffers buffers in
        let qp = Trace_sim.queue_path ~arrivals:sizes ~utilization in
        Format.printf "# b(normalized)  Pr(Q > b)  log10@.";
        let curve =
          List.map
            (fun b ->
              (b, Trace_sim.overflow_fraction ~queue_path:qp ~buffer:(b *. D.mean sizes)))
            bs
        in
        List.iter
          (fun (b, p) ->
            Format.printf "%8.0f  %.5g  %s@." b p
              (if p > 0.0 then Printf.sprintf "%.3f" (log10 p) else "-inf"))
          curve;
        match csv with None -> () | Some path -> write_overflow_csv path curve)
  in
  let doc = "Single-run overflow curve of a trace through a deterministic-service queue." in
  Cmd.v (Cmd.info "queue" ~doc)
    Term.(const run $ trace_arg $ utilization_arg $ buffers_arg $ csv_arg)

(* --- mux --- *)

let mux_cmd =
  let sources_arg =
    let doc = "Number of multiplexed sources." in
    Arg.(value & opt int 16 & info [ "sources" ] ~docv:"INT" ~doc)
  in
  let slots_arg =
    let doc = "Simulation length in slots (frames)." in
    Arg.(value & opt int 50_000 & info [ "slots" ] ~docv:"INT" ~doc)
  in
  let order_arg =
    let doc =
      "Streaming-source AR order: dependence is exact up to this lag, frozen-AR beyond; \
       memory and per-slot cost are O(order) per source."
    in
    Arg.(value & opt int 256 & info [ "order" ] ~docv:"INT" ~doc)
  in
  let buffer_arg =
    let doc =
      "Finite shared buffer in units of the per-source mean frame size (omit for an \
       unbounded buffer: pure delay, no loss)."
    in
    Arg.(value & opt (some float) None & info [ "buffer" ] ~docv:"FLOAT" ~doc)
  in
  let epsilon_arg =
    let doc = "Admission-control overflow target Pr(Q > b) <= epsilon." in
    Arg.(value & opt float 1e-6 & info [ "epsilon" ] ~docv:"FLOAT" ~doc)
  in
  let composite_arg =
    let doc = "Use the Section-3.3 composite I/B/P model (GOP phases staggered per source)." in
    Arg.(value & flag & info [ "composite" ] ~doc)
  in
  let priority_arg =
    let doc = "Strict priority classes I > P > B (requires $(b,--composite))." in
    Arg.(value & flag & info [ "priority" ] ~doc)
  in
  let is_arg =
    let doc =
      "Importance-sampled overflow estimation instead of a plain simulation run: replicated \
       first-passage of the shared queue above $(b,--buffer), background processes twisted \
       by $(b,--twist). Unified-model sources only; admission control is bypassed."
    in
    Arg.(value & flag & info [ "is" ] ~doc)
  in
  let twist_arg =
    let doc =
      "With $(b,--is): per-source background twisted mean m*; 'sweep' prints the \
       normalized-variance valley, 'auto' runs the coarse-sweep + golden-section search."
    in
    Arg.(value & opt (some string) None & info [ "twist"; "m" ] ~docv:"FLOAT|sweep|auto" ~doc)
  in
  let horizon_arg =
    let doc = "With $(b,--is): replication horizon in slots (default: 10 * buffer)." in
    Arg.(value & opt (some int) None & info [ "horizon"; "k" ] ~docv:"INT" ~doc)
  in
  let faults_arg =
    let doc =
      "Fault-injection spec: semicolon-separated $(i,target:events) groups with target \
       $(b,*) or a source index, events drift@START+RAMPxFACTOR, burst@RATE+LENxAMP, \
       stall@START+LEN, dropout@RATE+LEN, corrupt@RATE, mean=V, sigma2=V, hurst=V. \
       Example: '0:drift@10000+1000x4.0;*:corrupt@0.001'."
    in
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)
  in
  let police_arg =
    let doc =
      "Measurement-based policing of admitted sources: windowed mean/variance and a \
       streaming variance-time Hurst estimate per source, with \
       renegotiate/demote/throttle/evict sanctions on non-conformance."
    in
    Arg.(value & flag & info [ "police" ] ~doc)
  in
  let police_window_arg =
    let doc = "Policing measurement window in slots." in
    Arg.(value & opt int 512 & info [ "police-window" ] ~docv:"INT" ~doc)
  in
  let run_is ~pool ~trace ~utilization ~sources ~order ~backend ~buffer_norm ~buffers ~twist
      ~horizon ~replications ~seed ~max_lag =
    let model, _ = Fit.fit ~max_lag trace.Trace.sizes in
    let per_mean = model.Model.mean in
    let service = float_of_int sources *. per_mean /. utilization in
    let b_norm =
      match buffer_norm with
      | Some b -> b
      | None -> List.fold_left Stdlib.max 0.0 (parse_buffers buffers)
    in
    if b_norm <= 0.0 then invalid_arg "--is needs a positive --buffer";
    let buffer = b_norm *. per_mean in
    let slots =
      match horizon with
      | Some k -> k
      | None -> Stdlib.max 100 (int_of_float (10.0 *. b_norm))
    in
    let config ~twist =
      Ss_mux.Mux_is.make_config ~model ~sources ~order ~backend ~service ~buffer ~slots ~twist
        ()
    in
    let rng = Rng.create ~seed in
    let print_estimate twist e =
      Format.printf "uti=%.2f N=%d b=%.0f (per-source mean units) k=%d m*=%.3f@." utilization
        sources b_norm slots twist;
      Format.printf "%a@." Report.pp_estimate e
    in
    match twist with
    | Some "sweep" ->
      let twists = List.init 10 (fun i -> 0.5 *. float_of_int (i + 1)) in
      let points = Ss_mux.Mux_is.sweep ?pool ~config ~twists ~replications rng in
      Format.printf "# m*  p  normalized-variance  hits@.";
      List.iter
        (fun p ->
          Format.printf "%4.1f  %.4g  %.4g  %d@." p.Valley.twist p.Valley.estimate.Mc.p
            p.Valley.estimate.Mc.normalized_variance p.Valley.estimate.Mc.hits)
        points;
      let best = Valley.best points in
      Format.printf "# best m* = %.1f@." best.Valley.twist
    | Some "auto" ->
      let best = Ss_mux.Mux_is.auto ?pool ~config ~replications rng in
      print_estimate best.Valley.twist best.Valley.estimate
    | twist_opt ->
      let twist =
        match twist_opt with
        | None -> 0.0
        | Some s -> (
          match float_of_string_opt s with
          | Some v -> v
          | None -> invalid_arg (Printf.sprintf "bad twist %S" s))
      in
      print_estimate twist (Ss_mux.Mux_is.estimate ?pool (config ~twist) ~replications rng)
  in
  let run path utilization sources slots order backend precision kernel buffer_norm epsilon
      composite priority buffers csv seed max_lag domains shards is_mode twist horizon
      replications faults police police_window checkpoint_every checkpoint_file resume
      allow_clipping =
    wrap (fun () ->
        if sources <= 0 then invalid_arg "sources must be positive";
        Pool.with_pool ~domains @@ fun pool ->
        if priority && not composite then invalid_arg "--priority requires --composite";
        let backend_s = backend in
        let backend = parse_backend backend in
        let kernel = resolve_kernel ~precision_s:precision ~kernel_s:kernel in
        let trace = Trace.load path in
        if is_mode then begin
          if composite then
            invalid_arg "--is supports unified-model sources only (omit --composite)";
          if faults <> None || police then
            invalid_arg "--faults/--police are incompatible with --is";
          if shards <> None then
            invalid_arg "--shards applies to the mux engine, not --is";
          if checkpoint_every <> None || checkpoint_file <> None || resume <> None then
            invalid_arg
              "--checkpoint-every/--checkpoint-file/--resume are incompatible with --is \
               (importance-sampled replications carry likelihood state outside the snapshot)";
          (match kernel with
          | `Exact -> ()
          | `Relaxed ->
            invalid_arg
              "--precision relaxed is incompatible with --is (the likelihood accumulator \
               replays exact-tier arithmetic)"
          | `Fft ->
            invalid_arg
              "--kernel fft is incompatible with --is (the likelihood accumulator replays \
               the exact per-innovation recursion, which the blocked FFT kernel \
               reassociates)");
          run_is ~pool ~trace ~utilization ~sources ~order ~backend ~buffer_norm ~buffers
            ~twist ~horizon ~replications ~seed ~max_lag
        end
        else begin
        if twist <> None || horizon <> None then
          invalid_arg "--twist/--horizon require --is";
        let meta =
          Printf.sprintf
            "mux trace=%s u=%g sources=%d slots=%d order=%d backend=%s kernel=%s \
             buffer=%s epsilon=%g composite=%b priority=%b buffers=%s csv=%b faults=%s \
             police=%b police-window=%d seed=%d max-lag=%d"
            (Digest.to_hex (Digest.file path))
            utilization sources slots order backend_s (kernel_name kernel)
            (match buffer_norm with None -> "unbounded" | Some b -> Printf.sprintf "%g" b)
            epsilon composite priority buffers (csv <> None)
            (match faults with None -> "-" | Some s -> s)
            police police_window seed max_lag
        in
        let rng = Rng.create ~seed in
        (* The materializing backends synthesize a fixed-length path;
           the simulation length is its natural horizon. *)
        let horizon =
          match backend with `Hosking -> None | `Davies_harte | `Paxson -> Some slots
        in
        let mk, bg_acf =
          if composite then begin
            let m = Mpeg.fit trace in
            ( (fun i ->
                Ss_mux.Source.of_mpeg
                  ~name:(Printf.sprintf "src%02d" i)
                  ~order ~backend ~kernel ?horizon
                  ~phase:(i mod Gop.length m.Mpeg.gop)
                  ~priority m (Rng.split rng)),
              m.Mpeg.background )
          end
          else begin
            let model, _ = Fit.fit ~max_lag trace.Trace.sizes in
            ( (fun i ->
                Ss_mux.Source.of_model ~name:(Printf.sprintf "src%02d" i) ~order ~backend
                  ~kernel ?horizon model (Rng.split rng)),
              Model.background_acf model )
          end
        in
        (match backend with
        | `Paxson ->
          ignore
            (Ss_mux.Source.paxson_clipping_check ~acf:bg_acf ~n:slots ~allow:allow_clipping)
        | `Hosking | `Davies_harte -> ());
        let srcs = Array.init sources mk in
        let srcs =
          (* Zero-fault runs never enter the wrapper, so they stay
             bit-identical to the pre-fault-injection code path. *)
          match faults with
          | None -> srcs
          | Some spec ->
            Ss_mux.Fault.wrap_all ~rng:(Rng.split rng) (Ss_mux.Fault.parse spec) srcs
        in
        let per_mean = srcs.(0).Ss_mux.Source.mean in
        let service = float_of_int sources *. per_mean /. utilization in
        let bs = parse_buffers buffers in
        let thresholds = List.map (fun b -> b *. per_mean) bs in
        let buffer_abs =
          match buffer_norm with None -> infinity | Some b -> b *. per_mean
        in
        let cac_buffer =
          if buffer_abs < infinity then buffer_abs
          else List.fold_left Stdlib.max per_mean thresholds
        in
        let cac = Ss_mux.Admission.create ~service ~buffer:cac_buffer ~epsilon in
        Format.printf "# admission control: service %.1f/slot, buffer %.1f, epsilon %g@."
          service cac_buffer epsilon;
        let admitted =
          Array.of_list
            (List.filter
               (fun s ->
                 match Ss_mux.Admission.try_admit cac (Ss_mux.Admission.descr_of_source s) with
                 | Ss_mux.Admission.Admit p ->
                   Format.printf "  admit  %s  (predicted Pr(Q>b) = %.3g)@."
                     s.Ss_mux.Source.name p;
                   true
                 | Ss_mux.Admission.Reject reason ->
                   Format.printf "  reject %s@." reason;
                   false)
               (Array.to_list srcs))
        in
        if Array.length admitted = 0 then
          Format.printf "no sources admitted; nothing to simulate@."
        else begin
          let policer =
            if police then
              Some
                (Ss_mux.Police.create
                   ~config:{ Ss_mux.Police.default with window = police_window }
                   ~cac
                   (Array.map Ss_mux.Admission.descr_of_source admitted))
            else None
          in
          (* Capture the per-source service/delay trajectory (the same
             hook the ABR layer consumes) only when it will be written:
             the hook itself never perturbs the simulated floats. *)
          let capture =
            match csv with
            | None -> None
            | Some _ ->
              Some
                (Ss_abr.Trajectory.create ~slots ~sources:(Array.length admitted)
                   ~slot_s:(1.0 /. trace.Trace.fps))
          in
          let trajectory = Option.map Ss_abr.Trajectory.sink capture in
          let ck_save, ck_resume =
            checkpoint_plumbing ~kind:"vbrsim-mux" ~meta ~checkpoint_every ~checkpoint_file
              ~resume
              ~save_extra:(fun w ->
                match capture with Some c -> Ss_abr.Trajectory.save c w | None -> ())
              ~restore_extra:(fun r ->
                match capture with Some c -> Ss_abr.Trajectory.restore c r | None -> ())
          in
          let checkpoint =
            Option.map
              (fun (every, writer) ->
                { Ss_mux.Mux.every; save = (fun ~slot:_ fill -> writer fill) })
              ck_save
          in
          let report =
            Ss_mux.Mux.run ?pool ?shards ?police:policer ?trajectory ?checkpoint
              ?resume:ck_resume ~buffer:buffer_abs ~thresholds ~service ~slots admitted
          in
          Format.printf "%a" Ss_mux.Mux.pp_report report;
          (match policer with
          | None -> ()
          | Some p ->
            let incidents = Ss_mux.Police.incidents p in
            if incidents = [] then Format.printf "police: no incidents@."
            else begin
              Format.printf "police incidents (%d):@." (List.length incidents);
              List.iter
                (fun inc -> Format.printf "  %a@." Ss_mux.Police.pp_incident inc)
                incidents
            end);
          let load = Ss_mux.Admission.admitted cac in
          Format.printf "norros overlay (admitted aggregate):@.";
          List.iter
            (fun (b, p) ->
              let pred = Ss_mux.Admission.predicted_overflow ~service ~buffer:b load in
              Format.printf "  Pr(Q > %8.0f)  measured %.5g  norros %.5g@." b p pred)
            report.Ss_mux.Mux.overflow;
          match csv with
          | None -> ()
          | Some path ->
            write_overflow_csv path
              ~class_delays:report.Ss_mux.Mux.class_delay_quantiles ?trajectory:capture
              (List.map (fun (b, p) -> (b /. per_mean, p)) report.Ss_mux.Mux.overflow)
        end
        end)
  in
  let doc =
    "Multiplex N streaming model sources through one finite shared buffer with \
     effective-bandwidth admission control and online accounting; with $(b,--is), \
     importance-sampled estimation of rare shared-buffer overflow."
  in
  Cmd.v (Cmd.info "mux" ~doc)
    Term.(
      const run $ trace_arg $ utilization_arg $ sources_arg $ slots_arg $ order_arg
      $ backend_arg $ precision_arg $ kernel_arg $ buffer_arg $ epsilon_arg $ composite_arg
      $ priority_arg
      $ buffers_arg $ csv_arg $ seed_arg $ max_lag_arg $ domains_arg $ shards_arg $ is_arg
      $ twist_arg $ horizon_arg $ replications_arg $ faults_arg $ police_arg
      $ police_window_arg $ checkpoint_every_arg $ checkpoint_file_arg $ resume_arg
      $ allow_clipping_arg)

(* --- abr --- *)

let abr_cmd =
  let sources_arg =
    let doc = "Number of multiplexed sources (each backs clients round-robin)." in
    Arg.(value & opt int 4 & info [ "sources" ] ~docv:"INT" ~doc)
  in
  let slots_arg =
    let doc = "Multiplexer trajectory length in slots (frames)." in
    Arg.(value & opt int 16_384 & info [ "slots" ] ~docv:"INT" ~doc)
  in
  let order_arg =
    let doc = "Streaming-source AR order." in
    Arg.(value & opt int 128 & info [ "order" ] ~docv:"INT" ~doc)
  in
  let clients_arg =
    let doc = "Streaming clients in the fleet." in
    Arg.(value & opt int 64 & info [ "clients" ] ~docv:"INT" ~doc)
  in
  let chunks_arg =
    let doc = "Chunks each client streams." in
    Arg.(value & opt int 120 & info [ "chunks" ] ~docv:"INT" ~doc)
  in
  let chunk_frames_arg =
    let doc = "Frames per chunk (chunk duration = frames / fps)." in
    Arg.(value & opt int 30 & info [ "chunk-frames" ] ~docv:"INT" ~doc)
  in
  let max_buffer_arg =
    let doc = "Client playback buffer cap in seconds." in
    Arg.(value & opt float 25.0 & info [ "max-buffer" ] ~docv:"SECONDS" ~doc)
  in
  let policies_arg =
    let doc = "Comma-separated adaptation policies: bba, rate, fixed:N." in
    Arg.(value & opt string "bba,rate" & info [ "policies"; "policy" ] ~docv:"LIST" ~doc)
  in
  let levels_arg =
    let doc = "Comma-separated bitrate-ladder level factors (strictly ascending)." in
    Arg.(value & opt string "0.3,0.55,1.0,1.8,3.0" & info [ "levels" ] ~docv:"LIST" ~doc)
  in
  let faults_arg =
    let doc = "Fault-injection spec for the mux sources (see $(b,vbrsim mux --faults))." in
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)
  in
  let parse_policies s =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
    |> List.map (fun name ->
           match name with
           | "bba" -> Ss_abr.Policy.bba ()
           | "rate" -> Ss_abr.Policy.rate ()
           | _ -> (
             match String.index_opt name ':' with
             | Some i when String.sub name 0 i = "fixed" ->
               Ss_abr.Policy.fixed
                 (int_of_string (String.sub name (i + 1) (String.length name - i - 1)))
             | _ -> invalid_arg (Printf.sprintf "bad policy %S (expected bba, rate or fixed:N)" name)))
  in
  let parse_levels s =
    String.split_on_char ',' s
    |> List.map (fun x ->
           match float_of_string_opt (String.trim x) with
           | Some l -> l
           | None -> invalid_arg (Printf.sprintf "bad ladder level %S" x))
  in
  let run path utilization sources slots order backend precision kernel seed max_lag domains
      clients chunks chunk_frames max_buffer policies levels faults checkpoint_every
      checkpoint_file resume allow_clipping =
    wrap (fun () ->
        if sources <= 0 then invalid_arg "sources must be positive";
        let policies_s = policies in
        let policies = parse_policies policies in
        if policies = [] then invalid_arg "no policies given";
        Pool.with_pool ~domains @@ fun pool ->
        let backend_s = backend in
        let backend = parse_backend backend in
        let kernel = resolve_kernel ~precision_s:precision ~kernel_s:kernel in
        let trace = Trace.load path in
        let model, _ = Fit.fit ~max_lag trace.Trace.sizes in
        (* The fingerprint covers the mux phase only: the fleet phase
           re-runs deterministically from the same parameters, so a
           resume mid-fleet restarts the fleets from the completed mux
           trajectory. *)
        let meta =
          Printf.sprintf
            "abr trace=%s u=%g sources=%d slots=%d order=%d backend=%s kernel=%s \
             clients=%d chunks=%d chunk-frames=%d max-buffer=%g policies=%s levels=%s \
             faults=%s seed=%d max-lag=%d"
            (Digest.to_hex (Digest.file path))
            utilization sources slots order backend_s (kernel_name kernel) clients chunks
            chunk_frames
            max_buffer policies_s levels
            (match faults with None -> "-" | Some s -> s)
            seed max_lag
        in
        let rng = Rng.create ~seed in
        let horizon =
          match backend with `Hosking -> None | `Davies_harte | `Paxson -> Some slots
        in
        (match backend with
        | `Paxson ->
          ignore
            (Ss_mux.Source.paxson_clipping_check ~acf:(Model.background_acf model) ~n:slots
               ~allow:allow_clipping)
        | `Hosking | `Davies_harte -> ());
        let srcs =
          Array.init sources (fun i ->
              Ss_mux.Source.of_model ~name:(Printf.sprintf "src%02d" i) ~order ~backend
                ~kernel ?horizon model (Rng.split rng))
        in
        let srcs =
          match faults with
          | None -> srcs
          | Some spec ->
            Ss_mux.Fault.wrap_all ~rng:(Rng.split rng) (Ss_mux.Fault.parse spec) srcs
        in
        let per_mean = srcs.(0).Ss_mux.Source.mean in
        let service = float_of_int sources *. per_mean /. utilization in
        let slot_s = 1.0 /. trace.Trace.fps in
        let capture = Ss_abr.Trajectory.create ~slots ~sources ~slot_s in
        let ck_save, ck_resume =
          checkpoint_plumbing ~kind:"vbrsim-abr" ~meta ~checkpoint_every ~checkpoint_file
            ~resume
            ~save_extra:(fun w -> Ss_abr.Trajectory.save capture w)
            ~restore_extra:(fun r -> Ss_abr.Trajectory.restore capture r)
        in
        let checkpoint =
          Option.map
            (fun (every, writer) ->
              { Ss_mux.Mux.every; save = (fun ~slot:_ fill -> writer fill) })
            ck_save
        in
        let report =
          Ss_mux.Mux.run ?pool ~trajectory:(Ss_abr.Trajectory.sink capture) ?checkpoint
            ?resume:ck_resume ~service ~slots srcs
        in
        Format.printf
          "# mux: %d sources, utilization %.2f, service %.1f B/slot, mean queue %.1f B@."
          sources utilization service report.Ss_mux.Mux.mean_queue;
        (* Bitrate ladder: equal-seed Scene_source rungs calibrated so
           the 1.0 rung's rate matches the per-source mean rate. *)
        let ladder_frames = Stdlib.max (chunk_frames * 96) 2048 in
        let base =
          {
            Scene.default with
            frames = ladder_frames;
            fps = trace.Trace.fps;
            hurst = Stdlib.min 0.95 (Stdlib.max 0.55 model.Model.hurst);
          }
        in
        let cal = Scene.generate base (Rng.create ~seed:(seed + 1)) in
        let scale = model.Model.mean /. D.mean cal.Trace.sizes in
        let cfgs =
          Scene.ladder ~levels:(parse_levels levels)
            { base with mean_i_bytes = base.Scene.mean_i_bytes *. scale }
        in
        let rungs = List.map (fun c -> Scene.generate c (Rng.create ~seed:(seed + 1))) cfgs in
        let ladder = Ss_abr.Ladder.of_traces ~chunk_frames rungs in
        Format.printf "%a" Ss_abr.Ladder.pp ladder;
        let config = { Ss_abr.Client.default with chunks; max_buffer_s = max_buffer } in
        (* Each policy's fleet re-reads the same generator state, so
           client j joins at the same slot under every policy and the
           comparison is paired. *)
        List.iter
          (fun policy ->
            let fleet_rng = Rng.copy rng in
            let fleet_report, _ =
              Ss_abr.Fleet.run ?pool ~rng:fleet_rng ~clients ~policy ~ladder
                ~trajectory:capture ~config ()
            in
            Format.printf "%a" Ss_abr.Fleet.pp_report fleet_report)
          policies)
  in
  let doc =
    "Adaptive-bitrate streaming fleet over a multiplexer trajectory: N model sources share \
     the bottleneck, each client replays one source's served-work process as its bandwidth \
     and adapts across a Scene_source bitrate ladder; reports QoE/rebuffer/bitrate \
     distributions per policy."
  in
  Cmd.v (Cmd.info "abr" ~doc)
    Term.(
      const run $ trace_arg $ utilization_arg $ sources_arg $ slots_arg $ order_arg
      $ backend_arg $ precision_arg $ kernel_arg $ seed_arg $ max_lag_arg $ domains_arg
      $ clients_arg
      $ chunks_arg $ chunk_frames_arg $ max_buffer_arg $ policies_arg $ levels_arg
      $ faults_arg $ checkpoint_every_arg $ checkpoint_file_arg $ resume_arg
      $ allow_clipping_arg)

(* --- fastsim --- *)

let fastsim_cmd =
  let buffer_arg =
    let doc = "Normalized buffer size (units of mean frame size)." in
    Arg.(value & opt float 100.0 & info [ "buffer"; "b" ] ~docv:"FLOAT" ~doc)
  in
  let horizon_arg =
    let doc = "Simulation horizon k in slots (default: 10 * buffer)." in
    Arg.(value & opt (some int) None & info [ "horizon"; "k" ] ~docv:"INT" ~doc)
  in
  let twist_arg =
    let doc = "Background twisted mean m*; 'sweep' prints the Fig-14 valley instead." in
    Arg.(value & opt (some string) None & info [ "twist"; "m" ] ~docv:"FLOAT|sweep" ~doc)
  in
  let run path utilization buffer_norm horizon twist replications seed max_lag domains backend
      =
    wrap (fun () ->
        Pool.with_pool ~domains @@ fun pool ->
        let backend = parse_backend backend in
        let trace = Trace.load path in
        let model, _ = Fit.fit ~max_lag trace.Trace.sizes in
        let mean = model.Model.mean in
        let horizon =
          match horizon with
          | Some k -> k
          | None -> Stdlib.max 100 (int_of_float (10.0 *. buffer_norm))
        in
        let table = Generate.table model ~n:horizon in
        let arrival = Generate.arrival_fn model in
        let service = mean /. utilization in
        let buffer = buffer_norm *. mean in
        let backend =
          match backend with
          | `Hosking -> `Hosking
          | `Davies_harte ->
            `Davies_harte
              (Ss_fractal.Davies_harte.plan ~acf:(Model.background_acf model) ~n:horizon)
          | `Paxson ->
            (* Plain-MC replication over an approximate synthesis would
               bias the estimate; fastsim only replicates exact paths. *)
            invalid_arg
              "fastsim: backend paxson is approximate and cannot drive estimation; use \
               hosking or davies-harte"
        in
        let config ~twist =
          Is.make_config ~table ~arrival ~service ~buffer ~horizon ~twist ~backend ()
        in
        let rng = Rng.create ~seed in
        match twist with
        | Some "sweep" ->
          let twists = List.init 10 (fun i -> 0.5 *. float_of_int (i + 1)) in
          let points = Valley.sweep ?pool ~config ~twists ~replications rng in
          Format.printf "# m*  p  normalized-variance  hits@.";
          List.iter
            (fun p ->
              Format.printf "%4.1f  %.4g  %.4g  %d@." p.Valley.twist p.Valley.estimate.Mc.p
                p.Valley.estimate.Mc.normalized_variance p.Valley.estimate.Mc.hits)
            points;
          let best = Valley.best points in
          Format.printf "# best m* = %.1f@." best.Valley.twist
        | twist_opt ->
          let twist =
            match twist_opt with
            | None -> 0.0
            | Some s -> (
              match float_of_string_opt s with
              | Some v -> v
              | None -> invalid_arg (Printf.sprintf "bad twist %S" s))
          in
          let e = Is.estimate ?pool (config ~twist) ~replications rng in
          Format.printf "uti=%.2f b=%.0f (normalized) k=%d m*=%.2f@." utilization buffer_norm
            horizon twist;
          Format.printf "%a@." Report.pp_estimate e)
  in
  let doc = "Importance-sampled (or plain, m*=0) overflow probability under the fitted model." in
  Cmd.v (Cmd.info "fastsim" ~doc)
    Term.(
      const run $ trace_arg $ utilization_arg $ buffer_arg $ horizon_arg $ twist_arg
      $ replications_arg $ seed_arg $ max_lag_arg $ domains_arg $ backend_arg)

let () =
  let doc =
    "self-similar VBR video traffic modeling and fast simulation (SIGCOMM '95 reproduction)"
  in
  let info = Cmd.info "vbrsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            synth_cmd; summary_cmd; hurst_cmd; acf_cmd; compare_cmd; fit_cmd; generate_cmd;
            mpeg_cmd; queue_cmd; mux_cmd; abr_cmd; fastsim_cmd;
          ]))

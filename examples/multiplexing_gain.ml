(* Multiplexing-gain walkthrough: many streaming model sources, one
   shared ATM buffer (the paper's Section-1 motivation, run end to
   end on the lib/mux engine).

   1. synthesize a reference "movie" and fit the unified model;
   2. ask the Norros effective-bandwidth rule what one source costs;
   3. admit sources against a finite link with admission control;
   4. multiplex the admitted set in O(order) memory per source and
      read the loss/delay report;
   5. sweep the source count to see the per-source overflow melt. *)

module Rng = Ss_stats.Rng
module Scene = Ss_video.Scene_source
module Source = Ss_mux.Source
module Mux = Ss_mux.Mux
module Admission = Ss_mux.Admission

let () =
  (* 1. Reference trace + unified model (Sections 3.1-3.2). *)
  let movie =
    Scene.generate
      { Scene.default with frames = 32_768; gop = Ss_video.Gop.of_string "I" }
      (Rng.create ~seed:15)
  in
  let model, _ = Ss_core.Fit.fit_trace movie in
  let mean = model.Ss_core.Model.mean in
  Format.printf "fitted model: mean %.0f bytes/frame, H = %.2f@." mean
    model.Ss_core.Model.hurst;

  (* 2. Effective bandwidth of one source at Pr(Q > 100 mean) <= 1e-6. *)
  let rng = Rng.create ~seed:7 in
  let order = 256 in
  let probe_source = Source.of_model ~name:"probe" ~order model (Rng.split rng) in
  let descr = Admission.descr_of_source probe_source in
  let buffer = 100.0 *. mean in
  let eb = Admission.effective_bandwidth ~buffer ~epsilon:1e-6 descr in
  Format.printf "effective bandwidth: %.0f bytes/slot (%.2fx the mean rate)@." eb
    (eb /. mean);

  (* 3. Admission control: a link sized for 8 sources at 70%%
     utilization, offered 12. *)
  let sources = 8 in
  let service = float_of_int sources *. mean /. 0.7 in
  let cac = Admission.create ~service ~buffer ~epsilon:1e-6 in
  let offered =
    Array.init 12 (fun i ->
        Source.of_model ~name:(Printf.sprintf "src%02d" i) ~order model (Rng.split rng))
  in
  let admitted =
    Array.of_list
      (List.filter
         (fun s ->
           match Admission.try_admit cac (Admission.descr_of_source s) with
           | Admission.Admit p ->
             Format.printf "  admit  %s   predicted Pr(Q>b) %.3g@." s.Source.name p;
             true
           | Admission.Reject reason ->
             Format.printf "  reject %s@." reason;
             false)
         (Array.to_list offered))
  in
  Format.printf "admitted %d of %d offered sources@." (Array.length admitted)
    (Array.length offered);

  (* 4. Run the admitted set through the shared buffer. *)
  let report =
    Mux.run ~buffer ~thresholds:[ 25.0 *. mean; 50.0 *. mean ] ~service ~slots:32_768
      admitted
  in
  Format.printf "%a@." Mux.pp_report report;

  (* 5. The gain itself: same per-source utilization and buffer share,
     growing source count. *)
  Format.printf "multiplexing gain (per-source utilization 0.7, buffer 50/mean/source):@.";
  Format.printf "  %3s  %12s  %12s@." "N" "Pr(Q>B) sim" "norros";
  List.iter
    (fun n ->
      let srcs =
        Array.init n (fun i ->
            Source.of_model ~name:(Printf.sprintf "n%d-%d" n i) ~order model (Rng.split rng))
      in
      let service = float_of_int n *. mean /. 0.7 in
      let b_total = 50.0 *. mean *. float_of_int n in
      let r = Mux.run ~thresholds:[ b_total ] ~service ~slots:32_768 srcs in
      let p_sim = snd (List.hd r.Mux.overflow) in
      let p_norros =
        Admission.predicted_overflow ~service ~buffer:b_total
          (Array.to_list (Array.map Admission.descr_of_source srcs))
      in
      Format.printf "  %3d  %12.4g  %12.4g@." n p_sim p_norros)
    [ 1; 2; 4; 8 ]

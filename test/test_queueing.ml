(* Tests for ss_queueing: the Lindley recursion, Monte Carlo overflow
   estimation and single-trace queueing statistics. *)

module Rng = Ss_stats.Rng
module D = Ss_stats.Descriptive
module Lindley = Ss_queueing.Lindley
module Mc = Ss_queueing.Mc
module Trace_sim = Ss_queueing.Trace_sim

let close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

(* ------------------------------------------------------------------ *)
(* Lindley                                                              *)
(* ------------------------------------------------------------------ *)

let test_lindley_step () =
  close "accumulates" 3.0 (Lindley.step ~q:2.0 ~arrival:2.0 ~service:1.0);
  close "drains" 0.5 (Lindley.step ~q:1.0 ~arrival:0.5 ~service:1.0);
  close "floors at zero" 0.0 (Lindley.step ~q:0.5 ~arrival:0.0 ~service:1.0)

let test_lindley_path_by_hand () =
  let arrivals = [| 3.0; 0.0; 0.0; 5.0; 0.0 |] in
  let path = Lindley.path ~service:1.0 arrivals in
  Alcotest.(check (list (float 1e-9)))
    "hand-computed path" [ 2.0; 1.0; 0.0; 4.0; 3.0 ] (Array.to_list path)

let test_lindley_path_initial_condition () =
  let arrivals = [| 0.0; 0.0 |] in
  let path = Lindley.path ~q0:5.0 ~service:1.0 arrivals in
  Alcotest.(check (list (float 1e-9))) "drains from q0" [ 4.0; 3.0 ] (Array.to_list path)

let test_lindley_constant_overload () =
  (* Arrivals exceed service every slot: queue grows linearly. *)
  let arrivals = Array.make 10 2.0 in
  let path = Lindley.path ~service:1.0 arrivals in
  close "grows by 1/slot" 10.0 path.(9)

let test_lindley_sup_workload () =
  let arrivals = [| 3.0; 0.0; 0.0; 5.0; 0.0 |] in
  (* W = 2, 1, 0, 4, 3: sup = 4 *)
  close "sup workload" 4.0 (Lindley.sup_workload ~service:1.0 arrivals);
  (* When W dips negative, sup stays at the earlier max. *)
  close "sup of all-idle" 0.0 (Lindley.sup_workload ~service:1.0 (Array.make 5 0.0))

let test_lindley_sup_equals_queue_max_before_reflection () =
  (* While W never dips below 0, sup W = max queue. *)
  let arrivals = [| 2.0; 2.0; 0.5 |] in
  let sup = Lindley.sup_workload ~service:1.0 arrivals in
  let path = Lindley.path ~service:1.0 arrivals in
  close "sup = max Q when no reflection" (Array.fold_left Stdlib.max 0.0 path) sup

let test_lindley_exceeds () =
  let arrivals = [| 3.0; 3.0; 3.0 |] in
  (match Lindley.exceeds ~service:1.0 ~buffer:3.5 arrivals with
  | Some i -> Alcotest.(check int) "first passage slot" 2 i
  | None -> Alcotest.fail "expected overflow");
  (match Lindley.exceeds ~service:1.0 ~buffer:100.0 arrivals with
  | None -> ()
  | Some _ -> Alcotest.fail "no overflow expected");
  (* Full initial buffer crosses immediately. *)
  match Lindley.exceeds ~q0:10.0 ~service:0.5 ~buffer:9.9 [| 1.0 |] with
  | Some 1 -> ()
  | _ -> Alcotest.fail "expected immediate crossing from q0"

let test_lindley_utilization_service () =
  close "uti 0.5" 20.0 (Lindley.utilization_service ~mean_arrival:10.0 ~utilization:0.5);
  raises_invalid "uti 1" (fun () -> Lindley.utilization_service ~mean_arrival:1.0 ~utilization:1.0);
  raises_invalid "uti 0" (fun () -> Lindley.utilization_service ~mean_arrival:1.0 ~utilization:0.0)

let test_lindley_invalid () =
  raises_invalid "negative service" (fun () -> Lindley.path ~service:(-1.0) [| 1.0 |]);
  raises_invalid "negative q0" (fun () -> Lindley.path ~q0:(-1.0) ~service:1.0 [| 1.0 |])

(* ------------------------------------------------------------------ *)
(* Geo/D/1-style sanity: compare simulated overflow to an exact
   random walk computation on a two-point arrival distribution.       *)
(* ------------------------------------------------------------------ *)

let test_mc_matches_exact_two_point () =
  (* Arrivals: 2 with probability p, 0 otherwise; service 1. The
     workload walk steps +1 w.p. p, -1 w.p. 1-p. For p < 1/2,
     P(sup W > b) = (p/(1-p))^(b+1) for integer b (gambler's ruin). *)
  let p = 0.3 in
  let gen rng = Array.init 4000 (fun _ -> if Rng.float rng < p then 2.0 else 0.0) in
  let est =
    Mc.overflow_probability ~gen ~service:1.0 ~buffer:3.0 ~horizon:4000
      ~replications:4000 (Rng.create ~seed:1)
  in
  let exact = (p /. (1.0 -. p)) ** 4.0 in
  (* 4000 slots is effectively infinite horizon for this walk. *)
  let tol = 4.0 *. sqrt (exact /. 4000.0) in
  close ~eps:tol "gambler's ruin overflow" exact est.Mc.p

let test_mc_monotone_in_buffer () =
  let p = 0.4 in
  let gen rng = Array.init 500 (fun _ -> if Rng.float rng < p then 2.0 else 0.0) in
  let est b =
    (Mc.overflow_probability ~gen ~service:1.0 ~buffer:b ~horizon:500 ~replications:1000
       (Rng.create ~seed:2))
      .Mc.p
  in
  let p1 = est 1.0 and p5 = est 5.0 and p10 = est 10.0 in
  if not (p1 >= p5 && p5 >= p10) then
    Alcotest.failf "overflow not monotone in buffer: %.3f %.3f %.3f" p1 p5 p10

let test_mc_estimate_of_samples () =
  let e = Mc.estimate_of_samples [| 1.0; 0.0; 1.0; 0.0 |] in
  close "p" 0.5 e.Mc.p;
  Alcotest.(check int) "hits" 2 e.Mc.hits;
  Alcotest.(check int) "replications" 4 e.Mc.replications;
  (* unbiased sample variance of {1,0,1,0} is 1/3 *)
  close ~eps:1e-12 "variance" (1.0 /. 3.0) e.Mc.variance;
  close ~eps:1e-12 "normalized variance" (4.0 /. 3.0) e.Mc.normalized_variance

let test_mc_zero_hits () =
  let e = Mc.estimate_of_samples (Array.make 10 0.0) in
  close "p = 0" 0.0 e.Mc.p;
  Alcotest.(check bool) "nvar infinite" true (e.Mc.normalized_variance = infinity)

let test_mc_log_samples_match_linear () =
  (* On samples exp can represent, the log-domain estimator agrees
     with the linear one to rounding. *)
  let samples = [| 0.25; 0.0; 1.5; 0.0; 1e-12; 0.75; 0.0; 2.0 |] in
  let logs = Array.map (fun s -> if s = 0.0 then neg_infinity else log s) samples in
  let e = Mc.estimate_of_samples samples in
  let el = Mc.estimate_of_log_samples logs in
  close ~eps:1e-12 "p" e.Mc.p el.Mc.p;
  close ~eps:1e-9 "variance" e.Mc.variance el.Mc.variance;
  close ~eps:1e-9 "normalized variance" e.Mc.normalized_variance el.Mc.normalized_variance;
  Alcotest.(check int) "hits" e.Mc.hits el.Mc.hits;
  Alcotest.(check int) "replications" e.Mc.replications el.Mc.replications

let test_mc_log_samples_survive_underflow () =
  (* Log weights around -800: every individual exp underflows to 0,
     yet the scaled moments keep the figure of merit finite and
     correct. The weights are w0*{1,2,4}, so nvar is invariant to
     w0. *)
  let shifted w0 = Array.map (fun x -> w0 +. log x) [| 1.0; 2.0; 4.0 |] in
  let small = Mc.estimate_of_log_samples (shifted (-800.0)) in
  let ref_e = Mc.estimate_of_samples [| 1.0; 2.0; 4.0 |] in
  Alcotest.(check int) "hits" 3 small.Mc.hits;
  close ~eps:1e-9 "nvar invariant to scale" ref_e.Mc.normalized_variance
    small.Mc.normalized_variance;
  Alcotest.(check bool) "nvar finite" true (Float.is_finite small.Mc.normalized_variance);
  (* p underflows the double range here; it must come back as 0, not
     NaN. *)
  Alcotest.(check bool) "p is a number" false (Float.is_nan small.Mc.p)

let test_mc_log_samples_zero_hits_and_invalid () =
  let e = Mc.estimate_of_log_samples (Array.make 5 neg_infinity) in
  close "p = 0" 0.0 e.Mc.p;
  Alcotest.(check int) "hits" 0 e.Mc.hits;
  Alcotest.(check bool) "nvar infinite" true (e.Mc.normalized_variance = infinity);
  raises_invalid "empty" (fun () -> Mc.estimate_of_log_samples [||]);
  raises_invalid "NaN sample" (fun () -> Mc.estimate_of_log_samples [| 0.0; nan |])

let test_mc_confidence_interval () =
  let e = Mc.estimate_of_samples (Array.append (Array.make 50 1.0) (Array.make 50 0.0)) in
  let lo, hi = Mc.confidence_interval e ~z:1.96 in
  if not (lo < 0.5 && 0.5 < hi) then Alcotest.fail "CI must straddle the point estimate";
  if lo < 0.0 || hi > 1.0 then Alcotest.fail "CI must clamp to [0,1]"

let test_mc_initial_workload_shifts () =
  (* Adding initial workload is equivalent to lowering the buffer. *)
  let p = 0.4 in
  let gen rng = Array.init 300 (fun _ -> if Rng.float rng < p then 2.0 else 0.0) in
  let est ~initial_workload ~buffer =
    (Mc.overflow_probability ~gen ~service:1.0 ~buffer ~initial_workload ~horizon:300
       ~replications:2000 (Rng.create ~seed:5))
      .Mc.p
  in
  close "shifted = lowered buffer" (est ~initial_workload:0.0 ~buffer:3.0)
    (est ~initial_workload:2.0 ~buffer:5.0)

let test_mc_invalid () =
  raises_invalid "no samples" (fun () -> Mc.estimate_of_samples [||]);
  raises_invalid "bad horizon" (fun () ->
      Mc.overflow_probability ~gen:(fun _ -> [| 1.0 |]) ~service:1.0 ~buffer:1.0 ~horizon:0
        ~replications:1 (Rng.create ~seed:1));
  raises_invalid "short path" (fun () ->
      Mc.overflow_probability ~gen:(fun _ -> [| 1.0 |]) ~service:1.0 ~buffer:1.0 ~horizon:5
        ~replications:1 (Rng.create ~seed:1))

(* ------------------------------------------------------------------ *)
(* Trace_sim                                                            *)
(* ------------------------------------------------------------------ *)

let test_trace_sim_queue_path () =
  (* Constant arrivals at utilization u: service = mean/u > mean, so
     the queue stays empty. *)
  let arrivals = Array.make 100 10.0 in
  let qp = Trace_sim.queue_path ~arrivals ~utilization:0.5 in
  Array.iter (fun q -> close "empty queue" 0.0 q) qp

let test_trace_sim_overflow_fraction () =
  let qp = [| 0.0; 1.0; 2.0; 3.0 |] in
  close "fraction above 1.5" 0.5 (Trace_sim.overflow_fraction ~queue_path:qp ~buffer:1.5);
  close "fraction above 10" 0.0 (Trace_sim.overflow_fraction ~queue_path:qp ~buffer:10.0)

let test_trace_sim_curve_monotone () =
  let rng = Rng.create ~seed:3 in
  let arrivals = Array.init 20_000 (fun _ -> Rng.exponential rng ~rate:1.0) in
  let curve =
    Trace_sim.overflow_curve ~arrivals ~utilization:0.8
      ~buffers:[ 0.0; 1.0; 2.0; 4.0; 8.0 ]
  in
  let rec check = function
    | (_, p1) :: ((_, p2) :: _ as rest) ->
      if p2 > p1 +. 1e-12 then Alcotest.fail "curve not decreasing";
      check rest
    | _ -> ()
  in
  check curve

let test_trace_sim_utilization_effect () =
  let rng = Rng.create ~seed:4 in
  let arrivals = Array.init 20_000 (fun _ -> Rng.exponential rng ~rate:1.0) in
  let frac u =
    Trace_sim.overflow_fraction
      ~queue_path:(Trace_sim.queue_path ~arrivals ~utilization:u)
      ~buffer:2.0
  in
  if frac 0.9 <= frac 0.5 then Alcotest.fail "higher utilization must overflow more"

let test_trace_sim_normalized_buffer () =
  let arrivals = [| 2.0; 4.0; 6.0 |] in
  close "normalization" 40.0 (Trace_sim.normalized_buffer ~arrivals 10.0)

let test_trace_sim_invalid () =
  raises_invalid "bad utilization" (fun () ->
      Trace_sim.queue_path ~arrivals:[| 1.0 |] ~utilization:1.5);
  raises_invalid "zero mean" (fun () ->
      Trace_sim.queue_path ~arrivals:[| 0.0; 0.0 |] ~utilization:0.5)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_queueing"
    [
      ( "lindley",
        [
          tc "step" test_lindley_step;
          tc "path by hand" test_lindley_path_by_hand;
          tc "initial condition" test_lindley_path_initial_condition;
          tc "constant overload" test_lindley_constant_overload;
          tc "sup workload" test_lindley_sup_workload;
          tc "sup = max Q (no reflection)" test_lindley_sup_equals_queue_max_before_reflection;
          tc "exceeds" test_lindley_exceeds;
          tc "utilization service" test_lindley_utilization_service;
          tc "invalid" test_lindley_invalid;
        ] );
      ( "mc",
        [
          tc "matches gambler's ruin" test_mc_matches_exact_two_point;
          tc "monotone in buffer" test_mc_monotone_in_buffer;
          tc "estimate record" test_mc_estimate_of_samples;
          tc "zero hits" test_mc_zero_hits;
          tc "log samples = linear" test_mc_log_samples_match_linear;
          tc "log samples survive underflow" test_mc_log_samples_survive_underflow;
          tc "log samples edge cases" test_mc_log_samples_zero_hits_and_invalid;
          tc "initial workload shift" test_mc_initial_workload_shifts;
          tc "confidence interval" test_mc_confidence_interval;
          tc "invalid" test_mc_invalid;
        ] );
      ( "trace-sim",
        [
          tc "queue path" test_trace_sim_queue_path;
          tc "overflow fraction" test_trace_sim_overflow_fraction;
          tc "curve monotone" test_trace_sim_curve_monotone;
          tc "utilization effect" test_trace_sim_utilization_effect;
          tc "normalized buffer" test_trace_sim_normalized_buffer;
          tc "invalid" test_trace_sim_invalid;
        ] );
    ]

(* Tests for the ss_stats substrate: RNG, special functions,
   descriptive statistics, histograms, empirical distributions, the
   distribution zoo, regression and quadrature. *)

module Rng = Ss_stats.Rng
module Special = Ss_stats.Special
module D = Ss_stats.Descriptive
module Histogram = Ss_stats.Histogram
module Empirical = Ss_stats.Empirical
module Dist = Ss_stats.Dist
module Reg = Ss_stats.Regression
module Quad = Ss_stats.Quadrature
module Ts = Ss_stats.Timeseries

let close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g (|diff| %.3g > %.3g)" msg expected
      actual
      (abs_float (expected -. actual))
      eps

let close_rel ?(eps = 1e-9) msg expected actual =
  let scale = Stdlib.max (abs_float expected) 1e-300 in
  if abs_float (expected -. actual) /. scale > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g (rel %.3g > %.3g)" msg expected actual
      (abs_float (expected -. actual) /. scale)
      eps

let raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:1 in
  for i = 0 to 99 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then
      Alcotest.failf "streams diverge at step %d" i
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  if !same > 2 then Alcotest.failf "seeds 1 and 2 collide on %d/64 words" !same

let test_rng_copy_independent () =
  let a = Rng.create ~seed:3 in
  let b = Rng.copy a in
  let va = Rng.float a in
  (* advancing a must not affect b *)
  let vb = Rng.float b in
  close "copy preserves stream" va vb;
  ignore (Rng.float a);
  let va2 = Rng.float a and vb2 = Rng.float b in
  if va2 = vb2 then Alcotest.fail "copies stayed locked together unexpectedly"

let test_rng_float_range_bounds () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "float out of [0,1): %g" v
  done

let test_rng_float_moments () =
  let rng = Rng.create ~seed:5 in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Rng.float rng) in
  close ~eps:0.01 "uniform mean" 0.5 (D.mean xs);
  close ~eps:0.01 "uniform variance" (1.0 /. 12.0) (D.variance xs)

let test_rng_gaussian_moments () =
  let rng = Rng.create ~seed:6 in
  let n = 200_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng) in
  close ~eps:0.02 "gaussian mean" 0.0 (D.mean xs);
  close ~eps:0.02 "gaussian variance" 1.0 (D.variance xs);
  close ~eps:0.05 "gaussian skewness" 0.0 (D.skewness xs);
  close ~eps:0.1 "gaussian kurtosis" 0.0 (D.kurtosis xs)

let test_rng_gaussian_tail () =
  let rng = Rng.create ~seed:7 in
  let n = 200_000 in
  let beyond2 = ref 0 in
  for _ = 1 to n do
    if abs_float (Rng.gaussian rng) > 2.0 then incr beyond2
  done;
  (* P(|Z| > 2) = 0.0455 *)
  close ~eps:0.005 "two-sigma tail mass" 0.0455 (float_of_int !beyond2 /. float_of_int n)

let test_rng_fill_gaussian_matches_gaussian () =
  (* fill_gaussian is the batched form of gaussian: mixed scalar and
     batched consumption of an identically seeded generator must
     reproduce the same deviates bit for bit, including the cached
     polar deviate handed across call boundaries. *)
  let total = 257 in
  let a = Rng.create ~seed:77 in
  let expected = Array.init total (fun _ -> Rng.gaussian a) in
  let b = Rng.create ~seed:77 in
  let got = Array.make total 0.0 in
  let i = ref 0 in
  List.iter
    (fun len ->
      Rng.fill_gaussian b got ~off:!i ~len;
      i := !i + len;
      if !i < total then begin
        got.(!i) <- Rng.gaussian b;
        incr i
      end)
    [ 1; 0; 2; 3; 5; 1; 8; 13; 21; 34 ];
  Rng.fill_gaussian b got ~off:!i ~len:(total - !i);
  Array.iteri
    (fun j x ->
      if Int64.bits_of_float x <> Int64.bits_of_float expected.(j) then
        Alcotest.failf "deviate %d: %.17g <> %.17g" j expected.(j) x)
    got;
  if Int64.bits_of_float (Rng.gaussian a) <> Int64.bits_of_float (Rng.gaussian b) then
    Alcotest.fail "generator states diverged after fill_gaussian";
  raises_invalid "negative len" (fun () -> Rng.fill_gaussian b got ~off:0 ~len:(-1));
  raises_invalid "range overflow" (fun () -> Rng.fill_gaussian b got ~off:total ~len:1)

let test_rng_int_range () =
  let rng = Rng.create ~seed:8 in
  let counts = Array.make 7 0 in
  for _ = 1 to 70_000 do
    let v = Rng.int_range rng 3 9 in
    if v < 3 || v > 9 then Alcotest.failf "int_range out of bounds: %d" v;
    counts.(v - 3) <- counts.(v - 3) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 9_000 || c > 11_000 then
        Alcotest.failf "value %d has skewed count %d (expect ~10000)" (i + 3) c)
    counts

let test_rng_int_range_singleton () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 100 do
    Alcotest.(check int) "singleton range" 5 (Rng.int_range rng 5 5)
  done

let test_rng_split_independence () =
  let parent = Rng.create ~seed:10 in
  let child = Rng.split parent in
  let n = 50_000 in
  let a = Array.init n (fun _ -> Rng.float parent) in
  let b = Array.init n (fun _ -> Rng.float child) in
  (* crude cross-correlation check *)
  let ma = D.mean a and mb = D.mean b in
  let num = ref 0.0 in
  for i = 0 to n - 1 do
    num := !num +. ((a.(i) -. ma) *. (b.(i) -. mb))
  done;
  let corr = !num /. float_of_int n /. (D.std a *. D.std b) in
  if abs_float corr > 0.02 then Alcotest.failf "split streams correlate: %g" corr

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:11 in
  let xs = Array.init 100_000 (fun _ -> Rng.exponential rng ~rate:2.0) in
  close ~eps:0.01 "exponential mean" 0.5 (D.mean xs)

let test_rng_pareto_support_and_median () =
  let rng = Rng.create ~seed:12 in
  let xs = Array.init 50_000 (fun _ -> Rng.pareto rng ~shape:1.5 ~scale:2.0) in
  Array.iter (fun v -> if v < 2.0 then Alcotest.failf "pareto below scale: %g" v) xs;
  (* median = scale * 2^(1/shape) *)
  close ~eps:0.05 "pareto median" (2.0 *. (2.0 ** (1.0 /. 1.5))) (D.median xs)

let test_rng_invalid_args () =
  let rng = Rng.create ~seed:13 in
  raises_invalid "empty float range" (fun () -> Rng.float_range rng 1.0 1.0);
  raises_invalid "empty int range" (fun () -> Rng.int_range rng 2 1);
  raises_invalid "bad exponential" (fun () -> Rng.exponential rng ~rate:0.0);
  raises_invalid "bad pareto" (fun () -> Rng.pareto rng ~shape:0.0 ~scale:1.0);
  raises_invalid "negative std" (fun () -> Rng.gaussian_mv rng ~mean:0.0 ~std:(-1.0));
  raises_invalid "of_state size" (fun () -> Rng.of_state [| 1L |]);
  raises_invalid "of_state zero" (fun () -> Rng.of_state [| 0L; 0L; 0L; 0L |])

(* ------------------------------------------------------------------ *)
(* Special functions                                                   *)
(* ------------------------------------------------------------------ *)

let test_erf_reference_values () =
  (* Reference values from standard tables. *)
  close ~eps:1e-12 "erf 0" 0.0 (Special.erf 0.0);
  close ~eps:1e-12 "erf 0.5" 0.5204998778130465 (Special.erf 0.5);
  close ~eps:1e-12 "erf 1" 0.8427007929497149 (Special.erf 1.0);
  close ~eps:1e-12 "erf 2" 0.9953222650189527 (Special.erf 2.0);
  close ~eps:1e-12 "erf -1" (-0.8427007929497149) (Special.erf (-1.0))

let test_erfc_reference_values () =
  close_rel ~eps:1e-11 "erfc 1" 0.15729920705028513 (Special.erfc 1.0);
  close_rel ~eps:1e-11 "erfc 3" 2.209049699858544e-05 (Special.erfc 3.0);
  close_rel ~eps:1e-10 "erfc 5" 1.5374597944280351e-12 (Special.erfc 5.0);
  close ~eps:1e-12 "erfc -2" (2.0 -. Special.erfc 2.0) (Special.erfc (-2.0))

let test_erf_erfc_complementarity () =
  List.iter
    (fun x -> close ~eps:1e-12 "erf + erfc = 1" 1.0 (Special.erf x +. Special.erfc x))
    [ -3.0; -1.0; -0.1; 0.0; 0.3; 1.7; 2.5; 4.0 ]

let test_log_gamma_factorials () =
  for n = 1 to 15 do
    let fact = ref 1.0 in
    for i = 2 to n - 1 do
      fact := !fact *. float_of_int i
    done;
    close_rel ~eps:1e-12
      (Printf.sprintf "lgamma %d" n)
      (log !fact)
      (Special.log_gamma (float_of_int n))
  done

let test_log_gamma_half () =
  (* Gamma(1/2) = sqrt(pi) *)
  close_rel ~eps:1e-12 "lgamma 0.5" (0.5 *. log Float.pi) (Special.log_gamma 0.5);
  raises_invalid "lgamma 0" (fun () -> Special.log_gamma 0.0)

let test_gamma_p_reference () =
  (* P(1, x) = 1 - e^-x *)
  List.iter
    (fun x -> close_rel ~eps:1e-10 "P(1,x)" (1.0 -. exp (-.x)) (Special.gamma_p 1.0 x))
    [ 0.1; 0.5; 1.0; 3.0; 10.0 ];
  (* P(2, 2) known value *)
  close_rel ~eps:1e-10 "P(2,2)" 0.5939941502901616 (Special.gamma_p 2.0 2.0);
  close ~eps:1e-12 "P(a,0)" 0.0 (Special.gamma_p 2.5 0.0)

let test_gamma_p_q_complementarity () =
  List.iter
    (fun (a, x) ->
      close ~eps:1e-12 "P + Q = 1" 1.0 (Special.gamma_p a x +. Special.gamma_q a x))
    [ (0.5, 0.2); (1.0, 1.0); (3.0, 2.0); (3.0, 10.0); (20.0, 15.0) ]

let test_normal_cdf_symmetry () =
  List.iter
    (fun x ->
      close ~eps:1e-13 "Phi(x) + Phi(-x) = 1" 1.0
        (Special.normal_cdf x +. Special.normal_cdf (-.x)))
    [ 0.0; 0.5; 1.0; 2.0; 4.0 ];
  close ~eps:1e-13 "Phi(0)" 0.5 (Special.normal_cdf 0.0);
  close_rel ~eps:1e-10 "Phi(1.96)" 0.9750021048517795 (Special.normal_cdf 1.96)

let test_normal_cdf_relaxed_accuracy () =
  (* A&S 26.2.17 polynomial: |Phi_relaxed - Phi| < 7.5e-8 everywhere,
     exact symmetry by construction. *)
  let x = ref (-8.0) in
  while !x <= 8.0 do
    let exact = Special.normal_cdf !x and fast = Special.normal_cdf_relaxed !x in
    if abs_float (exact -. fast) > 8e-8 then
      Alcotest.failf "relaxed cdf at %g: |%.12g - %.12g| > 8e-8" !x fast exact;
    x := !x +. 0.01
  done;
  close ~eps:8e-8 "relaxed Phi(0)" 0.5 (Special.normal_cdf_relaxed 0.0);
  List.iter
    (fun x ->
      close ~eps:1e-15 "relaxed symmetry" 1.0
        (Special.normal_cdf_relaxed x +. Special.normal_cdf_relaxed (-.x)))
    [ 0.3; 1.0; 2.5; 6.0 ]

let test_normal_quantile_roundtrip () =
  List.iter
    (fun p ->
      close ~eps:1e-9
        (Printf.sprintf "Phi(Phi^-1(%g))" p)
        p
        (Special.normal_cdf (Special.normal_quantile p)))
    [ 1e-10; 1e-6; 0.001; 0.025; 0.3; 0.5; 0.7; 0.975; 0.999; 1.0 -. 1e-6 ]

let test_normal_quantile_known () =
  close ~eps:1e-8 "z(0.975)" 1.9599639845400545 (Special.normal_quantile 0.975);
  close ~eps:1e-8 "z(0.5)" 0.0 (Special.normal_quantile 0.5);
  close ~eps:1e-7 "z(0.99)" 2.3263478740408408 (Special.normal_quantile 0.99);
  raises_invalid "quantile 0" (fun () -> Special.normal_quantile 0.0);
  raises_invalid "quantile 1" (fun () -> Special.normal_quantile 1.0)

let test_log_normal_pdf () =
  (* Matches log of the density. *)
  let check mean var x =
    let d = x -. mean in
    let expected = (-0.5 *. d *. d /. var) -. (0.5 *. log (2.0 *. Float.pi *. var)) in
    close ~eps:1e-12 "log_normal_pdf" expected (Special.log_normal_pdf ~mean ~var x)
  in
  check 0.0 1.0 0.0;
  check 2.0 0.25 1.5;
  check (-1.0) 4.0 3.0;
  raises_invalid "zero var" (fun () -> Special.log_normal_pdf ~mean:0.0 ~var:0.0 1.0)

(* ------------------------------------------------------------------ *)
(* Descriptive                                                         *)
(* ------------------------------------------------------------------ *)

let test_descriptive_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  close "mean" 2.5 (D.mean xs);
  close "variance" 1.25 (D.variance xs);
  close_rel ~eps:1e-12 "sample variance" (5.0 /. 3.0) (D.sample_variance xs);
  close "min" 1.0 (D.min xs);
  close "max" 4.0 (D.max xs);
  close "median" 2.5 (D.median xs)

let test_descriptive_constant () =
  let xs = Array.make 10 3.0 in
  close "constant variance" 0.0 (D.variance xs);
  close "constant skewness" 0.0 (D.skewness xs);
  close "constant kurtosis" 0.0 (D.kurtosis xs);
  close "constant acf" 0.0 (D.autocorrelation xs 1)

let test_descriptive_empty () =
  raises_invalid "mean of empty" (fun () -> D.mean [||]);
  raises_invalid "variance of empty" (fun () -> D.variance [||]);
  raises_invalid "quantile p" (fun () -> D.quantile [| 1.0 |] 1.5)

let test_quantile_interpolation () =
  let xs = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  close "q0" 10.0 (D.quantile xs 0.0);
  close "q1" 50.0 (D.quantile xs 1.0);
  close "q0.5" 30.0 (D.quantile xs 0.5);
  close "q0.25" 20.0 (D.quantile xs 0.25);
  close "q0.1 interp" 14.0 (D.quantile xs 0.1)

let test_quantile_unsorted_input () =
  let xs = [| 50.0; 10.0; 40.0; 20.0; 30.0 |] in
  close "median of unsorted" 30.0 (D.median xs)

let test_autocovariance_ar1 () =
  (* An AR(1) with coefficient rho has acf rho^k. *)
  let rng = Rng.create ~seed:20 in
  let rho = 0.7 in
  let n = 200_000 in
  let xs = Array.make n 0.0 in
  xs.(0) <- Rng.gaussian rng;
  for i = 1 to n - 1 do
    xs.(i) <- (rho *. xs.(i - 1)) +. (sqrt (1.0 -. (rho *. rho)) *. Rng.gaussian rng)
  done;
  let r = D.acf xs ~max_lag:5 in
  close "r(0)" 1.0 r.(0);
  close ~eps:0.02 "r(1)" rho r.(1);
  close ~eps:0.02 "r(2)" (rho ** 2.0) r.(2);
  close ~eps:0.02 "r(5)" (rho ** 5.0) r.(5)

let test_acf_matches_pointwise () =
  let rng = Rng.create ~seed:21 in
  let xs = Array.init 500 (fun _ -> Rng.float rng) in
  let r = D.acf xs ~max_lag:10 in
  for k = 0 to 10 do
    close ~eps:1e-12 (Printf.sprintf "acf lag %d" k) (D.autocorrelation xs k) r.(k)
  done

let test_acf_bad_lag () =
  raises_invalid "acf lag too big" (fun () -> D.acf [| 1.0; 2.0 |] ~max_lag:2);
  raises_invalid "autocov negative lag" (fun () -> D.autocovariance [| 1.0; 2.0 |] (-1))

let test_skewness_exponential () =
  let rng = Rng.create ~seed:22 in
  let xs = Array.init 200_000 (fun _ -> Rng.exponential rng ~rate:1.0) in
  close ~eps:0.1 "exponential skewness 2" 2.0 (D.skewness xs);
  close ~eps:0.5 "exponential excess kurtosis 6" 6.0 (D.kurtosis xs)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_histogram_counts () =
  let h = Histogram.make ~bins:4 ~range:(0.0, 4.0) [| 0.5; 1.5; 1.6; 2.5; 3.5; 3.9 |] in
  Alcotest.(check int) "total" 6 h.Histogram.total;
  Alcotest.(check (list int)) "counts" [ 1; 2; 1; 2 ] (Array.to_list h.Histogram.counts)

let test_histogram_clamping () =
  let h = Histogram.make ~bins:2 ~range:(0.0, 2.0) [| -5.0; 0.5; 1.5; 99.0 |] in
  Alcotest.(check (list int)) "clamped counts" [ 2; 2 ] (Array.to_list h.Histogram.counts)

let test_histogram_frequencies_sum () =
  let rng = Rng.create ~seed:23 in
  let data = Array.init 1000 (fun _ -> Rng.gaussian rng) in
  let h = Histogram.make ~bins:17 data in
  let sum = ref 0.0 in
  for i = 0 to 16 do
    sum := !sum +. Histogram.frequency h i
  done;
  close ~eps:1e-12 "frequencies sum to 1" 1.0 !sum

let test_histogram_cdf_monotone () =
  let rng = Rng.create ~seed:24 in
  let data = Array.init 500 (fun _ -> Rng.float rng) in
  let h = Histogram.make ~bins:10 data in
  let cdf = Histogram.cdf h in
  for i = 1 to 9 do
    if cdf.(i) < cdf.(i - 1) -. 1e-12 then Alcotest.fail "histogram cdf not monotone"
  done;
  close ~eps:1e-12 "cdf ends at 1" 1.0 cdf.(9)

let test_histogram_bin_center_roundtrip () =
  let h = Histogram.make ~bins:5 ~range:(0.0, 10.0) [| 1.0 |] in
  for i = 0 to 4 do
    Alcotest.(check int) "bin of own center" i (Histogram.bin_of h (Histogram.bin_center h i))
  done

let test_histogram_mean_approximates () =
  let rng = Rng.create ~seed:25 in
  let data = Array.init 50_000 (fun _ -> Rng.gaussian_mv rng ~mean:7.0 ~std:2.0) in
  let h = Histogram.make ~bins:100 data in
  close ~eps:0.1 "histogram mean" 7.0 (Histogram.mean h)

let test_histogram_invalid () =
  raises_invalid "no bins" (fun () -> Histogram.make ~bins:0 [| 1.0 |]);
  raises_invalid "empty data" (fun () -> Histogram.make ~bins:3 [||]);
  raises_invalid "inverted range" (fun () -> Histogram.make ~bins:3 ~range:(2.0, 1.0) [| 1.0 |]);
  let h = Histogram.make ~bins:3 [| 1.0; 2.0 |] in
  raises_invalid "bin_center range" (fun () -> Histogram.bin_center h 3)

let test_histogram_constant_data () =
  let h = Histogram.make ~bins:4 (Array.make 10 5.0) in
  Alcotest.(check int) "all points binned" 10 h.Histogram.total

(* ------------------------------------------------------------------ *)
(* Empirical                                                           *)
(* ------------------------------------------------------------------ *)

let test_empirical_cdf_step () =
  let e = Empirical.of_data [| 1.0; 2.0; 3.0 |] in
  close "cdf below" 0.0 (Empirical.cdf e 0.5);
  close_rel ~eps:1e-12 "cdf at first" (1.0 /. 3.0) (Empirical.cdf e 1.0);
  close_rel ~eps:1e-12 "cdf mid" (2.0 /. 3.0) (Empirical.cdf e 2.5);
  close "cdf above" 1.0 (Empirical.cdf e 99.0)

let test_empirical_quantile_extremes () =
  let e = Empirical.of_data [| 5.0; 1.0; 3.0 |] in
  close "q(0) = min" 1.0 (Empirical.quantile e 0.0);
  close "q(1) = max" 5.0 (Empirical.quantile e 1.0);
  close "q(0.5) = median" 3.0 (Empirical.quantile e 0.5)

let test_empirical_quantile_monotone () =
  let rng = Rng.create ~seed:26 in
  let e = Empirical.of_data (Array.init 1000 (fun _ -> Rng.gaussian rng)) in
  let prev = ref neg_infinity in
  for i = 0 to 100 do
    let q = Empirical.quantile e (float_of_int i /. 100.0) in
    if q < !prev then Alcotest.fail "empirical quantile not monotone";
    prev := q
  done

let test_empirical_qq_identity () =
  let rng = Rng.create ~seed:27 in
  let data = Array.init 1000 (fun _ -> Rng.gaussian rng) in
  let e = Empirical.of_data data in
  List.iter
    (fun (a, b) -> close ~eps:1e-12 "qq against itself on diagonal" a b)
    (Empirical.qq e e ~n:25)

let test_empirical_ks_self_zero () =
  let rng = Rng.create ~seed:28 in
  let data = Array.init 500 (fun _ -> Rng.float rng) in
  let e = Empirical.of_data data in
  close "ks against self" 0.0 (Empirical.ks_distance e e)

let test_empirical_ks_detects_shift () =
  let rng = Rng.create ~seed:29 in
  let a = Empirical.of_data (Array.init 2000 (fun _ -> Rng.gaussian rng)) in
  let b = Empirical.of_data (Array.init 2000 (fun _ -> 3.0 +. Rng.gaussian rng)) in
  if Empirical.ks_distance a b < 0.5 then Alcotest.fail "KS blind to a 3-sigma shift"

let test_empirical_same_distribution_small_ks () =
  let rng = Rng.create ~seed:30 in
  let a = Empirical.of_data (Array.init 5000 (fun _ -> Rng.gaussian rng)) in
  let b = Empirical.of_data (Array.init 5000 (fun _ -> Rng.gaussian rng)) in
  if Empirical.ks_distance a b > 0.05 then Alcotest.fail "KS too large for same distribution"

(* ------------------------------------------------------------------ *)
(* Dist                                                                *)
(* ------------------------------------------------------------------ *)

let dist_cases =
  [
    ("uniform", Dist.uniform ~lo:(-1.0) ~hi:3.0);
    ("normal", Dist.normal ~mean:2.0 ~std:1.5);
    ("lognormal", Dist.lognormal ~mu:0.3 ~sigma:0.6);
    ("exponential", Dist.exponential ~rate:0.7);
    ("gamma", Dist.gamma ~shape:2.5 ~scale:1.2);
    ("gamma<1", Dist.gamma ~shape:0.5 ~scale:2.0);
    ("pareto", Dist.pareto ~shape:2.5 ~scale:1.0);
    ("weibull", Dist.weibull ~shape:1.7 ~scale:2.0);
    ("gamma_pareto", Dist.gamma_pareto ~shape:2.0 ~scale:1.0 ~cut:0.95);
  ]

let test_dist_quantile_cdf_roundtrip () =
  List.iter
    (fun (name, d) ->
      List.iter
        (fun p ->
          let x = d.Dist.quantile p in
          close ~eps:1e-6 (Printf.sprintf "%s cdf(q(%g))" name p) p (d.Dist.cdf x))
        [ 0.01; 0.1; 0.35; 0.5; 0.75; 0.9; 0.99; 0.999 ])
    dist_cases

let test_dist_quantile_monotone () =
  List.iter
    (fun (name, d) ->
      let prev = ref neg_infinity in
      for i = 1 to 99 do
        let q = d.Dist.quantile (float_of_int i /. 100.0) in
        if q < !prev then Alcotest.failf "%s quantile not monotone at %d%%" name i;
        prev := q
      done)
    dist_cases

let test_dist_pdf_integrates_to_one () =
  List.iter
    (fun (name, d) ->
      (* Integrate the density between far quantiles; should capture
         nearly all mass. *)
      let lo = d.Dist.quantile 1e-6 and hi = d.Dist.quantile (1.0 -. 1e-4) in
      let mass = Quad.simpson ~eps:1e-9 d.Dist.pdf ~lo ~hi in
      close ~eps:5e-3 (Printf.sprintf "%s pdf mass" name) 1.0 mass)
    dist_cases

let test_dist_sample_moments () =
  let n = 100_000 in
  List.iter
    (fun (name, d) ->
      if Float.is_finite d.Dist.mean && Float.is_finite d.Dist.variance then begin
        let rng = Rng.create ~seed:31 in
        let xs = Array.init n (fun _ -> d.Dist.sample rng) in
        let tol_mean = 0.05 *. Stdlib.max 1.0 (abs_float d.Dist.mean) in
        let tol_var = 0.15 *. Stdlib.max 1.0 d.Dist.variance in
        close ~eps:tol_mean (Printf.sprintf "%s sample mean" name) d.Dist.mean (D.mean xs);
        close ~eps:tol_var
          (Printf.sprintf "%s sample variance" name)
          d.Dist.variance (D.variance xs)
      end)
    dist_cases

let test_dist_gamma_known_cdf () =
  (* Gamma(1, s) is exponential. *)
  let d = Dist.gamma ~shape:1.0 ~scale:2.0 in
  List.iter
    (fun x -> close ~eps:1e-9 "gamma(1,2) cdf" (1.0 -. exp (-.x /. 2.0)) (d.Dist.cdf x))
    [ 0.5; 1.0; 4.0 ]

let test_dist_pareto_closed_forms () =
  let d = Dist.pareto ~shape:3.0 ~scale:2.0 in
  close_rel ~eps:1e-12 "pareto mean" 3.0 d.Dist.mean;
  close_rel ~eps:1e-12 "pareto q(0.875)" 4.0 (d.Dist.quantile 0.875);
  let d15 = Dist.pareto ~shape:1.5 ~scale:1.0 in
  Alcotest.(check bool) "pareto 1.5 infinite variance" true (d15.Dist.variance = infinity);
  let d05 = Dist.pareto ~shape:0.5 ~scale:1.0 in
  Alcotest.(check bool) "pareto 0.5 infinite mean" true (d05.Dist.mean = infinity)

let test_dist_gamma_pareto_continuity () =
  let d = Dist.gamma_pareto ~shape:2.0 ~scale:1.0 ~cut:0.9 in
  let xc = (Dist.gamma ~shape:2.0 ~scale:1.0).Dist.quantile 0.9 in
  let eps = 1e-6 in
  close ~eps:1e-4 "cdf continuous at crossover" (d.Dist.cdf (xc -. eps)) (d.Dist.cdf (xc +. eps));
  close ~eps:1e-3 "pdf continuous at crossover" (d.Dist.pdf (xc -. eps)) (d.Dist.pdf (xc +. eps))

let test_dist_gamma_pareto_tail_heavier () =
  (* Beyond the cut the hybrid survival must exceed the pure gamma's. *)
  let g = Dist.gamma ~shape:2.0 ~scale:1.0 in
  let d = Dist.gamma_pareto ~shape:2.0 ~scale:1.0 ~cut:0.9 in
  let x = g.Dist.quantile 0.999 in
  if 1.0 -. d.Dist.cdf x <= 1.0 -. g.Dist.cdf x then
    Alcotest.fail "hybrid tail not heavier than gamma"

let test_dist_empirical_wraps () =
  let data = [| 1.0; 2.0; 2.0; 3.0; 10.0 |] in
  let d = Dist.of_empirical (Empirical.of_data data) in
  close "empirical mean" (D.mean data) d.Dist.mean;
  close ~eps:1e-3 "empirical q(1-)" 10.0 (d.Dist.quantile 0.999999);
  close ~eps:1e-6 "empirical q(0+) -> min-ish" 1.0 (d.Dist.quantile 1e-9)

let test_dist_of_histogram () =
  let rng = Rng.create ~seed:36 in
  let data = Array.init 50_000 (fun _ -> Rng.gaussian_mv rng ~mean:10.0 ~std:2.0) in
  let d = Dist.of_histogram (Histogram.make ~bins:100 data) in
  (* Quantile/cdf consistency. *)
  List.iter
    (fun p -> close ~eps:1e-6 (Printf.sprintf "hist cdf(q(%g))" p) p (d.Dist.cdf (d.Dist.quantile p)))
    [ 0.05; 0.3; 0.5; 0.8; 0.99 ];
  (* Matches the data's statistics through the binned summary. *)
  close ~eps:0.1 "hist mean" 10.0 d.Dist.mean;
  close ~eps:0.3 "hist median" (D.median data) (d.Dist.quantile 0.5);
  close ~eps:0.5 "hist variance" 4.0 d.Dist.variance;
  (* Sampling respects the support. *)
  for _ = 1 to 1000 do
    let v = d.Dist.sample rng in
    if v < D.min data -. 0.5 || v > D.max data +. 0.5 then
      Alcotest.failf "histogram sample %g outside support" v
  done

let test_dist_of_histogram_quantile_monotone () =
  let rng = Rng.create ~seed:37 in
  let data = Array.init 2000 (fun _ -> Rng.exponential rng ~rate:0.3) in
  let d = Dist.of_histogram (Histogram.make ~bins:17 data) in
  let prev = ref neg_infinity in
  for i = 1 to 99 do
    let q = d.Dist.quantile (float_of_int i /. 100.0) in
    if q < !prev then Alcotest.fail "histogram quantile not monotone";
    prev := q
  done

let test_dist_truncate_below () =
  let d = Dist.truncate_below (Dist.normal ~mean:0.0 ~std:1.0) ~floor:0.0 in
  let rng = Rng.create ~seed:32 in
  for _ = 1 to 1000 do
    if d.Dist.sample rng < 0.0 then Alcotest.fail "truncated sample below floor"
  done;
  close ~eps:1e-9 "quantile clamped" 0.0 (d.Dist.quantile 0.2);
  (* E[max(Z,0)] = 1/sqrt(2 pi) *)
  close ~eps:1e-3 "truncated mean" (1.0 /. sqrt (2.0 *. Float.pi)) d.Dist.mean

let test_dist_invalid_parameters () =
  raises_invalid "uniform" (fun () -> Dist.uniform ~lo:1.0 ~hi:1.0);
  raises_invalid "normal" (fun () -> Dist.normal ~mean:0.0 ~std:0.0);
  raises_invalid "gamma" (fun () -> Dist.gamma ~shape:(-1.0) ~scale:1.0);
  raises_invalid "pareto" (fun () -> Dist.pareto ~shape:1.0 ~scale:0.0);
  raises_invalid "gp cut" (fun () -> Dist.gamma_pareto ~shape:1.0 ~scale:1.0 ~cut:1.0);
  let d = Dist.normal ~mean:0.0 ~std:1.0 in
  raises_invalid "quantile 0" (fun () -> d.Dist.quantile 0.0)

(* ------------------------------------------------------------------ *)
(* Regression                                                          *)
(* ------------------------------------------------------------------ *)

let test_ols_exact_line () =
  let pts = List.init 10 (fun i -> (float_of_int i, 3.0 +. (2.0 *. float_of_int i))) in
  let f = Reg.ols pts in
  close ~eps:1e-12 "slope" 2.0 f.Reg.slope;
  close ~eps:1e-12 "intercept" 3.0 f.Reg.intercept;
  close ~eps:1e-12 "r2" 1.0 f.Reg.r2

let test_ols_noisy_line () =
  let rng = Rng.create ~seed:33 in
  let pts =
    List.init 2000 (fun i ->
        let x = float_of_int i /. 100.0 in
        (x, 1.0 -. (0.5 *. x) +. (0.1 *. Rng.gaussian rng)))
  in
  let f = Reg.ols pts in
  close ~eps:0.01 "noisy slope" (-0.5) f.Reg.slope;
  close ~eps:0.02 "noisy intercept" 1.0 f.Reg.intercept;
  if f.Reg.r2 < 0.9 then Alcotest.failf "noisy fit r2 too low: %g" f.Reg.r2

let test_wols_downweights () =
  (* A wild outlier with near-zero weight must not disturb the fit. *)
  let pts = List.init 10 (fun i -> (float_of_int i, float_of_int i, 1.0)) in
  let f = Reg.wols ((5.0, 1000.0, 1e-12) :: pts) in
  close ~eps:1e-6 "wols slope ignores weightless outlier" 1.0 f.Reg.slope

let test_ols_through_origin () =
  let pts = List.init 10 (fun i -> (float_of_int (i + 1), 4.0 *. float_of_int (i + 1))) in
  let f = Reg.ols_through_origin pts in
  close ~eps:1e-12 "origin slope" 4.0 f.Reg.slope;
  close "origin intercept" 0.0 f.Reg.intercept

let test_regression_predict () =
  let f = Reg.ols [ (0.0, 1.0); (1.0, 3.0) ] in
  close ~eps:1e-12 "predict" 5.0 (Reg.predict f 2.0)

let test_regression_invalid () =
  raises_invalid "one point" (fun () -> Reg.ols [ (1.0, 1.0) ]);
  raises_invalid "degenerate x" (fun () -> Reg.ols [ (1.0, 1.0); (1.0, 2.0) ]);
  raises_invalid "bad weight" (fun () -> Reg.wols [ (0.0, 0.0, 0.0); (1.0, 1.0, 1.0) ])

(* ------------------------------------------------------------------ *)
(* Quadrature                                                          *)
(* ------------------------------------------------------------------ *)

let test_hermite_polynomial_exactness () =
  (* n-point rule integrates monomials up to degree 2n-1 exactly:
     E[Z^k] = 0 (odd), (k-1)!! (even). *)
  let moments = [ (0, 1.0); (1, 0.0); (2, 1.0); (3, 0.0); (4, 3.0); (6, 15.0); (8, 105.0) ] in
  List.iter
    (fun (k, expected) ->
      let v = Quad.gaussian_expectation ~n:20 (fun x -> x ** float_of_int k) in
      close ~eps:1e-8 (Printf.sprintf "E[Z^%d]" k) expected v)
    moments

let test_hermite_weights_sum () =
  List.iter
    (fun n ->
      let nodes = Quad.hermite_nodes ~n in
      let sum = Array.fold_left (fun a (_, w) -> a +. w) 0.0 nodes in
      close ~eps:1e-10 (Printf.sprintf "weights sum n=%d" n) 1.0 sum)
    [ 1; 2; 5; 16; 64; 128 ]

let test_hermite_nodes_symmetric () =
  let nodes = Quad.hermite_nodes ~n:31 in
  let sum = Array.fold_left (fun a (x, w) -> a +. (w *. x)) 0.0 nodes in
  close ~eps:1e-12 "odd moment vanishes" 0.0 sum

let test_hermite_gaussian_expectation_nonpoly () =
  (* E[e^Z] = e^{1/2} *)
  close ~eps:1e-10 "E[e^Z]" (exp 0.5) (Quad.gaussian_expectation exp);
  (* E[Phi(Z)] = 1/2 by symmetry *)
  close ~eps:1e-10 "E[Phi(Z)]" 0.5 (Quad.gaussian_expectation Special.normal_cdf)

let test_hermite_invalid () =
  raises_invalid "n = 0" (fun () -> Quad.hermite_nodes ~n:0);
  raises_invalid "n too big" (fun () -> Quad.hermite_nodes ~n:257)

let test_simpson_polynomial () =
  let v = Quad.simpson (fun x -> x *. x) ~lo:0.0 ~hi:3.0 in
  close ~eps:1e-9 "int x^2" 9.0 v

let test_simpson_trig () =
  let v = Quad.simpson sin ~lo:0.0 ~hi:Float.pi in
  close ~eps:1e-9 "int sin" 2.0 v

let test_simpson_empty_interval () =
  close "zero-width" 0.0 (Quad.simpson exp ~lo:1.0 ~hi:1.0);
  raises_invalid "inverted" (fun () -> Quad.simpson exp ~lo:1.0 ~hi:0.0)

(* ------------------------------------------------------------------ *)
(* Timeseries                                                          *)
(* ------------------------------------------------------------------ *)

let test_aggregate_blocks () =
  let xs = [| 1.0; 3.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (list (float 1e-12)))
    "aggregate m=2" [ 2.0; 6.0 ]
    (Array.to_list (Ts.aggregate xs ~m:2));
  Alcotest.(check (list (float 1e-12)))
    "aggregate m=5" [ 5.0 ]
    (Array.to_list (Ts.aggregate xs ~m:5));
  Alcotest.(check int) "aggregate m>n empty" 0 (Array.length (Ts.aggregate xs ~m:6))

let test_aggregate_preserves_mean () =
  let rng = Rng.create ~seed:34 in
  let xs = Array.init 10_000 (fun _ -> Rng.float rng) in
  let agg = Ts.aggregate xs ~m:10 in
  close ~eps:1e-12 "aggregation preserves mean" (D.mean xs) (D.mean agg)

let test_subsample () =
  let xs = [| 0.0; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] in
  Alcotest.(check (list (float 1e-12)))
    "every 3" [ 0.0; 3.0; 6.0 ]
    (Array.to_list (Ts.subsample xs ~every:3))

let test_differenced () =
  Alcotest.(check (list (float 1e-12)))
    "diffs" [ 1.0; 2.0; -3.0 ]
    (Array.to_list (Ts.differenced [| 0.0; 1.0; 3.0; 0.0 |]));
  raises_invalid "too short" (fun () -> Ts.differenced [| 1.0 |])

let test_standardize () =
  let xs = [| 2.0; 4.0; 6.0 |] in
  let z = Ts.standardize xs in
  close ~eps:1e-12 "standardized mean" 0.0 (D.mean z);
  close ~eps:1e-12 "standardized var" 1.0 (D.variance z);
  raises_invalid "constant" (fun () -> Ts.standardize (Array.make 4 1.0))

let test_acf_points_skips_lag0 () =
  let rng = Rng.create ~seed:35 in
  let xs = Array.init 200 (fun _ -> Rng.float rng) in
  let pts = Ts.acf_points xs ~max_lag:5 in
  Alcotest.(check int) "5 points" 5 (List.length pts);
  Alcotest.(check int) "first lag is 1" 1 (fst (List.hd pts))

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let nonempty_floats =
  QCheck.(array_of_size Gen.(int_range 1 200) (float_range (-1000.0) 1000.0))

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean lies within [min,max]" ~count:200 nonempty_floats (fun xs ->
      let m = D.mean xs in
      m >= D.min xs -. 1e-9 && m <= D.max xs +. 1e-9)

let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance is nonnegative" ~count:200 nonempty_floats (fun xs ->
      D.variance xs >= -1e-9)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantiles are monotone in p" ~count:200
    QCheck.(pair nonempty_floats (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (xs, (p1, p2)) ->
      let lo = Stdlib.min p1 p2 and hi = Stdlib.max p1 p2 in
      D.quantile xs lo <= D.quantile xs hi +. 1e-9)

let prop_acf_bounded =
  QCheck.Test.make ~name:"autocorrelation lies in [-1,1]" ~count:200
    QCheck.(array_of_size Gen.(int_range 3 100) (float_range (-100.0) 100.0))
    (fun xs ->
      let r = D.acf xs ~max_lag:(Array.length xs - 1) in
      Array.for_all (fun v -> v >= -1.0 -. 1e-6 && v <= 1.0 +. 1e-6) r)

let prop_histogram_total =
  QCheck.Test.make ~name:"histogram bins every point" ~count:200
    QCheck.(pair nonempty_floats (int_range 1 50))
    (fun (xs, bins) ->
      let h = Histogram.make ~bins xs in
      h.Histogram.total = Array.length xs
      && Array.fold_left ( + ) 0 h.Histogram.counts = Array.length xs)

let prop_empirical_cdf_monotone =
  QCheck.Test.make ~name:"ECDF is monotone" ~count:200
    QCheck.(pair nonempty_floats (pair (float_range (-2000.0) 2000.0) (float_range (-2000.0) 2000.0)))
    (fun (xs, (a, b)) ->
      let e = Empirical.of_data xs in
      let lo = Stdlib.min a b and hi = Stdlib.max a b in
      Empirical.cdf e lo <= Empirical.cdf e hi +. 1e-12)

let prop_normal_quantile_inverse =
  QCheck.Test.make ~name:"normal quantile inverts cdf" ~count:500
    QCheck.(float_range (-5.0) 5.0)
    (fun x ->
      let p = Special.normal_cdf x in
      if p <= 0.0 || p >= 1.0 then true
      else abs_float (Special.normal_quantile p -. x) < 1e-6)

let prop_rng_split_deterministic =
  QCheck.Test.make ~name:"split is deterministic in the seed" ~count:100 QCheck.int
    (fun seed ->
      let a = Rng.split (Rng.create ~seed) in
      let b = Rng.split (Rng.create ~seed) in
      Int64.equal (Rng.bits64 a) (Rng.bits64 b))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_mean_bounded;
      prop_variance_nonneg;
      prop_quantile_monotone;
      prop_acf_bounded;
      prop_histogram_total;
      prop_empirical_cdf_monotone;
      prop_normal_quantile_inverse;
      prop_rng_split_deterministic;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_stats"
    [
      ( "rng",
        [
          tc "determinism" test_rng_determinism;
          tc "seed sensitivity" test_rng_seed_sensitivity;
          tc "copy independence" test_rng_copy_independent;
          tc "float bounds" test_rng_float_range_bounds;
          tc "float moments" test_rng_float_moments;
          tc "gaussian moments" test_rng_gaussian_moments;
          tc "gaussian tail" test_rng_gaussian_tail;
          tc "fill_gaussian = gaussian" test_rng_fill_gaussian_matches_gaussian;
          tc "int_range uniform" test_rng_int_range;
          tc "int_range singleton" test_rng_int_range_singleton;
          tc "split independence" test_rng_split_independence;
          tc "exponential mean" test_rng_exponential_mean;
          tc "pareto support/median" test_rng_pareto_support_and_median;
          tc "invalid arguments" test_rng_invalid_args;
        ] );
      ( "special",
        [
          tc "erf reference" test_erf_reference_values;
          tc "erfc reference" test_erfc_reference_values;
          tc "erf/erfc complement" test_erf_erfc_complementarity;
          tc "log_gamma factorials" test_log_gamma_factorials;
          tc "log_gamma half" test_log_gamma_half;
          tc "gamma_p reference" test_gamma_p_reference;
          tc "gamma P+Q" test_gamma_p_q_complementarity;
          tc "normal cdf symmetry" test_normal_cdf_symmetry;
          tc "normal cdf relaxed" test_normal_cdf_relaxed_accuracy;
          tc "normal quantile roundtrip" test_normal_quantile_roundtrip;
          tc "normal quantile known" test_normal_quantile_known;
          tc "log normal pdf" test_log_normal_pdf;
        ] );
      ( "descriptive",
        [
          tc "basics" test_descriptive_basics;
          tc "constant data" test_descriptive_constant;
          tc "empty input" test_descriptive_empty;
          tc "quantile interpolation" test_quantile_interpolation;
          tc "quantile unsorted" test_quantile_unsorted_input;
          tc "AR(1) autocovariance" test_autocovariance_ar1;
          tc "acf matches pointwise" test_acf_matches_pointwise;
          tc "acf bad lag" test_acf_bad_lag;
          tc "exponential skew/kurtosis" test_skewness_exponential;
        ] );
      ( "histogram",
        [
          tc "counts" test_histogram_counts;
          tc "clamping" test_histogram_clamping;
          tc "frequencies sum" test_histogram_frequencies_sum;
          tc "cdf monotone" test_histogram_cdf_monotone;
          tc "bin center roundtrip" test_histogram_bin_center_roundtrip;
          tc "mean approximates" test_histogram_mean_approximates;
          tc "invalid" test_histogram_invalid;
          tc "constant data" test_histogram_constant_data;
        ] );
      ( "empirical",
        [
          tc "cdf step" test_empirical_cdf_step;
          tc "quantile extremes" test_empirical_quantile_extremes;
          tc "quantile monotone" test_empirical_quantile_monotone;
          tc "qq identity" test_empirical_qq_identity;
          tc "ks self" test_empirical_ks_self_zero;
          tc "ks detects shift" test_empirical_ks_detects_shift;
          tc "ks same distribution" test_empirical_same_distribution_small_ks;
        ] );
      ( "dist",
        [
          tc "quantile/cdf roundtrip" test_dist_quantile_cdf_roundtrip;
          tc "quantile monotone" test_dist_quantile_monotone;
          tc "pdf integrates to 1" test_dist_pdf_integrates_to_one;
          tc "sample moments" test_dist_sample_moments;
          tc "gamma(1,s) = exponential" test_dist_gamma_known_cdf;
          tc "pareto closed forms" test_dist_pareto_closed_forms;
          tc "gamma/pareto continuity" test_dist_gamma_pareto_continuity;
          tc "gamma/pareto heavier tail" test_dist_gamma_pareto_tail_heavier;
          tc "empirical wrapper" test_dist_empirical_wraps;
          tc "histogram inversion" test_dist_of_histogram;
          tc "histogram quantile monotone" test_dist_of_histogram_quantile_monotone;
          tc "truncate below" test_dist_truncate_below;
          tc "invalid parameters" test_dist_invalid_parameters;
        ] );
      ( "regression",
        [
          tc "exact line" test_ols_exact_line;
          tc "noisy line" test_ols_noisy_line;
          tc "weighted outlier" test_wols_downweights;
          tc "through origin" test_ols_through_origin;
          tc "predict" test_regression_predict;
          tc "invalid" test_regression_invalid;
        ] );
      ( "quadrature",
        [
          tc "hermite polynomial exactness" test_hermite_polynomial_exactness;
          tc "hermite weights sum" test_hermite_weights_sum;
          tc "hermite symmetry" test_hermite_nodes_symmetric;
          tc "non-polynomial expectations" test_hermite_gaussian_expectation_nonpoly;
          tc "hermite invalid" test_hermite_invalid;
          tc "simpson polynomial" test_simpson_polynomial;
          tc "simpson trig" test_simpson_trig;
          tc "simpson empty" test_simpson_empty_interval;
        ] );
      ( "timeseries",
        [
          tc "aggregate blocks" test_aggregate_blocks;
          tc "aggregate preserves mean" test_aggregate_preserves_mean;
          tc "subsample" test_subsample;
          tc "differenced" test_differenced;
          tc "standardize" test_standardize;
          tc "acf points" test_acf_points_skips_lag0;
        ] );
      ("properties", qcheck_cases);
    ]

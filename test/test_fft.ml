(* Tests for the ss_fft substrate: FFT vs naive DFT, DCT, and the
   periodogram estimator. *)

module Fft = Ss_fft.Fft
module Dct = Ss_fft.Dct
module Periodogram = Ss_fft.Periodogram
module Rng = Ss_stats.Rng
module D = Ss_stats.Descriptive

let close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

let random_complex rng n =
  (Array.init n (fun _ -> Rng.gaussian rng), Array.init n (fun _ -> Rng.gaussian rng))

(* ------------------------------------------------------------------ *)
(* Power-of-two helpers                                                 *)
(* ------------------------------------------------------------------ *)

let test_is_pow2 () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check bool) (Printf.sprintf "is_pow2 %d" n) expected (Fft.is_pow2 n))
    [ (1, true); (2, true); (4, true); (1024, true); (0, false); (3, false); (-8, false); (6, false) ]

let test_next_pow2 () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check int) (Printf.sprintf "next_pow2 %d" n) expected (Fft.next_pow2 n))
    [ (1, 1); (2, 2); (3, 4); (5, 8); (1000, 1024); (1024, 1024) ];
  raises_invalid "next_pow2 0" (fun () -> Fft.next_pow2 0)

(* ------------------------------------------------------------------ *)
(* FFT correctness                                                      *)
(* ------------------------------------------------------------------ *)

let test_fft_matches_naive_dft () =
  let rng = Rng.create ~seed:1 in
  List.iter
    (fun n ->
      let re, im = random_complex rng n in
      let want_re, want_im = Fft.dft_naive re im in
      let got_re = Array.copy re and got_im = Array.copy im in
      Fft.forward got_re got_im;
      for k = 0 to n - 1 do
        close ~eps:1e-8 (Printf.sprintf "n=%d re[%d]" n k) want_re.(k) got_re.(k);
        close ~eps:1e-8 (Printf.sprintf "n=%d im[%d]" n k) want_im.(k) got_im.(k)
      done)
    [ 1; 2; 4; 8; 16; 64; 256 ]

let test_fft_roundtrip () =
  let rng = Rng.create ~seed:2 in
  let n = 512 in
  let re, im = random_complex rng n in
  let rre = Array.copy re and rim = Array.copy im in
  Fft.forward rre rim;
  Fft.inverse rre rim;
  for k = 0 to n - 1 do
    close ~eps:1e-10 "roundtrip re" re.(k) rre.(k);
    close ~eps:1e-10 "roundtrip im" im.(k) rim.(k)
  done

let test_fft_impulse () =
  (* DFT of a unit impulse at 0 is all-ones. *)
  let n = 16 in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  re.(0) <- 1.0;
  Fft.forward re im;
  for k = 0 to n - 1 do
    close ~eps:1e-12 "impulse re" 1.0 re.(k);
    close ~eps:1e-12 "impulse im" 0.0 im.(k)
  done

let test_fft_constant () =
  (* DFT of all-ones is an impulse of height n at frequency 0. *)
  let n = 32 in
  let re = Array.make n 1.0 and im = Array.make n 0.0 in
  Fft.forward re im;
  close ~eps:1e-10 "dc bin" (float_of_int n) re.(0);
  for k = 1 to n - 1 do
    close ~eps:1e-9 "nonzero bins re" 0.0 re.(k);
    close ~eps:1e-9 "nonzero bins im" 0.0 im.(k)
  done

let test_fft_single_tone () =
  (* cos(2 pi j m / n) puts mass n/2 at bins m and n-m. *)
  let n = 64 and m = 5 in
  let re =
    Array.init n (fun j ->
        cos (2.0 *. Float.pi *. float_of_int (j * m) /. float_of_int n))
  in
  let im = Array.make n 0.0 in
  Fft.forward re im;
  close ~eps:1e-9 "tone bin m" (float_of_int n /. 2.0) re.(m);
  close ~eps:1e-9 "tone bin n-m" (float_of_int n /. 2.0) re.(n - m);
  close ~eps:1e-9 "dc empty" 0.0 re.(0)

let test_fft_parseval () =
  let rng = Rng.create ~seed:3 in
  let n = 256 in
  let re, im = random_complex rng n in
  let energy_time =
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. (re.(i) *. re.(i)) +. (im.(i) *. im.(i))
    done;
    !s
  in
  let fre = Array.copy re and fim = Array.copy im in
  Fft.forward fre fim;
  let energy_freq =
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. (fre.(i) *. fre.(i)) +. (fim.(i) *. fim.(i))
    done;
    !s /. float_of_int n
  in
  close ~eps:1e-8 "Parseval" energy_time energy_freq

let test_fft_linearity () =
  let rng = Rng.create ~seed:4 in
  let n = 128 in
  let a_re, a_im = random_complex rng n in
  let b_re, b_im = random_complex rng n in
  let sum_re = Array.init n (fun i -> a_re.(i) +. (2.0 *. b_re.(i))) in
  let sum_im = Array.init n (fun i -> a_im.(i) +. (2.0 *. b_im.(i))) in
  Fft.forward sum_re sum_im;
  Fft.forward a_re a_im;
  Fft.forward b_re b_im;
  for k = 0 to n - 1 do
    close ~eps:1e-9 "linearity re" (a_re.(k) +. (2.0 *. b_re.(k))) sum_re.(k);
    close ~eps:1e-9 "linearity im" (a_im.(k) +. (2.0 *. b_im.(k))) sum_im.(k)
  done

let raises_invalid_mentioning msg needle f =
  match f () with
  | exception Invalid_argument m ->
      let contains s sub =
        let ls = String.length s and lb = String.length sub in
        let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
        go 0
      in
      if not (contains m needle) then
        Alcotest.failf "%s: error %S does not mention %S" msg m needle
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

let test_fft_invalid () =
  raises_invalid "length mismatch" (fun () -> Fft.forward (Array.make 4 0.0) (Array.make 8 0.0));
  raises_invalid "non power of two" (fun () -> Fft.forward (Array.make 6 0.0) (Array.make 6 0.0));
  (* Boundary lengths must raise a named error quoting the length,
     for both directions. *)
  List.iter
    (fun n ->
      let mk () = Array.make n 0.0 in
      raises_invalid_mentioning
        (Printf.sprintf "forward n=%d names the length" n)
        (string_of_int n)
        (fun () -> Fft.forward (mk ()) (mk ()));
      raises_invalid_mentioning
        (Printf.sprintf "forward n=%d names the function" n)
        "Fft.forward"
        (fun () -> Fft.forward (mk ()) (mk ()));
      raises_invalid_mentioning
        (Printf.sprintf "inverse n=%d names the length" n)
        (string_of_int n)
        (fun () -> Fft.inverse (mk ()) (mk ()));
      raises_invalid_mentioning
        (Printf.sprintf "inverse n=%d names the function" n)
        "Fft.inverse"
        (fun () -> Fft.inverse (mk ()) (mk ())))
    [ 0; 3 ];
  (* n = 1 is a (trivial) power of two: both directions must accept
     it and leave the single sample unchanged. *)
  let re = [| 2.5 |] and im = [| -1.0 |] in
  Fft.forward re im;
  close "n=1 forward re" 2.5 re.(0);
  close "n=1 forward im" (-1.0) im.(0);
  Fft.inverse re im;
  close "n=1 inverse re" 2.5 re.(0);
  close "n=1 inverse im" (-1.0) im.(0)

let test_real_forward_magnitude2 () =
  let rng = Rng.create ~seed:5 in
  let n = 64 in
  let x = Array.init n (fun _ -> Rng.gaussian rng) in
  let snapshot = Array.copy x in
  let mag2 = Fft.real_forward_magnitude2 x in
  let re = Array.copy x and im = Array.make n 0.0 in
  Fft.forward re im;
  for k = 0 to n - 1 do
    close ~eps:1e-9 "magnitude^2" ((re.(k) *. re.(k)) +. (im.(k) *. im.(k))) mag2.(k)
  done;
  Array.iteri (fun i v -> close "input untouched" snapshot.(i) v) x

(* ------------------------------------------------------------------ *)
(* Real-input transforms (half-complex plan)                            *)
(* ------------------------------------------------------------------ *)

let test_real_plan_matches_naive_dft () =
  let rng = Rng.create ~seed:15 in
  List.iter
    (fun n ->
      let p = Fft.Real.plan ~n in
      Alcotest.(check int) "length" n (Fft.Real.length p);
      Alcotest.(check int) "bins" ((n / 2) + 1) (Fft.Real.bins p);
      (* Exercise a nonzero window offset too. *)
      let off = 3 in
      let x = Array.init (n + off + 2) (fun _ -> Rng.gaussian rng) in
      let re = Array.make ((n / 2) + 1) nan and im = Array.make ((n / 2) + 1) nan in
      Fft.Real.forward p x ~off ~re ~im;
      let want_re, want_im =
        Fft.dft_naive (Array.sub x off n) (Array.make n 0.0)
      in
      for k = 0 to n / 2 do
        close ~eps:1e-8 (Printf.sprintf "n=%d re[%d]" n k) want_re.(k) re.(k);
        close ~eps:1e-8 (Printf.sprintf "n=%d im[%d]" n k) want_im.(k) im.(k)
      done)
    [ 2; 4; 8; 16; 128; 256 ]

let test_real_plan_roundtrip () =
  let rng = Rng.create ~seed:16 in
  List.iter
    (fun n ->
      let p = Fft.Real.plan ~n in
      let x = Array.init n (fun _ -> Rng.gaussian rng) in
      let re = Array.make ((n / 2) + 1) 0.0 and im = Array.make ((n / 2) + 1) 0.0 in
      Fft.Real.forward p x ~off:0 ~re ~im;
      let back = Array.make n nan in
      Fft.Real.inverse p ~re ~im back ~off:0;
      Array.iteri
        (fun i v -> close ~eps:1e-10 (Printf.sprintf "n=%d x[%d]" n i) x.(i) v)
        back)
    [ 2; 4; 8; 64; 256 ]

let test_real_plan_circular_convolution () =
  (* The overlap-save kernel multiplies two real spectra bin-wise and
     inverts; that must equal the circular convolution. *)
  let rng = Rng.create ~seed:17 in
  let n = 64 in
  let p = Fft.Real.plan ~n in
  let a = Array.init n (fun _ -> Rng.gaussian rng) in
  let b = Array.init n (fun _ -> Rng.gaussian rng) in
  let m = n / 2 in
  let ar = Array.make (m + 1) 0.0 and ai = Array.make (m + 1) 0.0 in
  let br = Array.make (m + 1) 0.0 and bi = Array.make (m + 1) 0.0 in
  Fft.Real.forward p a ~off:0 ~re:ar ~im:ai;
  Fft.Real.forward p b ~off:0 ~re:br ~im:bi;
  let cr = Array.make (m + 1) 0.0 and ci = Array.make (m + 1) 0.0 in
  for k = 0 to m do
    cr.(k) <- (ar.(k) *. br.(k)) -. (ai.(k) *. bi.(k));
    ci.(k) <- (ar.(k) *. bi.(k)) +. (ai.(k) *. br.(k))
  done;
  let got = Array.make n nan in
  Fft.Real.inverse p ~re:cr ~im:ci got ~off:0;
  for t = 0 to n - 1 do
    let want = ref 0.0 in
    for j = 0 to n - 1 do
      want := !want +. (a.(j) *. b.((t - j + n) mod n))
    done;
    close ~eps:1e-8 (Printf.sprintf "conv[%d]" t) !want got.(t)
  done

let test_real_plan_invalid () =
  List.iter
    (fun n ->
      raises_invalid_mentioning
        (Printf.sprintf "plan n=%d" n)
        (string_of_int n)
        (fun () -> Fft.Real.plan ~n))
    [ 0; 1; 3; 6 ];
  let p = Fft.Real.plan ~n:8 in
  raises_invalid "undersized spectrum" (fun () ->
      Fft.Real.forward p (Array.make 8 0.0) ~off:0 ~re:(Array.make 4 0.0)
        ~im:(Array.make 4 0.0));
  raises_invalid "window out of bounds" (fun () ->
      Fft.Real.forward p (Array.make 8 0.0) ~off:1 ~re:(Array.make 5 0.0)
        ~im:(Array.make 5 0.0))

(* ------------------------------------------------------------------ *)
(* DCT                                                                  *)
(* ------------------------------------------------------------------ *)

let test_dct_roundtrip () =
  let rng = Rng.create ~seed:6 in
  let block = Array.init 64 (fun _ -> Rng.float_range rng 0.0 255.0) in
  let back = Dct.inverse_8x8 (Dct.forward_8x8 block) in
  Array.iteri (fun i v -> close ~eps:1e-9 (Printf.sprintf "pixel %d" i) block.(i) v) back

let test_dct_constant_block () =
  (* A flat block concentrates all energy in the DC coefficient;
     orthonormal scaling makes DC = 8 * value. *)
  let block = Array.make 64 10.0 in
  let coefs = Dct.forward_8x8 block in
  close ~eps:1e-9 "dc" 80.0 coefs.(0);
  for i = 1 to 63 do
    close ~eps:1e-9 "ac zero" 0.0 coefs.(i)
  done

let test_dct_energy_preservation () =
  (* Orthonormal transform preserves the L2 norm. *)
  let rng = Rng.create ~seed:7 in
  let block = Array.init 64 (fun _ -> Rng.gaussian rng) in
  let coefs = Dct.forward_8x8 block in
  let e xs = Array.fold_left (fun a v -> a +. (v *. v)) 0.0 xs in
  close ~eps:1e-9 "energy" (e block) (e coefs)

let test_dct_invalid () =
  raises_invalid "wrong size" (fun () -> Dct.forward_8x8 (Array.make 32 0.0));
  raises_invalid "wrong size inverse" (fun () -> Dct.inverse_8x8 (Array.make 100 0.0))

(* ------------------------------------------------------------------ *)
(* Periodogram                                                          *)
(* ------------------------------------------------------------------ *)

let test_periodogram_white_noise_flat () =
  (* For white noise the periodogram averages to var/(2 pi). *)
  let rng = Rng.create ~seed:8 in
  let x = Array.init 8192 (fun _ -> Rng.gaussian rng) in
  let pts = Periodogram.compute x in
  let mean_p = D.mean (Array.map snd pts) in
  close ~eps:0.02 "white noise level" (1.0 /. (2.0 *. Float.pi)) mean_p

let test_periodogram_tone_peak () =
  let n = 4096 and m = 100 in
  let x =
    Array.init n (fun j ->
        sin (2.0 *. Float.pi *. float_of_int (j * m) /. float_of_int n))
  in
  let pts = Periodogram.compute x in
  (* The maximum must sit at Fourier frequency index m (array offset
     m-1 since frequencies start at j = 1). *)
  let best = ref 0 in
  Array.iteri (fun i (_, p) -> if p > snd pts.(!best) then best := i) pts;
  Alcotest.(check int) "peak index" (m - 1) !best

let test_periodogram_hurst_white_noise () =
  let rng = Rng.create ~seed:9 in
  let x = Array.init 16384 (fun _ -> Rng.gaussian rng) in
  let h, _ = Periodogram.hurst_fit x in
  close ~eps:0.12 "white noise H = 0.5" 0.5 h

let test_periodogram_invalid () =
  raises_invalid "too short" (fun () -> Periodogram.compute (Array.make 8 0.0))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_fft"
    [
      ("helpers", [ tc "is_pow2" test_is_pow2; tc "next_pow2" test_next_pow2 ]);
      ( "fft",
        [
          tc "matches naive DFT" test_fft_matches_naive_dft;
          tc "roundtrip" test_fft_roundtrip;
          tc "impulse" test_fft_impulse;
          tc "constant" test_fft_constant;
          tc "single tone" test_fft_single_tone;
          tc "Parseval" test_fft_parseval;
          tc "linearity" test_fft_linearity;
          tc "invalid" test_fft_invalid;
          tc "real magnitude^2" test_real_forward_magnitude2;
        ] );
      ( "real-plan",
        [
          tc "matches naive DFT" test_real_plan_matches_naive_dft;
          tc "roundtrip" test_real_plan_roundtrip;
          tc "circular convolution" test_real_plan_circular_convolution;
          tc "invalid" test_real_plan_invalid;
        ] );
      ( "dct",
        [
          tc "roundtrip" test_dct_roundtrip;
          tc "constant block" test_dct_constant_block;
          tc "energy preservation" test_dct_energy_preservation;
          tc "invalid" test_dct_invalid;
        ] );
      ( "periodogram",
        [
          tc "white noise flat" test_periodogram_white_noise_flat;
          tc "tone peak" test_periodogram_tone_peak;
          tc "white noise Hurst" test_periodogram_hurst_white_noise;
          tc "invalid" test_periodogram_invalid;
        ] );
    ]

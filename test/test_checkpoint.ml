(* Tests for the crash-safe checkpoint/resume subsystem: the
   versioned/checksummed container and its refusal paths, the
   per-layer codecs (Rng, online statistics, streaming Hosking
   generators, every source backend, fault wrappers), and the
   end-to-end contract — a resumed multiplexer or ABR run is bitwise
   identical to the uninterrupted one at any shard/domain count —
   plus the Paxson clipping gate and the fault-spec parser's
   boundary validation that ride in the same PR. *)

module Ck = Ss_checkpoint
module W = Ss_checkpoint.W
module R = Ss_checkpoint.R
module Rng = Ss_stats.Rng
module Online = Ss_stats.Online_stats
module Acf = Ss_fractal.Acf
module Hosking = Ss_fractal.Hosking
module Scene = Ss_video.Scene_source
module Gop = Ss_video.Gop
module Trace = Ss_video.Trace
module Pool = Ss_parallel.Pool
module Source = Ss_mux.Source
module Fault = Ss_mux.Fault
module Admission = Ss_mux.Admission
module Police = Ss_mux.Police
module Mux = Ss_mux.Mux
module Trajectory = Ss_abr.Trajectory
module Ladder = Ss_abr.Ladder
module Policy = Ss_abr.Policy
module Client = Ss_abr.Client
module Fleet = Ss_abr.Fleet

let bits = Int64.bits_of_float
let float_eq a b = bits a = bits b

let check_bits msg a b =
  if not (float_eq a b) then Alcotest.failf "%s: %h <> %h" msg a b

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let raises_invalid ?contains msg f =
  match f () with
  | exception Invalid_argument m -> (
    match contains with
    | Some sub when not (contains_sub m sub) ->
      Alcotest.failf "%s: message %S lacks %S" msg m sub
    | _ -> ())
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

let raises_corrupt ?contains msg f =
  match f () with
  | exception Ck.Corrupt m -> (
    match contains with
    | Some sub when not (contains_sub m sub) ->
      Alcotest.failf "%s: message %S lacks %S" msg m sub
    | _ -> ())
  | exception e -> Alcotest.failf "%s: expected Corrupt, got %s" msg (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Corrupt" msg

(* Serialize through a fresh writer and return the raw payload. *)
let snap save =
  let w = W.create () in
  save w;
  W.contents w

let reader s = R.of_string s

(* ------------------------------------------------------------------ *)
(* Container: primitive codec round-trip                                *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let w = W.create () in
  W.u8 w 0;
  W.u8 w 255;
  W.i64 w Int64.min_int;
  W.int w (-42);
  W.int w max_int;
  W.float w 1.5;
  W.float w nan;
  W.float w neg_infinity;
  W.float w (-0.0);
  W.bool w true;
  W.bool w false;
  W.string w "";
  W.string w "hello\x00world";
  W.float_array w [||];
  W.float_array w [| 1.0; nan; -0.0 |];
  W.int_array w [| 3; -9; max_int |];
  W.option w W.float None;
  W.option w W.float (Some 2.5);
  W.tag w "sect";
  let r = reader (W.contents w) in
  Alcotest.(check int) "u8 lo" 0 (R.u8 r);
  Alcotest.(check int) "u8 hi" 255 (R.u8 r);
  Alcotest.(check int64) "i64" Int64.min_int (R.i64 r);
  Alcotest.(check int) "int neg" (-42) (R.int r);
  Alcotest.(check int) "int max" max_int (R.int r);
  check_bits "float" 1.5 (R.float r);
  check_bits "float nan" nan (R.float r);
  check_bits "float -inf" neg_infinity (R.float r);
  check_bits "float -0" (-0.0) (R.float r);
  Alcotest.(check bool) "bool t" true (R.bool r);
  Alcotest.(check bool) "bool f" false (R.bool r);
  Alcotest.(check string) "empty string" "" (R.string r);
  Alcotest.(check string) "string with NUL" "hello\x00world" (R.string r);
  Alcotest.(check int) "empty array" 0 (Array.length (R.float_array r));
  let fa = R.float_array r in
  check_bits "array nan slot" nan fa.(1);
  check_bits "array -0 slot" (-0.0) fa.(2);
  Alcotest.(check (array int)) "int array" [| 3; -9; max_int |] (R.int_array r);
  (match R.option r R.float with
  | None -> ()
  | Some _ -> Alcotest.fail "expected None");
  (match R.option r R.float with
  | Some v -> check_bits "Some" 2.5 v
  | None -> Alcotest.fail "expected Some");
  R.tag r "sect"

let test_reader_refusals () =
  raises_corrupt "int on empty input" (fun () -> R.int (reader ""));
  raises_corrupt "string truncated" (fun () ->
      let w = W.create () in
      W.string w "hello";
      let s = W.contents w in
      R.string (reader (String.sub s 0 (String.length s - 2))));
  raises_corrupt ~contains:"length 3, expected 2" "float_array_into length" (fun () ->
      let s = snap (fun w -> W.float_array w [| 1.0; 2.0; 3.0 |]) in
      R.float_array_into (reader s) (Array.make 2 0.0));
  raises_corrupt "int_array_into length" (fun () ->
      let s = snap (fun w -> W.int_array w [| 1; 2 |]) in
      R.int_array_into (reader s) (Array.make 5 0));
  raises_corrupt ~contains:"\"rng\"" "tag mismatch names both sections" (fun () ->
      let s = snap (fun w -> W.tag w "welford") in
      R.tag (reader s) "rng");
  raises_corrupt ~contains:"missing" "tag over non-tag bytes" (fun () ->
      let s = snap (fun w -> W.float w 1.0) in
      R.tag (reader s) "rng")

(* ------------------------------------------------------------------ *)
(* Container: framing refusals (magic / version / kind / CRC / size)    *)
(* ------------------------------------------------------------------ *)

let test_container_refusals () =
  let payload = snap (fun w -> W.string w "the payload") in
  let record = Ck.encode ~kind:"unit-test" ~meta:"meta-string" payload in
  (* Happy path. *)
  let meta, r = Ck.decode ~kind:"unit-test" record in
  Alcotest.(check string) "meta survives" "meta-string" meta;
  Alcotest.(check string) "payload survives" "the payload" (R.string r);
  (* Kind mismatch — checked before CRC so the message is precise. *)
  raises_corrupt ~contains:"kind mismatch" "wrong kind" (fun () ->
      Ck.decode ~kind:"other" record);
  (* Bad magic. *)
  let patched i c =
    let b = Bytes.of_string record in
    Bytes.set b i c;
    Bytes.to_string b
  in
  raises_corrupt ~contains:"magic" "bad magic" (fun () ->
      Ck.decode ~kind:"unit-test" (patched 0 'X'));
  (* Wrong format version (little-endian int64 at offset 4). *)
  raises_corrupt ~contains:"version" "future version refused" (fun () ->
      Ck.decode ~kind:"unit-test" (patched 4 '\x02'));
  (* CRC: flip one payload byte; the stored checksum must catch it. *)
  raises_corrupt ~contains:"CRC" "bit flip detected" (fun () ->
      Ck.decode ~kind:"unit-test" (patched (String.length record - 9) '\xFF'));
  (* Truncation at several depths: inside magic, header, payload, CRC. *)
  List.iter
    (fun k ->
      raises_corrupt
        (Printf.sprintf "truncated to %d bytes" k)
        (fun () -> Ck.decode ~kind:"unit-test" (String.sub record 0 k)))
    [ 0; 3; 11; String.length record - 4; String.length record - 1 ];
  (* Trailing garbage is corruption, not slack. *)
  raises_corrupt "trailing garbage" (fun () -> Ck.decode ~kind:"unit-test" (record ^ "x"))

let test_file_roundtrip () =
  let path = Filename.temp_file "ss-ckpt-test" ".ckpt" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  Ck.to_file ~path ~kind:"file-test" ~meta:"run-42" (fun w -> W.int w 7);
  (* Atomic publish: no .tmp sibling left behind. *)
  Alcotest.(check bool) "tmp cleaned up" false (Sys.file_exists (path ^ ".tmp"));
  let meta, r = Ck.of_file ~path ~kind:"file-test" in
  Alcotest.(check string) "meta" "run-42" meta;
  Alcotest.(check int) "payload" 7 (R.int r);
  raises_corrupt ~contains:"cannot open" "missing file" (fun () ->
      Ck.of_file ~path:(path ^ ".does-not-exist") ~kind:"file-test");
  (* Truncate the file on disk: the CRC (or framing) must refuse. *)
  let whole = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub whole 0 (String.length whole - 3)));
  raises_corrupt "truncated on disk" (fun () -> Ck.of_file ~path ~kind:"file-test")

(* ------------------------------------------------------------------ *)
(* Rng / online statistics codecs                                       *)
(* ------------------------------------------------------------------ *)

let test_rng_roundtrip () =
  let rng = Rng.create ~seed:7 in
  (* Odd number of gaussians leaves a cached polar deviate pending —
     the snapshot must carry it or the streams desync by one. *)
  for _ = 1 to 3 do
    ignore (Rng.gaussian rng)
  done;
  let s = snap (Rng.save rng) in
  let twin = Rng.create ~seed:999_999 in
  Rng.restore twin (reader s);
  for i = 1 to 64 do
    check_bits (Printf.sprintf "gaussian %d" i) (Rng.gaussian rng) (Rng.gaussian twin);
    Alcotest.(check int64)
      (Printf.sprintf "bits64 %d" i)
      (Rng.bits64 rng) (Rng.bits64 twin)
  done;
  raises_corrupt "rng from garbage" (fun () ->
      Rng.restore twin (reader (snap (fun w -> W.float w 1.0))))

let test_online_roundtrips () =
  let xs = Array.init 150 (fun i -> sin (float_of_int i) *. 3.0) in
  let ys = Array.init 90 (fun i -> cos (float_of_int i) /. 2.0) in
  (* Welford *)
  let a = Online.create () in
  Array.iter (Online.add a) xs;
  let b = Online.create () in
  Online.restore b (reader (snap (Online.save a)));
  Array.iter (Online.add a) ys;
  Array.iter (Online.add b) ys;
  Alcotest.(check int) "welford count" (Online.count a) (Online.count b);
  check_bits "welford mean" (Online.mean a) (Online.mean b);
  check_bits "welford variance" (Online.variance a) (Online.variance b);
  check_bits "welford min" (Online.min a) (Online.min b);
  check_bits "welford max" (Online.max a) (Online.max b);
  (* Variance-time estimator *)
  let va = Online.Vt.create () in
  Array.iter (Online.Vt.add va) xs;
  let vb = Online.Vt.create () in
  Online.Vt.restore vb (reader (snap (Online.Vt.save va)));
  Array.iter (Online.Vt.add va) ys;
  Array.iter (Online.Vt.add vb) ys;
  (match (Online.Vt.estimate va, Online.Vt.estimate vb) with
  | None, None -> ()
  | Some ha, Some hb -> check_bits "vt estimate" ha hb
  | _ -> Alcotest.fail "vt estimates disagree on availability");
  raises_corrupt "vt level mismatch" (fun () ->
      Online.Vt.restore (Online.Vt.create ~levels:5 ()) (reader (snap (Online.Vt.save va))));
  (* P² quantile marker state *)
  let pa = Online.P2.create ~p:0.9 in
  Array.iter (Online.P2.add pa) xs;
  let pb = Online.P2.create ~p:0.9 in
  Online.P2.restore pb (reader (snap (Online.P2.save pa)));
  Array.iter (Online.P2.add pa) ys;
  Array.iter (Online.P2.add pb) ys;
  check_bits "p2 quantile" (Online.P2.quantile pa) (Online.P2.quantile pb);
  raises_corrupt "p2 level mismatch" (fun () ->
      Online.P2.restore (Online.P2.create ~p:0.5) (reader (snap (Online.P2.save pa))))

let test_hosking_block_roundtrip () =
  let acf = Acf.fgn ~h:0.8 in
  let order = 32 in
  let table = Source.table_for ~acf ~order in
  let b1 = Hosking.Block.create ~table ~order () in
  let rng1 = Rng.create ~seed:3 in
  let scratch = Array.make 300 0.0 in
  Hosking.Block.fill b1 rng1 scratch ~off:0 ~len:100;
  let sb = snap (Hosking.Block.save b1) and sr = snap (Rng.save rng1) in
  let b2 = Hosking.Block.create ~table ~order () in
  let rng2 = Rng.create ~seed:55 in
  Hosking.Block.restore b2 (reader sb);
  Rng.restore rng2 (reader sr);
  Alcotest.(check int) "generated carried" (Hosking.Block.generated b1)
    (Hosking.Block.generated b2);
  (* Continue both, deliberately splitting the restored side at a
     different block boundary: the stream must not care. *)
  let out1 = Array.make 150 0.0 and out2 = Array.make 150 0.0 in
  Hosking.Block.fill b1 rng1 out1 ~off:0 ~len:150;
  Hosking.Block.fill b2 rng2 out2 ~off:0 ~len:37;
  Hosking.Block.fill b2 rng2 out2 ~off:37 ~len:113;
  Array.iteri (fun i x -> check_bits (Printf.sprintf "slot %d" i) x out2.(i)) out1;
  raises_corrupt "order mismatch" (fun () ->
      let other = Hosking.Block.create ~table:(Source.table_for ~acf ~order:16) ~order:16 () in
      Hosking.Block.restore other (reader sb))

let test_hosking_block_fft_roundtrip () =
  let acf = Acf.fgn ~h:0.82 in
  (* order > partition (128) so the overlap-save path carries a real
     delay line; burn past [order] so the snapshot lands after the
     FFT mode has engaged, at a count that is not a block multiple. *)
  let order = 160 in
  let table = Source.table_for ~acf ~order in
  let mk () = Hosking.Block.create ~fft_plan:(Hosking.Fft_plan.make ~table ~order) ~table ~order () in
  let b1 = mk () in
  let rng1 = Rng.create ~seed:6 in
  let scratch = Array.make 300 0.0 in
  Hosking.Block.fill b1 rng1 scratch ~off:0 ~len:300;
  let sb = snap (Hosking.Block.save b1) and sr = snap (Rng.save rng1) in
  let b2 = mk () in
  let rng2 = Rng.create ~seed:77 in
  Hosking.Block.restore b2 (reader sb);
  Rng.restore rng2 (reader sr);
  Alcotest.(check int) "generated carried" (Hosking.Block.generated b1)
    (Hosking.Block.generated b2);
  (* The restored plan is re-derived, not deserialized: the delay-line
     spectra are rebuilt from the saved window, so the continuation
     must still be bitwise regardless of pull batching. *)
  let out1 = Array.make 300 0.0 and out2 = Array.make 300 0.0 in
  Hosking.Block.fill b1 rng1 out1 ~off:0 ~len:300;
  Hosking.Block.fill b2 rng2 out2 ~off:0 ~len:41;
  Hosking.Block.fill b2 rng2 out2 ~off:41 ~len:259;
  Array.iteri (fun i x -> check_bits (Printf.sprintf "fft slot %d" i) x out2.(i)) out1;
  (* Kernel mismatch both ways: an FFT snapshot must not restore into
     a sequential block, nor a sequential snapshot into an FFT one. *)
  raises_corrupt "fft snapshot into seq block" (fun () ->
      Hosking.Block.restore (Hosking.Block.create ~table ~order ()) (reader sb));
  let seq = Hosking.Block.create ~table ~order () in
  Hosking.Block.fill seq rng2 scratch ~off:0 ~len:50;
  let sseq = snap (Hosking.Block.save seq) in
  raises_corrupt "seq snapshot into fft block" (fun () ->
      Hosking.Block.restore (mk ()) (reader sseq));
  raises_corrupt "fft order mismatch" (fun () ->
      let table' = Source.table_for ~acf ~order:192 in
      let other =
        Hosking.Block.create
          ~fft_plan:(Hosking.Fft_plan.make ~table:table' ~order:192)
          ~table:table' ~order:192 ()
      in
      Hosking.Block.restore other (reader sb))

(* ------------------------------------------------------------------ *)
(* Source codecs: every backend resumes bit-for-bit                     *)
(* ------------------------------------------------------------------ *)

let small_model =
  lazy
    (let trace =
       Scene.generate
         { Scene.default with frames = 8192; gop = Gop.of_string "I" }
         (Rng.create ~seed:11)
     in
     fst (Ss_core.Fit.fit ~max_lag:100 trace.Ss_video.Trace.sizes))

let small_mpeg =
  lazy
    (let trace = Scene.generate { Scene.default with frames = 6144 } (Rng.create ~seed:12) in
     Ss_core.Mpeg.fit ~i_max_lag:20 trace)

(* Build a source, pull [burn] slots, snapshot it, rebuild it from
   scratch, restore, and check the two streams agree bitwise for
   [tail] further slots — drained through a mix of scalar and block
   pulls so both interfaces cross the snapshot point. *)
let source_roundtrip ?(burn = 137) ?(tail = 200) name mk =
  let s1 = mk () in
  Alcotest.(check bool) (name ^ ": supports checkpoint") true (Source.supports_checkpoint s1);
  let wbuf = Array.make 64 0.0 and cbuf = Array.make 64 0 in
  let burned = ref 0 in
  while !burned < burn do
    let l = Stdlib.min 64 (burn - !burned) in
    let got = Source.next_block s1 wbuf cbuf ~off:0 ~len:l in
    if got < l then Alcotest.failf "%s: source departed during burn-in" name;
    burned := !burned + got
  done;
  let state = snap (Source.save s1) in
  let s2 = mk () in
  Source.restore s2 (reader state);
  let w2 = Array.make 64 0.0 and c2 = Array.make 64 0 in
  for i = 1 to tail do
    if i mod 3 = 0 then begin
      (* Scalar pull on both sides. *)
      let a, ca = Source.next s1 and b, cb = Source.next s2 in
      check_bits (Printf.sprintf "%s: slot %d" name i) a b;
      Alcotest.(check int) (Printf.sprintf "%s: class %d" name i) ca cb
    end
    else begin
      let ga = Source.next_block s1 wbuf cbuf ~off:0 ~len:1 in
      let gb = Source.next_block s2 w2 c2 ~off:0 ~len:1 in
      Alcotest.(check int) (Printf.sprintf "%s: block count %d" name i) ga gb;
      if ga > 0 then begin
        check_bits (Printf.sprintf "%s: block slot %d" name i) wbuf.(0) w2.(0);
        Alcotest.(check int) (Printf.sprintf "%s: block class %d" name i) cbuf.(0) c2.(0)
      end
    end
  done

let test_source_roundtrips () =
  let m = Lazy.force small_model in
  source_roundtrip "of_array" (fun () ->
      Source.of_array ~name:"arr" ~cycle:true
        (Array.init 97 (fun t -> abs_float (sin (float_of_int (t + 1))))));
  source_roundtrip "of_model hosking" (fun () ->
      Source.of_model ~name:"hk" ~order:48 m (Rng.create ~seed:21));
  source_roundtrip "of_model davies-harte" (fun () ->
      Source.of_model ~name:"dh" ~order:48 ~backend:`Davies_harte ~horizon:400 m
        (Rng.create ~seed:22));
  source_roundtrip "of_model paxson" (fun () ->
      Source.of_model ~name:"px" ~order:48 ~backend:`Paxson ~horizon:400 m
        (Rng.create ~seed:23));
  source_roundtrip "of_mpeg priority" (fun () ->
      Source.of_mpeg ~name:"mp" ~order:48 ~priority:true (Lazy.force small_mpeg)
        (Rng.create ~seed:24));
  (* FFT kernel, snapshotted after the overlap-save path engages
     (burn > order > partition). *)
  source_roundtrip ~burn:400 "of_model fft" (fun () ->
      Source.of_model ~name:"fk" ~order:160 ~kernel:`Fft m (Rng.create ~seed:25));
  source_roundtrip ~burn:400 "of_mpeg fft" (fun () ->
      Source.of_mpeg ~name:"mf" ~order:160 ~kernel:`Fft (Lazy.force small_mpeg)
        (Rng.create ~seed:26))

let test_fault_wrapped_roundtrip () =
  let m = Lazy.force small_model in
  let events =
    [
      Fault.Burst { rate = 0.05; mean_len = 6.0; amplitude = 2.0 };
      Fault.Drift { start = 50; ramp = 100; factor = 1.5 };
      Fault.Corrupt { rate = 0.02 };
    ]
  in
  source_roundtrip "fault-wrapped" (fun () ->
      Fault.wrap ~rng:(Rng.create ~seed:31) events
        (Source.of_model ~name:"f" ~order:48 m (Rng.create ~seed:32)))

let test_source_refusals () =
  let m = Lazy.force small_model in
  (* The IS variant carries likelihood state outside the snapshot. *)
  let tw = Source.of_model_twisted ~order:32 ~shift:(fun _ -> 0.1) m (Rng.create ~seed:5) in
  Alcotest.(check bool) "twisted has no ckpt" false (Source.supports_checkpoint tw);
  raises_invalid "save on twisted" (fun () -> snap (Source.save tw));
  (* Name mismatch: restoring someone else's snapshot must refuse. *)
  let a = Source.of_array ~name:"alpha" ~cycle:true [| 1.0; 2.0 |] in
  let b = Source.of_array ~name:"beta" ~cycle:true [| 1.0; 2.0 |] in
  let s = snap (Source.save a) in
  raises_corrupt ~contains:"alpha" "cross-source restore" (fun () ->
      Source.restore b (reader s))

let prop_source_snapshot_continuation =
  QCheck.Test.make ~name:"source snapshot -> restore -> bitwise continuation" ~count:25
    QCheck.(triple (int_range 1 400) (int_range 1 500) (int_range 8 64))
    (fun (seed, burn, order) ->
      let m = Lazy.force small_model in
      let mk () = Source.of_model ~name:"q" ~order m (Rng.create ~seed) in
      let s1 = mk () in
      for _ = 1 to burn do
        ignore (Source.next s1)
      done;
      let s2 = mk () in
      Source.restore s2 (reader (snap (Source.save s1)));
      let ok = ref true in
      for _ = 1 to 64 do
        let a, _ = Source.next s1 and b, _ = Source.next s2 in
        if not (float_eq a b) then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Paxson clipping gate                                                 *)
(* ------------------------------------------------------------------ *)

let test_paxson_clipping_gate () =
  (* FGN-family ACFs embed cleanly: the gate must wave them through
     with a ratio at (or near) zero. *)
  let r = Source.paxson_clipping_check ~acf:(Acf.fgn ~h:0.8) ~n:2048 ~allow:false in
  if r > 0.01 then Alcotest.failf "fgn clipped ratio %g above threshold" r;
  (* A rectangular short-range ACF has strongly negative circulant
     eigenvalues: the plan silently clips them, and the gate must
     refuse unless explicitly overridden. *)
  let rect =
    Acf.of_fun ~name:"rect-acf" (fun k -> if k = 0 then 1.0 else if k <= 8 then 0.95 else 0.0)
  in
  (match Source.paxson_clipping_check ~acf:rect ~n:512 ~allow:false with
  | exception Invalid_argument m ->
    List.iter
      (fun sub ->
        if not (Astring.String.is_infix ~affix:sub m) then
          Alcotest.failf "refusal %S lacks %S" m sub)
      [ "rect-acf"; "--allow-clipping" ]
  | r -> Alcotest.failf "expected refusal, got ratio %g" r);
  let r = Source.paxson_clipping_check ~acf:rect ~n:512 ~allow:true in
  if r <= 0.01 then Alcotest.failf "override path: expected ratio above 0.01, got %g" r

(* ------------------------------------------------------------------ *)
(* Fault-spec parser boundary validation                                *)
(* ------------------------------------------------------------------ *)

let test_fault_parse_boundaries () =
  (* Negative durations / rates / amplitudes and unknown kinds must
     be refused with the offending field named. *)
  raises_invalid ~contains:"drift start" "negative drift start" (fun () ->
      Fault.parse "0:drift@-1+10x2.0");
  raises_invalid ~contains:"drift ramp" "negative drift ramp" (fun () ->
      Fault.validate (Fault.Drift { start = 0; ramp = -5; factor = 2.0 }));
  raises_invalid ~contains:"drift factor" "infinite drift factor" (fun () ->
      Fault.validate (Fault.Drift { start = 0; ramp = 0; factor = infinity }));
  raises_invalid ~contains:"burst rate" "burst rate above 1" (fun () ->
      Fault.parse "*:burst@1.5+4x2.0");
  raises_invalid ~contains:"burst mean length" "negative burst length" (fun () ->
      Fault.parse "*:burst@0.1+-3x2.0");
  raises_invalid ~contains:"burst amplitude" "negative burst amplitude" (fun () ->
      Fault.parse "*:burst@0.1+3x-2.0");
  raises_invalid ~contains:"stall len" "negative stall length" (fun () ->
      Fault.validate (Fault.Stall { start = 3; len = -1 }));
  raises_invalid ~contains:"dropout rate" "negative dropout rate" (fun () ->
      Fault.parse "*:dropout@-0.5+3");
  raises_invalid ~contains:"corrupt rate" "corrupt rate above 1" (fun () ->
      Fault.parse "*:corrupt@2.0");
  raises_invalid ~contains:"misdeclared hurst" "hurst at 1" (fun () ->
      Fault.parse "0:hurst=1.0");
  raises_invalid ~contains:"misdeclared mean" "negative declared mean" (fun () ->
      Fault.parse "0:mean=-4");
  (* Unknown kinds: named, with the catalogue of known ones. *)
  raises_invalid ~contains:"unknown fault kind \"wobble\"" "unknown @-kind" (fun () ->
      Fault.parse "0:wobble@3+4");
  raises_invalid ~contains:"known kinds" "unknown kind lists catalogue" (fun () ->
      Fault.parse "0:wobble@3+4");
  raises_invalid ~contains:"unknown misdeclare field" "unknown =-field" (fun () ->
      Fault.parse "0:variance=2.0");
  raises_invalid ~contains:"expected" "malformed arguments name the shape" (fun () ->
      Fault.parse "0:drift@abc");
  raises_invalid ~contains:"target" "bad target" (fun () -> Fault.parse "x:corrupt@0.1");
  raises_invalid "empty spec" (fun () -> Fault.parse "")

(* ------------------------------------------------------------------ *)
(* Mux: resume == uninterrupted, bitwise                                *)
(* ------------------------------------------------------------------ *)

(* Fixed overloaded scenario with live policing and fault state: 4
   cyclic sources behind fault wrappers (burst/corrupt episodes keep
   the fault RNGs and police windows mid-flight at every snapshot),
   finite buffer, thresholds, slots chosen so checkpoints land
   mid-police-window (window 512, snapshots every 256). *)
let mux_sources () =
  let specs = Fault.parse "*:burst@0.01+8x2.0;1:corrupt@0.01;0:drift@300+200x1.5" in
  let srcs =
    Array.init 4 (fun i ->
        Source.of_array ~name:(Printf.sprintf "s%d" i) ~cycle:true
          (Array.init
             (160 + (7 * i))
             (fun t -> abs_float (sin (float_of_int ((t + 3) * (i + 2)))))))
  in
  Fault.wrap_all ~rng:(Rng.create ~seed:2024) specs srcs

let run_mux ?pool ?shards ?checkpoint ?resume ?(service = 2.2) () =
  let srcs = mux_sources () in
  let police =
    Police.create
      ~config:{ Police.default with window = 512 }
      (Array.map Admission.descr_of_source srcs)
  in
  Mux.run ?pool ?shards ?checkpoint ?resume ~police ~buffer:6.0 ~thresholds:[ 1.0; 3.0 ]
    ~service ~slots:2048 srcs

let capture_hook every =
  let first = ref None and last = ref None in
  let ck =
    {
      Mux.every;
      save =
        (fun ~slot:_ fill ->
          let s = snap fill in
          if !first = None then first := Some s;
          last := Some s);
    }
  in
  (ck, first, last)

let test_mux_resume_identity () =
  let base = run_mux () in
  let ck, first, last = capture_hook 256 in
  let armed = run_mux ~checkpoint:ck () in
  if not (Mux.equal_report base armed) then Alcotest.fail "checkpoint hook perturbed the run";
  let first = Option.get !first and last = Option.get !last in
  (* Resume from the first snapshot: slot 256, mid-police-window
     (window 512), fault episodes possibly in flight. *)
  let resumed = run_mux ~resume:(reader first) () in
  if not (Mux.equal_report base resumed) then
    Alcotest.fail "resume from mid-window snapshot differs from uninterrupted run";
  (* Resume from the last snapshot too — deep into the run. *)
  let resumed = run_mux ~resume:(reader last) () in
  if not (Mux.equal_report base resumed) then
    Alcotest.fail "resume from late snapshot differs from uninterrupted run"

let test_mux_resume_shard_and_domain_invariant () =
  let base = run_mux () in
  (* Snapshot bytes are layout-independent: a 4-shard pooled run must
     write byte-identical snapshots to the sequential single-shard
     run. *)
  let ck1, first1, _ = capture_hook 256 in
  ignore (run_mux ~checkpoint:ck1 () : Mux.report);
  let p = Pool.create ~domains:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let ck4, first4, _ = capture_hook 256 in
  let armed4 = run_mux ~pool:p ~shards:4 ~checkpoint:ck4 () in
  if not (Mux.equal_report base armed4) then Alcotest.fail "sharded armed run differs";
  Alcotest.(check bool) "snapshot bytes shard-invariant" true
    (String.equal (Option.get !first1) (Option.get !first4));
  (* Cross-layout resume: snapshot written at shards=1, resumed at
     shards=4 on a pool, and vice versa. *)
  let resumed = run_mux ~pool:p ~shards:4 ~resume:(reader (Option.get !first1)) () in
  if not (Mux.equal_report base resumed) then
    Alcotest.fail "resume at shards=4 of a shards=1 snapshot differs";
  let resumed = run_mux ~resume:(reader (Option.get !first4)) () in
  if not (Mux.equal_report base resumed) then
    Alcotest.fail "resume at shards=1 of a shards=4 snapshot differs"

(* Kill-and-resume identity for FFT-kernel model sources: the blocked
   kernel's snapshot (window + cursor, plan re-derived on restore)
   must resume bitwise through the mux at any shard/domain layout. *)
let run_mux_fft ?pool ?shards ?checkpoint ?resume () =
  let m = Lazy.force small_model in
  let srcs =
    Array.init 3 (fun i ->
        Source.of_model ~name:(Printf.sprintf "f%d" i) ~order:160 ~kernel:`Fft m
          (Rng.create ~seed:(400 + i)))
  in
  Mux.run ?pool ?shards ?checkpoint ?resume ~buffer:6.0 ~service:2.5 ~slots:1024 srcs

let test_mux_fft_resume_identity () =
  let base = run_mux_fft () in
  (* every=200: the snapshot lands mid-partition (200 is not a
     multiple of the 128-slot FFT block). *)
  let ck1, first1, last1 = capture_hook 200 in
  let armed = run_mux_fft ~checkpoint:ck1 () in
  if not (Mux.equal_report base armed) then
    Alcotest.fail "checkpoint hook perturbed the fft-kernel run";
  let resumed = run_mux_fft ~resume:(reader (Option.get !first1)) () in
  if not (Mux.equal_report base resumed) then
    Alcotest.fail "fft resume from early snapshot differs from uninterrupted run";
  let resumed = run_mux_fft ~resume:(reader (Option.get !last1)) () in
  if not (Mux.equal_report base resumed) then
    Alcotest.fail "fft resume from late snapshot differs from uninterrupted run";
  let p = Pool.create ~domains:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let ck4, first4, _ = capture_hook 200 in
  let armed4 = run_mux_fft ~pool:p ~shards:4 ~checkpoint:ck4 () in
  if not (Mux.equal_report base armed4) then
    Alcotest.fail "sharded fft-kernel armed run differs";
  Alcotest.(check bool) "fft snapshot bytes shard-invariant" true
    (String.equal (Option.get !first1) (Option.get !first4));
  (* Cross-layout: shards=1 snapshot resumed at shards=4 and vice
     versa — the FFT delay line is rebuilt from the saved window, so
     no layout leaks into the stream. *)
  let resumed = run_mux_fft ~pool:p ~shards:4 ~resume:(reader (Option.get !first1)) () in
  if not (Mux.equal_report base resumed) then
    Alcotest.fail "fft resume at shards=4 of a shards=1 snapshot differs";
  let resumed = run_mux_fft ~resume:(reader (Option.get !first4)) () in
  if not (Mux.equal_report base resumed) then
    Alcotest.fail "fft resume at shards=1 of a shards=4 snapshot differs"

let test_mux_checkpoint_refusals () =
  raises_invalid "interval < 1" (fun () ->
      let ck = { Mux.every = 0; save = (fun ~slot:_ _ -> ()) } in
      run_mux ~checkpoint:ck ());
  (* A probe forces the reference engine, which cannot snapshot. *)
  raises_invalid "probe + checkpoint" (fun () ->
      let ck, _, _ = capture_hook 256 in
      let srcs = mux_sources () in
      Mux.run ~probe:(fun _ _ -> ()) ~checkpoint:ck ~service:2.2 ~slots:64 srcs);
  (* Importance-sampling sources carry state outside the snapshot. *)
  raises_invalid ~contains:"checkpoint" "twisted source refused" (fun () ->
      let m = Lazy.force small_model in
      let tw =
        Source.of_model_twisted ~order:32 ~shift:(fun _ -> 0.1) m (Rng.create ~seed:5)
      in
      let ck, _, _ = capture_hook 64 in
      Mux.run ~checkpoint:ck ~service:2.2 ~slots:128 [| tw |]);
  (* Construction drift between snapshot and resume must refuse, not
     silently diverge. *)
  let ck, first, _ = capture_hook 256 in
  ignore (run_mux ~checkpoint:ck () : Mux.report);
  raises_corrupt ~contains:"service" "service mismatch on resume" (fun () ->
      run_mux ~service:2.3 ~resume:(reader (Option.get !first)) ())

let prop_mux_snapshot_resume =
  QCheck.Test.make ~name:"mux snapshot -> restore -> bitwise-equal report" ~count:15
    QCheck.(triple (int_range 1 1000) (int_range 220 1200) (int_range 16 500))
    (fun (seed, slots, every) ->
      QCheck.assume (every < slots);
      let mk () =
        Array.init 3 (fun i ->
            Source.of_array ~name:(Printf.sprintf "q%d" i) ~cycle:true
              (Array.init
                 (60 + ((seed + i) mod 41))
                 (fun t -> abs_float (sin (float_of_int ((t + 1) * (i + seed + 2)))))))
      in
      let run ?checkpoint ?resume () =
        Mux.run ?checkpoint ?resume ~buffer:4.0 ~service:1.7 ~slots (mk ())
      in
      let base = run () in
      let captured = ref None in
      let ck =
        {
          Mux.every;
          save = (fun ~slot:_ fill -> if !captured = None then captured := Some (snap fill));
        }
      in
      let armed = run ~checkpoint:ck () in
      match !captured with
      | None -> QCheck.Test.fail_report "no snapshot fired"
      | Some s ->
        Mux.equal_report base armed && Mux.equal_report base (run ~resume:(reader s) ()))

(* ------------------------------------------------------------------ *)
(* ABR: trajectory, client and fleet codecs                             *)
(* ------------------------------------------------------------------ *)

let test_trajectory_roundtrip () =
  let c = Trajectory.create ~slots:5 ~sources:2 ~slot_s:0.25 in
  for t = 0 to 2 do
    Trajectory.sink c ~slot:t
      ~served:[| float_of_int (t + 1); 0.5 *. float_of_int t |]
      ~delays:[| 0.1; float_of_int t |]
  done;
  let s = snap (Trajectory.save c) in
  let d = Trajectory.create ~slots:5 ~sources:2 ~slot_s:0.25 in
  Trajectory.restore d (reader s);
  Alcotest.(check int) "filled" c.Trajectory.filled d.Trajectory.filled;
  for i = 0 to 1 do
    for t = 0 to 2 do
      check_bits
        (Printf.sprintf "served %d/%d" i t)
        c.Trajectory.served.(i).(t)
        d.Trajectory.served.(i).(t);
      check_bits
        (Printf.sprintf "delays %d/%d" i t)
        c.Trajectory.delays.(i).(t)
        d.Trajectory.delays.(i).(t)
    done
  done;
  raises_corrupt "slots mismatch" (fun () ->
      Trajectory.restore (Trajectory.create ~slots:4 ~sources:2 ~slot_s:0.25) (reader s));
  raises_corrupt "slot_s mismatch" (fun () ->
      Trajectory.restore (Trajectory.create ~slots:5 ~sources:2 ~slot_s:0.5) (reader s))

let flat_trace ?(frames = 360) ?(bytes = 1000.0) () =
  Trace.make ~name:"flat" ~fps:30.0 ~gop:(Gop.of_string "I") (Array.make frames bytes)

let abr_fixture () =
  let ladder = Ladder.of_trace ~levels:[ 0.5; 1.0; 2.0 ] ~chunk_frames:30 (flat_trace ()) in
  let bandwidth =
    Array.init 400 (fun t -> 20_000.0 +. (15_000.0 *. sin (float_of_int t /. 7.0)))
  in
  let config = { Client.default with chunks = 40 } in
  (ladder, bandwidth, config)

let check_result_eq msg (a : Client.result) (b : Client.result) =
  Alcotest.(check string) (msg ^ ": policy") a.Client.policy b.Client.policy;
  Alcotest.(check int) (msg ^ ": chunks") a.Client.chunks b.Client.chunks;
  Alcotest.(check int) (msg ^ ": rebuffer events") a.Client.rebuffer_events
    b.Client.rebuffer_events;
  Alcotest.(check int) (msg ^ ": switches") a.Client.switches b.Client.switches;
  List.iter
    (fun (field, x, y) -> check_bits (msg ^ ": " ^ field) x y)
    [
      ("startup_s", a.Client.startup_s, b.Client.startup_s);
      ("rebuffer_s", a.Client.rebuffer_s, b.Client.rebuffer_s);
      ("rebuffer_ratio", a.Client.rebuffer_ratio, b.Client.rebuffer_ratio);
      ("mean_bitrate_mbps", a.Client.mean_bitrate_mbps, b.Client.mean_bitrate_mbps);
      ("mean_level", a.Client.mean_level, b.Client.mean_level);
      ("qoe", a.Client.qoe, b.Client.qoe);
      ("qoe_bitrate", a.Client.qoe_bitrate, b.Client.qoe_bitrate);
      ("qoe_rebuffer", a.Client.qoe_rebuffer, b.Client.qoe_rebuffer);
      ("qoe_switch", a.Client.qoe_switch, b.Client.qoe_switch);
    ]

let test_client_split_resume () =
  let ladder, bandwidth, config = abr_fixture () in
  let policy = Policy.bba () in
  let run_full () =
    Client.run ~config ~policy ~ladder ~bandwidth ~slot_s:0.5 ~start:3 ()
  in
  let full = run_full () in
  (* Stream 17 chunks, snapshot the client state, restore into a
     fresh state and finish: the result must be bitwise the
     uninterrupted one's. *)
  let st = Client.make_state ~config ~start:3 () in
  ignore
    (Client.run ~config ~policy ~ladder ~bandwidth ~slot_s:0.5 ~start:3 ~state:st
       ~stop_after:17 ()
      : Client.result);
  let s = snap (Client.save_state st) in
  let st2 = Client.make_state ~config ~start:0 () in
  Client.restore_state st2 (reader s);
  let resumed =
    Client.run ~config ~policy ~ladder ~bandwidth ~slot_s:0.5 ~start:0 ~state:st2 ()
  in
  check_result_eq "client resume" full resumed;
  (* Result codec round-trip. *)
  let back = Client.read_result (reader (snap (Client.save_result full))) in
  check_result_eq "result codec" full back;
  (* stop_after outside [next chunk, chunks] must refuse. *)
  raises_invalid "stop_after out of range" (fun () ->
      Client.run ~config ~policy ~ladder ~bandwidth ~slot_s:0.5 ~start:0
        ~stop_after:(config.Client.chunks + 1) ())

let summary_eq (a : Fleet.summary) (b : Fleet.summary) =
  float_eq a.Fleet.mean b.Fleet.mean
  && float_eq a.Fleet.std b.Fleet.std
  && float_eq a.Fleet.min b.Fleet.min
  && float_eq a.Fleet.max b.Fleet.max
  && float_eq a.Fleet.q10 b.Fleet.q10
  && float_eq a.Fleet.q50 b.Fleet.q50
  && float_eq a.Fleet.q90 b.Fleet.q90

let fleet_report_eq (a : Fleet.report) (b : Fleet.report) =
  a.Fleet.clients = b.Fleet.clients
  && a.Fleet.policy = b.Fleet.policy
  && a.Fleet.chunks = b.Fleet.chunks
  && summary_eq a.Fleet.qoe b.Fleet.qoe
  && summary_eq a.Fleet.rebuffer_ratio b.Fleet.rebuffer_ratio
  && summary_eq a.Fleet.bitrate_mbps b.Fleet.bitrate_mbps
  && summary_eq a.Fleet.startup_s b.Fleet.startup_s
  && float_eq a.Fleet.rebuffer_s_total b.Fleet.rebuffer_s_total
  && float_eq a.Fleet.zero_rebuffer_fraction b.Fleet.zero_rebuffer_fraction
  && float_eq a.Fleet.mean_level b.Fleet.mean_level
  && float_eq a.Fleet.mean_switches b.Fleet.mean_switches

let test_fleet_resume_identity () =
  let ladder, bandwidth, config = abr_fixture () in
  let capture = Trajectory.create ~slots:400 ~sources:2 ~slot_s:0.5 in
  for t = 0 to 399 do
    Trajectory.sink capture ~slot:t
      ~served:[| bandwidth.(t); bandwidth.((t + 137) mod 400) |]
      ~delays:[| 0.0; 1.0 |]
  done;
  let run ?pool ?checkpoint ?resume () =
    Fleet.run ?pool ~rng:(Rng.create ~seed:71) ~clients:10 ~policy:(Policy.rate ())
      ~ladder ~trajectory:capture ~config ?checkpoint ?resume ()
  in
  let base_report, base_results = run () in
  (* The pooled fan-out must agree with the sequential lane. *)
  let p = Pool.create ~domains:4 in
  let pooled_report, _ =
    Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> run ~pool:p ())
  in
  if not (fleet_report_eq base_report pooled_report) then
    Alcotest.fail "pooled fleet differs from sequential";
  (* Checkpoint every 3 clients, keep the last prefix, resume. *)
  let captured = ref None in
  let ck =
    { Fleet.every = 3; save = (fun ~clients_done:_ fill -> captured := Some (snap fill)) }
  in
  let armed_report, armed_results = run ~checkpoint:ck () in
  if not (fleet_report_eq base_report armed_report) then
    Alcotest.fail "checkpoint lane differs from default lane";
  Array.iteri
    (fun j r -> check_result_eq (Printf.sprintf "armed client %d" j) base_results.(j) r)
    armed_results;
  let resumed_report, resumed_results =
    run ~resume:(reader (Option.get !captured)) ()
  in
  if not (fleet_report_eq base_report resumed_report) then
    Alcotest.fail "resumed fleet differs from uninterrupted";
  Array.iteri
    (fun j r -> check_result_eq (Printf.sprintf "resumed client %d" j) base_results.(j) r)
    resumed_results;
  (* Policy drift between snapshot and resume must refuse. *)
  raises_corrupt "policy mismatch" (fun () ->
      Fleet.run ~rng:(Rng.create ~seed:71) ~clients:10 ~policy:(Policy.bba ()) ~ladder
        ~trajectory:capture ~config ~resume:(reader (Option.get !captured)) ())

(* ------------------------------------------------------------------ *)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_source_snapshot_continuation; prop_mux_snapshot_resume ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_checkpoint"
    [
      ( "container",
        [
          tc "primitive codec round-trip" test_codec_roundtrip;
          tc "reader refusals" test_reader_refusals;
          tc "framing refusals" test_container_refusals;
          tc "file round-trip + atomicity" test_file_roundtrip;
        ] );
      ( "codecs",
        [
          tc "rng (mid polar cache)" test_rng_roundtrip;
          tc "welford / vt / p2" test_online_roundtrips;
          tc "hosking block" test_hosking_block_roundtrip;
          tc "hosking block (fft kernel)" test_hosking_block_fft_roundtrip;
        ] );
      ( "sources",
        [
          tc "every backend round-trips" test_source_roundtrips;
          tc "fault-wrapped round-trips" test_fault_wrapped_roundtrip;
          tc "refusals" test_source_refusals;
        ] );
      ( "gates",
        [
          tc "paxson clipping gate" test_paxson_clipping_gate;
          tc "fault-spec parser boundaries" test_fault_parse_boundaries;
        ] );
      ( "mux",
        [
          tc "resume == uninterrupted" test_mux_resume_identity;
          tc "shard/domain invariance" test_mux_resume_shard_and_domain_invariant;
          tc "fft kernel resume == uninterrupted" test_mux_fft_resume_identity;
          tc "refusals" test_mux_checkpoint_refusals;
        ] );
      ( "abr",
        [
          tc "trajectory round-trip" test_trajectory_roundtrip;
          tc "client split resume" test_client_split_resume;
          tc "fleet resume identity" test_fleet_resume_identity;
        ] );
      ("properties", qcheck_cases);
    ]

(* Tests for the adaptive-bitrate streaming subsystem: trajectory
   capture, bitrate ladders, adaptation policies, the chunked client
   simulation, and the pooled fleet driver. *)

module Rng = Ss_stats.Rng
module D = Ss_stats.Descriptive
module Gop = Ss_video.Gop
module Trace = Ss_video.Trace
module Scene = Ss_video.Scene_source
module Pool = Ss_parallel.Pool
module Trajectory = Ss_abr.Trajectory
module Ladder = Ss_abr.Ladder
module Policy = Ss_abr.Policy
module Client = Ss_abr.Client
module Fleet = Ss_abr.Fleet

let close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

let bits = Int64.bits_of_float

(* A constant-size intra-only trace: every ladder chunk has the same
   byte count, so client arithmetic is hand-checkable. *)
let flat_trace ?(frames = 300) ?(bytes = 1000.0) () =
  Trace.make ~name:"flat" ~fps:30.0 ~gop:(Gop.of_string "I")
    (Array.make frames bytes)

(* ------------------------------------------------------------------ *)
(* Trajectory capture                                                   *)
(* ------------------------------------------------------------------ *)

let test_trajectory_sink_transposes () =
  let c = Trajectory.create ~slots:3 ~sources:2 ~slot_s:0.5 in
  Alcotest.(check int) "starts empty" 0 c.Trajectory.filled;
  for t = 0 to 2 do
    let served = [| float_of_int (10 * (t + 1)); float_of_int t |] in
    let delays = [| 0.25 *. float_of_int t; 1.0 |] in
    Trajectory.sink c ~slot:t ~served ~delays
  done;
  Alcotest.(check int) "filled" 3 c.Trajectory.filled;
  let bw0 = Trajectory.bandwidth c 0 and bw1 = Trajectory.bandwidth c 1 in
  close "source 0 slot 1" 20.0 bw0.(1);
  close "source 1 slot 2" 2.0 bw1.(2);
  close "delay transpose" 0.5 (Trajectory.delay c 0).(2);
  close "delay constant" 1.0 (Trajectory.delay c 1).(0)

let test_trajectory_invalid () =
  raises_invalid "zero slots" (fun () ->
      Trajectory.create ~slots:0 ~sources:1 ~slot_s:0.1);
  raises_invalid "zero sources" (fun () ->
      Trajectory.create ~slots:4 ~sources:0 ~slot_s:0.1);
  raises_invalid "bad slot_s" (fun () ->
      Trajectory.create ~slots:4 ~sources:1 ~slot_s:0.0);
  let c = Trajectory.create ~slots:2 ~sources:2 ~slot_s:0.1 in
  raises_invalid "slot out of range" (fun () ->
      Trajectory.sink c ~slot:2 ~served:[| 0.0; 0.0 |] ~delays:[| 0.0; 0.0 |]);
  raises_invalid "source mismatch" (fun () ->
      Trajectory.sink c ~slot:0 ~served:[| 0.0 |] ~delays:[| 0.0 |]);
  raises_invalid "bandwidth range" (fun () -> Trajectory.bandwidth c 2);
  raises_invalid "delay range" (fun () -> Trajectory.delay c (-1))

(* ------------------------------------------------------------------ *)
(* Ladder                                                               *)
(* ------------------------------------------------------------------ *)

let test_ladder_of_trace_scaling () =
  let tr = flat_trace () in
  let l = Ladder.of_trace ~levels:[ 0.5; 1.0; 2.0 ] ~chunk_frames:30 tr in
  Alcotest.(check int) "chunks" 10 l.Ladder.chunks;
  close "chunk duration" 1.0 l.Ladder.chunk_s;
  (* 30 frames of 1000 B at level 1.0 = 30 kB per chunk; other levels
     exactly proportional. *)
  close "base chunk bytes" 30_000.0 l.Ladder.sizes.(1).(0);
  close "low chunk bytes" 15_000.0 l.Ladder.sizes.(0).(7);
  close "high chunk bytes" 60_000.0 l.Ladder.sizes.(2).(9);
  close "base rate B/s" 30_000.0 l.Ladder.rates.(1);
  close "rate proportional" 2.0 (l.Ladder.rates.(2) /. l.Ladder.rates.(1))

let test_ladder_of_traces () =
  let lo = flat_trace ~bytes:500.0 () and hi = flat_trace ~bytes:1500.0 () in
  let l = Ladder.of_traces ~chunk_frames:30 [ lo; hi ] in
  Alcotest.(check int) "levels" 2 (Array.length l.Ladder.rates);
  close "low rate" 15_000.0 l.Ladder.rates.(0);
  close "high rate" 45_000.0 l.Ladder.rates.(1);
  close "level factor" 3.0 l.Ladder.levels.(1)

let test_ladder_invalid () =
  let tr = flat_trace () in
  raises_invalid "levels not ascending" (fun () ->
      Ladder.of_trace ~levels:[ 1.0; 0.5 ] ~chunk_frames:30 tr);
  raises_invalid "non-positive level" (fun () ->
      Ladder.of_trace ~levels:[ 0.0; 1.0 ] ~chunk_frames:30 tr);
  raises_invalid "chunk_frames = 0" (fun () ->
      Ladder.of_trace ~chunk_frames:0 tr);
  raises_invalid "trace shorter than a chunk" (fun () ->
      Ladder.of_trace ~chunk_frames:301 tr);
  raises_invalid "single rendition" (fun () ->
      Ladder.of_traces ~chunk_frames:30 [ tr ]);
  raises_invalid "rates not ascending" (fun () ->
      Ladder.of_traces ~chunk_frames:30 [ flat_trace ~bytes:900.0 (); tr; tr ])

let test_ladder_level_boundary () =
  (* A one-entry ladder has nothing to adapt between, and of_traces
     already refuses a single rendition — of_trace must agree instead
     of silently building a degenerate ladder. *)
  let tr = flat_trace () in
  raises_invalid "empty levels" (fun () ->
      Ladder.of_trace ~levels:[] ~chunk_frames:30 tr);
  raises_invalid "single level" (fun () ->
      Ladder.of_trace ~levels:[ 1.0 ] ~chunk_frames:30 tr);
  (* Two levels is the smallest real ladder, on both constructors. *)
  let l = Ladder.of_trace ~levels:[ 0.5; 1.0 ] ~chunk_frames:30 tr in
  Alcotest.(check int) "of_trace two levels" 2 (Array.length l.Ladder.rates);
  let l' =
    Ladder.of_traces ~chunk_frames:30 [ flat_trace ~bytes:500.0 (); tr ]
  in
  Alcotest.(check int) "of_traces two renditions" 2 (Array.length l'.Ladder.rates)

(* ------------------------------------------------------------------ *)
(* Policies                                                             *)
(* ------------------------------------------------------------------ *)

let obs ?(buffer_s = 0.0) ?(throughput = 0.0) ?(last = -1) () =
  {
    Policy.chunk_index = 5;
    buffer_s;
    last_level = last;
    throughput_Bps = throughput;
    rates = [| 1000.0; 2000.0; 4000.0; 8000.0 |];
    max_buffer_s = 30.0;
  }

let test_policy_bba_thresholds () =
  let p = Policy.bba ~reservoir_s:5.0 ~cushion_s:10.0 () in
  Alcotest.(check int) "empty buffer -> floor" 0 (p.Policy.choose (obs ()));
  Alcotest.(check int) "reservoir edge -> floor" 0
    (p.Policy.choose (obs ~buffer_s:5.0 ()));
  Alcotest.(check int) "above cushion -> ceiling" 3
    (p.Policy.choose (obs ~buffer_s:15.0 ()));
  (* Mid-cushion: target rate = rmin + (b-5)/10 * (rmax-rmin); at
     b = 7.5 that is 1000 + 0.25*7000 = 2750 -> highest fitting is
     level 1 (2000 B/s). *)
  Alcotest.(check int) "mid-cushion maps to rate axis" 1
    (p.Policy.choose (obs ~buffer_s:7.5 ()));
  (* Monotone in buffer occupancy. *)
  let prev = ref 0 in
  for b = 0 to 60 do
    let l = p.Policy.choose (obs ~buffer_s:(0.25 *. float_of_int b) ()) in
    if l < !prev then Alcotest.failf "BBA not monotone at buffer %d" b;
    prev := l
  done;
  raises_invalid "bad reservoir" (fun () -> Policy.bba ~reservoir_s:0.0 ());
  raises_invalid "bad cushion" (fun () -> Policy.bba ~cushion_s:(-1.0) ())

let test_policy_rate_fitting () =
  let p = Policy.rate ~safety:0.85 () in
  Alcotest.(check int) "no estimate -> floor" 0 (p.Policy.choose (obs ()));
  (* 0.85 * 5000 = 4250: fits level 2 (4000) but not 3. *)
  Alcotest.(check int) "highest fitting" 2
    (p.Policy.choose (obs ~throughput:5000.0 ()));
  Alcotest.(check int) "nothing fits -> floor" 0
    (p.Policy.choose (obs ~throughput:900.0 ()));
  Alcotest.(check int) "everything fits -> ceiling" 3
    (p.Policy.choose (obs ~throughput:1e7 ()));
  raises_invalid "safety 0" (fun () -> Policy.rate ~safety:0.0 ());
  raises_invalid "safety > 1" (fun () -> Policy.rate ~safety:1.5 ())

let test_policy_fixed () =
  let p = Policy.fixed 2 in
  Alcotest.(check int) "fixed level" 2 (p.Policy.choose (obs ()));
  raises_invalid "negative fixed" (fun () -> ignore (Policy.fixed (-1)))

(* ------------------------------------------------------------------ *)
(* Client                                                               *)
(* ------------------------------------------------------------------ *)

(* One source with constant bandwidth [bw] bytes/slot and zero queue
   delay. *)
let flat_capture ?(slots = 4000) ?(slot_s = 0.1) bw =
  let c = Trajectory.create ~slots ~sources:1 ~slot_s in
  for t = 0 to slots - 1 do
    Trajectory.sink c ~slot:t ~served:[| bw |] ~delays:[| 0.0 |]
  done;
  c

let small_ladder () =
  Ladder.of_trace ~levels:[ 0.5; 1.0; 2.0 ] ~chunk_frames:30 (flat_trace ())

let test_client_constant_bandwidth_no_stall () =
  (* Level-0 chunks are 15 kB; at 10 kB/slot (0.1 s/slot = 100 kB/s)
     each chunk downloads in 0.15 s against 1 s of playback, so only
     the first chunk can stall (startup). *)
  let ladder = small_ladder () in
  let cap = flat_capture 10_000.0 in
  let config = { Client.default with chunks = 40; rtt_s = 0.05 } in
  let r =
    Client.run ~config ~policy:(Policy.fixed 0) ~ladder
      ~bandwidth:(Trajectory.bandwidth cap 0) ~slot_s:cap.Trajectory.slot_s
      ~start:0 ()
  in
  close "startup = rtt + transfer" (0.05 +. 0.15) r.Client.startup_s;
  close "no rebuffering" 0.0 r.Client.rebuffer_s;
  Alcotest.(check int) "no rebuffer events" 0 r.Client.rebuffer_events;
  Alcotest.(check int) "no switches" 0 r.Client.switches;
  close "pinned mean level" 0.0 r.Client.mean_level;
  (* Level-0 nominal rate is 15 kB/s = 0.12 Mbps. *)
  close "mean bitrate" 0.12 r.Client.mean_bitrate_mbps;
  close "qoe = bitrate term" r.Client.qoe_bitrate r.Client.qoe;
  close "ratio denominator" 0.0 r.Client.rebuffer_ratio ~eps:1e-12

let test_client_slow_link_stalls () =
  (* At 2 kB/slot = 20 kB/s a 30 kB level-1 chunk takes 1.5 s per 1 s
     of video: every post-startup chunk stalls 0.5 s minus nothing —
     deterministic arithmetic, checked exactly. *)
  let ladder = small_ladder () in
  let cap = flat_capture 2_000.0 in
  let config = { Client.default with chunks = 20; rtt_s = 0.0 } in
  let r =
    Client.run ~config ~policy:(Policy.fixed 1) ~ladder
      ~bandwidth:(Trajectory.bandwidth cap 0) ~slot_s:cap.Trajectory.slot_s
      ~start:0 ()
  in
  close "startup" 1.5 r.Client.startup_s;
  (* Chunks 1..19: buffer is 1 s when the download starts, dl = 1.5 s,
     so each stalls 0.5 s. *)
  close "total stall" (19.0 *. 0.5) r.Client.rebuffer_s ~eps:1e-6;
  Alcotest.(check int) "every chunk stalls" 19 r.Client.rebuffer_events;
  close "rebuffer ratio" (9.5 /. (20.0 +. 9.5 +. 1.5)) r.Client.rebuffer_ratio
    ~eps:1e-6;
  if r.Client.qoe >= r.Client.qoe_bitrate then
    Alcotest.fail "stall penalty missing from QoE"

let test_client_qoe_decomposition () =
  (* The aggregate QoE equals the reported decomposition; per-chunk
     normalization happens separately for each term, so compare with
     a tolerance rather than bitwise. *)
  let ladder = small_ladder () in
  let cap = flat_capture 3_500.0 in
  let r =
    Client.run
      ~config:{ Client.default with chunks = 60 }
      ~policy:(Policy.rate ()) ~ladder
      ~bandwidth:(Trajectory.bandwidth cap 0) ~slot_s:cap.Trajectory.slot_s
      ~start:7 ()
  in
  close "qoe decomposition" ~eps:1e-9
    (r.Client.qoe_bitrate -. r.Client.qoe_rebuffer -. r.Client.qoe_switch)
    r.Client.qoe

let test_client_delay_adds_latency () =
  (* A constant 2-slot virtual delay adds 0.2 s of latency to every
     request; with everything else flat the startup grows by exactly
     that. *)
  let ladder = small_ladder () in
  let slots = 4000 in
  let cap = Trajectory.create ~slots ~sources:1 ~slot_s:0.1 in
  for t = 0 to slots - 1 do
    Trajectory.sink cap ~slot:t ~served:[| 10_000.0 |] ~delays:[| 2.0 |]
  done;
  let config = { Client.default with chunks = 10; rtt_s = 0.05 } in
  let run delays =
    Client.run ~config ~policy:(Policy.fixed 0) ~ladder
      ~bandwidth:(Trajectory.bandwidth cap 0) ?delays ~slot_s:0.1 ~start:0 ()
  in
  let plain = run None in
  let delayed = run (Some (Trajectory.delay cap 0)) in
  close "delay adds to startup" (plain.Client.startup_s +. 0.2)
    delayed.Client.startup_s

let test_client_invalid () =
  let ladder = small_ladder () in
  let bw = Array.make 100 10_000.0 in
  let run ?config ?delays ?(bandwidth = bw) ?(start = 0) ?(slot_s = 0.1) () =
    Client.run ?config ~policy:(Policy.fixed 0) ~ladder ~bandwidth ?delays
      ~slot_s ~start ()
  in
  raises_invalid "empty trace" (fun () -> run ~bandwidth:[||] ());
  raises_invalid "zero-sum trace" (fun () ->
      run ~bandwidth:(Array.make 8 0.0) ());
  raises_invalid "start out of range" (fun () -> run ~start:100 ());
  raises_invalid "negative start" (fun () -> run ~start:(-1) ());
  raises_invalid "delays mismatch" (fun () ->
      run ~delays:(Array.make 99 0.0) ());
  raises_invalid "bad slot_s" (fun () -> run ~slot_s:0.0 ());
  raises_invalid "zero chunks" (fun () ->
      run ~config:{ Client.default with chunks = 0 } ());
  raises_invalid "bad window" (fun () ->
      run ~config:{ Client.default with throughput_window = 0 } ())

(* The bandwidth trace wraps: a client joining at the last slot must
   walk past the end and around without reading out of bounds or
   producing non-finite results, for any trace length and policy. *)
let prop_client_wraps_past_trace_end =
  QCheck.Test.make ~count:150 ~name:"client wraps past end of trace"
    QCheck.(
      triple
        (list_of_size (Gen.int_range 2 64) (int_range 1 20_000))
        (int_bound 2) (int_bound 2))
    (fun (cells, back, policy_idx) ->
      let bandwidth = Array.of_list (List.map float_of_int cells) in
      let len = Array.length bandwidth in
      (* Join at or just before the final slot, so nearly every chunk
         download crosses the wrap point. *)
      let start = len - 1 - min back (len - 1) in
      let delays = Array.init len (fun t -> float_of_int (t mod 3)) in
      let policy =
        match policy_idx with
        | 0 -> Policy.fixed 0
        | 1 -> Policy.rate ()
        | _ -> Policy.bba ()
      in
      let r =
        Client.run
          ~config:{ Client.default with chunks = 25 }
          ~policy ~ladder:(small_ladder ()) ~bandwidth ~delays ~slot_s:0.1
          ~start ()
      in
      Float.is_finite r.Client.qoe
      && Float.is_finite r.Client.startup_s
      && r.Client.startup_s >= 0.0
      && r.Client.rebuffer_s >= 0.0
      && r.Client.rebuffer_ratio >= 0.0
      && r.Client.rebuffer_ratio <= 1.0
      && r.Client.mean_level >= 0.0)

(* ------------------------------------------------------------------ *)
(* Fleet                                                                *)
(* ------------------------------------------------------------------ *)

let test_fleet_summarize_quantiles () =
  let s = Fleet.summarize (Array.init 10 (fun i -> float_of_int (i + 1))) in
  close "mean" 5.5 s.Fleet.mean;
  close "min" 1.0 s.Fleet.min;
  close "max" 10.0 s.Fleet.max;
  (* Exact type-7 quantiles of 1..10. *)
  close "median" 5.5 s.Fleet.q50;
  close "q10" 1.9 s.Fleet.q10;
  close "q90" 9.1 s.Fleet.q90;
  close "std" (D.std [| 1.0; 2.0; 3.0 |]) (Fleet.summarize [| 1.0; 2.0; 3.0 |]).Fleet.std;
  raises_invalid "empty" (fun () -> Fleet.summarize [||])

(* A 2-source capture with mild bandwidth variation so policies have
   something to react to. *)
let varied_capture slots =
  let c = Trajectory.create ~slots ~sources:2 ~slot_s:(1.0 /. 30.0) in
  for t = 0 to slots - 1 do
    let wave = 1.0 +. (0.5 *. sin (float_of_int t /. 40.0)) in
    let served = [| 1200.0 *. wave; 900.0 /. wave |] in
    let delays = [| 0.5 *. wave; 1.5 |] in
    Trajectory.sink c ~slot:t ~served ~delays
  done;
  c

let test_fleet_pool_bit_identical () =
  let cap = varied_capture 6000 in
  let ladder = small_ladder () in
  let config = { Client.default with chunks = 30 } in
  let run pool =
    Fleet.run ?pool ~rng:(Rng.create ~seed:97) ~clients:12
      ~policy:(Policy.bba ()) ~ladder ~trajectory:cap ~config ()
  in
  let _, seq = run None in
  let pool = Pool.create ~domains:3 in
  let _, par =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> run (Some pool))
  in
  Alcotest.(check int) "client count" (Array.length seq) (Array.length par);
  Array.iteri
    (fun j (a : Client.result) ->
      let b = par.(j) in
      let same l x y =
        if bits x <> bits y then
          Alcotest.failf "client %d: %s differs (%.17g vs %.17g)" j l x y
      in
      same "qoe" a.Client.qoe b.Client.qoe;
      same "rebuffer" a.Client.rebuffer_s b.Client.rebuffer_s;
      same "startup" a.Client.startup_s b.Client.startup_s;
      same "bitrate" a.Client.mean_bitrate_mbps b.Client.mean_bitrate_mbps;
      Alcotest.(check int)
        (Printf.sprintf "client %d switches" j)
        a.Client.switches b.Client.switches)
    seq

let test_fleet_report_consistency () =
  let cap = varied_capture 6000 in
  let ladder = small_ladder () in
  let report, results =
    Fleet.run ~rng:(Rng.create ~seed:5) ~clients:16 ~policy:(Policy.rate ())
      ~ladder ~trajectory:cap
      ~config:{ Client.default with chunks = 25 }
      ()
  in
  Alcotest.(check int) "clients" 16 report.Fleet.clients;
  Alcotest.(check string) "policy name" "rate" report.Fleet.policy;
  let qoes = Array.map (fun r -> r.Client.qoe) results in
  close "qoe mean matches results" (D.mean qoes) report.Fleet.qoe.Fleet.mean;
  let stalls = Array.fold_left (fun a r -> a +. r.Client.rebuffer_s) 0.0 results in
  close "total stall matches" stalls report.Fleet.rebuffer_s_total;
  let zero =
    Array.fold_left
      (fun a r -> if r.Client.rebuffer_s = 0.0 then a + 1 else a)
      0 results
  in
  close "zero-stall fraction" (float_of_int zero /. 16.0)
    report.Fleet.zero_rebuffer_fraction;
  if report.Fleet.qoe.Fleet.min > report.Fleet.qoe.Fleet.q50 then
    Alcotest.fail "summary min above median"

let test_fleet_invalid () =
  let cap = varied_capture 100 in
  let ladder = small_ladder () in
  raises_invalid "zero clients" (fun () ->
      Fleet.run ~rng:(Rng.create ~seed:1) ~clients:0 ~policy:(Policy.fixed 0)
        ~ladder ~trajectory:cap ());
  let unfilled = Trajectory.create ~slots:100 ~sources:1 ~slot_s:0.1 in
  raises_invalid "unfilled trajectory" (fun () ->
      Fleet.run ~rng:(Rng.create ~seed:1) ~clients:4 ~policy:(Policy.fixed 0)
        ~ladder ~trajectory:unfilled ())

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_abr"
    [
      ( "trajectory",
        [
          tc "sink transposes" test_trajectory_sink_transposes;
          tc "invalid" test_trajectory_invalid;
        ] );
      ( "ladder",
        [
          tc "of_trace scaling" test_ladder_of_trace_scaling;
          tc "of_traces" test_ladder_of_traces;
          tc "invalid" test_ladder_invalid;
          tc "level count boundary" test_ladder_level_boundary;
        ] );
      ( "policy",
        [
          tc "BBA thresholds" test_policy_bba_thresholds;
          tc "rate fitting" test_policy_rate_fitting;
          tc "fixed" test_policy_fixed;
        ] );
      ( "client",
        [
          tc "constant bandwidth, no stall" test_client_constant_bandwidth_no_stall;
          tc "slow link stalls" test_client_slow_link_stalls;
          tc "QoE decomposition" test_client_qoe_decomposition;
          tc "virtual delay adds latency" test_client_delay_adds_latency;
          tc "invalid" test_client_invalid;
          QCheck_alcotest.to_alcotest prop_client_wraps_past_trace_end;
        ] );
      ( "fleet",
        [
          tc "summarize quantiles" test_fleet_summarize_quantiles;
          tc "pool bit-identical" test_fleet_pool_bit_identical;
          tc "report consistency" test_fleet_report_consistency;
          tc "invalid" test_fleet_invalid;
        ] );
    ]

(* Tests for ss_video: frame types, GOP patterns, traces and their
   I/O, the scene-based synthetic source, the toy codec, and the
   composite I/B/P transform machinery. *)

module Rng = Ss_stats.Rng
module D = Ss_stats.Descriptive
module Frame = Ss_video.Frame
module Gop = Ss_video.Gop
module Trace = Ss_video.Trace
module Scene = Ss_video.Scene_source
module Toy = Ss_video.Toy_codec
module Composite = Ss_video.Composite
module Transform = Ss_fractal.Transform

let close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

(* ------------------------------------------------------------------ *)
(* Frame                                                                *)
(* ------------------------------------------------------------------ *)

let test_frame_char_roundtrip () =
  List.iter
    (fun k -> Alcotest.(check bool) "roundtrip" true (Frame.equal k (Frame.of_char (Frame.to_char k))))
    [ Frame.I; Frame.P; Frame.B ];
  raises_invalid "of_char x" (fun () -> Frame.of_char 'x');
  raises_invalid "of_char lowercase" (fun () -> Frame.of_char 'i')

let test_frame_equal () =
  Alcotest.(check bool) "I = I" true (Frame.equal Frame.I Frame.I);
  Alcotest.(check bool) "I <> P" false (Frame.equal Frame.I Frame.P);
  Alcotest.(check bool) "P <> B" false (Frame.equal Frame.P Frame.B)

(* ------------------------------------------------------------------ *)
(* Gop                                                                  *)
(* ------------------------------------------------------------------ *)

let test_gop_default_pattern () =
  Alcotest.(check string) "default" "IBBPBBPBBPBB" (Gop.to_string Gop.default);
  Alcotest.(check int) "length 12" 12 (Gop.length Gop.default);
  Alcotest.(check int) "i period 12" 12 (Gop.i_period Gop.default)

let test_gop_kind_at_cycles () =
  let g = Gop.default in
  Alcotest.(check char) "frame 0" 'I' (Frame.to_char (Gop.kind_at g 0));
  Alcotest.(check char) "frame 1" 'B' (Frame.to_char (Gop.kind_at g 1));
  Alcotest.(check char) "frame 3" 'P' (Frame.to_char (Gop.kind_at g 3));
  Alcotest.(check char) "frame 12 wraps to I" 'I' (Frame.to_char (Gop.kind_at g 12));
  Alcotest.(check char) "frame 27 = 27 mod 12 = 3 -> P" 'P' (Frame.to_char (Gop.kind_at g 27));
  raises_invalid "negative index" (fun () -> Gop.kind_at g (-1))

let test_gop_indices_of () =
  let g = Gop.default in
  Alcotest.(check (list int)) "I indices" [ 0; 12 ] (Gop.indices_of g Frame.I ~n:24);
  Alcotest.(check (list int)) "P indices in one gop" [ 3; 6; 9 ] (Gop.indices_of g Frame.P ~n:12);
  Alcotest.(check int) "B count over 24" 16 (List.length (Gop.indices_of g Frame.B ~n:24))

let test_gop_count_in_pattern () =
  let g = Gop.default in
  Alcotest.(check int) "I per gop" 1 (Gop.count_in_pattern g Frame.I);
  Alcotest.(check int) "P per gop" 3 (Gop.count_in_pattern g Frame.P);
  Alcotest.(check int) "B per gop" 8 (Gop.count_in_pattern g Frame.B)

let test_gop_intra_only () =
  let g = Gop.of_string "I" in
  Alcotest.(check int) "length 1" 1 (Gop.length g);
  for i = 0 to 20 do
    Alcotest.(check char) "all I" 'I' (Frame.to_char (Gop.kind_at g i))
  done;
  Alcotest.(check int) "no P" 0 (Gop.count_in_pattern g Frame.P)

let test_gop_invalid () =
  raises_invalid "empty" (fun () -> Gop.of_string "");
  raises_invalid "must start with I" (fun () -> Gop.of_string "BBI");
  raises_invalid "bad char" (fun () -> Gop.of_string "IXB")

(* ------------------------------------------------------------------ *)
(* Trace                                                                *)
(* ------------------------------------------------------------------ *)

let small_trace () =
  Trace.make ~name:"t" ~fps:30.0 ~gop:Gop.default
    (Array.init 24 (fun i -> float_of_int (100 + i)))

let test_trace_basics () =
  let t = small_trace () in
  Alcotest.(check int) "length" 24 (Trace.length t);
  Alcotest.(check char) "kind 0" 'I' (Frame.to_char (Trace.kind_at t 0))

let test_trace_of_kind () =
  let t = small_trace () in
  let i_sizes = Trace.of_kind t Frame.I in
  Alcotest.(check (list (float 1e-9))) "I sizes" [ 100.0; 112.0 ] (Array.to_list i_sizes);
  let p_sizes = Trace.of_kind t Frame.P in
  Alcotest.(check int) "P count" 6 (Array.length p_sizes);
  close "first P" 103.0 p_sizes.(0)

let test_trace_summary () =
  let t = small_trace () in
  let s = Trace.summarize t in
  Alcotest.(check int) "frames" 24 s.Trace.frames;
  close ~eps:1e-6 "duration" 0.8 s.Trace.duration_s;
  close "peak" 123.0 s.Trace.peak_bytes;
  close ~eps:1e-6 "mean rate" (s.Trace.mean_bytes *. 8.0 *. 30.0) s.Trace.mean_rate_bps;
  (* per-kind means are present for all three kinds *)
  Alcotest.(check int) "kinds" 3 (List.length s.Trace.mean_by_kind)

let test_trace_save_load_roundtrip () =
  let t = small_trace () in
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save t path;
      let t2 = Trace.load path in
      Alcotest.(check string) "name" "t" t2.Trace.name;
      close "fps" 30.0 t2.Trace.fps;
      Alcotest.(check string) "gop" "IBBPBBPBBPBB" (Gop.to_string t2.Trace.gop);
      Alcotest.(check int) "length" (Trace.length t) (Trace.length t2);
      Array.iteri
        (fun i v -> close (Printf.sprintf "size %d" i) t.Trace.sizes.(i) v)
        t2.Trace.sizes)

let test_trace_load_rejects_garbage () =
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# name bad\n12\nnot-a-number\n";
      close_out oc;
      match Trace.load path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected Failure on malformed line")

let with_temp_content content f =
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      f path)

let test_trace_load_failure_injection () =
  (* Negative size *)
  with_temp_content "100\n-5\n" (fun path ->
      match Trace.load path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "negative size must be rejected");
  (* Empty file -> empty trace is invalid *)
  with_temp_content "" (fun path ->
      match Trace.load path with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "empty trace must be rejected");
  (* NaN masquerading as a number *)
  with_temp_content "100\nnan\n200\n" (fun path ->
      match Trace.load path with
      | exception Failure _ -> ()
      | t ->
        (* float_of_string accepts nan; make/validation must not let a
           NaN size produce a negative-test bypass: nan >= 0.0 is
           false, so make rejects it. *)
        Array.iter
          (fun s -> if Float.is_nan s then Alcotest.fail "NaN size slipped through")
          t.Trace.sizes);
  (* Malformed metadata degrades to defaults rather than failing. *)
  with_temp_content "# fps banana\n# gop XYZ\n100\n200\n" (fun path ->
      let t = Trace.load path in
      Alcotest.(check int) "sizes parsed" 2 (Trace.length t);
      close "default fps" 30.0 t.Trace.fps;
      Alcotest.(check string) "default gop" "IBBPBBPBBPBB" (Gop.to_string t.Trace.gop))

let test_trace_load_windows_line_endings () =
  with_temp_content "# name crlf\r\n100\r\n200\r\n" (fun path ->
      (* String.trim strips \r; sizes must parse. *)
      let t = Trace.load path in
      Alcotest.(check int) "two frames" 2 (Trace.length t))

let test_trace_invalid () =
  raises_invalid "empty" (fun () -> Trace.make ~gop:Gop.default [||]);
  raises_invalid "negative size" (fun () -> Trace.make ~gop:Gop.default [| -1.0 |]);
  raises_invalid "bad fps" (fun () -> Trace.make ~fps:0.0 ~gop:Gop.default [| 1.0 |])

(* ------------------------------------------------------------------ *)
(* Scene source                                                         *)
(* ------------------------------------------------------------------ *)

let test_scene_deterministic () =
  let cfg = { Scene.default with frames = 2000 } in
  let a = Scene.generate cfg (Rng.create ~seed:1) in
  let b = Scene.generate cfg (Rng.create ~seed:1) in
  Array.iteri (fun i v -> close "reproducible" v b.Trace.sizes.(i)) a.Trace.sizes

let test_scene_respects_frames_and_gop () =
  let cfg = { Scene.default with frames = 1234 } in
  let t = Scene.generate cfg (Rng.create ~seed:2) in
  Alcotest.(check int) "frames" 1234 (Trace.length t);
  Alcotest.(check string) "gop" "IBBPBBPBBPBB" (Gop.to_string t.Trace.gop)

let test_scene_positive_sizes () =
  let cfg = { Scene.default with frames = 5000 } in
  let t = Scene.generate cfg (Rng.create ~seed:3) in
  Array.iter (fun s -> if s < 64.0 then Alcotest.failf "size below floor: %g" s) t.Trace.sizes

let test_scene_type_ordering () =
  (* Mean I > mean P > mean B by construction. *)
  let cfg = { Scene.default with frames = 24_000 } in
  let t = Scene.generate cfg (Rng.create ~seed:4) in
  let mean_of k = D.mean (Trace.of_kind t k) in
  let mi = mean_of Frame.I and mp = mean_of Frame.P and mb = mean_of Frame.B in
  if not (mi > mp && mp > mb) then
    Alcotest.failf "type means out of order: I=%.0f P=%.0f B=%.0f" mi mp mb;
  (* And the ratios should reflect the configured factors loosely. *)
  close ~eps:0.1 "P/I ratio" cfg.Scene.p_factor (mp /. mi);
  close ~eps:0.1 "B/I ratio" cfg.Scene.b_factor (mb /. mi)

let test_scene_mean_level () =
  let cfg = { Scene.default with frames = 60_000; gop = Gop.of_string "I" } in
  let t = Scene.generate cfg (Rng.create ~seed:5) in
  (* Mean should be within a factor ~2 of mean_i_bytes (heavy-tailed
     scene activity makes this loose). *)
  let m = D.mean t.Trace.sizes in
  if m < cfg.Scene.mean_i_bytes /. 2.0 || m > cfg.Scene.mean_i_bytes *. 2.0 then
    Alcotest.failf "mean %.0f too far from target %.0f" m cfg.Scene.mean_i_bytes

let test_scene_long_range_dependence () =
  (* The construction's raison d'etre: H estimates must be well above
     0.5 (white noise) on an intraframe trace. *)
  let cfg = { Scene.default with frames = 65_536; gop = Gop.of_string "I" } in
  let t = Scene.generate cfg (Rng.create ~seed:6) in
  let h = (Ss_fractal.Hurst.variance_time t.Trace.sizes).Ss_fractal.Hurst.h in
  if h < 0.65 then Alcotest.failf "scene source not LRD: H=%.3f" h

let test_scene_gop_periodicity_in_acf () =
  (* With I/B/P coding, the frame-level ACF must peak at multiples of
     the GOP period relative to its immediate neighbors. *)
  let cfg = { Scene.default with frames = 48_000 } in
  let t = Scene.generate cfg (Rng.create ~seed:7) in
  let r = D.acf t.Trace.sizes ~max_lag:26 in
  if not (r.(12) > r.(11) && r.(12) > r.(13)) then
    Alcotest.failf "no GOP peak at lag 12: %.3f %.3f %.3f" r.(11) r.(12) r.(13);
  if not (r.(24) > r.(23) && r.(24) > r.(25)) then Alcotest.fail "no GOP peak at lag 24"

let test_scene_validate () =
  raises_invalid "frames" (fun () -> Scene.validate { Scene.default with frames = 0 });
  raises_invalid "hurst low" (fun () -> Scene.validate { Scene.default with hurst = 0.5 });
  raises_invalid "hurst high" (fun () -> Scene.validate { Scene.default with hurst = 1.0 });
  raises_invalid "p_factor" (fun () -> Scene.validate { Scene.default with p_factor = 0.0 });
  raises_invalid "ar_coeff" (fun () -> Scene.validate { Scene.default with ar_coeff = 1.0 })

let test_scene_ladder_proportional () =
  (* Equal-seed rungs of a bitrate ladder are pointwise proportional:
     the generator is multiplicative in mean_i_bytes, so scaling it
     rescales every frame by the same factor (up to the generator's
     rounding/floor, hence the relative tolerance). *)
  let cfg = { Scene.default with frames = 4096 } in
  let rungs = Scene.ladder ~levels:[ 0.5; 1.0; 2.0 ] cfg in
  Alcotest.(check int) "three rungs" 3 (List.length rungs);
  let gen c = (Scene.generate c (Rng.create ~seed:21)).Trace.sizes in
  match List.map gen rungs with
  | [ lo; base; hi ] ->
    Array.iteri
      (fun i b ->
        let rel x y = abs_float ((x /. y) -. 1.0) in
        if rel lo.(i) (0.5 *. b) > 0.02 then
          Alcotest.failf "frame %d: low rung not 0.5x (%g vs %g)" i lo.(i) b;
        if rel hi.(i) (2.0 *. b) > 0.02 then
          Alcotest.failf "frame %d: high rung not 2x (%g vs %g)" i hi.(i) b)
      base
  | _ -> Alcotest.fail "unexpected ladder shape"

let test_scene_ladder_variance_ratio () =
  (* A rung at level L has mean scaled by L and variance by L^2 —
     the regression the ABR calibration relies on. *)
  let cfg = { Scene.default with frames = 16_384 } in
  match Scene.ladder ~levels:[ 1.0; 3.0 ] cfg with
  | [ c1; c3 ] ->
    let s1 = (Scene.generate c1 (Rng.create ~seed:22)).Trace.sizes in
    let s3 = (Scene.generate c3 (Rng.create ~seed:22)).Trace.sizes in
    close ~eps:0.02 "mean ratio" 3.0 (D.mean s3 /. D.mean s1);
    close ~eps:0.2 "variance ratio" 9.0 (D.variance s3 /. D.variance s1);
    (* The scaling must leave the correlation structure alone. *)
    let a1 = D.acf s1 ~max_lag:24 and a3 = D.acf s3 ~max_lag:24 in
    for k = 1 to 24 do
      close ~eps:0.03 (Printf.sprintf "acf lag %d" k) a1.(k) a3.(k)
    done
  | _ -> Alcotest.fail "unexpected ladder shape"

let test_scene_ladder_invalid () =
  raises_invalid "empty levels" (fun () -> Scene.ladder ~levels:[] Scene.default);
  raises_invalid "levels not ascending" (fun () ->
      Scene.ladder ~levels:[ 1.0; 0.5 ] Scene.default);
  raises_invalid "non-positive level" (fun () ->
      Scene.ladder ~levels:[ 0.0; 1.0 ] Scene.default);
  raises_invalid "invalid base config" (fun () ->
      Scene.ladder ~levels:[ 1.0 ] { Scene.default with frames = 0 })

(* ------------------------------------------------------------------ *)
(* Toy codec                                                            *)
(* ------------------------------------------------------------------ *)

let test_toy_codec_runs () =
  let t = Toy.encode Toy.default ~gop:Gop.default ~frames:48 (Rng.create ~seed:8) in
  Alcotest.(check int) "frames" 48 (Trace.length t);
  Array.iter (fun s -> if s <= 0.0 then Alcotest.fail "nonpositive frame size") t.Trace.sizes

let test_toy_codec_i_bigger_than_b () =
  (* Intraframes code the whole image; B frames only residuals. *)
  let t = Toy.encode Toy.default ~gop:Gop.default ~frames:120 (Rng.create ~seed:9) in
  let mi = D.mean (Trace.of_kind t Frame.I) in
  let mb = D.mean (Trace.of_kind t Frame.B) in
  if mi <= mb then Alcotest.failf "I frames (%.0f) not larger than B (%.0f)" mi mb

let test_toy_codec_quant_shrinks () =
  let small = Toy.encode { Toy.default with quant = 30.0 } ~gop:(Gop.of_string "I") ~frames:24 (Rng.create ~seed:10) in
  let large = Toy.encode { Toy.default with quant = 4.0 } ~gop:(Gop.of_string "I") ~frames:24 (Rng.create ~seed:10) in
  if D.mean small.Trace.sizes >= D.mean large.Trace.sizes then
    Alcotest.fail "coarser quantizer should shrink frames"

let test_toy_codec_deterministic () =
  let a = Toy.encode Toy.default ~gop:Gop.default ~frames:24 (Rng.create ~seed:11) in
  let b = Toy.encode Toy.default ~gop:Gop.default ~frames:24 (Rng.create ~seed:11) in
  Array.iteri (fun i v -> close "reproducible" v b.Trace.sizes.(i)) a.Trace.sizes

let test_toy_codec_invalid () =
  raises_invalid "frames 0" (fun () ->
      Toy.encode Toy.default ~gop:Gop.default ~frames:0 (Rng.create ~seed:1));
  raises_invalid "bad dims" (fun () ->
      Toy.encode { Toy.default with width = 30 } ~gop:Gop.default ~frames:1 (Rng.create ~seed:1));
  raises_invalid "bad quant" (fun () ->
      Toy.encode { Toy.default with quant = 0.0 } ~gop:Gop.default ~frames:1 (Rng.create ~seed:1))

(* ------------------------------------------------------------------ *)
(* Composite                                                            *)
(* ------------------------------------------------------------------ *)

let reference () =
  Scene.generate { Scene.default with frames = 24_000 } (Rng.create ~seed:12)

let test_composite_transforms_match_marginals () =
  let t = reference () in
  let c = Composite.of_trace t in
  let rng = Rng.create ~seed:13 in
  (* Push gaussians through h_I; quantiles must match the I-frame
     empirical distribution. *)
  let i_sizes = Trace.of_kind t Frame.I in
  let h_i = Composite.transform c Frame.I in
  let ys = Array.init 20_000 (fun _ -> Transform.apply1 h_i (Rng.gaussian rng)) in
  let want = D.median i_sizes and got = D.median ys in
  if abs_float (want -. got) /. want > 0.05 then
    Alcotest.failf "I median mismatch: %.0f vs %.0f" want got

let test_composite_apply_respects_gop () =
  let t = reference () in
  let c = Composite.of_trace t in
  let rng = Rng.create ~seed:14 in
  let x = Array.init 2400 (fun _ -> Rng.gaussian rng) in
  let synth = Composite.apply c x in
  Alcotest.(check int) "length" 2400 (Trace.length synth);
  (* Same background value at an I slot maps above the same value at a
     B slot (h_I dominates h_B pointwise for this source). *)
  let mi = D.mean (Trace.of_kind synth Frame.I) in
  let mb = D.mean (Trace.of_kind synth Frame.B) in
  if mi <= mb then Alcotest.fail "composite lost I/B ordering"

let test_composite_mean_attenuation_bounds () =
  let c = Composite.of_trace (reference ()) in
  let a = Composite.mean_attenuation c in
  if a <= 0.0 || a > 1.0 then Alcotest.failf "attenuation %g outside (0,1]" a

let test_composite_missing_kind () =
  (* An intra-only trace has no P/B transforms. *)
  let t =
    Scene.generate
      { Scene.default with frames = 2000; gop = Gop.of_string "I" }
      (Rng.create ~seed:15)
  in
  let c = Composite.of_trace t in
  raises_invalid "no P transform" (fun () -> ignore (Composite.transform c Frame.P));
  (* apply still works: every slot is I *)
  let synth = Composite.apply c [| 0.0; 1.0; -1.0 |] in
  Alcotest.(check int) "length" 3 (Trace.length synth)

let test_composite_i_acf_target () =
  let t = reference () in
  let c = Composite.of_trace t in
  let pts = Composite.i_acf_target c ~reference:t ~max_lag:50 in
  Alcotest.(check int) "50 points" 50 (List.length pts);
  (* I-frame ACF at small lags must be high for this source. *)
  (match pts with
  | (1, r1) :: _ -> if r1 < 0.2 then Alcotest.failf "I-frame r(1) suspiciously low: %g" r1
  | _ -> Alcotest.fail "first point should be lag 1");
  raises_invalid "too few I frames" (fun () ->
      ignore (Composite.i_acf_target c ~reference:t ~max_lag:100_000))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_video"
    [
      ("frame", [ tc "char roundtrip" test_frame_char_roundtrip; tc "equal" test_frame_equal ]);
      ( "gop",
        [
          tc "default pattern" test_gop_default_pattern;
          tc "kind_at cycles" test_gop_kind_at_cycles;
          tc "indices_of" test_gop_indices_of;
          tc "count in pattern" test_gop_count_in_pattern;
          tc "intra only" test_gop_intra_only;
          tc "invalid" test_gop_invalid;
        ] );
      ( "trace",
        [
          tc "basics" test_trace_basics;
          tc "of_kind" test_trace_of_kind;
          tc "summary" test_trace_summary;
          tc "save/load roundtrip" test_trace_save_load_roundtrip;
          tc "load rejects garbage" test_trace_load_rejects_garbage;
          tc "load failure injection" test_trace_load_failure_injection;
          tc "load CRLF" test_trace_load_windows_line_endings;
          tc "invalid" test_trace_invalid;
        ] );
      ( "scene-source",
        [
          tc "deterministic" test_scene_deterministic;
          tc "frames and gop" test_scene_respects_frames_and_gop;
          tc "positive sizes" test_scene_positive_sizes;
          tc "I > P > B" test_scene_type_ordering;
          tc "mean level" test_scene_mean_level;
          tc "long range dependence" test_scene_long_range_dependence;
          tc "GOP periodicity in ACF" test_scene_gop_periodicity_in_acf;
          tc "validate" test_scene_validate;
          tc "ladder proportional" test_scene_ladder_proportional;
          tc "ladder variance ratio" test_scene_ladder_variance_ratio;
          tc "ladder invalid" test_scene_ladder_invalid;
        ] );
      ( "toy-codec",
        [
          tc "runs" test_toy_codec_runs;
          tc "I bigger than B" test_toy_codec_i_bigger_than_b;
          tc "quantizer shrinks" test_toy_codec_quant_shrinks;
          tc "deterministic" test_toy_codec_deterministic;
          tc "invalid" test_toy_codec_invalid;
        ] );
      ( "composite",
        [
          tc "transforms match marginals" test_composite_transforms_match_marginals;
          tc "apply respects gop" test_composite_apply_respects_gop;
          tc "mean attenuation bounds" test_composite_mean_attenuation_bounds;
          tc "missing kind" test_composite_missing_kind;
          tc "I acf target" test_composite_i_acf_target;
        ] );
    ]

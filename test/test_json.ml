(* Tests for ss_json: the float formatter behind every BENCH_*.json
   cell and the strict RFC 8259 validator used by the CI artifact
   gate. The one bug class this guards: OCaml's %g/%f print
   non-finite floats as bare nan/inf tokens, which no strict JSON
   parser accepts. *)

module J = Ss_json

let check_ok name s =
  match J.validate s with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: expected valid, got %s" name msg

let check_bad name s =
  match J.validate s with
  | Ok () -> Alcotest.failf "%s: expected rejection" name
  | Error _ -> ()

let test_float_str_finite () =
  Alcotest.(check string) "default %.6g" "1.5" (J.float_str 1.5);
  Alcotest.(check string) "negative" "-0.25" (J.float_str (-0.25));
  Alcotest.(check string) "decimals" "0.3333" (J.float_str ~decimals:4 (1.0 /. 3.0));
  Alcotest.(check string) "zero decimals" "42" (J.float_str ~decimals:0 41.7);
  Alcotest.(check string) "tiny" "1e-30" (J.float_str 1e-30)

let test_float_str_nonfinite () =
  Alcotest.(check string) "nan" "null" (J.float_str nan);
  Alcotest.(check string) "inf" "null" (J.float_str infinity);
  Alcotest.(check string) "-inf" "null" (J.float_str neg_infinity);
  Alcotest.(check string) "nan with decimals" "null" (J.float_str ~decimals:3 nan)

let test_float_str_round_trips () =
  (* Whatever float_str emits must itself be a valid JSON value. *)
  List.iter
    (fun v -> check_ok (Printf.sprintf "float_str %h" v) (J.float_str v))
    [ 0.0; -0.0; 1.5; -273.15; 6.02e23; 1e-300; nan; infinity; neg_infinity ]

let test_validate_accepts () =
  List.iter
    (fun (name, s) -> check_ok name s)
    [
      ("object", {|{"a": 1, "b": [1.5, -2e-3, null, true, false], "c": {"d": "x"}}|});
      ("bare number", "-12.5e+3");
      ("bare string", {|"hi \n é"|});
      ("empty object", "{}");
      ("empty array", "[ ]");
      ("leading/trailing ws", "  [1, 2]\n");
      ("null cell", {|{"rel_halfwidth_95": null}|});
    ]

let test_validate_rejects () =
  List.iter
    (fun (name, s) -> check_bad name s)
    [
      ("bare nan token", {|{"p": nan}|});
      ("bare inf token", {|{"p": inf}|});
      ("Infinity token", "[Infinity]");
      ("NaN token", "[NaN]");
      ("trailing comma object", {|{"a": 1,}|});
      ("trailing comma array", "[1, 2,]");
      ("unquoted key", "{a: 1}");
      ("single quotes", "{'a': 1}");
      ("trailing garbage", "{} {}");
      ("unterminated string", {|"abc|});
      ("leading plus", "+1");
      ("bare dot", ".5");
      ("lone minus", "-");
      ("control char in string", "\"a\nb\"");
      ("empty input", "");
      ("truncated object", {|{"a": 1|});
    ]

let test_validate_file () =
  let path = Filename.temp_file "ss_json_test" ".json" in
  let oc = open_out path in
  output_string oc (Printf.sprintf "{\"v\": %s}\n" (J.float_str nan));
  close_out oc;
  (match J.validate_file path with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "round-trip file: %s" msg);
  let oc = open_out path in
  output_string oc "{\"v\": nan}\n";
  close_out oc;
  (match J.validate_file path with
  | Ok () -> Alcotest.fail "bare nan in file must be rejected"
  | Error _ -> ());
  Sys.remove path

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_json"
    [
      ( "float_str",
        [
          tc "finite" test_float_str_finite;
          tc "non-finite to null" test_float_str_nonfinite;
          tc "round trips validator" test_float_str_round_trips;
        ] );
      ( "validate",
        [
          tc "accepts strict JSON" test_validate_accepts;
          tc "rejects invalid" test_validate_rejects;
          tc "file round trip" test_validate_file;
        ] );
    ]

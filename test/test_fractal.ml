(* Tests for ss_fractal: autocorrelation models, Hosking and
   Davies-Harte generation, Hurst estimation, the marginal transform
   with its attenuation theory, and the composite ACF fit. *)

module Rng = Ss_stats.Rng
module D = Ss_stats.Descriptive
module Dist = Ss_stats.Dist
module Acf = Ss_fractal.Acf
module Hosking = Ss_fractal.Hosking
module DH = Ss_fractal.Davies_harte
module Paxson = Ss_fractal.Paxson
module Hurst = Ss_fractal.Hurst
module Transform = Ss_fractal.Transform
module Acf_fit = Ss_fractal.Acf_fit

let close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

(* ------------------------------------------------------------------ *)
(* Acf models                                                           *)
(* ------------------------------------------------------------------ *)

let test_acf_lag_zero_is_one () =
  List.iter
    (fun (name, acf) -> close (name ^ " r(0)") 1.0 (acf.Acf.r 0))
    [
      ("white", Acf.white_noise);
      ("exp", Acf.exponential ~lambda:0.1);
      ("power", Acf.power_law ~l:0.9 ~beta:0.3);
      ("fgn", Acf.fgn ~h:0.8);
      ("farima", Acf.farima ~d:0.3);
      ("composite", Acf.composite ~knee:60 ~lambda:0.005 ~l:1.5 ~beta:0.2);
    ]

let test_acf_white_noise () =
  let acf = Acf.white_noise in
  for k = 1 to 10 do
    close "white noise r(k)" 0.0 (acf.Acf.r k)
  done

let test_acf_fgn_values () =
  (* Closed form check: H = 0.5 gives white noise. *)
  let half = Acf.fgn ~h:0.5 in
  for k = 1 to 5 do
    close ~eps:1e-12 "fgn H=0.5 is white" 0.0 (half.Acf.r k)
  done;
  (* H = 0.75: r(1) = (2^1.5 - 2)/2 *)
  let acf = Acf.fgn ~h:0.75 in
  close ~eps:1e-12 "fgn r(1)" (((2.0 ** 1.5) -. 2.0) /. 2.0) (acf.Acf.r 1)

let test_acf_fgn_tail_exponent () =
  (* r(k) ~ H(2H-1) k^{2H-2}: the log-log slope between far lags must
     approach 2H - 2. *)
  let h = 0.9 in
  let acf = Acf.fgn ~h in
  let slope =
    log (acf.Acf.r 4000 /. acf.Acf.r 1000) /. log 4.0
  in
  close ~eps:1e-3 "fgn tail exponent" ((2.0 *. h) -. 2.0) slope

let test_acf_farima_recursion () =
  (* r(1) = d / (1 - d). *)
  let d = 0.3 in
  let acf = Acf.farima ~d in
  close ~eps:1e-12 "farima r(1)" (d /. (1.0 -. d)) (acf.Acf.r 1);
  (* r(2) = r(1) (1+d)/(2-d) *)
  close ~eps:1e-12 "farima r(2)" (d /. (1.0 -. d) *. (1.0 +. d) /. (2.0 -. d)) (acf.Acf.r 2)

let test_acf_farima_tail_exponent () =
  (* FARIMA(0,d,0) has H = d + 1/2, tail exponent 2H - 2 = 2d - 1. *)
  let d = 0.4 in
  let acf = Acf.farima ~d in
  let slope = log (acf.Acf.r 4000 /. acf.Acf.r 1000) /. log 4.0 in
  close ~eps:5e-3 "farima tail exponent" ((2.0 *. d) -. 1.0) slope

let test_acf_composite_pieces () =
  let acf = Acf.composite ~knee:60 ~lambda:0.00565 ~l:1.59 ~beta:0.2 in
  (* Below the knee: exponential. *)
  close ~eps:1e-12 "composite srd" (exp (-0.00565 *. 30.0)) (acf.Acf.r 30);
  (* At and beyond: power law (paper Eq 13 values). *)
  close ~eps:1e-12 "composite lrd" (1.59 *. (100.0 ** -0.2)) (acf.Acf.r 100);
  close ~eps:1e-12 "composite at knee" (1.59 *. (60.0 ** -0.2)) (acf.Acf.r 60)

let test_acf_composite_clamped () =
  (* l k^-beta > 1 for small k must clamp to 1, keeping a valid
     correlation. *)
  let acf = Acf.composite ~knee:2 ~lambda:0.1 ~l:1.59 ~beta:0.2 in
  close "clamp to 1" 1.0 (acf.Acf.r 2)

let test_acf_lag_rescale () =
  let base = Acf.exponential ~lambda:0.1 in
  let scaled = Acf.lag_rescale base ~period:12 in
  (* At multiples of the period, exact base values. *)
  close ~eps:1e-12 "rescale k=12" (base.Acf.r 1) (scaled.Acf.r 12);
  close ~eps:1e-12 "rescale k=24" (base.Acf.r 2) (scaled.Acf.r 24);
  (* In between: linear interpolation. *)
  let expected = ((base.Acf.r 0 *. 6.0) +. (base.Acf.r 1 *. 6.0)) /. 12.0 in
  close ~eps:1e-12 "rescale k=6 interpolates" expected (scaled.Acf.r 6)

let test_acf_hurst_recovery () =
  (match Acf.hurst (Acf.fgn ~h:0.85) with
  | Some h -> close ~eps:0.01 "hurst of fgn" 0.85 h
  | None -> Alcotest.fail "no hurst for fgn");
  (match Acf.hurst (Acf.power_law ~l:0.8 ~beta:0.3) with
  | Some h -> close ~eps:0.01 "hurst of power law" 0.85 h
  | None -> Alcotest.fail "no hurst for power law");
  (match Acf.hurst (Acf.exponential ~lambda:0.01) with
  | Some _ -> Alcotest.fail "exponential should have no hurst"
  | None -> ())

let test_acf_to_array () =
  let acf = Acf.exponential ~lambda:0.5 in
  let a = Acf.to_array acf ~n:4 in
  Alcotest.(check int) "length" 4 (Array.length a);
  close "a.(0)" 1.0 a.(0);
  close ~eps:1e-12 "a.(3)" (exp (-1.5)) a.(3)

let test_acf_invalid () =
  raises_invalid "fgn h=1" (fun () -> Acf.fgn ~h:1.0);
  raises_invalid "farima d=0.5" (fun () -> Acf.farima ~d:0.5);
  raises_invalid "power beta" (fun () -> Acf.power_law ~l:1.0 ~beta:1.0);
  raises_invalid "composite knee" (fun () -> Acf.composite ~knee:0 ~lambda:0.1 ~l:1.0 ~beta:0.2);
  raises_invalid "rescale period" (fun () -> Acf.lag_rescale Acf.white_noise ~period:0);
  raises_invalid "negative lag" (fun () -> (Acf.fgn ~h:0.7).Acf.r (-1))

(* ------------------------------------------------------------------ *)
(* Hosking generation                                                   *)
(* ------------------------------------------------------------------ *)

let sample_acf_of_gen gen ~n ~max_lag ~seed =
  let x = gen (Rng.create ~seed) n in
  (x, D.acf x ~max_lag)

let test_hosking_white_noise () =
  let x, r =
    sample_acf_of_gen
      (fun rng n -> Hosking.generate_stream ~acf:Acf.white_noise ~n rng)
      ~n:50_000 ~max_lag:5 ~seed:1
  in
  close ~eps:0.02 "mean" 0.0 (D.mean x);
  close ~eps:0.03 "variance" 1.0 (D.variance x);
  for k = 1 to 5 do
    close ~eps:0.02 (Printf.sprintf "white r(%d)" k) 0.0 r.(k)
  done

let test_hosking_ar1_structure () =
  (* The exponential ACF corresponds to an AR(1); Durbin-Levinson must
     find phi_{k,1} = rho and phi_{k,j} = 0 otherwise. *)
  let lambda = 0.5 in
  let rho = exp (-.lambda) in
  let table = Hosking.Table.make ~acf:(Acf.exponential ~lambda) ~n:10 in
  let xs = [| 2.0; 1.0; 0.5; -0.3; 0.2; 0.0; 0.0; 0.0; 0.0; 0.0 |] in
  for k = 1 to 5 do
    close ~eps:1e-10
      (Printf.sprintf "AR(1) cond mean at %d" k)
      (rho *. xs.(k - 1))
      (Hosking.Table.cond_mean table xs k)
  done;
  close ~eps:1e-10 "AR(1) v_1" (1.0 -. (rho *. rho)) (Hosking.Table.cond_var table 1);
  close ~eps:1e-10 "AR(1) v_5" (1.0 -. (rho *. rho)) (Hosking.Table.cond_var table 5)

let test_hosking_cond_var_decreasing () =
  let table = Hosking.Table.make ~acf:(Acf.fgn ~h:0.9) ~n:100 in
  let prev = ref 1.0 in
  for k = 1 to 99 do
    let v = Hosking.Table.cond_var table k in
    if v > !prev +. 1e-12 then Alcotest.failf "conditional variance rose at %d" k;
    if v <= 0.0 then Alcotest.failf "conditional variance nonpositive at %d" k;
    prev := v
  done

let test_hosking_fgn_sample_acf () =
  let acf = Acf.fgn ~h:0.8 in
  let _, r =
    sample_acf_of_gen
      (fun rng n -> Hosking.generate_stream ~acf ~n rng)
      ~n:16_000 ~max_lag:10 ~seed:2
  in
  close ~eps:0.03 "fgn r(1)" (acf.Acf.r 1) r.(1);
  close ~eps:0.04 "fgn r(5)" (acf.Acf.r 5) r.(5)

let test_hosking_table_vs_stream_distribution () =
  (* Table-driven and streaming generation realize the same law:
     identical conditional coefficients mean identical paths under
     the same innovations stream. *)
  let acf = Acf.fgn ~h:0.75 in
  let table = Hosking.Table.make ~acf ~n:500 in
  let a = Hosking.generate table (Rng.create ~seed:3) in
  let b = Hosking.generate_stream ~acf ~n:500 (Rng.create ~seed:3) in
  Array.iteri (fun i v -> close ~eps:1e-9 (Printf.sprintf "path[%d]" i) v a.(i)) b

let test_hosking_generate_into_reuse () =
  let table = Hosking.Table.make ~acf:(Acf.fgn ~h:0.7) ~n:100 in
  let buf = Array.make 50 nan in
  Hosking.generate_into table (Rng.create ~seed:4) buf;
  Array.iter (fun v -> if Float.is_nan v then Alcotest.fail "buffer not filled") buf;
  raises_invalid "buffer too long" (fun () ->
      Hosking.generate_into table (Rng.create ~seed:4) (Array.make 101 0.0))

let test_hosking_row_sum () =
  let table = Hosking.Table.make ~acf:(Acf.exponential ~lambda:0.5) ~n:10 in
  close "row_sum 0" 0.0 (Hosking.Table.row_sum table 0);
  (* AR(1): the only coefficient is rho. *)
  close ~eps:1e-10 "row_sum k" (exp (-0.5)) (Hosking.Table.row_sum table 5);
  (* Consistency with cond_mean on an all-ones past. *)
  let table2 = Hosking.Table.make ~acf:(Acf.fgn ~h:0.85) ~n:50 in
  let ones = Array.make 50 1.0 in
  for k = 1 to 49 do
    close ~eps:1e-10
      (Printf.sprintf "row_sum consistency %d" k)
      (Hosking.Table.cond_mean table2 ones k)
      (Hosking.Table.row_sum table2 k)
  done

let test_hosking_invalid () =
  raises_invalid "n = 0" (fun () -> Hosking.Table.make ~acf:Acf.white_noise ~n:0);
  raises_invalid "n too big" (fun () -> Hosking.Table.make ~acf:Acf.white_noise ~n:100_000);
  let table = Hosking.Table.make ~acf:Acf.white_noise ~n:5 in
  raises_invalid "cond_var out of range" (fun () -> Hosking.Table.cond_var table 5);
  (* A non-positive-definite "autocorrelation" must be rejected:
     r(1) = 0.99 with r(2) = 0 is impossible (phi_22 = -49). *)
  let bogus =
    { Acf.name = "bogus"; r = (fun k -> if k = 0 then 1.0 else if k = 1 then 0.99 else 0.0) }
  in
  raises_invalid "non-PD autocorrelation" (fun () ->
      ignore (Hosking.Table.make ~acf:bogus ~n:50))

let test_hosking_truncated_prefix_exact () =
  let acf = Acf.fgn ~h:0.8 in
  let exact = Hosking.generate_stream ~acf ~n:30 (Rng.create ~seed:5) in
  let truncated = Hosking.generate_truncated ~acf ~n:30 ~max_order:40 (Rng.create ~seed:5) in
  Array.iteri
    (fun i v -> close ~eps:1e-9 (Printf.sprintf "prefix[%d]" i) exact.(i) v)
    truncated

let test_hosking_truncated_acf_close () =
  let acf = Acf.fgn ~h:0.8 in
  let x = Hosking.generate_truncated ~acf ~n:20_000 ~max_order:50 (Rng.create ~seed:6) in
  let r = D.acf x ~max_lag:5 in
  close ~eps:0.04 "truncated r(1)" (acf.Acf.r 1) r.(1);
  close ~eps:0.02 "truncated variance" 1.0 (D.variance x)

let test_hosking_block_matches_truncated () =
  (* The cache-blocked ring kernel is the same process as
     generate_truncated with a frozen AR(order) filter: identical
     Durbin-Levinson rows, identical innovation sequence (batched
     through Rng.fill_gaussian), so the outputs are bit-identical —
     and independent of how the fills are chunked. *)
  let acf = Acf.fgn ~h:0.85 in
  let order = 32 in
  let n = 200 in
  let expect = Hosking.generate_truncated ~acf ~n ~max_order:order (Rng.create ~seed:21) in
  let table = Hosking.Table.make ~acf ~n:(order + 1) in
  let one = Array.make n 0.0 in
  let b1 = Hosking.Block.create ~table ~order () in
  Hosking.Block.fill b1 (Rng.create ~seed:21) one ~off:0 ~len:n;
  let two = Array.make n 0.0 in
  let b2 = Hosking.Block.create ~table ~order () in
  let rng = Rng.create ~seed:21 in
  let off = ref 0 in
  List.iter
    (fun len ->
      Hosking.Block.fill b2 rng two ~off:!off ~len;
      off := !off + len)
    [ 1; 7; 64; 3; 125 ];
  Alcotest.(check int) "generated count" n (Hosking.Block.generated b2);
  for i = 0 to n - 1 do
    if Int64.bits_of_float one.(i) <> Int64.bits_of_float expect.(i) then
      Alcotest.failf "slot %d: block differs from generate_truncated" i;
    if Int64.bits_of_float two.(i) <> Int64.bits_of_float expect.(i) then
      Alcotest.failf "slot %d: chunked fill differs" i
  done;
  raises_invalid "range outside buffer" (fun () ->
      Hosking.Block.fill b2 rng two ~off:(n - 1) ~len:2);
  raises_invalid "order outside table" (fun () ->
      Hosking.Block.create ~table ~order:(order + 1) ())

(* ------------------------------------------------------------------ *)
(* Relaxed precision tier                                               *)
(* ------------------------------------------------------------------ *)

let test_ar_dot_relaxed_close () =
  (* The reassociated 4-accumulator kernel computes the same dot
     product as the exact kernel up to summation-order rounding. *)
  let rng = Rng.create ~seed:30 in
  List.iter
    (fun k ->
      let row = Array.init k (fun _ -> Rng.gaussian rng) in
      let win = Array.init (k + 8) (fun _ -> Rng.gaussian rng) in
      let top = k + 5 in
      let exact = Hosking.ar_dot row win ~top ~k in
      let relaxed = Hosking.ar_dot_relaxed row win ~top ~k in
      let scale = Stdlib.max 1.0 (abs_float exact) in
      if abs_float (exact -. relaxed) /. scale > 1e-12 then
        Alcotest.failf "k=%d: relaxed dot %.17g far from exact %.17g" k relaxed exact)
    [ 1; 2; 3; 4; 5; 7; 8; 64; 513 ]

let test_block_relaxed_close_to_exact () =
  (* Same innovations, same AR rows: the relaxed block only
     reassociates each dot product, so the paths track the exact tier
     to float rounding (amplified mildly by the AR feedback). *)
  let acf = Acf.fgn ~h:0.85 in
  let order = 32 and n = 400 in
  let table = Hosking.Table.make ~acf ~n:(order + 1) in
  let exact = Array.make n 0.0 and relaxed = Array.make n 0.0 in
  Hosking.Block.fill (Hosking.Block.create ~table ~order ()) (Rng.create ~seed:31) exact
    ~off:0 ~len:n;
  Hosking.Block.fill
    (Hosking.Block.create ~relaxed:true ~table ~order ())
    (Rng.create ~seed:31) relaxed ~off:0 ~len:n;
  for i = 0 to n - 1 do
    close ~eps:1e-9 (Printf.sprintf "slot %d" i) exact.(i) relaxed.(i)
  done

let test_block_relaxed_deterministic () =
  (* Relaxed runs are seed-deterministic like exact ones — they just
     live on their own fixture set. *)
  let acf = Acf.fgn ~h:0.85 in
  let order = 32 and n = 100 in
  let table = Hosking.Table.make ~acf ~n:(order + 1) in
  let a = Array.make n 0.0 and b = Array.make n 0.0 in
  Hosking.Block.fill (Hosking.Block.create ~relaxed:true ~table ~order ())
    (Rng.create ~seed:32) a ~off:0 ~len:n;
  Hosking.Block.fill (Hosking.Block.create ~relaxed:true ~table ~order ())
    (Rng.create ~seed:32) b ~off:0 ~len:n;
  for i = 0 to n - 1 do
    if Int64.bits_of_float a.(i) <> Int64.bits_of_float b.(i) then
      Alcotest.failf "slot %d: relaxed run not reproducible" i
  done

let test_block_relaxed_statistics () =
  (* The relaxed tier is gated statistically, not bitwise: a long
     relaxed path must carry the model's dependence structure. *)
  let h = 0.8 in
  let acf = Acf.fgn ~h in
  let order = 256 and n = 16_384 in
  let table = Hosking.Table.make ~acf ~n:(order + 1) in
  let x = Array.make n 0.0 in
  Hosking.Block.fill (Hosking.Block.create ~relaxed:true ~table ~order ())
    (Rng.create ~seed:33) x ~off:0 ~len:n;
  close ~eps:0.05 "variance" 1.0 (D.variance x);
  let r = D.acf x ~max_lag:5 in
  close ~eps:0.04 "r(1)" (acf.Acf.r 1) r.(1);
  (* Variance-time Hurst: compare estimator-to-estimator against an
     exact path of the same law (cancels the estimator's own bias). *)
  let xe = Array.make n 0.0 in
  Hosking.Block.fill (Hosking.Block.create ~table ~order ()) (Rng.create ~seed:33) xe ~off:0
    ~len:n;
  let hv = (Hurst.variance_time x).Hurst.h and he = (Hurst.variance_time xe).Hurst.h in
  close ~eps:0.03 "variance-time H vs exact tier" he hv

let test_block_relaxed_fixture () =
  (* The relaxed tier's own bitwise fixture (fixed seed, FGN H=0.85,
     order 32): head of the path plus the tail of a 64-slot fill, so
     both the pre-steady-state rows and the steady-state relaxed
     kernel are pinned. These values are NOT the exact tier's — the
     tiers are seed-incompatible by design; regenerate the constants
     whenever the relaxed kernel's summation order is changed on
     purpose. *)
  let acf = Acf.fgn ~h:0.85 in
  let order = 32 and n = 64 in
  let table = Hosking.Table.make ~acf ~n:(order + 1) in
  let x = Array.make n 0.0 in
  Hosking.Block.fill
    (Hosking.Block.create ~relaxed:true ~table ~order ())
    (Rng.create ~seed:34) x ~off:0 ~len:n;
  let check i want =
    if Int64.bits_of_float x.(i) <> Int64.bits_of_float want then
      Alcotest.failf "relaxed fixture slot %d: got %.17g, want %.17g" i x.(i) want
  in
  List.iter
    (fun (i, v) -> check i v)
    [
      (0, -0.28642766337665915);
      (1, -1.3558264563091447);
      (2, -0.79517431890815637);
      (3, -2.4189329787314655);
      (60, 0.42151655300344537);
      (61, 0.55077089703725468);
      (62, 0.66193624721298905);
      (63, 0.5743725973464674);
    ]

(* ------------------------------------------------------------------ *)
(* FFT overlap-save tier                                                *)
(* ------------------------------------------------------------------ *)

let fft_block ~table ~order =
  Hosking.Block.create ~fft_plan:(Hosking.Fft_plan.make ~table ~order) ~table ~order ()

let test_block_fft_close_to_exact () =
  (* The FFT kernel consumes the same innovation per sample as the
     exact kernel and computes the same conditional means, merely
     reassociated (partition sums via the frequency domain), so the
     paths track the exact tier to float rounding. Orders straddle
     the partition size: 64 never leaves the sequential path, 192 and
     300 pad their last partition. *)
  let acf = Acf.fgn ~h:0.85 in
  let n = 1024 in
  List.iter
    (fun order ->
      let table = Hosking.Table.make ~acf ~n:(order + 1) in
      let exact = Array.make n 0.0 and fft = Array.make n 0.0 in
      Hosking.Block.fill (Hosking.Block.create ~table ~order ()) (Rng.create ~seed:41) exact
        ~off:0 ~len:n;
      Hosking.Block.fill (fft_block ~table ~order) (Rng.create ~seed:41) fft ~off:0 ~len:n;
      for i = 0 to n - 1 do
        close ~eps:1e-6 (Printf.sprintf "order %d slot %d" order i) exact.(i) fft.(i)
      done)
    [ 64; 192; 300 ]

let test_block_fft_pull_pattern () =
  (* The kernel produces in fixed blocks internally, so the stream
     for a given seed must be bitwise independent of how callers
     batch their pulls — including pulls smaller and larger than the
     partition size. *)
  let acf = Acf.fgn ~h:0.85 in
  let order = 192 and n = 700 in
  let table = Hosking.Table.make ~acf ~n:(order + 1) in
  let one = Array.make n 0.0 in
  Hosking.Block.fill (fft_block ~table ~order) (Rng.create ~seed:42) one ~off:0 ~len:n;
  let two = Array.make n 0.0 in
  let b = fft_block ~table ~order in
  let rng = Rng.create ~seed:42 in
  let off = ref 0 in
  List.iter
    (fun len ->
      Hosking.Block.fill b rng two ~off:!off ~len;
      off := !off + len)
    [ 1; 7; 120; 130; 3; 439 ];
  Alcotest.(check int) "generated count" n (Hosking.Block.generated b);
  for i = 0 to n - 1 do
    if Int64.bits_of_float one.(i) <> Int64.bits_of_float two.(i) then
      Alcotest.failf "slot %d: chunked fft fill differs" i
  done;
  raises_invalid "relaxed + fft_plan" (fun () ->
      Hosking.Block.create ~relaxed:true
        ~fft_plan:(Hosking.Fft_plan.make ~table ~order)
        ~table ~order ());
  raises_invalid "plan order mismatch" (fun () ->
      Hosking.Block.create
        ~fft_plan:(Hosking.Fft_plan.make ~table ~order:100)
        ~table ~order ())

let test_block_fft_deterministic () =
  let acf = Acf.fgn ~h:0.85 in
  let order = 192 and n = 400 in
  let table = Hosking.Table.make ~acf ~n:(order + 1) in
  let a = Array.make n 0.0 and b = Array.make n 0.0 in
  Hosking.Block.fill (fft_block ~table ~order) (Rng.create ~seed:43) a ~off:0 ~len:n;
  Hosking.Block.fill (fft_block ~table ~order) (Rng.create ~seed:43) b ~off:0 ~len:n;
  for i = 0 to n - 1 do
    if Int64.bits_of_float a.(i) <> Int64.bits_of_float b.(i) then
      Alcotest.failf "slot %d: fft run not reproducible" i
  done

let test_block_fft_statistics () =
  (* Statistical gate at the bench's headline order: sample ACF close
     to the model at small lags, variance-time H within 0.03 of the
     exact tier (estimator-to-estimator cancels the estimator's own
     bias on LRD data). *)
  let h = 0.8 in
  let acf = Acf.fgn ~h in
  let order = 512 and n = 16_384 in
  let table = Hosking.Table.make ~acf ~n:(order + 1) in
  let x = Array.make n 0.0 in
  Hosking.Block.fill (fft_block ~table ~order) (Rng.create ~seed:44) x ~off:0 ~len:n;
  close ~eps:0.05 "variance" 1.0 (D.variance x);
  let r = D.acf x ~max_lag:5 in
  close ~eps:0.04 "r(1)" (acf.Acf.r 1) r.(1);
  let xe = Array.make n 0.0 in
  Hosking.Block.fill (Hosking.Block.create ~table ~order ()) (Rng.create ~seed:44) xe ~off:0
    ~len:n;
  let hv = (Hurst.variance_time x).Hurst.h and he = (Hurst.variance_time xe).Hurst.h in
  close ~eps:0.03 "variance-time H vs exact tier" he hv

let test_block_fft_fixture () =
  (* The FFT tier's own bitwise fixture (fixed seed, FGN H=0.85,
     order 192 so the overlap-save path and last-partition padding
     are both live): head of the path plus the tail of a 640-slot
     fill, pinning warmup, the kernel's steady state, and the
     block/serve cursor plumbing. These values are NOT the exact or
     relaxed tier's — the kernels are seed-incompatible by design;
     regenerate the constants whenever the FFT kernel's summation
     structure is changed on purpose. *)
  let acf = Acf.fgn ~h:0.85 in
  let order = 192 and n = 640 in
  let table = Hosking.Table.make ~acf ~n:(order + 1) in
  let x = Array.make n 0.0 in
  Hosking.Block.fill (fft_block ~table ~order) (Rng.create ~seed:45) x ~off:0 ~len:n;
  let check i want =
    if Int64.bits_of_float x.(i) <> Int64.bits_of_float want then
      Alcotest.failf "fft fixture slot %d: got %.17g, want %.17g" i x.(i) want
  in
  List.iter
    (fun (i, v) -> check i v)
    [
      (0, -2.5099203528341731);
      (1, 0.50172666867697902);
      (2, -1.9362616015051939);
      (3, -0.16560987821145523);
      (636, -0.038709940223494943);
      (637, 0.42349516585264624);
      (638, -0.46794519559736059);
      (639, -1.2905582610788886);
    ]

(* ------------------------------------------------------------------ *)
(* Davies-Harte                                                         *)
(* ------------------------------------------------------------------ *)

let test_dh_fgn_sample_stats () =
  let acf = Acf.fgn ~h:0.8 in
  let plan = DH.plan ~acf ~n:32_768 in
  let x = DH.generate plan (Rng.create ~seed:7) in
  Alcotest.(check int) "length" 32_768 (Array.length x);
  (* LRD sample means wander: sd ~ n^{H-1} = 0.125 here. *)
  close ~eps:0.3 "mean" 0.0 (D.mean x);
  close ~eps:0.08 "variance" 1.0 (D.variance x);
  let r = D.acf x ~max_lag:5 in
  close ~eps:0.03 "r(1)" (acf.Acf.r 1) r.(1);
  close ~eps:0.04 "r(3)" (acf.Acf.r 3) r.(3)

let test_dh_white_noise () =
  let plan = DH.plan ~acf:Acf.white_noise ~n:10_000 in
  let x = DH.generate plan (Rng.create ~seed:8) in
  let r = D.acf x ~max_lag:3 in
  close ~eps:0.03 "white r(1)" 0.0 r.(1);
  close ~eps:0.03 "white variance" 1.0 (D.variance x)

let test_dh_matches_hosking_statistically () =
  (* Same model, two generators: sample ACFs must agree within Monte
     Carlo noise. *)
  (* A knee model continuous at the knee (jump-free, hence positive
     definite in practice). *)
  let l = exp (-0.05 *. 20.0) *. (20.0 ** 0.3) in
  let acf = Acf.composite ~knee:20 ~lambda:0.05 ~l ~beta:0.3 in
  let xh = Hosking.generate_stream ~acf ~n:10_000 (Rng.create ~seed:9) in
  let plan = DH.plan ~acf ~n:10_000 in
  let xd = DH.generate plan (Rng.create ~seed:10) in
  let rh = D.acf xh ~max_lag:10 and rd = D.acf xd ~max_lag:10 in
  for k = 1 to 10 do
    if abs_float (rh.(k) -. rd.(k)) > 0.1 then
      Alcotest.failf "generators disagree at lag %d: %.3f vs %.3f" k rh.(k) rd.(k)
  done

let test_dh_deterministic_given_seed () =
  let plan = DH.plan ~acf:(Acf.fgn ~h:0.7) ~n:100 in
  let a = DH.generate plan (Rng.create ~seed:11) in
  let b = DH.generate plan (Rng.create ~seed:11) in
  Array.iteri (fun i v -> close "reproducible" v b.(i)) a

let test_dh_fgn_embeddable () =
  (* FGN embeddings are provably nonnegative for all H. *)
  List.iter
    (fun h ->
      let plan = DH.plan ~acf:(Acf.fgn ~h) ~n:4096 in
      if DH.min_eigenvalue plan < -1e-9 then
        Alcotest.failf "FGN H=%g embedding negative: %g" h (DH.min_eigenvalue plan))
    [ 0.55; 0.7; 0.9; 0.95 ]

let test_dh_invalid () =
  raises_invalid "n = 0" (fun () -> DH.plan ~acf:Acf.white_noise ~n:0)

let test_dh_generate_into_matches_generate () =
  let plan = DH.plan ~acf:(Acf.fgn ~h:0.8) ~n:256 in
  let a = DH.generate plan (Rng.create ~seed:9) in
  let buf = Array.make 300 nan in
  DH.generate_into plan (Rng.create ~seed:9) buf;
  for i = 0 to 255 do
    if Int64.bits_of_float a.(i) <> Int64.bits_of_float buf.(i) then
      Alcotest.failf "slot %d: generate_into differs from generate" i
  done;
  if not (Float.is_nan buf.(256)) then Alcotest.fail "wrote past plan_length";
  raises_invalid "short buffer" (fun () ->
      DH.generate_into plan (Rng.create ~seed:9) (Array.make 255 0.0))

(* ------------------------------------------------------------------ *)
(* Paxson approximate synthesis                                         *)
(* ------------------------------------------------------------------ *)

let test_paxson_plan_basics () =
  let plan = Paxson.plan ~acf:(Acf.fgn ~h:0.8) ~n:4096 in
  Alcotest.(check int) "plan length" 4096 (Paxson.plan_length plan);
  let cr = Paxson.clipped_ratio plan in
  if cr < 0.0 || cr > 0.05 then
    Alcotest.failf "FGN folded circulant should be (near-)PSD, clipped ratio %g" cr;
  (* Non-power-of-two lengths fold onto the next power of two. *)
  let p2 = Paxson.plan ~acf:(Acf.fgn ~h:0.8) ~n:3000 in
  Alcotest.(check int) "non-pow2 length" 3000 (Paxson.plan_length p2)

let test_paxson_deterministic () =
  let plan = Paxson.plan ~acf:(Acf.fgn ~h:0.7) ~n:100 in
  let a = Paxson.generate plan (Rng.create ~seed:40) in
  let b = Paxson.generate plan (Rng.create ~seed:40) in
  Array.iteri (fun i v -> close "reproducible" v b.(i)) a

let test_paxson_sample_stats () =
  let acf = Acf.fgn ~h:0.8 in
  let plan = Paxson.plan ~acf ~n:32_768 in
  let x = Paxson.generate plan (Rng.create ~seed:41) in
  Alcotest.(check int) "length" 32_768 (Array.length x);
  close ~eps:0.3 "mean" 0.0 (D.mean x);
  close ~eps:0.08 "variance" 1.0 (D.variance x);
  let r = D.acf x ~max_lag:5 in
  close ~eps:0.03 "r(1)" (acf.Acf.r 1) r.(1);
  close ~eps:0.04 "r(3)" (acf.Acf.r 3) r.(3)

let test_paxson_white_noise () =
  let plan = Paxson.plan ~acf:Acf.white_noise ~n:10_000 in
  let x = Paxson.generate plan (Rng.create ~seed:42) in
  let r = D.acf x ~max_lag:3 in
  close ~eps:0.03 "white r(1)" 0.0 r.(1);
  close ~eps:0.03 "white variance" 1.0 (D.variance x)

let test_paxson_statistical_gates () =
  (* The gates that define the approximate backend (mirrored in the
     bench throughput-smoke variant): averaged sample ACF within 0.05
     of the model at every lag <= 100, and variance-time Hurst within
     0.03 of the same estimator on exact Davies-Harte paths. *)
  let h = 0.8 in
  let acf = Acf.fgn ~h in
  let n = 16_384 and paths = 6 in
  let plan = Paxson.plan ~acf ~n in
  let dh_plan = DH.plan ~acf ~n in
  let rng = Rng.create ~seed:43 in
  let acf_avg = Array.make 101 0.0 in
  let h_px = ref 0.0 and h_dh = ref 0.0 in
  for _ = 1 to paths do
    let xp = Paxson.generate plan (Rng.split rng) in
    let xd = DH.generate dh_plan (Rng.split rng) in
    let r = D.acf xp ~max_lag:100 in
    for k = 1 to 100 do
      acf_avg.(k) <- acf_avg.(k) +. r.(k)
    done;
    h_px := !h_px +. (Hurst.variance_time xp).Hurst.h;
    h_dh := !h_dh +. (Hurst.variance_time xd).Hurst.h
  done;
  let fp = float_of_int paths in
  for k = 1 to 100 do
    let e = abs_float ((acf_avg.(k) /. fp) -. acf.Acf.r k) in
    if e > 0.05 then
      Alcotest.failf "sample ACF off by %.4f at lag %d (tolerance 0.05)" e k
  done;
  close ~eps:0.03 "variance-time H vs exact backend" (!h_dh /. fp) (!h_px /. fp)

let test_paxson_generate_into_matches_generate () =
  let plan = Paxson.plan ~acf:(Acf.fgn ~h:0.8) ~n:256 in
  let a = Paxson.generate plan (Rng.create ~seed:44) in
  let buf = Array.make 300 nan in
  Paxson.generate_into plan (Rng.create ~seed:44) buf;
  for i = 0 to 255 do
    if Int64.bits_of_float a.(i) <> Int64.bits_of_float buf.(i) then
      Alcotest.failf "slot %d: generate_into differs from generate" i
  done;
  if not (Float.is_nan buf.(256)) then Alcotest.fail "wrote past plan_length";
  raises_invalid "short buffer" (fun () ->
      Paxson.generate_into plan (Rng.create ~seed:44) (Array.make 255 0.0))

let test_paxson_invalid () =
  raises_invalid "n = 0" (fun () -> Paxson.plan ~acf:Acf.white_noise ~n:0);
  raises_invalid "n < 0" (fun () -> Paxson.plan ~acf:Acf.white_noise ~n:(-3))

(* ------------------------------------------------------------------ *)
(* Cholesky oracle: for small n, sample the Gaussian vector directly
   from the covariance matrix and compare distributional statistics
   against Hosking and Davies-Harte.                                   *)
(* ------------------------------------------------------------------ *)

let cholesky_sample ~acf ~n rng =
  let cov = Array.init n (fun i -> Array.init n (fun j -> acf.Acf.r (abs (i - j)))) in
  let l = Ss_stats.Linalg.cholesky cov in
  let z = Array.init n (fun _ -> Rng.gaussian rng) in
  Array.init n (fun i ->
      let s = ref 0.0 in
      for k = 0 to i do
        s := !s +. (l.(i).(k) *. z.(k))
      done;
      !s)

let test_generators_match_cholesky_oracle () =
  (* Average lag-1 product and last-coordinate variance over many
     short vectors from all three exact samplers must agree. *)
  let acf = Acf.fgn ~h:0.85 in
  let n = 32 in
  let reps = 4_000 in
  let stats gen seed =
    let rng = Rng.create ~seed in
    let lag1 = ref 0.0 and last_var = ref 0.0 in
    for _ = 1 to reps do
      let x = gen rng in
      for i = 0 to n - 2 do
        lag1 := !lag1 +. (x.(i) *. x.(i + 1))
      done;
      last_var := !last_var +. (x.(n - 1) *. x.(n - 1))
    done;
    ( !lag1 /. float_of_int (reps * (n - 1)),
      !last_var /. float_of_int reps )
  in
  let table = Hosking.Table.make ~acf ~n in
  let plan = DH.plan ~acf ~n in
  let c1, cv = stats (cholesky_sample ~acf ~n) 50 in
  let h1, hv = stats (Hosking.generate table) 51 in
  let d1, dv = stats (DH.generate plan) 52 in
  (* The truth: E[x_i x_{i+1}] = r(1), Var x = 1. *)
  close ~eps:0.03 "cholesky lag1" (acf.Acf.r 1) c1;
  close ~eps:0.03 "hosking lag1" (acf.Acf.r 1) h1;
  close ~eps:0.03 "dh lag1" (acf.Acf.r 1) d1;
  close ~eps:0.05 "cholesky var" 1.0 cv;
  close ~eps:0.05 "hosking var" 1.0 hv;
  close ~eps:0.05 "dh var" 1.0 dv

(* ------------------------------------------------------------------ *)
(* Hurst estimation                                                     *)
(* ------------------------------------------------------------------ *)

let fgn_path ~h ~n ~seed = DH.generate (DH.plan ~acf:(Acf.fgn ~h) ~n) (Rng.create ~seed)

let test_hurst_white_noise () =
  let rng = Rng.create ~seed:12 in
  let x = Array.init 60_000 (fun _ -> Rng.gaussian rng) in
  let vt = Hurst.variance_time x in
  let rs = Hurst.rs x in
  close ~eps:0.08 "VT on white noise" 0.5 vt.Hurst.h;
  close ~eps:0.1 "R/S on white noise" 0.5 rs.Hurst.h

let test_hurst_fgn_high () =
  let x = fgn_path ~h:0.9 ~n:100_000 ~seed:13 in
  let vt = Hurst.variance_time x in
  let rs = Hurst.rs x in
  let pg = Hurst.periodogram x in
  close ~eps:0.1 "VT on FGN 0.9" 0.9 vt.Hurst.h;
  close ~eps:0.12 "R/S on FGN 0.9" 0.9 rs.Hurst.h;
  close ~eps:0.1 "periodogram on FGN 0.9" 0.9 pg.Hurst.h

let test_hurst_fgn_ordering () =
  (* Estimates must order correctly across H values even if biased. *)
  let est h = (Hurst.variance_time (fgn_path ~h ~n:60_000 ~seed:14)).Hurst.h in
  let h6 = est 0.6 and h9 = est 0.9 in
  if h9 <= h6 then Alcotest.failf "VT cannot order H=0.6 (%.3f) vs H=0.9 (%.3f)" h6 h9

let test_hurst_points_and_fit_exposed () =
  let x = fgn_path ~h:0.8 ~n:50_000 ~seed:15 in
  let vt = Hurst.variance_time x in
  if List.length vt.Hurst.points < 5 then Alcotest.fail "too few VT points";
  (* slope must be negative (variance decays with m) *)
  if vt.Hurst.fit.Ss_stats.Regression.slope >= 0.0 then Alcotest.fail "VT slope not negative";
  let rs = Hurst.rs x in
  if List.length rs.Hurst.points < 10 then Alcotest.fail "too few R/S points";
  if rs.Hurst.fit.Ss_stats.Regression.slope <= 0.0 then Alcotest.fail "R/S slope not positive"

let test_hurst_invalid () =
  raises_invalid "VT too short" (fun () -> Hurst.variance_time (Array.make 50 0.0));
  raises_invalid "RS too short" (fun () -> Hurst.rs (Array.make 10 0.0));
  raises_invalid "VT bad max_m" (fun () ->
      Hurst.variance_time ~min_m:10 ~max_m:5 (Array.make 1000 0.0))

(* ------------------------------------------------------------------ *)
(* Transform + attenuation                                              *)
(* ------------------------------------------------------------------ *)

let test_transform_identity_on_gaussian () =
  (* h for a standard normal marginal is the identity (up to clamping). *)
  let t = Transform.make (Dist.normal ~mean:0.0 ~std:1.0) in
  List.iter
    (fun x -> close ~eps:1e-7 (Printf.sprintf "identity at %g" x) x (Transform.apply1 t x))
    [ -3.0; -1.0; 0.0; 0.5; 2.0 ]

let test_transform_marginal_match () =
  (* Transformed Gaussian samples must follow the target marginal. *)
  let target = Dist.lognormal ~mu:1.0 ~sigma:0.7 in
  let t = Transform.make target in
  let rng = Rng.create ~seed:16 in
  let ys = Array.init 50_000 (fun _ -> Transform.apply1 t (Rng.gaussian rng)) in
  close ~eps:0.05 "transformed mean" target.Dist.mean (D.mean ys);
  let e = Ss_stats.Empirical.of_data ys in
  (* Compare quantiles against the target. *)
  List.iter
    (fun p ->
      let want = target.Dist.quantile p in
      let got = Ss_stats.Empirical.quantile e p in
      if abs_float (want -. got) /. want > 0.05 then
        Alcotest.failf "quantile %g mismatch: want %.3f got %.3f" p want got)
    [ 0.1; 0.25; 0.5; 0.75; 0.9 ]

let test_transform_monotone () =
  let t = Transform.make (Dist.gamma ~shape:2.0 ~scale:3.0) in
  let prev = ref neg_infinity in
  for i = -60 to 60 do
    let y = Transform.apply1 t (float_of_int i /. 10.0) in
    if y < !prev then Alcotest.fail "transform not monotone";
    prev := y
  done

let test_transform_clamps_extremes () =
  let t = Transform.make (Dist.exponential ~rate:1.0) in
  let a = Transform.apply1 t 100.0 in
  let b = Transform.apply1 t 8.0 in
  close "extreme inputs clamp" b a;
  if Float.is_nan a || a = infinity then Alcotest.fail "clamping failed"

let test_transform_relax_close () =
  (* The relaxed transform swaps the erf-backed CDF for the
     polynomial approximation (|err| < 7.5e-8): outputs track the
     exact transform everywhere, scaled by the quantile slope. *)
  let dist = Dist.lognormal ~mu:1.0 ~sigma:0.7 in
  let exact = Transform.make dist in
  let relaxed = Transform.relax exact in
  for i = -40 to 40 do
    let x = float_of_int i /. 10.0 in
    let ye = Transform.apply1 exact x and yr = Transform.apply1 relaxed x in
    let scale = Stdlib.max 1.0 (abs_float ye) in
    if abs_float (ye -. yr) /. scale > 1e-4 then
      Alcotest.failf "relax at %g: %.9g vs exact %.9g" x yr ye
  done;
  (* Same marginal object: only the CDF changes. *)
  if not (Transform.dist relaxed == Transform.dist exact) then
    Alcotest.fail "relax must keep the marginal distribution"

let test_attenuation_identity_is_one () =
  (* A linear transform attenuates nothing. *)
  let t = Transform.make (Dist.normal ~mean:5.0 ~std:3.0) in
  close ~eps:1e-6 "linear transform a=1" 1.0 (Transform.attenuation t)

let test_attenuation_in_unit_interval () =
  List.iter
    (fun (name, d) ->
      let a = Transform.attenuation (Transform.make d) in
      if a <= 0.0 || a > 1.0 then Alcotest.failf "%s attenuation %g outside (0,1]" name a)
    [
      ("lognormal", Dist.lognormal ~mu:0.0 ~sigma:1.0);
      ("exponential", Dist.exponential ~rate:1.0);
      ("gamma", Dist.gamma ~shape:0.5 ~scale:1.0);
      ("pareto", Dist.pareto ~shape:3.0 ~scale:1.0);
    ]

let test_attenuation_exponential_closed_form () =
  (* For h(x) = e^{sigma x} (lognormal marginal), a =
     (E h X)^2 / Var h = sigma^2 e^{sigma^2} / (e^{2 sigma^2} - e^{sigma^2})
     since E[h X] = sigma e^{sigma^2/2}. *)
  let sigma = 0.5 in
  let t = Transform.make (Dist.lognormal ~mu:0.0 ~sigma) in
  let s2 = sigma *. sigma in
  let expected = s2 *. exp s2 /. (exp (2.0 *. s2) -. exp s2) in
  close ~eps:1e-4 "lognormal attenuation closed form" expected (Transform.attenuation t)

let test_attenuation_measured_close_to_theory () =
  (* The ratio estimator is noisy at long lags (the background ACF is
     small there); average many lags and accept a loose band. *)
  let t = Transform.make (Dist.lognormal ~mu:0.0 ~sigma:0.5) in
  let theory = Transform.attenuation t in
  let lags = List.init 12 (fun i -> 30 + (10 * i)) in
  let measured =
    Transform.attenuation_measured ~acf:(Acf.fgn ~h:0.85) ~n:16_000 ~lags
      (Rng.create ~seed:17) t
  in
  close ~eps:0.15 "measured vs theory" theory measured

let test_hermite_coefficients () =
  let t = Transform.make (Dist.lognormal ~mu:0.0 ~sigma:0.5) in
  (* For h = e^{sigma x}: c_k = sigma^k e^{sigma^2/2} / sqrt(k!). *)
  let sigma = 0.5 in
  let factor = exp (sigma *. sigma /. 2.0) in
  close ~eps:1e-6 "c_0 = E h" factor (Transform.hermite_coefficient t ~k:0);
  close ~eps:1e-6 "c_1" (sigma *. factor) (Transform.hermite_coefficient t ~k:1);
  close ~eps:1e-6 "c_2" (sigma *. sigma *. factor /. sqrt 2.0) (Transform.hermite_coefficient t ~k:2)

let test_predicted_rh_limits () =
  let t = Transform.make (Dist.gamma ~shape:2.0 ~scale:1.0) in
  (* r = 0 predicts 0; r = 1 with many terms predicts ~1. *)
  close "predict at r=0" 0.0 (Transform.predicted_rh t ~r:0.0 ~terms:10);
  let at_one = Transform.predicted_rh t ~r:1.0 ~terms:40 in
  close ~eps:0.02 "predict at r=1" 1.0 at_one;
  (* Small r: linear regime rh = a r. *)
  let a = Transform.attenuation t in
  close ~eps:1e-3 "predict small r" (a *. 0.05) (Transform.predicted_rh t ~r:0.05 ~terms:10)

let test_predicted_rh_matches_simulation () =
  (* Full Hermite prediction vs an actual transformed AR(1). *)
  let rho = 0.8 in
  let t = Transform.make (Dist.lognormal ~mu:0.0 ~sigma:0.8) in
  let rng = Rng.create ~seed:18 in
  let n = 200_000 in
  let x = Array.make n 0.0 in
  x.(0) <- Rng.gaussian rng;
  for i = 1 to n - 1 do
    x.(i) <- (rho *. x.(i - 1)) +. (sqrt (1.0 -. (rho *. rho)) *. Rng.gaussian rng)
  done;
  let y = Transform.apply t x in
  let ry = D.acf y ~max_lag:1 in
  let predicted = Transform.predicted_rh t ~r:rho ~terms:20 in
  close ~eps:0.05 "Hermite prediction vs simulation" predicted ry.(1)

let test_transform_invalid () =
  let t = Transform.make (Dist.normal ~mean:0.0 ~std:1.0) in
  raises_invalid "no lags" (fun () ->
      Transform.attenuation_measured ~acf:Acf.white_noise ~n:100 ~lags:[]
        (Rng.create ~seed:1) t);
  raises_invalid "lag out of range" (fun () ->
      Transform.attenuation_measured ~acf:Acf.white_noise ~n:100 ~lags:[ 100 ]
        (Rng.create ~seed:1) t);
  raises_invalid "hermite k" (fun () -> Transform.hermite_coefficient t ~k:65);
  raises_invalid "predicted terms" (fun () -> Transform.predicted_rh t ~r:0.5 ~terms:0)

(* ------------------------------------------------------------------ *)
(* Acf_fit                                                              *)
(* ------------------------------------------------------------------ *)

let test_acf_fit_eval_matches_model () =
  let p = { Acf_fit.knee = 60; lambda = 0.00565; l = 1.59; beta = 0.2 } in
  let acf = Acf_fit.to_acf p in
  for k = 0 to 200 do
    close ~eps:1e-12 (Printf.sprintf "eval %d" k) (acf.Acf.r k) (Acf_fit.eval p k)
  done

(* A composite model continuous at the knee (as the fitter enforces,
   per the paper's Eq 12): l derived from (knee, lambda, beta). *)
let continuous_truth ~knee ~lambda ~beta =
  let l = exp (-.lambda *. float_of_int knee) *. (float_of_int knee ** beta) in
  { Acf_fit.knee; lambda; l; beta }

let test_acf_fit_recovers_exact_model () =
  (* Fit noise-free points generated by a known (continuous)
     composite model. *)
  let truth = continuous_truth ~knee:60 ~lambda:0.008 ~beta:0.25 in
  let points = List.init 400 (fun i -> (i + 1, Acf_fit.eval truth (i + 1))) in
  let fitted = Acf_fit.fit ~knee_candidates:[ 40; 50; 60; 70; 80 ] points in
  Alcotest.(check int) "knee recovered" 60 fitted.Acf_fit.knee;
  close ~eps:1e-3 "lambda recovered" truth.Acf_fit.lambda fitted.Acf_fit.lambda;
  close ~eps:0.02 "l recovered" truth.Acf_fit.l fitted.Acf_fit.l;
  close ~eps:1e-3 "beta recovered" truth.Acf_fit.beta fitted.Acf_fit.beta

let test_acf_fit_fixed_beta () =
  let truth = continuous_truth ~knee:50 ~lambda:0.01 ~beta:0.2 in
  let points = List.init 300 (fun i -> (i + 1, Acf_fit.eval truth (i + 1))) in
  let fitted = Acf_fit.fit ~knee_candidates:[ 50 ] ~fixed_beta:0.2 points in
  close "beta pinned" 0.2 fitted.Acf_fit.beta;
  close ~eps:0.02 "l with pinned beta" truth.Acf_fit.l fitted.Acf_fit.l;
  close ~eps:1e-3 "lambda via continuity" truth.Acf_fit.lambda fitted.Acf_fit.lambda

let test_acf_fit_noisy_recovery () =
  let truth = continuous_truth ~knee:60 ~lambda:0.006 ~beta:0.2 in
  let rng = Rng.create ~seed:19 in
  let points =
    List.init 490 (fun i ->
        (i + 1, Acf_fit.eval truth (i + 1) +. (0.01 *. Rng.gaussian rng)))
  in
  let fitted = Acf_fit.fit ~fixed_beta:0.2 points in
  if abs (fitted.Acf_fit.knee - 60) > 30 then
    Alcotest.failf "knee too far off: %d" fitted.Acf_fit.knee;
  close ~eps:0.15 "noisy l" truth.Acf_fit.l fitted.Acf_fit.l;
  close ~eps:0.003 "noisy lambda" 0.006 fitted.Acf_fit.lambda

let test_acf_fit_sse () =
  let p = { Acf_fit.knee = 10; lambda = 0.1; l = 1.0; beta = 0.3 } in
  let exact = List.init 50 (fun i -> (i + 1, Acf_fit.eval p (i + 1))) in
  close ~eps:1e-15 "sse on exact points" 0.0 (Acf_fit.sse p exact);
  let off = List.map (fun (k, r) -> (k, r +. 0.1)) exact in
  close ~eps:1e-9 "sse on offset points" 0.5 (Acf_fit.sse p off)

let test_acf_fit_compensate () =
  (* Paper Eq 14: after compensation, the LRD level is boosted by 1/a
     and the SRD rate re-solved so exp(-lambda' knee) = r(knee)/a. *)
  let p = { Acf_fit.knee = 60; lambda = 0.00565; l = 1.59; beta = 0.2 } in
  let a = 0.94 in
  let c = Acf_fit.compensate p ~a in
  close ~eps:1e-12 "compensated l" (p.Acf_fit.l /. a) c.Acf_fit.l;
  let boosted_knee_value = Acf_fit.eval p 60 /. a in
  close ~eps:1e-9 "compensated continuity" boosted_knee_value (exp (-.c.Acf_fit.lambda *. 60.0));
  Alcotest.(check int) "knee unchanged" p.Acf_fit.knee c.Acf_fit.knee;
  close "beta unchanged" p.Acf_fit.beta c.Acf_fit.beta

let test_acf_fit_compensate_identity () =
  (* For a model continuous at the knee, a = 1 must be a no-op: pick
     l so that l knee^-beta = exp(-lambda knee). *)
  let knee = 40 and lambda = 0.01 and beta = 0.3 in
  let l = exp (-.lambda *. float_of_int knee) *. (float_of_int knee ** beta) in
  let p = { Acf_fit.knee; lambda; l; beta } in
  let c = Acf_fit.compensate p ~a:1.0 in
  close ~eps:1e-12 "a=1 keeps l" p.Acf_fit.l c.Acf_fit.l;
  close ~eps:1e-9 "a=1 keeps lambda" p.Acf_fit.lambda c.Acf_fit.lambda

let test_acf_fit_eval_real () =
  let p = { Acf_fit.knee = 60; lambda = 0.00565; l = 1.59; beta = 0.2 } in
  (* Agrees with eval at integer lags. *)
  for k = 0 to 120 do
    close ~eps:1e-12
      (Printf.sprintf "integer lag %d" k)
      (Acf_fit.eval p k)
      (Acf_fit.eval_real p (float_of_int k))
  done;
  (* Fractional lags interpolate the analytic curves, not linearly. *)
  close ~eps:1e-12 "fractional srd" (exp (-0.00565 *. 10.5)) (Acf_fit.eval_real p 10.5);
  close ~eps:1e-12 "fractional lrd" (1.59 *. (80.5 ** -0.2)) (Acf_fit.eval_real p 80.5);
  raises_invalid "negative real lag" (fun () -> ignore (Acf_fit.eval_real p (-0.1)))

let test_acf_fit_rescaled () =
  let p = { Acf_fit.knee = 60; lambda = 0.00565; l = 1.59; beta = 0.2 } in
  let acf = Acf_fit.rescaled_acf p ~period:12 in
  close "rescaled r(0)" 1.0 (acf.Acf.r 0);
  (* Multiples of the period hit the base model exactly (Eq 15). *)
  close ~eps:1e-12 "r(12) = base r(1)" (Acf_fit.eval p 1) (acf.Acf.r 12);
  close ~eps:1e-12 "r(720) = base r(60)" (Acf_fit.eval p 60) (acf.Acf.r 720);
  (* Fractional arguments follow the analytic pieces. *)
  close ~eps:1e-12 "r(6) = exp srd at 0.5" (exp (-0.00565 *. 0.5)) (acf.Acf.r 6);
  (* Monotone non-increasing for this model. *)
  let prev = ref 2.0 in
  for k = 0 to 1000 do
    let r = acf.Acf.r k in
    if r > !prev +. 1e-12 then Alcotest.failf "rescaled not monotone at %d" k;
    prev := r
  done;
  raises_invalid "period 0" (fun () -> ignore (Acf_fit.rescaled_acf p ~period:0))

let test_acf_memoize_consistent () =
  let calls = ref 0 in
  let base =
    Acf.of_fun ~name:"counted" (fun k ->
        incr calls;
        exp (-0.1 *. float_of_int k))
  in
  let memo = Acf.memoize base in
  let a = memo.Acf.r 5 in
  let b = memo.Acf.r 5 in
  close "memo stable" a b;
  Alcotest.(check int) "computed once" 1 !calls;
  close ~eps:1e-12 "memo correct" (exp (-0.5)) a;
  raises_invalid "negative" (fun () -> ignore (memo.Acf.r (-1)))

let test_acf_fit_invalid () =
  raises_invalid "too few points" (fun () -> Acf_fit.fit [ (1, 0.9); (2, 0.8) ]);
  let p = { Acf_fit.knee = 10; lambda = 0.1; l = 1.0; beta = 0.3 } in
  raises_invalid "bad a" (fun () -> Acf_fit.compensate p ~a:0.0);
  raises_invalid "a > 1" (fun () -> Acf_fit.compensate p ~a:1.5)

(* ------------------------------------------------------------------ *)
(* End-to-end invariance: H preserved under transformation (Appendix A) *)
(* ------------------------------------------------------------------ *)

let test_hurst_invariance_under_transform () =
  (* The theorem: Y = h(X) keeps X's Hurst parameter. Estimate H on
     both sides of a heavy transform of an FGN path. *)
  let h = 0.85 in
  let x = fgn_path ~h ~n:100_000 ~seed:20 in
  let t = Transform.make (Dist.lognormal ~mu:0.0 ~sigma:1.0) in
  let y = Transform.apply t x in
  let hx = (Hurst.variance_time x).Hurst.h in
  let hy = (Hurst.variance_time y).Hurst.h in
  if abs_float (hx -. hy) > 0.08 then
    Alcotest.failf "H not preserved: X %.3f vs Y %.3f" hx hy

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                    *)
(* ------------------------------------------------------------------ *)

let prop_fgn_acf_bounded =
  QCheck.Test.make ~name:"FGN autocorrelation lies in (-1,1]" ~count:100
    QCheck.(pair (float_range 0.01 0.99) (int_range 0 10_000))
    (fun (h, k) ->
      let r = (Acf.fgn ~h).Acf.r k in
      r <= 1.0 +. 1e-12 && r > -1.0)

let prop_fgn_acf_decreasing_for_lrd =
  QCheck.Test.make ~name:"FGN ACF decreasing for H > 0.5" ~count:100
    QCheck.(pair (float_range 0.55 0.95) (int_range 1 1000))
    (fun (h, k) ->
      let acf = Acf.fgn ~h in
      acf.Acf.r k >= acf.Acf.r (k + 1) -. 1e-12)

let prop_composite_eval_bounded =
  QCheck.Test.make ~name:"composite model stays in [-1,1]" ~count:200
    QCheck.(
      quad (int_range 1 200) (float_range 0.0001 0.5) (float_range 0.1 3.0)
        (float_range 0.05 0.95))
    (fun (knee, lambda, l, beta) ->
      let p = { Acf_fit.knee; lambda; l; beta } in
      List.for_all
        (fun k ->
          let r = Acf_fit.eval p k in
          r <= 1.0 && r >= -1.0)
        [ 0; 1; knee - 1; knee; knee + 1; 10 * knee ])

let prop_compensate_levels_up =
  QCheck.Test.make ~name:"compensation never lowers the LRD level" ~count:200
    QCheck.(pair (float_range 0.3 1.0) (float_range 0.1 2.0))
    (fun (a, l) ->
      let p = { Acf_fit.knee = 50; lambda = 0.01; l; beta = 0.2 } in
      (Acf_fit.compensate p ~a).Acf_fit.l >= p.Acf_fit.l -. 1e-12)

let prop_transform_monotone =
  QCheck.Test.make ~name:"transform is monotone for any gamma marginal" ~count:50
    QCheck.(
      triple (float_range 0.3 5.0) (float_range 0.2 4.0)
        (pair (float_range (-6.0) 6.0) (float_range (-6.0) 6.0)))
    (fun (shape, scale, (x1, x2)) ->
      let t = Transform.make (Dist.gamma ~shape ~scale) in
      let lo = Stdlib.min x1 x2 and hi = Stdlib.max x1 x2 in
      Transform.apply1 t lo <= Transform.apply1 t hi +. 1e-9)

let prop_fft_statistical_gate =
  (* The FFT tier's gate, across random Hurst exponents and every
     headline order: the sample ACF at all lags <= 100 within 0.05 of
     the exact tier's on the same seed, and variance-time H within
     0.03 of the exact tier's. Estimator-to-estimator bounds — the
     estimators' own LRD bias cancels, so the thresholds hold over
     the whole H range (the CI smoke gate additionally pins the
     averaged ACF to the *model* at its fixed operating point). Any
     partition misalignment or aliasing bug produces O(1) path
     divergence, so the margins here are enormous when the kernel is
     right. *)
  QCheck.Test.make ~name:"fft kernel within statistical gates of exact tier" ~count:4
    QCheck.(pair (float_range 0.55 0.9) (oneofl [ 64; 512; 2048 ]))
    (fun (h, order) ->
      let acf = Acf.fgn ~h in
      let n = 16_384 in
      let table = Hosking.Table.make ~acf ~n:(order + 1) in
      let seed = 46 + int_of_float (h *. 1000.0) in
      let xe = Array.make n 0.0 and xf = Array.make n 0.0 in
      Hosking.Block.fill (Hosking.Block.create ~table ~order ()) (Rng.create ~seed) xe
        ~off:0 ~len:n;
      Hosking.Block.fill
        (Hosking.Block.create ~fft_plan:(Hosking.Fft_plan.make ~table ~order) ~table ~order
           ())
        (Rng.create ~seed) xf ~off:0 ~len:n;
      let re = D.acf xe ~max_lag:100 and rf = D.acf xf ~max_lag:100 in
      let acf_ok = ref true in
      for k = 0 to 100 do
        if abs_float (re.(k) -. rf.(k)) > 0.05 then acf_ok := false
      done;
      let he = (Hurst.variance_time xe).Hurst.h
      and hf = (Hurst.variance_time xf).Hurst.h in
      !acf_ok && abs_float (he -. hf) <= 0.03)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_fgn_acf_bounded;
      prop_fgn_acf_decreasing_for_lrd;
      prop_composite_eval_bounded;
      prop_compensate_levels_up;
      prop_transform_monotone;
      prop_fft_statistical_gate;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_fractal"
    [
      ( "acf",
        [
          tc "lag 0 is 1" test_acf_lag_zero_is_one;
          tc "white noise" test_acf_white_noise;
          tc "fgn values" test_acf_fgn_values;
          tc "fgn tail exponent" test_acf_fgn_tail_exponent;
          tc "farima recursion" test_acf_farima_recursion;
          tc "farima tail exponent" test_acf_farima_tail_exponent;
          tc "composite pieces" test_acf_composite_pieces;
          tc "composite clamps" test_acf_composite_clamped;
          tc "lag rescale" test_acf_lag_rescale;
          tc "hurst recovery" test_acf_hurst_recovery;
          tc "to_array" test_acf_to_array;
          tc "invalid" test_acf_invalid;
        ] );
      ( "hosking",
        [
          tc "white noise" test_hosking_white_noise;
          tc "AR(1) structure" test_hosking_ar1_structure;
          tc "conditional variance decreasing" test_hosking_cond_var_decreasing;
          tc "FGN sample acf" test_hosking_fgn_sample_acf;
          tc "table = stream" test_hosking_table_vs_stream_distribution;
          tc "generate_into" test_hosking_generate_into_reuse;
          tc "row sums" test_hosking_row_sum;
          tc "invalid" test_hosking_invalid;
          tc "truncated prefix exact" test_hosking_truncated_prefix_exact;
          tc "truncated acf close" test_hosking_truncated_acf_close;
          tc "block kernel = truncated" test_hosking_block_matches_truncated;
        ] );
      ( "relaxed-tier",
        [
          tc "ar_dot_relaxed close" test_ar_dot_relaxed_close;
          tc "block relaxed close to exact" test_block_relaxed_close_to_exact;
          tc "block relaxed deterministic" test_block_relaxed_deterministic;
          tc "block relaxed statistics" test_block_relaxed_statistics;
          tc "block relaxed fixture" test_block_relaxed_fixture;
        ] );
      ( "fft-tier",
        [
          tc "block fft close to exact" test_block_fft_close_to_exact;
          tc "block fft pull pattern" test_block_fft_pull_pattern;
          tc "block fft deterministic" test_block_fft_deterministic;
          tc "block fft statistics" test_block_fft_statistics;
          tc "block fft fixture" test_block_fft_fixture;
        ] );
      ( "davies-harte",
        [
          tc "FGN sample stats" test_dh_fgn_sample_stats;
          tc "white noise" test_dh_white_noise;
          tc "matches Hosking" test_dh_matches_hosking_statistically;
          tc "deterministic" test_dh_deterministic_given_seed;
          tc "FGN embeddable" test_dh_fgn_embeddable;
          tc "invalid" test_dh_invalid;
          tc "generate_into = generate" test_dh_generate_into_matches_generate;
          tc "cholesky oracle" test_generators_match_cholesky_oracle;
        ] );
      ( "paxson",
        [
          tc "plan basics" test_paxson_plan_basics;
          tc "deterministic" test_paxson_deterministic;
          tc "FGN sample stats" test_paxson_sample_stats;
          tc "white noise" test_paxson_white_noise;
          tc "statistical gates" test_paxson_statistical_gates;
          tc "generate_into = generate" test_paxson_generate_into_matches_generate;
          tc "invalid" test_paxson_invalid;
        ] );
      ( "hurst",
        [
          tc "white noise" test_hurst_white_noise;
          tc "FGN 0.9" test_hurst_fgn_high;
          tc "ordering" test_hurst_fgn_ordering;
          tc "points and fits" test_hurst_points_and_fit_exposed;
          tc "invalid" test_hurst_invalid;
        ] );
      ( "transform",
        [
          tc "identity on gaussian" test_transform_identity_on_gaussian;
          tc "marginal match" test_transform_marginal_match;
          tc "monotone" test_transform_monotone;
          tc "clamps extremes" test_transform_clamps_extremes;
          tc "relax close to exact" test_transform_relax_close;
          tc "attenuation of linear is 1" test_attenuation_identity_is_one;
          tc "attenuation in (0,1]" test_attenuation_in_unit_interval;
          tc "attenuation closed form" test_attenuation_exponential_closed_form;
          tc "measured vs theory" test_attenuation_measured_close_to_theory;
          tc "hermite coefficients" test_hermite_coefficients;
          tc "predicted rh limits" test_predicted_rh_limits;
          tc "predicted rh vs simulation" test_predicted_rh_matches_simulation;
          tc "invalid" test_transform_invalid;
        ] );
      ( "acf-fit",
        [
          tc "eval matches model" test_acf_fit_eval_matches_model;
          tc "recovers exact model" test_acf_fit_recovers_exact_model;
          tc "fixed beta" test_acf_fit_fixed_beta;
          tc "noisy recovery" test_acf_fit_noisy_recovery;
          tc "sse" test_acf_fit_sse;
          tc "compensate (Eq 14)" test_acf_fit_compensate;
          tc "compensate identity" test_acf_fit_compensate_identity;
          tc "eval_real" test_acf_fit_eval_real;
          tc "rescaled (Eq 15)" test_acf_fit_rescaled;
          tc "memoize" test_acf_memoize_consistent;
          tc "invalid" test_acf_fit_invalid;
        ] );
      ("invariance", [ tc "H preserved under h (Appendix A)" test_hurst_invariance_under_transform ]);
      ("properties", qcheck_cases);
    ]

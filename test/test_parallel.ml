(* Tests for the deterministic domain-pool execution layer: the pool
   itself (ordering, exactly-once execution, exception propagation),
   the Fanout combinator's bit-identity guarantee across domain
   counts, and the pooled variants of the simulation hot paths
   (Mc/Is replications, Mux.run, Hosking table construction) — plus
   the fixed-seed regression pinning the double-buffered streaming
   Hosking generators and the structural Source table-cache key. *)

module Rng = Ss_stats.Rng
module Pool = Ss_parallel.Pool
module Fanout = Ss_parallel.Fanout
module Barrier = Ss_parallel.Barrier
module Acf = Ss_fractal.Acf
module Hosking = Ss_fractal.Hosking
module Mc = Ss_queueing.Mc
module Is = Ss_fastsim.Is_estimator
module Source = Ss_mux.Source
module Mux = Ss_mux.Mux

let raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

(* Run [f] against a fresh pool of every size in [sizes] (plus the
   sequential [None] path) and check all results agree per [eq]. *)
let across_pools ?(sizes = [ 1; 2; 4 ]) ~eq ~pp f =
  let reference = f None in
  List.iter
    (fun d ->
      Pool.with_pool ~domains:d (fun _ ->
          (* with_pool gives None for d <= 1; always exercise a real
             pool here, including the degenerate 1-domain one. *)
          ());
      let p = Pool.create ~domains:d in
      let got = Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f (Some p)) in
      if not (eq reference got) then
        Alcotest.failf "domains=%d: %s <> sequential %s" d (pp got) (pp reference))
    sizes

let bits = Int64.bits_of_float
let float_eq a b = bits a = bits b

let float_array_eq a b =
  Array.length a = Array.length b && Array.for_all2 (fun x y -> float_eq x y) a b

(* ------------------------------------------------------------------ *)
(* Pool basics                                                          *)
(* ------------------------------------------------------------------ *)

let test_pool_invalid () =
  raises_invalid "domains = 0" (fun () -> Pool.create ~domains:0);
  raises_invalid "domains too large" (fun () -> Pool.create ~domains:1000);
  let p = Pool.create ~domains:2 in
  Alcotest.(check int) "size" 2 (Pool.size p);
  Pool.shutdown p;
  Pool.shutdown p;
  raises_invalid "use after shutdown" (fun () -> Pool.run p [| (fun () -> 0) |])

let test_pool_with_pool () =
  Pool.with_pool ~domains:1 (function
    | None -> ()
    | Some _ -> Alcotest.fail "domains=1 must take the sequential path");
  Pool.with_pool ~domains:3 (function
    | None -> Alcotest.fail "domains=3 must build a pool"
    | Some p -> Alcotest.(check int) "size" 3 (Pool.size p))

let test_pool_map_order () =
  List.iter
    (fun d ->
      let p = Pool.create ~domains:d in
      Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
      let xs = Array.init 100 (fun i -> i) in
      let ys = Pool.map p (fun i -> i * i) xs in
      Array.iteri
        (fun i y -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) y)
        ys)
    [ 1; 2; 4 ]

let test_pool_exactly_once () =
  List.iter
    (fun d ->
      let p = Pool.create ~domains:d in
      Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
      let n = 257 in
      let counts = Array.init n (fun _ -> Atomic.make 0) in
      let _ =
        Pool.run p (Array.init n (fun i () -> Atomic.incr counts.(i)))
      in
      Array.iteri
        (fun i c ->
          Alcotest.(check int) (Printf.sprintf "item %d runs once" i) 1 (Atomic.get c))
        counts)
    [ 1; 2; 4 ]

let test_pool_exception_propagates () =
  let p = Pool.create ~domains:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  (match
     Pool.run p
       (Array.init 64 (fun i () ->
            if i mod 17 = 3 then invalid_arg (Printf.sprintf "boom %d" i) else i))
   with
  | exception Invalid_argument m ->
    (* Lowest faulting index wins so failures are reproducible. *)
    Alcotest.(check string) "lowest index exception" "boom 3" m
  | _ -> Alcotest.fail "expected the item exception to propagate");
  (* The pool must survive a failed batch. *)
  let ys = Pool.run p (Array.init 8 (fun i () -> i + 1)) in
  Alcotest.(check (array int)) "usable after failure" (Array.init 8 (fun i -> i + 1)) ys

let test_pool_fold_order () =
  (* String concatenation is non-commutative: any reduction
     reordering would change the result. *)
  let xs = Array.init 50 (fun i -> i) in
  let expect = Array.fold_left (fun acc i -> acc ^ "," ^ string_of_int i) "" xs in
  List.iter
    (fun d ->
      let p = Pool.create ~domains:d in
      Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
      let got =
        Pool.fold p ~f:(fun acc s -> acc ^ "," ^ s) ~init:"" string_of_int xs
      in
      Alcotest.(check string) (Printf.sprintf "domains=%d" d) expect got)
    [ 1; 2; 4 ]

let test_parallel_for_covers_range () =
  List.iter
    (fun (d, chunk) ->
      let p = Pool.create ~domains:d in
      Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
      let lo = 3 and hi = 202 in
      let marks = Array.init (hi + 1) (fun _ -> Atomic.make 0) in
      Pool.parallel_for p ?chunk ~lo ~hi (fun i -> Atomic.incr marks.(i));
      Array.iteri
        (fun i c ->
          let want = if i >= lo && i <= hi then 1 else 0 in
          Alcotest.(check int) (Printf.sprintf "index %d" i) want (Atomic.get c))
        marks;
      (* Empty range is a no-op. *)
      Pool.parallel_for p ~lo:5 ~hi:4 (fun _ -> Alcotest.fail "empty range ran"))
    [ (1, None); (2, None); (4, Some 7) ]

let test_static_for () =
  (* The precompiled batch runs every index exactly once per trigger,
     for any domain count, and survives repeated dispatch. *)
  let n = 37 in
  List.iter
    (fun d ->
      let p = Pool.create ~domains:d in
      Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
      let marks = Array.init n (fun _ -> Atomic.make 0) in
      let trigger = Pool.static_for p ~n (fun i -> Atomic.incr marks.(i)) in
      trigger ();
      trigger ();
      Array.iteri
        (fun i c ->
          if Atomic.get c <> 2 then
            Alcotest.failf "index %d ran %d times over 2 triggers" i (Atomic.get c))
        marks;
      raises_invalid "n <= 0" (fun () -> Pool.static_for p ~n:0 (fun _ -> ())))
    [ 1; 3 ];
  let p = Pool.create ~domains:2 in
  let trigger = Pool.static_for p ~n:4 (fun _ -> ()) in
  Pool.shutdown p;
  raises_invalid "trigger after shutdown" (fun () -> trigger ())

(* ------------------------------------------------------------------ *)
(* Barrier: coarse per-block shard dispatch                             *)
(* ------------------------------------------------------------------ *)

let test_barrier_runs_every_task () =
  (* Every task index runs exactly once per dispatch, sequentially
     (no pool), on a degenerate 1-domain pool, and on a real pool. *)
  let with_pool domains k =
    match domains with
    | None -> k None
    | Some d ->
        let p = Pool.create ~domains:d in
        Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> k (Some p))
  in
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          let tasks = 7 in
          let marks = Array.init tasks (fun _ -> Atomic.make 0) in
          let b = Barrier.make ?pool ~tasks (fun s -> Atomic.incr marks.(s)) in
          Alcotest.(check int) "tasks" tasks (Barrier.tasks b);
          Barrier.run b;
          Barrier.run b;
          Array.iteri
            (fun s c ->
              if Atomic.get c <> 2 then
                Alcotest.failf "task %d ran %d times over 2 dispatches" s (Atomic.get c))
            marks))
    [ None; Some 1; Some 3 ]

let test_barrier_is_a_barrier () =
  (* run returns only once every task has finished: tasks write
     disjoint slots and the caller must observe all of them right
     after run — the determinism contract the sharded mux stages
     blocks under. *)
  let p = Pool.create ~domains:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let n = 11 in
  let out = Array.make n 0.0 in
  let b = Barrier.make ~pool:p ~tasks:n (fun s -> out.(s) <- float_of_int (s * s)) in
  for round = 1 to 3 do
    Array.fill out 0 n 0.0;
    Barrier.run b;
    Array.iteri
      (fun s v ->
        if v <> float_of_int (s * s) then
          Alcotest.failf "round %d: slot %d unwritten at return" round s)
      out
  done

let test_barrier_invalid_and_shutdown () =
  raises_invalid "tasks < 1" (fun () -> Barrier.make ~tasks:0 (fun _ -> ()));
  let p = Pool.create ~domains:2 in
  let b = Barrier.make ~pool:p ~tasks:4 (fun _ -> ()) in
  Barrier.run b;
  Pool.shutdown p;
  raises_invalid "run after pool shutdown" (fun () -> Barrier.run b)

(* Supervision: a task body that raises must not wedge the block —
   peers still run, the pool join completes, and the caller gets
   Task_error with the lowest failing shard index and the original
   exception. The barrier is then poisoned (mid-block state is torn),
   refusing further runs with the same error. Exercised sequentially
   and on a real pool, at 2 and 4 shards. *)
let test_barrier_task_error_propagates () =
  List.iter
    (fun shards ->
      List.iter
        (fun pool_domains ->
          let with_pool k =
            match pool_domains with
            | None -> k None
            | Some d ->
              let p = Pool.create ~domains:d in
              Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> k (Some p))
          in
          with_pool (fun pool ->
              let label fmt =
                Printf.ksprintf
                  (fun s ->
                    Printf.sprintf "shards=%d domains=%s: %s" shards
                      (match pool_domains with None -> "seq" | Some d -> string_of_int d)
                      s)
                  fmt
              in
              let ran = Array.init shards (fun _ -> Atomic.make 0) in
              let b =
                Barrier.make ?pool ~tasks:shards (fun s ->
                    Atomic.incr ran.(s);
                    if s >= 1 then failwith (Printf.sprintf "shard %d died" s))
              in
              (match Barrier.run b with
              | exception Barrier.Task_error { task; exn = Failure m } ->
                Alcotest.(check int) (label "lowest failing shard wins") 1 task;
                Alcotest.(check string) (label "original exception") "shard 1 died" m
              | exception e ->
                Alcotest.failf "%s" (label "unexpected %s" (Printexc.to_string e))
              | () -> Alcotest.fail (label "expected Task_error"))
              ;
              Array.iteri
                (fun s c ->
                  Alcotest.(check int) (label "shard %d still ran its block" s) 1
                    (Atomic.get c))
                ran;
              if not (Barrier.poisoned b) then
                Alcotest.fail (label "barrier not poisoned after failure");
              match Barrier.run b with
              | exception Barrier.Task_error { task = 1; _ } -> ()
              | exception e ->
                Alcotest.failf "%s" (label "poisoned rerun: %s" (Printexc.to_string e))
              | () -> Alcotest.fail (label "poisoned barrier must refuse")))
        [ None; Some shards ])
    [ 2; 4 ]

(* End-to-end supervision: a source whose pull raises mid-run inside
   the sharded mux must surface on the caller within one staged block
   as Task_error carrying the shard that owns the source — not hang
   the barrier, not kill a worker domain silently. *)
let test_mux_worker_exception_surfaces () =
  List.iter
    (fun shards ->
      let p = Pool.create ~domains:shards in
      Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
      let n = 4 in
      let src i =
        if i = n - 1 then
          let pulls = ref 0 in
          Source.make ~name:"dying" ~mean:1.0 ~sigma2:0.1 ~hurst:0.5 (fun () ->
              incr pulls;
              if !pulls > 10 then failwith "sensor failure" else (1.0, 0))
        else
          Source.of_array ~name:(Printf.sprintf "s%d" i) ~cycle:true
            (Array.init 97 (fun t -> abs_float (sin (float_of_int (t + (13 * i))))))
      in
      match Mux.run ~pool:p ~shards ~service:4.0 ~slots:4096 (Array.init n src) with
      | exception Barrier.Task_error { task; exn = Failure m } ->
        Alcotest.(check string)
          (Printf.sprintf "shards=%d: original error" shards)
          "sensor failure" m;
        (* Contiguous partition of 4 sources: the dying source (index
           3) lives in the last shard. *)
        Alcotest.(check int) (Printf.sprintf "shards=%d: failing shard" shards) (shards - 1)
          task
      | exception e ->
        Alcotest.failf "shards=%d: unexpected %s" shards (Printexc.to_string e)
      | _ -> Alcotest.fail (Printf.sprintf "shards=%d: expected Task_error" shards))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Fanout determinism                                                   *)
(* ------------------------------------------------------------------ *)

let test_fanout_deterministic () =
  let work sub i = (float_of_int i *. 1000.0) +. Rng.gaussian sub in
  across_pools ~eq:float_array_eq
    ~pp:(fun xs -> Printf.sprintf "[|%g;...|]" xs.(0))
    (fun pool ->
      let rng = Rng.create ~seed:41 in
      let out = Fanout.map ?pool ~rng ~n:37 work in
      (* The parent stream must advance identically too. *)
      Array.append out [| Rng.gaussian rng |])

let test_fanout_fold_deterministic () =
  across_pools
    ~eq:(fun a b -> float_eq a b)
    ~pp:(Printf.sprintf "%h")
    (fun pool ->
      let rng = Rng.create ~seed:42 in
      Fanout.fold ?pool ~rng ~n:23 ~f:( +. ) ~init:0.0 (fun sub _ -> Rng.gaussian sub))

let test_fanout_edge_cases () =
  let rng = Rng.create ~seed:1 in
  Alcotest.(check int) "n=0" 0 (Array.length (Fanout.map ~rng ~n:0 (fun _ i -> i)));
  raises_invalid "n<0" (fun () -> Fanout.map ~rng ~n:(-1) (fun _ i -> i))

(* ------------------------------------------------------------------ *)
(* Hot paths: bit-identical estimates at every domain count            *)
(* ------------------------------------------------------------------ *)

let is_config () =
  let table = Hosking.Table.make ~acf:(Acf.fgn ~h:0.8) ~n:120 in
  Is.make_config ~table
    ~arrival:(fun _ x -> x +. 0.3)
    ~service:0.5 ~buffer:4.0 ~horizon:120 ~twist:0.8 ()

let test_is_estimate_domain_invariant () =
  let cfg = is_config () in
  across_pools
    ~eq:(fun a b -> float_eq a.Mc.p b.Mc.p && a.Mc.hits = b.Mc.hits)
    ~pp:(fun e -> Printf.sprintf "p=%h hits=%d" e.Mc.p e.Mc.hits)
    (fun pool -> Is.estimate ?pool cfg ~replications:60 (Rng.create ~seed:5))

let test_mc_domain_invariant () =
  across_pools
    ~eq:(fun a b -> float_eq a.Mc.p b.Mc.p && a.Mc.hits = b.Mc.hits)
    ~pp:(fun e -> Printf.sprintf "p=%h" e.Mc.p)
    (fun pool ->
      Mc.overflow_probability ?pool
        ~gen:(fun sub -> Array.init 150 (fun _ -> abs_float (Rng.gaussian sub)))
        ~service:1.1 ~buffer:4.0 ~horizon:150 ~replications:80
        (Rng.create ~seed:6))

let test_mux_domain_invariant () =
  let report pool =
    (* Fresh sources per run: a source is stateful. Work arrays are
       longer than the prefetch block so pooled runs cross a block
       boundary. *)
    let src i =
      let xs = Array.init 300 (fun t -> abs_float (sin (float_of_int (t + (31 * i))))) in
      Source.of_array ~name:(Printf.sprintf "s%d" i) ~cycle:true xs
    in
    Mux.run ?pool ~buffer:3.0 ~thresholds:[ 0.5; 1.5 ] ~service:1.9 ~slots:1000
      (Array.init 5 src)
  in
  across_pools
    ~eq:(fun a b ->
      float_eq a.Mux.mean_queue b.Mux.mean_queue
      && float_eq a.Mux.loss_fraction b.Mux.loss_fraction
      && List.for_all2
           (fun (_, x) (_, y) -> float_eq x y)
           a.Mux.overflow b.Mux.overflow
      && Array.for_all2
           (fun (x : Mux.source_report) (y : Mux.source_report) ->
             float_eq x.Mux.offered y.Mux.offered && float_eq x.Mux.lost y.Mux.lost)
           a.Mux.per_source b.Mux.per_source)
    ~pp:(fun r -> Printf.sprintf "mean_queue=%h" r.Mux.mean_queue)
    report

let test_hosking_table_pool_invariant () =
  (* par_cutoff far below n so the pooled step actually runs; the
     pooled table must be bit-identical for every pool size. *)
  let acf = Acf.fgn ~h:0.85 in
  let n = 160 in
  let probe t =
    let xs = ref [] in
    for k = n - 1 downto 0 do
      xs := Hosking.Table.cond_var t k :: Hosking.Table.row_sum t k :: !xs
    done;
    Array.of_list !xs
  in
  let reference = ref [||] in
  List.iter
    (fun d ->
      let p = Pool.create ~domains:d in
      Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
      let t = Hosking.Table.make_pooled ~pool:p ~par_cutoff:32 ~acf ~n () in
      let sig_ = probe t in
      if d = 1 then reference := sig_
      else if not (float_array_eq !reference sig_) then
        Alcotest.failf "pooled table differs at domains=%d" d)
    [ 1; 2; 4 ];
  (* Sanity: the pooled recursion agrees with the sequential one to
     numerical accuracy (chunked summation may differ in the ulps). *)
  let seq = probe (Hosking.Table.make ~acf ~n) in
  Array.iteri
    (fun i v ->
      if abs_float (v -. !reference.(i)) > 1e-9 *. (1.0 +. abs_float v) then
        Alcotest.failf "pooled vs sequential table diverges at %d" i)
    seq;
  raises_invalid "par_cutoff < 2" (fun () ->
      Hosking.Table.make_pooled ~par_cutoff:1 ~acf ~n:8 ())

(* ------------------------------------------------------------------ *)
(* Source table cache: structural key                                   *)
(* ------------------------------------------------------------------ *)

let test_source_cache_keyed_structurally () =
  (* Two distinct ACFs deliberately sharing a display name: a cache
     keyed by name would hand the second stream the first one's
     table. *)
  let acf_of lambda =
    Acf.of_fun ~name:"shared-name" (fun k ->
        if k = 0 then 1.0 else exp (-.lambda *. float_of_int k))
  in
  let order = 24 in
  let stream acf = Source.background_stream ~acf ~order (Rng.create ~seed:77) in
  let a = stream (acf_of 0.05) in
  let b = stream (acf_of 1.5) in
  let differs = ref false in
  for _ = 1 to 64 do
    let xa = a () and xb = b () in
    if not (float_eq xa xb) then differs := true
  done;
  if not !differs then Alcotest.fail "same-name ACFs shared one cached table";
  (* And equal structure still shares: same ACF twice, same seed, the
     streams coincide (cache hit or not is unobservable). *)
  let c = stream (acf_of 0.05) and d = stream (acf_of 0.05) in
  for i = 1 to 64 do
    let xc = c () and xd = d () in
    if not (float_eq xc xd) then Alcotest.failf "identical ACFs diverged at %d" i
  done

(* ------------------------------------------------------------------ *)
(* Streaming-Hosking fixed-seed regression                              *)
(* ------------------------------------------------------------------ *)

(* Pins the exact output of the double-buffered generate_stream /
   generate_truncated (verified bit-identical to the historical
   fresh-array-per-step implementation when the buffer reuse was
   introduced). *)
let test_hosking_stream_regression () =
  let acf = Acf.fgn ~h:0.8 in
  let check name xs expected =
    List.iter
      (fun (i, hex) ->
        let got = bits xs.(i) in
        if got <> Int64.of_string ("0x" ^ hex) then
          Alcotest.failf "%s[%d]: got %Lx, want %s" name i got hex)
      expected
  in
  let s = Hosking.generate_stream ~acf ~n:600 (Rng.create ~seed:7) in
  check "stream" s
    [
      (0, "3ffac8da7097b412");
      (1, "3fd88b4671873280");
      (17, "3fe9de13595bda90");
      (299, "bfd8f4b509b8ee34");
      (599, "3ff4bf8e78f3d6c6");
    ];
  let t = Hosking.generate_truncated ~acf ~n:900 ~max_order:64 (Rng.create ~seed:9) in
  check "trunc" t
    [
      (0, "3fff0c5cbf69a4b0");
      (63, "bfff78ef7e20d908");
      (64, "bfa613c7fa1437b0");
      (500, "bff74bc679d01d38");
      (899, "3ff6f84eb5300bec");
    ]

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                    *)
(* ------------------------------------------------------------------ *)

let prop_pool_map_is_map =
  QCheck.Test.make ~name:"Pool.map agrees with Array.map" ~count:30
    QCheck.(
      pair (int_range 1 4) (array_of_size Gen.(int_range 0 120) (int_range (-1000) 1000)))
    (fun (d, xs) ->
      let p = Pool.create ~domains:d in
      Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
      Pool.map p (fun x -> (2 * x) - 7) xs = Array.map (fun x -> (2 * x) - 7) xs)

let prop_pool_run_exactly_once =
  QCheck.Test.make ~name:"Pool.run executes every thunk exactly once" ~count:30
    QCheck.(pair (int_range 1 4) (int_range 0 150))
    (fun (d, n) ->
      let p = Pool.create ~domains:d in
      Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
      let counts = Array.init n (fun _ -> Atomic.make 0) in
      let out = Pool.run p (Array.init n (fun i () -> Atomic.incr counts.(i); i)) in
      out = Array.init n (fun i -> i)
      && Array.for_all (fun c -> Atomic.get c = 1) counts)

let prop_fanout_pool_size_irrelevant =
  QCheck.Test.make ~name:"Fanout.map result independent of pool size" ~count:15
    QCheck.(pair (int_range 2 4) (int_range 1 40))
    (fun (d, n) ->
      let run pool =
        Fanout.map ?pool ~rng:(Rng.create ~seed:(n + 100)) ~n (fun sub i ->
            Rng.gaussian sub +. float_of_int i)
      in
      let p = Pool.create ~domains:d in
      Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
      float_array_eq (run None) (run (Some p)))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_pool_map_is_map; prop_pool_run_exactly_once; prop_fanout_pool_size_irrelevant ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_parallel"
    [
      ( "pool",
        [
          tc "invalid args / shutdown" test_pool_invalid;
          tc "with_pool dispatch" test_pool_with_pool;
          tc "map preserves order" test_pool_map_order;
          tc "items run exactly once" test_pool_exactly_once;
          tc "exceptions propagate" test_pool_exception_propagates;
          tc "fold order fixed" test_pool_fold_order;
          tc "parallel_for covers range" test_parallel_for_covers_range;
          tc "static_for reusable batch" test_static_for;
        ] );
      ( "barrier",
        [
          tc "every task once per dispatch" test_barrier_runs_every_task;
          tc "returns after all tasks" test_barrier_is_a_barrier;
          tc "invalid / shutdown" test_barrier_invalid_and_shutdown;
          tc "task error propagates + poisons" test_barrier_task_error_propagates;
          tc "mux worker exception surfaces" test_mux_worker_exception_surfaces;
        ] );
      ( "fanout",
        [
          tc "map deterministic across pools" test_fanout_deterministic;
          tc "fold deterministic across pools" test_fanout_fold_deterministic;
          tc "edge cases" test_fanout_edge_cases;
        ] );
      ( "hot-paths",
        [
          tc "Is.estimate domain-invariant" test_is_estimate_domain_invariant;
          tc "Mc.overflow_probability domain-invariant" test_mc_domain_invariant;
          tc "Mux.run domain-invariant" test_mux_domain_invariant;
          tc "Hosking table pool-invariant" test_hosking_table_pool_invariant;
        ] );
      ( "regressions",
        [
          tc "source cache keyed structurally" test_source_cache_keyed_structurally;
          tc "streaming Hosking fixed-seed" test_hosking_stream_regression;
        ] );
      ("properties", qcheck_cases);
    ]

(* Tests for the streaming multiplexer subsystem: Online_stats
   (Welford + P2), streaming sources, the shared-buffer multiplexer
   (including exact equivalence with Trace_sim), and Norros
   effective-bandwidth admission control. *)

module Rng = Ss_stats.Rng
module D = Ss_stats.Descriptive
module Online = Ss_stats.Online_stats
module Acf = Ss_fractal.Acf
module Hosking = Ss_fractal.Hosking
module Trace_sim = Ss_queueing.Trace_sim
module Lindley = Ss_queueing.Lindley
module Mc = Ss_queueing.Mc
module Source = Ss_mux.Source
module Mux = Ss_mux.Mux
module Mux_is = Ss_mux.Mux_is
module Admission = Ss_mux.Admission
module Fault = Ss_mux.Fault
module Police = Ss_mux.Police
module Pool = Ss_parallel.Pool
module Scene = Ss_video.Scene_source
module Gop = Ss_video.Gop
module Frame = Ss_video.Frame

let close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

(* Small fitted model shared by the source/mux tests (lazy: only paid
   when first needed). *)
let small_model =
  lazy
    (let trace =
       Scene.generate
         { Scene.default with frames = 8192; gop = Gop.of_string "I" }
         (Rng.create ~seed:11)
     in
     fst (Ss_core.Fit.fit ~max_lag:100 trace.Ss_video.Trace.sizes))

let small_mpeg =
  lazy
    (let trace =
       Scene.generate { Scene.default with frames = 6144 } (Rng.create ~seed:12)
     in
     Ss_core.Mpeg.fit ~i_max_lag:20 trace)

(* ------------------------------------------------------------------ *)
(* Online_stats: Welford accumulator                                    *)
(* ------------------------------------------------------------------ *)

let test_online_empty_raises () =
  let t = Online.create () in
  raises_invalid "mean of empty" (fun () -> Online.mean t);
  raises_invalid "variance of empty" (fun () -> Online.variance t);
  raises_invalid "min of empty" (fun () -> Online.min t);
  Online.add t 1.0;
  raises_invalid "sample variance of one" (fun () -> Online.sample_variance t)

let test_online_matches_descriptive () =
  let rng = Rng.create ~seed:21 in
  let xs = Array.init 5000 (fun _ -> Rng.exponential rng ~rate:0.01) in
  let t = Online.create () in
  Array.iter (Online.add t) xs;
  Alcotest.(check int) "count" 5000 (Online.count t);
  close ~eps:1e-7 "mean" (D.mean xs) (Online.mean t);
  close ~eps:1e-4 "variance" (D.variance xs) (Online.variance t);
  close ~eps:1e-4 "sample variance" (D.sample_variance xs) (Online.sample_variance t);
  close "min" (D.min xs) (Online.min t);
  close "max" (D.max xs) (Online.max t)

let prop_online_matches_descriptive =
  QCheck.Test.make ~name:"online mean/variance match Descriptive" ~count:100
    QCheck.(array_of_size Gen.(int_range 2 500) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let t = Online.create () in
      Array.iter (Online.add t) xs;
      let scale = 1.0 +. abs_float (D.mean xs) +. D.variance xs in
      abs_float (Online.mean t -. D.mean xs) < 1e-9 *. scale
      && abs_float (Online.variance t -. D.variance xs) < 1e-7 *. scale
      && Online.min t = D.min xs
      && Online.max t = D.max xs)

let prop_online_merge =
  QCheck.Test.make ~name:"merged accumulators = accumulator of concatenation" ~count:100
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 200) (float_range (-100.0) 100.0))
        (array_of_size Gen.(int_range 1 200) (float_range (-100.0) 100.0)))
    (fun (a, b) ->
      let ta = Online.create () and tb = Online.create () and tall = Online.create () in
      Array.iter (Online.add ta) a;
      Array.iter (Online.add tb) b;
      Array.iter (Online.add tall) (Array.append a b);
      let m = Online.merge ta tb in
      Online.count m = Online.count tall
      && abs_float (Online.mean m -. Online.mean tall) < 1e-9
      && abs_float (Online.variance m -. Online.variance tall) < 1e-6
      && Online.min m = Online.min tall
      && Online.max m = Online.max tall)

(* ------------------------------------------------------------------ *)
(* Online_stats: P2 quantile estimator                                  *)
(* ------------------------------------------------------------------ *)

let test_p2_invalid () =
  raises_invalid "p = 0" (fun () -> Online.P2.create ~p:0.0);
  raises_invalid "p = 1" (fun () -> Online.P2.create ~p:1.0);
  raises_invalid "empty quantile" (fun () -> Online.P2.quantile (Online.P2.create ~p:0.5))

let test_p2_small_n_exact () =
  let t = Online.P2.create ~p:0.5 in
  List.iter (Online.P2.add t) [ 3.0; 1.0; 2.0 ];
  close "exact small-n median" 2.0 (Online.P2.quantile t);
  let t9 = Online.P2.create ~p:0.9 in
  List.iter (Online.P2.add t9) [ 10.0; 20.0 ];
  (* type-7 0.9-quantile of {10,20} = 19 *)
  close "exact small-n 0.9" 19.0 (Online.P2.quantile t9)

let test_p2_small_n_order_statistics () =
  (* With fewer than five observations the estimate must be the exact
     type-7 empirical quantile for every p — identical to
     Descriptive.quantile on the sorted prefix. *)
  let xs = [| 7.0; -2.0; 11.0; 4.0 |] in
  for n = 1 to 4 do
    let prefix = Array.sub xs 0 n in
    List.iter
      (fun p ->
        let t = Online.P2.create ~p in
        Array.iter (Online.P2.add t) prefix;
        close ~eps:1e-12
          (Printf.sprintf "n=%d p=%g" n p)
          (D.quantile prefix p) (Online.P2.quantile t))
      [ 0.1; 0.25; 0.5; 0.75; 0.9 ]
  done

let test_p2_small_n_infinity_regression () =
  (* Regression: an infinite sample among the first five used to turn
     a small-n quantile into NaN via 0 * infinity in the type-7
     interpolation. At an integral rank the estimate must clamp to
     the order statistic itself. *)
  let t = Online.P2.create ~p:0.5 in
  List.iter (Online.P2.add t) [ 1.0; 2.0; infinity ];
  let q = Online.P2.quantile t in
  if Float.is_nan q then Alcotest.fail "median of {1,2,inf} is NaN";
  close "exact median despite infinity" 2.0 q;
  (* A rank that genuinely interpolates toward the infinite order
     statistic is infinite, not NaN. *)
  let t9 = Online.P2.create ~p:0.9 in
  List.iter (Online.P2.add t9) [ 1.0; 2.0; infinity ];
  let q9 = Online.P2.quantile t9 in
  if Float.is_nan q9 then Alcotest.fail "0.9-quantile is NaN";
  close "interpolated toward infinity" infinity q9;
  (* And a fully finite interpolation around the infinity stays
     finite. *)
  let t4 = Online.P2.create ~p:0.5 in
  List.iter (Online.P2.add t4) [ 1.0; 2.0; 3.0; infinity ];
  close "finite interior interpolation" 2.5 (Online.P2.quantile t4)

let p2_vs_exact ~seed ~n ~p sample tolerance =
  let rng = Rng.create ~seed in
  let xs = Array.init n (fun _ -> sample rng) in
  let t = Online.P2.create ~p in
  Array.iter (Online.P2.add t) xs;
  let exact = D.quantile xs p in
  let err = abs_float (Online.P2.quantile t -. exact) in
  if err > tolerance then
    Alcotest.failf "P2(%g) off by %g (exact %g, est %g)" p err exact (Online.P2.quantile t)

let test_p2_uniform () =
  (* Uniform(0,1): quantile = p; generous i.i.d. tolerances. *)
  List.iter
    (fun p -> p2_vs_exact ~seed:31 ~n:20_000 ~p (fun rng -> Rng.float rng) 0.01)
    [ 0.1; 0.5; 0.9; 0.99 ]

let test_p2_exponential () =
  List.iter
    (fun (p, tol) ->
      p2_vs_exact ~seed:32 ~n:20_000 ~p (fun rng -> Rng.exponential rng ~rate:1.0) tol)
    [ (0.5, 0.05); (0.9, 0.1); (0.99, 0.5) ]

let prop_p2_within_range =
  QCheck.Test.make ~name:"P2 estimate stays within observed range" ~count:100
    QCheck.(
      pair (float_range 0.05 0.95)
        (array_of_size Gen.(int_range 6 500) (float_range (-50.0) 50.0)))
    (fun (p, xs) ->
      let t = Online.P2.create ~p in
      Array.iter (Online.P2.add t) xs;
      let q = Online.P2.quantile t in
      q >= D.min xs && q <= D.max xs)

(* ------------------------------------------------------------------ *)
(* Online_stats.Vt: streaming variance-time H estimation               *)
(* ------------------------------------------------------------------ *)

let test_vt_estimates_fgn_hurst () =
  (* On an H = 0.9 FGN path the streaming estimate must land near the
     true H; variance-time is a biased-low estimator on finite paths,
     hence the asymmetric-looking but absolute band. *)
  let acf = Acf.fgn ~h:0.9 in
  let xs = Hosking.generate_truncated ~acf ~n:16384 ~max_order:64 (Rng.create ~seed:21) in
  let vt = Online.Vt.create () in
  Array.iter (Online.Vt.add vt) xs;
  Alcotest.(check int) "count" 16384 (Online.Vt.count vt);
  match Online.Vt.estimate vt with
  | None -> Alcotest.fail "estimate must be available after 16384 samples"
  | Some h -> if abs_float (h -. 0.9) > 0.12 then Alcotest.failf "H estimate %g far from 0.9" h

let test_vt_white_noise_is_half () =
  let rng = Rng.create ~seed:22 in
  let vt = Online.Vt.create () in
  for _ = 1 to 16384 do
    Online.Vt.add vt (Rng.gaussian rng)
  done;
  match Online.Vt.estimate vt with
  | None -> Alcotest.fail "estimate must be available"
  | Some h -> if abs_float (h -. 0.5) > 0.1 then Alcotest.failf "H estimate %g far from 0.5" h

let test_vt_warmup_and_invalid () =
  raises_invalid "levels < 3" (fun () -> ignore (Online.Vt.create ~levels:2 ()));
  let vt = Online.Vt.create () in
  (* Too few samples: no estimate rather than a garbage fit. *)
  for _ = 1 to 16 do
    Online.Vt.add vt 1.0
  done;
  (match Online.Vt.estimate vt with
  | None -> ()
  | Some h -> Alcotest.failf "estimate %g from 16 constant samples" h);
  (* A constant stream never has positive block variance. *)
  for _ = 1 to 4096 do
    Online.Vt.add vt 1.0
  done;
  match Online.Vt.estimate vt with
  | None -> ()
  | Some h -> Alcotest.failf "estimate %g from a constant stream" h

(* ------------------------------------------------------------------ *)
(* Source                                                               *)
(* ------------------------------------------------------------------ *)

let test_source_of_array () =
  let s = Source.of_array [| 1.0; 2.0; 3.0 |] in
  close "mean" 2.0 s.Source.mean;
  Alcotest.(check (list (float 1e-12)))
    "replays in order" [ 1.0; 2.0; 3.0 ]
    (List.init 3 (fun _ -> fst (Source.next s)));
  (match Source.next s with
  | exception Source.End_of_stream -> ()
  | _ -> Alcotest.fail "exhausted: expected End_of_stream");
  let c = Source.of_array ~cycle:true [| 5.0; 6.0 |] in
  Alcotest.(check (list (float 1e-12)))
    "cycles" [ 5.0; 6.0; 5.0 ]
    (List.init 3 (fun _ -> fst (Source.next c)))

let test_source_invalid () =
  raises_invalid "empty array" (fun () -> Source.of_array [||]);
  raises_invalid "bad hurst" (fun () ->
      Source.make ~name:"x" ~mean:1.0 ~sigma2:1.0 ~hurst:1.5 (fun () -> (0.0, 0)));
  raises_invalid "bad order" (fun () ->
      ignore
        (Source.background_stream ~acf:(Acf.fgn ~h:0.9) ~order:0 (Rng.create ~seed:1)
          : unit -> float))

let test_background_stream_matches_truncated_hosking () =
  (* The streaming generator is the truncated-Hosking path, slot by
     slot: same RNG seed, bit-identical output. *)
  let acf = Acf.fgn ~h:0.9 in
  let order = 32 and n = 200 in
  let reference =
    Hosking.generate_truncated ~acf ~n ~max_order:order (Rng.create ~seed:42)
  in
  let stream = Source.background_stream ~acf ~order (Rng.create ~seed:42) in
  Array.iteri (fun i x -> close ~eps:0.0 (Printf.sprintf "slot %d" i) x (stream ())) reference

let test_source_of_model_streams () =
  let m = Lazy.force small_model in
  let s = Source.of_model ~order:64 m (Rng.create ~seed:5) in
  close "mean bookkeeping" m.Ss_core.Model.mean s.Source.mean;
  if s.Source.sigma2 <= 0.0 then Alcotest.fail "sigma2 must be positive";
  for _ = 1 to 500 do
    let w, c = Source.next s in
    if w < 0.0 then Alcotest.fail "negative arrival";
    Alcotest.(check int) "class 0" 0 c
  done

let test_source_of_model_clamps_negatives () =
  (* Regression: a marginal whose inverse CDF dips below zero (plain
     normal) used to emit negative work, which Mux.run rejects with
     Invalid_argument mid-simulation. of_model must clamp at zero. *)
  let transform = Ss_fractal.Transform.make (Ss_stats.Dist.normal ~mean:0.5 ~std:2.0) in
  let m =
    {
      Ss_core.Model.transform;
      dependence = Ss_core.Model.Lrd_only 0.8;
      background = Acf.fgn ~h:0.8;
      hurst = 0.8;
      attenuation = Ss_fractal.Transform.attenuation transform;
      mean = 0.5;
    }
  in
  let s = Source.of_model ~order:32 m (Rng.create ~seed:7) in
  let saw_zero = ref false in
  for _ = 1 to 2000 do
    let w, _ = Source.next s in
    if w < 0.0 then Alcotest.fail "negative work escaped the clamp";
    if w = 0.0 then saw_zero := true
  done;
  if not !saw_zero then Alcotest.fail "marginal never dipped negative; test is vacuous";
  let s2 = Source.of_model ~order:32 m (Rng.create ~seed:7) in
  let (_ : Mux.report) = Mux.run ~service:1.0 ~slots:2000 [| s2 |] in
  ()

let test_source_table_for_error_prefix () =
  match Source.table_for ~acf:Acf.white_noise ~order:0 with
  | exception Invalid_argument msg ->
    let prefix = "Source.table_for" in
    let n = String.length prefix in
    if String.length msg < n || String.sub msg 0 n <> prefix then
      Alcotest.failf "wrong error prefix: %s" msg
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_source_twisted_zero_shift_identity () =
  (* With a zero shift the twisted generator performs the same float
     operations as the plain one: bit-identical output, and the probe
     reports every innovation. *)
  let m = Lazy.force small_model in
  let plain = Source.of_model ~order:48 m (Rng.create ~seed:8) in
  let probed = ref 0 in
  let twisted =
    Source.of_model_twisted ~order:48
      ~shift:(fun _ -> 0.0)
      ~probe:(fun ~k:_ ~innovation:_ -> incr probed)
      m (Rng.create ~seed:8)
  in
  for t = 0 to 299 do
    let w, _ = Source.next plain in
    let w', _ = Source.next twisted in
    if w <> w' then Alcotest.failf "slot %d: %h <> %h" t w w'
  done;
  Alcotest.(check int) "probe saw every innovation" 300 !probed

let test_source_of_mpeg_classes () =
  let m = Lazy.force small_mpeg in
  let gop = m.Ss_core.Mpeg.gop in
  let phase = 3 in
  let s = Source.of_mpeg ~order:32 ~phase ~priority:true m (Rng.create ~seed:6) in
  for t = 0 to (2 * Gop.length gop) - 1 do
    let _, c = Source.next s in
    let expect =
      match Gop.kind_at gop (phase + t) with Frame.I -> 0 | Frame.P -> 1 | Frame.B -> 2
    in
    Alcotest.(check int) (Printf.sprintf "class at slot %d" t) expect c
  done

(* Drain [n] slots of [s] through [next_block] at block size [bs],
   writing works/classes from offset 0. Fails on a short fill. *)
let drain_blocks s bs wbuf cbuf n =
  let got = ref 0 in
  while !got < n do
    let len = Stdlib.min bs (n - !got) in
    let f = Source.next_block s wbuf cbuf ~off:!got ~len in
    if f <> len then Alcotest.failf "short fill (%d of %d at slot %d)" f len !got;
    got := !got + f
  done

let bits = Int64.bits_of_float

let test_source_block_scalar_bit_identity () =
  (* The tentpole contract: for every order and block size, the block
     pull, the scalar pull on the block-backed source, and the
     pre-existing closure-based stream (of_model_twisted with zero
     shift) produce the same slots bit for bit. *)
  let m = Lazy.force small_model in
  List.iter
    (fun order ->
      let n = order + 300 in
      let legacy =
        Source.of_model_twisted ~order ~shift:(fun _ -> 0.0) m (Rng.create ~seed:4311)
      in
      let expect = Array.init n (fun _ -> fst (Source.next legacy)) in
      let scalar = Source.of_model ~order m (Rng.create ~seed:4311) in
      Array.iteri
        (fun i x ->
          let w, c = Source.next scalar in
          if c <> 0 then Alcotest.failf "order %d scalar slot %d: class %d" order i c;
          if bits w <> bits x then
            Alcotest.failf "order %d scalar slot %d: %h <> %h" order i x w)
        expect;
      List.iter
        (fun bs ->
          let s = Source.of_model ~order m (Rng.create ~seed:4311) in
          let wbuf = Array.make n nan and cbuf = Array.make n (-1) in
          drain_blocks s bs wbuf cbuf n;
          for i = 0 to n - 1 do
            if bits wbuf.(i) <> bits expect.(i) then
              Alcotest.failf "order %d block %d slot %d: %h <> %h" order bs i expect.(i)
                wbuf.(i);
            if cbuf.(i) <> 0 then
              Alcotest.failf "order %d block %d slot %d: class %d" order bs i cbuf.(i)
          done)
        [ 1; 7; 256 ])
    [ 64; 512 ]

let test_source_mpeg_block_scalar_bit_identity () =
  (* Same contract for MPEG sources, including the I/P/B class labels
     riding along with the work. *)
  let m = Lazy.force small_mpeg in
  let n = 400 in
  let mk () = Source.of_mpeg ~order:32 ~phase:2 ~priority:true m (Rng.create ~seed:4312) in
  let scalar = mk () in
  let expect = Array.init n (fun _ -> Source.next scalar) in
  List.iter
    (fun bs ->
      let s = mk () in
      let wbuf = Array.make n nan and cbuf = Array.make n (-1) in
      drain_blocks s bs wbuf cbuf n;
      Array.iteri
        (fun i (w, c) ->
          if bits wbuf.(i) <> bits w then
            Alcotest.failf "block %d slot %d: %h <> %h" bs i w wbuf.(i);
          if cbuf.(i) <> c then
            Alcotest.failf "block %d slot %d: class %d <> %d" bs i c cbuf.(i))
        expect)
    [ 1; 7; 256 ]

let test_source_block_scalar_interleave_coherent () =
  (* Scalar and block pulls on one source must consume the same
     underlying stream: mixing them at ragged boundaries still yields
     the closure-based stream's slots in order. *)
  let m = Lazy.force small_model in
  let order = 64 in
  let n = 257 in
  let legacy =
    Source.of_model_twisted ~order ~shift:(fun _ -> 0.0) m (Rng.create ~seed:4313)
  in
  let expect = Array.init n (fun _ -> fst (Source.next legacy)) in
  let s = Source.of_model ~order m (Rng.create ~seed:4313) in
  let wbuf = Array.make n nan and cbuf = Array.make n 0 in
  let i = ref 0 and step = ref 0 in
  while !i < n do
    if !step land 1 = 0 then begin
      let w, _ = Source.next s in
      wbuf.(!i) <- w;
      incr i
    end
    else begin
      let len = Stdlib.min (1 + (!step mod 5)) (n - !i) in
      i := !i + Source.next_block s wbuf cbuf ~off:!i ~len
    end;
    incr step
  done;
  for j = 0 to n - 1 do
    if bits wbuf.(j) <> bits expect.(j) then
      Alcotest.failf "slot %d differs under interleaved consumption" j
  done

let test_source_dh_backend_contract () =
  let m = Lazy.force small_model in
  raises_invalid "DH without horizon" (fun () ->
      Source.of_model ~backend:`Davies_harte m (Rng.create ~seed:1));
  raises_invalid "bad horizon" (fun () ->
      Source.of_model ~backend:`Davies_harte ~horizon:0 m (Rng.create ~seed:1));
  let horizon = 200 in
  let mk () =
    Source.of_model ~order:64 ~backend:`Davies_harte ~horizon m (Rng.create ~seed:4314)
  in
  (* Scalar and block consumption agree bit for bit, and the source
     departs cleanly once the fixed-length path is exhausted. *)
  let scalar = mk () in
  let expect = Array.init horizon (fun _ -> fst (Source.next scalar)) in
  (match Source.next scalar with
  | exception Source.End_of_stream -> ()
  | _ -> Alcotest.fail "DH source did not depart at its horizon");
  List.iter
    (fun bs ->
      let s = mk () in
      let wbuf = Array.make (horizon + bs) nan and cbuf = Array.make (horizon + bs) 0 in
      let got = ref 0 and short = ref false in
      while not !short do
        let f = Source.next_block s wbuf cbuf ~off:!got ~len:bs in
        got := !got + f;
        if f < bs then short := true
      done;
      Alcotest.(check int) "horizon slots" horizon !got;
      Alcotest.(check int) "drained source fills 0" 0
        (Source.next_block s wbuf cbuf ~off:0 ~len:bs);
      for i = 0 to horizon - 1 do
        if bits wbuf.(i) <> bits expect.(i) then
          Alcotest.failf "DH block %d slot %d differs from scalar" bs i
      done)
    [ 1; 7; 64 ];
  (* A finite horizon under the default Hosking backend departs the
     same way, short-filling at the boundary. *)
  let s = Source.of_model ~order:16 ~horizon:50 m (Rng.create ~seed:7) in
  let wbuf = Array.make 64 0.0 and cbuf = Array.make 64 0 in
  Alcotest.(check int) "Hosking horizon short fill" 50
    (Source.next_block s wbuf cbuf ~off:0 ~len:64)

let test_source_dh_backend_statistics () =
  (* The Davies-Harte backend must synthesize a background whose
     sample ACF tracks the composite-knee target across the knee and
     whose variance-time Hurst estimate recovers H. Single LRD paths
     carry O(n^{H-1}) statistical error, so both statistics are
     averaged over independent paths from one split stream. *)
  let hurst = 0.9 in
  let knee = 60 and lambda = 0.005 in
  let beta = 2.0 -. (2.0 *. hurst) in
  (* Jump-free at the knee so the circulant embedding stays positive:
     l chosen so the exponential and power pieces meet at k = knee. *)
  let l = exp (-.lambda *. float_of_int knee) *. (float_of_int knee ** beta) in
  let acf = Acf.composite ~knee ~lambda ~l ~beta in
  let n = 1 lsl 17 in
  let plan = Source.plan_for ~acf ~n in
  (* The background is exactly zero-mean by construction, so the
     uncentered estimator avoids the O(n^{2H-2}) wandering-mean bias
     of the centered sample ACF. *)
  let raw_acf xs lag =
    let num = ref 0.0 and den = ref 0.0 in
    for i = 0 to n - 1 - lag do
      num := !num +. (xs.(i) *. xs.(i + lag))
    done;
    for i = 0 to n - 1 do
      den := !den +. (xs.(i) *. xs.(i))
    done;
    !num /. float_of_int (n - lag) /. (!den /. float_of_int n)
  in
  let lags = [ 1; 10; 30; 59; 60; 61; 120; 240 ] in
  let reps = 16 in
  let rng = Rng.create ~seed:424242 in
  let acf_acc = Array.make (List.length lags) 0.0 in
  let h_acc = ref 0.0 in
  for _ = 1 to reps do
    let xs = Ss_fractal.Davies_harte.generate plan (Rng.split rng) in
    List.iteri (fun i lag -> acf_acc.(i) <- acf_acc.(i) +. raw_acf xs lag) lags;
    (* Aggregation window straddling the knee: below max_m = 1000
       every cell still averages >= 131 blocks, keeping the classic
       few-correlated-blocks downward bias of the VT plot small. *)
    let vt = Ss_fractal.Hurst.variance_time ~min_m:30 ~max_m:1000 xs in
    h_acc := !h_acc +. vt.Ss_fractal.Hurst.h
  done;
  List.iteri
    (fun i lag ->
      close ~eps:0.05
        (Printf.sprintf "sample ACF at lag %d" lag)
        (acf.Acf.r lag)
        (acf_acc.(i) /. float_of_int reps))
    lags;
  close ~eps:0.03 "variance-time H" hurst (!h_acc /. float_of_int reps)

let test_source_paxson_backend_contract () =
  let m = Lazy.force small_model in
  raises_invalid "Paxson without horizon" (fun () ->
      Source.of_model ~backend:`Paxson m (Rng.create ~seed:1));
  raises_invalid "bad horizon" (fun () ->
      Source.of_model ~backend:`Paxson ~horizon:0 m (Rng.create ~seed:1));
  let horizon = 200 in
  let mk () =
    Source.of_model ~order:64 ~backend:`Paxson ~horizon m (Rng.create ~seed:4316)
  in
  (* Same materialized-backend contract as Davies-Harte: scalar and
     block consumption agree bit for bit and the source departs
     cleanly at its horizon. *)
  let scalar = mk () in
  let expect = Array.init horizon (fun _ -> fst (Source.next scalar)) in
  (match Source.next scalar with
  | exception Source.End_of_stream -> ()
  | _ -> Alcotest.fail "Paxson source did not depart at its horizon");
  List.iter
    (fun bs ->
      let s = mk () in
      let wbuf = Array.make (horizon + bs) nan and cbuf = Array.make (horizon + bs) 0 in
      let got = ref 0 and short = ref false in
      while not !short do
        let f = Source.next_block s wbuf cbuf ~off:!got ~len:bs in
        got := !got + f;
        if f < bs then short := true
      done;
      Alcotest.(check int) "horizon slots" horizon !got;
      Alcotest.(check int) "drained source fills 0" 0
        (Source.next_block s wbuf cbuf ~off:0 ~len:bs);
      for i = 0 to horizon - 1 do
        if bits wbuf.(i) <> bits expect.(i) then
          Alcotest.failf "Paxson block %d slot %d differs from scalar" bs i
      done)
    [ 1; 7; 64 ];
  (* All arrivals are marginal workloads: finite and non-negative. *)
  Array.iteri
    (fun i w ->
      if not (Float.is_finite w) || w < 0.0 then
        Alcotest.failf "Paxson arrival %d invalid: %g" i w)
    expect

let test_source_relaxed_precision () =
  (* The relaxed tier is a different arithmetic, not a different
     process: same seed must give the same marginals up to rounding
     drift of the reassociated kernel and the erf-free CDF, and the
     tier itself must be deterministic. *)
  let m = Lazy.force small_model in
  let n = 256 in
  let take s = Array.init n (fun _ -> fst (Source.next s)) in
  let mk precision =
    Source.of_model ~order:32 ~precision m (Rng.create ~seed:4317)
  in
  let exact = take (mk `Exact) and relaxed = take (mk `Relaxed) in
  let relaxed' = take (mk `Relaxed) in
  for i = 0 to n - 1 do
    if bits relaxed.(i) <> bits relaxed'.(i) then
      Alcotest.failf "relaxed tier not deterministic at slot %d" i;
    let tol = 1e-5 *. (1.0 +. abs_float exact.(i)) in
    if abs_float (exact.(i) -. relaxed.(i)) > tol then
      Alcotest.failf "slot %d: exact %.17g vs relaxed %.17g" i exact.(i) relaxed.(i)
  done;
  (* `Exact` is the default: an explicit request is bit-identical to
     omitting the argument (this is the committed-fixture guarantee). *)
  let default = take (Source.of_model ~order:32 m (Rng.create ~seed:4317)) in
  let explicit = take (mk `Exact) in
  for i = 0 to n - 1 do
    if bits default.(i) <> bits explicit.(i) then
      Alcotest.failf "explicit `Exact differs from default at slot %d" i
  done;
  (* The tier composes with MPEG sources and materializing backends. *)
  let mp = Lazy.force small_mpeg in
  let s = Source.of_mpeg ~order:16 ~precision:`Relaxed mp (Rng.create ~seed:4318) in
  for _ = 1 to 64 do
    let w, _ = Source.next s in
    if not (Float.is_finite w) || w < 0.0 then Alcotest.fail "relaxed mpeg arrival invalid"
  done;
  let s =
    Source.of_model ~backend:`Paxson ~precision:`Relaxed ~horizon:32 m
      (Rng.create ~seed:4319)
  in
  for _ = 1 to 32 do
    let w, _ = Source.next s in
    if not (Float.is_finite w) || w < 0.0 then Alcotest.fail "relaxed paxson arrival invalid"
  done

let test_source_fft_kernel () =
  (* The FFT tier, like relaxed, is a different arithmetic over the
     same innovation stream: same seed must track the exact tier up
     to the rounding drift of the spectral reassociation (plus the
     relaxed marginal transform it rides), and must itself be
     deterministic. Order 160 > one partition, n spanning several
     blocks, so the overlap-save path (not just the sequential
     warmup) is exercised. *)
  let m = Lazy.force small_model in
  let n = 1024 in
  let take s = Array.init n (fun _ -> fst (Source.next s)) in
  let mk kernel = Source.of_model ~order:160 ~kernel m (Rng.create ~seed:4321) in
  let exact = take (mk `Exact) and fft = take (mk `Fft) in
  let fft' = take (mk `Fft) in
  for i = 0 to n - 1 do
    if bits fft.(i) <> bits fft'.(i) then
      Alcotest.failf "fft tier not deterministic at slot %d" i;
    let tol = 1e-5 *. (1.0 +. abs_float exact.(i)) in
    if abs_float (exact.(i) -. fft.(i)) > tol then
      Alcotest.failf "slot %d: exact %.17g vs fft %.17g" i exact.(i) fft.(i)
  done;
  (* ~kernel supersedes ~precision; agreeing spellings coincide
     bitwise, disagreeing ones refuse. *)
  let relaxed_via_kernel =
    take (Source.of_model ~order:160 ~kernel:`Relaxed m (Rng.create ~seed:4321))
  in
  let relaxed_via_precision =
    take
      (Source.of_model ~order:160 ~precision:`Relaxed ~kernel:`Relaxed m
         (Rng.create ~seed:4321))
  in
  for i = 0 to n - 1 do
    if bits relaxed_via_kernel.(i) <> bits relaxed_via_precision.(i) then
      Alcotest.failf "~kernel:`Relaxed differs from agreeing ~precision at slot %d" i
  done;
  raises_invalid "precision/kernel disagree" (fun () ->
      ignore (Source.of_model ~precision:`Relaxed ~kernel:`Fft m (Rng.create ~seed:1)));
  (* Composes with MPEG sources. *)
  let mp = Lazy.force small_mpeg in
  let s = Source.of_mpeg ~order:16 ~kernel:`Fft mp (Rng.create ~seed:4322) in
  for _ = 1 to 300 do
    let w, _ = Source.next s in
    if not (Float.is_finite w) || w < 0.0 then Alcotest.fail "fft mpeg arrival invalid"
  done

let test_mux_is_kernel_refusal () =
  let m = Lazy.force small_model in
  let cfg kernel () =
    ignore
      (Mux_is.make_config ~model:m ~sources:2 ~order:24 ~kernel ~service:3.0 ~buffer:8.0
         ~slots:64 ~twist:0.1 ())
  in
  raises_invalid "fft kernel refused by IS" (cfg `Fft);
  raises_invalid "relaxed kernel refused by IS" (cfg `Relaxed);
  (* The default tier still configures. *)
  cfg `Exact ()

let test_source_cache_stats_counters () =
  (* Counter contract on a capacity-1 cache: a repeated lookup is one
     hit, a fresh key is one miss, and inserting past the bound is
     exactly one eviction. Deltas, not absolutes — the caches are
     process-wide and other tests have already used them. *)
  let acf = Acf.fgn ~h:0.6634 in
  Source.set_table_cache_capacity 1;
  Fun.protect
    ~finally:(fun () -> Source.set_table_cache_capacity 16)
    (fun () ->
      let (_ : Hosking.Table.t) = Source.table_for ~acf ~order:21 in
      let s0 = List.assoc "hosking-table" (Source.cache_stats ()) in
      let (_ : Hosking.Table.t) = Source.table_for ~acf ~order:21 in
      let (_ : Hosking.Table.t) = Source.table_for ~acf ~order:22 in
      let s1 = List.assoc "hosking-table" (Source.cache_stats ()) in
      Alcotest.(check int) "one hit" 1 (s1.Source.hits - s0.Source.hits);
      Alcotest.(check int) "one miss" 1 (s1.Source.misses - s0.Source.misses);
      Alcotest.(check int) "one eviction" 1 (s1.Source.evictions - s0.Source.evictions));
  (* The FFT-plan cache reports through the same getter. *)
  let f0 = List.assoc "hosking-fft-plan" (Source.cache_stats ()) in
  let (_ : Hosking.Fft_plan.t) = Source.fft_plan_for ~acf ~order:21 in
  let (_ : Hosking.Fft_plan.t) = Source.fft_plan_for ~acf ~order:21 in
  let f1 = List.assoc "hosking-fft-plan" (Source.cache_stats ()) in
  Alcotest.(check int) "fft-plan miss then hit: one miss" 1 (f1.Source.misses - f0.Source.misses);
  Alcotest.(check int) "fft-plan miss then hit: one hit" 1 (f1.Source.hits - f0.Source.hits)

let test_source_table_cache_lru_eviction () =
  (* Eviction is invisible except for rebuild cost: a re-fit after the
     LRU bound forces a table out is bit-identical. *)
  let m = Lazy.force small_model in
  let acf = Ss_core.Model.background_acf m in
  let take n s = Array.init n (fun _ -> fst (Source.next s)) in
  let before = take 64 (Source.of_model ~order:24 m (Rng.create ~seed:4315)) in
  Source.set_table_cache_capacity 1;
  Fun.protect
    ~finally:(fun () -> Source.set_table_cache_capacity 16)
    (fun () ->
      Alcotest.(check int) "lowering evicts immediately" 1 (Source.table_cache_length ());
      (* Bring in a different (acf, order) key, evicting order 24. *)
      let (_ : Hosking.Table.t) = Source.table_for ~acf ~order:48 in
      Alcotest.(check int) "capacity bound respected" 1 (Source.table_cache_length ());
      let after = take 64 (Source.of_model ~order:24 m (Rng.create ~seed:4315)) in
      Array.iteri
        (fun i x ->
          if bits x <> bits before.(i) then
            Alcotest.failf "slot %d differs after eviction + re-fit" i)
        after);
  raises_invalid "capacity < 1" (fun () -> Source.set_table_cache_capacity 0)

let test_source_table_cache_concurrent_lookups () =
  (* Cold-start contention: the Durbin-Levinson fit happens outside
     the cache mutex, and same-key racers wait for the first fit
     instead of duplicating it — so simultaneous lookups of one key
     from many domains must all return the one physically-shared
     table and grow the cache by exactly one entry, while distinct
     keys fit concurrently into distinct entries. *)
  Source.set_table_cache_capacity 64;
  Fun.protect
    ~finally:(fun () -> Source.set_table_cache_capacity 16)
    (fun () ->
      let acf = Acf.fgn ~h:0.7123 in
      let order = 96 in
      let len0 = Source.table_cache_length () in
      let started = Atomic.make 0 in
      let lookup () =
        Atomic.incr started;
        (* Line the domains up on the key so the pending-build window
           is actually contested. *)
        while Atomic.get started < 4 do
          Domain.cpu_relax ()
        done;
        Source.table_for ~acf ~order
      in
      let workers = Array.init 3 (fun _ -> Domain.spawn lookup) in
      let mine = lookup () in
      let all = Array.append [| mine |] (Array.map Domain.join workers) in
      Array.iteri
        (fun i t ->
          if not (t == all.(0)) then Alcotest.failf "lookup %d returned a distinct table" i)
        all;
      Alcotest.(check int) "one entry added" (len0 + 1) (Source.table_cache_length ());
      let d1 = Domain.spawn (fun () -> Source.table_for ~acf:(Acf.fgn ~h:0.81) ~order:64) in
      let t2 = Source.table_for ~acf:(Acf.fgn ~h:0.63) ~order:64 in
      let t1 = Domain.join d1 in
      if t1 == t2 then Alcotest.fail "distinct keys shared a table";
      Alcotest.(check int) "two more entries" (len0 + 3) (Source.table_cache_length ()))

(* ------------------------------------------------------------------ *)
(* Mux                                                                  *)
(* ------------------------------------------------------------------ *)

let test_mux_matches_trace_sim () =
  (* Infinite buffer, one source: the streaming multiplexer IS the
     Lindley recursion of Trace_sim.queue_path, exactly. *)
  let rng = Rng.create ~seed:51 in
  let arrivals = Array.init 5000 (fun _ -> Rng.exponential rng ~rate:0.001) in
  let utilization = 0.8 in
  let expected = Trace_sim.queue_path ~arrivals ~utilization in
  let service =
    Lindley.utilization_service ~mean_arrival:(D.mean arrivals) ~utilization
  in
  let got = Array.make (Array.length arrivals) nan in
  let _report =
    Mux.run
      ~probe:(fun t q -> got.(t) <- q)
      ~service ~slots:(Array.length arrivals)
      [| Source.of_array arrivals |]
  in
  Array.iteri (fun i q -> close ~eps:0.0 (Printf.sprintf "slot %d" i) q got.(i)) expected

let two_constant_sources ~w0 ~w1 ~c0 ~c1 =
  [|
    Source.make ~name:"hi" ~mean:w0 ~sigma2:0.0 ~hurst:0.5 (fun () -> (w0, c0));
    Source.make ~name:"lo" ~mean:w1 ~sigma2:0.0 ~hurst:0.5 (fun () -> (w1, c1));
  |]

let test_mux_conservation () =
  let rng = Rng.create ~seed:52 in
  let mk () =
    Source.make ~name:"exp" ~mean:1.0 ~sigma2:1.0 ~hurst:0.5 (fun () ->
        (Rng.exponential rng ~rate:1.0, 0))
  in
  let r = Mux.run ~buffer:2.0 ~service:1.1 ~slots:2000 [| mk (); mk () |] in
  (* offered = admitted + lost, per source and in aggregate *)
  Array.iter
    (fun s ->
      close ~eps:1e-6 ("conservation " ^ s.Mux.name) s.Mux.offered
        (s.Mux.admitted +. s.Mux.lost))
    r.Mux.per_source;
  if r.Mux.loss_fraction <= 0.0 then Alcotest.fail "overloaded finite buffer must lose work";
  if r.Mux.carried_utilization > 1.0 +. 1e-9 then Alcotest.fail "carried load above capacity"

let test_mux_buffer_bounds_queue () =
  let rng = Rng.create ~seed:53 in
  let src =
    Source.make ~name:"exp" ~mean:1.0 ~sigma2:1.0 ~hurst:0.5 (fun () ->
        (Rng.exponential rng ~rate:0.5, 0))
  in
  let buffer = 3.0 in
  let r =
    Mux.run ~buffer
      ~probe:(fun t q ->
        if q > buffer +. 1e-9 then Alcotest.failf "queue %g above buffer at slot %d" q t)
      ~service:1.0 ~slots:2000 [| src |]
  in
  close ~eps:1e-9 "max queue bounded" (Stdlib.min r.Mux.max_queue buffer) r.Mux.max_queue

let test_mux_no_loss_when_underloaded () =
  let r =
    Mux.run ~buffer:10.0 ~service:3.0 ~slots:100 (two_constant_sources ~w0:1.0 ~w1:1.0 ~c0:0 ~c1:0)
  in
  close "no loss" 0.0 r.Mux.loss_fraction;
  close "offered utilization" (2.0 /. 3.0) r.Mux.offered_utilization;
  close "carried = offered" r.Mux.offered_utilization r.Mux.carried_utilization

let test_mux_priority_shields_high_class () =
  (* Two constant sources at double the capacity: the low class bears
     all the loss the high class avoids. *)
  let r =
    Mux.run ~buffer:0.5 ~service:1.0
      ~slots:500
      (two_constant_sources ~w0:1.0 ~w1:1.0 ~c0:0 ~c1:1)
  in
  let hi = r.Mux.per_source.(0) and lo = r.Mux.per_source.(1) in
  close ~eps:1e-9 "high class lossless" 0.0 hi.Mux.loss_fraction;
  if lo.Mux.loss_fraction < 0.4 then
    Alcotest.failf "low class should bear the loss, got %g" lo.Mux.loss_fraction

let test_mux_fifo_shares_loss () =
  (* Same overload without classes: the fluid model splits loss
     equally between identical sources. *)
  let r =
    Mux.run ~buffer:0.5 ~service:1.0 ~slots:500
      (two_constant_sources ~w0:1.0 ~w1:1.0 ~c0:0 ~c1:0)
  in
  let a = r.Mux.per_source.(0) and b = r.Mux.per_source.(1) in
  close ~eps:1e-9 "equal sharing" a.Mux.loss_fraction b.Mux.loss_fraction;
  if a.Mux.loss_fraction <= 0.0 then Alcotest.fail "expected loss under overload"

let test_mux_zero_buffer_semantics () =
  (* buffer = 0.0 is the bufferless-statistical-multiplexing limit,
     not a degenerate case: the admission room of a slot is
     [buffer + service - q] = [service] (q can never build up), so
     every slot loses exactly [max 0 (offered - service)], the queue
     stays pinned at zero, and per-source loss follows the fluid
     proportional split. Pinned against hand-computed totals and the
     reference engine so the sharded path cannot drift. *)
  let a0 = [| 1.0; 3.0; 0.5; 2.0; 0.0; 4.0 |] in
  let a1 = [| 0.5; 1.0; 2.5; 0.0; 1.0; 2.0 |] in
  let slots = Array.length a0 in
  let service = 2.0 in
  let mk () = [| Source.of_array ~name:"s0" a0; Source.of_array ~name:"s1" a1 |] in
  let r = Mux.run ~buffer:0.0 ~service ~slots (mk ()) in
  (* Queue never builds: q' = max 0 (admitted - service) <= 0. *)
  close ~eps:0.0 "mean queue" 0.0 r.Mux.mean_queue;
  close ~eps:0.0 "max queue" 0.0 r.Mux.max_queue;
  (* Hand-computed per-slot loss: max 0 (offered - service), split
     proportionally to each source's offered work. *)
  let lost0 = ref 0.0 and lost1 = ref 0.0 in
  for t = 0 to slots - 1 do
    let o = a0.(t) +. a1.(t) in
    if o > service then begin
      let drop_frac = (o -. service) /. o in
      lost0 := !lost0 +. (a0.(t) *. drop_frac);
      lost1 := !lost1 +. (a1.(t) *. drop_frac)
    end
  done;
  let s0 = r.Mux.per_source.(0) and s1 = r.Mux.per_source.(1) in
  close ~eps:1e-12 "source 0 loss" !lost0 s0.Mux.lost;
  close ~eps:1e-12 "source 1 loss" !lost1 s1.Mux.lost;
  let offered = Array.fold_left ( +. ) 0.0 a0 +. Array.fold_left ( +. ) 0.0 a1 in
  close ~eps:1e-12 "aggregate loss fraction" ((!lost0 +. !lost1) /. offered)
    r.Mux.loss_fraction;
  (* Work conservation survives the boundary. *)
  close ~eps:1e-12 "conservation s0" s0.Mux.offered (s0.Mux.admitted +. s0.Mux.lost);
  close ~eps:1e-12 "conservation s1" s1.Mux.offered (s1.Mux.admitted +. s1.Mux.lost);
  (* Sharded engine and reference engine agree bitwise at the
     boundary, at every shard count. *)
  let reference = Mux.run_reference ~buffer:0.0 ~service ~slots (mk ()) in
  if not (Mux.equal_report reference r) then
    Alcotest.fail "zero-buffer: default run differs from reference";
  List.iter
    (fun shards ->
      let sharded = Mux.run ~shards ~buffer:0.0 ~service ~slots (mk ()) in
      if not (Mux.equal_report reference sharded) then
        Alcotest.failf "zero-buffer: %d-shard run differs from reference" shards)
    [ 1; 2; 3 ]

let test_mux_overflow_curve_monotone () =
  let rng = Rng.create ~seed:54 in
  let src =
    Source.make ~name:"exp" ~mean:1.0 ~sigma2:1.0 ~hurst:0.5 (fun () ->
        (Rng.exponential rng ~rate:1.0, 0))
  in
  let r =
    Mux.run ~thresholds:[ 0.0; 1.0; 2.0; 4.0; 8.0 ] ~service:1.25 ~slots:20_000 [| src |]
  in
  let rec check = function
    | (_, p1) :: ((_, p2) :: _ as rest) ->
      if p2 > p1 +. 1e-12 then Alcotest.fail "overflow curve not decreasing";
      check rest
    | _ -> ()
  in
  check r.Mux.overflow;
  (* threshold 0 exceedance = fraction of busy slots, must be positive here *)
  if snd (List.hd r.Mux.overflow) <= 0.0 then Alcotest.fail "empty overflow statistics"

let test_mux_queue_quantiles_ordered () =
  let rng = Rng.create ~seed:55 in
  let src =
    Source.make ~name:"exp" ~mean:1.0 ~sigma2:1.0 ~hurst:0.5 (fun () ->
        (Rng.exponential rng ~rate:1.0, 0))
  in
  let r = Mux.run ~quantiles:[ 0.5; 0.9; 0.99 ] ~service:1.25 ~slots:10_000 [| src |] in
  (match r.Mux.queue_quantiles with
  | [ (_, q50); (_, q90); (_, q99) ] ->
    if not (q50 <= q90 && q90 <= q99) then
      Alcotest.failf "queue quantiles not ordered: %g %g %g" q50 q90 q99
  | _ -> Alcotest.fail "expected three quantiles");
  (* delay quantiles are queue quantiles over service *)
  List.iter2
    (fun (_, q) (_, d) -> close ~eps:1e-6 "delay = queue/service" (q /. 1.25) d)
    r.Mux.queue_quantiles r.Mux.delay_quantiles

let test_mux_p2_quantiles_vs_exact_on_lrd_stream () =
  (* The P2 estimates reported by Mux.run must track the exact sorted
     quantiles of the very queue-length stream they were fed — here a
     long-range-dependent one collected through the probe. *)
  let bg = Source.background_stream ~acf:(Acf.fgn ~h:0.75) ~order:64 (Rng.create ~seed:77) in
  let src =
    Source.make ~name:"lrd" ~mean:1.0 ~sigma2:1.0 ~hurst:0.75 (fun () ->
        (Stdlib.max 0.0 (1.0 +. bg ()), 0))
  in
  let slots = 30_000 in
  let qs = Array.make slots 0.0 in
  let r =
    Mux.run
      ~quantiles:[ 0.5; 0.9; 0.99 ]
      ~service:1.5 ~slots
      ~probe:(fun t q -> qs.(t) <- q)
      [| src |]
  in
  List.iter
    (fun (p, est) ->
      let exact = D.quantile qs p in
      (* P2 is an approximation and LRD streams converge slowly: the
         tail quantile gets a wider band than the median. *)
      let tol = if p > 0.95 then 0.25 else 0.15 in
      let scale = Stdlib.max 1.0 exact in
      if abs_float (est -. exact) /. scale > tol then
        Alcotest.failf "P2 q(%.2f) = %g vs exact %g" p est exact)
    r.Mux.queue_quantiles

let test_mux_invalid () =
  let src = Source.of_array ~cycle:true [| 1.0 |] in
  raises_invalid "no sources" (fun () -> Mux.run ~service:1.0 ~slots:10 [||]);
  raises_invalid "bad slots" (fun () -> Mux.run ~service:1.0 ~slots:0 [| src |]);
  raises_invalid "bad service" (fun () -> Mux.run ~service:0.0 ~slots:10 [| src |]);
  raises_invalid "negative buffer" (fun () ->
      Mux.run ~buffer:(-1.0) ~service:1.0 ~slots:10 [| src |]);
  raises_invalid "negative threshold" (fun () ->
      Mux.run ~thresholds:[ -1.0 ] ~service:1.0 ~slots:10 [| src |]);
  raises_invalid "bad class" (fun () ->
      Mux.run ~service:1.0 ~slots:10
        [| Source.make ~name:"bad" ~mean:0.0 ~sigma2:0.0 ~hurst:0.5 (fun () -> (1.0, 64)) |])

(* ------------------------------------------------------------------ *)
(* Mux: graceful degradation                                            *)
(* ------------------------------------------------------------------ *)

let test_mux_source_departure () =
  (* A finite source departs cleanly mid-run: the run continues, the
     departure slot is recorded, and the departed source offers
     nothing afterwards. *)
  let finite = Source.of_array ~name:"finite" (Array.make 50 1.0) in
  let steady = Source.of_array ~name:"steady" ~cycle:true [| 1.0 |] in
  let r = Mux.run ~service:4.0 ~slots:200 [| finite; steady |] in
  Alcotest.(check (option int)) "departure slot" (Some 50) r.Mux.per_source.(0).Mux.departed_at;
  Alcotest.(check (option int)) "steady stays" None r.Mux.per_source.(1).Mux.departed_at;
  close "finite offered its 50 slots" 50.0 r.Mux.per_source.(0).Mux.offered;
  close "steady offered all 200" 200.0 r.Mux.per_source.(1).Mux.offered

let test_mux_corrupt_work_is_isolated () =
  (* NaN / negative / infinite work must not crash the run or poison
     the Lindley recursion: each corrupt slot is zeroed and counted. *)
  let t = ref 0 in
  let dirty =
    Source.make ~name:"dirty" ~mean:1.0 ~sigma2:0.0 ~hurst:0.5 (fun () ->
        incr t;
        match !t mod 4 with
        | 1 -> (Float.nan, 0)
        | 2 -> (-3.0, 0)
        | 3 -> (infinity, 0)
        | _ -> (1.0, 0))
  in
  let clean = Source.of_array ~name:"clean" ~cycle:true [| 2.0 |] in
  let r = Mux.run ~service:2.0 ~slots:100 [| dirty; clean |] in
  Alcotest.(check int) "corrupt slots" 75 r.Mux.per_source.(0).Mux.corrupt_slots;
  Alcotest.(check int) "clean source untouched" 0 r.Mux.per_source.(1).Mux.corrupt_slots;
  if Float.is_nan r.Mux.mean_queue then Alcotest.fail "mean queue poisoned by NaN";
  if Float.is_nan r.Mux.max_queue then Alcotest.fail "max queue poisoned by NaN";
  (* 25 good slots of 1.0: only the sane work reaches the buffer. *)
  close "dirty offered" 25.0 r.Mux.per_source.(0).Mux.offered;
  close "clean offered" 200.0 r.Mux.per_source.(1).Mux.offered

let test_mux_class_delay_single_class_exact () =
  (* With a single class and an infinite buffer the class-0 backlog
     replays the Lindley recursion bit for bit, so the class-0 delay
     quantiles equal the global ones exactly. *)
  let m = Lazy.force small_model in
  let src = Source.of_model ~order:32 m (Rng.create ~seed:31) in
  let r = Mux.run ~service:(1.05 *. m.Ss_core.Model.mean) ~slots:4000 [| src |] in
  match r.Mux.class_delay_quantiles with
  | [ (0, qs) ] ->
    List.iter2
      (fun (p, d) (p', d') ->
        close ~eps:0.0 (Printf.sprintf "p level %g" p) p p';
        close ~eps:0.0 (Printf.sprintf "class-0 delay q(%g)" p) d d')
      r.Mux.delay_quantiles qs
  | l -> Alcotest.failf "expected exactly class 0, got %d classes" (List.length l)

let test_mux_class_delay_priority_ordering () =
  (* Under overload, a strict-priority high class must see no larger
     virtual delay than the low class at every tracked quantile. *)
  let hi = Source.of_array ~name:"hi" ~cycle:true [| 1.0 |] in
  let t = ref 0 in
  let lo =
    Source.make ~name:"lo" ~mean:1.5 ~sigma2:0.25 ~hurst:0.5 (fun () ->
        incr t;
        ((if !t mod 3 = 0 then 3.0 else 1.0), 1))
  in
  let r = Mux.run ~buffer:20.0 ~service:2.2 ~slots:5000 [| hi; lo |] in
  match r.Mux.class_delay_quantiles with
  | [ (0, q0); (1, q1) ] ->
    List.iter2
      (fun (p, d0) (_, d1) ->
        if d0 > d1 +. 1e-9 then
          Alcotest.failf "class 0 delay q(%g) = %g exceeds class 1 = %g" p d0 d1)
      q0 q1
  | l -> Alcotest.failf "expected classes 0 and 1, got %d classes" (List.length l)

(* ------------------------------------------------------------------ *)
(* Mux: per-source service/delay trajectory (?trajectory hook)          *)
(* ------------------------------------------------------------------ *)

(* Capture the hook's (reused) per-slot arrays into slot-major copies. *)
let capture_trajectory ~slots ~n =
  let served = Array.make_matrix slots n 0.0 in
  let delays = Array.make_matrix slots n 0.0 in
  let sink ~slot ~served:s ~delays:d =
    Array.blit s 0 served.(slot) 0 n;
    Array.blit d 0 delays.(slot) 0 n
  in
  (served, delays, sink)

let test_mux_trajectory_conservation () =
  (* Two finite sources, one per priority class; once both depart the
     queue drains, so each source's captured served work must sum to
     exactly what it offered, and every slot's served total must
     match the Lindley bookkeeping (q_{t-1} + arrivals - q_t). *)
  let n0 = 60 in
  let a0 = Array.init n0 (fun t -> float_of_int (1 + (t mod 5))) in
  let a1 = Array.init n0 (fun t -> if t mod 3 = 0 then 4.0 else 0.5) in
  let k1 = ref 0 in
  let src0 = Source.of_array ~name:"s0" a0 in
  let src1 =
    Source.make ~name:"s1" ~mean:1.7 ~sigma2:0.5 ~hurst:0.5 (fun () ->
        if !k1 >= n0 then raise Source.End_of_stream
        else begin
          let w = a1.(!k1) in
          incr k1;
          (w, 1)
        end)
  in
  let slots = 200 and service = 3.0 in
  let served, _, sink = capture_trajectory ~slots ~n:2 in
  let q_path = Array.make slots 0.0 in
  let r =
    Mux.run ~trajectory:sink ~probe:(fun t q -> q_path.(t) <- q) ~service
      ~slots [| src0; src1 |]
  in
  for i = 0 to 1 do
    let total = ref 0.0 in
    for t = 0 to slots - 1 do
      total := !total +. served.(t).(i)
    done;
    close ~eps:1e-6
      (Printf.sprintf "source %d served = admitted" i)
      r.Mux.per_source.(i).Mux.admitted !total
  done;
  for t = 0 to slots - 1 do
    let arrivals =
      (if t < n0 then a0.(t) else 0.0) +. if t < n0 then a1.(t) else 0.0
    in
    let prev = if t = 0 then 0.0 else q_path.(t - 1) in
    close ~eps:1e-9
      (Printf.sprintf "slot %d conservation" t)
      (prev +. arrivals -. q_path.(t))
      (served.(t).(0) +. served.(t).(1))
  done

let test_mux_trajectory_does_not_perturb_report () =
  (* The hook is strictly observational: a run with a sink attached
     must produce the bit-identical report of a run without one. *)
  let m = Lazy.force small_model in
  let mk seed = Source.of_model ~order:32 m (Rng.create ~seed) in
  let service = 2.1 *. m.Ss_core.Model.mean and slots = 3000 in
  let plain = Mux.run ~service ~slots [| mk 41; mk 42 |] in
  let _, _, sink = capture_trajectory ~slots ~n:2 in
  let hooked = Mux.run ~trajectory:sink ~service ~slots [| mk 41; mk 42 |] in
  let same l x y =
    if Int64.bits_of_float x <> Int64.bits_of_float y then
      Alcotest.failf "%s perturbed by trajectory hook: %.17g vs %.17g" l x y
  in
  same "mean queue" plain.Mux.mean_queue hooked.Mux.mean_queue;
  same "max queue" plain.Mux.max_queue hooked.Mux.max_queue;
  same "utilization" plain.Mux.carried_utilization hooked.Mux.carried_utilization;
  List.iter2
    (fun (p, d) (_, d') -> same (Printf.sprintf "delay q(%g)" p) d d')
    plain.Mux.delay_quantiles hooked.Mux.delay_quantiles

let test_mux_trajectory_single_source_delay_exact () =
  (* With one class-0 source the virtual delay is the Lindley queue
     over service, bit for bit. *)
  let src = Source.of_array ~cycle:true (Array.init 37 (fun t -> float_of_int (t mod 7))) in
  let slots = 500 and service = 3.1 in
  let _, delays, sink = capture_trajectory ~slots ~n:1 in
  let q_path = Array.make slots 0.0 in
  let _ =
    Mux.run ~trajectory:sink ~probe:(fun t q -> q_path.(t) <- q) ~service
      ~slots [| src |]
  in
  for t = 0 to slots - 1 do
    if Int64.bits_of_float delays.(t).(0)
       <> Int64.bits_of_float (q_path.(t) /. service)
    then
      Alcotest.failf "slot %d: delay %.17g <> q/service %.17g" t
        delays.(t).(0)
        (q_path.(t) /. service)
  done

let test_mux_trajectory_golden () =
  (* Fixed-seed golden values for the per-source trajectory — the
     same numbers `vbrsim mux --csv` emits as `slot,source,served,
     delay_slots` rows. Guards the serialization contract against
     silent drift in the replay or the processor-sharing split. *)
  let mk seed cls =
    let rng = Rng.create ~seed in
    Source.make ~name:"g" ~mean:1.0 ~sigma2:1.0 ~hurst:0.5 (fun () ->
        (Rng.exponential rng ~rate:1.0, cls))
  in
  let slots = 48 in
  let served, delays, sink = capture_trajectory ~slots ~n:2 in
  let _ = Mux.run ~trajectory:sink ~service:1.9 ~slots [| mk 77 0; mk 78 1 |] in
  let got =
    List.concat_map
      (fun t ->
        List.concat_map
          (fun i ->
            [ Printf.sprintf "%d,%d,%g,%g" t i served.(t).(i) delays.(t).(i) ])
          [ 0; 1 ])
      [ 20; 21; 22; 23 ]
  in
  let expected =
    [
      "20,0,0.218989,0";
      "20,1,1.68101,1.23982";
      "21,0,1.9,0.111152";
      "21,1,0,2.17226";
      "22,0,0.531302,0";
      "22,1,1.3687,1.69794";
      "23,0,0.990778,0";
      "23,1,0.909222,1.90169";
    ]
  in
  List.iteri
    (fun j g ->
      let e = try List.nth expected j with _ -> "<missing>" in
      if not (String.equal e g) then
        Alcotest.failf "trajectory row %d: expected %s, got %s" j e g)
    got

let test_mux_class_delay_bruteforce_3class () =
  (* Cross-check the streaming class-delay quantiles against a
     brute-force O(slots^2) reference that recomputes the strict-
     priority backlog recursion from slot 0 for every slot, on a
     fixed-seed 3-class stream. The reference mirrors the multiplexer
     float for float, so the comparison is exact. *)
  let slots = 260 and service = 3.0 in
  let rng = Rng.create ~seed:123 in
  let w =
    Array.init 3 (fun c ->
        let mean = [| 0.9; 1.0; 1.3 |].(c) in
        Array.init slots (fun _ -> Rng.exponential rng ~rate:(1.0 /. mean)))
  in
  let mk c =
    let k = ref 0 in
    Source.make
      ~name:(Printf.sprintf "c%d" c)
      ~mean:1.0 ~sigma2:1.0 ~hurst:0.5
      (fun () ->
        let j = !k in
        incr k;
        ((if j < slots then w.(c).(j) else 0.0), c))
  in
  let quantiles = [ 0.5; 0.9; 0.99 ] in
  let r = Mux.run ~quantiles ~service ~slots [| mk 0; mk 1; mk 2 |] in
  (* Reference estimators, fed in the same order the mux feeds its
     own: per slot, classes 0..2, quantile levels in list order. *)
  let fmin (a : float) b = if a <= b then a else b in
  let est =
    Array.init 3 (fun _ ->
        Array.of_list (List.map (fun p -> Online.P2.create ~p) quantiles))
  in
  let backlog = Array.make 3 0.0 in
  for t = 0 to slots - 1 do
    (* Recompute the whole backlog state from scratch: O(slots^2). *)
    Array.fill backlog 0 3 0.0;
    for j = 0 to t do
      let rem = ref service in
      for c = 0 to 2 do
        let b = backlog.(c) +. (0.0 +. w.(c).(j)) in
        let take = fmin !rem b in
        backlog.(c) <- b -. take;
        rem := !rem -. take
      done
    done;
    let prefix = ref 0.0 in
    for c = 0 to 2 do
      prefix := !prefix +. backlog.(c);
      Array.iter (fun e -> Online.P2.add e (!prefix /. service)) est.(c)
    done
  done;
  List.iter
    (fun (c, qs) ->
      List.iteri
        (fun j (p, d) ->
          close ~eps:0.0
            (Printf.sprintf "class %d q(%g)" c p)
            (Online.P2.quantile est.(c).(j))
            d)
        qs)
    r.Mux.class_delay_quantiles;
  Alcotest.(check int) "three classes tracked" 3
    (List.length r.Mux.class_delay_quantiles)

let test_mux_hot_loop_allocation () =
  (* This PR hoisted the per-slot closures and tuples out of the
     sequential admission loop; everything that still allocates is
     per-block or per-report. Guard the budget so a regression that
     reintroduces per-slot boxing fails loudly. The bound is minor
     words per slot, with generous headroom over the measured value
     (well under 1 on a non-flambda build). *)
  let arr = Array.init 96 (fun i -> float_of_int (1 + (i mod 7))) in
  let mk () = Source.of_array ~cycle:true arr in
  let measure ?shards sources =
    let run slots =
      Mux.run ?shards ~quantiles:[] ~service:(3.0 *. float_of_int (Array.length sources))
        ~slots sources
    in
    let (_ : Mux.report) = run 1024 in
    let slots = 65536 in
    let w0 = Gc.minor_words () in
    let (_ : Mux.report) = run slots in
    (Gc.minor_words () -. w0) /. float_of_int slots
  in
  let one = measure [| mk () |] in
  let three = measure [| mk (); mk (); mk () |] in
  let sharded = measure ~shards:4 [| mk (); mk (); mk () |] in
  (* ~6 words/slot of per-slot module-boundary float boxing remain on
     a non-flambda build (queue/delay accumulators); bound it with
     headroom. *)
  if one > 8.0 then Alcotest.failf "Mux.run allocates %.2f minor words per slot" one;
  (* The admission loop must be allocation-free per source: tripling
     the sources may not add per-slot allocation beyond noise. *)
  if three -. one > 1.0 then
    Alcotest.failf "admission loop allocates per source: %.2f vs %.2f words/slot" three one;
  (* Splitting the staging across shards may not reintroduce per-slot
     allocation either: shard state is per-run, blocks amortize. *)
  if sharded -. three > 1.0 then
    Alcotest.failf "sharding allocates per slot: %.2f vs %.2f words/slot" sharded three

(* ------------------------------------------------------------------ *)
(* Sharded engine: bit-identity across shard counts                     *)
(* ------------------------------------------------------------------ *)

(* Mixed population for the shard-identity tests: cycling replays,
   finite sources that depart mid-run, multi-class pulls, and sources
   that emit corrupt slots — every per-source staging path the
   sharded engine must reproduce. Stateful, so rebuilt from the seed
   for every run. *)
let shard_sources ~n ~seed =
  let rng = Rng.create ~seed in
  Array.init n (fun i ->
      let len = 48 + (i mod 17) in
      let arr =
        Array.init len (fun _ ->
            Rng.exponential rng ~rate:(1.0 /. (0.5 +. float_of_int (i mod 3))))
      in
      let name = Printf.sprintf "s%d" i in
      match i mod 7 with
      | 3 -> Source.of_array ~name ~cycle:false arr (* departs after len slots *)
      | 5 ->
          let k = ref 0 in
          Source.make ~name ~mean:1.0 ~sigma2:1.0 ~hurst:0.5 (fun () ->
              let j = !k in
              incr k;
              (arr.(j mod len), j mod 3))
      | 6 ->
          let k = ref 0 in
          Source.make ~name ~mean:1.0 ~sigma2:1.0 ~hurst:0.5 (fun () ->
              let j = !k in
              incr k;
              ( (if j mod 29 = 7 then nan
                 else if j mod 31 = 5 then -1.0
                 else arr.(j mod len)),
                0 ))
      | _ -> Source.of_array ~name ~cycle:true arr)

let test_mux_sharded_bit_identity () =
  (* The sharded engine must reproduce the reference engine bitwise at
     every shard count — including counts that do not divide the
     source count — on a finite buffer with thresholds, departures,
     corrupt slots and several priority classes in play. *)
  List.iter
    (fun n ->
      let slots = 300 in
      let service = 1.1 *. float_of_int n in
      let buffer = 4.0 *. float_of_int n in
      let thresholds = [ 0.0; 1.0; 0.5 *. float_of_int n ] in
      let reference =
        Mux.run_reference ~buffer ~thresholds ~service ~slots
          (shard_sources ~n ~seed:(1000 + n))
      in
      List.iter
        (fun shards ->
          let r =
            Mux.run ~shards ~buffer ~thresholds ~service ~slots
              (shard_sources ~n ~seed:(1000 + n))
          in
          if not (Mux.equal_report reference r) then
            Alcotest.failf "n=%d shards=%d differs from the reference engine" n shards)
        [ 1; 2; 4; 7 ])
    [ 5; 64; 513 ]

let test_mux_sharded_pool_bit_identity () =
  (* Shards dispatched over a real domain pool: still bitwise equal to
     the sequential reference engine, at divisible and non-divisible
     shard counts and at the default shard count (the pool size). *)
  let n = 64 and slots = 400 in
  let service = 1.05 *. float_of_int n and buffer = 5.0 *. float_of_int n in
  let mk () = shard_sources ~n ~seed:7064 in
  let reference = Mux.run_reference ~buffer ~service ~slots (mk ()) in
  let pool = Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      List.iter
        (fun shards ->
          let r = Mux.run ~pool ?shards ~buffer ~service ~slots (mk ()) in
          if not (Mux.equal_report reference r) then
            Alcotest.failf "pooled shards=%s differs from the reference engine"
              (match shards with Some s -> string_of_int s | None -> "default"))
        [ None; Some 2; Some 7 ])

let test_mux_sharded_police_fault_identity () =
  (* Policing and fault injection run on the central sequential loop,
     so they compose with sharding bit-identically: the whole report
     of a policed, fault-injected run is shard-count-invariant. *)
  let n = 64 and slots = 2048 in
  let service = 1.02 *. float_of_int n and buffer = 3.0 *. float_of_int n in
  let spec =
    [
      (Some 0, [ Fault.Drift { start = 256; ramp = 0; factor = 6.0 } ]);
      (Some 9, [ Fault.Stall { start = 100; len = 40 } ]);
      (None, [ Fault.Corrupt { rate = 0.01 } ]);
    ]
  in
  let config = { Police.default with Police.window = 64; warmup_windows = 1 } in
  let run shards =
    let srcs =
      Fault.wrap_all ~rng:(Rng.create ~seed:6501) spec (shard_sources ~n ~seed:6500)
    in
    let p = Police.create ~config (Array.map Admission.descr_of_source srcs) in
    match shards with
    | None -> Mux.run_reference ~police:p ~buffer ~service ~slots srcs
    | Some s -> Mux.run ~shards:s ~police:p ~buffer ~service ~slots srcs
  in
  let reference = run None in
  List.iter
    (fun s ->
      if not (Mux.equal_report reference (run (Some s))) then
        Alcotest.failf "policed faulted run differs at shards=%d" s)
    [ 1; 4; 7 ]

let test_mux_sharded_trajectory_identity () =
  (* The trajectory export runs on the central loop over the staged
     rows: identical per-slot served/delay vectors at any shard
     count. *)
  let n = 9 and slots = 500 in
  let service = 1.2 *. float_of_int n in
  let capture shards =
    let rows = ref [] in
    let sink ~slot ~served ~delays =
      rows := (slot, Array.copy served, Array.copy delays) :: !rows
    in
    let r = Mux.run ~shards ~trajectory:sink ~service ~slots (shard_sources ~n ~seed:900) in
    (r, List.rev !rows)
  in
  let r1, t1 = capture 1 in
  let r4, t4 = capture 4 in
  if not (Mux.equal_report r1 r4) then Alcotest.fail "trajectory run reports differ";
  Alcotest.(check int) "every slot exported" slots (List.length t1);
  List.iter2
    (fun (s1, w1, d1) (s4, w4, d4) ->
      Alcotest.(check int) "slot order" s1 s4;
      Array.iteri
        (fun i v ->
          if bits v <> bits w4.(i) then Alcotest.failf "served differs, slot %d source %d" s1 i)
        w1;
      Array.iteri
        (fun i v ->
          if bits v <> bits d4.(i) then Alcotest.failf "delay differs, slot %d source %d" s1 i)
        d1)
    t1 t4

let test_mux_sharded_probe_dispatch () =
  (* A probe needs the reference engine's strict per-slot lock-step
     (the importance sampler stops runs mid-slot), so probed runs
     delegate to it and an explicit multi-shard request is refused. *)
  let mk () = shard_sources ~n:5 ~seed:800 in
  let service = 6.0 and slots = 200 in
  let path_ref = Array.make slots 0.0 and path_run = Array.make slots 0.0 in
  let r_ref =
    Mux.run_reference ~probe:(fun t q -> path_ref.(t) <- q) ~service ~slots (mk ())
  in
  let r_run = Mux.run ~probe:(fun t q -> path_run.(t) <- q) ~service ~slots (mk ()) in
  if not (Mux.equal_report r_ref r_run) then
    Alcotest.fail "probed run differs from the reference engine";
  Array.iteri
    (fun t q -> if bits q <> bits path_run.(t) then Alcotest.failf "probe path slot %d" t)
    path_ref;
  raises_invalid "probe + shards > 1" (fun () ->
      ignore (Mux.run ~shards:2 ~probe:(fun _ _ -> ()) ~service ~slots (mk ())));
  raises_invalid "shards < 1" (fun () ->
      ignore (Mux.run ~shards:0 ~service ~slots (mk ())))

(* ------------------------------------------------------------------ *)
(* Mux_is: importance-sampled shared-buffer overflow                    *)
(* ------------------------------------------------------------------ *)

(* Small shared configuration: 2 sources at per-source utilization
   0.75, a buffer of 8 per-source means — an event common enough for
   plain MC to resolve, so IS and MC can be compared directly. *)
let mux_is_small ?(twist = 0.0) ?profile ?scales () =
  let m = Lazy.force small_model in
  let n = 2 in
  let mean = m.Ss_core.Model.mean in
  Mux_is.make_config ~model:m ~sources:n ~order:24
    ~service:(float_of_int n *. mean /. 0.75)
    ~buffer:(8.0 *. mean) ~slots:150 ~twist ?profile ?scales ()

let test_mux_is_zero_twist_is_plain_mc () =
  (* At zero twist every hit carries log weight 0, so the estimate is
     exactly the plain Monte Carlo hit fraction. *)
  let e = Mux_is.estimate (mux_is_small ()) ~replications:200 (Rng.create ~seed:91) in
  Alcotest.(check int) "replications" 200 e.Mc.replications;
  if e.Mc.hits = 0 then Alcotest.fail "event too rare for the zero-twist check";
  close ~eps:1e-12 "p = hits/reps" (float_of_int e.Mc.hits /. 200.0) e.Mc.p

let test_mux_is_replicate_contract () =
  let cfg = mux_is_small ~twist:0.4 () in
  let rng = Rng.create ~seed:92 in
  let saw_hit = ref false and saw_miss = ref false in
  for _ = 1 to 100 do
    let r = Mux_is.replicate cfg (Rng.split rng) in
    if r.Mux_is.stop_slot < 1 || r.Mux_is.stop_slot > cfg.Mux_is.slots then
      Alcotest.failf "stop slot %d outside [1, %d]" r.Mux_is.stop_slot cfg.Mux_is.slots;
    if r.Mux_is.hit then begin
      saw_hit := true;
      if not (Float.is_finite r.Mux_is.log_weight) then
        Alcotest.fail "hit must carry a finite log weight"
    end
    else begin
      saw_miss := true;
      Alcotest.(check bool) "miss log weight" true (r.Mux_is.log_weight = neg_infinity);
      Alcotest.(check int) "miss runs full horizon" cfg.Mux_is.slots r.Mux_is.stop_slot
    end
  done;
  if not (!saw_hit && !saw_miss) then Alcotest.fail "degenerate hit/miss split"

let test_mux_is_agrees_with_plain_mc () =
  (* Joint 3-sigma agreement between the twisted estimator and plain
     MC at a larger budget, on an event both can resolve. *)
  let mc = Mux_is.estimate (mux_is_small ()) ~replications:1600 (Rng.create ~seed:93) in
  let is_ = Mux_is.estimate (mux_is_small ~twist:0.3 ()) ~replications:400 (Rng.create ~seed:94) in
  let band e = 3.0 *. sqrt (e.Mc.variance /. float_of_int e.Mc.replications) in
  let sep = abs_float (mc.Mc.p -. is_.Mc.p) in
  let tol = band mc +. band is_ in
  if sep > tol then Alcotest.failf "IS %g vs MC %g exceeds joint band %g" is_.Mc.p mc.Mc.p tol

let test_mux_is_pool_bit_identical () =
  (* The Fanout substream discipline makes the estimate a pure
     function of the root RNG: any pool size gives the same bits. *)
  let cfg = mux_is_small ~twist:0.4 () in
  let seq = Mux_is.estimate cfg ~replications:64 (Rng.create ~seed:95) in
  let pool = Pool.create ~domains:3 in
  let par =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Mux_is.estimate ~pool cfg ~replications:64 (Rng.create ~seed:95))
  in
  let same a b = Int64.bits_of_float a = Int64.bits_of_float b in
  Alcotest.(check bool) "p bits" true (same seq.Mc.p par.Mc.p);
  Alcotest.(check bool) "variance bits" true (same seq.Mc.variance par.Mc.variance);
  Alcotest.(check int) "hits" seq.Mc.hits par.Mc.hits

let test_mux_is_mean_stop_slot () =
  (* Twisting toward overflow shortens first passage on average. *)
  let reps = 200 in
  let plain = Mux_is.mean_stop_slot (mux_is_small ()) ~replications:reps (Rng.create ~seed:96) in
  let pushed =
    Mux_is.mean_stop_slot (mux_is_small ~twist:0.8 ()) ~replications:reps (Rng.create ~seed:96)
  in
  if not (pushed < plain) then
    Alcotest.failf "twist did not shorten first passage: %g vs %g" pushed plain

let test_mux_is_invalid () =
  let m = Lazy.force small_model in
  let mk ?(sources = 2) ?(order = 8) ?(service = 3.0) ?(buffer = 5.0) ?(slots = 50)
      ?(twist = 0.0) ?scales () =
    let (_ : Mux_is.config) =
      Mux_is.make_config ~model:m ~sources ~order ~service ~buffer ~slots ~twist ?scales ()
    in
    ()
  in
  raises_invalid "sources" (fun () -> mk ~sources:0 ());
  raises_invalid "order" (fun () -> mk ~order:0 ());
  raises_invalid "service" (fun () -> mk ~service:0.0 ());
  raises_invalid "buffer" (fun () -> mk ~buffer:(-1.0) ());
  raises_invalid "slots" (fun () -> mk ~slots:0 ());
  raises_invalid "scales length" (fun () -> mk ~scales:[| 1.0 |] ());
  (* The likelihood accumulator consumes per-step Hosking innovations,
     so the materializing Davies-Harte backend must be refused up
     front (this is what `vbrsim mux --is --backend davies-harte`
     surfaces to the user). *)
  raises_invalid "Davies-Harte backend refused" (fun () ->
      let (_ : Mux_is.config) =
        Mux_is.make_config ~model:m ~sources:2 ~backend:`Davies_harte ~service:3.0
          ~buffer:5.0 ~slots:50 ~twist:0.0 ()
      in
      ());
  (* Same refusal for the approximate Paxson backend: its circulant
     synthesis is materialized whole, so there are no per-step
     innovations for the likelihood accumulator either. *)
  raises_invalid "Paxson backend refused" (fun () ->
      let (_ : Mux_is.config) =
        Mux_is.make_config ~model:m ~sources:2 ~backend:`Paxson ~service:3.0
          ~buffer:5.0 ~slots:50 ~twist:0.0 ()
      in
      ());
  raises_invalid "bad replications" (fun () ->
      let (_ : Mc.estimate) =
        Mux_is.estimate (mux_is_small ()) ~replications:0 (Rng.create ~seed:1)
      in
      ())

(* ------------------------------------------------------------------ *)
(* Admission                                                            *)
(* ------------------------------------------------------------------ *)

(* sigma2 comparable to mean^2: small enough to admit several sources,
   large enough that light-load overflow stays representable (no
   underflow to 0, which would break the monotonicity check). *)
let descr mean = { Admission.name = "d"; mean; sigma2 = mean *. mean; hurst = 0.8 }

let test_admission_aggregate () =
  let a =
    Admission.aggregate
      [
        { Admission.name = "a"; mean = 1.0; sigma2 = 2.0; hurst = 0.7 };
        { Admission.name = "b"; mean = 3.0; sigma2 = 1.0; hurst = 0.9 };
      ]
  in
  close "means add" 4.0 a.Admission.mean;
  close "variances add" 3.0 a.Admission.sigma2;
  close "hurst is max" 0.9 a.Admission.hurst;
  (* The empty list aggregates to the zero descriptor, consistent
     with predicted_overflow [] = 0. *)
  let z = Admission.aggregate [] in
  close "empty mean" 0.0 z.Admission.mean;
  close "empty sigma2" 0.0 z.Admission.sigma2;
  close "empty hurst" 0.5 z.Admission.hurst

let test_admission_effective_bandwidth_inverts () =
  (* At service = effective_bandwidth, predicted overflow = epsilon. *)
  let d = descr 10.0 in
  List.iter
    (fun epsilon ->
      let c = Admission.effective_bandwidth ~buffer:50.0 ~epsilon d in
      if c <= d.Admission.mean then Alcotest.fail "effective bandwidth must exceed mean";
      let p = Admission.predicted_overflow ~service:c ~buffer:50.0 [ d ] in
      close ~eps:(1e-6 *. epsilon) (Printf.sprintf "eps %g" epsilon) epsilon p)
    [ 1e-3; 1e-6; 1e-9 ]

let test_admission_overflow_monotone_in_load () =
  let p k =
    Admission.predicted_overflow ~service:100.0 ~buffer:200.0
      (List.init k (fun _ -> descr 10.0))
  in
  if not (p 1 < p 3 && p 3 < p 6) then Alcotest.fail "overflow must grow with load";
  close "saturated link" 1.0 (p 10)

let test_admission_controller_gates () =
  let t = Admission.create ~service:100.0 ~buffer:200.0 ~epsilon:1e-4 in
  let rec admit_all k =
    match Admission.try_admit t (descr 10.0) with
    | Admission.Admit _ -> admit_all (k + 1)
    | Admission.Reject _ -> k
  in
  let n = admit_all 0 in
  Alcotest.(check int) "set size matches" n (Admission.admitted_count t);
  if n = 0 then Alcotest.fail "link should accept at least one source";
  if n > 9 then Alcotest.fail "CAC must refuse before the link saturates";
  (* decide is pure: a further candidate is still rejected, count unchanged *)
  (match Admission.decide t (descr 10.0) with
  | Admission.Reject _ -> ()
  | Admission.Admit _ -> Alcotest.fail "decide after reject must still reject");
  Alcotest.(check int) "decide does not mutate" n (Admission.admitted_count t)

let test_admission_invalid () =
  raises_invalid "bad epsilon" (fun () ->
      ignore (Admission.create ~service:1.0 ~buffer:1.0 ~epsilon:2.0));
  raises_invalid "bad service" (fun () ->
      ignore (Admission.create ~service:0.0 ~buffer:1.0 ~epsilon:0.5));
  raises_invalid "bad eb epsilon" (fun () ->
      ignore (Admission.effective_bandwidth ~buffer:1.0 ~epsilon:0.0 (descr 1.0)))

let test_admission_rejects_malformed_descriptors () =
  (* Malformed descriptors are typed rejections, not Invalid_argument
     from deep inside Norros. *)
  let t = Admission.create ~service:100.0 ~buffer:200.0 ~epsilon:1e-4 in
  let expect_reject msg d =
    match Admission.decide t d with
    | Admission.Reject _ -> ()
    | Admission.Admit _ -> Alcotest.failf "%s: expected Reject" msg
  in
  let d = descr 10.0 in
  expect_reject "NaN mean" { d with Admission.mean = Float.nan };
  expect_reject "negative mean" { d with Admission.mean = -1.0 };
  expect_reject "NaN sigma2" { d with Admission.sigma2 = Float.nan };
  expect_reject "negative sigma2" { d with Admission.sigma2 = -1.0 };
  expect_reject "NaN hurst" { d with Admission.hurst = Float.nan };
  expect_reject "hurst = 0" { d with Admission.hurst = 0.0 };
  expect_reject "hurst = 1" { d with Admission.hurst = 1.0 };
  Alcotest.(check int) "nothing admitted" 0 (Admission.admitted_count t);
  (* Empty-load decide path: a clean candidate against an empty set
     uses the zero aggregate. *)
  (match Admission.decide t (descr 10.0) with
  | Admission.Admit _ -> ()
  | Admission.Reject r -> Alcotest.failf "clean candidate rejected: %s" r);
  (* Boundary: at service = effective_bandwidth, predicted overflow
     equals epsilon and p <= epsilon admits. *)
  let eps = 1e-4 in
  let d = descr 10.0 in
  let c = Admission.effective_bandwidth ~buffer:200.0 ~epsilon:eps d in
  let t2 = Admission.create ~service:c ~buffer:200.0 ~epsilon:eps in
  match Admission.try_admit t2 d with
  | Admission.Admit p -> if p > eps *. (1.0 +. 1e-9) then Alcotest.failf "p %g above eps" p
  | Admission.Reject r -> Alcotest.failf "boundary candidate rejected: %s" r

let test_admission_renegotiate_and_evict () =
  let t = Admission.create ~service:100.0 ~buffer:200.0 ~epsilon:1e-4 in
  let d name mean = { Admission.name; mean; sigma2 = mean *. mean; hurst = 0.8 } in
  (match Admission.try_admit t (d "a" 10.0) with
  | Admission.Admit _ -> ()
  | Admission.Reject r -> Alcotest.failf "admit a: %s" r);
  (match Admission.try_admit t (d "b" 10.0) with
  | Admission.Admit _ -> ()
  | Admission.Reject r -> Alcotest.failf "admit b: %s" r);
  (* A modest drift renegotiates in place: same set size, updated
     contract. *)
  (match Admission.renegotiate t ~name:"a" (d "a" 12.0) with
  | Admission.Admit _ -> ()
  | Admission.Reject r -> Alcotest.failf "renegotiate a: %s" r);
  Alcotest.(check int) "set size unchanged" 2 (Admission.admitted_count t);
  let mean_of n =
    match List.find_opt (fun x -> x.Admission.name = n) (Admission.admitted t) with
    | Some x -> x.Admission.mean
    | None -> Alcotest.failf "%s not admitted" n
  in
  close "a's contract updated" 12.0 (mean_of "a");
  (* A drift the link cannot carry is refused and the old contract
     survives. *)
  (match Admission.renegotiate t ~name:"a" (d "a" 95.0) with
  | Admission.Reject _ -> ()
  | Admission.Admit _ -> Alcotest.fail "95/100 renegotiation must be refused");
  Alcotest.(check int) "set size still 2" 2 (Admission.admitted_count t);
  close "old contract restored" 12.0 (mean_of "a");
  (* Renegotiating an unknown name is a plain admission. *)
  (match Admission.renegotiate t ~name:"c" (d "c" 10.0) with
  | Admission.Admit _ -> ()
  | Admission.Reject r -> Alcotest.failf "renegotiate unknown: %s" r);
  Alcotest.(check int) "c admitted" 3 (Admission.admitted_count t);
  Alcotest.(check bool) "evict b" true (Admission.evict t ~name:"b");
  Alcotest.(check bool) "b already gone" false (Admission.evict t ~name:"b");
  Alcotest.(check int) "two remain" 2 (Admission.admitted_count t)

(* ------------------------------------------------------------------ *)
(* Fault: deterministic misbehavior injection                           *)
(* ------------------------------------------------------------------ *)

let const_source ?(name = "const") v =
  Source.of_array ~name ~cycle:true [| v |]

let pull_n s n = List.init n (fun _ -> fst (Source.next s))

let test_fault_drift_and_stall_semantics () =
  let rng = Rng.create ~seed:41 in
  (* Jump drift: clean until start, then factor x. *)
  let s =
    Fault.wrap ~rng:(Rng.split rng)
      [ Fault.Drift { start = 3; ramp = 0; factor = 2.0 } ]
      (const_source 1.0)
  in
  Alcotest.(check (list (float 1e-12)))
    "jump drift" [ 1.0; 1.0; 1.0; 2.0; 2.0 ] (pull_n s 5);
  (* Ramp drift: linear from start over ramp slots. *)
  let s =
    Fault.wrap ~rng:(Rng.split rng)
      [ Fault.Drift { start = 2; ramp = 4; factor = 3.0 } ]
      (const_source 1.0)
  in
  Alcotest.(check (list (float 1e-12)))
    "ramp drift"
    [ 1.0; 1.0; 1.5; 2.0; 2.5; 3.0; 3.0 ]
    (pull_n s 7);
  (* Scripted stall: zero inside [start, start+len). *)
  let s =
    Fault.wrap ~rng:(Rng.split rng)
      [ Fault.Stall { start = 1; len = 2 } ]
      (const_source 1.0)
  in
  Alcotest.(check (list (float 1e-12))) "stall" [ 1.0; 0.0; 0.0; 1.0 ] (pull_n s 4)

let test_fault_misdeclare_changes_descriptor_only () =
  let rng = Rng.create ~seed:42 in
  let s =
    Fault.wrap ~rng
      [ Fault.Misdeclare { mean = Some 0.5; sigma2 = None; hurst = Some 0.6 } ]
      (const_source 1.0)
  in
  close "declared mean lies" 0.5 s.Source.mean;
  close "declared hurst lies" 0.6 s.Source.hurst;
  Alcotest.(check (list (float 1e-12))) "traffic untouched" [ 1.0; 1.0; 1.0 ] (pull_n s 3)

let test_fault_empty_spec_is_physical_identity () =
  let src = const_source 1.0 in
  let rng = Rng.create ~seed:43 in
  if not (Fault.wrap ~rng [] src == src) then
    Alcotest.fail "empty spec must return the source unchanged";
  (* wrap_all: untargeted sources come back physically unchanged. *)
  let a = const_source ~name:"a" 1.0 and b = const_source ~name:"b" 2.0 in
  let wrapped =
    Fault.wrap_all ~rng
      [ (Some 1, [ Fault.Stall { start = 0; len = 1 } ]) ]
      [| a; b |]
  in
  if not (wrapped.(0) == a) then Alcotest.fail "untargeted source must be untouched";
  if wrapped.(1) == b then Alcotest.fail "targeted source must be wrapped"

let test_fault_schedule_deterministic () =
  (* Same seed, same spec: bit-identical fault schedule — and the
     schedule of source i does not depend on which other sources are
     targeted. *)
  let spec = [ Fault.Dropout { rate = 0.05; mean_len = 4.0 }; Fault.Corrupt { rate = 0.02 } ] in
  let run extra_target =
    let specs = (Some 0, spec) :: extra_target in
    let wrapped =
      Fault.wrap_all ~rng:(Rng.create ~seed:44) specs
        [| const_source ~name:"a" 1.0; const_source ~name:"b" 1.0 |]
    in
    List.init 500 (fun _ -> fst (Source.next wrapped.(0)))
  in
  let reference = run [] in
  let with_other = run [ (Some 1, [ Fault.Stall { start = 0; len = 10 } ]) ] in
  List.iter2
    (fun a b ->
      match (Float.is_nan a, Float.is_nan b) with
      | true, true -> ()
      | false, false -> close ~eps:0.0 "schedule stable" a b
      | _ -> Alcotest.fail "corruption schedule moved")
    reference with_other;
  if not (List.exists (fun x -> x = 0.0) reference) then
    Alcotest.fail "dropout fault never fired in 500 slots";
  if not (List.exists (fun x -> Float.is_nan x || x < 0.0) reference) then
    Alcotest.fail "corrupt fault never fired in 500 slots"

let test_fault_parse () =
  (match Fault.parse "0:drift@100+50x4.0;*:corrupt@0.01" with
  | [ (Some 0, [ Fault.Drift { start = 100; ramp = 50; factor = f } ]);
      (None, [ Fault.Corrupt { rate } ]) ] ->
    close "factor" 4.0 f;
    close "rate" 0.01 rate
  | _ -> Alcotest.fail "parse structure mismatch");
  (match Fault.parse "1:burst@0.01+20x3,stall@5+2,dropout@0.1+8,mean=2.5,hurst=0.9" with
  | [ (Some 1, [ Fault.Burst _; Fault.Stall _; Fault.Dropout _;
                 Fault.Misdeclare { mean = Some m; _ };
                 Fault.Misdeclare { hurst = Some h; _ } ]) ] ->
    close "mean" 2.5 m;
    close "hurst" 0.9 h
  | _ -> Alcotest.fail "multi-event parse mismatch");
  List.iter
    (fun bad -> raises_invalid (Printf.sprintf "bad spec %S" bad) (fun () -> ignore (Fault.parse bad)))
    [ ""; "nonsense"; "0:"; "x:stall@1+2"; "0:drift@-1+0x2"; "0:corrupt@1.5"; "0:hurst=1.5" ]

(* ------------------------------------------------------------------ *)
(* Police: measurement-based conformance monitoring                     *)
(* ------------------------------------------------------------------ *)

let police_config ~window =
  { Police.default with Police.window; warmup_windows = 1 }

let drive police ~from ~slots w =
  for t = from to from + slots - 1 do
    Police.observe police ~slot:t 0 (w t)
  done

let test_police_conforming_source_untouched () =
  (* An honest FGN-driven source inside its declared envelope: no
     sanctions that alter traffic. *)
  let m = Lazy.force small_model in
  let src = Source.of_model ~order:32 m (Rng.create ~seed:51) in
  let p = Police.create ~config:(police_config ~window:256) [| Admission.descr_of_source src |] in
  for t = 0 to 4095 do
    Police.observe p ~slot:t 0 (fst (Source.next src))
  done;
  Alcotest.(check bool) "not evicted" false (Police.evicted p 0);
  close "no cap" infinity (Police.cap p 0);
  Alcotest.(check int) "no demotion" 0 (Police.demotion p 0);
  List.iter
    (fun i ->
      match i.Police.event with
      | Police.Throttle_set c when c < infinity -> Alcotest.fail "conforming source throttled"
      | Police.Demoted _ | Police.Evicted -> Alcotest.fail "conforming source sanctioned"
      | _ -> ())
    (Police.incidents p)

let test_police_detects_violation_and_escalates () =
  (* A 5x mean violation: flagged at the first post-warmup window,
     throttled immediately, evicted after evict_after bad windows. *)
  let declared = { Admission.name = "v"; mean = 1.0; sigma2 = 0.1; hurst = 0.6 } in
  let w = 32 in
  let p = Police.create ~config:(police_config ~window:w) [| declared |] in
  drive p ~from:0 ~slots:(6 * w) (fun _ -> 5.0);
  (match Police.detected_at p 0 with
  | Some t ->
    if t > 2 * w then Alcotest.failf "detected only at slot %d" t
  | None -> Alcotest.fail "violation never detected");
  Alcotest.(check bool) "evicted" true (Police.evicted p 0);
  if Police.cap p 0 = infinity then Alcotest.fail "violator must have been throttled";
  let events = List.map (fun i -> i.Police.event) (Police.incidents p) in
  if not (List.exists (function Police.Flagged (Police.Violating _) -> true | _ -> false) events)
  then Alcotest.fail "no Violating flag recorded";
  if not (List.mem Police.Evicted events) then Alcotest.fail "no eviction recorded";
  (* After eviction the state is frozen. *)
  let n = Police.incident_count p in
  drive p ~from:(6 * w) ~slots:w (fun _ -> 5.0);
  Alcotest.(check int) "no incidents after eviction" n (Police.incident_count p)

let test_police_renegotiates_drift () =
  (* A +30% drift with CAC headroom renegotiates: the measured model
     becomes the contract and later windows conform. *)
  let declared = { Admission.name = "d"; mean = 1.0; sigma2 = 0.1; hurst = 0.6 } in
  let cac = Admission.create ~service:10.0 ~buffer:50.0 ~epsilon:1e-2 in
  (match Admission.try_admit cac declared with
  | Admission.Admit _ -> ()
  | Admission.Reject r -> Alcotest.failf "seed admission: %s" r);
  let w = 64 in
  let p = Police.create ~config:(police_config ~window:w) ~cac [| declared |] in
  let rng = Rng.create ~seed:52 in
  let noisy mean _ = mean +. (0.05 *. Rng.gaussian rng) in
  drive p ~from:0 ~slots:(4 * w) (noisy 1.3);
  let events = List.map (fun i -> i.Police.event) (Police.incidents p) in
  if not (List.exists (function Police.Renegotiated _ -> true | _ -> false) events) then
    Alcotest.fail "no renegotiation recorded";
  close ~eps:0.05 "contract follows the measurement" 1.3 (Police.declared p 0).Admission.mean;
  close ~eps:0.05 "CAC load updated" 1.3
    (match Admission.admitted cac with [ d ] -> d.Admission.mean | _ -> Alcotest.fail "load size");
  Alcotest.(check bool) "not evicted" false (Police.evicted p 0);
  close "no cap" infinity (Police.cap p 0);
  (* Conforming again against the renegotiated contract: no further
     escalation. *)
  let n = List.length (List.filter (function Police.Renegotiated _ -> true | _ -> false) events) in
  drive p ~from:(4 * w) ~slots:(4 * w) (noisy 1.3);
  let n' =
    List.length
      (List.filter (fun i -> match i.Police.event with Police.Renegotiated _ -> true | _ -> false)
         (Police.incidents p))
  in
  Alcotest.(check int) "one renegotiation suffices" n n'

let test_police_escalation_ladder_without_headroom () =
  (* Refused renegotiation walks the ladder: demote, throttle, evict. *)
  let declared = { Admission.name = "l"; mean = 1.0; sigma2 = 0.1; hurst = 0.6 } in
  let cac = Admission.create ~service:1.1 ~buffer:50.0 ~epsilon:1e-2 in
  (match Admission.try_admit cac declared with
  | Admission.Admit _ -> ()
  | Admission.Reject r -> Alcotest.failf "seed admission: %s" r);
  let w = 32 in
  let p = Police.create ~config:(police_config ~window:w) ~cac [| declared |] in
  drive p ~from:0 ~slots:(20 * w) (fun _ -> 1.3);
  let events = List.map (fun i -> i.Police.event) (Police.incidents p) in
  let has f = List.exists f events in
  if not (has (function Police.Demoted 1 -> true | _ -> false)) then
    Alcotest.fail "no demotion recorded";
  if not (has (function Police.Throttle_set c -> c < infinity | _ -> false)) then
    Alcotest.fail "no throttle recorded";
  if not (List.mem Police.Evicted events) then Alcotest.fail "no eviction recorded";
  Alcotest.(check bool) "evicted" true (Police.evicted p 0);
  Alcotest.(check int) "contract released" 0 (Admission.admitted_count cac)

let test_police_mux_integration () =
  (* End to end through Mux.run: a faulted source is contained while
     a clean one is untouched; the zero-fault policed run is
     bit-identical to the unpoliced one. *)
  let m = Lazy.force small_model in
  let mk seed = Source.of_model ~order:32 m (Rng.create ~seed) in
  let service = 3.0 *. m.Ss_core.Model.mean in
  let slots = 6144 in
  let plain = Mux.run ~service ~slots [| mk 61; mk 62 |] in
  let srcs = [| mk 61; mk 62 |] in
  let p =
    Police.create ~config:(police_config ~window:256) (Array.map Admission.descr_of_source srcs)
  in
  let policed = Mux.run ~police:p ~service ~slots srcs in
  close ~eps:0.0 "mean queue identical" plain.Mux.mean_queue policed.Mux.mean_queue;
  close ~eps:0.0 "max queue identical" plain.Mux.max_queue policed.Mux.max_queue;
  Array.iteri
    (fun i s ->
      close ~eps:0.0 "offered identical" s.Mux.offered policed.Mux.per_source.(i).Mux.offered)
    plain.Mux.per_source;
  (* Now inject a hard drift on source 0 and police it: the drifter
     must be sanctioned (throttled or evicted), the clean source must
     lose nothing. *)
  let srcs = [| mk 61; mk 62 |] in
  let faulted =
    Fault.wrap_all ~rng:(Rng.create ~seed:63)
      [ (Some 0, [ Fault.Drift { start = 1024; ramp = 0; factor = 5.0 } ]) ]
      srcs
  in
  let p =
    Police.create ~config:(police_config ~window:256)
      (Array.map Admission.descr_of_source faulted)
  in
  let r = Mux.run ~police:p ~buffer:(20.0 *. m.Ss_core.Model.mean) ~service ~slots faulted in
  (match Police.detected_at p 0 with
  | Some t -> if t > 1024 + (3 * 256) then Alcotest.failf "drift detected late, slot %d" t
  | None -> Alcotest.fail "drift never detected");
  let sanctioned =
    Police.evicted p 0 || Police.cap p 0 < infinity
    || r.Mux.per_source.(0).Mux.throttled > 0.0
    || r.Mux.per_source.(0).Mux.discarded > 0.0
  in
  Alcotest.(check bool) "drifter sanctioned" true sanctioned;
  (* Honest LRD sources may collect benign drift flags; what matters
     is that the clean source is never sanctioned. *)
  Alcotest.(check bool) "clean source not evicted" false (Police.evicted p 1);
  close "clean source not throttled" infinity (Police.cap p 1);
  Alcotest.(check int) "clean source not demoted" 0 (Police.demotion p 1);
  close "clean source loses nothing" 0.0 r.Mux.per_source.(1).Mux.throttled

(* ------------------------------------------------------------------ *)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_online_matches_descriptive; prop_online_merge; prop_p2_within_range ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_mux"
    [
      ( "online-stats",
        [
          tc "empty raises" test_online_empty_raises;
          tc "matches Descriptive" test_online_matches_descriptive;
          tc "P2 invalid" test_p2_invalid;
          tc "P2 small-n exact" test_p2_small_n_exact;
          tc "P2 small-n order statistics" test_p2_small_n_order_statistics;
          tc "P2 small-n infinity regression" test_p2_small_n_infinity_regression;
          tc "P2 uniform quantiles" test_p2_uniform;
          tc "P2 exponential quantiles" test_p2_exponential;
          tc "Vt estimates FGN H" test_vt_estimates_fgn_hurst;
          tc "Vt white noise H=0.5" test_vt_white_noise_is_half;
          tc "Vt warmup/invalid" test_vt_warmup_and_invalid;
        ] );
      ( "source",
        [
          tc "of_array replay/cycle" test_source_of_array;
          tc "invalid" test_source_invalid;
          tc "streaming = truncated Hosking" test_background_stream_matches_truncated_hosking;
          tc "of_model streams" test_source_of_model_streams;
          tc "of_model clamps negatives" test_source_of_model_clamps_negatives;
          tc "table_for error prefix" test_source_table_for_error_prefix;
          tc "twisted zero shift = plain" test_source_twisted_zero_shift_identity;
          tc "of_mpeg priority classes" test_source_of_mpeg_classes;
          tc "block = scalar bit-identical" test_source_block_scalar_bit_identity;
          tc "mpeg block = scalar" test_source_mpeg_block_scalar_bit_identity;
          tc "interleaved block/scalar" test_source_block_scalar_interleave_coherent;
          tc "Davies-Harte contract" test_source_dh_backend_contract;
          tc "Davies-Harte statistics" test_source_dh_backend_statistics;
          tc "Paxson contract" test_source_paxson_backend_contract;
          tc "relaxed precision tier" test_source_relaxed_precision;
          tc "fft kernel tier" test_source_fft_kernel;
          tc "IS refuses fast-math kernels" test_mux_is_kernel_refusal;
          tc "cache stats counters" test_source_cache_stats_counters;
          tc "table cache LRU eviction" test_source_table_cache_lru_eviction;
          tc "table cache concurrent lookups" test_source_table_cache_concurrent_lookups;
        ] );
      ( "mux",
        [
          tc "single source = Trace_sim.queue_path" test_mux_matches_trace_sim;
          tc "work conservation" test_mux_conservation;
          tc "buffer bounds queue" test_mux_buffer_bounds_queue;
          tc "underloaded: lossless" test_mux_no_loss_when_underloaded;
          tc "priority shields high class" test_mux_priority_shields_high_class;
          tc "fifo shares loss" test_mux_fifo_shares_loss;
          tc "zero-buffer semantics" test_mux_zero_buffer_semantics;
          tc "overflow curve monotone" test_mux_overflow_curve_monotone;
          tc "quantiles ordered" test_mux_queue_quantiles_ordered;
          tc "P2 vs exact on LRD stream" test_mux_p2_quantiles_vs_exact_on_lrd_stream;
          tc "invalid" test_mux_invalid;
          tc "clean source departure" test_mux_source_departure;
          tc "corrupt work isolated" test_mux_corrupt_work_is_isolated;
          tc "class delay = delay (1 class)" test_mux_class_delay_single_class_exact;
          tc "class delay priority order" test_mux_class_delay_priority_ordering;
          tc "class delay = brute force (3 classes)" test_mux_class_delay_bruteforce_3class;
          tc "trajectory conservation" test_mux_trajectory_conservation;
          tc "trajectory does not perturb report" test_mux_trajectory_does_not_perturb_report;
          tc "trajectory delay = q/service (1 source)" test_mux_trajectory_single_source_delay_exact;
          tc "trajectory golden rows" test_mux_trajectory_golden;
          tc "hot loop allocation bound" test_mux_hot_loop_allocation;
          tc "sharded bit-identity" test_mux_sharded_bit_identity;
          tc "sharded bit-identity over pool" test_mux_sharded_pool_bit_identity;
          tc "sharded + police + faults identical" test_mux_sharded_police_fault_identity;
          tc "sharded trajectory identical" test_mux_sharded_trajectory_identity;
          tc "probe dispatch / refusal" test_mux_sharded_probe_dispatch;
        ] );
      ( "mux-is",
        [
          tc "zero twist = plain MC" test_mux_is_zero_twist_is_plain_mc;
          tc "replicate contract" test_mux_is_replicate_contract;
          tc "agrees with plain MC" test_mux_is_agrees_with_plain_mc;
          tc "pool bit-identical" test_mux_is_pool_bit_identical;
          tc "twist shortens first passage" test_mux_is_mean_stop_slot;
          tc "invalid" test_mux_is_invalid;
        ] );
      ( "admission",
        [
          tc "aggregate" test_admission_aggregate;
          tc "effective bandwidth inverts" test_admission_effective_bandwidth_inverts;
          tc "monotone in load" test_admission_overflow_monotone_in_load;
          tc "controller gates" test_admission_controller_gates;
          tc "invalid" test_admission_invalid;
          tc "rejects malformed descriptors" test_admission_rejects_malformed_descriptors;
          tc "renegotiate/evict" test_admission_renegotiate_and_evict;
        ] );
      ( "fault",
        [
          tc "drift/stall semantics" test_fault_drift_and_stall_semantics;
          tc "misdeclare lies to CAC only" test_fault_misdeclare_changes_descriptor_only;
          tc "empty spec = identity" test_fault_empty_spec_is_physical_identity;
          tc "schedule deterministic" test_fault_schedule_deterministic;
          tc "parse" test_fault_parse;
        ] );
      ( "police",
        [
          tc "conforming untouched" test_police_conforming_source_untouched;
          tc "violation escalates to eviction" test_police_detects_violation_and_escalates;
          tc "drift renegotiates" test_police_renegotiates_drift;
          tc "ladder without headroom" test_police_escalation_ladder_without_headroom;
          tc "mux integration" test_police_mux_integration;
        ] );
      ("properties", qcheck_cases);
    ]

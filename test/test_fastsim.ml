(* Tests for ss_fastsim: likelihood-ratio accumulation, the
   importance-sampling estimator (unbiasedness, variance reduction,
   valley shape) and the twist search. *)

module Rng = Ss_stats.Rng
module Acf = Ss_fractal.Acf
module Hosking = Ss_fractal.Hosking
module Mc = Ss_queueing.Mc
module Likelihood = Ss_fastsim.Likelihood
module Is = Ss_fastsim.Is_estimator
module Valley = Ss_fastsim.Valley
module Twist = Ss_fastsim.Twist

let close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

let white_table n = Hosking.Table.make ~acf:Acf.white_noise ~n
let fgn_table ?(h = 0.7) n = Hosking.Table.make ~acf:(Acf.fgn ~h) ~n

(* ------------------------------------------------------------------ *)
(* Likelihood                                                           *)
(* ------------------------------------------------------------------ *)

let test_likelihood_zero_twist_is_one () =
  let table = fgn_table 50 in
  let lik = Likelihood.create ~table ~twist:0.0 in
  let rng = Rng.create ~seed:1 in
  for k = 0 to 49 do
    Likelihood.step lik ~k ~innovation:(Rng.gaussian rng)
  done;
  close "log L = 0 at zero twist" 0.0 (Likelihood.log_ratio lik);
  close "L = 1 at zero twist" 1.0 (Likelihood.ratio lik)

let test_likelihood_first_step_closed_form () =
  (* For iid N(0,1), step 0 has delta = m*, v = 1:
     log L_0 = -(2 eps m* + m*^2)/2 — the paper's Eq (48) with
     eps = x_0 (the untwisted draw). *)
  let table = white_table 10 in
  let twist = 1.5 in
  let lik = Likelihood.create ~table ~twist in
  let eps = 0.37 in
  Likelihood.step lik ~k:0 ~innovation:eps;
  close ~eps:1e-12 "Eq 48"
    (-.((2.0 *. eps *. twist) +. (twist *. twist)) /. 2.0)
    (Likelihood.log_ratio lik)

let test_likelihood_white_noise_product () =
  (* For iid noise the likelihood ratio is the product of per-sample
     normal density ratios; verify against direct computation. *)
  let n = 20 in
  let table = white_table n in
  let twist = 0.8 in
  let lik = Likelihood.create ~table ~twist in
  let rng = Rng.create ~seed:2 in
  let direct = ref 0.0 in
  for k = 0 to n - 1 do
    let x = Rng.gaussian rng in
    (* x' = x + m*; ratio f_X(x')/f_X'(x') evaluated per-sample. *)
    let x' = x +. twist in
    direct :=
      !direct
      +. Ss_stats.Special.log_normal_pdf ~mean:0.0 ~var:1.0 x'
      -. Ss_stats.Special.log_normal_pdf ~mean:twist ~var:1.0 x';
    Likelihood.step lik ~k ~innovation:x
  done;
  close ~eps:1e-10 "iid product" !direct (Likelihood.log_ratio lik)

let test_likelihood_reset () =
  let table = white_table 5 in
  let lik = Likelihood.create ~table ~twist:1.0 in
  Likelihood.step lik ~k:0 ~innovation:0.5;
  Alcotest.(check int) "steps" 1 (Likelihood.steps lik);
  Likelihood.reset lik;
  Alcotest.(check int) "steps after reset" 0 (Likelihood.steps lik);
  close "log L cleared" 0.0 (Likelihood.log_ratio lik)

let test_likelihood_order_enforced () =
  let table = white_table 5 in
  let lik = Likelihood.create ~table ~twist:1.0 in
  raises_invalid "must start at 0" (fun () -> Likelihood.step lik ~k:1 ~innovation:0.0);
  Likelihood.step lik ~k:0 ~innovation:0.0;
  raises_invalid "no skipping" (fun () -> Likelihood.step lik ~k:2 ~innovation:0.0)

let test_likelihood_expectation_is_one () =
  (* E_X'[L] = 1: average the likelihood ratio over twisted paths. *)
  let n = 30 in
  let table = fgn_table ~h:0.8 n in
  let twist = 0.7 in
  let rng = Rng.create ~seed:3 in
  let reps = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to reps do
    let lik = Likelihood.create ~table ~twist in
    let xs = Array.make n 0.0 in
    for k = 0 to n - 1 do
      let m = Hosking.Table.cond_mean table xs k in
      let innovation = Hosking.Table.innovation_std table k *. Rng.gaussian rng in
      xs.(k) <- m +. innovation;
      Likelihood.step lik ~k ~innovation
    done;
    sum := !sum +. Likelihood.ratio lik
  done;
  close ~eps:0.05 "E[L] = 1" 1.0 (!sum /. float_of_int reps)

(* ------------------------------------------------------------------ *)
(* Likelihood: streaming (truncated-Hosking) accumulator               *)
(* ------------------------------------------------------------------ *)

let test_likelihood_stream_matches_plan_prefix () =
  (* Within the table length the streaming accumulator follows the
     exact recursion, so it must agree with the table-indexed one on
     identical innovations — for both constant and general profiles. *)
  let n = 40 in
  let table = fgn_table ~h:0.8 n in
  List.iter
    (fun profile ->
      let plan = Likelihood.plan ~table ~profile in
      let lik = Likelihood.of_plan plan in
      let s = Likelihood.stream_of_plan plan in
      let rng = Rng.create ~seed:9 in
      for k = 0 to n - 1 do
        let innovation = Rng.gaussian rng in
        Likelihood.step lik ~k ~innovation;
        Likelihood.stream_step s ~k ~innovation
      done;
      close ~eps:1e-12 "prefix log L" (Likelihood.log_ratio lik) (Likelihood.stream_log_ratio s);
      Alcotest.(check int) "steps" n (Likelihood.stream_steps s))
    [ Twist.constant 0.9; Twist.ramp ~until:25 ~peak:1.2 ]

let test_likelihood_stream_constant_equals_fn_profile () =
  (* A Fn profile that happens to be constant must accumulate exactly
     the same log ratio as the cached-row-sum constant fast path,
     including past the table length where both use the frozen row. *)
  let order = 12 in
  let table = fgn_table ~h:0.8 (order + 1) in
  let m0 = 0.6 in
  let fast = Likelihood.stream ~table ~profile:(Twist.constant m0) in
  let general = Likelihood.stream ~table ~profile:(Twist.of_fun (fun _ -> m0)) in
  let rng = Rng.create ~seed:10 in
  for k = 0 to 199 do
    let innovation = Rng.gaussian rng in
    Likelihood.stream_step fast ~k ~innovation;
    Likelihood.stream_step general ~k ~innovation
  done;
  close ~eps:1e-10 "fast = general" (Likelihood.stream_log_ratio fast)
    (Likelihood.stream_log_ratio general)

let test_likelihood_stream_expectation_is_one () =
  (* E_X'[L] = 1 for the truncated process far beyond the table
     length: generate with the frozen AR(order) recursion (the
     streaming-source scheme) and average the ratio. *)
  let order = 8 in
  let table = fgn_table ~h:0.8 (order + 1) in
  let twist = 0.5 in
  let plan = Likelihood.plan ~table ~profile:(Twist.constant twist) in
  let horizon = 120 in
  let rng = Rng.create ~seed:11 in
  let reps = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to reps do
    let s = Likelihood.stream_of_plan plan in
    let hist = Array.make order 0.0 in
    for k = 0 to horizon - 1 do
      let kk = Stdlib.min k order in
      let m = Hosking.Table.cond_mean table hist kk in
      let innovation = Hosking.Table.innovation_std table kk *. Rng.gaussian rng in
      let x = m +. innovation in
      if k < order then hist.(k) <- x
      else begin
        Array.blit hist 1 hist 0 (order - 1);
        hist.(order - 1) <- x
      end;
      Likelihood.stream_step s ~k ~innovation
    done;
    sum := !sum +. exp (Likelihood.stream_log_ratio s)
  done;
  close ~eps:0.05 "E[L] = 1 (streaming)" 1.0 (!sum /. float_of_int reps)

let test_likelihood_stream_reset_and_order () =
  let table = fgn_table 5 in
  let s = Likelihood.stream ~table ~profile:(Twist.constant 1.0) in
  raises_invalid "must start at 0" (fun () -> Likelihood.stream_step s ~k:3 ~innovation:0.0);
  Likelihood.stream_step s ~k:0 ~innovation:0.4;
  (* No table-length ceiling: steps past the table clamp to the frozen
     row instead of raising. *)
  for k = 1 to 19 do
    Likelihood.stream_step s ~k ~innovation:0.0
  done;
  Alcotest.(check int) "steps" 20 (Likelihood.stream_steps s);
  Likelihood.stream_reset s;
  Alcotest.(check int) "steps after reset" 0 (Likelihood.stream_steps s);
  close "log L cleared" 0.0 (Likelihood.stream_log_ratio s)

(* ------------------------------------------------------------------ *)
(* Is_estimator                                                         *)
(* ------------------------------------------------------------------ *)

let identity_arrival _i x = x

let test_is_log_weight_consistent () =
  (* replicate's linear weight is exp of its log weight; misses carry
     log weight -inf. *)
  let table = fgn_table 100 in
  let cfg =
    Is.make_config ~table ~arrival:identity_arrival ~service:0.4 ~buffer:5.0 ~horizon:100
      ~twist:0.8 ()
  in
  let rng = Rng.create ~seed:12 in
  let hits = ref 0 and misses = ref 0 in
  for _ = 1 to 200 do
    let r = Is.replicate cfg (Rng.split rng) in
    if r.Is.hit then begin
      incr hits;
      close ~eps:1e-12 "weight = exp log_weight" (exp r.Is.log_weight) r.Is.weight
    end
    else begin
      incr misses;
      Alcotest.(check bool) "miss log weight" true (r.Is.log_weight = neg_infinity);
      close "miss weight" 0.0 r.Is.weight
    end
  done;
  if !hits = 0 || !misses = 0 then
    Alcotest.failf "degenerate split: %d hits, %d misses" !hits !misses

let test_is_zero_twist_equals_plain_mc () =
  (* With twist 0 the weights are exactly the indicator. *)
  let table = fgn_table 100 in
  let cfg =
    Is.make_config ~table ~arrival:identity_arrival ~service:0.4 ~buffer:5.0 ~horizon:100
      ~twist:0.0 ()
  in
  let e = Is.estimate cfg ~replications:2000 (Rng.create ~seed:4) in
  Alcotest.(check int) "hits = weighted hits" e.Mc.hits
    (int_of_float (Float.round (e.Mc.p *. float_of_int e.Mc.replications)));
  if e.Mc.p <= 0.0 || e.Mc.p >= 1.0 then Alcotest.failf "degenerate p=%g" e.Mc.p

let test_is_unbiased_across_twists () =
  (* The same probability estimated at several twists must agree
     within joint confidence bands. *)
  let table = fgn_table 150 in
  let cfg twist =
    Is.make_config ~table ~arrival:identity_arrival ~service:0.45 ~buffer:6.0 ~horizon:150
      ~twist ()
  in
  let estimates =
    List.map
      (fun twist -> Is.estimate (cfg twist) ~replications:4000 (Rng.create ~seed:5))
      [ 0.0; 0.3; 0.6 ]
  in
  match estimates with
  | [ a; b; c ] ->
    let band e = 4.0 *. sqrt (e.Mc.variance /. float_of_int e.Mc.replications) in
    close ~eps:(band a +. band b) "0 vs 0.3" a.Mc.p b.Mc.p;
    close ~eps:(band a +. band c) "0 vs 0.6" a.Mc.p c.Mc.p
  | _ -> assert false

let test_is_variance_reduction () =
  (* For a genuinely rare event, a well-chosen twist must slash the
     normalized variance relative to plain MC. *)
  let table = fgn_table ~h:0.75 300 in
  let cfg twist =
    Is.make_config ~table ~arrival:identity_arrival ~service:0.5 ~buffer:15.0 ~horizon:300
      ~twist ()
  in
  let mc = Is.estimate (cfg 0.0) ~replications:2000 (Rng.create ~seed:6) in
  let is = Is.estimate (cfg 0.8) ~replications:2000 (Rng.create ~seed:7) in
  if is.Mc.hits < 100 then Alcotest.failf "twist too weak: %d hits" is.Mc.hits;
  if is.Mc.p <= 0.0 then Alcotest.fail "IS estimate vanished";
  (* Plain MC at 2000 reps likely sees no hits at all; if it does,
     its normalized variance must still dominate the IS one. *)
  if mc.Mc.hits > 0 && is.Mc.normalized_variance >= mc.Mc.normalized_variance then
    Alcotest.fail "no variance reduction"

let test_is_rare_event_magnitude () =
  (* iid N(0,1) arrivals, service c: P(sup W > b) <= exp(-2 c b)
     (Chernoff/Hoeffding-style bound for the normal random walk:
     the exact Lundberg exponent is 2c). IS must land below the bound
     and within a plausible range of the Cramer approximation
     C exp(-2 c b). *)
  let table = white_table 400 in
  let c = 0.5 and b = 8.0 in
  let cfg =
    Is.make_config ~table ~arrival:identity_arrival ~service:c ~buffer:b ~horizon:400
      ~twist:1.0 ()
  in
  let e = Is.estimate cfg ~replications:4000 (Rng.create ~seed:8) in
  let bound = exp (-2.0 *. c *. b) in
  if e.Mc.p > bound then Alcotest.failf "IS %.3g above Lundberg bound %.3g" e.Mc.p bound;
  if e.Mc.p < bound /. 100.0 then Alcotest.failf "IS %.3g implausibly small" e.Mc.p

let test_is_monotone_in_buffer () =
  let table = fgn_table 200 in
  let est b =
    let cfg =
      Is.make_config ~table ~arrival:identity_arrival ~service:0.5 ~buffer:b ~horizon:200
        ~twist:0.7 ()
    in
    (Is.estimate cfg ~replications:2000 (Rng.create ~seed:9)).Mc.p
  in
  let p4 = est 4.0 and p8 = est 8.0 and p16 = est 16.0 in
  if not (p4 > p8 && p8 > p16) then
    Alcotest.failf "overflow not decreasing in buffer: %.3g %.3g %.3g" p4 p8 p16

let test_is_full_start_dominates_empty () =
  (* Starting from a full buffer can only increase the overflow
     probability at any horizon. *)
  let table = fgn_table 150 in
  let mk full_start =
    Is.make_config ~table ~arrival:identity_arrival ~service:0.5 ~buffer:8.0 ~horizon:150
      ~twist:0.6 ~full_start ()
  in
  let empty = Is.estimate (mk false) ~replications:3000 (Rng.create ~seed:10) in
  let full = Is.estimate (mk true) ~replications:3000 (Rng.create ~seed:10) in
  if full.Mc.p < empty.Mc.p then
    Alcotest.failf "full start (%.3g) below empty start (%.3g)" full.Mc.p empty.Mc.p

let test_is_replication_stop_step () =
  let table = white_table 50 in
  (* Immediate crossing: huge arrivals via twist of identity isn't
     needed; use buffer 0.1 and positive service drift. *)
  let cfg =
    Is.make_config ~table ~arrival:(fun _ _ -> 10.0) ~service:1.0 ~buffer:0.5 ~horizon:50
      ~twist:0.0 ()
  in
  let r = Is.replicate cfg (Rng.create ~seed:11) in
  Alcotest.(check bool) "hit" true r.Is.hit;
  Alcotest.(check int) "stops at first slot" 1 r.Is.stop_step;
  close "weight 1 at zero twist" 1.0 r.Is.weight

let test_is_mean_stop_step_bounded () =
  let table = white_table 100 in
  let cfg =
    Is.make_config ~table ~arrival:identity_arrival ~service:0.5 ~buffer:3.0 ~horizon:100
      ~twist:1.5 ()
  in
  let mean_stop = Is.mean_stop_step cfg ~replications:500 (Rng.create ~seed:12) in
  if mean_stop < 1.0 || mean_stop > 100.0 then Alcotest.failf "bad mean stop %.1f" mean_stop

let test_is_config_validation () =
  let table = white_table 10 in
  raises_invalid "service" (fun () ->
      Is.make_config ~table ~arrival:identity_arrival ~service:0.0 ~buffer:1.0 ~horizon:10
        ~twist:0.0 ());
  raises_invalid "buffer" (fun () ->
      Is.make_config ~table ~arrival:identity_arrival ~service:1.0 ~buffer:(-1.0) ~horizon:10
        ~twist:0.0 ());
  raises_invalid "horizon" (fun () ->
      Is.make_config ~table ~arrival:identity_arrival ~service:1.0 ~buffer:1.0 ~horizon:11
        ~twist:0.0 ());
  let cfg =
    Is.make_config ~table ~arrival:identity_arrival ~service:1.0 ~buffer:1.0 ~horizon:10
      ~twist:0.0 ()
  in
  raises_invalid "replications" (fun () ->
      ignore (Is.estimate cfg ~replications:0 (Rng.create ~seed:1)))

let test_is_davies_harte_backend () =
  let acf = Acf.fgn ~h:0.7 in
  let table = fgn_table 100 in
  let cfg backend twist =
    Is.make_config ~table ~arrival:identity_arrival ~service:0.4 ~buffer:5.0 ~horizon:100
      ~twist ~backend ()
  in
  (* The DH backend materializes the whole path, so there are no
     per-step innovations to accumulate a likelihood ratio from: it
     is plain MC only (zero twist), and the plan must cover the
     horizon. *)
  let plan = Ss_fractal.Davies_harte.plan ~acf ~n:100 in
  raises_invalid "DH with nonzero twist" (fun () -> cfg (`Davies_harte plan) 0.5);
  let short = Ss_fractal.Davies_harte.plan ~acf ~n:50 in
  raises_invalid "DH plan shorter than horizon" (fun () -> cfg (`Davies_harte short) 0.0);
  (* At zero twist both backends estimate the same overflow event —
     the full-length Hosking table is the exact process too, so the
     estimates must agree within joint confidence bands. *)
  let reps = 3000 in
  let e_h = Is.estimate (cfg `Hosking 0.0) ~replications:reps (Rng.create ~seed:14) in
  let e_d =
    Is.estimate (cfg (`Davies_harte plan) 0.0) ~replications:reps (Rng.create ~seed:15)
  in
  if e_h.Mc.hits = 0 || e_d.Mc.hits = 0 then Alcotest.fail "degenerate: no hits";
  let band e = 4.0 *. sqrt (e.Mc.variance /. float_of_int e.Mc.replications) in
  close ~eps:(band e_h +. band e_d) "DH p vs Hosking p" e_h.Mc.p e_d.Mc.p

let test_is_deterministic_given_seed () =
  let table = fgn_table 80 in
  let cfg =
    Is.make_config ~table ~arrival:identity_arrival ~service:0.5 ~buffer:4.0 ~horizon:80
      ~twist:0.5 ()
  in
  let a = Is.estimate cfg ~replications:500 (Rng.create ~seed:13) in
  let b = Is.estimate cfg ~replications:500 (Rng.create ~seed:13) in
  close "reproducible" a.Mc.p b.Mc.p

(* ------------------------------------------------------------------ *)
(* Twist profiles                                                       *)
(* ------------------------------------------------------------------ *)

let test_twist_shapes () =
  close "constant" 2.0 (Twist.shift (Twist.constant 2.0) 17);
  close "zero" 0.0 (Twist.shift Twist.zero 3);
  Alcotest.(check bool) "zero is zero" true (Twist.is_zero Twist.zero);
  Alcotest.(check bool) "constant 0 collapses to zero" true (Twist.is_zero (Twist.constant 0.0));
  let r = Twist.ramp ~until:5 ~peak:4.0 in
  close "ramp start" 0.0 (Twist.shift r 0);
  close "ramp mid" 2.0 (Twist.shift r 2);
  close "ramp peak" 4.0 (Twist.shift r 4);
  close "ramp past peak" 4.0 (Twist.shift r 100);
  let f = Twist.front ~until:3 ~level:1.5 in
  close "front on" 1.5 (Twist.shift f 2);
  close "front off" 0.0 (Twist.shift f 3);
  raises_invalid "negative slot" (fun () -> Twist.shift Twist.zero (-1));
  raises_invalid "ramp until" (fun () -> Twist.ramp ~until:0 ~peak:1.0)

let test_twist_constant_value () =
  Alcotest.(check (option (float 1e-12))) "constant" (Some 1.5)
    (Twist.constant_value (Twist.constant 1.5));
  Alcotest.(check (option (float 1e-12))) "zero" (Some 0.0) (Twist.constant_value Twist.zero);
  Alcotest.(check (option (float 1e-12))) "ramp" None
    (Twist.constant_value (Twist.ramp ~until:5 ~peak:1.0))

let test_likelihood_profile_matches_constant () =
  (* A Fn profile that happens to be constant must produce the same
     likelihood as the Constant fast path. *)
  let table = fgn_table 40 in
  let a = Likelihood.of_plan (Likelihood.plan ~table ~profile:(Twist.constant 0.9)) in
  let b = Likelihood.of_plan (Likelihood.plan ~table ~profile:(Twist.of_fun (fun _ -> 0.9))) in
  let rng = Rng.create ~seed:40 in
  for k = 0 to 39 do
    let e = Rng.gaussian rng in
    Likelihood.step a ~k ~innovation:e;
    Likelihood.step b ~k ~innovation:e
  done;
  close ~eps:1e-12 "fast path = general path" (Likelihood.log_ratio a) (Likelihood.log_ratio b)

let test_likelihood_ramp_expectation_one () =
  (* E_X'[L] = 1 must hold for any deterministic profile. *)
  let n = 30 in
  let table = fgn_table ~h:0.8 n in
  let profile = Twist.ramp ~until:n ~peak:1.2 in
  let plan = Likelihood.plan ~table ~profile in
  let rng = Rng.create ~seed:41 in
  let reps = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to reps do
    let lik = Likelihood.of_plan plan in
    let xs = Array.make n 0.0 in
    for k = 0 to n - 1 do
      let m = Ss_fractal.Hosking.Table.cond_mean table xs k in
      let innovation = Ss_fractal.Hosking.Table.innovation_std table k *. Rng.gaussian rng in
      xs.(k) <- m +. innovation;
      Likelihood.step lik ~k ~innovation
    done;
    sum := !sum +. Likelihood.ratio lik
  done;
  close ~eps:0.05 "E[L] = 1 under ramp twist" 1.0 (!sum /. float_of_int reps)

let test_is_profile_unbiased_vs_constant () =
  (* The same overflow probability estimated under a ramp profile
     must agree with the constant-twist estimate. *)
  let table = fgn_table 150 in
  let base twist profile =
    Is.make_config ~table ~arrival:identity_arrival ~service:0.45 ~buffer:6.0 ~horizon:150
      ~twist ?profile ()
  in
  let const_e = Is.estimate (base 0.5 None) ~replications:4000 (Rng.create ~seed:42) in
  let ramp_e =
    Is.estimate
      (base 0.0 (Some (Twist.ramp ~until:150 ~peak:1.0)))
      ~replications:4000 (Rng.create ~seed:43)
  in
  let band e = 4.0 *. sqrt (e.Mc.variance /. float_of_int e.Mc.replications) in
  close ~eps:(band const_e +. band ramp_e) "ramp vs constant" const_e.Mc.p ramp_e.Mc.p

(* ------------------------------------------------------------------ *)
(* Valley                                                               *)
(* ------------------------------------------------------------------ *)

let valley_config table twist =
  Is.make_config ~table ~arrival:identity_arrival ~service:0.5 ~buffer:10.0 ~horizon:200
    ~twist ()

let test_valley_sweep_shape () =
  (* The normalized variance should dip at a moderate twist and rise
     again for overly aggressive twisting; minimally, the best twist
     must beat both the weakest twist in the sweep. *)
  let table = fgn_table ~h:0.75 200 in
  let config ~twist = valley_config table twist in
  let points =
    Valley.sweep ~config ~twists:[ 0.2; 0.6; 1.0; 1.5; 2.5; 4.0 ] ~replications:800
      (Rng.create ~seed:14)
  in
  Alcotest.(check int) "six points" 6 (List.length points);
  let best = Valley.best points in
  if best.Valley.twist <= 0.2 then Alcotest.fail "valley minimum at the weakest twist";
  let nv_of t =
    (List.find (fun p -> p.Valley.twist = t) points).Valley.estimate.Mc.normalized_variance
  in
  if best.Valley.estimate.Mc.normalized_variance >= nv_of 0.2 then
    Alcotest.fail "best twist no better than near-zero twist"

let test_valley_best_prefers_hits () =
  let mk twist hits nvar =
    {
      Valley.twist;
      estimate = { Mc.p = 0.1; variance = 0.0; normalized_variance = nvar; replications = 10; hits };
    }
  in
  (* A hitless point with tiny nvar must lose to a point with hits. *)
  let best = Valley.best [ mk 1.0 0 0.001; mk 2.0 5 1.0 ] in
  close "prefers hits" 2.0 best.Valley.twist

let test_valley_refine_brackets () =
  let table = fgn_table ~h:0.75 200 in
  let config ~twist = valley_config table twist in
  let p = Valley.refine ~config ~lo:0.3 ~hi:3.0 ~replications:400 ~iterations:6 (Rng.create ~seed:15) in
  if p.Valley.twist < 0.3 || p.Valley.twist > 3.0 then
    Alcotest.failf "refined twist %.2f escaped bracket" p.Valley.twist

let test_valley_auto () =
  let table = fgn_table ~h:0.75 200 in
  let config ~twist = valley_config table twist in
  let p = Valley.auto ~config ~replications:300 (Rng.create ~seed:44) in
  if p.Valley.estimate.Mc.hits = 0 then Alcotest.fail "auto twist found no hits";
  if p.Valley.twist <= 0.25 || p.Valley.twist > 6.0 then
    Alcotest.failf "auto twist %.2f outside range" p.Valley.twist

let test_valley_invalid () =
  let table = white_table 10 in
  let config ~twist = valley_config table twist in
  raises_invalid "empty sweep" (fun () ->
      ignore (Valley.sweep ~config ~twists:[] ~replications:10 (Rng.create ~seed:1)));
  raises_invalid "empty best" (fun () -> ignore (Valley.best []));
  raises_invalid "bad bracket" (fun () ->
      ignore (Valley.refine ~config ~lo:1.0 ~hi:1.0 ~replications:10 (Rng.create ~seed:1)))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_fastsim"
    [
      ( "likelihood",
        [
          tc "zero twist" test_likelihood_zero_twist_is_one;
          tc "Eq 48 first step" test_likelihood_first_step_closed_form;
          tc "iid product" test_likelihood_white_noise_product;
          tc "reset" test_likelihood_reset;
          tc "order enforced" test_likelihood_order_enforced;
          tc "E[L] = 1" test_likelihood_expectation_is_one;
          tc "stream = plan prefix" test_likelihood_stream_matches_plan_prefix;
          tc "stream constant = fn" test_likelihood_stream_constant_equals_fn_profile;
          tc "stream E[L] = 1" test_likelihood_stream_expectation_is_one;
          tc "stream reset and order" test_likelihood_stream_reset_and_order;
        ] );
      ( "is-estimator",
        [
          tc "zero twist = plain MC" test_is_zero_twist_equals_plain_mc;
          tc "log weight consistent" test_is_log_weight_consistent;
          tc "unbiased across twists" test_is_unbiased_across_twists;
          tc "variance reduction" test_is_variance_reduction;
          tc "rare event magnitude" test_is_rare_event_magnitude;
          tc "monotone in buffer" test_is_monotone_in_buffer;
          tc "full start dominates" test_is_full_start_dominates_empty;
          tc "replication stop step" test_is_replication_stop_step;
          tc "mean stop step" test_is_mean_stop_step_bounded;
          tc "config validation" test_is_config_validation;
          tc "Davies-Harte backend" test_is_davies_harte_backend;
          tc "deterministic" test_is_deterministic_given_seed;
        ] );
      ( "twist",
        [
          tc "shapes" test_twist_shapes;
          tc "constant_value" test_twist_constant_value;
          tc "profile = constant fast path" test_likelihood_profile_matches_constant;
          tc "E[L]=1 under ramp" test_likelihood_ramp_expectation_one;
          tc "ramp unbiased vs constant" test_is_profile_unbiased_vs_constant;
        ] );
      ( "valley",
        [
          tc "sweep shape" test_valley_sweep_shape;
          tc "best prefers hits" test_valley_best_prefers_hits;
          tc "refine brackets" test_valley_refine_brackets;
          tc "auto" test_valley_auto;
          tc "invalid" test_valley_invalid;
        ] );
    ]

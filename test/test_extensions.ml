(* Tests for the extension modules: distribution fitting, full
   FARIMA(p,d,q), the Whittle estimator, TES and DAR(1) baselines,
   Norros' formula, superposition, slices and batch means. *)

module Rng = Ss_stats.Rng
module D = Ss_stats.Descriptive
module Dist = Ss_stats.Dist
module Fit_dist = Ss_stats.Fit_dist
module Special = Ss_stats.Special
module Acf = Ss_fractal.Acf
module DH = Ss_fractal.Davies_harte
module Farima_pq = Ss_fractal.Farima_pq
module Whittle = Ss_fractal.Whittle
module Tes = Ss_fractal.Tes
module Dar = Ss_video.Dar
module Slices = Ss_video.Slices
module Trace = Ss_video.Trace
module Gop = Ss_video.Gop
module Norros = Ss_queueing.Norros
module Workload = Ss_queueing.Workload
module Batch_means = Ss_queueing.Batch_means

let close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

(* ------------------------------------------------------------------ *)
(* digamma / trigamma                                                   *)
(* ------------------------------------------------------------------ *)

let test_digamma_values () =
  (* psi(1) = -euler_gamma; psi(1/2) = -gamma - 2 ln 2; psi(2) = 1 - gamma *)
  let euler = 0.5772156649015329 in
  close ~eps:1e-10 "psi(1)" (-.euler) (Special.digamma 1.0);
  close ~eps:1e-10 "psi(2)" (1.0 -. euler) (Special.digamma 2.0);
  close ~eps:1e-10 "psi(0.5)" (-.euler -. (2.0 *. log 2.0)) (Special.digamma 0.5);
  raises_invalid "psi(0)" (fun () -> Special.digamma 0.0)

let test_digamma_recurrence () =
  (* psi(x+1) = psi(x) + 1/x *)
  List.iter
    (fun x ->
      close ~eps:1e-11
        (Printf.sprintf "recurrence at %g" x)
        (Special.digamma x +. (1.0 /. x))
        (Special.digamma (x +. 1.0)))
    [ 0.3; 1.7; 5.5; 20.0 ]

let test_trigamma_values () =
  (* psi'(1) = pi^2/6; psi'(1/2) = pi^2/2 *)
  let pi2 = Float.pi *. Float.pi in
  close ~eps:1e-10 "psi'(1)" (pi2 /. 6.0) (Special.trigamma 1.0);
  close ~eps:1e-9 "psi'(0.5)" (pi2 /. 2.0) (Special.trigamma 0.5)

(* ------------------------------------------------------------------ *)
(* Fit_dist                                                             *)
(* ------------------------------------------------------------------ *)

let gamma_sample ~shape ~scale ~n ~seed =
  let d = Dist.gamma ~shape ~scale in
  let rng = Rng.create ~seed in
  Array.init n (fun _ -> d.Dist.sample rng)

let test_gamma_moments_fit () =
  let data = gamma_sample ~shape:3.0 ~scale:2.0 ~n:50_000 ~seed:1 in
  let shape, scale = Fit_dist.gamma_moments data in
  close ~eps:0.15 "moments shape" 3.0 shape;
  close ~eps:0.15 "moments scale" 2.0 scale

let test_gamma_mle_fit () =
  let data = gamma_sample ~shape:0.7 ~scale:5.0 ~n:50_000 ~seed:2 in
  let shape, scale = Fit_dist.gamma_mle data in
  close ~eps:0.05 "mle shape" 0.7 shape;
  close ~eps:0.3 "mle scale" 5.0 scale

let test_gamma_mle_beats_moments_in_likelihood () =
  let data = gamma_sample ~shape:0.8 ~scale:3.0 ~n:10_000 ~seed:3 in
  let sh_m, sc_m = Fit_dist.gamma_moments data in
  let sh_l, sc_l = Fit_dist.gamma_mle data in
  let ll fit_shape fit_scale =
    Fit_dist.log_likelihood (Dist.gamma ~shape:fit_shape ~scale:fit_scale) data
  in
  if ll sh_l sc_l < ll sh_m sc_m -. 1e-6 then
    Alcotest.fail "MLE likelihood below moments likelihood"

let test_pareto_tail_mle () =
  let rng = Rng.create ~seed:4 in
  let data = Array.init 50_000 (fun _ -> Rng.pareto rng ~shape:1.5 ~scale:1.0) in
  let alpha, xc = Fit_dist.pareto_tail_mle data ~cut:0.9 in
  close ~eps:0.1 "tail index" 1.5 alpha;
  if xc <= 1.0 then Alcotest.fail "cut point below scale"

let test_gamma_pareto_auto () =
  let data = gamma_sample ~shape:2.0 ~scale:1.0 ~n:20_000 ~seed:5 in
  let d = Fit_dist.gamma_pareto_auto data in
  (* Valid distribution object with a heavier-than-gamma tail. *)
  close ~eps:1e-6 "cdf(q(0.5))" 0.5 (d.Dist.cdf (d.Dist.quantile 0.5));
  if d.Dist.quantile 0.9999 <= d.Dist.quantile 0.97 then Alcotest.fail "tail not increasing"

let test_lognormal_mle () =
  let rng = Rng.create ~seed:6 in
  let data = Array.init 50_000 (fun _ -> exp (1.0 +. (0.5 *. Rng.gaussian rng))) in
  let mu, sigma = Fit_dist.lognormal_mle data in
  close ~eps:0.02 "mu" 1.0 mu;
  close ~eps:0.02 "sigma" 0.5 sigma

let test_fit_dist_invalid () =
  raises_invalid "gamma_mle nonpositive" (fun () -> Fit_dist.gamma_mle [| 1.0; -2.0; 3.0 |]);
  raises_invalid "moments constant" (fun () -> Fit_dist.gamma_moments (Array.make 10 2.0));
  raises_invalid "pareto cut" (fun () -> Fit_dist.pareto_tail_mle [| 1.0; 2.0 |] ~cut:1.5)

(* ------------------------------------------------------------------ *)
(* Farima_pq                                                            *)
(* ------------------------------------------------------------------ *)

let test_farima_pq_reduces_to_fractional () =
  (* With no ARMA part it must match Acf.farima exactly. *)
  let f = Farima_pq.create ~d:0.3 ~ar:[||] ~ma:[||] in
  let got = Farima_pq.acf f in
  let want = Acf.farima ~d:0.3 in
  for k = 0 to 100 do
    close ~eps:1e-10 (Printf.sprintf "lag %d" k) (want.Acf.r k) (got.Acf.r k)
  done

let test_farima_pq_reduces_to_ar1 () =
  (* d = 0 with one AR coefficient is AR(1): r(k) = phi^k. *)
  let phi = 0.6 in
  let f = Farima_pq.create ~d:0.0 ~ar:[| phi |] ~ma:[||] in
  let acf = Farima_pq.acf f in
  for k = 0 to 20 do
    close ~eps:1e-9 (Printf.sprintf "AR(1) lag %d" k) (phi ** float_of_int k) (acf.Acf.r k)
  done

let test_farima_pq_reduces_to_ma1 () =
  (* d = 0 with one MA coefficient: r(1) = theta/(1+theta^2), r(k>1)=0. *)
  let theta = 0.5 in
  let f = Farima_pq.create ~d:0.0 ~ar:[||] ~ma:[| theta |] in
  let acf = Farima_pq.acf f in
  close ~eps:1e-12 "MA(1) r(1)" (theta /. (1.0 +. (theta *. theta))) (acf.Acf.r 1);
  close ~eps:1e-12 "MA(1) r(2)" 0.0 (acf.Acf.r 2)

let test_farima_pq_psi_weights () =
  let f = Farima_pq.create ~d:0.2 ~ar:[| 0.5 |] ~ma:[| 0.3 |] in
  let psi = Farima_pq.psi_weights f in
  close "psi_0" 1.0 psi.(0);
  close ~eps:1e-12 "psi_1 = theta + phi" 0.8 psi.(1);
  close ~eps:1e-12 "psi_2 = phi psi_1" 0.4 psi.(2)

let test_farima_pq_hurst_and_tail () =
  let f = Farima_pq.create ~d:0.4 ~ar:[| 0.3 |] ~ma:[||] in
  close "hurst" 0.9 (Farima_pq.hurst f);
  (* Asymptotic tail exponent 2d - 1 regardless of the ARMA part. *)
  let acf = Farima_pq.acf f in
  let slope = log (acf.Acf.r 4000 /. acf.Acf.r 1000) /. log 4.0 in
  close ~eps:0.01 "tail exponent" ((2.0 *. 0.4) -. 1.0) slope

let test_farima_pq_generation_matches_acf () =
  let f = Farima_pq.create ~d:0.25 ~ar:[| 0.4 |] ~ma:[| 0.2 |] in
  let acf = Farima_pq.acf f in
  let x = Farima_pq.generate f ~n:8_000 (Rng.create ~seed:7) in
  let r = D.acf x ~max_lag:5 in
  close ~eps:0.05 "exact gen r(1)" (acf.Acf.r 1) r.(1);
  close ~eps:0.05 "exact gen r(3)" (acf.Acf.r 3) r.(3);
  let y = Farima_pq.generate_filtered f ~n:8_000 (Rng.create ~seed:8) in
  let ry = D.acf y ~max_lag:5 in
  close ~eps:0.06 "filtered gen r(1)" (acf.Acf.r 1) ry.(1);
  close ~eps:0.03 "filtered variance 1" 1.0 (D.variance y)

let test_farima_pq_invalid () =
  raises_invalid "d too big" (fun () -> Farima_pq.create ~d:0.5 ~ar:[||] ~ma:[||]);
  raises_invalid "explosive AR" (fun () ->
      ignore (Farima_pq.create ~d:0.1 ~ar:[| 1.05 |] ~ma:[||]))

(* ------------------------------------------------------------------ *)
(* Linalg                                                               *)
(* ------------------------------------------------------------------ *)

module Linalg = Ss_stats.Linalg

let test_cholesky_known () =
  let a = [| [| 4.0; 2.0 |]; [| 2.0; 5.0 |] |] in
  let l = Linalg.cholesky a in
  close "l00" 2.0 l.(0).(0);
  close "l10" 1.0 l.(1).(0);
  close "l11" 2.0 l.(1).(1);
  close "l01 zero" 0.0 l.(0).(1)

let test_cholesky_reconstructs () =
  let rng = Rng.create ~seed:30 in
  let n = 8 in
  (* Random SPD matrix: B B^T + n I. *)
  let b = Array.init n (fun _ -> Array.init n (fun _ -> Rng.gaussian rng)) in
  let a =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let s = ref (if i = j then float_of_int n else 0.0) in
            for k = 0 to n - 1 do
              s := !s +. (b.(i).(k) *. b.(j).(k))
            done;
            !s))
  in
  let l = Linalg.cholesky a in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let s = ref 0.0 in
      for k = 0 to n - 1 do
        s := !s +. (l.(i).(k) *. l.(j).(k))
      done;
      close ~eps:1e-9 (Printf.sprintf "a(%d,%d)" i j) a.(i).(j) !s
    done
  done

let test_solve_spd_roundtrip () =
  let a = [| [| 4.0; 2.0; 0.0 |]; [| 2.0; 5.0; 1.0 |]; [| 0.0; 1.0; 3.0 |] |] in
  let x_true = [| 1.0; -2.0; 0.5 |] in
  let b = Linalg.mat_vec a x_true in
  let x = Linalg.solve_spd a b in
  Array.iteri (fun i v -> close ~eps:1e-10 (Printf.sprintf "x(%d)" i) x_true.(i) v) x

let test_least_squares_exact () =
  (* y = 2 x1 - 3 x2, noise-free. *)
  let rng = Rng.create ~seed:31 in
  let design = Array.init 50 (fun _ -> [| Rng.gaussian rng; Rng.gaussian rng |]) in
  let y = Array.map (fun row -> (2.0 *. row.(0)) -. (3.0 *. row.(1))) design in
  let c = Linalg.least_squares design y in
  close ~eps:1e-9 "c1" 2.0 c.(0);
  close ~eps:1e-9 "c2" (-3.0) c.(1)

let test_linalg_invalid () =
  raises_invalid "not square" (fun () -> Linalg.cholesky [| [| 1.0; 2.0 |] |]);
  raises_invalid "not symmetric" (fun () ->
      Linalg.cholesky [| [| 1.0; 2.0 |]; [| 0.0; 1.0 |] |]);
  raises_invalid "not PD" (fun () -> Linalg.cholesky [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |]);
  raises_invalid "singular design" (fun () ->
      Linalg.least_squares [| [| 1.0; 1.0 |]; [| 2.0; 2.0 |]; [| 3.0; 3.0 |] |] [| 1.0; 2.0; 3.0 |])

(* ------------------------------------------------------------------ *)
(* Frac_diff                                                            *)
(* ------------------------------------------------------------------ *)

module Frac_diff = Ss_fractal.Frac_diff

let test_frac_diff_weights_integer_d () =
  (* d = 1 gives the ordinary difference filter [1, -1, 0, ...]. *)
  let w = Frac_diff.weights ~d:1.0 ~n:5 in
  close "pi0" 1.0 w.(0);
  close "pi1" (-1.0) w.(1);
  close "pi2" 0.0 w.(2);
  close "pi3" 0.0 w.(3)

let test_frac_diff_identity_at_zero () =
  let x = [| 3.0; 1.0; 4.0; 1.5 |] in
  Alcotest.(check (list (float 1e-12)))
    "d=0 identity" (Array.to_list x)
    (Array.to_list (Frac_diff.difference ~d:0.0 x))

let test_frac_diff_roundtrip () =
  (* Differencing then integrating recovers the series up to the
     finite-filter startup error, which vanishes for later samples. *)
  let rng = Rng.create ~seed:32 in
  let x = Array.init 600 (fun _ -> Rng.gaussian rng) in
  let y = Frac_diff.integrate ~d:0.3 (Frac_diff.difference ~d:0.3 x) in
  for t = 0 to 599 do
    close ~eps:1e-9 (Printf.sprintf "roundtrip t=%d" t) x.(t) y.(t)
  done

let test_frac_diff_whitens_fractional_noise () =
  (* Differencing FARIMA(0,d,0) by d yields (approximately) white
     noise. *)
  let d = 0.35 in
  let x = DH.generate (DH.plan ~acf:(Acf.farima ~d) ~n:20_000) (Rng.create ~seed:33) in
  let w = Frac_diff.difference ~d x in
  (* Drop the filter's startup region. *)
  let w = Array.sub w 2_000 18_000 in
  let r = D.acf w ~max_lag:5 in
  for k = 1 to 5 do
    if abs_float r.(k) > 0.05 then
      Alcotest.failf "differenced series still correlated at lag %d: %.3f" k r.(k)
  done

(* ------------------------------------------------------------------ *)
(* Farima_fit                                                           *)
(* ------------------------------------------------------------------ *)

module Farima_fit = Ss_fractal.Farima_fit

let test_hannan_rissanen_ar1 () =
  (* Recover a pure AR(1). *)
  let rng = Rng.create ~seed:34 in
  let phi = 0.6 in
  let n = 30_000 in
  let x = Array.make n 0.0 in
  x.(0) <- Rng.gaussian rng;
  for t = 1 to n - 1 do
    x.(t) <- (phi *. x.(t - 1)) +. Rng.gaussian rng
  done;
  let ar, _, var = Farima_fit.hannan_rissanen ~p:1 ~q:0 x in
  close ~eps:0.03 "phi" phi ar.(0);
  close ~eps:0.05 "innovation variance" 1.0 var

let test_hannan_rissanen_ma1 () =
  let rng = Rng.create ~seed:35 in
  let theta = 0.5 in
  let n = 30_000 in
  let eps_prev = ref (Rng.gaussian rng) in
  let x =
    Array.init n (fun _ ->
        let e = Rng.gaussian rng in
        let v = e +. (theta *. !eps_prev) in
        eps_prev := e;
        v)
  in
  let _, ma, _ = Farima_fit.hannan_rissanen ~p:0 ~q:1 x in
  close ~eps:0.04 "theta" theta ma.(0)

let test_hannan_rissanen_arma11 () =
  let rng = Rng.create ~seed:36 in
  let phi = 0.5 and theta = 0.3 in
  let n = 40_000 in
  let x = Array.make n 0.0 in
  let e_prev = ref (Rng.gaussian rng) in
  x.(0) <- !e_prev;
  for t = 1 to n - 1 do
    let e = Rng.gaussian rng in
    x.(t) <- (phi *. x.(t - 1)) +. e +. (theta *. !e_prev);
    e_prev := e
  done;
  let ar, ma, _ = Farima_fit.hannan_rissanen ~p:1 ~q:1 x in
  close ~eps:0.06 "arma phi" phi ar.(0);
  close ~eps:0.08 "arma theta" theta ma.(0)

let test_farima_fit_recovers_d_and_ar () =
  (* End to end: generate FARIMA(1, 0.3, 0), fit, check d and phi. *)
  let truth = Farima_pq.create ~d:0.3 ~ar:[| 0.4 |] ~ma:[||] in
  let x = Farima_pq.generate_filtered truth ~n:16_384 (Rng.create ~seed:37) in
  let fitted = Farima_fit.fit ~p:1 ~q:0 x in
  close ~eps:0.08 "d" 0.3 fitted.Farima_fit.d;
  close ~eps:0.15 "phi" 0.4 fitted.Farima_fit.ar.(0);
  (* The fitted model's ACF must resemble the truth's. *)
  let ta = Farima_pq.acf truth and fa = Farima_pq.acf fitted.Farima_fit.model in
  List.iter
    (fun k ->
      if abs_float (ta.Acf.r k -. fa.Acf.r k) > 0.12 then
        Alcotest.failf "fitted ACF off at lag %d: %.3f vs %.3f" k (fa.Acf.r k) (ta.Acf.r k))
    [ 1; 5; 20 ]

let test_farima_fit_invalid () =
  raises_invalid "p+q = 0" (fun () ->
      ignore (Farima_fit.hannan_rissanen ~p:0 ~q:0 (Array.make 1000 0.0)));
  raises_invalid "too short" (fun () ->
      ignore (Farima_fit.hannan_rissanen ~p:1 ~q:1 (Array.make 50 0.0)))

(* ------------------------------------------------------------------ *)
(* Whittle                                                              *)
(* ------------------------------------------------------------------ *)

let test_whittle_spectral_density_integrates_to_variance () =
  (* f integrates to 1 over (-pi, pi) by construction. *)
  let integral =
    Ss_stats.Quadrature.simpson ~eps:1e-8
      (fun l -> Whittle.fgn_spectral_density ~h:0.8 l)
      ~lo:1e-5 ~hi:Float.pi
  in
  (* The (0, 1e-5) singular sliver carries ~0.3% of the mass. *)
  close ~eps:0.01 "2 * int f = 1" 0.5 integral

let test_whittle_density_blows_up_at_origin_for_lrd () =
  let f1 = Whittle.fgn_spectral_density ~h:0.9 0.01 in
  let f2 = Whittle.fgn_spectral_density ~h:0.9 0.1 in
  if f1 <= f2 then Alcotest.fail "LRD spectral density must diverge at the origin";
  (* H = 0.5 is flat white noise: f = 1/(2 pi). *)
  close ~eps:1e-3 "white noise level" (1.0 /. (2.0 *. Float.pi))
    (Whittle.fgn_spectral_density ~h:0.5 1.0)

let test_whittle_recovers_h () =
  List.iter
    (fun h ->
      let x = DH.generate (DH.plan ~acf:(Acf.fgn ~h) ~n:8192) (Rng.create ~seed:9) in
      let e = Whittle.estimate x in
      close ~eps:0.06 (Printf.sprintf "whittle at H=%g" h) h e.Whittle.h)
    [ 0.6; 0.75; 0.9 ]

let test_whittle_invalid () =
  raises_invalid "short series" (fun () -> ignore (Whittle.estimate (Array.make 64 0.0)));
  raises_invalid "bad lambda" (fun () -> ignore (Whittle.fgn_spectral_density ~h:0.7 0.0))

(* ------------------------------------------------------------------ *)
(* TES                                                                  *)
(* ------------------------------------------------------------------ *)

let test_tes_uniform_marginal () =
  (* Modulo-1 addition preserves uniformity; stitching does too. *)
  let t = Tes.create ~half_width:0.2 () in
  let u = Tes.generate t ~n:100_000 (Rng.create ~seed:10) in
  close ~eps:0.01 "mean 1/2" 0.5 (D.mean u);
  close ~eps:0.005 "variance 1/12" (1.0 /. 12.0) (D.variance u);
  Array.iter (fun v -> if v < 0.0 || v >= 1.0 then Alcotest.fail "outside [0,1)") u

let test_tes_correlation_grows_as_width_shrinks () =
  let r1_of hw =
    let t = Tes.create ~half_width:hw () in
    let u = Tes.generate t ~n:60_000 (Rng.create ~seed:11) in
    D.autocorrelation u 1
  in
  let tight = r1_of 0.05 and loose = r1_of 0.45 in
  if tight <= loose then
    Alcotest.failf "narrow innovations must correlate more: %.3f vs %.3f" tight loose

let test_tes_analytic_acf_matches_simulation () =
  (* Unstitched background (xi = 1) against the harmonic-series
     formula. *)
  let hw = 0.15 in
  let t = Tes.create ~xi:1.0 ~half_width:hw () in
  let u = Tes.generate t ~n:200_000 (Rng.create ~seed:12) in
  close ~eps:0.02 "analytic r(1)" (Tes.background_acf ~half_width:hw 1) (D.autocorrelation u 1);
  close ~eps:0.03 "analytic r(3)" (Tes.background_acf ~half_width:hw 3) (D.autocorrelation u 3)

let test_tes_acf_is_srd () =
  (* Geometric decay: r(k) for the background drops below any power
     law eventually; check r(50) is tiny for moderate bandwidth. *)
  let r50 = Tes.background_acf ~half_width:0.2 50 in
  if abs_float r50 > 0.01 then Alcotest.failf "TES r(50) = %g not SRD-small" r50

let test_tes_marginal_transform () =
  let target = Dist.exponential ~rate:2.0 in
  let t = Tes.create ~half_width:0.3 ~dist:target () in
  let x = Tes.generate t ~n:100_000 (Rng.create ~seed:13) in
  close ~eps:0.01 "exp mean through TES" 0.5 (D.mean x)

let test_tes_invalid () =
  raises_invalid "bad width" (fun () -> Tes.create ~half_width:0.0 ());
  raises_invalid "bad xi" (fun () -> Tes.create ~xi:1.5 ~half_width:0.1 ())

(* ------------------------------------------------------------------ *)
(* DAR(1)                                                               *)
(* ------------------------------------------------------------------ *)

let test_dar_acf_exactly_geometric () =
  let d = Dar.create ~rho:0.8 (Dist.exponential ~rate:1.0) in
  let acf = Dar.acf d in
  for k = 0 to 10 do
    close ~eps:1e-12 (Printf.sprintf "rho^%d" k) (0.8 ** float_of_int k) (acf.Acf.r k)
  done

let test_dar_sample_acf () =
  let d = Dar.create ~rho:0.7 (Dist.uniform ~lo:0.0 ~hi:1.0) in
  let x = Dar.generate d ~n:100_000 (Rng.create ~seed:14) in
  close ~eps:0.02 "sample r(1)" 0.7 (D.autocorrelation x 1);
  close ~eps:0.02 "sample r(3)" (0.7 ** 3.0) (D.autocorrelation x 3);
  close ~eps:0.01 "marginal mean" 0.5 (D.mean x)

let test_dar_of_trace_marginal () =
  let sizes = [| 10.0; 20.0; 20.0; 40.0 |] in
  let d = Dar.of_trace_marginal ~rho:0.5 sizes in
  let x = Dar.generate d ~n:50_000 (Rng.create ~seed:15) in
  (* All values must come from the empirical support (interpolated
     quantiles stay within [min,max]). *)
  Array.iter (fun v -> if v < 10.0 || v > 40.0 then Alcotest.failf "escaped support: %g" v) x

let test_dar_invalid () =
  raises_invalid "rho = 1" (fun () -> Dar.create ~rho:1.0 (Dist.uniform ~lo:0.0 ~hi:1.0))

(* ------------------------------------------------------------------ *)
(* Norros                                                               *)
(* ------------------------------------------------------------------ *)

let test_norros_kappa () =
  close ~eps:1e-12 "kappa(1/2)" 0.5 (Norros.kappa 0.5);
  (* kappa is maximized... check symmetry kappa(h) = kappa(1-h) *)
  close ~eps:1e-12 "kappa symmetry" (Norros.kappa 0.3) (Norros.kappa 0.7)

let test_norros_h_half_is_exponential_in_b () =
  (* At H = 1/2 the exponent is linear in b. *)
  let l b = Norros.log_overflow ~mean_rate:1.0 ~service:2.0 ~hurst:0.5 ~sigma2:1.0 ~buffer:b in
  close ~eps:1e-9 "doubling b doubles the exponent" (2.0 *. l 5.0) (l 10.0)

let test_norros_lrd_decays_slower () =
  (* Weibullian b^{2-2H}: the log-probability ratio between H = 0.9
     and H = 0.5 must grow with b. *)
  let l h b = Norros.log_overflow ~mean_rate:1.0 ~service:1.5 ~hurst:h ~sigma2:1.0 ~buffer:b in
  let gap b = l 0.9 b -. l 0.5 b in
  if gap 100.0 <= gap 10.0 then Alcotest.fail "LRD advantage must grow with buffer";
  if l 0.9 100.0 <= l 0.5 100.0 then Alcotest.fail "H=0.9 must overflow more at b=100"

let test_norros_monotonicities () =
  let base = Norros.overflow ~mean_rate:1.0 ~service:1.5 ~hurst:0.8 ~sigma2:1.0 ~buffer:10.0 in
  let bigger_buffer = Norros.overflow ~mean_rate:1.0 ~service:1.5 ~hurst:0.8 ~sigma2:1.0 ~buffer:20.0 in
  let faster_service = Norros.overflow ~mean_rate:1.0 ~service:2.5 ~hurst:0.8 ~sigma2:1.0 ~buffer:10.0 in
  if bigger_buffer >= base then Alcotest.fail "larger buffer must reduce overflow";
  if faster_service >= base then Alcotest.fail "faster service must reduce overflow"

let test_norros_invalid () =
  raises_invalid "unstable" (fun () ->
      ignore (Norros.log_overflow ~mean_rate:2.0 ~service:1.0 ~hurst:0.8 ~sigma2:1.0 ~buffer:1.0))

(* ------------------------------------------------------------------ *)
(* Workload superposition                                               *)
(* ------------------------------------------------------------------ *)

let test_superpose_sums () =
  let s = Workload.superpose [ [| 1.0; 2.0; 3.0 |]; [| 10.0; 20.0; 30.0 |] ] in
  Alcotest.(check (list (float 1e-12))) "sums" [ 11.0; 22.0; 33.0 ] (Array.to_list s)

let test_superpose_truncates () =
  let s = Workload.superpose ~truncate:true [ [| 1.0; 2.0 |]; [| 1.0; 1.0; 1.0 |] ] in
  Alcotest.(check int) "shortest wins" 2 (Array.length s);
  Alcotest.(check (list (float 1e-12))) "prefix sums" [ 2.0; 3.0 ] (Array.to_list s)

let test_superpose_length_mismatch_raises () =
  raises_invalid "unequal lengths" (fun () ->
      ignore (Workload.superpose [ [| 1.0; 2.0 |]; [| 1.0; 1.0; 1.0 |] ]))

let test_superpose_gen_independent () =
  let gen rng = Array.init 1000 (fun _ -> Rng.gaussian rng) in
  let s = Workload.superpose_gen gen ~sources:16 (Rng.create ~seed:16) in
  (* Variance of a sum of 16 independent N(0,1) sources is 16. *)
  close ~eps:2.0 "variance adds" 16.0 (D.variance s)

let test_superpose_smooths () =
  (* Multiplexing gain: peak-to-mean drops as sources are added. *)
  let rng = Rng.create ~seed:17 in
  let gen rng = Array.init 5000 (fun _ -> Rng.exponential rng ~rate:1.0) in
  let one = Workload.peak_to_mean (gen (Rng.split rng)) in
  let many = Workload.peak_to_mean (Workload.superpose_gen gen ~sources:32 (Rng.split rng)) in
  if many >= one then Alcotest.fail "superposition must smooth the peak-to-mean ratio"

let test_workload_invalid () =
  raises_invalid "no sources" (fun () -> Workload.superpose []);
  raises_invalid "zero sources" (fun () ->
      ignore (Workload.superpose_gen (fun _ -> [| 1.0 |]) ~sources:0 (Rng.create ~seed:1)))

(* ------------------------------------------------------------------ *)
(* Slices                                                               *)
(* ------------------------------------------------------------------ *)

let small_trace () =
  Trace.make ~gop:(Gop.of_string "I") [| 150.0; 300.0; 75.0 |]

let test_slices_conserve_bytes () =
  let t = small_trace () in
  let spread = Slices.spread_evenly ~per_frame:15 t in
  let front = Slices.front_loaded ~per_frame:15 t in
  let total xs = Array.fold_left ( +. ) 0.0 xs in
  close ~eps:1e-9 "spread conserves" 525.0 (total spread);
  close ~eps:1e-9 "front conserves" 525.0 (total front);
  Alcotest.(check int) "length" 45 (Array.length spread)

let test_slices_spread_values () =
  let t = small_trace () in
  let spread = Slices.spread_evenly ~per_frame:3 t in
  Alcotest.(check (list (float 1e-9)))
    "even division"
    [ 50.0; 50.0; 50.0; 100.0; 100.0; 100.0; 25.0; 25.0; 25.0 ]
    (Array.to_list spread)

let test_slices_smoothing_reduces_overflow () =
  (* The frame-spreading claim: with the same utilization, spreading
     strictly reduces queue exceedance at small buffers. *)
  let movie =
    Ss_video.Scene_source.generate
      { Ss_video.Scene_source.default with frames = 8_000; gop = Gop.of_string "I" }
      (Rng.create ~seed:18)
  in
  let spread = Slices.spread_evenly movie in
  let front = Slices.front_loaded movie in
  let frac arrivals =
    let qp = Ss_queueing.Trace_sim.queue_path ~arrivals ~utilization:0.8 in
    Ss_queueing.Trace_sim.overflow_fraction ~queue_path:qp
      ~buffer:(2.0 *. D.mean arrivals)
  in
  if frac spread >= frac front then
    Alcotest.fail "spreading did not reduce small-buffer overflow"

let test_slices_invalid () =
  raises_invalid "per_frame 0" (fun () ->
      ignore (Slices.spread_evenly ~per_frame:0 (small_trace ())))

(* ------------------------------------------------------------------ *)
(* Batch means                                                          *)
(* ------------------------------------------------------------------ *)

let test_batch_means_iid_coverage () =
  (* For iid data the 95% interval should usually cover the truth. *)
  let rng = Rng.create ~seed:19 in
  let covered = ref 0 in
  for _ = 1 to 40 do
    let x = Array.init 3_000 (fun _ -> Rng.gaussian rng) in
    let r = Batch_means.analyze x in
    if abs_float r.Batch_means.mean <= r.Batch_means.half_width then incr covered
  done;
  if !covered < 30 then Alcotest.failf "coverage too low: %d/40" !covered

let test_batch_means_mean_matches () =
  let x = Array.init 900 (fun i -> float_of_int (i mod 3)) in
  let r = Batch_means.analyze ~batches:30 x in
  close ~eps:1e-9 "grand mean" 1.0 r.Batch_means.mean;
  Alcotest.(check int) "batch size" 30 r.Batch_means.batch_size

let test_batch_means_lrd_correlation_persists () =
  (* Under strong LRD, batch means remain correlated — the paper's
     caveat about single-trace estimates. *)
  let x = DH.generate (DH.plan ~acf:(Acf.fgn ~h:0.95) ~n:30_000) (Rng.create ~seed:20) in
  let lrd = (Batch_means.analyze ~batches:30 x).Batch_means.lag1_batch_corr in
  let rng = Rng.create ~seed:21 in
  let iid = Array.init 30_000 (fun _ -> Rng.gaussian rng) in
  let srd = (Batch_means.analyze ~batches:30 iid).Batch_means.lag1_batch_corr in
  if lrd <= srd +. 0.1 then
    Alcotest.failf "LRD batch correlation (%.3f) not above iid level (%.3f)" lrd srd

let test_batch_means_overflow_indicator () =
  let ind = Batch_means.overflow_indicator ~queue_path:[| 0.0; 3.0; 1.0; 5.0 |] ~buffer:2.0 in
  Alcotest.(check (list (float 1e-12))) "indicator" [ 0.0; 1.0; 0.0; 1.0 ] (Array.to_list ind)

let test_batch_means_invalid () =
  raises_invalid "too short" (fun () -> ignore (Batch_means.analyze ~batches:30 (Array.make 10 0.0)))

(* ------------------------------------------------------------------ *)
(* QCheck properties over the extension modules                         *)
(* ------------------------------------------------------------------ *)

let prop_frac_diff_roundtrip =
  QCheck.Test.make ~name:"fractional difference/integrate roundtrip" ~count:50
    QCheck.(pair (float_range (-0.45) 0.45) (array_of_size Gen.(int_range 10 100) (float_range (-10.0) 10.0)))
    (fun (d, x) ->
      let y = Frac_diff.integrate ~d (Frac_diff.difference ~d x) in
      Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-6) x y)

let prop_cholesky_diag_positive =
  QCheck.Test.make ~name:"cholesky diagonal positive on A A^T + I" ~count:50
    QCheck.(array_of_size Gen.(int_range 2 6) (array_of_size Gen.(int_range 2 6) (float_range (-2.0) 2.0)))
    (fun rows ->
      (* Build a square SPD matrix from possibly ragged random rows. *)
      let n = Array.length rows in
      let m = Array.fold_left (fun a r -> Stdlib.min a (Array.length r)) max_int rows in
      QCheck.assume (m >= 1);
      let a =
        Array.init n (fun i ->
            Array.init n (fun j ->
                let s = ref (if i = j then 1.0 +. float_of_int m else 0.0) in
                for k = 0 to m - 1 do
                  s := !s +. (rows.(i).(k) *. rows.(j).(k))
                done;
                !s))
      in
      let l = Linalg.cholesky a in
      Array.for_all (fun i -> l.(i).(i) > 0.0) (Array.init n (fun i -> i)))

let prop_dar_within_support =
  QCheck.Test.make ~name:"DAR(1) samples stay in the marginal's range" ~count:30
    QCheck.(pair (float_range 0.0 0.95) (int_range 1 1000))
    (fun (rho, seed) ->
      let d = Dar.create ~rho (Dist.uniform ~lo:2.0 ~hi:5.0) in
      let x = Dar.generate d ~n:200 (Rng.create ~seed) in
      Array.for_all (fun v -> v >= 2.0 && v <= 5.0) x)

let prop_norros_decreasing_in_buffer =
  QCheck.Test.make ~name:"Norros overflow decreasing in buffer" ~count:100
    QCheck.(triple (float_range 0.55 0.95) (float_range 0.1 10.0) (float_range 0.1 50.0))
    (fun (h, b1, b2) ->
      let lo = Stdlib.min b1 b2 and hi = Stdlib.max b1 b2 in
      let p b = Norros.overflow ~mean_rate:1.0 ~service:2.0 ~hurst:h ~sigma2:1.0 ~buffer:b in
      p hi <= p lo +. 1e-12)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_frac_diff_roundtrip;
      prop_cholesky_diag_positive;
      prop_dar_within_support;
      prop_norros_decreasing_in_buffer;
    ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "extensions"
    [
      ( "digamma",
        [
          tc "reference values" test_digamma_values;
          tc "recurrence" test_digamma_recurrence;
          tc "trigamma" test_trigamma_values;
        ] );
      ( "fit-dist",
        [
          tc "gamma moments" test_gamma_moments_fit;
          tc "gamma MLE" test_gamma_mle_fit;
          tc "MLE beats moments" test_gamma_mle_beats_moments_in_likelihood;
          tc "pareto tail" test_pareto_tail_mle;
          tc "gamma/pareto auto" test_gamma_pareto_auto;
          tc "lognormal MLE" test_lognormal_mle;
          tc "invalid" test_fit_dist_invalid;
        ] );
      ( "farima-pq",
        [
          tc "reduces to FARIMA(0,d,0)" test_farima_pq_reduces_to_fractional;
          tc "reduces to AR(1)" test_farima_pq_reduces_to_ar1;
          tc "reduces to MA(1)" test_farima_pq_reduces_to_ma1;
          tc "psi weights" test_farima_pq_psi_weights;
          tc "hurst and tail" test_farima_pq_hurst_and_tail;
          tc "generation matches acf" test_farima_pq_generation_matches_acf;
          tc "invalid" test_farima_pq_invalid;
        ] );
      ( "linalg",
        [
          tc "cholesky known" test_cholesky_known;
          tc "cholesky reconstructs" test_cholesky_reconstructs;
          tc "solve spd" test_solve_spd_roundtrip;
          tc "least squares" test_least_squares_exact;
          tc "invalid" test_linalg_invalid;
        ] );
      ( "frac-diff",
        [
          tc "integer d weights" test_frac_diff_weights_integer_d;
          tc "identity at d=0" test_frac_diff_identity_at_zero;
          tc "roundtrip" test_frac_diff_roundtrip;
          tc "whitens fractional noise" test_frac_diff_whitens_fractional_noise;
        ] );
      ( "farima-fit",
        [
          tc "HR recovers AR(1)" test_hannan_rissanen_ar1;
          tc "HR recovers MA(1)" test_hannan_rissanen_ma1;
          tc "HR recovers ARMA(1,1)" test_hannan_rissanen_arma11;
          tc "end-to-end FARIMA" test_farima_fit_recovers_d_and_ar;
          tc "invalid" test_farima_fit_invalid;
        ] );
      ( "whittle",
        [
          tc "density integrates" test_whittle_spectral_density_integrates_to_variance;
          tc "LRD divergence at 0" test_whittle_density_blows_up_at_origin_for_lrd;
          tc "recovers H" test_whittle_recovers_h;
          tc "invalid" test_whittle_invalid;
        ] );
      ( "tes",
        [
          tc "uniform marginal" test_tes_uniform_marginal;
          tc "bandwidth controls correlation" test_tes_correlation_grows_as_width_shrinks;
          tc "analytic acf" test_tes_analytic_acf_matches_simulation;
          tc "SRD only" test_tes_acf_is_srd;
          tc "marginal transform" test_tes_marginal_transform;
          tc "invalid" test_tes_invalid;
        ] );
      ( "dar",
        [
          tc "geometric acf" test_dar_acf_exactly_geometric;
          tc "sample acf" test_dar_sample_acf;
          tc "trace marginal" test_dar_of_trace_marginal;
          tc "invalid" test_dar_invalid;
        ] );
      ( "norros",
        [
          tc "kappa" test_norros_kappa;
          tc "H=1/2 exponential" test_norros_h_half_is_exponential_in_b;
          tc "LRD decays slower" test_norros_lrd_decays_slower;
          tc "monotonicities" test_norros_monotonicities;
          tc "invalid" test_norros_invalid;
        ] );
      ( "workload",
        [
          tc "superpose sums" test_superpose_sums;
          tc "superpose truncates (opt-in)" test_superpose_truncates;
          tc "superpose length mismatch raises" test_superpose_length_mismatch_raises;
          tc "variance adds" test_superpose_gen_independent;
          tc "smooths peaks" test_superpose_smooths;
          tc "invalid" test_workload_invalid;
        ] );
      ( "slices",
        [
          tc "conserve bytes" test_slices_conserve_bytes;
          tc "spread values" test_slices_spread_values;
          tc "smoothing reduces overflow" test_slices_smoothing_reduces_overflow;
          tc "invalid" test_slices_invalid;
        ] );
      ( "batch-means",
        [
          tc "iid coverage" test_batch_means_iid_coverage;
          tc "grand mean" test_batch_means_mean_matches;
          tc "LRD correlation persists" test_batch_means_lrd_correlation_persists;
          tc "overflow indicator" test_batch_means_overflow_indicator;
          tc "invalid" test_batch_means_invalid;
        ] );
      ("properties", qcheck_cases);
    ]

module Hosking = Ss_fractal.Hosking
module Davies_harte = Ss_fractal.Davies_harte
module Transform = Ss_fractal.Transform

type generator =
  | Hosking_stream
  | Hosking_table of Hosking.Table.t
  | Davies_harte

let table_cache : (string * int, Hosking.Table.t) Hashtbl.t = Hashtbl.create 8
let plan_cache : (string * int, Ss_fractal.Davies_harte.plan) Hashtbl.t = Hashtbl.create 8

let table model ~n =
  let acf = Model.background_acf model in
  let key = (acf.Ss_fractal.Acf.name, n) in
  match Hashtbl.find_opt table_cache key with
  | Some t -> t
  | None ->
    let t = Hosking.Table.make ~acf ~n in
    Hashtbl.add table_cache key t;
    t

let dh_plan model ~n =
  let acf = Model.background_acf model in
  let key = (acf.Ss_fractal.Acf.name, n) in
  match Hashtbl.find_opt plan_cache key with
  | Some p -> p
  | None ->
    let p = Ss_fractal.Davies_harte.plan ~acf ~n in
    Hashtbl.add plan_cache key p;
    p

let background model ~n gen rng =
  if n <= 0 then invalid_arg "Generate.background: n <= 0";
  match gen with
  | Hosking_stream -> Hosking.generate_stream ~acf:(Model.background_acf model) ~n rng
  | Hosking_table t ->
    if Hosking.Table.length t < n then
      invalid_arg "Generate.background: table shorter than n";
    let buf = Array.make n 0.0 in
    Hosking.generate_into t rng buf;
    buf
  | Davies_harte -> Ss_fractal.Davies_harte.generate (dh_plan model ~n) rng

let foreground model ~n gen rng =
  Transform.apply model.Model.transform (background model ~n gen rng)

let arrival_fn model =
  let h = model.Model.transform in
  fun _i x -> Transform.apply1 h x

let seed = 19950828 (* SIGCOMM '95, Cambridge MA *)

(* Chosen by scanning realizations of the scene model for the one
   whose variance-time and R/S Hurst estimates (0.889 / 0.878-0.900)
   and ACF shape best match the paper's empirical trace. *)
let trace_seed = 15

let rng () = Ss_stats.Rng.create ~seed

let scene_config_intra =
  {
    Ss_video.Scene_source.default with
    frames = 131_072;
    gop = Ss_video.Gop.of_string "I";
  }

let scene_config_ibp = { Ss_video.Scene_source.default with frames = 131_072 }

let memo f =
  let cache = ref None in
  fun () ->
    match !cache with
    | Some t -> t
    | None ->
      let t = f () in
      cache := Some t;
      t

let reference_trace_intra =
  memo (fun () ->
      Ss_video.Scene_source.generate scene_config_intra
        (Ss_stats.Rng.create ~seed:trace_seed))

let reference_trace_ibp =
  memo (fun () ->
      Ss_video.Scene_source.generate scene_config_ibp
        (Ss_stats.Rng.create ~seed:trace_seed))

let full_scale =
  match Sys.getenv_opt "SS_FULL" with
  | Some ("" | "0" | "false") | None -> false
  | Some _ -> true

let replications =
  match Option.bind (Sys.getenv_opt "SS_REPLICATIONS") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> if full_scale then 1000 else 300

(** The paper's four-step unified fitting pipeline (Section 3.2).

    Step 1 estimates the Hurst parameter from variance–time and R/S
    analysis and adopts their (rounded) combination. Step 2 fits the
    composite knee autocorrelation with the LRD exponent pinned to
    [beta = 2 - 2H]. Step 3 obtains the attenuation factor [a] of the
    histogram-inversion transform — by Gauss–Hermite quadrature
    (exact, default) or by the paper's simulation measurement.
    Step 4 compensates the background autocorrelation by [a]
    (Eq 14). The result is a generative {!Model.t}. *)

type diagnostics = {
  h_variance_time : Ss_fractal.Hurst.estimate;
  h_rs : Ss_fractal.Hurst.estimate;
  h_adopted : float;
  acf_points : (int * float) list;  (** empirical ACF used for the fit *)
  raw_fit : Ss_fractal.Acf_fit.params;  (** before compensation *)
  compensated : Ss_fractal.Acf_fit.params;  (** after Eq 14 *)
  attenuation : float;
}

type attenuation_method =
  | Quadrature  (** Gauss–Hermite on the fitted transform *)
  | Measured of { n : int; lags : int list; rng : Ss_stats.Rng.t }
      (** the paper's Step 3: one synthetic run, ratio at large lags *)

val hurst_round : float -> float
(** Round to the nearest 0.05 as the paper does when adopting
    H = 0.9 from estimates 0.89 and 0.92. Clamped into
    [\[0.55, 0.95\]] so downstream [beta = 2 - 2H] stays in (0,1). *)

val fit :
  ?max_lag:int ->
  ?knee_candidates:int list ->
  ?attenuation:attenuation_method ->
  float array ->
  Model.t * diagnostics
(** [fit sizes] runs the full pipeline on a frame-size series
    (default [max_lag] 500, default attenuation by quadrature).
    @raise Invalid_argument if the series is too short for the
    requested lags (needs at least [10 * max_lag] points for sane
    ACF estimates). *)

val fit_trace : ?max_lag:int -> Ss_video.Trace.t -> Model.t * diagnostics
(** Convenience wrapper over [fit] on the whole trace. *)

val refine :
  ?rounds:int ->
  ?gain:float ->
  ?paths:int ->
  ?path_length:int ->
  Model.t ->
  target:(int * float) list ->
  Ss_stats.Rng.t ->
  Model.t * float list
(** The paper's "systematically iterate until the SRD part of the
    foreground process matches that of the empirical stream"
    (Section 1): fixed-point refinement of the background
    autocorrelation. Each of the [rounds] (default 4) rounds
    generates [paths] (default 4) Davies–Harte foreground paths of
    [path_length] (default 32768) slots, measures their average
    sample ACF at the [target] lags, and nudges the background by
    [gain] (default 0.8) times the residual, clamped to valid
    correlations. Lags beyond the largest target lag are left
    untouched. Stops early (returning the last generatable model) if
    an adjustment leaves the positive-definite cone. Returns the
    refined model and the per-round RMS residuals (first entry =
    before any adjustment). *)

module Acf = Ss_fractal.Acf
module Acf_fit = Ss_fractal.Acf_fit
module Hosking = Ss_fractal.Hosking
module Davies_harte = Ss_fractal.Davies_harte
module Composite = Ss_video.Composite
module Trace = Ss_video.Trace
module Gop = Ss_video.Gop
module Frame = Ss_video.Frame
module Transform = Ss_fractal.Transform

type t = {
  i_model : Model.t;
  i_diag : Fit.diagnostics;
  composite : Composite.t;
  background : Acf.t;
  gop : Gop.t;
  fps : float;
}

let fit ?(i_max_lag = 80) trace =
  let i_sizes = Trace.of_kind trace Frame.I in
  let i_model, i_diag = Fit.fit ~max_lag:i_max_lag i_sizes in
  let composite = Composite.of_trace trace in
  (* Foreground target at frame rate: the I-frame fit stretched by
     the I period (Eq 15). The background must compensate for the
     composite transform family; use the frame-count-weighted average
     of the per-type Hermite correlation responses and invert it
     pointwise (the exact form of the paper's mean-attenuation
     division). *)
  let period = Gop.i_period trace.Trace.gop in
  let target = Acf_fit.rescaled_acf i_diag.Fit.raw_fit ~period in
  let responses =
    List.filter_map
      (fun kind ->
        let count = Gop.count_in_pattern trace.Trace.gop kind in
        if count = 0 then None
        else
          Some
            ( float_of_int count,
              Transform.response (Composite.transform composite kind) ))
      [ Frame.I; Frame.P; Frame.B ]
  in
  let total_weight = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 responses in
  let mean_response r =
    List.fold_left (fun acc (w, rho) -> acc +. (w *. rho r)) 0.0 responses /. total_weight
  in
  let background =
    Acf.memoize
      (Acf.of_fun
         ~name:(Printf.sprintf "mpeg-inv(%s)" target.Acf.name)
         (fun k -> Transform.invert_response mean_response ~target:(target.Acf.r k)))
  in
  {
    i_model;
    i_diag;
    composite;
    background;
    gop = trace.Trace.gop;
    fps = trace.Trace.fps;
  }

let generate t ~n rng =
  let plan = Davies_harte.plan ~acf:t.background ~n in
  let x = Davies_harte.generate plan rng in
  Composite.apply t.composite x

let generate_hosking t ~n rng =
  let x = Hosking.generate_stream ~acf:t.background ~n rng in
  Composite.apply t.composite x

let background_table t ~n = Hosking.Table.make ~acf:t.background ~n

let arrival_fn t =
  fun i x ->
    let kind = Gop.kind_at t.gop i in
    Stdlib.max 0.0 (Transform.apply1 (Composite.transform t.composite kind) x)

lib/core/defaults.ml: Option Ss_stats Ss_video Sys

lib/core/report.mli: Fit Format Model Ss_fractal Ss_queueing

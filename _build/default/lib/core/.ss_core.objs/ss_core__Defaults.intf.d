lib/core/defaults.mli: Ss_stats Ss_video

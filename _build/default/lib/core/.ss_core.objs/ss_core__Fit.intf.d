lib/core/fit.mli: Model Ss_fractal Ss_stats Ss_video

lib/core/report.ml: Fit Format Model Ss_fractal Ss_queueing

lib/core/model.mli: Ss_fractal

lib/core/generate.mli: Model Ss_fastsim Ss_fractal Ss_stats

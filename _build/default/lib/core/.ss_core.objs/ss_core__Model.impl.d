lib/core/model.ml: Ss_fractal

lib/core/generate.ml: Array Hashtbl Model Ss_fractal

lib/core/fit.ml: Array Float List Model Printf Ss_fractal Ss_stats Ss_video Stdlib

lib/core/mpeg.ml: Fit List Model Printf Ss_fractal Ss_video Stdlib

lib/core/mpeg.mli: Fit Model Ss_fastsim Ss_fractal Ss_stats Ss_video

(** Calibration constants for the reference reproduction experiments.

    Centralizes the choices EXPERIMENTS.md documents: the seeds, the
    synthetic "empirical" trace configurations (the substitute for
    the paper's "Last Action Hero") and the experiment sizes.

    The paper works with two encodings of the same movie: an
    intraframe-only MPEG-1 pass (Sections 3.1–3.2, Figs 1–8, and the
    queueing study of Section 4) and an interframe I/B/P pass
    (Section 3.3, Figs 9–13). {!reference_trace_intra} and
    {!reference_trace_ibp} play those two roles. [trace_seed] selects
    the fixed realization whose Hurst estimates (variance–time 0.89,
    R/S ~0.9) match the paper's empirical values — an empirical trace
    is a single fixed realization, so pinning the seed is the exact
    analogue of everyone using the same movie. *)

val seed : int
(** Master seed for simulation experiments. *)

val trace_seed : int
(** Seed of the calibrated reference-trace realization. *)

val rng : unit -> Ss_stats.Rng.t
(** A fresh generator seeded with {!seed}. *)

val scene_config_intra : Ss_video.Scene_source.config
(** Intraframe reference configuration: H = 0.9 target, 30 fps,
    GOP ["I"], 2^17 frames, mean I frame ~9 kB. *)

val scene_config_ibp : Ss_video.Scene_source.config
(** Interframe reference configuration: same, GOP [IBBPBBPBBPBB]. *)

val reference_trace_intra : unit -> Ss_video.Trace.t
(** Generate (memoized per process) the intraframe reference trace.
    Deterministic. *)

val reference_trace_ibp : unit -> Ss_video.Trace.t
(** Generate (memoized per process) the interframe reference
    trace. Deterministic. *)

val replications : int
(** Default replication count for queueing experiments (paper: 1000;
    default here 300; override with SS_REPLICATIONS or SS_FULL). *)

val full_scale : bool
(** True when the SS_FULL environment variable is set: experiment
    sizes match the paper (1000 replications etc.). *)

(** Synthesis of foreground traffic from a fitted model.

    The background Gaussian path comes from Hosking's method (exact,
    quadratic — used for queueing/IS where conditional structure
    matters) or Davies–Harte (exact, O(n log n) — used for long
    traces); the foreground is the marginal transform of the
    background (Eq 7). *)

type generator =
  | Hosking_stream  (** O(n) memory Durbin–Levinson, one-shot *)
  | Hosking_table of Ss_fractal.Hosking.Table.t
      (** reuse a precomputed table (must be at least [n] long) *)
  | Davies_harte  (** circulant embedding; plans are cached per (model, n) *)

val background : Model.t -> n:int -> generator -> Ss_stats.Rng.t -> float array
(** A zero-mean unit-variance background path realizing the model's
    compensated autocorrelation. @raise Invalid_argument if [n <= 0],
    a supplied table is too short, or the Davies–Harte embedding
    fails for this autocorrelation/length. *)

val foreground : Model.t -> n:int -> generator -> Ss_stats.Rng.t -> float array
(** [transform (background ...)]: a synthetic frame-size series with
    the model's marginal and dependence. *)

val table : Model.t -> n:int -> Ss_fractal.Hosking.Table.t
(** Build (and cache, keyed by the background ACF name and length) a
    Hosking table for this model — shared by the importance-sampling
    experiments. *)

val arrival_fn : Model.t -> Ss_fastsim.Is_estimator.arrival
(** The per-slot foreground map for the importance sampler: ignores
    the slot index and applies the marginal transform. *)

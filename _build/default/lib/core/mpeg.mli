(** Composite modeling of interframe-compressed MPEG video (paper
    Section 3.3).

    The pipeline: (1) isolate the I frames of a reference trace and
    fit the unified model to them (Section 3.2 applied at I-frame
    granularity); (2) rescale the fitted I-frame autocorrelation to
    the full frame timeline by the I-frame period, [r(k) =
    r_I(k / K_I)] (Eq 15); (3) build the three per-type histogram
    transforms; (4) drive all three from one background process. *)

type t = {
  i_model : Model.t;  (** unified model fitted on the I subsequence *)
  i_diag : Fit.diagnostics;
  composite : Ss_video.Composite.t;  (** per-type transforms *)
  background : Ss_fractal.Acf.t;
      (** rescaled + attenuation-compensated full-rate background ACF *)
  gop : Ss_video.Gop.t;
  fps : float;
}

val fit : ?i_max_lag:int -> Ss_video.Trace.t -> t
(** Fit the composite model to a reference trace (default I-frame
    ACF fitted to lag 80, i.e. 960 frame lags under the 12-frame
    GOP). The compensation uses the frame-count-weighted mean
    attenuation of the three transforms. @raise Invalid_argument if
    the trace is too short. *)

val generate : t -> n:int -> Ss_stats.Rng.t -> Ss_video.Trace.t
(** Synthesize [n] frames: one Davies–Harte background path pushed
    through the per-type transforms along the GOP pattern. *)

val generate_hosking : t -> n:int -> Ss_stats.Rng.t -> Ss_video.Trace.t
(** Same, with the streaming Hosking generator (slower; used for
    cross-validation and when the embedding fails). *)

val background_table : t -> n:int -> Ss_fractal.Hosking.Table.t
(** Hosking table of the rescaled background — for composite-source
    importance sampling. *)

val arrival_fn : t -> Ss_fastsim.Is_estimator.arrival
(** Slot-indexed foreground map [h_{kind i}] for the importance
    sampler. *)

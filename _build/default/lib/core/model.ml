module Acf = Ss_fractal.Acf
module Acf_fit = Ss_fractal.Acf_fit
module Transform = Ss_fractal.Transform

type dependence =
  | Srd_lrd of Acf_fit.params
  | Srd_only of float
  | Lrd_only of float

type t = {
  transform : Transform.t;
  dependence : dependence;
  background : Acf.t;
  hurst : float;
  attenuation : float;
  mean : float;
}

let background_of_dependence ~transform = function
  | Srd_lrd p -> Transform.background_acf_for transform ~target:(Acf_fit.to_acf p)
  | Srd_only lambda -> Acf.exponential ~lambda
  | Lrd_only h -> Acf.fgn ~h

let background_acf t = t.background

let with_background t background = { t with background }

let with_dependence t dependence =
  {
    t with
    dependence;
    background = background_of_dependence ~transform:t.transform dependence;
  }

let variant_name t =
  match t.dependence with
  | Srd_lrd _ -> "srd+lrd"
  | Srd_only _ -> "srd-only"
  | Lrd_only _ -> "lrd-only"

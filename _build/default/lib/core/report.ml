module Acf_fit = Ss_fractal.Acf_fit
module Hurst = Ss_fractal.Hurst
module Mc = Ss_queueing.Mc

let pp_params fmt (p : Acf_fit.params) =
  Format.fprintf fmt "exp(-%.5g k), k<%d; %.4g k^-%.3g, k>=%d" p.Acf_fit.lambda
    p.Acf_fit.knee p.Acf_fit.l p.Acf_fit.beta p.Acf_fit.knee

let pp_diagnostics fmt (d : Fit.diagnostics) =
  Format.fprintf fmt "step 1: H(variance-time) = %.3f  H(R/S) = %.3f  adopted H = %.2f@."
    d.Fit.h_variance_time.Hurst.h d.Fit.h_rs.Hurst.h d.Fit.h_adopted;
  Format.fprintf fmt "step 2: raw fit          %a@." pp_params d.Fit.raw_fit;
  Format.fprintf fmt "step 3: attenuation a    = %.4f@." d.Fit.attenuation;
  Format.fprintf fmt "step 4: compensated      %a@." pp_params d.Fit.compensated

let pp_model fmt (m : Model.t) =
  Format.fprintf fmt "%s model: H=%.2f a=%.4f mean=%.1f bytes/frame"
    (Model.variant_name m) m.Model.hurst m.Model.attenuation m.Model.mean;
  match m.Model.dependence with
  | Model.Srd_lrd p -> Format.fprintf fmt " [%a]" pp_params p
  | Model.Srd_only lambda -> Format.fprintf fmt " [exp rate %.5g]" lambda
  | Model.Lrd_only h -> Format.fprintf fmt " [FGN H=%.2f]" h

let pp_estimate fmt (e : Mc.estimate) =
  let lo, hi = Mc.confidence_interval e ~z:1.96 in
  if e.Mc.p > 0.0 then
    Format.fprintf fmt "p=%.4g (log10 %.3f) ci95=[%.3g, %.3g] hits=%d/%d nvar=%.3g"
      e.Mc.p (log10 e.Mc.p) lo hi e.Mc.hits e.Mc.replications e.Mc.normalized_variance
  else
    Format.fprintf fmt "p=0 (no hits in %d replications)" e.Mc.replications

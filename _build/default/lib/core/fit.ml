module Hurst = Ss_fractal.Hurst
module Acf_fit = Ss_fractal.Acf_fit
module Transform = Ss_fractal.Transform
module Dist = Ss_stats.Dist
module Empirical = Ss_stats.Empirical
module Timeseries = Ss_stats.Timeseries
module D = Ss_stats.Descriptive

type diagnostics = {
  h_variance_time : Hurst.estimate;
  h_rs : Hurst.estimate;
  h_adopted : float;
  acf_points : (int * float) list;
  raw_fit : Acf_fit.params;
  compensated : Acf_fit.params;
  attenuation : float;
}

type attenuation_method =
  | Quadrature
  | Measured of { n : int; lags : int list; rng : Ss_stats.Rng.t }

let hurst_round h =
  let rounded = Float.round (h /. 0.05) *. 0.05 in
  Stdlib.max 0.55 (Stdlib.min 0.95 rounded)

let fit ?(max_lag = 500) ?knee_candidates ?(attenuation = Quadrature) sizes =
  if Array.length sizes < 10 * max_lag then
    invalid_arg "Fit.fit: series too short for requested max_lag";
  (* Step 1: Hurst estimation. *)
  let h_vt = Hurst.variance_time sizes in
  let h_rs = Hurst.rs sizes in
  let h_adopted = hurst_round ((h_vt.Hurst.h +. h_rs.Hurst.h) /. 2.0) in
  let beta = 2.0 -. (2.0 *. h_adopted) in
  (* Step 2: composite knee fit with beta pinned by H. *)
  let acf_points = Timeseries.acf_points sizes ~max_lag in
  let raw_fit = Acf_fit.fit ?knee_candidates ~fixed_beta:beta acf_points in
  (* Marginal: histogram inversion of the empirical distribution. *)
  let transform = Transform.make (Dist.of_empirical (Empirical.of_data sizes)) in
  (* Step 3: attenuation factor. *)
  let a =
    match attenuation with
    | Quadrature -> Transform.attenuation transform
    | Measured { n; lags; rng } ->
      Transform.attenuation_measured ~acf:(Acf_fit.to_acf raw_fit) ~n ~lags rng transform
  in
  let a = Stdlib.max 0.05 (Stdlib.min 1.0 a) in
  (* Step 4: derive the background autocorrelation. The paper's Eq-14
     linear compensation is computed for the diagnostics; the model
     itself uses the exact Hermite inversion of the transform's
     correlation response, which degrades gracefully when [a] is far
     from 1 (heavy-tailed marginals) where dividing by [a] would clip
     near-unity correlations and break positive definiteness. *)
  let compensated = Acf_fit.compensate raw_fit ~a in
  let dependence = Model.Srd_lrd raw_fit in
  let model =
    {
      Model.transform;
      dependence;
      background = Model.background_of_dependence ~transform dependence;
      hurst = h_adopted;
      attenuation = a;
      mean = D.mean sizes;
    }
  in
  ( model,
    {
      h_variance_time = h_vt;
      h_rs;
      h_adopted;
      acf_points;
      raw_fit;
      compensated;
      attenuation = a;
    } )

let fit_trace ?max_lag trace = fit ?max_lag trace.Ss_video.Trace.sizes

let refine ?(rounds = 4) ?(gain = 0.8) ?(paths = 4) ?(path_length = 32_768) model ~target rng =
  if rounds < 1 then invalid_arg "Fit.refine: rounds < 1";
  if gain <= 0.0 || gain > 2.0 then invalid_arg "Fit.refine: gain outside (0,2]";
  if paths < 1 then invalid_arg "Fit.refine: paths < 1";
  if target = [] then invalid_arg "Fit.refine: empty target";
  let max_lag = List.fold_left (fun a (k, _) -> Stdlib.max a k) 0 target in
  if max_lag < 1 || max_lag >= path_length then
    invalid_arg "Fit.refine: target lags must lie in [1, path_length)";
  let measure m =
    (* Average sample ACF over independent paths to tame LRD noise. *)
    match Ss_fractal.Davies_harte.plan ~acf:(Model.background_acf m) ~n:path_length with
    | exception Invalid_argument _ -> None
    | plan ->
      let acc = Array.make (max_lag + 1) 0.0 in
      for _ = 1 to paths do
        let x = Ss_fractal.Davies_harte.generate plan (Ss_stats.Rng.split rng) in
        let y = Transform.apply m.Model.transform x in
        let r = D.acf y ~max_lag in
        Array.iteri (fun i v -> acc.(i) <- acc.(i) +. v) r
      done;
      Some (Array.map (fun v -> v /. float_of_int paths) acc)
  in
  let residuals measured =
    List.map (fun (k, t) -> t -. measured.(k)) target
  in
  let rms errs =
    sqrt (List.fold_left (fun a e -> a +. (e *. e)) 0.0 errs /. float_of_int (List.length errs))
  in
  (* Updates live in Fisher-z space: z = atanh r, adjusted by the
     gain-scaled residual, mapped back with tanh. Near |r| = 1 this
     turns additive corrections into gentle ones, which keeps the
     adjusted sequence inside the positive-definite cone far more
     reliably than clamped addition. *)
  let clamp v = Stdlib.max (-0.999) (Stdlib.min 0.9999 v) in
  let adjust r corr = tanh (Float.atanh (clamp r) +. corr) in
  (* Corrections at the target lags, cosine-tapered to zero over the
     last quarter of the lag range so the adjusted ACF has no jump at
     the boundary (jumps break positive definiteness). *)
  let taper_start = 3 * max_lag / 4 in
  let taper k =
    if k <= taper_start then 1.0
    else begin
      let t =
        float_of_int (k - taper_start) /. float_of_int (Stdlib.max 1 (max_lag - taper_start))
      in
      0.5 *. (1.0 +. cos (Float.pi *. t))
    end
  in
  let adjusted_background m errs step_gain round =
    let corr = Array.make (max_lag + 1) 0.0 in
    List.iter2 (fun (k, _) e -> corr.(k) <- step_gain *. e *. taper k) target errs;
    let base = Model.background_acf m in
    Ss_fractal.Acf.memoize
      (Ss_fractal.Acf.of_fun
         ~name:(Printf.sprintf "%s+iter%d" base.Ss_fractal.Acf.name round)
         (fun k ->
           if k <= max_lag then adjust (base.Ss_fractal.Acf.r k) corr.(k)
           else base.Ss_fractal.Acf.r k))
  in
  (* Invariant: [m] is generatable and [measured] is its averaged
     foreground ACF. A step that leaves the positive-definite cone is
     retried with halved gain (twice) before iteration stops with the
     last good model. *)
  let rec go round m measured history =
    let errs = residuals measured in
    let history = rms errs :: history in
    if round >= rounds then (m, List.rev history)
    else begin
      let rec try_step step_gain attempts =
        let m' = Model.with_background m (adjusted_background m errs step_gain round) in
        match measure m' with
        | Some measured' -> Some (m', measured')
        | None -> if attempts <= 0 then None else try_step (step_gain /. 2.0) (attempts - 1)
      in
      match try_step gain 2 with
      | None -> (m, List.rev history)
      | Some (m', measured') -> go (round + 1) m' measured' history
    end
  in
  match measure model with
  | None -> invalid_arg "Fit.refine: initial model not generatable"
  | Some measured -> go 1 model measured []

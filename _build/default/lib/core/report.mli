(** Pretty-printing of fitted models and diagnostics. *)

val pp_params : Format.formatter -> Ss_fractal.Acf_fit.params -> unit
(** e.g. [exp(-0.00565 k), k<60; 1.59 k^-0.2, k>=60]. *)

val pp_diagnostics : Format.formatter -> Fit.diagnostics -> unit
(** Multi-line report of the four fitting steps. *)

val pp_model : Format.formatter -> Model.t -> unit

val pp_estimate : Format.formatter -> Ss_queueing.Mc.estimate -> unit
(** [p], log10 p, CI, hits, normalized variance. *)

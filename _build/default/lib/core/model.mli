(** The unified VBR video traffic model (paper Section 3).

    A fitted model couples a marginal transform (histogram inversion
    of the empirical distribution, Eq 7) with a background Gaussian
    autocorrelation chosen so the transformed foreground realizes the
    empirical dependence. The background is stored explicitly: the
    default fitting pipeline derives it by exact Hermite inversion of
    the transform's correlation response (the refinement of the
    paper's Eq-14 attenuation compensation — see
    {!Ss_fractal.Transform.background_acf_for}), while the
    [dependence] summary keeps the fitted parametric form for
    reporting and for deriving the Fig-17 comparison variants. *)

type dependence =
  | Srd_lrd of Ss_fractal.Acf_fit.params
      (** the unified model: composite knee autocorrelation *)
  | Srd_only of float  (** pure exponential with the given rate *)
  | Lrd_only of float  (** FGN background with the given Hurst parameter *)

type t = {
  transform : Ss_fractal.Transform.t;  (** marginal map h = F^-1 . Phi *)
  dependence : dependence;
  background : Ss_fractal.Acf.t;
      (** background autocorrelation the generators realize *)
  hurst : float;  (** adopted Hurst parameter (paper: 0.9) *)
  attenuation : float;  (** attenuation factor a of the transform *)
  mean : float;  (** foreground mean E[Y], for utilization bookkeeping *)
}

val background_acf : t -> Ss_fractal.Acf.t
(** The background autocorrelation the generators must realize. *)

val background_of_dependence :
  transform:Ss_fractal.Transform.t -> dependence -> Ss_fractal.Acf.t
(** Derive a background for a dependence summary: Hermite inversion
    of the composite target for [Srd_lrd]; the exponential / FGN
    model used directly for the [Srd_only] / [Lrd_only] comparison
    variants (as the paper does in Fig 17). *)

val with_dependence : t -> dependence -> t
(** Same marginal/bookkeeping, different dependence structure (and a
    re-derived background) — the Fig-17 model variants. *)

val with_background : t -> Ss_fractal.Acf.t -> t
(** Replace the background autocorrelation directly (used by the
    iterative refinement of {!Fit.refine}). *)

val variant_name : t -> string
(** ["srd+lrd"], ["srd-only"] or ["lrd-only"]. *)

let weights ~d ~n =
  if n <= 0 then invalid_arg "Frac_diff.weights: n <= 0";
  let w = Array.make n 1.0 in
  for j = 1 to n - 1 do
    let fj = float_of_int j in
    w.(j) <- w.(j - 1) *. (fj -. 1.0 -. d) /. fj
  done;
  w

let difference ~d ?(truncation = 1000) x =
  if truncation <= 0 then invalid_arg "Frac_diff.difference: truncation <= 0";
  if d = 0.0 then Array.copy x
  else begin
    let n = Array.length x in
    let w = weights ~d ~n:(Stdlib.min truncation (Stdlib.max 1 n)) in
    Array.init n (fun t ->
        let jmax = Stdlib.min t (Array.length w - 1) in
        let s = ref 0.0 in
        for j = 0 to jmax do
          s := !s +. (w.(j) *. x.(t - j))
        done;
        !s)
  end

let integrate ~d ?truncation x = difference ~d:(-.d) ?truncation x

(** Autocorrelation models for stationary unit-variance Gaussian
    processes.

    A model is a function [r : int -> float] with [r 0 = 1]; Hosking
    and Davies–Harte generation consume these directly. Includes the
    two classical self-similar families (FGN, FARIMA(0,d,0)) and the
    paper's composite "knee" model (Eqs 10–13): exponential
    short-range dependence below the knee lag, power-law long-range
    dependence above it. *)

type t = {
  name : string;
  r : int -> float;  (** lag-k autocorrelation; [r 0 = 1] *)
}

val white_noise : t
(** [r k = if k = 0 then 1 else 0]. *)

val exponential : lambda:float -> t
(** [r k = exp (-lambda k)] — a pure SRD model (AR(1)-like).
    @raise Invalid_argument if [lambda <= 0]. *)

val power_law : l:float -> beta:float -> t
(** [r k = l * k^(-beta)] for k >= 1 (clamped to 1), pure LRD.
    @raise Invalid_argument if [l <= 0 || beta <= 0 || beta >= 1]. *)

val fgn : h:float -> t
(** Exact fractional Gaussian noise autocorrelation
    [r k = (|k+1|^{2H} - 2|k|^{2H} + |k-1|^{2H}) / 2].
    @raise Invalid_argument if [h] outside (0,1). *)

val farima : d:float -> t
(** FARIMA(0,d,0) autocorrelation, computed by the recursion
    [r k = r (k-1) * (k - 1 + d) / (k - d)] (memoized).
    [d = H - 1/2]. @raise Invalid_argument if [d] outside
    (-0.5, 0.5). *)

val composite : knee:int -> lambda:float -> l:float -> beta:float -> t
(** The paper's Eq (10) with one exponential:
    [r k = exp(-lambda k)] for [1 <= k < knee] and
    [r k = l * k^(-beta)] for [k >= knee]. Values are clamped to
    [(-1, 1\]] so the model is always a valid correlation candidate.
    @raise Invalid_argument if [knee < 1], [lambda <= 0], [l <= 0] or
    [beta] outside (0,1). *)

val lag_rescale : t -> period:int -> t
(** [lag_rescale base ~period] is the paper's Eq (15):
    [r k = base.r (k / period)] evaluated with linear interpolation
    at fractional lags — used to stretch the I-frame autocorrelation
    to the full GOP-rate timeline. @raise Invalid_argument if
    [period < 1]. *)

val of_fun : name:string -> (int -> float) -> t
(** Wrap a lag function (forced to 1 at lag 0, negative lags
    rejected). *)

val memoize : t -> t
(** Cache computed lags in a growable table — worthwhile when [r] is
    expensive (e.g. the Hermite-inverted background of
    {!Transform.background_acf_for}) and the generators will probe
    hundreds of thousands of lags. *)

val hurst : t -> float option
(** Nominal Hurst parameter when the family has one (FGN, FARIMA,
    power-law and composite via [beta = 2 - 2H]). *)

val to_array : t -> n:int -> float array
(** First [n] values [r 0 .. r (n-1)]. @raise Invalid_argument if
    [n <= 0]. *)

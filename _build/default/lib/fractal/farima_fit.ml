module D = Ss_stats.Descriptive
module Linalg = Ss_stats.Linalg

type t = {
  model : Farima_pq.t;
  d : float;
  ar : float array;
  ma : float array;
  innovation_variance : float;
}

(* Long-AR coefficients via Durbin-Levinson on the sample ACF. *)
let long_ar_coefficients x ~order =
  let r = D.acf x ~max_lag:order in
  let prev = ref [||] in
  let v = ref 1.0 in
  for k = 1 to order do
    let next = Array.make k 0.0 in
    let acc = ref r.(k) in
    for j = 1 to k - 1 do
      acc := !acc -. (!prev.(j - 1) *. r.(k - j))
    done;
    let phi_kk = !acc /. !v in
    let phi_kk =
      (* A sample ACF can be slightly inconsistent; shrink instead of
         failing. *)
      if abs_float phi_kk >= 1.0 then 0.999 *. (if phi_kk > 0.0 then 1.0 else -1.0)
      else phi_kk
    in
    next.(k - 1) <- phi_kk;
    for j = 1 to k - 1 do
      next.(j - 1) <- !prev.(j - 1) -. (phi_kk *. !prev.(k - j - 1))
    done;
    v := !v *. (1.0 -. (phi_kk *. phi_kk));
    prev := next
  done;
  !prev

let hannan_rissanen ?long_ar_order ~p ~q x =
  if p < 0 || q < 0 || p + q = 0 then invalid_arg "Farima_fit.hannan_rissanen: need p+q >= 1";
  let order = match long_ar_order with Some o -> o | None -> Stdlib.max 20 (2 * (p + q)) in
  let n = Array.length x in
  if n < 4 * (order + p + q) then invalid_arg "Farima_fit.hannan_rissanen: series too short";
  let mean = D.mean x in
  let x = Array.map (fun v -> v -. mean) x in
  (* Stage 1: innovation estimates from the long AR. *)
  let phi = long_ar_coefficients x ~order in
  let eps = Array.make n 0.0 in
  for t = 0 to n - 1 do
    let s = ref x.(t) in
    let jmax = Stdlib.min t order in
    for j = 1 to jmax do
      s := !s -. (phi.(j - 1) *. x.(t - j))
    done;
    eps.(t) <- !s
  done;
  (* Stage 2: regress x_t on x_{t-1..t-p} and eps_{t-1..t-q}. *)
  let start = order + Stdlib.max p q in
  let rows = n - start in
  let design =
    Array.init rows (fun i ->
        let t = start + i in
        Array.init (p + q) (fun j -> if j < p then x.(t - j - 1) else eps.(t - (j - p) - 1)))
  in
  let target = Array.init rows (fun i -> x.(start + i)) in
  let coef = Linalg.least_squares design target in
  let ar = Array.sub coef 0 p in
  let ma = Array.sub coef p q in
  (* Residual variance of the fitted regression. *)
  let resid_var =
    let s = ref 0.0 in
    Array.iteri
      (fun i row ->
        let pred = ref 0.0 in
        Array.iteri (fun j c -> pred := !pred +. (c *. row.(j))) coef;
        let e = target.(i) -. !pred in
        s := !s +. (e *. e))
      design;
    !s /. float_of_int rows
  in
  (ar, ma, resid_var)

let fit ?(p = 1) ?(q = 1) ?d x =
  let d =
    match d with
    | Some d -> d
    | None ->
      (* Only the lowest frequencies: the short-memory ARMA factor is
         flat there, so the FGN-shaped Whittle objective estimates the
         memory parameter without absorbing the AR/MA bump. *)
      let h = (Whittle.estimate ~low_fraction:0.08 x).Whittle.h in
      Stdlib.max (-0.49) (Stdlib.min 0.49 (h -. 0.5))
  in
  let differenced = Frac_diff.difference ~d x in
  let ar, ma, innovation_variance = hannan_rissanen ~p ~q differenced in
  (* Shrink an explosive AR estimate back inside the stationary
     region. *)
  let ar_sum = Array.fold_left (fun a c -> a +. abs_float c) 0.0 ar in
  let ar = if ar_sum >= 1.0 then Array.map (fun c -> c *. 0.98 /. ar_sum) ar else ar in
  let model = Farima_pq.create ~d ~ar ~ma in
  { model; d; ar; ma; innovation_variance }

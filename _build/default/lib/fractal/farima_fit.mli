(** FARIMA(p,d,q) estimation from data — the route the paper calls
    difficult (Section 1: "it may be difficult to obtain accurate
    estimates of the p and q parameters required for the generation
    of traces with arbitrary marginals").

    The classical two-stage recipe:

    + estimate the memory parameter [d] (here: Whittle on the raw
      series, [d = H - 1/2]), fractionally difference the series by
      it ({!Frac_diff});
    + fit the short-memory ARMA(p,q) part to the differenced series
      by Hannan–Rissanen: a long autoregression (Durbin–Levinson on
      the sample ACF) produces innovation estimates, then the ARMA
      coefficients come from one least-squares regression of the
      series on its own lags and the lagged innovations.

    The [abl-farima] bench compares the resulting model against the
    paper's direct composite-ACF fit on the reference trace. *)

type t = {
  model : Farima_pq.t;
  d : float;
  ar : float array;
  ma : float array;
  innovation_variance : float;  (** residual variance of the HR regression *)
}

val hannan_rissanen :
  ?long_ar_order:int -> p:int -> q:int -> float array -> float array * float array * float
(** [hannan_rissanen ~p ~q x] fits ARMA(p,q) to a (short-memory,
    zero-mean-ed internally) series; returns [(ar, ma,
    innovation_variance)]. [long_ar_order] defaults to
    [max 20 (2(p+q))]. @raise Invalid_argument if the series is
    shorter than [4 * (long_ar_order + p + q)] or [p < 0 || q < 0 ||
    p + q = 0]. *)

val fit : ?p:int -> ?q:int -> ?d:float -> float array -> t
(** [fit x] estimates a FARIMA(p,d,q) (default p = 1, q = 1) for a
    series: [d] from Whittle unless supplied, then Hannan–Rissanen on
    the fractionally differenced series. AR roots are shrunk toward
    stationarity if the HR estimate is explosive (coefficients scaled
    by 0.98/|sum| when [sum |ar| >= 1]).
    @raise Invalid_argument on degenerate input. *)

(** Approximate Whittle maximum-likelihood estimation of the Hurst
    parameter for fractional Gaussian noise.

    The third estimator family the self-similar traffic literature
    uses alongside variance–time and R/S plots (Leland et al. '94,
    Beran et al. '95 — the measurement papers this paper builds on).
    Minimizes the Whittle objective
    [Q(H) = log( mean_j I(l_j)/f_H(l_j) ) + mean_j log f_H(l_j)]
    over the periodogram ordinates, with the FGN spectral density
    evaluated by truncated Paley–Wiener summation. *)

val fgn_spectral_density : h:float -> float -> float
(** [fgn_spectral_density ~h lambda] for [lambda] in (0, pi]:
    [c (1 - cos lambda) sum_j |lambda + 2 pi j|^{-2H-1}] with the
    constant chosen for unit process variance.
    @raise Invalid_argument if [h] outside (0,1) or [lambda] outside
    (0, pi]. *)

type estimate = {
  h : float;
  objective : float;  (** Whittle objective at the minimum *)
}

val estimate : ?low_fraction:float -> float array -> estimate
(** [estimate x] minimizes the Whittle objective over H in
    (0.501, 0.999) by golden-section search, using the lowest
    [low_fraction] (default 0.5) of periodogram frequencies.
    @raise Invalid_argument if the series is shorter than 128
    points. *)

(** Fractional differencing and integration filters (Hosking '81).

    [(1-B)^d x] expands into the binomial filter
    [sum_j pi_j x_{t-j}] with [pi_0 = 1] and the recursion
    [pi_j = pi_{j-1} (j - 1 - d) / j]. Differencing by [d] turns a
    FARIMA(p,d,q) series into an ARMA(p,q) one — the preprocessing
    step of the {!Farima_fit} estimator. *)

val weights : d:float -> n:int -> float array
(** First [n] filter weights [pi_0 .. pi_{n-1}] of [(1-B)^d].
    @raise Invalid_argument if [n <= 0]. *)

val difference : d:float -> ?truncation:int -> float array -> float array
(** Apply [(1-B)^d] with the filter truncated at [truncation]
    (default 1000) terms; the first [truncation] outputs use only the
    available past (the standard finite-sample convention). Output
    length equals input length. [d = 0] is the identity.
    @raise Invalid_argument if [truncation <= 0]. *)

val integrate : d:float -> ?truncation:int -> float array -> float array
(** [(1-B)^{-d}], i.e. [difference ~d:(-.d)]. *)

module Rng = Ss_stats.Rng

type t = {
  d : float;
  ar : float array;
  ma : float array;
  psi : float array;  (* MA(inf) weights of the ARMA part *)
  acf_memo : Acf.t Lazy.t;
}

(* psi_0 = 1; psi_j = theta_j + sum_i phi_i psi_{j-i}. *)
let compute_psi ~ar ~ma =
  let p = Array.length ar and q = Array.length ma in
  let cap = 100_000 in
  let buf = Array.make (Stdlib.max 16 (p + q + 1)) 0.0 in
  let buf = ref buf in
  !buf.(0) <- 1.0;
  let n = ref 1 in
  let push v =
    if !n >= Array.length !buf then begin
      let next = Array.make (2 * Array.length !buf) 0.0 in
      Array.blit !buf 0 next 0 !n;
      buf := next
    end;
    !buf.(!n) <- v;
    incr n
  in
  let rec grow j =
    if j > cap then invalid_arg "Farima_pq: AR part not stationary (psi weights do not decay)"
    else begin
      let v = ref (if j <= q then ma.(j - 1) else 0.0) in
      for i = 1 to p do
        if j - i >= 0 then v := !v +. (ar.(i - 1) *. !buf.(j - i))
      done;
      push !v;
      (* Stop when past the direct MA/AR horizon and the recent tail
         is negligible. *)
      if j > p + q && abs_float !v < 1e-14 && (j < 2 || abs_float !buf.(j - 1) < 1e-14) then ()
      else grow (j + 1)
    end
  in
  grow 1;
  Array.sub !buf 0 !n

(* gamma of FARIMA(0,d,0), unnormalized: gamma(0) =
   Gamma(1-2d)/Gamma(1-d)^2, gamma(k) = gamma(0) * r(k). *)
let fractional_gamma ~d =
  let r = (Acf.farima ~d).Acf.r in
  let g0 =
    exp (Ss_stats.Special.log_gamma (1.0 -. (2.0 *. d))
         -. (2.0 *. Ss_stats.Special.log_gamma (1.0 -. d)))
  in
  fun k -> g0 *. r (abs k)

let make_acf ~d ~p ~q ~psi =
  let gamma_y = fractional_gamma ~d in
  let jmax = Array.length psi - 1 in
  (* w(m) = sum_j psi_j psi_{j-m}, m = -jmax..jmax (symmetric). *)
  let w = Array.make (jmax + 1) 0.0 in
  for m = 0 to jmax do
    let s = ref 0.0 in
    for j = m to jmax do
      s := !s +. (psi.(j) *. psi.(j - m))
    done;
    w.(m) <- !s
  done;
  let gamma_x k =
    let s = ref (w.(0) *. gamma_y k) in
    for m = 1 to jmax do
      s := !s +. (w.(m) *. (gamma_y (k + m) +. gamma_y (k - m)))
    done;
    !s
  in
  let g0 = gamma_x 0 in
  Acf.memoize
    (Acf.of_fun
       ~name:(Printf.sprintf "farima(d=%g,p=%d,q=%d)" d p q)
       (fun k -> gamma_x k /. g0))

let create ~d ~ar ~ma =
  if d <= -0.5 || d >= 0.5 then invalid_arg "Farima_pq.create: d outside (-0.5,0.5)";
  let psi = compute_psi ~ar ~ma in
  let acf_memo = lazy (make_acf ~d ~p:(Array.length ar) ~q:(Array.length ma) ~psi) in
  { d; ar = Array.copy ar; ma = Array.copy ma; psi; acf_memo }

let d t = t.d
let hurst t = t.d +. 0.5
let psi_weights t = Array.copy t.psi
let acf t = Lazy.force t.acf_memo

let generate t ~n rng = Hosking.generate_stream ~acf:(acf t) ~n rng

let generate_filtered t ~n rng =
  if n <= 0 then invalid_arg "Farima_pq.generate_filtered: n <= 0";
  let p = Array.length t.ar and q = Array.length t.ma in
  (* Exact fractional noise, then the ARMA recursion
     x_t = sum phi x_{t-i} + y_t + sum theta y_{t-j}, with a warmup
     prefix discarded to wash out the filter transient. *)
  let warmup = Stdlib.max 64 (4 * (p + q + 1)) in
  let total = n + warmup in
  let plan = Davies_harte.plan ~acf:(Acf.farima ~d:t.d) ~n:total in
  let y = Davies_harte.generate plan rng in
  let x = Array.make total 0.0 in
  for i = 0 to total - 1 do
    let v = ref y.(i) in
    for j = 1 to q do
      if i - j >= 0 then v := !v +. (t.ma.(j - 1) *. y.(i - j))
    done;
    for j = 1 to p do
      if i - j >= 0 then v := !v +. (t.ar.(j - 1) *. x.(i - j))
    done;
    x.(i) <- !v
  done;
  let tail = Array.sub x warmup n in
  (* Standardize: downstream transforms expect zero mean, unit
     variance backgrounds. *)
  let std = Ss_stats.Descriptive.std tail in
  if std = 0.0 then tail else Array.map (fun v -> v /. std) tail

(** Fitting the paper's composite SRD+LRD autocorrelation model
    (Section 3.2 Steps 2 and 4; Eqs 10–14, Fig 6).

    The composite model is
    [r(k) = exp(-lambda k)] for [k < knee], [l * k^(-beta)] for
    [k >= knee]. The LRD part is fitted by least squares in log-log
    space over lags beyond a candidate knee; the SRD part by least
    squares of [ln r] on [k] through the origin below it; the knee is
    chosen to minimize total squared error in correlation space.
    [compensate] implements Eq (14): after the attenuation factor [a]
    of the marginal transform is known, the *background* target
    autocorrelation is boosted so the foreground lands on the
    empirical one. *)

type params = {
  knee : int;  (** K_t, the SRD/LRD crossover lag *)
  lambda : float;  (** SRD exponential rate *)
  l : float;  (** LRD power-law level *)
  beta : float;  (** LRD power-law exponent, beta = 2 - 2H *)
}

val eval : params -> int -> float
(** Evaluate the composite model ([1] at lag 0). *)

val eval_real : params -> float -> float
(** Evaluate at a real-valued lag — both pieces are analytic in the
    lag, which is how the paper's Eq (15) stretches the I-frame
    autocorrelation to the full frame timeline:
    [r(k) = r_I(k / K_I)] with fractional argument.
    @raise Invalid_argument on a negative lag. *)

val rescaled_acf : params -> period:int -> Acf.t
(** [rescaled_acf p ~period] is Eq (15): the composite model
    evaluated at [k / period] (real division, via {!eval_real}).
    Smooth in the lag except at the knee, unlike integer-lag linear
    interpolation, which matters for positive definiteness.
    @raise Invalid_argument if [period < 1]. *)

val to_acf : params -> Acf.t
(** The model as an {!Acf.t} for the generators. *)

val fit :
  ?knee_candidates:int list ->
  ?fixed_beta:float ->
  (int * float) list ->
  params
(** [fit points] fits the composite model to empirical [(lag, r)]
    points (lags >= 1, in increasing order). Candidate knees default
    to every 5th lag between the 10th and 90th percentile of the
    available lag range. If [fixed_beta] is given (the paper pins
    [beta = 2 - 2H] from the Hurst estimate) only [l] is fitted in
    the LRD part. Points with [r <= 0] are excluded from the
    log-space fits.

    The returned model satisfies the paper's Eq-12 continuity
    constraint [exp(-lambda knee) = l knee^{-beta}]: with a single
    exponential, that constraint pins the SRD rate once the LRD piece
    and knee are chosen (the free SRD least-squares fit still drives
    knee selection through the total SSE). Continuity matters beyond
    aesthetics — a model that jumps at the knee is generally not a
    positive-definite autocorrelation and the generators would reject
    it. @raise Invalid_argument if fewer than 8 usable points or no
    valid candidate knee. *)

val sse : params -> (int * float) list -> float
(** Sum of squared errors of the model against empirical points, in
    correlation space. *)

val compensate : params -> a:float -> params
(** [compensate p ~a] is Eq (14): divides the LRD level by [a] and
    re-solves the SRD rate so that
    [exp(-lambda' * knee) = r_hat(knee) / a], keeping the model
    continuous in intent at the knee. The boosted knee value is
    clamped slightly below 1 so a valid rate exists.
    @raise Invalid_argument if [a] outside (0, 1]. *)

(** Full FARIMA(p,d,q) processes.

    The paper (Section 1) notes that an ARIMA(p,d,q) model "can be
    used to model both LRD and SRD at the same time" but that
    estimating [p] and [q] for trace generation is difficult — which
    motivates its direct composite-ACF approach. This module supplies
    the FARIMA baseline so the two routes can be compared: exact
    autocorrelation computation and exact (Hosking) or fast filtered
    generation.

    A FARIMA(p,d,q) process is [phi(B) (1-B)^d X = theta(B) eps]:
    an ARMA(p,q) filter driven by FARIMA(0,d,0) fractional noise.
    Its autocovariance is the ARMA impulse-response autocorrelation
    convolved with the exact FARIMA(0,d,0) autocovariance — computed
    here by expanding the ARMA transfer function into MA(inf) weights
    [psi] (truncated when they fall below 1e-14) and evaluating
    [gamma_X(k) = sum_m w(m) gamma_Y(k+m)] with
    [w = autocorrelation of psi]. *)

type t

val create : d:float -> ar:float array -> ma:float array -> t
(** [create ~d ~ar ~ma] with AR coefficients [phi_1..phi_p] and MA
    coefficients [theta_1..theta_q] (sign convention:
    [X_t = sum phi_i X_{t-i} + eps_t + sum theta_j eps_{t-j}] applied
    to the fractional noise). @raise Invalid_argument if [d] outside
    (-0.5, 0.5) or the AR part is not (numerically) stationary — the
    MA(inf) weights must decay below 1e-14 within 100,000 terms. *)

val d : t -> float
val hurst : t -> float
(** [d + 1/2]. *)

val psi_weights : t -> float array
(** The truncated MA(inf) expansion of the ARMA(p,q) part
    ([psi_0 = 1]). *)

val acf : t -> Acf.t
(** Exact normalized autocorrelation (memoized). For [ar = ma = [||]]
    this coincides with {!Acf.farima}. *)

val generate : t -> n:int -> Ss_stats.Rng.t -> float array
(** Exact sampling through Hosking's recursion on {!acf}, normalized
    to unit variance. O(n^2). *)

val generate_filtered : t -> n:int -> Ss_stats.Rng.t -> float array
(** Fast approximate sampling: an exact FARIMA(0,d,0) path
    (Davies–Harte) pushed through the ARMA recursion, then
    standardized. Exact in distribution up to the filter's O(p+q)
    startup transient and the psi truncation; O(n log n). *)

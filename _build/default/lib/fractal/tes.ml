module Rng = Ss_stats.Rng
module Dist = Ss_stats.Dist

type t = {
  xi : float;
  half_width : float;
  dist : Dist.t option;
}

let create ?(xi = 0.5) ?dist ~half_width () =
  if half_width <= 0.0 || half_width > 0.5 then
    invalid_arg "Tes.create: half_width outside (0, 0.5]";
  if xi < 0.0 || xi > 1.0 then invalid_arg "Tes.create: xi outside [0,1]";
  { xi; half_width; dist }

let stitch xi u =
  if xi <= 0.0 then 1.0 -. u
  else if xi >= 1.0 then u
  else if u < xi then u /. xi
  else (1.0 -. u) /. (1.0 -. xi)

let generate t ~n rng =
  if n <= 0 then invalid_arg "Tes.generate: n <= 0";
  let u = ref (Rng.float rng) in
  Array.init n (fun _ ->
      let v = Rng.float_range rng (-.t.half_width) t.half_width in
      let next = Float.rem (!u +. v +. 1.0) 1.0 in
      u := next;
      let s = stitch t.xi next in
      (* Keep strictly inside (0,1) for quantile functions. *)
      let s = Stdlib.min (Stdlib.max s 1e-12) (1.0 -. 1e-12) in
      match t.dist with None -> s | Some d -> d.Dist.quantile s)

let background_acf ~half_width tau =
  if half_width <= 0.0 || half_width > 0.5 then
    invalid_arg "Tes.background_acf: half_width outside (0, 0.5]";
  if tau < 0 then invalid_arg "Tes.background_acf: negative lag";
  if tau = 0 then 1.0
  else begin
    let pi = 4.0 *. atan 1.0 in
    let sum = ref 0.0 in
    for nu = 1 to 20_000 do
      let x = 2.0 *. pi *. float_of_int nu *. half_width in
      let sinc = sin x /. x in
      sum := !sum +. ((sinc ** float_of_int tau) /. float_of_int (nu * nu))
    done;
    6.0 /. (pi *. pi) *. !sum
  end

let two_pi = 8.0 *. atan 1.0

(* Unnormalized Paley-Wiener sum for the FGN spectral shape. 50
   aliasing terms keep the relative truncation error below ~1e-5 for
   H >= 0.5. *)
let pw_sum ~h lambda =
  let expo = -.((2.0 *. h) +. 1.0) in
  let s = ref (abs_float lambda ** expo) in
  for j = 1 to 50 do
    let fj = two_pi *. float_of_int j in
    s := !s +. ((lambda +. fj) ** expo) +. (abs_float (lambda -. fj) ** expo)
  done;
  (1.0 -. cos lambda) *. !s

(* Normalizing constant for unit process variance: the density must
   integrate to 1 over (-pi, pi). The integrand has a lambda^{1-2H}
   singularity at the origin, so integrate in log-lambda where it is
   smooth. Cached per H. *)
let norm_cache : (float, float) Hashtbl.t = Hashtbl.create 16

let normalization ~h =
  match Hashtbl.find_opt norm_cache h with
  | Some c -> c
  | None ->
    let integral =
      Ss_stats.Quadrature.simpson ~eps:1e-9 ~max_depth:30
        (fun t ->
          let lambda = exp t in
          pw_sum ~h lambda *. lambda)
        ~lo:(log 1e-10)
        ~hi:(log (two_pi /. 2.0))
    in
    let c = 1.0 /. (2.0 *. integral) in
    Hashtbl.add norm_cache h c;
    c

let fgn_spectral_density ~h lambda =
  if h <= 0.0 || h >= 1.0 then invalid_arg "Whittle.fgn_spectral_density: h outside (0,1)";
  if lambda <= 0.0 || lambda > two_pi /. 2.0 then
    invalid_arg "Whittle.fgn_spectral_density: lambda outside (0, pi]";
  normalization ~h *. pw_sum ~h lambda

type estimate = {
  h : float;
  objective : float;
}

let estimate ?(low_fraction = 0.5) x =
  if Array.length x < 128 then invalid_arg "Whittle.estimate: need >= 128 points";
  let pts = Ss_fft.Periodogram.compute x in
  let keep =
    Stdlib.max 8 (int_of_float (low_fraction *. float_of_int (Array.length pts)))
  in
  let pts = Array.sub pts 0 (Stdlib.min keep (Array.length pts)) in
  let objective h =
    (* Q(H) = log(mean I/f) + mean log f, evaluated on the raw
       spectral shape: any H-dependent normalizing constant cancels
       between the two terms, so pw_sum is used directly. *)
    let n = Array.length pts in
    let ratio = ref 0.0 and logf = ref 0.0 in
    Array.iter
      (fun (l, i) ->
        let f = pw_sum ~h l in
        ratio := !ratio +. (i /. f);
        logf := !logf +. log f)
      pts;
    log (!ratio /. float_of_int n) +. (!logf /. float_of_int n)
  in
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let a = ref 0.501 and b = ref 0.999 in
  let c = ref (!b -. (phi *. (!b -. !a))) in
  let d = ref (!a +. (phi *. (!b -. !a))) in
  let fc = ref (objective !c) and fd = ref (objective !d) in
  for _ = 1 to 40 do
    if !fc < !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (phi *. (!b -. !a));
      fc := objective !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (phi *. (!b -. !a));
      fd := objective !d
    end
  done;
  let h = (!a +. !b) /. 2.0 in
  { h; objective = objective h }

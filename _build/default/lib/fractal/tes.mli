(** TES (Transform-Expand-Sample) background processes.

    The modeling technique of Melamed et al. (references [21, 22] of
    the paper) that also matches a marginal and an autocorrelation:
    a modulo-1 autoregressive uniform background
    [U_n = frac(U_{n-1} + V_n)] — uniformity is invariant under
    modulo-1 addition, so any innovation density works — optionally
    "stitched" by [S_xi(u) = u/xi if u < xi else (1-u)/(1-xi)] to
    make sample paths continuous, then inverted through a marginal
    quantile function.

    Implemented here as the published baseline against the paper's
    unified Gaussian approach: TES matches marginals exactly and
    gives tunable SRD, but cannot produce genuine long-range
    dependence (its correlations decay geometrically in the
    innovation bandwidth). The [abl-tes] bench shows exactly that
    failure mode. *)

type t

val create : ?xi:float -> ?dist:Ss_stats.Dist.t -> half_width:float -> unit -> t
(** [create ~half_width ()] builds a TES+ process with innovations
    uniform on [\[-half_width, half_width\]] (smaller = stronger
    correlation), stitching parameter [xi] (default 0.5; 0 or 1
    disables stitching), and foreground marginal [dist] (default:
    uniform on [0,1), i.e. the raw background).
    @raise Invalid_argument if [half_width] outside (0, 0.5] or [xi]
    outside [0,1]. *)

val generate : t -> n:int -> Ss_stats.Rng.t -> float array
(** Sample a foreground path of length [n]. *)

val background_acf : half_width:float -> int -> float
(** Analytic autocorrelation of the (unstitched) uniform background:
    [rho(tau) = (6/pi^2) sum_nu nu^-2 sinc(2 pi nu a)^tau] with [a]
    the innovation half-width — geometric decay in [tau], i.e. SRD
    only. Exposed for tests and the [abl-tes] bench.
    @raise Invalid_argument if [half_width] outside (0, 0.5] or
    negative lag. *)

module Reg = Ss_stats.Regression

type params = {
  knee : int;
  lambda : float;
  l : float;
  beta : float;
}

let eval_real p x =
  if x < 0.0 then invalid_arg "Acf_fit.eval_real: negative lag"
  else if x = 0.0 then 1.0
  else if x < float_of_int p.knee then exp (-.p.lambda *. x)
  else Stdlib.min 1.0 (p.l *. (x ** -.p.beta))

let eval p k =
  if k < 0 then invalid_arg "Acf_fit.eval: negative lag" else eval_real p (float_of_int k)

let to_acf p = Acf.composite ~knee:p.knee ~lambda:p.lambda ~l:p.l ~beta:p.beta

let rescaled_acf p ~period =
  if period < 1 then invalid_arg "Acf_fit.rescaled_acf: period < 1";
  Acf.of_fun
    ~name:(Printf.sprintf "rescaled(%s x%d)" (to_acf p).Acf.name period)
    (fun k -> eval_real p (float_of_int k /. float_of_int period))

let sse p points =
  List.fold_left
    (fun acc (k, r) ->
      let e = eval p k -. r in
      acc +. (e *. e))
    0.0 points

(* Fit r = l * k^-beta on points with r > 0, optionally with beta
   fixed. Least squares in log10-log10 space. *)
let fit_lrd ?fixed_beta points =
  let usable = List.filter (fun (_, r) -> r > 0.0) points in
  if List.length usable < 2 then None
  else begin
    let logs = List.map (fun (k, r) -> (log10 (float_of_int k), log10 r)) usable in
    match fixed_beta with
    | Some beta ->
      (* Only the level: mean of log10 r + beta log10 k. *)
      let s = List.fold_left (fun a (lk, lr) -> a +. lr +. (beta *. lk)) 0.0 logs in
      let l = 10.0 ** (s /. float_of_int (List.length logs)) in
      Some (l, beta)
    | None ->
      let f = Reg.ols logs in
      let beta = -.f.Reg.slope in
      if beta <= 0.0 || beta >= 1.0 then None
      else Some (10.0 ** f.Reg.intercept, beta)
  end

(* Fit r = exp(-lambda k) on points with r > 0: ln r = -lambda k
   through the origin. *)
let fit_srd points =
  let usable = List.filter (fun (_, r) -> r > 0.0) points in
  if List.length usable < 2 then None
  else begin
    let pts = List.map (fun (k, r) -> (float_of_int k, log r)) usable in
    let f = Reg.ols_through_origin pts in
    let lambda = -.f.Reg.slope in
    if lambda <= 0.0 then None else Some lambda
  end

let default_knees points =
  let lags = List.map fst points in
  let lo = List.fold_left Stdlib.min max_int lags in
  let hi = List.fold_left Stdlib.max 0 lags in
  let span = hi - lo in
  let first = lo + (span / 10) in
  let last = lo + (span * 9 / 10) in
  let rec go k acc = if k > last then List.rev acc else go (k + 5) (k :: acc) in
  go (Stdlib.max (lo + 2) first) []

(* Rate that makes the exponential meet the power law exactly at the
   knee (the paper's Eq 12 continuity constraint). *)
let continuity_lambda ~knee ~l ~beta =
  let r_knee = Stdlib.min (l *. (float_of_int knee ** -.beta)) 0.999 in
  if r_knee <= 0.0 then None else Some (-.log r_knee /. float_of_int knee)

let fit ?knee_candidates ?fixed_beta points =
  if List.length points < 8 then invalid_arg "Acf_fit.fit: need >= 8 points";
  let candidates =
    match knee_candidates with Some ks -> ks | None -> default_knees points
  in
  if candidates = [] then invalid_arg "Acf_fit.fit: no candidate knees";
  let try_knee knee =
    if knee < 2 then None
    else begin
      let srd_pts = List.filter (fun (k, _) -> k >= 1 && k < knee) points in
      let lrd_pts = List.filter (fun (k, _) -> k >= knee) points in
      match (fit_srd srd_pts, fit_lrd ?fixed_beta lrd_pts) with
      | Some _, Some (l, beta) -> (
        (* Impose the Eq-12 continuity constraint: with a single
           exponential the constraint pins the SRD rate, and a
           jump-free model is also what keeps the autocorrelation
           positive definite for the generators. The free SRD fit
           still shapes knee selection through the SSE. *)
        match continuity_lambda ~knee ~l ~beta with
        | Some lambda ->
          let p = { knee; lambda; l; beta } in
          Some (p, sse p points)
        | None -> None)
      | _ -> None
    end
  in
  let best =
    List.fold_left
      (fun best knee ->
        match (best, try_knee knee) with
        | None, r -> r
        | Some (_, be) as b, Some (p, e) -> if e < be then Some (p, e) else b
        | b, None -> b)
      None candidates
  in
  match best with
  | Some (p, _) -> p
  | None -> invalid_arg "Acf_fit.fit: no candidate knee admits a fit"

let compensate p ~a =
  if a <= 0.0 || a > 1.0 then invalid_arg "Acf_fit.compensate: a outside (0,1]";
  let l' = p.l /. a in
  (* Boosted value of the (original) model at the knee. *)
  let r_knee = eval p p.knee /. a in
  let r_knee = Stdlib.min r_knee 0.999 in
  let lambda' = -.log r_knee /. float_of_int p.knee in
  { p with l = l'; lambda = lambda' }

lib/fractal/tes.mli: Ss_stats

lib/fractal/hurst.ml: Array Float List Ss_fft Ss_stats Stdlib

lib/fractal/tes.ml: Array Float Ss_stats Stdlib

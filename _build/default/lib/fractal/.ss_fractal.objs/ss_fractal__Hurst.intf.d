lib/fractal/hurst.mli: Ss_stats

lib/fractal/davies_harte.mli: Acf Ss_stats

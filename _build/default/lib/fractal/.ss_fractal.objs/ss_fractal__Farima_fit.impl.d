lib/fractal/farima_fit.ml: Array Farima_pq Frac_diff Ss_stats Stdlib Whittle

lib/fractal/frac_diff.ml: Array Stdlib

lib/fractal/acf_fit.mli: Acf

lib/fractal/hosking.mli: Acf Ss_stats

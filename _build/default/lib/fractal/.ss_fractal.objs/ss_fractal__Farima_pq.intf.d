lib/fractal/farima_pq.mli: Acf Ss_stats

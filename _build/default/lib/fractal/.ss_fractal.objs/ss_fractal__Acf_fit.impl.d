lib/fractal/acf_fit.ml: Acf List Printf Ss_stats Stdlib

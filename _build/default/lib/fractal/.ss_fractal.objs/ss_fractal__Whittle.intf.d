lib/fractal/whittle.mli:

lib/fractal/farima_fit.mli: Farima_pq

lib/fractal/whittle.ml: Array Hashtbl Ss_fft Ss_stats Stdlib

lib/fractal/farima_pq.ml: Acf Array Davies_harte Hosking Lazy Printf Ss_stats Stdlib

lib/fractal/davies_harte.ml: Acf Array Printf Ss_fft Ss_stats Stdlib

lib/fractal/frac_diff.mli:

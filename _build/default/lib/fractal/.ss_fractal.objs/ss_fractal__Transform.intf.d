lib/fractal/transform.mli: Acf Ss_stats

lib/fractal/transform.ml: Acf Array Hosking List Printf Ss_stats Stdlib

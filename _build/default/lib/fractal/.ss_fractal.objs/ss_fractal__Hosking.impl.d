lib/fractal/hosking.ml: Acf Array Float Printf Ss_stats Stdlib

lib/fractal/acf.ml: Array Float Printf Stdlib

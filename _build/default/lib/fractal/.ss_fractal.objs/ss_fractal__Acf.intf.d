lib/fractal/acf.mli:

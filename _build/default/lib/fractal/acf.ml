type t = { name : string; r : int -> float }

let clamp_corr v = if v > 1.0 then 1.0 else if v < -0.999999 then -0.999999 else v

let at_zero f k =
  if k < 0 then invalid_arg "Acf: negative lag" else if k = 0 then 1.0 else f k

let white_noise = { name = "white_noise"; r = at_zero (fun _ -> 0.0) }

let exponential ~lambda =
  if lambda <= 0.0 then invalid_arg "Acf.exponential: lambda <= 0";
  {
    name = Printf.sprintf "exp(lambda=%g)" lambda;
    r = at_zero (fun k -> exp (-.lambda *. float_of_int k));
  }

let power_law ~l ~beta =
  if l <= 0.0 then invalid_arg "Acf.power_law: l <= 0";
  if beta <= 0.0 || beta >= 1.0 then invalid_arg "Acf.power_law: beta outside (0,1)";
  {
    name = Printf.sprintf "power(l=%g,beta=%g)" l beta;
    r = at_zero (fun k -> clamp_corr (l *. (float_of_int k ** -.beta)));
  }

let fgn ~h =
  if h <= 0.0 || h >= 1.0 then invalid_arg "Acf.fgn: h outside (0,1)";
  let two_h = 2.0 *. h in
  let pow k = float_of_int k ** two_h in
  {
    name = Printf.sprintf "fgn(H=%g)" h;
    r = at_zero (fun k -> 0.5 *. (pow (k + 1) -. (2.0 *. pow k) +. pow (k - 1)));
  }

let farima ~d =
  if d <= -0.5 || d >= 0.5 then invalid_arg "Acf.farima: d outside (-0.5,0.5)";
  (* r(k) = prod_{i=1..k} (d + i - 1)/(i - d); memoized prefix. *)
  let memo = ref [| 1.0 |] in
  let extend_to k =
    let cur = Array.length !memo in
    if k >= cur then begin
      let next = Array.make (k + 1) 0.0 in
      Array.blit !memo 0 next 0 cur;
      for i = cur to k do
        let fi = float_of_int i in
        next.(i) <- next.(i - 1) *. (fi -. 1.0 +. d) /. (fi -. d)
      done;
      memo := next
    end
  in
  {
    name = Printf.sprintf "farima(d=%g)" d;
    r =
      at_zero (fun k ->
          extend_to k;
          !memo.(k));
  }

let composite ~knee ~lambda ~l ~beta =
  if knee < 1 then invalid_arg "Acf.composite: knee < 1";
  if lambda <= 0.0 then invalid_arg "Acf.composite: lambda <= 0";
  if l <= 0.0 then invalid_arg "Acf.composite: l <= 0";
  if beta <= 0.0 || beta >= 1.0 then invalid_arg "Acf.composite: beta outside (0,1)";
  {
    name = Printf.sprintf "composite(knee=%d,lambda=%g,l=%g,beta=%g)" knee lambda l beta;
    r =
      at_zero (fun k ->
          if k < knee then clamp_corr (exp (-.lambda *. float_of_int k))
          else clamp_corr (l *. (float_of_int k ** -.beta)));
  }

let lag_rescale base ~period =
  if period < 1 then invalid_arg "Acf.lag_rescale: period < 1";
  {
    name = Printf.sprintf "%s/period=%d" base.name period;
    r =
      at_zero (fun k ->
          let q = k / period and rem = k mod period in
          if rem = 0 then base.r q
          else begin
            (* Linear interpolation between base lags q and q+1. *)
            let frac = float_of_int rem /. float_of_int period in
            let r0 = base.r q and r1 = base.r (q + 1) in
            r0 +. (frac *. (r1 -. r0))
          end);
  }

let of_fun ~name f = { name; r = at_zero f }

let memoize t =
  let cache = ref [| 1.0 |] in
  let filled = ref 1 in
  let r k =
    if k < 0 then invalid_arg "Acf: negative lag";
    let cur = Array.length !cache in
    if k >= cur then begin
      let next = Array.make (Stdlib.max (k + 1) (2 * cur)) nan in
      Array.blit !cache 0 next 0 cur;
      cache := next
    end;
    if k >= !filled || Float.is_nan !cache.(k) then begin
      !cache.(k) <- t.r k;
      if k >= !filled then filled := k + 1
    end;
    !cache.(k)
  in
  { name = t.name; r }

let hurst t =
  (* Recover a nominal H by parsing the family out of the name would
     be fragile; instead recompute from the model's tail decay using
     two far-apart lags: beta_hat = -d log r / d log k. *)
  let k1 = 1_000 and k2 = 4_000 in
  let r1 = t.r k1 and r2 = t.r k2 in
  if r1 <= 0.0 || r2 <= 0.0 || r2 >= r1 then None
  else begin
    let beta = -.(log (r2 /. r1) /. log (float_of_int k2 /. float_of_int k1)) in
    if beta > 0.0 && beta < 1.0 then Some (1.0 -. (beta /. 2.0)) else None
  end

let to_array t ~n =
  if n <= 0 then invalid_arg "Acf.to_array: n <= 0";
  Array.init n t.r

(** Batch-means confidence intervals for single-run steady-state
    estimates.

    The paper's empirical queueing curves come from one long trace
    run, and it warns that "we would expect significant correlations
    between batches due to the self-similar nature of the traffic".
    This module computes the classical batch-means interval *and*
    the lag-1 batch correlation, so callers can see exactly how badly
    that warning bites (under LRD, batch means stay correlated at
    every batch size — the interval is optimistic). *)

type result = {
  mean : float;  (** grand mean *)
  half_width : float;  (** normal-approximation 95% half width *)
  batch_count : int;
  batch_size : int;
  lag1_batch_corr : float;
      (** sample lag-1 correlation between batch means — near 0 for
          SRD once batches are large, persistently positive under
          LRD *)
}

val analyze : ?batches:int -> float array -> result
(** [analyze x] splits the series into [batches] (default 30)
    equal-size batches (discarding the remainder).
    @raise Invalid_argument if fewer than [2 * batches] points. *)

val overflow_indicator : queue_path:float array -> buffer:float -> float array
(** The 0/1 per-slot indicator [Q_i > b] — the series whose batch
    means estimate a steady-state overflow probability. *)

(** Slotted single-server queue with deterministic service (paper
    Section 4, Eq 16).

    [Q_k = max(0, Q_{k-1} + Y_k - mu)] where [Y_k] is the work
    arriving in slot [k] and [mu] the deterministic service per slot.
    Overflow of a buffer [b] at or before time [k] is equivalent to
    [sup_{i<=k} W_i > b] with [W] the cumulative workload process
    (Eq 17) when the queue starts empty. *)

val step : q:float -> arrival:float -> service:float -> float
(** One Lindley step. *)

val path : ?q0:float -> service:float -> float array -> float array
(** [path ~service arrivals] is the queue size after each slot ([q0]
    defaults to 0, i.e. an initially empty buffer).
    @raise Invalid_argument if [service < 0] or [q0 < 0]. *)

val sup_workload : service:float -> float array -> float
(** [max_{1<=i<=n} W_i] with [W_i = sum_{j<=i} (Y_j - mu)]; equals
    the maximum of [path ~q0:0.] when that maximum is reached before
    any reflection at zero (the identity the importance sampler
    exploits is distributional, via time reversal). *)

val exceeds : ?q0:float -> service:float -> buffer:float -> float array -> int option
(** First slot index (1-based) at which the queue size exceeds
    [buffer], or [None] if it never does within the horizon. *)

val utilization_service : mean_arrival:float -> utilization:float -> float
(** Service rate giving a target utilization:
    [mu = mean_arrival / utilization]. @raise Invalid_argument if
    [utilization] outside (0,1) or [mean_arrival <= 0]. *)

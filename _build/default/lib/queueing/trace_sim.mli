(** Queueing statistics driven by one long (empirical) trace.

    The paper could not replicate the real movie, so all its
    empirical queueing curves come from a single pass of the trace
    through the queue, reading [Pr(Q > b)] as the long-run fraction
    of slots in which the queue exceeds [b] (and reusing the same
    trace for every buffer size). This module reproduces that
    methodology, caveats included. *)

val queue_path : arrivals:float array -> utilization:float -> float array
(** Run the trace through an initially empty queue whose service
    rate is set from the trace's own mean:
    [mu = mean(arrivals)/utilization]. Returns the queue-size path.
    @raise Invalid_argument if [utilization] outside (0,1) or the
    trace mean is not positive. *)

val overflow_fraction : queue_path:float array -> buffer:float -> float
(** Fraction of slots with [Q > buffer]. *)

val overflow_curve :
  arrivals:float array -> utilization:float -> buffers:float list -> (float * float) list
(** [(buffer, Pr(Q > buffer))] for each requested buffer, from a
    single queue pass (buffers are absolute work units; callers
    normalize). *)

val normalized_buffer : arrivals:float array -> float -> float
(** Convert a normalized buffer size (units of mean arrival, the
    paper's convention for Figs 14–17) to absolute work units. *)

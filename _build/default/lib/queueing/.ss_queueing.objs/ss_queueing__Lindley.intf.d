lib/queueing/lindley.mli:

lib/queueing/norros.ml: Stdlib

lib/queueing/mc.ml: Array Lindley Ss_stats Stdlib

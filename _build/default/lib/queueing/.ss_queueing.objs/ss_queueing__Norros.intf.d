lib/queueing/norros.mli:

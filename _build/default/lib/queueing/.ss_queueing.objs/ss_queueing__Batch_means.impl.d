lib/queueing/batch_means.ml: Array Ss_stats

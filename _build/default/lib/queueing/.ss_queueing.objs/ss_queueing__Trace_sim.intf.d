lib/queueing/trace_sim.mli:

lib/queueing/trace_sim.ml: Array Lindley List Ss_stats

lib/queueing/workload.mli: Ss_stats

lib/queueing/batch_means.mli:

lib/queueing/lindley.ml: Array Stdlib

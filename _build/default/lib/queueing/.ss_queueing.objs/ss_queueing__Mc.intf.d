lib/queueing/mc.mli: Ss_stats

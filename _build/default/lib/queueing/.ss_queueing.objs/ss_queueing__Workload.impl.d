lib/queueing/workload.ml: Array List Ss_stats Stdlib

(** Arrival-process composition for the ATM multiplexer.

    The paper's motivation (Section 1) is statistical multiplexing:
    many VBR sources share one buffer. This module superposes
    independent sources — slot-wise addition of their arrival
    processes — so the [abl-mux] bench can quantify the multiplexing
    gain (per-source overflow drops as sources are added at equal
    utilization) and its erosion under long-range dependence. *)

val superpose : float array list -> float array
(** Slot-wise sum, truncated to the shortest source.
    @raise Invalid_argument on an empty list or an empty source. *)

val superpose_gen :
  (Ss_stats.Rng.t -> float array) -> sources:int -> Ss_stats.Rng.t -> float array
(** [superpose_gen gen ~sources rng] draws [sources] independent
    paths (one split substream each) and superposes them.
    @raise Invalid_argument if [sources <= 0]. *)

val scale : float -> float array -> float array
(** Multiply every slot (e.g. unit conversion). *)

val peak_to_mean : float array -> float
(** Burstiness summary: max over mean.
    @raise Invalid_argument on empty input or zero mean. *)

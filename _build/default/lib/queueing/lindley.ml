let step ~q ~arrival ~service = Stdlib.max 0.0 (q +. arrival -. service)

let path ?(q0 = 0.0) ~service arrivals =
  if service < 0.0 then invalid_arg "Lindley.path: service < 0";
  if q0 < 0.0 then invalid_arg "Lindley.path: q0 < 0";
  let q = ref q0 in
  Array.map
    (fun a ->
      q := step ~q:!q ~arrival:a ~service;
      !q)
    arrivals

let sup_workload ~service arrivals =
  let w = ref 0.0 and best = ref 0.0 in
  Array.iter
    (fun a ->
      w := !w +. a -. service;
      if !w > !best then best := !w)
    arrivals;
  !best

let exceeds ?(q0 = 0.0) ~service ~buffer arrivals =
  if service < 0.0 then invalid_arg "Lindley.exceeds: service < 0";
  let q = ref q0 in
  let n = Array.length arrivals in
  let rec go i =
    if i >= n then None
    else begin
      q := step ~q:!q ~arrival:arrivals.(i) ~service;
      if !q > buffer then Some (i + 1) else go (i + 1)
    end
  in
  go 0

let utilization_service ~mean_arrival ~utilization =
  if utilization <= 0.0 || utilization >= 1.0 then
    invalid_arg "Lindley.utilization_service: utilization outside (0,1)";
  if mean_arrival <= 0.0 then invalid_arg "Lindley.utilization_service: mean_arrival <= 0";
  mean_arrival /. utilization

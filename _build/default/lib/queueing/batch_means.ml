type result = {
  mean : float;
  half_width : float;
  batch_count : int;
  batch_size : int;
  lag1_batch_corr : float;
}

let analyze ?(batches = 30) x =
  if batches < 2 then invalid_arg "Batch_means.analyze: batches < 2";
  let n = Array.length x in
  if n < 2 * batches then invalid_arg "Batch_means.analyze: series too short";
  let batch_size = n / batches in
  let means =
    Array.init batches (fun b ->
        let s = ref 0.0 in
        for i = b * batch_size to ((b + 1) * batch_size) - 1 do
          s := !s +. x.(i)
        done;
        !s /. float_of_int batch_size)
  in
  let mean = Ss_stats.Descriptive.mean means in
  let var = Ss_stats.Descriptive.sample_variance means in
  let half_width = 1.96 *. sqrt (var /. float_of_int batches) in
  let lag1 = Ss_stats.Descriptive.autocorrelation means 1 in
  { mean; half_width; batch_count = batches; batch_size; lag1_batch_corr = lag1 }

let overflow_indicator ~queue_path ~buffer =
  Array.map (fun q -> if q > buffer then 1.0 else 0.0) queue_path

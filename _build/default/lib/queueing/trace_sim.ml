module D = Ss_stats.Descriptive

let queue_path ~arrivals ~utilization =
  let mean = D.mean arrivals in
  if mean <= 0.0 then invalid_arg "Trace_sim.queue_path: nonpositive mean arrival";
  let service = Lindley.utilization_service ~mean_arrival:mean ~utilization in
  Lindley.path ~service arrivals

let overflow_fraction ~queue_path ~buffer =
  let n = Array.length queue_path in
  if n = 0 then 0.0
  else begin
    let hits = Array.fold_left (fun a q -> if q > buffer then a + 1 else a) 0 queue_path in
    float_of_int hits /. float_of_int n
  end

let overflow_curve ~arrivals ~utilization ~buffers =
  let qp = queue_path ~arrivals ~utilization in
  List.map (fun b -> (b, overflow_fraction ~queue_path:qp ~buffer:b)) buffers

let normalized_buffer ~arrivals b = b *. D.mean arrivals

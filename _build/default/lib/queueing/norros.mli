(** Norros' analytic storage model for fractional-Brownian-motion
    input (reference [23] of the paper).

    For cumulative input [A(t) = m t + sigma W_H(t)] served at
    constant rate [C > m], the stationary queue satisfies the
    Weibullian approximation

    [P(Q > b) ~ exp( - (C-m)^{2H} b^{2-2H} /
                     (2 kappa(H)^2 sigma^2) )]

    with [kappa(H) = H^H (1-H)^{1-H}]. The paper's empirical finding
    that overflow decays {e slower than exponentially} under
    self-similar video is this formula's [b^{2-2H}] exponent; the
    bench harness overlays it on the Fig-16 curves as an analytic
    cross-check. *)

val kappa : float -> float
(** [H^H (1-H)^{1-H}]. @raise Invalid_argument if [H] outside
    (0,1). *)

val log_overflow :
  mean_rate:float -> service:float -> hurst:float -> sigma2:float -> buffer:float -> float
(** Natural log of the overflow approximation above.
    [sigma2] is the per-slot marginal variance of the arrival
    process (so that [Var A(t) ~ sigma2 t^{2H}]).
    @raise Invalid_argument if [service <= mean_rate], [sigma2 <= 0],
    [buffer < 0] or [hurst] outside (0,1). *)

val overflow :
  mean_rate:float -> service:float -> hurst:float -> sigma2:float -> buffer:float -> float
(** [exp (log_overflow ...)], clamped to [0,1]. *)

let kappa h =
  if h <= 0.0 || h >= 1.0 then invalid_arg "Norros.kappa: H outside (0,1)";
  (h ** h) *. ((1.0 -. h) ** (1.0 -. h))

let log_overflow ~mean_rate ~service ~hurst ~sigma2 ~buffer =
  if service <= mean_rate then invalid_arg "Norros: service <= mean rate (unstable)";
  if sigma2 <= 0.0 then invalid_arg "Norros: sigma2 <= 0";
  if buffer < 0.0 then invalid_arg "Norros: negative buffer";
  if hurst <= 0.0 || hurst >= 1.0 then invalid_arg "Norros: hurst outside (0,1)";
  let k = kappa hurst in
  let surplus = service -. mean_rate in
  -.(surplus ** (2.0 *. hurst))
  *. (buffer ** (2.0 -. (2.0 *. hurst)))
  /. (2.0 *. k *. k *. sigma2)

let overflow ~mean_rate ~service ~hurst ~sigma2 ~buffer =
  let l = log_overflow ~mean_rate ~service ~hurst ~sigma2 ~buffer in
  Stdlib.min 1.0 (exp l)

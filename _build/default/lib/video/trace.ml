module D = Ss_stats.Descriptive

type t = {
  sizes : float array;
  gop : Gop.t;
  fps : float;
  name : string;
}

let make ?(name = "trace") ?(fps = 30.0) ~gop sizes =
  if Array.length sizes = 0 then invalid_arg "Trace.make: empty sizes";
  Array.iter (fun s -> if s < 0.0 then invalid_arg "Trace.make: negative frame size") sizes;
  if fps <= 0.0 then invalid_arg "Trace.make: fps <= 0";
  { sizes; gop; fps; name }

let length t = Array.length t.sizes
let kind_at t i = Gop.kind_at t.gop i

let of_kind t kind =
  Gop.indices_of t.gop kind ~n:(length t)
  |> List.map (fun i -> t.sizes.(i))
  |> Array.of_list

type summary = {
  frames : int;
  duration_s : float;
  mean_bytes : float;
  peak_bytes : float;
  mean_rate_bps : float;
  peak_rate_bps : float;
  std_bytes : float;
  mean_by_kind : (Frame.kind * float) list;
}

let summarize t =
  let mean = D.mean t.sizes in
  let peak = D.max t.sizes in
  let mean_by_kind =
    List.filter_map
      (fun kind ->
        let xs = of_kind t kind in
        if Array.length xs = 0 then None else Some (kind, D.mean xs))
      [ Frame.I; Frame.P; Frame.B ]
  in
  {
    frames = length t;
    duration_s = float_of_int (length t) /. t.fps;
    mean_bytes = mean;
    peak_bytes = peak;
    mean_rate_bps = mean *. 8.0 *. t.fps;
    peak_rate_bps = peak *. 8.0 *. t.fps;
    std_bytes = D.std t.sizes;
    mean_by_kind;
  }

let pp_summary fmt s =
  Format.fprintf fmt "frames            %d@." s.frames;
  Format.fprintf fmt "duration          %.1f s@." s.duration_s;
  Format.fprintf fmt "mean bytes/frame  %.1f@." s.mean_bytes;
  Format.fprintf fmt "peak bytes/frame  %.1f@." s.peak_bytes;
  Format.fprintf fmt "std bytes/frame   %.1f@." s.std_bytes;
  Format.fprintf fmt "mean rate         %.3f Mbit/s@." (s.mean_rate_bps /. 1e6);
  Format.fprintf fmt "peak rate         %.3f Mbit/s@." (s.peak_rate_bps /. 1e6);
  List.iter
    (fun (k, m) -> Format.fprintf fmt "mean %c bytes      %.1f@." (Frame.to_char k) m)
    s.mean_by_kind

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# name %s\n" t.name;
      Printf.fprintf oc "# fps %.6g\n" t.fps;
      Printf.fprintf oc "# gop %s\n" (Gop.to_string t.gop);
      Array.iter (fun s -> Printf.fprintf oc "%.6g\n" s) t.sizes)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let name = ref "trace" and fps = ref 30.0 and gop = ref Gop.default in
      let sizes = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           incr lineno;
           let line = String.trim (input_line ic) in
           if line = "" then ()
           else if String.length line > 0 && line.[0] = '#' then begin
             match String.split_on_char ' ' line with
             | "#" :: "name" :: rest -> name := String.concat " " rest
             | [ "#"; "fps"; v ] -> (
               match float_of_string_opt v with Some f when f > 0.0 -> fps := f | _ -> ())
             | [ "#"; "gop"; v ] -> (
               match Gop.of_string v with g -> gop := g | exception Invalid_argument _ -> ())
             | _ -> ()
           end
           else begin
             match float_of_string_opt line with
             | Some v when v >= 0.0 -> sizes := v :: !sizes
             | _ -> failwith (Printf.sprintf "Trace.load: %s:%d: bad size %S" path !lineno line)
           end
         done
       with End_of_file -> ());
      make ~name:!name ~fps:!fps ~gop:!gop (Array.of_list (List.rev !sizes)))

(** Composite I/B/P foreground construction (paper Section 3.3).

    One stationary background Gaussian process X drives three
    marginal transforms — [h_I], [h_P], [h_B] — built from the
    per-type empirical histograms of a reference trace. Frame [t] of
    the synthetic stream is [h_{kind t}(x_t)], reproducing both the
    per-type marginals and the GOP-periodic autocorrelation
    structure. *)

type t
(** Per-type transforms bound to a GOP pattern. *)

val of_trace : Trace.t -> t
(** Build the three empirical transforms from a reference trace.
    @raise Invalid_argument if the trace lacks any frame type present
    in its GOP pattern. *)

val gop : t -> Gop.t

val transform : t -> Frame.kind -> Ss_fractal.Transform.t
(** The marginal transform used for a frame type. *)

val apply : t -> float array -> Trace.t
(** [apply t x] maps a background Gaussian path to a foreground
    trace: frame [i] is [h_{kind i}(x.(i))]. *)

val mean_attenuation : t -> float
(** Frame-count-weighted average of the per-type theoretical
    attenuation factors — the effective [a] for the composite
    stream. *)

val i_acf_target : t -> reference:Trace.t -> max_lag:int -> (int * float) list
(** Autocorrelation points of the reference trace's I-frame
    subsequence — the input to the paper's Step-1/Step-2 fit of
    Section 3.3. [max_lag] is in I-frame lags.
    @raise Invalid_argument if too few I frames. *)

module Rng = Ss_stats.Rng
module Dct = Ss_fft.Dct

type config = {
  width : int;
  height : int;
  quant : float;
  blobs : int;
  noise : float;
  mean_scene_frames : float;
}

let default =
  {
    width = 64;
    height = 48;
    quant = 12.0;
    blobs = 3;
    noise = 2.0;
    mean_scene_frames = 90.0;
  }

type blob = {
  mutable x : float;
  mutable y : float;
  vx : float;
  vy : float;
  amp : float;
  sigma : float;
}

let new_blob c rng =
  {
    x = Rng.float_range rng 0.0 (float_of_int c.width);
    y = Rng.float_range rng 0.0 (float_of_int c.height);
    vx = Rng.float_range rng (-2.0) 2.0;
    vy = Rng.float_range rng (-2.0) 2.0;
    amp = Rng.float_range rng 40.0 160.0;
    sigma = Rng.float_range rng 3.0 10.0;
  }

(* Render one luma frame: background + Gaussian blobs + noise. *)
let render c rng blobs frame =
  let w = c.width and h = c.height in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let v = ref (96.0 +. (c.noise *. Rng.gaussian rng)) in
      List.iter
        (fun b ->
          let dx = float_of_int x -. b.x and dy = float_of_int y -. b.y in
          let d2 = ((dx *. dx) +. (dy *. dy)) /. (2.0 *. b.sigma *. b.sigma) in
          if d2 < 12.0 then v := !v +. (b.amp *. exp (-.d2)))
        blobs;
      frame.((y * w) + x) <- !v
    done
  done

let move_blobs c blobs =
  List.iter
    (fun b ->
      b.x <- mod_float (b.x +. b.vx +. float_of_int c.width) (float_of_int c.width);
      b.y <- mod_float (b.y +. b.vy +. float_of_int c.height) (float_of_int c.height))
    blobs

(* Exponential-Golomb code length for a signed integer level. *)
let golomb_bits level =
  let m = (2 * abs level) + (if level > 0 then 0 else 1) in
  let rec log2 n acc = if n <= 1 then acc else log2 (n / 2) (acc + 1) in
  (2 * log2 (m + 1) 0) + 1

(* Bits to code one 8x8 block of a (residual) image with zig-zag
   run-length of zeros: each nonzero level costs its Golomb length
   plus a 4-bit run count; an end-of-block marker costs 2 bits. *)
let block_bits c img ~w ~bx ~by =
  let block = Array.make 64 0.0 in
  for j = 0 to 7 do
    for i = 0 to 7 do
      block.((j * 8) + i) <- img.((((by * 8) + j) * w) + (bx * 8) + i)
    done
  done;
  let coefs = Dct.forward_8x8 block in
  let bits = ref 2 in
  let run = ref 0 in
  (* Plain raster order stands in for zig-zag: run structure is
     equivalent for size-accounting purposes. *)
  Array.iter
    (fun coef ->
      let level = int_of_float (Float.round (coef /. c.quant)) in
      if level = 0 then incr run
      else begin
        bits := !bits + 4 + golomb_bits level;
        run := 0
      end)
    coefs;
  !bits

let frame_bits c img =
  let bw = c.width / 8 and bh = c.height / 8 in
  let bits = ref 64 (* frame header *) in
  for by = 0 to bh - 1 do
    for bx = 0 to bw - 1 do
      bits := !bits + block_bits c img ~w:c.width ~bx ~by
    done
  done;
  !bits

let subtract dst a b =
  Array.iteri (fun i _ -> dst.(i) <- a.(i) -. b.(i)) dst

let average dst a b =
  Array.iteri (fun i _ -> dst.(i) <- a.(i) -. ((b.(i) +. a.(i)) /. 2.0)) dst

let encode c ~gop ~frames rng =
  if c.width <= 0 || c.width mod 8 <> 0 || c.height <= 0 || c.height mod 8 <> 0 then
    invalid_arg "Toy_codec.encode: dimensions must be positive multiples of 8";
  if frames <= 0 then invalid_arg "Toy_codec.encode: frames <= 0";
  if c.quant <= 0.0 then invalid_arg "Toy_codec.encode: quant <= 0";
  let npix = c.width * c.height in
  let cur = Array.make npix 0.0 in
  let anchor = Array.make npix 0.0 in
  (* previous I or P frame *)
  let resid = Array.make npix 0.0 in
  let sizes = Array.make frames 0.0 in
  let blobs = ref (List.init c.blobs (fun _ -> new_blob c rng)) in
  let scene_left = ref 0 in
  for t = 0 to frames - 1 do
    if !scene_left <= 0 then begin
      blobs := List.init c.blobs (fun _ -> new_blob c rng);
      scene_left :=
        Stdlib.max 1 (int_of_float (Rng.exponential rng ~rate:(1.0 /. c.mean_scene_frames)))
    end;
    decr scene_left;
    render c rng !blobs cur;
    move_blobs c !blobs;
    let bits =
      match Gop.kind_at gop t with
      | Frame.I ->
        Array.blit cur 0 anchor 0 npix;
        frame_bits c cur
      | Frame.P ->
        subtract resid cur anchor;
        Array.blit cur 0 anchor 0 npix;
        frame_bits { c with quant = c.quant } resid
      | Frame.B ->
        average resid cur anchor;
        frame_bits { c with quant = c.quant *. 1.5 } resid
    in
    sizes.(t) <- Float.round (float_of_int bits /. 8.0)
  done;
  Trace.make ~name:"toy-codec" ~gop sizes

lib/video/composite.ml: Array Frame Gop List Printf Ss_fractal Ss_stats Stdlib Trace

lib/video/scene_source.mli: Gop Ss_stats Trace

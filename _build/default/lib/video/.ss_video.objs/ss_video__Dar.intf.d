lib/video/dar.mli: Ss_fractal Ss_stats

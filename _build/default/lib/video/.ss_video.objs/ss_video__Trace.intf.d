lib/video/trace.mli: Format Frame Gop

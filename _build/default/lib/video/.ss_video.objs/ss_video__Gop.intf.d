lib/video/gop.mli: Frame

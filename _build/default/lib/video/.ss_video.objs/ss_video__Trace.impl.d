lib/video/trace.ml: Array Format Frame Fun Gop List Printf Ss_stats String

lib/video/dar.ml: Array Ss_fractal Ss_stats

lib/video/composite.mli: Frame Gop Ss_fractal Trace

lib/video/scene_source.ml: Array Float Frame Gop Ss_stats Stdlib Trace

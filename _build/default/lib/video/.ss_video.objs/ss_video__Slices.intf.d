lib/video/slices.mli: Trace

lib/video/slices.ml: Array Trace

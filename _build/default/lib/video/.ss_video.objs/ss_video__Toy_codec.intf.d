lib/video/toy_codec.mli: Gop Ss_stats Trace

lib/video/frame.ml: Format Printf

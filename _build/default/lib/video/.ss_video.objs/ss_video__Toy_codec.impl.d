lib/video/toy_codec.ml: Array Float Frame Gop List Ss_fft Ss_stats Stdlib Trace

lib/video/gop.ml: Array Frame List String

(** A miniature MPEG-1-like codec over synthetic scenes.

    This is the demonstration substrate standing in for the paper's
    PVRG-MPEG 1.1 codec: it shows end-to-end where frame sizes come
    from. Synthetic luma frames (moving Gaussian blobs over a noisy
    background, blob setup redrawn at scene changes) are coded with
    the real MPEG-1 intraframe tool chain in miniature — 8x8 DCT
    (from {!Ss_fft.Dct}), uniform quantization, zig-zag run-length +
    exponential-Golomb size accounting. P frames code the residual
    against the previous frame, B frames against the average of their
    I/P anchors, exactly the dependency structure of the
    [IBBPBBPBBPBB] GOP.

    It is deliberately small and is not on the critical experiment
    path (the statistical reference trace comes from
    {!Scene_source}); tests and one example use it. *)

type config = {
  width : int;  (** luma width, multiple of 8 *)
  height : int;  (** luma height, multiple of 8 *)
  quant : float;  (** quantizer step (larger = smaller frames) *)
  blobs : int;  (** moving objects per scene *)
  noise : float;  (** background noise std, luma units *)
  mean_scene_frames : float;  (** scene-change interval *)
}

val default : config
(** 64x48 luma, quant 12, 3 blobs. *)

val encode : config -> gop:Gop.t -> frames:int -> Ss_stats.Rng.t -> Trace.t
(** Synthesize and encode [frames] frames; returns the byte-size
    trace. @raise Invalid_argument if dimensions are not positive
    multiples of 8, [frames <= 0], or [quant <= 0]. *)

(** Slice-granularity traffic.

    The paper's trace carries 15 slices per frame (Table 1) and its
    companion work (Ismail et al., reference [15]) studies "frame
    spreading": transmitting a frame's bytes spread evenly over the
    frame interval instead of as one burst. This module converts a
    frame-size trace to a slice-level arrival process so the
    [abl-slice] bench can measure how much spreading smooths queueing
    at the same utilization. *)

val per_frame_default : int
(** 15 — the paper's slice rate. *)

val spread_evenly : ?per_frame:int -> Trace.t -> float array
(** Each frame's bytes divided equally over its slices; the slot time
    becomes [1/(fps*per_frame)]. Total bytes are conserved exactly.
    @raise Invalid_argument if [per_frame <= 0]. *)

val front_loaded : ?per_frame:int -> Trace.t -> float array
(** The no-spreading reference at slice granularity: all of a frame's
    bytes arrive in its first slice (slices 2..per_frame are empty).
    Same mean rate as {!spread_evenly}, maximal burstiness. *)

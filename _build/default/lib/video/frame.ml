type kind = I | P | B

let to_char = function I -> 'I' | P -> 'P' | B -> 'B'

let of_char = function
  | 'I' -> I
  | 'P' -> P
  | 'B' -> B
  | c -> invalid_arg (Printf.sprintf "Frame.of_char: %C is not I, P or B" c)

let equal a b = match (a, b) with I, I | P, P | B, B -> true | _ -> false
let pp fmt k = Format.pp_print_char fmt (to_char k)

let per_frame_default = 15

let spread_evenly ?(per_frame = per_frame_default) trace =
  if per_frame <= 0 then invalid_arg "Slices.spread_evenly: per_frame <= 0";
  let sizes = trace.Trace.sizes in
  let n = Array.length sizes in
  let out = Array.make (n * per_frame) 0.0 in
  for i = 0 to n - 1 do
    let share = sizes.(i) /. float_of_int per_frame in
    for s = 0 to per_frame - 1 do
      out.((i * per_frame) + s) <- share
    done
  done;
  out

let front_loaded ?(per_frame = per_frame_default) trace =
  if per_frame <= 0 then invalid_arg "Slices.front_loaded: per_frame <= 0";
  let sizes = trace.Trace.sizes in
  let n = Array.length sizes in
  let out = Array.make (n * per_frame) 0.0 in
  for i = 0 to n - 1 do
    out.(i * per_frame) <- sizes.(i)
  done;
  out

(** DAR(1) — the discrete autoregressive teleconference-video model
    of Heyman et al. (reference [10] of the paper).

    [X_n = X_{n-1}] with probability [rho], otherwise a fresh draw
    from the marginal. The autocorrelation is exactly [rho^k]
    regardless of the marginal — the canonical "traditional
    (Markovian) model with exponential ACF" the paper argues cannot
    capture VBR video's long-range dependence. Used as the
    traditional baseline in the [abl-trad] bench. *)

type t

val create : rho:float -> Ss_stats.Dist.t -> t
(** @raise Invalid_argument if [rho] outside [0,1). *)

val of_trace_marginal : rho:float -> float array -> t
(** DAR(1) over the empirical marginal of a frame-size record — the
    way the model is fitted in practice ([rho] from the lag-1 sample
    autocorrelation). *)

val generate : t -> n:int -> Ss_stats.Rng.t -> float array
(** Sample a path. @raise Invalid_argument if [n <= 0]. *)

val acf : t -> Ss_fractal.Acf.t
(** The exact [rho^k] autocorrelation. *)

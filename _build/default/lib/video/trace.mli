(** VBR video traces: per-frame sizes plus stream metadata.

    A trace is the object the whole modeling pipeline consumes — the
    paper's role for the "Last Action Hero" record. Sizes are floats
    in bytes/frame. *)

type t = {
  sizes : float array;  (** bytes per frame *)
  gop : Gop.t;
  fps : float;  (** frames per second *)
  name : string;
}

val make : ?name:string -> ?fps:float -> gop:Gop.t -> float array -> t
(** Wrap a size array (not copied). Default [fps] is 30, [name]
    "trace". @raise Invalid_argument on empty sizes or any negative
    size. *)

val length : t -> int

val kind_at : t -> int -> Frame.kind
(** Frame type of index [i] under the trace's GOP. *)

val of_kind : t -> Frame.kind -> float array
(** Subsequence of sizes of the given frame type, in stream order.
    For I frames under the default GOP this is the paper's
    "isolate I frames" Step 1 of Section 3.3. *)

type summary = {
  frames : int;
  duration_s : float;
  mean_bytes : float;
  peak_bytes : float;
  mean_rate_bps : float;  (** mean bit rate, bits/second *)
  peak_rate_bps : float;
  std_bytes : float;
  mean_by_kind : (Frame.kind * float) list;  (** per-type mean sizes *)
}

val summarize : t -> summary
(** Table-1-style statistics of the stream. *)

val pp_summary : Format.formatter -> summary -> unit

val save : t -> string -> unit
(** Write to a text file: [#]-prefixed metadata header (name, fps,
    gop) followed by one size per line. *)

val load : string -> t
(** Read a file written by {!save}. Unknown header keys are ignored;
    missing metadata falls back to defaults. @raise Failure on a
    malformed size line; @raise Sys_error if unreadable. *)

(** Group-of-pictures structure.

    The paper's codec emits the 12-frame pattern [IBBPBBPBBPBB]
    (one I frame every 12 frames); this module represents arbitrary
    GOP patterns and answers "what type is frame [t]?". *)

type t

val of_string : string -> t
(** Parse a pattern such as ["IBBPBBPBBPBB"]. The pattern must be
    non-empty and start with [I] (the stream is assumed to repeat it
    verbatim). @raise Invalid_argument otherwise. *)

val default : t
(** The paper's [IBBPBBPBBPBB]. *)

val to_string : t -> string
val length : t -> int

val kind_at : t -> int -> Frame.kind
(** Frame type at absolute frame index [t >= 0].
    @raise Invalid_argument if negative. *)

val i_period : t -> int
(** Distance between consecutive I frames = pattern length (the
    paper's [K_I = 12]). *)

val indices_of : t -> Frame.kind -> n:int -> int list
(** All absolute indices of the given type among frames
    [0 .. n-1]. *)

val count_in_pattern : t -> Frame.kind -> int
(** Occurrences of a type inside one pattern repetition. *)

type t = Frame.kind array

let of_string s =
  if String.length s = 0 then invalid_arg "Gop.of_string: empty pattern";
  let pat = Array.init (String.length s) (fun i -> Frame.of_char s.[i]) in
  if not (Frame.equal pat.(0) Frame.I) then
    invalid_arg "Gop.of_string: pattern must start with an I frame";
  pat

let default = of_string "IBBPBBPBBPBB"
let to_string t = String.init (Array.length t) (fun i -> Frame.to_char t.(i))
let length = Array.length

let kind_at t i =
  if i < 0 then invalid_arg "Gop.kind_at: negative index";
  t.(i mod Array.length t)

let i_period = Array.length

let indices_of t kind ~n =
  let rec go i acc =
    if i >= n then List.rev acc
    else go (i + 1) (if Frame.equal (kind_at t i) kind then i :: acc else acc)
  in
  go 0 []

let count_in_pattern t kind =
  Array.fold_left (fun acc k -> if Frame.equal k kind then acc + 1 else acc) 0 t

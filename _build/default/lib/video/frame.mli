(** MPEG frame types.

    An MPEG-1 sequence interleaves intraframes (I, coded standalone),
    forward-predicted frames (P) and bidirectionally predicted frames
    (B); the paper's composite model applies a separate marginal
    transform per type (Section 3.3). *)

type kind = I | P | B

val to_char : kind -> char
(** ['I'], ['P'] or ['B']. *)

val of_char : char -> kind
(** @raise Invalid_argument on any other character (case
    sensitive). *)

val equal : kind -> kind -> bool
val pp : Format.formatter -> kind -> unit

module Transform = Ss_fractal.Transform
module Dist = Ss_stats.Dist
module Empirical = Ss_stats.Empirical
module Timeseries = Ss_stats.Timeseries

type t = {
  gop : Gop.t;
  fps : float;
  h_i : Transform.t;
  h_p : Transform.t option;  (* a GOP may lack P or B frames *)
  h_b : Transform.t option;
}

let transform_of_sizes sizes =
  Transform.make (Dist.of_empirical (Empirical.of_data sizes))

let of_trace trace =
  let need kind =
    let xs = Trace.of_kind trace kind in
    if Array.length xs = 0 then
      invalid_arg
        (Printf.sprintf "Composite.of_trace: no %c frames in trace" (Frame.to_char kind));
    xs
  in
  let opt kind =
    if Gop.count_in_pattern trace.Trace.gop kind = 0 then None
    else Some (transform_of_sizes (need kind))
  in
  {
    gop = trace.Trace.gop;
    fps = trace.Trace.fps;
    h_i = transform_of_sizes (need Frame.I);
    h_p = opt Frame.P;
    h_b = opt Frame.B;
  }

let gop t = t.gop

let transform t kind =
  match kind with
  | Frame.I -> t.h_i
  | Frame.P -> (
    match t.h_p with
    | Some h -> h
    | None -> invalid_arg "Composite.transform: GOP has no P frames")
  | Frame.B -> (
    match t.h_b with
    | Some h -> h
    | None -> invalid_arg "Composite.transform: GOP has no B frames")

let apply t x =
  let sizes =
    Array.mapi
      (fun i v -> Stdlib.max 0.0 (Transform.apply1 (transform t (Gop.kind_at t.gop i)) v))
      x
  in
  Trace.make ~name:"composite-model" ~fps:t.fps ~gop:t.gop sizes

let mean_attenuation t =
  let per_kind =
    List.filter_map
      (fun kind ->
        let count = Gop.count_in_pattern t.gop kind in
        if count = 0 then None
        else Some (float_of_int count, Transform.attenuation (transform t kind)))
      [ Frame.I; Frame.P; Frame.B ]
  in
  let total = List.fold_left (fun a (w, _) -> a +. w) 0.0 per_kind in
  List.fold_left (fun a (w, v) -> a +. (w *. v)) 0.0 per_kind /. total

let i_acf_target _t ~reference ~max_lag =
  let i_sizes = Trace.of_kind reference Frame.I in
  if Array.length i_sizes <= max_lag + 1 then
    invalid_arg "Composite.i_acf_target: too few I frames for requested lag";
  Timeseries.acf_points i_sizes ~max_lag

module Rng = Ss_stats.Rng
module Dist = Ss_stats.Dist

type t = {
  rho : float;
  dist : Dist.t;
}

let create ~rho dist =
  if rho < 0.0 || rho >= 1.0 then invalid_arg "Dar.create: rho outside [0,1)";
  { rho; dist }

let of_trace_marginal ~rho sizes =
  create ~rho (Dist.of_empirical (Ss_stats.Empirical.of_data sizes))

let generate t ~n rng =
  if n <= 0 then invalid_arg "Dar.generate: n <= 0";
  let current = ref (t.dist.Dist.sample rng) in
  Array.init n (fun _ ->
      if Rng.float rng >= t.rho then current := t.dist.Dist.sample rng;
      !current)

let acf t =
  if t.rho = 0.0 then Ss_fractal.Acf.white_noise
  else Ss_fractal.Acf.exponential ~lambda:(-.log t.rho)

(** Periodogram spectral estimation.

    For a long-range dependent process the spectral density behaves
    like [f(lambda) ~ c |lambda|^{1-2H}] near the origin, so the
    log-log slope of the periodogram at low frequencies estimates
    [1-2H]. Complements the variance–time and R/S estimators used in
    the paper. *)

val compute : float array -> (float * float) array
(** [compute x] returns [(lambda_j, I(lambda_j))] for the Fourier
    frequencies [lambda_j = 2 pi j / n], [j = 1 .. n/2], where
    [I(lambda) = |sum (x_t - mean) e^{-i t lambda}|^2 / (2 pi n)].
    The series is zero-padded to a power of two; frequencies reported
    are those of the padded length. @raise Invalid_argument if input
    has fewer than 16 points. *)

val hurst_fit : ?low_fraction:float -> float array -> float * Ss_stats.Regression.fit
(** [hurst_fit x] regresses [log10 I(lambda)] on [log10 lambda] over
    the lowest [low_fraction] (default 0.1) of frequencies and
    returns [(H_estimate, fit)] with [H = (1 - slope)/2]. *)

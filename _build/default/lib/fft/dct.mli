(** 8x8 type-II discrete cosine transform, the workhorse of MPEG-1
    intraframe coding. Used by the toy codec substrate
    ({!Ss_video.Toy_codec}) to turn synthetic image blocks into
    coefficient blocks whose entropy determines frame sizes. *)

val forward_8x8 : float array -> float array
(** [forward_8x8 block] transforms a row-major 64-element block with
    the orthonormal DCT-II. @raise Invalid_argument if the length is
    not 64. *)

val inverse_8x8 : float array -> float array
(** Orthonormal inverse (DCT-III); [inverse_8x8 (forward_8x8 b)]
    restores [b] up to rounding. @raise Invalid_argument if the
    length is not 64. *)

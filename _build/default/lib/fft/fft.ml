let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  if n <= 0 then invalid_arg "Fft.next_pow2: n <= 0";
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let two_pi = 8.0 *. atan 1.0

(* In-place bit-reversal permutation. *)
let bit_reverse re im =
  let n = Array.length re in
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done

let transform ~sign re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft: re/im length mismatch";
  if not (is_pow2 n) then invalid_arg "Fft: length not a power of two";
  if n > 1 then begin
    bit_reverse re im;
    let len = ref 2 in
    while !len <= n do
      let ang = sign *. two_pi /. float_of_int !len in
      let wr = cos ang and wi = sin ang in
      let i = ref 0 in
      while !i < n do
        let cr = ref 1.0 and ci = ref 0.0 in
        let half = !len / 2 in
        for j = 0 to half - 1 do
          let a = !i + j and b = !i + j + half in
          let ur = Array.unsafe_get re a and ui = Array.unsafe_get im a in
          let vr0 = Array.unsafe_get re b and vi0 = Array.unsafe_get im b in
          let vr = (vr0 *. !cr) -. (vi0 *. !ci) in
          let vi = (vr0 *. !ci) +. (vi0 *. !cr) in
          Array.unsafe_set re a (ur +. vr);
          Array.unsafe_set im a (ui +. vi);
          Array.unsafe_set re b (ur -. vr);
          Array.unsafe_set im b (ui -. vi);
          let ncr = (!cr *. wr) -. (!ci *. wi) in
          ci := (!cr *. wi) +. (!ci *. wr);
          cr := ncr
        done;
        i := !i + !len
      done;
      len := !len * 2
    done
  end

let forward re im = transform ~sign:(-1.0) re im

let inverse re im =
  transform ~sign:1.0 re im;
  let n = float_of_int (Array.length re) in
  for i = 0 to Array.length re - 1 do
    re.(i) <- re.(i) /. n;
    im.(i) <- im.(i) /. n
  done

let dft_naive re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft.dft_naive: length mismatch";
  let out_re = Array.make n 0.0 and out_im = Array.make n 0.0 in
  for k = 0 to n - 1 do
    let sr = ref 0.0 and si = ref 0.0 in
    for j = 0 to n - 1 do
      let ang = -.two_pi *. float_of_int (j * k) /. float_of_int n in
      let c = cos ang and s = sin ang in
      sr := !sr +. ((re.(j) *. c) -. (im.(j) *. s));
      si := !si +. ((re.(j) *. s) +. (im.(j) *. c))
    done;
    out_re.(k) <- !sr;
    out_im.(k) <- !si
  done;
  (out_re, out_im)

let real_forward_magnitude2 x =
  let re = Array.copy x in
  let im = Array.make (Array.length x) 0.0 in
  forward re im;
  Array.init (Array.length x) (fun k -> (re.(k) *. re.(k)) +. (im.(k) *. im.(k)))

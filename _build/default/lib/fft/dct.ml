(* Orthonormal 8x8 DCT-II/III implemented by separable 1-D passes
   with a precomputed 8x8 cosine basis. *)

let n = 8
let pi = 4.0 *. atan 1.0

(* basis.(k).(x) = c_k * cos((2x+1) k pi / 16), orthonormal scaling. *)
let basis =
  Array.init n (fun k ->
      let ck = if k = 0 then sqrt (1.0 /. float_of_int n) else sqrt (2.0 /. float_of_int n) in
      Array.init n (fun x ->
          ck *. cos ((2.0 *. float_of_int x +. 1.0) *. float_of_int k *. pi /. (2.0 *. float_of_int n))))

let check block name =
  if Array.length block <> n * n then invalid_arg ("Dct." ^ name ^ ": need 64 elements")

(* 1-D transforms over rows of a row-major 8x8 array. *)
let transform_rows ~inverse src =
  let dst = Array.make (n * n) 0.0 in
  for r = 0 to n - 1 do
    for k = 0 to n - 1 do
      let s = ref 0.0 in
      for x = 0 to n - 1 do
        let b = if inverse then basis.(x).(k) else basis.(k).(x) in
        s := !s +. (b *. src.((r * n) + x))
      done;
      dst.((r * n) + k) <- !s
    done
  done;
  dst

let transpose src =
  Array.init (n * n) (fun i ->
      let r = i / n and c = i mod n in
      src.((c * n) + r))

let forward_8x8 block =
  check block "forward_8x8";
  (* rows, transpose, rows, transpose = separable 2-D transform *)
  transpose (transform_rows ~inverse:false (transpose (transform_rows ~inverse:false block)))

let inverse_8x8 block =
  check block "inverse_8x8";
  transpose (transform_rows ~inverse:true (transpose (transform_rows ~inverse:true block)))

(** Radix-2 fast Fourier transform on split real/imaginary arrays.

    Hand-rolled iterative Cooley–Tukey used by the Davies–Harte
    sampler (circulant embedding of the target autocovariance) and
    the periodogram Hurst estimator. Sizes must be powers of two. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is true iff [n] is a positive power of two. *)

val next_pow2 : int -> int
(** Smallest power of two [>= n]. @raise Invalid_argument if
    [n <= 0]. *)

val forward : float array -> float array -> unit
(** [forward re im] replaces [(re, im)] by its in-place DFT
    [X_k = sum_j x_j exp(-2 pi i j k / n)].
    @raise Invalid_argument if lengths differ or are not a power of
    two. *)

val inverse : float array -> float array -> unit
(** In-place inverse DFT including the [1/n] normalization, so
    [inverse] after [forward] restores the input. *)

val dft_naive : float array -> float array -> float array * float array
(** O(n^2) reference DFT (any length), used as the test oracle. *)

val real_forward_magnitude2 : float array -> float array
(** [real_forward_magnitude2 x] returns [|X_k|^2] for k = 0..n-1 of a
    real input (zero imaginary part), without mutating [x].
    @raise Invalid_argument if the length is not a power of two. *)

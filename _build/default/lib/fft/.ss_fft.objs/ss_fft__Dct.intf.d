lib/fft/dct.mli:

lib/fft/dct.ml: Array

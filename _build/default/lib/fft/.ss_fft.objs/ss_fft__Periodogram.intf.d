lib/fft/periodogram.mli: Ss_stats

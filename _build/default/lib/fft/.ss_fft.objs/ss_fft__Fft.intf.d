lib/fft/fft.mli:

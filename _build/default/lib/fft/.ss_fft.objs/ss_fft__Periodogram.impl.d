lib/fft/periodogram.ml: Array Fft List Ss_stats Stdlib

lib/fft/fft.ml: Array

let two_pi = 8.0 *. atan 1.0

let compute x =
  let n = Array.length x in
  if n < 16 then invalid_arg "Periodogram.compute: need >= 16 points";
  let mean = Ss_stats.Descriptive.mean x in
  let padded = Fft.next_pow2 n in
  let re = Array.make padded 0.0 in
  Array.iteri (fun i v -> re.(i) <- v -. mean) x;
  let mag2 = Fft.real_forward_magnitude2 re in
  Array.init (padded / 2) (fun j ->
      let j = j + 1 in
      let lambda = two_pi *. float_of_int j /. float_of_int padded in
      (lambda, mag2.(j) /. (two_pi *. float_of_int n)))

let hurst_fit ?(low_fraction = 0.1) x =
  let pts = compute x in
  let keep = Stdlib.max 4 (int_of_float (low_fraction *. float_of_int (Array.length pts))) in
  let pts =
    Array.to_list (Array.sub pts 0 (Stdlib.min keep (Array.length pts)))
    |> List.filter (fun (_, p) -> p > 0.0)
    |> List.map (fun (l, p) -> (log10 l, log10 p))
  in
  let fit = Ss_stats.Regression.ols pts in
  ((1.0 -. fit.Ss_stats.Regression.slope) /. 2.0, fit)

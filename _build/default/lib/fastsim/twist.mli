(** Twisting profiles for importance sampling.

    The paper twists the background process by a constant mean shift
    [m*] (Appendix B). Its companion work on FGN fast simulation
    (Huang et al., ICC '95 — reference [13]) argues the optimal
    change of measure for a first-passage event is generally
    {e time-varying}: paths should drift toward the threshold and
    arrive near the horizon, which a front-loaded or ramped shift
    approximates better than a constant. This module represents
    per-slot shift profiles; {!Likelihood} and {!Is_estimator} accept
    any of them, with the constant profile reproducing the paper
    exactly. *)

type t
(** A deterministic per-slot mean shift [m*_k], k = 0, 1, ... *)

val constant : float -> t
(** The paper's Appendix-B twist. *)

val zero : t
(** No twisting: plain Monte Carlo. *)

val ramp : until:int -> peak:float -> t
(** Linear ramp from 0 at slot 0 to [peak] at slot [until-1], then
    constant at [peak]. @raise Invalid_argument if [until <= 0]. *)

val front : until:int -> level:float -> t
(** [level] for the first [until] slots, 0 afterwards — concentrates
    the drift early. @raise Invalid_argument if [until <= 0]. *)

val of_fun : (int -> float) -> t
(** Arbitrary profile. The function must be total for k >= 0. *)

val shift : t -> int -> float
(** [shift t k] is [m*_k]. @raise Invalid_argument on negative k. *)

val is_zero : t -> bool
(** True only for {!zero} (used to fast-path plain MC). *)

val constant_value : t -> float option
(** [Some m] for {!zero} / {!constant} profiles, [None] for general
    ones — lets {!Likelihood.plan} use the cached row sums instead of
    an O(n^2) pass. *)

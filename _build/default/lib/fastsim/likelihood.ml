module Table = Ss_fractal.Hosking.Table

type plan = {
  table : Table.t;
  delta : float array;  (* delta_k = m_k - sum_j phi_{k,j} m_{k-j} *)
}

let plan ~table ~profile =
  let n = Table.length table in
  let delta =
    match Twist.constant_value profile with
    | Some m0 when m0 = 0.0 -> Array.make n 0.0
    | Some m0 -> Array.init n (fun k -> m0 *. (1.0 -. Table.row_sum table k))
    | None ->
      (* General profile: delta_k = m_k - sum_j phi_{k,j} m_{k-j},
         one conditional-mean pass over the profile itself. *)
      let m = Array.init n (Twist.shift profile) in
      Array.init n (fun k -> m.(k) -. Table.cond_mean table m k)
  in
  { table; delta }

let plan_table p = p.table

type t = {
  p : plan;
  mutable log_l : float;
  mutable next_k : int;
}

let of_plan p = { p; log_l = 0.0; next_k = 0 }

let create ~table ~twist = of_plan (plan ~table ~profile:(Twist.constant twist))

let reset t =
  t.log_l <- 0.0;
  t.next_k <- 0

let step t ~k ~innovation =
  if k <> t.next_k then
    invalid_arg (Printf.sprintf "Likelihood.step: expected step %d, got %d" t.next_k k);
  let delta = t.p.delta.(k) in
  if delta <> 0.0 then begin
    let v = Table.cond_var t.p.table k in
    t.log_l <- t.log_l -. (((2.0 *. innovation *. delta) +. (delta *. delta)) /. (2.0 *. v))
  end;
  t.next_k <- k + 1

let log_ratio t = t.log_l
let ratio t = exp t.log_l
let steps t = t.next_k

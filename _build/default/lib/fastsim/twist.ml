type t =
  | Zero
  | Constant of float
  | Fn of (int -> float)

let constant m = if m = 0.0 then Zero else Constant m
let zero = Zero

let ramp ~until ~peak =
  if until <= 0 then invalid_arg "Twist.ramp: until <= 0";
  Fn
    (fun k ->
      if k >= until - 1 then peak
      else peak *. float_of_int k /. float_of_int (until - 1))

let front ~until ~level =
  if until <= 0 then invalid_arg "Twist.front: until <= 0";
  Fn (fun k -> if k < until then level else 0.0)

let of_fun f = Fn f

let shift t k =
  if k < 0 then invalid_arg "Twist.shift: negative slot";
  match t with Zero -> 0.0 | Constant m -> m | Fn f -> f k

let is_zero t = match t with Zero -> true | Constant _ | Fn _ -> false

let constant_value = function
  | Zero -> Some 0.0
  | Constant m -> Some m
  | Fn _ -> None

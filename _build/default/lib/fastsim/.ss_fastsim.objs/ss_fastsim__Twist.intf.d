lib/fastsim/twist.mli:

lib/fastsim/valley.ml: Is_estimator List Ss_queueing Ss_stats Stdlib

lib/fastsim/likelihood.mli: Ss_fractal Twist

lib/fastsim/twist.ml:

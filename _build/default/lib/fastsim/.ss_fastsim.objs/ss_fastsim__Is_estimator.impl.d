lib/fastsim/is_estimator.ml: Array Likelihood Ss_fractal Ss_queueing Ss_stats Twist

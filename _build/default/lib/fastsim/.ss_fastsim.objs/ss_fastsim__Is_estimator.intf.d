lib/fastsim/is_estimator.mli: Likelihood Ss_fractal Ss_queueing Ss_stats Twist

lib/fastsim/valley.mli: Is_estimator Ss_queueing Ss_stats

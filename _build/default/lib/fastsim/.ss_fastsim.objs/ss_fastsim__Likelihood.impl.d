lib/fastsim/likelihood.ml: Array Printf Ss_fractal Twist

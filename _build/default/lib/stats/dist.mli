(** Parametric (and empirical) probability distributions behind a
    uniform first-class interface.

    Each distribution packs its density, CDF, quantile function,
    moments and a sampler. The quantile function is what the paper's
    transform [h = F_Y^{-1} . Phi] consumes, so every constructor
    guarantees [quantile] is non-decreasing and defined on (0,1).

    Includes the combined Gamma/Pareto body-tail hybrid used by
    Garrett & Willinger (SIGCOMM '94) to model VBR frame sizes, which
    this repository implements as the parametric baseline against the
    paper's direct histogram inversion. *)

type t = {
  name : string;
  pdf : float -> float;  (** density (0 outside support) *)
  cdf : float -> float;  (** cumulative distribution *)
  quantile : float -> float;
      (** inverse CDF on (0,1); @raise Invalid_argument outside *)
  mean : float;
  variance : float;
  sample : Rng.t -> float;  (** random deviate *)
}

val uniform : lo:float -> hi:float -> t
(** @raise Invalid_argument if [hi <= lo]. *)

val normal : mean:float -> std:float -> t
(** @raise Invalid_argument if [std <= 0]. *)

val lognormal : mu:float -> sigma:float -> t
(** Log of the variate is N(mu, sigma^2).
    @raise Invalid_argument if [sigma <= 0]. *)

val exponential : rate:float -> t
(** @raise Invalid_argument if [rate <= 0]. *)

val gamma : shape:float -> scale:float -> t
(** Gamma with density [x^{shape-1} e^{-x/scale}]; sampling by
    Marsaglia–Tsang, quantile by bracketed Newton on the regularized
    incomplete gamma. @raise Invalid_argument if [shape <= 0 ||
    scale <= 0]. *)

val pareto : shape:float -> scale:float -> t
(** Pareto type I on [\[scale, inf)], [P(X > x) = (scale/x)^shape].
    [mean]/[variance] are [infinity] when the corresponding moment
    does not exist. @raise Invalid_argument if [shape <= 0 ||
    scale <= 0]. *)

val weibull : shape:float -> scale:float -> t
(** @raise Invalid_argument if [shape <= 0 || scale <= 0]. *)

val gamma_pareto : shape:float -> scale:float -> cut:float -> t
(** Garrett–Willinger body-tail hybrid: Gamma(shape, scale) body up
    to the [cut]-quantile, Pareto tail beyond it, with the Pareto
    scale chosen so the CDF is continuous at the crossover and the
    tail index chosen so the *density* is also continuous there
    (matching slopes of log-survival). [cut] must lie in (0,1).
    @raise Invalid_argument on bad parameters. *)

val of_empirical : Empirical.t -> t
(** Wrap an empirical distribution: direct inversion of the sorted
    sample with interpolated quantiles. [pdf] is a finite-difference
    estimate. *)

val of_histogram : Histogram.t -> t
(** Histogram-based inversion exactly as the paper words it: the
    quantile function interpolates linearly within the bin containing
    the requested probability mass, so the reconstructed density is
    the histogram's step function. Coarser than {!of_empirical} (a
    deliberately lossy summary) but independent of the raw sample
    size. *)

val truncate_below : t -> floor:float -> t
(** [truncate_below d ~floor] clamps samples and quantiles at
    [floor] (frame sizes cannot be negative); CDF mass below [floor]
    collapses onto it. [mean]/[variance] are recomputed numerically
    from the clamped quantile function. *)

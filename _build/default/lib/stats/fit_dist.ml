let check_positive name data =
  if Array.length data < 2 then invalid_arg ("Fit_dist." ^ name ^ ": need >= 2 points");
  Array.iter
    (fun x -> if x <= 0.0 then invalid_arg ("Fit_dist." ^ name ^ ": non-positive datum"))
    data

let gamma_moments data =
  if Array.length data < 2 then invalid_arg "Fit_dist.gamma_moments: need >= 2 points";
  let mean = Descriptive.mean data in
  let var = Descriptive.variance data in
  if mean <= 0.0 then invalid_arg "Fit_dist.gamma_moments: non-positive mean";
  if var <= 0.0 then invalid_arg "Fit_dist.gamma_moments: zero variance";
  (mean *. mean /. var, var /. mean)

let gamma_mle ?(max_iter = 50) data =
  check_positive "gamma_mle" data;
  let mean = Descriptive.mean data in
  let mean_log = Descriptive.mean (Array.map log data) in
  let s = log mean -. mean_log in
  if s <= 0.0 then invalid_arg "Fit_dist.gamma_mle: degenerate data (constant?)";
  let shape0, _ = gamma_moments data in
  let shape = ref (Stdlib.max shape0 1e-3) in
  (* Solve log k - psi(k) = s by Newton with positivity safeguard. *)
  for _ = 1 to max_iter do
    let f = log !shape -. Special.digamma !shape -. s in
    let f' = (1.0 /. !shape) -. Special.trigamma !shape in
    let next = !shape -. (f /. f') in
    shape := if next > 0.0 then next else !shape /. 2.0
  done;
  (!shape, mean /. !shape)

let pareto_tail_mle data ~cut =
  if cut <= 0.0 || cut >= 1.0 then invalid_arg "Fit_dist.pareto_tail_mle: cut outside (0,1)";
  let xc = Descriptive.quantile data cut in
  if xc <= 0.0 then invalid_arg "Fit_dist.pareto_tail_mle: non-positive cut point";
  let tail = Array.to_list data |> List.filter (fun x -> x > xc) in
  if List.length tail < 10 then invalid_arg "Fit_dist.pareto_tail_mle: fewer than 10 tail points";
  let mean_log = List.fold_left (fun a x -> a +. log (x /. xc)) 0.0 tail
                 /. float_of_int (List.length tail) in
  (1.0 /. mean_log, xc)

let gamma_pareto_auto ?(cut = 0.97) data =
  let shape, scale = gamma_mle data in
  Dist.gamma_pareto ~shape ~scale ~cut

let lognormal_mle data =
  check_positive "lognormal_mle" data;
  let logs = Array.map log data in
  let mu = Descriptive.mean logs in
  let sigma = Descriptive.std logs in
  if sigma <= 0.0 then invalid_arg "Fit_dist.lognormal_mle: zero log-variance";
  (mu, sigma)

let log_likelihood d data =
  Array.fold_left
    (fun acc x ->
      let p = d.Dist.pdf x in
      if p <= 0.0 then neg_infinity else acc +. log p)
    0.0 data

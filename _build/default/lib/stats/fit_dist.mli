(** Parameter estimation for the marginal-distribution families.

    The paper inverts the empirical distribution directly; its
    predecessor (Garrett & Willinger '94) fits a parametric
    Gamma/Pareto hybrid instead. This module provides the estimators
    needed to reproduce that parametric baseline (the [abl-marg]
    ablation) and general-purpose moment/ML fits. *)

val gamma_moments : float array -> float * float
(** Method-of-moments Gamma fit: [(shape, scale)] with
    [shape = mean^2/var], [scale = var/mean].
    @raise Invalid_argument on fewer than 2 points, non-positive data
    mean, or zero variance. *)

val gamma_mle : ?max_iter:int -> float array -> float * float
(** Maximum-likelihood Gamma fit by Newton iteration on the digamma
    equation [log shape - psi(shape) = log mean - mean(log x)],
    started from the moments fit. All data must be strictly
    positive. @raise Invalid_argument otherwise. *)

val pareto_tail_mle : float array -> cut:float -> float * float
(** Hill-style tail fit: using the observations above the empirical
    [cut]-quantile [x_c], the tail index is
    [1 / mean(log(x_i / x_c))]; returns [(alpha, x_c)].
    @raise Invalid_argument if [cut] outside (0,1) or fewer than 10
    tail points. *)

val gamma_pareto_auto : ?cut:float -> float array -> Dist.t
(** The Garrett–Willinger marginal: Gamma MLE body spliced with a
    density-continuous Pareto tail at the [cut]-quantile (default
    0.97), via {!Dist.gamma_pareto}. *)

val lognormal_mle : float array -> float * float
(** [(mu, sigma)] from the sample mean/std of [log x]; data must be
    strictly positive. @raise Invalid_argument otherwise. *)

val log_likelihood : Dist.t -> float array -> float
(** Sum of log densities (for model comparison); returns
    [neg_infinity] if any point has zero density. *)

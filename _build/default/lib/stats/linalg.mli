(** Small dense linear algebra: Cholesky factorization and
    least-squares solving.

    Needed for (a) the Hannan–Rissanen ARMA regression of
    {!Ss_fractal.Farima_fit}, and (b) the O(n^3) direct Gaussian
    sampler that serves as the exact small-n oracle against which the
    Hosking and Davies–Harte generators are cross-validated in the
    test suite. Matrices are row-major [float array array]; all
    functions copy their inputs. *)

val cholesky : float array array -> float array array
(** Lower-triangular [l] with [l l^T = a] for a symmetric positive
    definite [a]. @raise Invalid_argument if [a] is not square, not
    symmetric (to 1e-9 relative), or not positive definite. *)

val solve_lower : float array array -> float array -> float array
(** Forward substitution [l x = b] for lower-triangular [l].
    @raise Invalid_argument on dimension mismatch or a zero
    diagonal. *)

val solve_upper_transposed : float array array -> float array -> float array
(** Back substitution [l^T x = b] given lower-triangular [l]. *)

val solve_spd : float array array -> float array -> float array
(** [solve_spd a b] solves [a x = b] for symmetric positive definite
    [a] via Cholesky. *)

val least_squares : float array array -> float array -> float array
(** [least_squares x y] solves [min ||x c - y||^2] through the normal
    equations [(x^T x) c = x^T y]; [x] is n-by-p with n >= p.
    @raise Invalid_argument on dimension mismatch or a singular
    design. *)

val mat_vec : float array array -> float array -> float array
(** Matrix-vector product. *)

(** Empirical distributions: ECDF, quantile function, Q-Q data.

    The paper's transform [h(x) = F_Y^{-1}(Phi(x))] inverts the
    empirical distribution of the video trace directly; this module
    provides that inverse with linear interpolation between order
    statistics so [h] is continuous and non-decreasing. *)

type t
(** An empirical distribution built from a data sample. The sample is
    copied and sorted at construction. *)

val of_data : float array -> t
(** @raise Invalid_argument on empty input. *)

val size : t -> int
(** Number of sample points. *)

val cdf : t -> float -> float
(** Right-continuous ECDF: fraction of sample points [<= x]. *)

val quantile : t -> float -> float
(** [quantile t p] for [p] in [\[0,1\]]: linear interpolation between
    order statistics (type-7, matching {!Descriptive.quantile}).
    [quantile t 0.] is the sample minimum and [quantile t 1.] the
    maximum; intermediate values are continuous and non-decreasing in
    [p]. @raise Invalid_argument if [p] outside [0,1]. *)

val mean : t -> float

val variance : t -> float
(** Population variance of the sample. *)

val support : t -> float * float
(** Sample (min, max). *)

val qq : t -> t -> n:int -> (float * float) list
(** [qq a b ~n] returns [n] points [(quantile a p, quantile b p)] for
    [p] on a uniform grid in (0,1) — the Q-Q plot of [b] against [a]
    (paper Fig 13). @raise Invalid_argument if [n <= 0]. *)

val ks_distance : t -> t -> float
(** Two-sample Kolmogorov–Smirnov statistic
    [sup_x |F_a(x) - F_b(x)|], used in tests to check marginal
    agreement. *)

let dims a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Linalg: empty matrix";
  let m = Array.length a.(0) in
  Array.iter (fun row -> if Array.length row <> m then invalid_arg "Linalg: ragged matrix") a;
  (n, m)

let cholesky a =
  let n, m = dims a in
  if n <> m then invalid_arg "Linalg.cholesky: not square";
  (* Symmetry check with relative tolerance. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let scale = Stdlib.max (abs_float a.(i).(j)) (abs_float a.(j).(i)) in
      if abs_float (a.(i).(j) -. a.(j).(i)) > 1e-9 *. Stdlib.max scale 1.0 then
        invalid_arg "Linalg.cholesky: not symmetric"
    done
  done;
  let l = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref a.(i).(j) in
      for k = 0 to j - 1 do
        s := !s -. (l.(i).(k) *. l.(j).(k))
      done;
      if i = j then begin
        if !s <= 0.0 then invalid_arg "Linalg.cholesky: not positive definite";
        l.(i).(i) <- sqrt !s
      end
      else l.(i).(j) <- !s /. l.(j).(j)
    done
  done;
  l

let solve_lower l b =
  let n, m = dims l in
  if n <> m || Array.length b <> n then invalid_arg "Linalg.solve_lower: dimension mismatch";
  let x = Array.make n 0.0 in
  for i = 0 to n - 1 do
    if l.(i).(i) = 0.0 then invalid_arg "Linalg.solve_lower: zero diagonal";
    let s = ref b.(i) in
    for k = 0 to i - 1 do
      s := !s -. (l.(i).(k) *. x.(k))
    done;
    x.(i) <- !s /. l.(i).(i)
  done;
  x

let solve_upper_transposed l b =
  let n, m = dims l in
  if n <> m || Array.length b <> n then
    invalid_arg "Linalg.solve_upper_transposed: dimension mismatch";
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    if l.(i).(i) = 0.0 then invalid_arg "Linalg.solve_upper_transposed: zero diagonal";
    let s = ref b.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (l.(k).(i) *. x.(k))
    done;
    x.(i) <- !s /. l.(i).(i)
  done;
  x

let solve_spd a b =
  let l = cholesky a in
  solve_upper_transposed l (solve_lower l b)

let least_squares x y =
  let n, p = dims x in
  if Array.length y <> n then invalid_arg "Linalg.least_squares: dimension mismatch";
  if n < p then invalid_arg "Linalg.least_squares: underdetermined";
  let xtx = Array.make_matrix p p 0.0 in
  let xty = Array.make p 0.0 in
  for i = 0 to n - 1 do
    let row = x.(i) in
    for a = 0 to p - 1 do
      xty.(a) <- xty.(a) +. (row.(a) *. y.(i));
      for b = a to p - 1 do
        xtx.(a).(b) <- xtx.(a).(b) +. (row.(a) *. row.(b))
      done
    done
  done;
  for a = 0 to p - 1 do
    for b = 0 to a - 1 do
      xtx.(a).(b) <- xtx.(b).(a)
    done
  done;
  (try solve_spd xtx xty
   with Invalid_argument _ -> invalid_arg "Linalg.least_squares: singular design")

let mat_vec a v =
  let n, m = dims a in
  if Array.length v <> m then invalid_arg "Linalg.mat_vec: dimension mismatch";
  Array.init n (fun i ->
      let s = ref 0.0 in
      for j = 0 to m - 1 do
        s := !s +. (a.(i).(j) *. v.(j))
      done;
      !s)

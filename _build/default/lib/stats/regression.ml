type fit = { slope : float; intercept : float; r2 : float; n : int }

let wols pts =
  let n = List.length pts in
  if n < 2 then invalid_arg "Regression.wols: need >= 2 points";
  List.iter (fun (_, _, w) -> if w <= 0.0 then invalid_arg "Regression.wols: w <= 0") pts;
  let sw = List.fold_left (fun a (_, _, w) -> a +. w) 0.0 pts in
  let sx = List.fold_left (fun a (x, _, w) -> a +. (w *. x)) 0.0 pts in
  let sy = List.fold_left (fun a (_, y, w) -> a +. (w *. y)) 0.0 pts in
  let mx = sx /. sw and my = sy /. sw in
  let sxx =
    List.fold_left (fun a (x, _, w) -> a +. (w *. (x -. mx) *. (x -. mx))) 0.0 pts
  in
  let sxy =
    List.fold_left (fun a (x, y, w) -> a +. (w *. (x -. mx) *. (y -. my))) 0.0 pts
  in
  if sxx = 0.0 then invalid_arg "Regression.wols: degenerate x values";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let ss_tot =
    List.fold_left (fun a (_, y, w) -> a +. (w *. (y -. my) *. (y -. my))) 0.0 pts
  in
  let ss_res =
    List.fold_left
      (fun a (x, y, w) ->
        let e = y -. intercept -. (slope *. x) in
        a +. (w *. e *. e))
      0.0 pts
  in
  let r2 = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { slope; intercept; r2; n }

let ols pts = wols (List.map (fun (x, y) -> (x, y, 1.0)) pts)

let ols_through_origin pts =
  let n = List.length pts in
  if n < 1 then invalid_arg "Regression.ols_through_origin: empty input";
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
  if sxx = 0.0 then invalid_arg "Regression.ols_through_origin: degenerate x values";
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
  let slope = sxy /. sxx in
  let ss_tot = List.fold_left (fun a (_, y) -> a +. (y *. y)) 0.0 pts in
  let ss_res =
    List.fold_left
      (fun a (x, y) ->
        let e = y -. (slope *. x) in
        a +. (e *. e))
      0.0 pts
  in
  let r2 = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { slope; intercept = 0.0; r2; n }

let predict f x = f.intercept +. (f.slope *. x)

(** Fixed-width histograms over float data.

    Used both for reporting marginal distributions (paper Figs 1, 12)
    and as the basis of histogram-inversion transforms. *)

type t = {
  lo : float;  (** left edge of the first bin *)
  hi : float;  (** right edge of the last bin *)
  width : float;  (** common bin width *)
  counts : int array;  (** per-bin occupancy *)
  total : int;  (** number of data points binned *)
}

val make : ?range:float * float -> bins:int -> float array -> t
(** [make ~bins data] builds a histogram with [bins] equal-width bins
    spanning [range] (default: data min/max, widened slightly so the
    maximum lands in the last bin). Values outside [range] are
    clamped to the boundary bins, so [total] always equals the data
    length. @raise Invalid_argument if [bins <= 0], data is empty, or
    the range is inverted. *)

val bin_of : t -> float -> int
(** Index of the bin containing a value (clamped at the ends). *)

val bin_center : t -> int -> float
(** Midpoint of bin [i]. @raise Invalid_argument if out of range. *)

val frequency : t -> int -> float
(** [frequency h i] is the fraction of points in bin [i]. *)

val pdf_at : t -> float -> float
(** Density estimate at a point: bin frequency divided by bin
    width. *)

val to_points : t -> (float * float) list
(** [(bin center, frequency)] pairs in bin order, for plotting. *)

val cdf : t -> float array
(** Cumulative frequencies by right bin edge: [cdf.(i)] is the
    fraction of data in bins [0..i]. Monotone, ending at 1. *)

val mean : t -> float
(** Mean of the binned distribution (bin centers weighted by
    frequency). *)

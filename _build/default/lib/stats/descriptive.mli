(** Descriptive statistics over float arrays.

    All functions are pure and never mutate their input. Functions
    that need a sorted copy make one internally. *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on empty input. *)

val variance : float array -> float
(** Population (biased, 1/n) variance, the convention used for
    autocovariance estimation. @raise Invalid_argument on empty
    input. *)

val sample_variance : float array -> float
(** Unbiased (1/(n-1)) variance. @raise Invalid_argument if fewer
    than two points. *)

val std : float array -> float
(** Square root of {!variance}. *)

val skewness : float array -> float
(** Sample skewness (third standardized moment, biased form).
    Returns 0 for constant data. *)

val kurtosis : float array -> float
(** Excess kurtosis (fourth standardized moment minus 3, biased
    form). Returns 0 for constant data. *)

val min : float array -> float
(** @raise Invalid_argument on empty input. *)

val max : float array -> float
(** @raise Invalid_argument on empty input. *)

val median : float array -> float
(** Median by sorting a copy. @raise Invalid_argument on empty
    input. *)

val quantile : float array -> float -> float
(** [quantile data p] is the [p]-quantile (linear interpolation
    between order statistics, type-7). @raise Invalid_argument if
    [p] outside [0,1] or data empty. *)

val autocovariance : float array -> int -> float
(** [autocovariance x k] is the biased lag-[k] autocovariance
    [1/n * sum (x_i - mean)(x_{i+k} - mean)].
    @raise Invalid_argument if [k < 0 || k >= length x]. *)

val autocorrelation : float array -> int -> float
(** Lag-[k] autocorrelation (autocovariance normalized by lag-0).
    Returns 0 when the series is constant. *)

val acf : float array -> max_lag:int -> float array
(** [acf x ~max_lag] is [[|r(0); r(1); ...; r(max_lag)|]] computed
    with a single pass per lag against the global mean.
    @raise Invalid_argument if [max_lag >= length x]. *)

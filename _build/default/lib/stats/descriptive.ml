let check_nonempty name x =
  if Array.length x = 0 then invalid_arg ("Descriptive." ^ name ^ ": empty input")

let mean x =
  check_nonempty "mean" x;
  let s = ref 0.0 in
  Array.iter (fun v -> s := !s +. v) x;
  !s /. float_of_int (Array.length x)

let central_moment x ~order ~m =
  let s = ref 0.0 in
  Array.iter
    (fun v ->
      let d = v -. m in
      let rec pow acc k = if k = 0 then acc else pow (acc *. d) (k - 1) in
      s := !s +. pow 1.0 order)
    x;
  !s /. float_of_int (Array.length x)

let variance x =
  check_nonempty "variance" x;
  central_moment x ~order:2 ~m:(mean x)

let sample_variance x =
  if Array.length x < 2 then invalid_arg "Descriptive.sample_variance: need >= 2 points";
  let n = float_of_int (Array.length x) in
  variance x *. n /. (n -. 1.0)

let std x = sqrt (variance x)

let skewness x =
  check_nonempty "skewness" x;
  let m = mean x in
  let v = central_moment x ~order:2 ~m in
  if v = 0.0 then 0.0 else central_moment x ~order:3 ~m /. (v ** 1.5)

let kurtosis x =
  check_nonempty "kurtosis" x;
  let m = mean x in
  let v = central_moment x ~order:2 ~m in
  if v = 0.0 then 0.0 else (central_moment x ~order:4 ~m /. (v *. v)) -. 3.0

let min x =
  check_nonempty "min" x;
  Array.fold_left Stdlib.min x.(0) x

let max x =
  check_nonempty "max" x;
  Array.fold_left Stdlib.max x.(0) x

let sorted_copy x =
  let y = Array.copy x in
  Array.sort compare y;
  y

let quantile x p =
  check_nonempty "quantile" x;
  if p < 0.0 || p > 1.0 then invalid_arg "Descriptive.quantile: p outside [0,1]";
  let y = sorted_copy x in
  let n = Array.length y in
  if n = 1 then y.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let i = int_of_float (floor h) in
    let i = if i >= n - 1 then n - 2 else i in
    let frac = h -. float_of_int i in
    y.(i) +. (frac *. (y.(i + 1) -. y.(i)))
  end

let median x = quantile x 0.5

let autocovariance x k =
  let n = Array.length x in
  if k < 0 || k >= n then invalid_arg "Descriptive.autocovariance: bad lag";
  let m = mean x in
  let s = ref 0.0 in
  for i = 0 to n - 1 - k do
    s := !s +. ((Array.unsafe_get x i -. m) *. (Array.unsafe_get x (i + k) -. m))
  done;
  !s /. float_of_int n

let autocorrelation x k =
  let c0 = autocovariance x 0 in
  if c0 = 0.0 then 0.0 else autocovariance x k /. c0

let acf x ~max_lag =
  let n = Array.length x in
  if max_lag < 0 || max_lag >= n then invalid_arg "Descriptive.acf: bad max_lag";
  let m = mean x in
  let centered = Array.map (fun v -> v -. m) x in
  let cov k =
    let s = ref 0.0 in
    for i = 0 to n - 1 - k do
      s := !s +. (Array.unsafe_get centered i *. Array.unsafe_get centered (i + k))
    done;
    !s /. float_of_int n
  in
  let c0 = cov 0 in
  if c0 = 0.0 then Array.make (max_lag + 1) 0.0
  else Array.init (max_lag + 1) (fun k -> cov k /. c0)

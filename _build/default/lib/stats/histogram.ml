type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  total : int;
}

let make ?range ~bins data =
  if bins <= 0 then invalid_arg "Histogram.make: bins <= 0";
  if Array.length data = 0 then invalid_arg "Histogram.make: empty data";
  let lo, hi =
    match range with
    | Some (lo, hi) ->
      if hi <= lo then invalid_arg "Histogram.make: inverted range";
      (lo, hi)
    | None ->
      let lo = Descriptive.min data and hi = Descriptive.max data in
      if hi > lo then (lo, hi +. ((hi -. lo) *. 1e-9))
      else (lo -. 0.5, lo +. 0.5)
  in
  let width = (hi -. lo) /. float_of_int bins in
  let counts = Array.make bins 0 in
  let clamp i = if i < 0 then 0 else if i >= bins then bins - 1 else i in
  Array.iter
    (fun v ->
      let i = clamp (int_of_float (floor ((v -. lo) /. width))) in
      counts.(i) <- counts.(i) + 1)
    data;
  { lo; hi; width; counts; total = Array.length data }

let bins t = Array.length t.counts

let bin_of t v =
  let i = int_of_float (floor ((v -. t.lo) /. t.width)) in
  if i < 0 then 0 else if i >= bins t then bins t - 1 else i

let bin_center t i =
  if i < 0 || i >= bins t then invalid_arg "Histogram.bin_center: out of range";
  t.lo +. ((float_of_int i +. 0.5) *. t.width)

let frequency t i =
  if i < 0 || i >= bins t then invalid_arg "Histogram.frequency: out of range";
  float_of_int t.counts.(i) /. float_of_int t.total

let pdf_at t v = frequency t (bin_of t v) /. t.width

let to_points t =
  List.init (bins t) (fun i -> (bin_center t i, frequency t i))

let cdf t =
  let n = bins t in
  let acc = ref 0.0 in
  Array.init n (fun i ->
      acc := !acc +. frequency t i;
      (* Clamp tiny floating accumulation overshoot. *)
      if i = n - 1 then 1.0 else Stdlib.min !acc 1.0)

let mean t =
  let s = ref 0.0 in
  for i = 0 to bins t - 1 do
    s := !s +. (bin_center t i *. frequency t i)
  done;
  !s

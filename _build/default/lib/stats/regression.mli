(** Least-squares line fitting.

    Used throughout the paper's estimation steps: variance–time and
    R/S slopes (Hurst estimation, Figs 3–4) and the log-space fits of
    the SRD/LRD autocorrelation components (Fig 6). *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** coefficient of determination (1 for a perfect fit) *)
  n : int;  (** number of points used *)
}

val ols : (float * float) list -> fit
(** Ordinary least squares of [y] on [x].
    @raise Invalid_argument with fewer than two distinct x values. *)

val wols : (float * float * float) list -> fit
(** Weighted least squares over [(x, y, w)] triples with [w > 0].
    @raise Invalid_argument on bad weights or fewer than two distinct
    x values. *)

val ols_through_origin : (float * float) list -> fit
(** Least squares of [y = slope * x] (intercept forced to 0); [r2]
    is computed against the uncentered sum of squares. *)

val predict : fit -> float -> float
(** [predict f x = f.intercept +. f.slope *. x]. *)

(** Time-series helpers: aggregation and correlation estimation.

    The variance–time Hurst estimator works on m-aggregated series
    X^{(m)}_k = (X_{km-m+1} + ... + X_{km})/m; this module provides
    that aggregation plus convenience wrappers around
    {!Descriptive.acf}. *)

val aggregate : float array -> m:int -> float array
(** [aggregate x ~m] averages consecutive blocks of [m] samples,
    discarding the final partial block. @raise Invalid_argument if
    [m <= 0]; returns [[||]] if fewer than [m] samples. *)

val acf : float array -> max_lag:int -> float array
(** Sample autocorrelation function, lags 0..max_lag (see
    {!Descriptive.acf}). *)

val acf_points : float array -> max_lag:int -> (int * float) list
(** [(lag, r(lag))] pairs for lags 1..max_lag, convenient for fitting
    and plotting. *)

val subsample : float array -> every:int -> float array
(** [subsample x ~every] keeps indices 0, every, 2*every, ... —
    used to isolate I frames from a GOP-periodic stream.
    @raise Invalid_argument if [every <= 0]. *)

val differenced : float array -> float array
(** First differences [x_{i+1} - x_i]; length shrinks by one.
    @raise Invalid_argument if input has fewer than 2 points. *)

val standardize : float array -> float array
(** Subtract the mean and divide by the (population) standard
    deviation. @raise Invalid_argument on empty or constant input. *)

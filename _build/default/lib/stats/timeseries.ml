let aggregate x ~m =
  if m <= 0 then invalid_arg "Timeseries.aggregate: m <= 0";
  let n = Array.length x / m in
  Array.init n (fun k ->
      let s = ref 0.0 in
      for i = k * m to ((k + 1) * m) - 1 do
        s := !s +. Array.unsafe_get x i
      done;
      !s /. float_of_int m)

let acf = Descriptive.acf

let acf_points x ~max_lag =
  let r = acf x ~max_lag in
  List.init max_lag (fun i -> (i + 1, r.(i + 1)))

let subsample x ~every =
  if every <= 0 then invalid_arg "Timeseries.subsample: every <= 0";
  let n = ((Array.length x - 1) / every) + 1 in
  if Array.length x = 0 then [||] else Array.init n (fun i -> x.(i * every))

let differenced x =
  if Array.length x < 2 then invalid_arg "Timeseries.differenced: need >= 2 points";
  Array.init (Array.length x - 1) (fun i -> x.(i + 1) -. x.(i))

let standardize x =
  let m = Descriptive.mean x in
  let s = Descriptive.std x in
  if s = 0.0 then invalid_arg "Timeseries.standardize: constant input";
  Array.map (fun v -> (v -. m) /. s) x

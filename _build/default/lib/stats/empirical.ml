type t = { sorted : float array; mean : float; variance : float }

let of_data data =
  if Array.length data = 0 then invalid_arg "Empirical.of_data: empty data";
  let sorted = Array.copy data in
  Array.sort compare sorted;
  { sorted; mean = Descriptive.mean data; variance = Descriptive.variance data }

let size t = Array.length t.sorted
let mean t = t.mean
let variance t = t.variance
let support t = (t.sorted.(0), t.sorted.(size t - 1))

(* Number of elements <= x, by binary search for the rightmost index
   with sorted.(i) <= x. *)
let count_le t x =
  let a = t.sorted in
  let n = Array.length a in
  if n = 0 || a.(0) > x then 0
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    (* invariant: a.(!lo) <= x; a.(!hi+1) > x or !hi = n-1 *)
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if a.(mid) <= x then lo := mid else hi := mid - 1
    done;
    !lo + 1
  end

let cdf t x = float_of_int (count_le t x) /. float_of_int (size t)

let quantile t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Empirical.quantile: p outside [0,1]";
  let a = t.sorted in
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let i = int_of_float (floor h) in
    let i = if i >= n - 1 then n - 2 else i in
    let frac = h -. float_of_int i in
    a.(i) +. (frac *. (a.(i + 1) -. a.(i)))
  end

let qq a b ~n =
  if n <= 0 then invalid_arg "Empirical.qq: n <= 0";
  List.init n (fun i ->
      let p = (float_of_int i +. 0.5) /. float_of_int n in
      (quantile a p, quantile b p))

let ks_distance a b =
  (* Evaluate |F_a - F_b| at every sample point of both samples; the
     supremum of the difference of two step functions is attained
     there. *)
  let best = ref 0.0 in
  let eval x =
    let d = abs_float (cdf a x -. cdf b x) in
    if d > !best then best := d
  in
  Array.iter eval a.sorted;
  Array.iter eval b.sorted;
  !best

lib/stats/rng.mli:

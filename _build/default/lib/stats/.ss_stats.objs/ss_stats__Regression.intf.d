lib/stats/regression.mli:

lib/stats/fit_dist.ml: Array Descriptive Dist List Special Stdlib

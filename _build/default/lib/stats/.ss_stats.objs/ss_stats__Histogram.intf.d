lib/stats/histogram.mli:

lib/stats/linalg.mli:

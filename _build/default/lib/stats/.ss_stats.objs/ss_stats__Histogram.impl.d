lib/stats/histogram.ml: Array Descriptive List Stdlib

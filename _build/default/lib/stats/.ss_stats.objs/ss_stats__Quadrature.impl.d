lib/stats/quadrature.ml: Array Hashtbl

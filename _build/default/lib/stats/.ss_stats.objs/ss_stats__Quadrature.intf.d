lib/stats/quadrature.mli:

lib/stats/descriptive.mli:

lib/stats/dist.ml: Array Empirical Float Histogram Printf Rng Special Stdlib

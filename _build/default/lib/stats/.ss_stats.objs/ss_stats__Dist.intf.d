lib/stats/dist.mli: Empirical Histogram Rng

lib/stats/linalg.ml: Array Stdlib

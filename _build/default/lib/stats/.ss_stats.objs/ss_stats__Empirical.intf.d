lib/stats/empirical.mli:

lib/stats/special.mli:

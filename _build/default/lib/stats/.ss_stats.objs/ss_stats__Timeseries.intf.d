lib/stats/timeseries.mli:

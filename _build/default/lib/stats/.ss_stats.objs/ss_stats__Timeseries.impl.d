lib/stats/timeseries.ml: Array Descriptive List

lib/stats/empirical.ml: Array Descriptive List

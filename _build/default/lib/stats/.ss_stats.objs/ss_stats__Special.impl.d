lib/stats/special.ml: Array

(* Gauss–Hermite nodes by Newton iteration on the orthonormal
   physicists' Hermite recurrence (the classical `gauher` scheme),
   then rescaled to probabilists' convention so that weights sum to 1
   and [sum w f(x)] approximates a standard-normal expectation. *)

let pim4 = 0.7511255444649425 (* pi^{-1/4} *)
let sqrt_pi = 1.7724538509055160273

(* Evaluate orthonormal Hermite h~_n(x) and its derivative. *)
let hermite_eval n x =
  let p1 = ref pim4 in
  let p2 = ref 0.0 in
  for j = 1 to n do
    let p3 = !p2 in
    p2 := !p1;
    let fj = float_of_int j in
    p1 := (x *. sqrt (2.0 /. fj) *. !p2) -. (sqrt ((fj -. 1.0) /. fj) *. p3)
  done;
  let deriv = sqrt (2.0 *. float_of_int n) *. !p2 in
  (!p1, deriv)

let physicists_nodes n =
  let m = (n + 1) / 2 in
  let x = Array.make n 0.0 in
  let w = Array.make n 0.0 in
  let z = ref 0.0 in
  for i = 0 to m - 1 do
    (* Initial guesses per Numerical Recipes. *)
    let fn = float_of_int n in
    (z :=
       match i with
       | 0 -> sqrt ((2.0 *. fn) +. 1.0) -. (1.85575 *. (((2.0 *. fn) +. 1.0) ** (-0.16667)))
       | 1 -> !z -. (1.14 *. (fn ** 0.426) /. !z)
       | 2 -> (1.86 *. !z) -. (0.86 *. x.(0))
       | 3 -> (1.91 *. !z) -. (0.91 *. x.(1))
       | _ -> (2.0 *. !z) -. x.(i - 2));
    (* Newton iterations. *)
    let converged = ref false in
    let its = ref 0 in
    let pp = ref 1.0 in
    while (not !converged) && !its < 200 do
      incr its;
      let p, d = hermite_eval n !z in
      pp := d;
      let z1 = !z in
      z := z1 -. (p /. d);
      if abs_float (!z -. z1) <= 1e-15 *. (1.0 +. abs_float !z) then converged := true
    done;
    x.(i) <- !z;
    x.(n - 1 - i) <- -. !z;
    w.(i) <- 2.0 /. (!pp *. !pp);
    w.(n - 1 - i) <- w.(i)
  done;
  (x, w)

let cache : (int, (float * float) array) Hashtbl.t = Hashtbl.create 8

let hermite_nodes ~n =
  if n <= 0 || n > 256 then invalid_arg "Quadrature.hermite_nodes: n outside [1,256]";
  match Hashtbl.find_opt cache n with
  | Some nodes -> nodes
  | None ->
    let x, w = physicists_nodes n in
    let nodes =
      Array.init n (fun i -> (sqrt 2.0 *. x.(i), w.(i) /. sqrt_pi))
    in
    Hashtbl.add cache n nodes;
    nodes

let gaussian_expectation ?(n = 96) f =
  let nodes = hermite_nodes ~n in
  Array.fold_left (fun acc (x, w) -> acc +. (w *. f x)) 0.0 nodes

let simpson ?(eps = 1e-10) ?(max_depth = 40) f ~lo ~hi =
  if hi < lo then invalid_arg "Quadrature.simpson: hi < lo";
  let simpson_rule a b fa fm fb = (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb) in
  let rec go a b fa fm fb whole eps depth =
    let m = (a +. b) /. 2.0 in
    let lm = (a +. m) /. 2.0 and rm = (m +. b) /. 2.0 in
    let flm = f lm and frm = f rm in
    let left = simpson_rule a m fa flm fm in
    let right = simpson_rule m b fm frm fb in
    let delta = left +. right -. whole in
    if depth <= 0 || abs_float delta <= 15.0 *. eps then
      left +. right +. (delta /. 15.0)
    else
      go a m fa flm fm left (eps /. 2.0) (depth - 1)
      +. go m b fm frm fb right (eps /. 2.0) (depth - 1)
  in
  if hi = lo then 0.0
  else begin
    let m = (lo +. hi) /. 2.0 in
    let fa = f lo and fm = f m and fb = f hi in
    go lo hi fa fm fb (simpson_rule lo hi fa fm fb) eps max_depth
  end

type t = {
  name : string;
  pdf : float -> float;
  cdf : float -> float;
  quantile : float -> float;
  mean : float;
  variance : float;
  sample : Rng.t -> float;
}

let check_p name p =
  if p <= 0.0 || p >= 1.0 then invalid_arg ("Dist." ^ name ^ ".quantile: p outside (0,1)")

let uniform ~lo ~hi =
  if hi <= lo then invalid_arg "Dist.uniform: hi <= lo";
  let w = hi -. lo in
  {
    name = Printf.sprintf "uniform(%g,%g)" lo hi;
    pdf = (fun x -> if x < lo || x > hi then 0.0 else 1.0 /. w);
    cdf =
      (fun x -> if x < lo then 0.0 else if x > hi then 1.0 else (x -. lo) /. w);
    quantile =
      (fun p ->
        check_p "uniform" p;
        lo +. (p *. w));
    mean = (lo +. hi) /. 2.0;
    variance = w *. w /. 12.0;
    sample = (fun rng -> Rng.float_range rng lo hi);
  }

let normal ~mean ~std =
  if std <= 0.0 then invalid_arg "Dist.normal: std <= 0";
  {
    name = Printf.sprintf "normal(%g,%g)" mean std;
    pdf = (fun x -> Special.normal_pdf ((x -. mean) /. std) /. std);
    cdf = (fun x -> Special.normal_cdf ((x -. mean) /. std));
    quantile =
      (fun p ->
        check_p "normal" p;
        mean +. (std *. Special.normal_quantile p));
    mean;
    variance = std *. std;
    sample = (fun rng -> Rng.gaussian_mv rng ~mean ~std);
  }

let lognormal ~mu ~sigma =
  if sigma <= 0.0 then invalid_arg "Dist.lognormal: sigma <= 0";
  let m = exp (mu +. (sigma *. sigma /. 2.0)) in
  let v = (exp (sigma *. sigma) -. 1.0) *. m *. m in
  {
    name = Printf.sprintf "lognormal(%g,%g)" mu sigma;
    pdf =
      (fun x ->
        if x <= 0.0 then 0.0
        else Special.normal_pdf ((log x -. mu) /. sigma) /. (sigma *. x));
    cdf =
      (fun x ->
        if x <= 0.0 then 0.0 else Special.normal_cdf ((log x -. mu) /. sigma));
    quantile =
      (fun p ->
        check_p "lognormal" p;
        exp (mu +. (sigma *. Special.normal_quantile p)));
    mean = m;
    variance = v;
    sample = (fun rng -> exp (mu +. (sigma *. Rng.gaussian rng)));
  }

let exponential ~rate =
  if rate <= 0.0 then invalid_arg "Dist.exponential: rate <= 0";
  {
    name = Printf.sprintf "exponential(%g)" rate;
    pdf = (fun x -> if x < 0.0 then 0.0 else rate *. exp (-.rate *. x));
    cdf = (fun x -> if x < 0.0 then 0.0 else 1.0 -. exp (-.rate *. x));
    quantile =
      (fun p ->
        check_p "exponential" p;
        -.log1p (-.p) /. rate);
    mean = 1.0 /. rate;
    variance = 1.0 /. (rate *. rate);
    sample = (fun rng -> Rng.exponential rng ~rate);
  }

(* Marsaglia–Tsang gamma sampler, shape >= 1; shape < 1 boosted via
   the U^{1/shape} trick. *)
let rec gamma_sample rng ~shape ~scale =
  if shape < 1.0 then begin
    let u = Rng.float rng in
    let u = if u = 0.0 then 0.5 else u in
    gamma_sample rng ~shape:(shape +. 1.0) ~scale *. (u ** (1.0 /. shape))
  end
  else begin
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec draw () =
      let x = Rng.gaussian rng in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then draw ()
      else begin
        let v3 = v *. v *. v in
        let u = Rng.float rng in
        let u = if u = 0.0 then 1e-300 else u in
        if log u < (0.5 *. x *. x) +. d -. (d *. v3) +. (d *. log v3) then d *. v3
        else draw ()
      end
    in
    scale *. draw ()
  end

(* Gamma quantile by safeguarded Newton on the regularized incomplete
   gamma, starting from the Wilson–Hilferty approximation. *)
let gamma_quantile ~shape ~scale p =
  let z = Special.normal_quantile p in
  let wh =
    let t = 1.0 -. (1.0 /. (9.0 *. shape)) +. (z /. (3.0 *. sqrt shape)) in
    shape *. t *. t *. t
  in
  let x0 = if wh > 1e-300 then wh else 1e-6 in
  (* Bracket the root in normalized units (scale = 1). *)
  let f x = Special.gamma_p shape x -. p in
  let lo = ref 0.0 and hi = ref (Stdlib.max (2.0 *. x0) 1.0) in
  while f !hi < 0.0 do
    hi := !hi *. 2.0
  done;
  let x = ref (Stdlib.min (Stdlib.max x0 1e-12) !hi) in
  let log_gamma_shape = Special.log_gamma shape in
  let pdf1 x =
    (* density of Gamma(shape, 1) *)
    if x <= 0.0 then 0.0
    else exp (((shape -. 1.0) *. log x) -. x -. log_gamma_shape)
  in
  for _ = 1 to 60 do
    let fx = f !x in
    if fx > 0.0 then hi := !x else lo := !x;
    let d = pdf1 !x in
    let nx = if d > 0.0 then !x -. (fx /. d) else !x in
    x := if nx <= !lo || nx >= !hi then (!lo +. !hi) /. 2.0 else nx
  done;
  scale *. !x

let gamma ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Dist.gamma: bad parameters";
  let log_gamma_shape = Special.log_gamma shape in
  let pdf x =
    if x <= 0.0 then 0.0
    else
      exp
        (((shape -. 1.0) *. log (x /. scale)) -. (x /. scale) -. log_gamma_shape)
      /. scale
  in
  {
    name = Printf.sprintf "gamma(%g,%g)" shape scale;
    pdf;
    cdf = (fun x -> if x <= 0.0 then 0.0 else Special.gamma_p shape (x /. scale));
    quantile =
      (fun p ->
        check_p "gamma" p;
        gamma_quantile ~shape ~scale p);
    mean = shape *. scale;
    variance = shape *. scale *. scale;
    sample = (fun rng -> gamma_sample rng ~shape ~scale);
  }

let pareto ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Dist.pareto: bad parameters";
  let mean = if shape > 1.0 then shape *. scale /. (shape -. 1.0) else infinity in
  let variance =
    if shape > 2.0 then
      scale *. scale *. shape /. ((shape -. 1.0) *. (shape -. 1.0) *. (shape -. 2.0))
    else infinity
  in
  {
    name = Printf.sprintf "pareto(%g,%g)" shape scale;
    pdf =
      (fun x ->
        if x < scale then 0.0 else shape *. (scale ** shape) /. (x ** (shape +. 1.0)));
    cdf = (fun x -> if x < scale then 0.0 else 1.0 -. ((scale /. x) ** shape));
    quantile =
      (fun p ->
        check_p "pareto" p;
        scale /. ((1.0 -. p) ** (1.0 /. shape)));
    mean;
    variance;
    sample = (fun rng -> Rng.pareto rng ~shape ~scale);
  }

let weibull ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Dist.weibull: bad parameters";
  let gamma1p x = exp (Special.log_gamma (1.0 +. x)) in
  let m = scale *. gamma1p (1.0 /. shape) in
  let v = (scale *. scale *. gamma1p (2.0 /. shape)) -. (m *. m) in
  {
    name = Printf.sprintf "weibull(%g,%g)" shape scale;
    pdf =
      (fun x ->
        if x < 0.0 then 0.0
        else begin
          let z = x /. scale in
          shape /. scale *. (z ** (shape -. 1.0)) *. exp (-.(z ** shape))
        end);
    cdf = (fun x -> if x < 0.0 then 0.0 else 1.0 -. exp (-.((x /. scale) ** shape)));
    quantile =
      (fun p ->
        check_p "weibull" p;
        scale *. ((-.log1p (-.p)) ** (1.0 /. shape)));
    mean = m;
    variance = v;
    sample =
      (fun rng ->
        let u = Rng.float rng in
        scale *. ((-.log1p (-.u)) ** (1.0 /. shape)));
  }

let gamma_pareto ~shape ~scale ~cut =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Dist.gamma_pareto: bad parameters";
  if cut <= 0.0 || cut >= 1.0 then invalid_arg "Dist.gamma_pareto: cut outside (0,1)";
  let body = gamma ~shape ~scale in
  let xc = body.quantile cut in
  let fc = body.pdf xc in
  let survival = 1.0 -. cut in
  (* Tail index from density continuity at the crossover:
     survival * alpha / xc = gamma_pdf(xc). *)
  let alpha = xc *. fc /. survival in
  if not (alpha > 0.0 && Float.is_finite alpha) then
    invalid_arg "Dist.gamma_pareto: degenerate tail at crossover";
  let tail_cdf x = 1.0 -. (survival *. ((xc /. x) ** alpha)) in
  let tail_pdf x = survival *. alpha *. (xc ** alpha) /. (x ** (alpha +. 1.0)) in
  let cdf x = if x <= xc then body.cdf x else tail_cdf x in
  let pdf x = if x <= xc then body.pdf x else tail_pdf x in
  let quantile p =
    check_p "gamma_pareto" p;
    if p <= cut then body.quantile p
    else xc *. (((1.0 -. p) /. survival) ** (-1.0 /. alpha))
  in
  (* Moments: body contribution via incomplete-gamma identities,
     tail contribution in closed form (infinite when alpha <= 1 or
     <= 2 respectively). *)
  let body_m1 = shape *. scale *. Special.gamma_p (shape +. 1.0) (xc /. scale) in
  let body_m2 =
    shape *. (shape +. 1.0) *. scale *. scale *. Special.gamma_p (shape +. 2.0) (xc /. scale)
  in
  let mean =
    if alpha <= 1.0 then infinity
    else body_m1 +. (survival *. alpha *. xc /. (alpha -. 1.0))
  in
  let variance =
    if alpha <= 2.0 then infinity
    else begin
      let m2 = body_m2 +. (survival *. alpha *. xc *. xc /. (alpha -. 2.0)) in
      m2 -. (mean *. mean)
    end
  in
  {
    name = Printf.sprintf "gamma_pareto(%g,%g,cut=%g)" shape scale cut;
    pdf;
    cdf;
    quantile;
    mean;
    variance;
    sample =
      (fun rng ->
        let u = Rng.float rng in
        let u = if u <= 0.0 then 1e-12 else if u >= 1.0 then 1.0 -. 1e-12 else u in
        quantile u);
  }

let of_empirical emp =
  let lo, hi = Empirical.support emp in
  let eps = Stdlib.max ((hi -. lo) *. 1e-4) 1e-9 in
  {
    name = Printf.sprintf "empirical(n=%d)" (Empirical.size emp);
    pdf =
      (fun x ->
        (Empirical.cdf emp (x +. eps) -. Empirical.cdf emp (x -. eps)) /. (2.0 *. eps));
    cdf = Empirical.cdf emp;
    quantile =
      (fun p ->
        check_p "empirical" p;
        Empirical.quantile emp p);
    mean = Empirical.mean emp;
    variance = Empirical.variance emp;
    sample =
      (fun rng ->
        let u = Rng.float rng in
        Empirical.quantile emp (Stdlib.min u (1.0 -. 1e-12)));
  }

let of_histogram h =
  let cum = Histogram.cdf h in
  let nbins = Array.length cum in
  let quantile p =
    check_p "histogram" p;
    (* Find the first bin whose cumulative mass reaches p, then
       interpolate linearly inside it. *)
    let rec find i = if i >= nbins - 1 || cum.(i) >= p then i else find (i + 1) in
    let i = find 0 in
    let lo_mass = if i = 0 then 0.0 else cum.(i - 1) in
    let mass = cum.(i) -. lo_mass in
    let frac = if mass <= 0.0 then 0.5 else (p -. lo_mass) /. mass in
    let left = h.Histogram.lo +. (float_of_int i *. h.Histogram.width) in
    left +. (frac *. h.Histogram.width)
  in
  let cdf x =
    if x <= h.Histogram.lo then 0.0
    else if x >= h.Histogram.hi then 1.0
    else begin
      let i = Histogram.bin_of h x in
      let lo_mass = if i = 0 then 0.0 else cum.(i - 1) in
      let left = h.Histogram.lo +. (float_of_int i *. h.Histogram.width) in
      let frac = (x -. left) /. h.Histogram.width in
      lo_mass +. (frac *. (cum.(i) -. lo_mass))
    end
  in
  (* Moments of the piecewise-uniform reconstruction. *)
  let mean = Histogram.mean h in
  let variance =
    let s = ref 0.0 in
    for i = 0 to nbins - 1 do
      let c = Histogram.bin_center h i in
      let f = Histogram.frequency h i in
      s := !s +. (f *. (((c -. mean) *. (c -. mean)) +. (h.Histogram.width *. h.Histogram.width /. 12.0)))
    done;
    !s
  in
  {
    name = Printf.sprintf "histogram(%d bins)" nbins;
    pdf = (fun x -> if x < h.Histogram.lo || x > h.Histogram.hi then 0.0 else Histogram.pdf_at h x);
    cdf;
    quantile;
    mean;
    variance;
    sample =
      (fun rng ->
        let u = Rng.float rng in
        let u = if u <= 0.0 then 1e-12 else u in
        quantile u);
  }

let truncate_below d ~floor:fl =
  let clamp x = if x < fl then fl else x in
  (* Recompute moments of the clamped variate by averaging the
     clamped quantile function over a fine grid. *)
  let n = 4096 in
  let m1 = ref 0.0 and m2 = ref 0.0 in
  for i = 0 to n - 1 do
    let p = (float_of_int i +. 0.5) /. float_of_int n in
    let x = clamp (d.quantile p) in
    m1 := !m1 +. x;
    m2 := !m2 +. (x *. x)
  done;
  let mean = !m1 /. float_of_int n in
  let variance = (!m2 /. float_of_int n) -. (mean *. mean) in
  {
    name = d.name ^ Printf.sprintf "|>=%g" fl;
    pdf = (fun x -> if x < fl then 0.0 else d.pdf x);
    cdf = (fun x -> if x < fl then 0.0 else d.cdf x);
    quantile = (fun p -> clamp (d.quantile p));
    mean;
    variance;
    sample = (fun rng -> clamp (d.sample rng));
  }

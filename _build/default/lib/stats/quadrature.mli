(** Numerical integration.

    Gauss–Hermite quadrature computes Gaussian expectations
    [E f(X)], the quantity at the heart of the paper's attenuation
    factor [a = (E h(X)X)^2 / E h(X)^2] (Appendix A); adaptive
    Simpson handles generic finite-interval integrals. *)

val hermite_nodes : n:int -> (float * float) array
(** [hermite_nodes ~n] returns the [n] (node, weight) pairs of
    probabilists' Gauss–Hermite quadrature, normalized so that
    [sum w_i f(x_i)] approximates [E f(Z)] for Z standard normal.
    Exact for polynomials up to degree [2n-1]. Results are memoized
    per [n]. @raise Invalid_argument if [n <= 0 || n > 256]. *)

val gaussian_expectation : ?n:int -> (float -> float) -> float
(** [gaussian_expectation f] is [E f(Z)], Z standard normal, by
    [n]-point (default 96) Gauss–Hermite quadrature. *)

val simpson : ?eps:float -> ?max_depth:int -> (float -> float) -> lo:float -> hi:float -> float
(** Adaptive Simpson integration of [f] over [\[lo, hi\]] with
    absolute tolerance [eps] (default 1e-10) and recursion depth cap
    [max_depth] (default 40). @raise Invalid_argument if
    [hi < lo]. *)

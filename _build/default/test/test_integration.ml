(* Cross-module integration tests: the full Section-3.2 pipeline
   (fit -> compensate -> generate -> compare), the Section-3.3
   composite pipeline, and agreement between plain-MC, trace-driven
   and importance-sampled queueing estimates. These are the
   repository's "does the paper's story actually hold" checks. *)

module Rng = Ss_stats.Rng
module D = Ss_stats.Descriptive
module Empirical = Ss_stats.Empirical
module Acf_fit = Ss_fractal.Acf_fit
module Hurst = Ss_fractal.Hurst
module Trace = Ss_video.Trace
module Scene = Ss_video.Scene_source
module Gop = Ss_video.Gop
module Mc = Ss_queueing.Mc
module Trace_sim = Ss_queueing.Trace_sim
module Is = Ss_fastsim.Is_estimator
module Model = Ss_core.Model
module Fit = Ss_core.Fit
module Generate = Ss_core.Generate
module Mpeg = Ss_core.Mpeg

let close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* Shared fixtures: one intraframe reference (32k frames) and its
   fitted model. *)
let reference =
  lazy
    (Scene.generate
       { Scene.default with frames = 32_768; gop = Gop.of_string "I" }
       (Rng.create ~seed:15))

let fitted = lazy (Fit.fit ~max_lag:150 (Lazy.force reference).Trace.sizes)

(* ------------------------------------------------------------------ *)
(* Section 3.2 end-to-end                                               *)
(* ------------------------------------------------------------------ *)

let test_pipeline_acf_match_short_lags () =
  (* Fig 8's claim: the synthetic foreground ACF tracks the empirical
     one. Check the SRD region (lags 1..40) tightly and mid lags
     loosely (long lags suffer the LRD sample-ACF bias both traces
     share only in expectation). *)
  let model, _ = Lazy.force fitted in
  let sizes = (Lazy.force reference).Trace.sizes in
  let synth = Generate.foreground model ~n:32_768 Generate.Davies_harte (Rng.create ~seed:21) in
  let re = D.acf sizes ~max_lag:150 in
  let rs = D.acf synth ~max_lag:150 in
  List.iter
    (fun k ->
      if abs_float (re.(k) -. rs.(k)) > 0.12 then
        Alcotest.failf "ACF mismatch at lag %d: %.3f vs %.3f" k re.(k) rs.(k))
    [ 1; 2; 5; 10; 20; 40 ];
  List.iter
    (fun k ->
      if abs_float (re.(k) -. rs.(k)) > 0.2 then
        Alcotest.failf "ACF mismatch at mid lag %d: %.3f vs %.3f" k re.(k) rs.(k))
    [ 80; 120; 150 ]

let test_pipeline_marginal_match () =
  (* Fig 12/13's claim: histogram inversion reproduces the marginal.
     A single LRD path's empirical distribution wanders with the
     path's location, so compare the KS distance averaged over
     independent paths. *)
  let model, _ = Lazy.force fitted in
  let sizes = (Lazy.force reference).Trace.sizes in
  let emp = Empirical.of_data sizes in
  let pooled =
    List.concat_map
      (fun seed ->
        Array.to_list
          (Generate.foreground model ~n:32_768 Generate.Davies_harte (Rng.create ~seed)))
      [ 22; 122; 222; 322 ]
    |> Array.of_list
  in
  let ks = Empirical.ks_distance emp (Empirical.of_data pooled) in
  if ks > 0.1 then Alcotest.failf "pooled KS distance too large: %.3f" ks

let test_pipeline_hurst_preserved () =
  (* The synthetic trace must inherit the adopted Hurst parameter
     (Appendix A invariance through the whole pipeline). *)
  let model, _ = Lazy.force fitted in
  let synth = Generate.foreground model ~n:32_768 Generate.Davies_harte (Rng.create ~seed:23) in
  let h = (Hurst.variance_time synth).Hurst.h in
  if abs_float (h -. model.Model.hurst) > 0.15 then
    Alcotest.failf "synthetic H %.3f far from adopted %.2f" h model.Model.hurst

let test_pipeline_deterministic () =
  let model, _ = Lazy.force fitted in
  let a = Generate.foreground model ~n:1024 Generate.Davies_harte (Rng.create ~seed:24) in
  let b = Generate.foreground model ~n:1024 Generate.Davies_harte (Rng.create ~seed:24) in
  Array.iteri (fun i v -> close "reproducible pipeline" v b.(i)) a

(* ------------------------------------------------------------------ *)
(* Section 3.3 composite end-to-end                                     *)
(* ------------------------------------------------------------------ *)

let test_composite_pipeline_matches_reference () =
  let reference = Scene.generate { Scene.default with frames = 36_000 } (Rng.create ~seed:15) in
  let m = Mpeg.fit ~i_max_lag:60 reference in
  let synth = Mpeg.generate m ~n:36_000 (Rng.create ~seed:25) in
  (* Marginals per type (Fig 12): medians within 20%. *)
  List.iter
    (fun k ->
      let want = D.median (Trace.of_kind reference k) in
      let got = D.median (Trace.of_kind synth k) in
      if abs_float (want -. got) /. want > 0.2 then
        Alcotest.failf "%c median: %.0f vs %.0f" (Ss_video.Frame.to_char k) want got)
    [ Ss_video.Frame.I; Ss_video.Frame.P; Ss_video.Frame.B ];
  (* The frame-level ACF oscillates with the GOP in both (Figs 9-11):
     compare at multiples of 12 where both peak. *)
  let re = D.acf reference.Trace.sizes ~max_lag:60 in
  let rs = D.acf synth.Trace.sizes ~max_lag:60 in
  List.iter
    (fun k ->
      if abs_float (re.(k) -. rs.(k)) > 0.25 then
        Alcotest.failf "composite ACF at lag %d: %.3f vs %.3f" k re.(k) rs.(k))
    [ 12; 24; 36; 48; 60 ]

(* ------------------------------------------------------------------ *)
(* Queueing consistency                                                 *)
(* ------------------------------------------------------------------ *)

let test_is_agrees_with_plain_mc_on_model () =
  (* For a moderately rare event the IS estimate (twisted) and plain
     MC (twist 0) must agree within confidence bands. *)
  let model, _ = Lazy.force fitted in
  let mean = model.Model.mean in
  let table = Generate.table model ~n:400 in
  let arrival = Generate.arrival_fn model in
  let service = mean /. 0.7 in
  let buffer = 20.0 *. mean in
  let cfg twist =
    Is.make_config ~table ~arrival ~service ~buffer ~horizon:400 ~twist ()
  in
  let mc = Is.estimate (cfg 0.0) ~replications:3000 (Rng.create ~seed:26) in
  let is = Is.estimate (cfg 1.2) ~replications:3000 (Rng.create ~seed:27) in
  if mc.Mc.hits < 10 then Alcotest.failf "event too rare for this check: %d hits" mc.Mc.hits;
  let band e = 4.0 *. sqrt (e.Mc.variance /. float_of_int e.Mc.replications) in
  close ~eps:(band mc +. band is) "IS vs MC" mc.Mc.p is.Mc.p

let test_model_queueing_tracks_trace_queueing () =
  (* Fig 16's core claim: overflow curves from the synthetic model
     track the ones from the trace itself, at least in order of
     magnitude, at moderate utilization. *)
  let model, _ = Lazy.force fitted in
  let sizes = (Lazy.force reference).Trace.sizes in
  let mean = model.Model.mean in
  let utilization = 0.8 in
  (* Trace side: single long run. *)
  let qp = Trace_sim.queue_path ~arrivals:sizes ~utilization in
  let b_abs = 20.0 *. mean in
  let p_trace = Trace_sim.overflow_fraction ~queue_path:qp ~buffer:b_abs in
  (* Model side: transient probability at a long horizon approximates
     steady state. *)
  let table = Generate.table model ~n:600 in
  let cfg =
    Is.make_config ~table ~arrival:(Generate.arrival_fn model) ~service:(mean /. utilization)
      ~buffer:b_abs ~horizon:600 ~twist:0.8 ()
  in
  let p_model = (Is.estimate cfg ~replications:2000 (Rng.create ~seed:28)).Mc.p in
  if p_trace <= 0.0 then Alcotest.fail "trace never overflows at uti 0.8 b=20";
  let ratio = p_model /. p_trace in
  if ratio < 0.1 || ratio > 10.0 then
    Alcotest.failf "model (%.3g) vs trace (%.3g) overflow differ by >10x" p_model p_trace

let test_srd_only_decays_faster () =
  (* Fig 17's claim is a shape: the SRD-only overflow curve decays
     faster with buffer size than the SRD+LRD one, so the ratio
     p_srd / p_full must shrink as the buffer grows (the curves are
     close at small buffers and diverge at large ones). *)
  let model, diag = Lazy.force fitted in
  let mean = model.Model.mean in
  let srd_model =
    Model.with_dependence model (Model.Srd_only diag.Fit.raw_fit.Acf_fit.lambda)
  in
  let service = mean /. 0.6 in
  let p_of m buffer_norm seed =
    let horizon = int_of_float (10.0 *. buffer_norm) in
    let table = Generate.table m ~n:horizon in
    let cfg =
      Is.make_config ~table ~arrival:(Generate.arrival_fn m) ~service
        ~buffer:(buffer_norm *. mean) ~horizon ~twist:1.5 ()
    in
    (Is.estimate cfg ~replications:1500 (Rng.create ~seed)).Mc.p
  in
  let ratio b = p_of srd_model b 30 /. p_of model b 29 in
  let small = ratio 10.0 and large = ratio 80.0 in
  if Float.is_nan small || Float.is_nan large then Alcotest.fail "no hits at some buffer";
  if large >= small then
    Alcotest.failf "SRD-only/full ratio did not shrink with buffer: %.3g -> %.3g" small large

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "integration"
    [
      ( "section-3.2",
        [
          tc "ACF match" test_pipeline_acf_match_short_lags;
          tc "marginal match" test_pipeline_marginal_match;
          tc "Hurst preserved" test_pipeline_hurst_preserved;
          tc "deterministic" test_pipeline_deterministic;
        ] );
      ("section-3.3", [ tc "composite matches reference" test_composite_pipeline_matches_reference ]);
      ( "section-4",
        [
          tc "IS agrees with MC" test_is_agrees_with_plain_mc_on_model;
          tc "model tracks trace queueing" test_model_queueing_tracks_trace_queueing;
          tc "SRD-only decays faster" test_srd_only_decays_faster;
        ] );
    ]

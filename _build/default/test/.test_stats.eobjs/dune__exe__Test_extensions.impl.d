test/test_extensions.ml: Alcotest Array Float Gen List Printf QCheck QCheck_alcotest Ss_fractal Ss_queueing Ss_stats Ss_video Stdlib

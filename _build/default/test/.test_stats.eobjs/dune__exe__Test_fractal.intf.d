test/test_fractal.mli:

test/test_core.ml: Alcotest Array Buffer Format Lazy List Printf Ss_core Ss_fractal Ss_queueing Ss_stats Ss_video Stdlib String

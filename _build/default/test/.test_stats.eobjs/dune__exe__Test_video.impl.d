test/test_video.ml: Alcotest Array Filename Float Fun List Printf Ss_fractal Ss_stats Ss_video Sys

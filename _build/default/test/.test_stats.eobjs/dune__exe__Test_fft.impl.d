test/test_fft.ml: Alcotest Array Float List Printf Ss_fft Ss_stats

test/test_queueing.ml: Alcotest Array Ss_queueing Ss_stats Stdlib

test/test_integration.ml: Alcotest Array Float Lazy List Ss_core Ss_fastsim Ss_fractal Ss_queueing Ss_stats Ss_video

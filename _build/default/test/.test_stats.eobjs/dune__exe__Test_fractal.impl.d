test/test_fractal.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Ss_fractal Ss_stats Stdlib

test/test_fastsim.ml: Alcotest Array Float List Ss_fastsim Ss_fractal Ss_queueing Ss_stats

(* Tests for ss_core: the unified fitting pipeline, model variants,
   generation, the MPEG composite pipeline and reporting. *)

module Rng = Ss_stats.Rng
module D = Ss_stats.Descriptive
module Acf = Ss_fractal.Acf
module Acf_fit = Ss_fractal.Acf_fit
module Hurst = Ss_fractal.Hurst
module Trace = Ss_video.Trace
module Scene = Ss_video.Scene_source
module Gop = Ss_video.Gop
module Model = Ss_core.Model
module Fit = Ss_core.Fit
module Generate = Ss_core.Generate
module Mpeg = Ss_core.Mpeg
module Report = Ss_core.Report
module Defaults = Ss_core.Defaults

let close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

(* A compact intraframe reference for fast tests: 16k frames. *)
let small_intra =
  lazy
    (Scene.generate
       { Scene.default with frames = 16_384; gop = Gop.of_string "I" }
       (Rng.create ~seed:15))

let small_fit = lazy (Fit.fit ~max_lag:120 (Lazy.force small_intra).Trace.sizes)

(* ------------------------------------------------------------------ *)
(* hurst_round                                                          *)
(* ------------------------------------------------------------------ *)

let test_hurst_round () =
  close "0.884 -> 0.9" 0.9 (Fit.hurst_round 0.884);
  close "0.86 -> 0.85" 0.85 (Fit.hurst_round 0.86);
  close "0.92 -> 0.9" 0.9 (Fit.hurst_round 0.92);
  close "clamps high" 0.95 (Fit.hurst_round 0.99);
  close "clamps low" 0.55 (Fit.hurst_round 0.3)

(* ------------------------------------------------------------------ *)
(* Fit pipeline                                                         *)
(* ------------------------------------------------------------------ *)

let test_fit_produces_sane_model () =
  let model, diag = Lazy.force small_fit in
  (* H should be in LRD territory for this source. *)
  if model.Model.hurst < 0.6 || model.Model.hurst > 0.95 then
    Alcotest.failf "H out of range: %g" model.Model.hurst;
  (* attenuation in (0,1] *)
  if model.Model.attenuation <= 0.0 || model.Model.attenuation > 1.0 then
    Alcotest.failf "attenuation out of range: %g" model.Model.attenuation;
  (* the adopted beta must match H *)
  (match model.Model.dependence with
  | Model.Srd_lrd p ->
    close ~eps:1e-9 "beta = 2 - 2H" (2.0 -. (2.0 *. model.Model.hurst)) p.Acf_fit.beta
  | _ -> Alcotest.fail "expected Srd_lrd");
  (* diagnostics carry both raw and compensated fits *)
  if diag.Fit.compensated.Acf_fit.l < diag.Fit.raw_fit.Acf_fit.l then
    Alcotest.fail "compensation must not lower the LRD level";
  close "mean recorded" (D.mean (Lazy.force small_intra).Trace.sizes) model.Model.mean

let test_fit_compensated_model_is_generatable () =
  (* The compensated background ACF must be accepted by both exact
     generators — i.e. it stays positive definite. *)
  let model, _ = Lazy.force small_fit in
  let x = Generate.background model ~n:2000 Generate.Hosking_stream (Rng.create ~seed:1) in
  Alcotest.(check int) "hosking length" 2000 (Array.length x);
  let y = Generate.background model ~n:2000 Generate.Davies_harte (Rng.create ~seed:2) in
  Alcotest.(check int) "dh length" 2000 (Array.length y)

let test_fit_diag_adopted_between_estimates () =
  let _, diag = Lazy.force small_fit in
  let lo =
    Stdlib.min diag.Fit.h_variance_time.Hurst.h diag.Fit.h_rs.Hurst.h -. 0.051
  in
  let hi =
    Stdlib.max diag.Fit.h_variance_time.Hurst.h diag.Fit.h_rs.Hurst.h +. 0.051
  in
  if diag.Fit.h_adopted < lo || diag.Fit.h_adopted > hi then
    Alcotest.failf "adopted H %.3f outside estimate band [%.3f, %.3f]" diag.Fit.h_adopted lo hi

let test_fit_acf_points_match_trace () =
  let _, diag = Lazy.force small_fit in
  let sizes = (Lazy.force small_intra).Trace.sizes in
  let r = D.acf sizes ~max_lag:120 in
  Alcotest.(check int) "point count" 120 (List.length diag.Fit.acf_points);
  List.iter
    (fun (k, v) -> close ~eps:1e-12 (Printf.sprintf "acf point %d" k) r.(k) v)
    diag.Fit.acf_points

let test_fit_too_short () =
  raises_invalid "short series" (fun () -> ignore (Fit.fit ~max_lag:500 (Array.make 100 1.0)))

let test_fit_measured_attenuation_variant () =
  let sizes = (Lazy.force small_intra).Trace.sizes in
  let _, diag_q = Fit.fit ~max_lag:120 sizes in
  let _, diag_m =
    Fit.fit ~max_lag:120
      ~attenuation:(Fit.Measured { n = 8000; lags = List.init 8 (fun i -> 40 + (10 * i)); rng = Rng.create ~seed:3 })
      sizes
  in
  (* Both routes must land in the same region. *)
  close ~eps:0.2 "measured vs quadrature attenuation" diag_q.Fit.attenuation
    diag_m.Fit.attenuation

(* ------------------------------------------------------------------ *)
(* Model variants                                                       *)
(* ------------------------------------------------------------------ *)

let test_model_variants () =
  let model, _ = Lazy.force small_fit in
  let srd = Model.with_dependence model (Model.Srd_only 0.01) in
  let lrd = Model.with_dependence model (Model.Lrd_only 0.9) in
  Alcotest.(check string) "unified name" "srd+lrd" (Model.variant_name model);
  Alcotest.(check string) "srd name" "srd-only" (Model.variant_name srd);
  Alcotest.(check string) "lrd name" "lrd-only" (Model.variant_name lrd);
  (* Background ACFs reflect the dependence structure. *)
  let a_srd = Model.background_acf srd in
  close ~eps:1e-12 "srd acf" (exp (-0.01 *. 10.0)) (a_srd.Acf.r 10);
  let a_lrd = Model.background_acf lrd in
  close ~eps:1e-12 "lrd acf" ((Acf.fgn ~h:0.9).Acf.r 10) (a_lrd.Acf.r 10);
  (* Variants share the marginal transform. *)
  close "same transform"
    (Ss_fractal.Transform.apply1 model.Model.transform 1.0)
    (Ss_fractal.Transform.apply1 srd.Model.transform 1.0)

(* ------------------------------------------------------------------ *)
(* Generate                                                             *)
(* ------------------------------------------------------------------ *)

let test_generate_foreground_marginal () =
  (* Foreground values must be drawn from the empirical marginal's
     support and match its median. *)
  let model, _ = Lazy.force small_fit in
  let sizes = (Lazy.force small_intra).Trace.sizes in
  let lo = D.min sizes and hi = D.max sizes in
  (* A single LRD path's location wanders (sd of the sample mean is
     ~n^{H-1}); average the median over independent paths. *)
  let medians =
    List.init 6 (fun i ->
        let y = Generate.foreground model ~n:8192 Generate.Davies_harte (Rng.create ~seed:(40 + i)) in
        Array.iter
          (fun v ->
            if v < lo -. 1.0 || v > hi +. 1.0 then
              Alcotest.failf "foreground value %g escapes support" v)
          y;
        D.median y)
  in
  let want = D.median sizes in
  let got = List.fold_left ( +. ) 0.0 medians /. 6.0 in
  if abs_float (want -. got) /. want > 0.25 then
    Alcotest.failf "median mismatch: %.0f vs %.0f" want got

let test_generate_table_cached () =
  let model, _ = Lazy.force small_fit in
  let t1 = Generate.table model ~n:256 in
  let t2 = Generate.table model ~n:256 in
  if t1 != t2 then Alcotest.fail "table not cached";
  Alcotest.(check int) "table length" 256 (Ss_fractal.Hosking.Table.length t1)

let test_generate_table_reuse_in_background () =
  let model, _ = Lazy.force small_fit in
  let table = Generate.table model ~n:128 in
  let x = Generate.background model ~n:100 (Generate.Hosking_table table) (Rng.create ~seed:5) in
  Alcotest.(check int) "shorter than table ok" 100 (Array.length x);
  raises_invalid "table too short" (fun () ->
      ignore (Generate.background model ~n:200 (Generate.Hosking_table table) (Rng.create ~seed:5)))

let test_generate_arrival_fn_matches_transform () =
  let model, _ = Lazy.force small_fit in
  let f = Generate.arrival_fn model in
  List.iter
    (fun x ->
      close (Printf.sprintf "arrival at %g" x)
        (Ss_fractal.Transform.apply1 model.Model.transform x)
        (f 17 x))
    [ -2.0; 0.0; 1.5 ]

let test_generate_invalid () =
  let model, _ = Lazy.force small_fit in
  raises_invalid "n = 0" (fun () ->
      ignore (Generate.background model ~n:0 Generate.Hosking_stream (Rng.create ~seed:1)))

(* ------------------------------------------------------------------ *)
(* Iterative refinement (the paper's Section-1 loop)                    *)
(* ------------------------------------------------------------------ *)

let test_refine_reduces_residual () =
  let model, diag = Lazy.force small_fit in
  (* Target: the empirical ACF points the model was fitted to,
     restricted to small lags where the sample noise is low. *)
  let target = List.filter (fun (k, _) -> k <= 60) diag.Fit.acf_points in
  let refined, history =
    Fit.refine ~rounds:3 ~paths:3 ~path_length:16_384 model ~target (Rng.create ~seed:60)
  in
  (match history with
  | first :: _ ->
    let last = List.nth history (List.length history - 1) in
    if last > first +. 0.01 then
      Alcotest.failf "refinement worsened the residual: %.4f -> %.4f" first last
  | [] -> Alcotest.fail "no residual history");
  (* The refined model must still be generatable. *)
  let x = Generate.background refined ~n:2048 Generate.Davies_harte (Rng.create ~seed:61) in
  Alcotest.(check int) "refined model generates" 2048 (Array.length x)

let test_refine_invalid () =
  let model, _ = Lazy.force small_fit in
  raises_invalid "empty target" (fun () ->
      ignore (Fit.refine model ~target:[] (Rng.create ~seed:1)));
  raises_invalid "bad gain" (fun () ->
      ignore (Fit.refine ~gain:0.0 model ~target:[ (1, 0.9) ] (Rng.create ~seed:1)));
  raises_invalid "lag out of range" (fun () ->
      ignore (Fit.refine ~path_length:100 model ~target:[ (100, 0.5) ] (Rng.create ~seed:1)))

(* ------------------------------------------------------------------ *)
(* Mpeg composite pipeline                                              *)
(* ------------------------------------------------------------------ *)

let small_ibp =
  lazy (Scene.generate { Scene.default with frames = 36_000 } (Rng.create ~seed:15))

let mpeg_model = lazy (Mpeg.fit ~i_max_lag:60 (Lazy.force small_ibp))

let test_mpeg_fit_structure () =
  let m = Lazy.force mpeg_model in
  Alcotest.(check string) "gop" "IBBPBBPBBPBB" (Gop.to_string m.Mpeg.gop);
  (* The background is the Hermite inversion of the I-frame fit
     stretched by 12: compensation can only raise the correlation
     (rh <= r), and the result must stay a valid correlation. *)
  let target_12 = (Acf_fit.to_acf m.Mpeg.i_diag.Fit.raw_fit).Acf.r 1 in
  let bg_12 = m.Mpeg.background.Acf.r 12 in
  if bg_12 < target_12 -. 1e-9 then
    Alcotest.failf "background lag 12 (%.4f) below the foreground target (%.4f)" bg_12 target_12;
  if bg_12 > 1.0 then Alcotest.failf "background correlation above 1: %g" bg_12;
  (* Monotone decline at GOP multiples. *)
  if not (m.Mpeg.background.Acf.r 12 >= m.Mpeg.background.Acf.r 24) then
    Alcotest.fail "background not declining across GOP multiples"

let test_mpeg_generate_gop_structure () =
  let m = Lazy.force mpeg_model in
  let synth = Mpeg.generate m ~n:24_000 (Rng.create ~seed:6) in
  Alcotest.(check int) "frames" 24_000 (Trace.length synth);
  (* Per-type means must reproduce the reference ordering. *)
  let mean_of t k = D.mean (Trace.of_kind t k) in
  let reference = Lazy.force small_ibp in
  List.iter
    (fun k ->
      let want = mean_of reference k and got = mean_of synth k in
      if abs_float (want -. got) /. want > 0.3 then
        Alcotest.failf "%c mean mismatch: %.0f vs %.0f" (Ss_video.Frame.to_char k) want got)
    [ Ss_video.Frame.I; Ss_video.Frame.P; Ss_video.Frame.B ]

let test_mpeg_generate_acf_periodicity () =
  let m = Lazy.force mpeg_model in
  let synth = Mpeg.generate m ~n:24_000 (Rng.create ~seed:7) in
  let r = D.acf synth.Trace.sizes ~max_lag:14 in
  if not (r.(12) > r.(11) && r.(12) > r.(13)) then
    Alcotest.failf "no GOP peak in synthetic ACF: %.3f %.3f %.3f" r.(11) r.(12) r.(13)

let test_mpeg_hosking_variant_consistent () =
  (* Different generators, same distribution: compare medians averaged
     over independent paths (single LRD paths wander). *)
  let m = Lazy.force mpeg_model in
  let avg gen =
    let ms =
      List.init 4 (fun i -> D.median (gen (Rng.create ~seed:(50 + i))).Trace.sizes)
    in
    List.fold_left ( +. ) 0.0 ms /. 4.0
  in
  let ma = avg (fun rng -> Mpeg.generate m ~n:4096 rng) in
  let mb = avg (fun rng -> Mpeg.generate_hosking m ~n:4096 rng) in
  if abs_float (ma -. mb) /. ma > 0.3 then
    Alcotest.failf "generator medians disagree: %.0f vs %.0f" ma mb

let test_mpeg_arrival_fn_kind_dependence () =
  let m = Lazy.force mpeg_model in
  let f = Mpeg.arrival_fn m in
  (* Slot 0 is an I frame, slot 1 a B frame: at the same background
     value the I transform must dominate. *)
  if f 0 0.5 <= f 1 0.5 then Alcotest.fail "I arrival not larger than B at same background"

let test_mpeg_background_table () =
  let m = Lazy.force mpeg_model in
  let table = Mpeg.background_table m ~n:64 in
  Alcotest.(check int) "table length" 64 (Ss_fractal.Hosking.Table.length table)

(* ------------------------------------------------------------------ *)
(* Defaults + Report                                                    *)
(* ------------------------------------------------------------------ *)

let test_defaults_deterministic () =
  let a = Defaults.reference_trace_intra () in
  let b = Defaults.reference_trace_intra () in
  if a != b then Alcotest.fail "reference trace not memoized";
  Alcotest.(check int) "frames" 131_072 (Trace.length a);
  Alcotest.(check string) "intra gop" "I" (Gop.to_string a.Trace.gop);
  let c = Defaults.reference_trace_ibp () in
  Alcotest.(check string) "ibp gop" "IBBPBBPBBPBB" (Gop.to_string c.Trace.gop)

let test_defaults_replications_positive () =
  if Defaults.replications <= 0 then Alcotest.fail "replications must be positive"

let test_report_printers_smoke () =
  let model, diag = Lazy.force small_fit in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Report.pp_diagnostics fmt diag;
  Report.pp_model fmt model;
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  if String.length s < 50 then Alcotest.fail "report suspiciously short";
  (* must mention all four pipeline steps *)
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      if not (contains needle) then Alcotest.failf "report missing %S" needle)
    [ "step 1"; "step 2"; "step 3"; "step 4"; "srd+lrd" ]

let test_report_estimate_printer () =
  let e = Ss_queueing.Mc.estimate_of_samples [| 1.0; 0.0 |] in
  let s = Format.asprintf "%a" Report.pp_estimate e in
  if not (String.length s > 10) then Alcotest.fail "estimate report too short";
  let zero = Ss_queueing.Mc.estimate_of_samples [| 0.0; 0.0 |] in
  let s0 = Format.asprintf "%a" Report.pp_estimate zero in
  if not (String.length s0 > 5) then Alcotest.fail "zero-hit report too short"

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ss_core"
    [
      ("hurst-round", [ tc "rounding" test_hurst_round ]);
      ( "fit",
        [
          tc "sane model" test_fit_produces_sane_model;
          tc "compensated model generatable" test_fit_compensated_model_is_generatable;
          tc "adopted H between estimates" test_fit_diag_adopted_between_estimates;
          tc "acf points match trace" test_fit_acf_points_match_trace;
          tc "too short" test_fit_too_short;
          tc "measured attenuation variant" test_fit_measured_attenuation_variant;
        ] );
      ("model", [ tc "variants" test_model_variants ]);
      ( "refine",
        [
          tc "reduces residual" test_refine_reduces_residual;
          tc "invalid" test_refine_invalid;
        ] );
      ( "generate",
        [
          tc "foreground marginal" test_generate_foreground_marginal;
          tc "table cached" test_generate_table_cached;
          tc "table reuse" test_generate_table_reuse_in_background;
          tc "arrival fn" test_generate_arrival_fn_matches_transform;
          tc "invalid" test_generate_invalid;
        ] );
      ( "mpeg",
        [
          tc "fit structure" test_mpeg_fit_structure;
          tc "generate gop structure" test_mpeg_generate_gop_structure;
          tc "acf periodicity" test_mpeg_generate_acf_periodicity;
          tc "hosking variant" test_mpeg_hosking_variant_consistent;
          tc "arrival fn kind dependence" test_mpeg_arrival_fn_kind_dependence;
          tc "background table" test_mpeg_background_table;
        ] );
      ( "defaults-report",
        [
          tc "defaults deterministic" test_defaults_deterministic;
          tc "replications positive" test_defaults_replications_positive;
          tc "report printers" test_report_printers_smoke;
          tc "estimate printer" test_report_estimate_printer;
        ] );
    ]

examples/model_comparison.ml: Format List Ss_core Ss_fastsim Ss_fractal Ss_queueing Ss_stats Ss_video

examples/fit_and_generate.mli:

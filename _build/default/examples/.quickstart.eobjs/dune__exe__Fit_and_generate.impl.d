examples/fit_and_generate.ml: Array Format List Ss_core Ss_fractal Ss_stats Ss_video

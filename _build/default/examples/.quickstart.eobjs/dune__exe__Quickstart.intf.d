examples/quickstart.mli:

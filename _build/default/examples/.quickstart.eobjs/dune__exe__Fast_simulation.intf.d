examples/fast_simulation.mli:

examples/mpeg_composite.ml: Array Format List Ss_core Ss_stats Ss_video

examples/mpeg_composite.mli:

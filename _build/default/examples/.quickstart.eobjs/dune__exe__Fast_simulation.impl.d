examples/fast_simulation.ml: Format List Ss_core Ss_fastsim Ss_queueing Ss_stats Ss_video

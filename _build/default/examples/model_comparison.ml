(* Fig 17 in miniature: why both SRD and LRD matter.

   Three models share the same marginal distribution but differ in
   dependence: SRD-only (exponential ACF), the unified SRD+LRD knee
   model, and LRD-only (FGN background). Their buffer-overflow
   predictions diverge exactly as the paper argues: the SRD model is
   fine for small buffers but wildly optimistic for large ones; the
   FGN model has the right asymptotics but the wrong small-buffer
   behaviour.

     dune exec examples/model_comparison.exe *)

module Rng = Ss_stats.Rng
module Acf_fit = Ss_fractal.Acf_fit
module Scene = Ss_video.Scene_source
module Trace = Ss_video.Trace
module Gop = Ss_video.Gop
module Mc = Ss_queueing.Mc
module Is = Ss_fastsim.Is_estimator
module Model = Ss_core.Model
module Fit = Ss_core.Fit
module Generate = Ss_core.Generate

let () =
  let movie =
    Scene.generate
      { Scene.default with frames = 32_768; gop = Gop.of_string "I" }
      (Rng.create ~seed:15)
  in
  let model, diag = Fit.fit ~max_lag:200 movie.Trace.sizes in
  let mean = model.Model.mean in
  let variants =
    [
      ("srd+lrd ", model);
      ("srd-only", Model.with_dependence model (Model.Srd_only diag.Fit.raw_fit.Acf_fit.lambda));
      ("lrd-only", Model.with_dependence model (Model.Lrd_only model.Model.hurst));
    ]
  in
  let utilization = 0.6 in
  let rng = Rng.create ~seed:11 in
  Format.printf "overflow probability at utilization %.1f (log10):@." utilization;
  Format.printf "%8s" "buffer";
  List.iter (fun (name, _) -> Format.printf "  %8s" name) variants;
  Format.printf "@.";
  List.iter
    (fun b ->
      Format.printf "%8.0f" b;
      List.iter
        (fun (_, m) ->
          let horizon = int_of_float (10.0 *. b) in
          let table = Generate.table m ~n:horizon in
          let cfg =
            Is.make_config ~table ~arrival:(Generate.arrival_fn m)
              ~service:(mean /. utilization) ~buffer:(b *. mean) ~horizon ~twist:1.5 ()
          in
          let e = Is.estimate cfg ~replications:400 (Rng.split rng) in
          if e.Mc.p > 0.0 then Format.printf "  %8.3f" (log10 e.Mc.p)
          else Format.printf "  %8s" "-")
        variants;
      Format.printf "@.")
    [ 10.0; 25.0; 50.0; 100.0; 200.0 ];
  Format.printf "@.(SRD-only falls away fastest; LRD-only starts lowest -- the paper's Fig 17)@."

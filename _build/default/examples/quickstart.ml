(* Quickstart: synthesize a "movie", fit the unified self-similar
   model to it, and generate statistically equivalent traffic.

     dune exec examples/quickstart.exe *)

module Rng = Ss_stats.Rng
module D = Ss_stats.Descriptive
module Scene = Ss_video.Scene_source
module Trace = Ss_video.Trace
module Gop = Ss_video.Gop

let () =
  (* 1. A two-minute intraframe-coded VBR video source (the library's
     stand-in for a real MPEG-1 trace). *)
  let rng = Rng.create ~seed:15 in
  let config =
    { Scene.default with frames = 16_384; gop = Gop.of_string "I" }
  in
  let movie = Scene.generate config rng in
  Format.printf "--- reference trace ---@.%a@." Trace.pp_summary (Trace.summarize movie);

  (* 2. Fit the paper's unified model: Hurst estimation, composite
     SRD+LRD autocorrelation fit, attenuation compensation. *)
  let model, diagnostics = Ss_core.Fit.fit ~max_lag:150 movie.Trace.sizes in
  Format.printf "--- fitted model ---@.%a@." Ss_core.Report.pp_diagnostics diagnostics;

  (* 3. Generate a synthetic trace with the same marginal distribution
     and both short- and long-range dependence. *)
  let synthetic =
    Ss_core.Generate.foreground model ~n:16_384 Ss_core.Generate.Davies_harte
      (Rng.create ~seed:7)
  in
  Format.printf "--- synthetic vs reference ---@.";
  Format.printf "mean   %8.0f  vs %8.0f bytes/frame@." (D.mean synthetic) (D.mean movie.Trace.sizes);
  Format.printf "std    %8.0f  vs %8.0f@." (D.std synthetic) (D.std movie.Trace.sizes);
  let rs = D.acf synthetic ~max_lag:100 and re = D.acf movie.Trace.sizes ~max_lag:100 in
  List.iter
    (fun k -> Format.printf "r(%3d) %8.3f  vs %8.3f@." k rs.(k) re.(k))
    [ 1; 10; 50; 100 ]

(* Section 4 / Appendix B: importance-sampled rare-event estimation.

   Estimates a cell-loss probability that plain Monte Carlo cannot
   resolve, by twisting the mean of the self-similar Gaussian
   background process and reweighting with the exact
   conditional-Gaussian likelihood ratio. Reproduces the Fig-14
   "valley" search for the best twist in miniature.

     dune exec examples/fast_simulation.exe *)

module Rng = Ss_stats.Rng
module Scene = Ss_video.Scene_source
module Trace = Ss_video.Trace
module Gop = Ss_video.Gop
module Mc = Ss_queueing.Mc
module Is = Ss_fastsim.Is_estimator
module Valley = Ss_fastsim.Valley
module Model = Ss_core.Model
module Generate = Ss_core.Generate

let () =
  let movie =
    Scene.generate
      { Scene.default with frames = 32_768; gop = Gop.of_string "I" }
      (Rng.create ~seed:15)
  in
  let model, _ = Ss_core.Fit.fit ~max_lag:200 movie.Trace.sizes in
  let mean = model.Model.mean in

  (* The paper's Fig-14 setting: utilization 0.2, normalized buffer
     25, horizon 500 slots. *)
  let table = Generate.table model ~n:500 in
  let config ~twist =
    Is.make_config ~table
      ~arrival:(Generate.arrival_fn model)
      ~service:(mean /. 0.2)
      ~buffer:(25.0 *. mean)
      ~horizon:500 ~twist ()
  in
  let rng = Rng.create ~seed:9 in
  let replications = 400 in

  (* Plain Monte Carlo first: the event is too rare. *)
  let mc = Is.estimate (config ~twist:0.0) ~replications rng in
  Format.printf "plain MC   : %a@." Ss_core.Report.pp_estimate mc;

  (* Sweep the twisted mean and watch the normalized variance dip. *)
  Format.printf "@.twist sweep (the Fig-14 valley):@.";
  let points =
    Valley.sweep ~config
      ~twists:[ 1.0; 2.0; 2.5; 3.0; 3.5; 4.0; 5.0 ]
      ~replications rng
  in
  List.iter
    (fun p ->
      Format.printf "  m* = %3.1f  p = %.3g  nvar = %8.2f  hits = %3d/%d@." p.Valley.twist
        p.Valley.estimate.Mc.p p.Valley.estimate.Mc.normalized_variance
        p.Valley.estimate.Mc.hits replications)
    points;
  let best = Valley.best points in
  Format.printf "@.best twist m* = %.1f (paper found 3.2)@." best.Valley.twist;
  Format.printf "estimate at the valley: %a@." Ss_core.Report.pp_estimate best.Valley.estimate;
  let p = best.Valley.estimate.Mc.p in
  if p > 0.0 then
    Format.printf "variance reduction vs plain MC at equal accuracy: ~%.0fx@."
      ((1.0 -. p) /. p /. best.Valley.estimate.Mc.normalized_variance)

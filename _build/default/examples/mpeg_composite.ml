(* Section 3.3: modeling interframe-compressed MPEG video.

   One background self-similar Gaussian process drives three
   histogram transforms (h_I, h_P, h_B) along the GOP pattern; the
   background autocorrelation is the I-frame fit stretched by the
   I-frame period (Eq 15). Also demonstrates the miniature DCT codec
   substrate that motivates where frame sizes come from.

     dune exec examples/mpeg_composite.exe *)

module Rng = Ss_stats.Rng
module D = Ss_stats.Descriptive
module Scene = Ss_video.Scene_source
module Trace = Ss_video.Trace
module Frame = Ss_video.Frame
module Gop = Ss_video.Gop
module Toy = Ss_video.Toy_codec
module Mpeg = Ss_core.Mpeg

let per_kind_report label trace =
  Format.printf "%s:@." label;
  List.iter
    (fun k ->
      let xs = Trace.of_kind trace k in
      if Array.length xs > 0 then
        Format.printf "  %c frames: n=%6d mean=%7.0f std=%7.0f@." (Frame.to_char k)
          (Array.length xs) (D.mean xs) (D.std xs))
    [ Frame.I; Frame.P; Frame.B ]

let () =
  (* A real miniature codec run, just to show the machinery end to
     end: synthetic moving scenes -> 8x8 DCT -> quantize -> entropy
     size accounting. *)
  let toy = Toy.encode Toy.default ~gop:Gop.default ~frames:240 (Rng.create ~seed:1) in
  per_kind_report "toy DCT codec (240 frames)" toy;

  (* The statistical reference trace and the composite model. *)
  let movie = Scene.generate { Scene.default with frames = 49_152 } (Rng.create ~seed:15) in
  per_kind_report "reference trace" movie;

  let m = Mpeg.fit movie in
  Format.printf "@.I-frame unified model:@.%a@." Ss_core.Report.pp_diagnostics m.Mpeg.i_diag;

  let synth = Mpeg.generate m ~n:49_152 (Rng.create ~seed:4) in
  per_kind_report "composite synthetic" synth;

  (* The frame-level ACF oscillates with the GOP period in both
     streams (the paper's Figs 9-11). *)
  let re = D.acf movie.Trace.sizes ~max_lag:48 in
  let rs = D.acf synth.Trace.sizes ~max_lag:48 in
  Format.printf "@.lag   empirical  synthetic   (note the peaks at multiples of 12)@.";
  List.iter
    (fun k -> Format.printf "%3d   %8.3f  %8.3f@." k re.(k) rs.(k))
    [ 1; 2; 3; 6; 11; 12; 13; 23; 24; 25; 36; 48 ]

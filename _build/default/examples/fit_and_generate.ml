(* The full Section-3.2 workflow in detail: every intermediate the
   paper reports — Hurst estimates from two estimators, the knee fit,
   the attenuation factor from both quadrature and simulation, and
   the quality of the final match.

     dune exec examples/fit_and_generate.exe *)

module Rng = Ss_stats.Rng
module D = Ss_stats.Descriptive
module Empirical = Ss_stats.Empirical
module Hurst = Ss_fractal.Hurst
module Transform = Ss_fractal.Transform
module Acf_fit = Ss_fractal.Acf_fit
module Scene = Ss_video.Scene_source
module Trace = Ss_video.Trace
module Gop = Ss_video.Gop
module Fit = Ss_core.Fit
module Model = Ss_core.Model
module Generate = Ss_core.Generate

let () =
  let movie =
    Scene.generate
      { Scene.default with frames = 65_536; gop = Gop.of_string "I" }
      (Rng.create ~seed:15)
  in
  let sizes = movie.Trace.sizes in

  (* Step 1 by hand: the two Hurst estimators the paper combines. *)
  let vt = Hurst.variance_time sizes in
  let rs = Hurst.rs sizes in
  Format.printf "step 1: variance-time H = %.3f (slope %.4f), R/S H = %.3f@." vt.Hurst.h
    vt.Hurst.fit.Ss_stats.Regression.slope rs.Hurst.h;

  (* Steps 1-4 through the pipeline. *)
  let model, diag = Fit.fit ~max_lag:300 sizes in
  Format.printf "step 2: fitted knee model   %a@." Ss_core.Report.pp_params diag.Fit.raw_fit;
  Format.printf "step 3: attenuation         quadrature a = %.4f@." diag.Fit.attenuation;
  let measured =
    Transform.attenuation_measured
      ~acf:(Acf_fit.to_acf diag.Fit.raw_fit)
      ~n:16_384
      ~lags:(List.init 8 (fun i -> 60 + (30 * i)))
      (Rng.create ~seed:2) model.Model.transform
  in
  Format.printf "                            measured   a = %.4f (paper: 0.94)@." measured;
  Format.printf "step 4: Eq-14 compensation  %a@." Ss_core.Report.pp_params diag.Fit.compensated;
  Format.printf "        (model uses exact Hermite inversion of the response)@.";

  (* Generate and audit the match the paper shows in Figs 8 and 12-13. *)
  let synth = Generate.foreground model ~n:65_536 Generate.Davies_harte (Rng.create ~seed:3) in
  let re = D.acf sizes ~max_lag:300 and rsynth = D.acf synth ~max_lag:300 in
  Format.printf "@.lag    empirical  synthetic@.";
  List.iter
    (fun k -> Format.printf "%4d   %8.3f  %8.3f@." k re.(k) rsynth.(k))
    [ 1; 5; 10; 25; 50; 100; 200; 300 ];
  let ks =
    Empirical.ks_distance (Empirical.of_data sizes) (Empirical.of_data synth)
  in
  Format.printf "@.marginal KS distance: %.4f@." ks;
  let hq = (Hurst.variance_time synth).Hurst.h in
  Format.printf "synthetic Hurst (variance-time): %.3f (adopted %.2f)@." hq diag.Fit.h_adopted

(** Versioned, checksummed snapshot container + codec for crash-safe
    checkpoint/resume.

    Contract: a resumed run must be bitwise identical to the
    uninterrupted one, so every decode path either succeeds exactly or
    raises {!Corrupt} with an actionable message — there is no partial
    restore. *)

exception Corrupt of string
(** Raised on any malformed, truncated, corrupted, wrong-version or
    wrong-kind checkpoint data. The message names the failing check. *)

(** Binary writer (little-endian, 8-byte ints, floats as IEEE bits). *)
module W : sig
  type t

  val create : unit -> t
  val contents : t -> string
  val u8 : t -> int -> unit
  val i64 : t -> int64 -> unit
  val int : t -> int -> unit
  val float : t -> float -> unit
  val bool : t -> bool -> unit
  val string : t -> string -> unit
  val float_array : t -> float array -> unit
  val int_array : t -> int array -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit

  val tag : t -> string -> unit
  (** Write a named section marker; {!R.tag} verifies it on read so a
      layout mismatch fails with the section name, not garbage state. *)
end

(** Binary reader over an in-memory payload; all reads bounds-checked. *)
module R : sig
  type t

  val of_string : string -> t
  val u8 : t -> int
  val i64 : t -> int64
  val int : t -> int
  val float : t -> float
  val bool : t -> bool
  val string : t -> string
  val float_array : t -> float array

  val float_array_into : t -> float array -> unit
  (** Read into an existing array; {!Corrupt} on length mismatch. *)

  val int_array : t -> int array
  val int_array_into : t -> int array -> unit
  val option : t -> (t -> 'a) -> 'a option
  val tag : t -> string -> unit
end

val format_version : int

val encode : kind:string -> meta:string -> string -> string
(** [encode ~kind ~meta payload] frames the payload with magic,
    version, kind, meta and trailing CRC32. Exposed for tests. *)

val decode : kind:string -> string -> string * R.t
(** [decode ~kind record] verifies magic, version, kind and CRC (in
    that order) and returns [(meta, payload reader)]. *)

val to_file : path:string -> kind:string -> meta:string -> (W.t -> unit) -> unit
(** Serialize via the callback and publish atomically: the record is
    written to [path ^ ".tmp"] then renamed over [path], so a crash
    mid-write never leaves a torn file under the checkpoint name. *)

val of_file : path:string -> kind:string -> string * R.t
(** Read and verify a checkpoint file; returns [(meta, payload reader)].
    Raises {!Corrupt} on any mismatch, including unreadable files. *)

(* Versioned, checksummed snapshot container for crash-safe
   checkpoint/resume, plus the little-endian codec every stateful
   layer serializes itself through. The container is deliberately
   paranoid: magic, format version, a job kind, a caller meta string
   (parameter fingerprint), an explicit payload length and a CRC32
   over the whole record — a checkpoint that cannot be trusted
   bit-for-bit is worse than no checkpoint, so every mismatch is a
   refusal with a distinct, actionable error, never a best-effort
   partial restore. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let () =
  Printexc.register_printer (function
    | Corrupt msg -> Some (Printf.sprintf "Ss_checkpoint.Corrupt(%S)" msg)
    | _ -> None)

(* --- CRC32 (IEEE 802.3, reflected) ------------------------------- *)

module Crc32 = struct
  let table =
    lazy
      (Array.init 256 (fun i ->
           let c = ref (Int32.of_int i) in
           for _ = 0 to 7 do
             if Int32.logand !c 1l <> 0l then
               c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else c := Int32.shift_right_logical !c 1
           done;
           !c))

  let update crc s pos len =
    let table = Lazy.force table in
    let crc = ref (Int32.logxor crc 0xFFFFFFFFl) in
    for i = pos to pos + len - 1 do
      let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code (String.unsafe_get s i)))) 0xFFl) in
      crc := Int32.logxor (Array.unsafe_get table idx) (Int32.shift_right_logical !crc 8)
    done;
    Int32.logxor !crc 0xFFFFFFFFl

  let string s = update 0l s 0 (String.length s)
end

(* --- writer ------------------------------------------------------- *)

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 4096
  let contents (w : t) = Buffer.contents w
  let u8 w v = Buffer.add_char w (Char.chr (v land 0xff))
  let i64 w v = Buffer.add_int64_le w v
  let int w v = Buffer.add_int64_le w (Int64.of_int v)
  let float w v = Buffer.add_int64_le w (Int64.bits_of_float v)
  let bool w v = u8 w (if v then 1 else 0)

  let string w s =
    int w (String.length s);
    Buffer.add_string w s

  let float_array w a =
    int w (Array.length a);
    Array.iter (fun v -> float w v) a

  let int_array w a =
    int w (Array.length a);
    Array.iter (fun v -> int w v) a

  let option w f = function
    | None -> bool w false
    | Some v ->
      bool w true;
      f w v

  (* Section tags make a layout mismatch (a file written by a run with
     different options) fail with a named section instead of a CRC-valid
     garbage restore. *)
  let tag w name =
    u8 w 0xA5;
    string w name
end

(* --- reader ------------------------------------------------------- *)

module R = struct
  type t = { buf : string; mutable pos : int }

  let of_string buf = { buf; pos = 0 }

  let need r n who =
    if r.pos + n > String.length r.buf then
      corrupt "truncated checkpoint payload (reading %s at offset %d)" who r.pos

  let u8 r =
    need r 1 "byte";
    let v = Char.code r.buf.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let i64 r =
    need r 8 "int64";
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code r.buf.[r.pos + i]))
    done;
    r.pos <- r.pos + 8;
    !v

  let int r = Int64.to_int (i64 r)
  let float r = Int64.float_of_bits (i64 r)

  let bool r =
    match u8 r with
    | 0 -> false
    | 1 -> true
    | v -> corrupt "malformed checkpoint: bool byte 0x%02x" v

  let string r =
    let n = int r in
    if n < 0 || r.pos + n > String.length r.buf then
      corrupt "truncated checkpoint payload (string of length %d at offset %d)" n r.pos;
    let s = String.sub r.buf r.pos n in
    r.pos <- r.pos + n;
    s

  let len_checked r who =
    let n = int r in
    if n < 0 || r.pos + (8 * n) > String.length r.buf then
      corrupt "truncated checkpoint payload (%s of length %d at offset %d)" who n r.pos;
    n

  let float_array r =
    let n = len_checked r "float array" in
    Array.init n (fun _ -> float r)

  let float_array_into r a =
    let n = len_checked r "float array" in
    if n <> Array.length a then
      corrupt "checkpoint state mismatch: float array of length %d, expected %d" n
        (Array.length a);
    for i = 0 to n - 1 do
      a.(i) <- float r
    done

  let int_array r =
    let n = len_checked r "int array" in
    Array.init n (fun _ -> int r)

  let int_array_into r a =
    let n = len_checked r "int array" in
    if n <> Array.length a then
      corrupt "checkpoint state mismatch: int array of length %d, expected %d" n
        (Array.length a);
    for i = 0 to n - 1 do
      a.(i) <- int r
    done

  let option r f = if bool r then Some (f r) else None

  let tag r name =
    (match u8 r with
    | 0xA5 -> ()
    | v -> corrupt "checkpoint section %S missing (found byte 0x%02x)" name v);
    let found = string r in
    if not (String.equal found name) then
      corrupt
        "checkpoint section mismatch: expected %S, found %S (file written with different \
         options?)"
        name found
end

(* --- file container ----------------------------------------------- *)

let magic = "SSCK"
let format_version = 1

(* Header layout: magic (4) | version (8) | kind | meta | payload
   length (8) | payload | crc32 (8, zero-extended) over everything
   before the crc field. *)

let encode ~kind ~meta payload =
  let b = Buffer.create (String.length payload + 64) in
  Buffer.add_string b magic;
  Buffer.add_int64_le b (Int64.of_int format_version);
  Buffer.add_int64_le b (Int64.of_int (String.length kind));
  Buffer.add_string b kind;
  Buffer.add_int64_le b (Int64.of_int (String.length meta));
  Buffer.add_string b meta;
  Buffer.add_int64_le b (Int64.of_int (String.length payload));
  Buffer.add_string b payload;
  let crc = Crc32.string (Buffer.contents b) in
  Buffer.add_int64_le b (Int64.logand (Int64.of_int32 crc) 0xFFFFFFFFL);
  Buffer.contents b

let decode ~kind s =
  let r = R.of_string s in
  let header who f = try f () with Corrupt _ -> corrupt "truncated checkpoint file (%s)" who in
  (let m =
     header "magic" (fun () ->
         R.need r 4 "magic";
         let m = String.sub s 0 4 in
         r.R.pos <- 4;
         m)
   in
   if not (String.equal m magic) then
     corrupt "not a checkpoint file (bad magic %S, expected %S)" m magic);
  (let v = header "format version" (fun () -> R.int r) in
   if v <> format_version then
     corrupt "unsupported checkpoint format version %d (this build reads version %d)" v
       format_version);
  let file_kind = header "kind" (fun () -> R.string r) in
  if not (String.equal file_kind kind) then
    corrupt "checkpoint kind mismatch: file holds a %S snapshot, expected %S" file_kind kind;
  let meta = header "meta" (fun () -> R.string r) in
  let plen = header "payload length" (fun () -> R.int r) in
  if plen < 0 || r.R.pos + plen + 8 > String.length s then
    corrupt "truncated checkpoint file (payload of %d bytes missing)" plen;
  let payload_pos = r.R.pos in
  r.R.pos <- payload_pos + plen;
  let stored_crc = Int64.to_int32 (R.i64 r) in
  if r.R.pos <> String.length s then
    corrupt "trailing garbage after checkpoint record (%d extra bytes)"
      (String.length s - r.R.pos);
  let computed = Crc32.update 0l s 0 (payload_pos + plen) in
  if not (Int32.equal stored_crc computed) then
    corrupt "checkpoint CRC mismatch (stored 0x%08lx, computed 0x%08lx): file is corrupted"
      stored_crc computed;
  (meta, R.of_string (String.sub s payload_pos plen))

let to_file ~path ~kind ~meta fill =
  let w = W.create () in
  fill w;
  let record = encode ~kind ~meta (W.contents w) in
  (* Atomic publish: write the whole record to a sibling temp file,
     fsync-free but rename-atomic on POSIX, so a crash mid-write can
     never leave a half-written file under the checkpoint name. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try output_string oc record
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

let of_file ~path ~kind =
  let ic =
    try open_in_bin path
    with Sys_error msg -> corrupt "cannot open checkpoint file: %s" msg
  in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  decode ~kind s

(** Marginal transformation of a Gaussian background process and its
    autocorrelation attenuation (paper Eq 7 and Appendix A).

    [h(x) = F_Y^{-1}(Phi(x))] maps a standard normal variate to the
    target marginal [F_Y]. Appendix A proves that for any measurable
    [h] with square-integrable image, [Y = h(X)] keeps the Hurst
    parameter of [X] but its autocorrelation is asymptotically
    attenuated: [r_h(k) -> a * r(k)] with
    [a = (E h(X) X)^2 / Var h(X) <= 1]. This module provides the
    transform, the theoretical attenuation via Gauss–Hermite
    quadrature, and a simulation-based measurement (the paper's
    Step 3 measures it from one synthetic run; the quadrature result
    is exact up to quadrature error — the [abl-atten] bench compares
    them). *)

type t
(** A marginal transform bound to a target distribution. *)

val make : Ss_stats.Dist.t -> t
(** Build [h = quantile . Phi]. Gaussian inputs are clamped to
    +-8 standard deviations before inversion so extreme deviates stay
    inside the quantile's (0,1) domain. *)

val relax : t -> t
(** The relaxed-precision twin of a transform: the same clamp and
    target quantile, but [Phi] evaluated by the erf-free
    {!Ss_stats.Special.normal_cdf_relaxed} (absolute error < 7.5e-8 in
    probability). Opt-in fast tier only: outputs are statistically
    indistinguishable from {!make}'s but not bitwise, so relaxed
    fixtures are seed-incompatible with the exact tier's. *)

val dist : t -> Ss_stats.Dist.t
(** The target marginal. *)

val apply1 : t -> float -> float
(** Evaluate [h] at one point. *)

val apply : t -> float array -> float array
(** Map a whole background path to the foreground process. *)

val attenuation : t -> float
(** Theoretical attenuation factor
    [a = (E h(X) X)^2 / Var h(X)] by 128-point Gauss–Hermite
    quadrature. Always in (0, 1] for non-degenerate [h] (Appendix A,
    Schwarz inequality). *)

val attenuation_measured :
  acf:Acf.t -> n:int -> lags:int list -> Ss_stats.Rng.t -> t -> float
(** The paper's empirical Step-3 measurement: generate [X] with the
    given autocorrelation (Hosking streaming), form [Y = h(X)],
    estimate [r_h(k)/r(k)] at the given (large) lags and average.
    @raise Invalid_argument if [lags] is empty or any lag is out of
    range. *)

val hermite_coefficient : t -> k:int -> float
(** [hermite_coefficient t ~k] is the k-th Hermite coefficient
    [c_k = E (h(X) He_k(X)) / sqrt(k!)] of the (centered, normalized)
    transform; [c_1^2] equals {!attenuation} for a unit-variance
    image, and the expansion [r_h(k) = sum_j c_j^2 r(k)^j] predicts
    the full transformed autocorrelation. @raise Invalid_argument if
    [k < 0 || k > 64]. *)

val predicted_rh : t -> r:float -> terms:int -> float
(** Hermite-expansion prediction of the foreground autocorrelation
    given background correlation [r], truncated at [terms]
    coefficients. Used in tests to validate the attenuation theory
    beyond first order. *)

val response : ?terms:int -> t -> float -> float
(** [response t] is {!predicted_rh} with the Hermite spectrum
    precomputed once (default 24 terms): the map from background
    correlation to foreground correlation. Non-decreasing on
    [\[-1, 1\]] (Lancaster), with [response t 0 = 0]. *)

val invert_response : (float -> float) -> target:float -> float
(** [invert_response rho ~target] solves [rho r = target] for [r] in
    [\[-0.999, 0.99999\]] by bisection, clamping unreachable targets
    to the endpoint values. [rho] must be non-decreasing (as
    {!response} is). *)

val background_acf_for : ?terms:int -> t -> target:Acf.t -> Acf.t
(** The exact version of the paper's Step-4 compensation: the
    background autocorrelation whose transformed foreground realizes
    [target] — pointwise inversion of {!response}, memoized per lag.
    Reduces to the paper's Eq 14 (division by the attenuation factor
    [a]) in the small-correlation limit, but stays valid when
    correlations are near 1, where dividing by [a] would clip and
    destroy positive definiteness. *)

module Rng = Ss_stats.Rng
module Fft = Ss_fft.Fft

(* Paxson-style approximate FFT synthesis. The circulant has the same
   shape as Davies–Harte's embedding — m = next_pow2 (2n), folded
   first row c_j = r(min(j, m-j)), so every lag a path can exhibit
   carries the model correlation — but where Davies–Harte refuses an
   ACF whose embedding is not nonnegative definite, this plan clips
   the negative eigenvalues to zero and carries on, recording the
   clipped-mass ratio as a diagnostic. (An earlier half-size variant,
   m = next_pow2 n, mirrored the correlation beyond m/2 and showed a
   measurable ~0.02 downward variance–time Hurst bias at H = 0.8; the
   full embedding removes it.) The clipping makes the output law
   approximate, so the backend is judged statistically (sample ACF,
   variance–time Hurst), never bitwise. A path costs one m-point FFT
   and m Gaussians — O(n log n) versus Hosking's O(n * order) — which
   is the right trade for bulk background traffic. *)
type plan = {
  n : int;  (* requested path length *)
  m : int;  (* circulant size, a power of two >= max (2n) 4 *)
  sqrt_f : float array;  (* sqrt of the clipped circulant eigenvalues *)
  clipped_ratio : float;  (* clipped negative mass / positive mass *)
}

let plan ~acf ~n =
  if n <= 0 then invalid_arg "Paxson.plan: n <= 0";
  let m = Stdlib.max 4 (Fft.next_pow2 (2 * n)) in
  let re = Array.make m 0.0 in
  let im = Array.make m 0.0 in
  (* Folded first row: c_j = r(min(j, m-j)); symmetric, so the DFT is
     real and gives the circulant eigenvalues. *)
  for j = 0 to m - 1 do
    re.(j) <- acf.Acf.r (Stdlib.min j (m - j))
  done;
  Fft.forward re im;
  let neg_mass = Array.fold_left (fun a l -> if l < 0.0 then a -. l else a) 0.0 re in
  let pos_mass = Array.fold_left (fun a l -> if l > 0.0 then a +. l else a) 0.0 re in
  if not (pos_mass > 0.0) then invalid_arg "Paxson.plan: degenerate spectrum";
  (* Unlike Davies_harte.plan this never refuses: clipping error is
     part of the approximation contract. Callers that care inspect
     [clipped_ratio]; the statistical gates bound its effect. *)
  let sqrt_f = Array.map (fun l -> sqrt (Stdlib.max l 0.0)) re in
  { n; m; sqrt_f; clipped_ratio = neg_mass /. pos_mass }

let plan_length p = p.n
let clipped_ratio p = p.clipped_ratio

let generate_into p rng dst =
  if Array.length dst < p.n then
    invalid_arg "Paxson.generate_into: buffer shorter than the plan";
  let m = p.m in
  let half_m = m / 2 in
  let scale = 1.0 /. sqrt (float_of_int m) in
  let re = Array.make m 0.0 in
  let im = Array.make m 0.0 in
  (* Hermitian random spectrum over the m-point grid — structurally
     the Davies–Harte sampler at half size: a_0 and a_{m/2} real,
     a_k = conj(a_{m-k}), so the FFT output is real. *)
  re.(0) <- p.sqrt_f.(0) *. Rng.gaussian rng *. scale;
  re.(half_m) <- p.sqrt_f.(half_m) *. Rng.gaussian rng *. scale;
  let half = scale /. sqrt 2.0 in
  for k = 1 to half_m - 1 do
    let u = Rng.gaussian rng and v = Rng.gaussian rng in
    let s = p.sqrt_f.(k) *. half in
    re.(k) <- s *. u;
    im.(k) <- s *. v;
    re.(m - k) <- s *. u;
    im.(m - k) <- -.s *. v
  done;
  Fft.forward re im;
  Array.blit re 0 dst 0 p.n

let generate p rng =
  let dst = Array.make p.n 0.0 in
  generate_into p rng dst;
  dst

module Rng = Ss_stats.Rng
module Pool = Ss_parallel.Pool
module Fft = Ss_fft.Fft

(* Durbin–Levinson step: given phi_{k-1,.} (in [prev], length k-1),
   v_{k-1} and r(.), produce phi_{k,.} into [next] (length k) and
   return v_k. Shared by the table builder and the streaming
   generator. *)
let check_phi ~k phi_kk =
  if Float.is_nan phi_kk || abs_float phi_kk >= 1.0 then
    invalid_arg
      (Printf.sprintf
         "Hosking: autocorrelation not positive definite at lag %d (phi=%g)" k phi_kk)

let dl_step ~r ~k ~prev ~next ~v_prev =
  let acc = ref (r k) in
  for j = 1 to k - 1 do
    acc := !acc -. (prev.(j - 1) *. r (k - j))
  done;
  let phi_kk = !acc /. v_prev in
  check_phi ~k phi_kk;
  next.(k - 1) <- phi_kk;
  for j = 1 to k - 1 do
    next.(j - 1) <- prev.(j - 1) -. (phi_kk *. prev.(k - j - 1))
  done;
  v_prev *. (1.0 -. (phi_kk *. phi_kk))

(* Pool-parallel variant of the step above. The chunk width is a
   fixed constant, never derived from the pool size: partial sums are
   per-chunk and combined in chunk order on the calling domain, so
   the floating-point result is identical for every domain count. *)
let dot_chunk = 2048

let dl_step_pool pool ~r ~k ~prev ~next ~v_prev =
  let terms = k - 1 in
  let chunks = (terms + dot_chunk - 1) / dot_chunk in
  let partials =
    Pool.run pool
      (Array.init chunks (fun c ->
           fun () ->
             let jlo = 1 + (c * dot_chunk) in
             let jhi = Stdlib.min terms (jlo + dot_chunk - 1) in
             let s = ref 0.0 in
             for j = jlo to jhi do
               s := !s +. (Array.unsafe_get prev (j - 1) *. r (k - j))
             done;
             !s))
  in
  let acc = ref (r k) in
  Array.iter (fun p -> acc := !acc -. p) partials;
  let phi_kk = !acc /. v_prev in
  check_phi ~k phi_kk;
  next.(k - 1) <- phi_kk;
  (* Elementwise update: chunking cannot change any value. *)
  Pool.parallel_for pool ~chunk:dot_chunk ~lo:1 ~hi:terms (fun j ->
      Array.unsafe_set next (j - 1)
        (Array.unsafe_get prev (j - 1) -. (phi_kk *. Array.unsafe_get prev (k - j - 1))));
  v_prev *. (1.0 -. (phi_kk *. phi_kk))

(* AR dot product sum_{j=1..k} row.(j-1) * win.(top - j), 4-way
   unrolled. A single accumulator carries the chain through the
   unrolled adds, so the floating-point summation order is exactly
   that of the naive left-to-right loop — the unrolling only removes
   loop overhead and exposes independent loads, it never reassociates
   the sum. This is what lets the block kernel stay bit-identical to
   the historical per-slot path. [win.(top - 1)] must be the most
   recent value and the window must be contiguous going back [k]
   entries; no bounds checks are performed. *)
let ar_dot row win ~top ~k =
  let s = ref 0.0 in
  let j = ref 1 in
  let limit = k - 3 in
  while !j <= limit do
    let j0 = !j in
    let s0 = !s +. (Array.unsafe_get row (j0 - 1) *. Array.unsafe_get win (top - j0)) in
    let s1 = s0 +. (Array.unsafe_get row j0 *. Array.unsafe_get win (top - j0 - 1)) in
    let s2 = s1 +. (Array.unsafe_get row (j0 + 1) *. Array.unsafe_get win (top - j0 - 2)) in
    s := s2 +. (Array.unsafe_get row (j0 + 2) *. Array.unsafe_get win (top - j0 - 3));
    j := j0 + 4
  done;
  while !j <= k do
    s := !s +. (Array.unsafe_get row (!j - 1) *. Array.unsafe_get win (top - !j));
    incr j
  done;
  !s

(* Fast-math variant of [ar_dot]: four independent accumulators give
   the compiler/CPU four parallel dependency chains, roughly doubling
   throughput on long rows — at the price of REASSOCIATING the sum,
   so the result differs from [ar_dot] in the last ulps and is only
   eligible for the opt-in relaxed precision tier (never the default
   paths, whose fixtures are bitwise). Same access pattern and
   contract as [ar_dot] otherwise. *)
let ar_dot_relaxed row win ~top ~k =
  let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
  let j = ref 1 in
  let limit = k - 3 in
  while !j <= limit do
    let j0 = !j in
    s0 := !s0 +. (Array.unsafe_get row (j0 - 1) *. Array.unsafe_get win (top - j0));
    s1 := !s1 +. (Array.unsafe_get row j0 *. Array.unsafe_get win (top - j0 - 1));
    s2 := !s2 +. (Array.unsafe_get row (j0 + 1) *. Array.unsafe_get win (top - j0 - 2));
    s3 := !s3 +. (Array.unsafe_get row (j0 + 2) *. Array.unsafe_get win (top - j0 - 3));
    j := j0 + 4
  done;
  let s = ref ((!s0 +. !s2) +. (!s1 +. !s3)) in
  while !j <= k do
    s := !s +. (Array.unsafe_get row (!j - 1) *. Array.unsafe_get win (top - !j));
    incr j
  done;
  !s

module Table = struct
  type t = {
    rows : float array array;  (* rows.(k-1) = [| phi_{k,1}; ...; phi_{k,k} |] *)
    vars : float array;  (* vars.(k) = v_k, v_0 = 1 *)
    stds : float array;  (* sqrt of vars *)
    sums : float array;  (* sums.(k) = sum_j phi_{k,j}, sums.(0) = 0 *)
  }

  let length t = Array.length t.vars

  let build ~pool ~par_cutoff ~acf ~n =
    if n <= 0 || n > 20_000 then invalid_arg "Hosking.Table.make: n outside [1, 20000]";
    if par_cutoff < 2 then invalid_arg "Hosking.Table.make: par_cutoff < 2";
    let r = acf.Acf.r in
    let rows = Array.make (Stdlib.max 0 (n - 1)) [||] in
    let vars = Array.make n 1.0 in
    let sums = Array.make n 0.0 in
    let v = ref 1.0 in
    for k = 1 to n - 1 do
      let prev = if k = 1 then [||] else rows.(k - 2) in
      let next = Array.make k 0.0 in
      (* The k-recursion is inherently sequential; only the O(k)
         inner products of each step fan out, and only once they are
         long enough to amortize the dispatch. *)
      (v :=
         match pool with
         | Some p when k >= par_cutoff -> dl_step_pool p ~r ~k ~prev ~next ~v_prev:!v
         | _ -> dl_step ~r ~k ~prev ~next ~v_prev:!v);
      rows.(k - 1) <- next;
      vars.(k) <- !v;
      sums.(k) <- Array.fold_left ( +. ) 0.0 next
    done;
    { rows; vars; stds = Array.map sqrt vars; sums }

  let make ~acf ~n = build ~pool:None ~par_cutoff:4096 ~acf ~n

  let make_pooled ?pool ?(par_cutoff = 4096) ~acf ~n () = build ~pool ~par_cutoff ~acf ~n

  let check_k t k name =
    if k < 0 || k >= length t then invalid_arg ("Hosking.Table." ^ name ^ ": bad index")

  let cond_var t k =
    check_k t k "cond_var";
    t.vars.(k)

  let innovation_std t k =
    check_k t k "innovation_std";
    t.stds.(k)

  let row_sum t k =
    check_k t k "row_sum";
    t.sums.(k)

  let cond_mean t xs k =
    check_k t k "cond_mean";
    if k = 0 then 0.0 else ar_dot t.rows.(k - 1) xs ~top:k ~k
end

(* Uniformly-partitioned overlap-save plan for the frozen AR(order)
   filter: the coefficient vector h.(t) = phi_(t+1) is cut into
   [ktot = ceil(order/s)] partitions of [s] lags. Partition 0
   (lags 1..min(s,order)) reaches into the block being generated, so
   it stays sequential; partitions q >= 1 only read pre-block history
   and are applied in the frequency domain — their spectra H_q
   (real FFT of the zero-padded partition, length 2s) are precomputed
   here, once per (table, order), and shared by every generator and
   domain. The partition size is a fixed constant so the stream for a
   given seed never depends on tuning. *)
module Fft_plan = struct
  let partition = 128

  type t = {
    order : int;
    s : int;  (* partition size (lags per partition) *)
    ktot : int;  (* ceil (order / s) *)
    seq_k : int;  (* sequential lags per slot, min (s, order) *)
    rplan : Fft.Real.plan;  (* real transforms of length 2s *)
    hre : float array;  (* Re H_q at (q-1)*(s+1) + bin, q = 1..ktot-1 *)
    him : float array;
  }

  let order t = t.order
  let partition_size t = t.s

  let make ~table ~order =
    if order < 1 || order >= Table.length table then
      invalid_arg "Hosking.Fft_plan.make: order outside [1, table length)";
    let s = partition in
    let ktot = (order + s - 1) / s in
    let rplan = Fft.Real.plan ~n:(2 * s) in
    let row = table.Table.rows.(order - 1) in
    let pad = Array.make (2 * s) 0.0 in
    let np = Stdlib.max 0 (ktot - 1) in
    let stride = s + 1 in
    let hre = Array.make (Stdlib.max 1 (np * stride)) 0.0 in
    let him = Array.make (Stdlib.max 1 (np * stride)) 0.0 in
    let re = Array.make stride 0.0 and im = Array.make stride 0.0 in
    for qi = 0 to np - 1 do
      let q = qi + 1 in
      Array.fill pad 0 (2 * s) 0.0;
      for tt = 0 to s - 1 do
        let lag = (q * s) + tt in
        (* h_q.(tt) = phi_(q*s + tt + 1) = row.(q*s + tt) *)
        if lag < order then pad.(tt) <- row.(lag)
      done;
      Fft.Real.forward rplan pad ~off:0 ~re ~im;
      Array.blit re 0 hre (qi * stride) stride;
      Array.blit im 0 him (qi * stride) stride
    done;
    { order; s; ktot; seq_k = Stdlib.min s order; rplan; hre; him }
end

(* Streaming generator state. Two kernels share the module:

   - [Seq]: double-buffered ring — value k is written at both
     [k mod order] and [k mod order + order], so the last [order]
     values are always contiguous, ending at
     [((k-1) mod order) + order], and the window feeds [ar_dot]
     directly. Bit-identical to the historical per-slot path (or its
     relaxed-dot variant).

   - [Fft]: overlap-save over an {!Fft_plan} — the stream advances in
     blocks of [s] slots; the contribution of all lags > s to every
     in-block position comes from one inverse real FFT over the
     accumulated partition spectra, and only lags <= s stay
     sequential, cutting the per-slot cost from O(order) to
     O(order/s + log s) + s amortized. Seed-incompatible with the
     other kernels by design (the FFT reassociates the sums);
     statistically gated. *)
module Block = struct
  type fft_state = {
    plan : Fft_plan.t;
    hl : int;  (* history samples kept in [win]: ktot * s *)
    win : float array;  (* length hl + s: history ++ block in progress *)
    dlre : float array;  (* pair-block spectrum delay line, flat: *)
    dlim : float array;  (* slot * (s+1) + bin, ktot-1 slots *)
    mutable kp : int;  (* samples produced (always a multiple of s) *)
  }

  (* Per-domain scratch shared by every FFT-kernel generator: each of
     these arrays is fully rewritten on every use and nothing read
     from them survives one [produce]/[rebuild_delay] call, so no
     stream state lives here. Sharing them across the generators one
     domain services keeps ~7 kB of otherwise-cold arrays out of each
     source's per-visit working set — at fleet sizes where N per-source
     states outgrow the cache, reloading that scratch was pure memory
     traffic. Keyed by partition size; [qbase] is regrown if a larger
     partition count appears. *)
  type fft_scratch = {
    gbuf : float array;  (* s innovations per block *)
    accre : float array;  (* accumulated partition spectra, s+1 bins *)
    accim : float array;
    sre : float array;  (* pair-FFT scratch spectrum, s+1 bins *)
    sim : float array;
    hbuf : float array;  (* inverse-FFT output, 2s samples *)
    qbase : int array;  (* per-partition delay-line offsets *)
  }

  let fft_scratch_key : (int, fft_scratch) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 4)

  let fft_scratch_for ~s ~np =
    let tbl = Domain.DLS.get fft_scratch_key in
    match Hashtbl.find_opt tbl s with
    | Some sc when Array.length sc.qbase >= np -> sc
    | _ ->
      let sc =
        {
          gbuf = Array.make s 0.0;
          accre = Array.make (s + 1) 0.0;
          accim = Array.make (s + 1) 0.0;
          sre = Array.make (s + 1) 0.0;
          sim = Array.make (s + 1) 0.0;
          hbuf = Array.make (2 * s) 0.0;
          qbase = Array.make (Stdlib.max 1 np) 0;
        }
      in
      Hashtbl.replace tbl s sc;
      sc

  type impl =
    | Seq of { ring : float array; relaxed : bool }
    | Fft_os of fft_state

  type t = {
    table : Table.t;
    order : int;
    impl : impl;
    mutable k : int;  (* values served to the caller so far *)
    mutable scratch : float array;  (* batched innovations, grown on demand *)
  }

  let check_order ~who ~table ~order =
    if order < 1 || order >= Table.length table then
      invalid_arg (Printf.sprintf "Hosking.Block.%s: order outside [1, table length)" who)

  let create ?(relaxed = false) ?fft_plan ~table ~order () =
    check_order ~who:"create" ~table ~order;
    let impl =
      match fft_plan with
      | None -> Seq { ring = Array.make (2 * order) 0.0; relaxed }
      | Some _ when relaxed ->
          invalid_arg "Hosking.Block.create: relaxed and fft_plan are mutually exclusive"
      | Some plan ->
          if Fft_plan.order plan <> order then
            invalid_arg
              (Printf.sprintf "Hosking.Block.create: plan order %d, requested order %d"
                 (Fft_plan.order plan) order);
          let s = plan.Fft_plan.s in
          let hl = plan.Fft_plan.ktot * s in
          let dl = Stdlib.max 0 (plan.Fft_plan.ktot - 1) in
          Fft_os
            {
              plan;
              hl;
              win = Array.make (hl + s) 0.0;
              dlre = Array.make (Stdlib.max 1 (dl * (s + 1))) 0.0;
              dlim = Array.make (Stdlib.max 1 (dl * (s + 1))) 0.0;
              kp = 0;
            }
    in
    { table; order; impl; k = 0; scratch = [||] }

  let generated t = t.k

  (* The innovations are independent of the generated values, so one
     [Rng.fill_gaussian] batch replaces [len] per-slot boxed calls —
     the same deviate sequence, read unboxed from a float array. The
     write position [p = k mod order] is carried incrementally and
     the frozen AR row/std are hoisted, so the steady-state slot cost
     is the [ar_dot] chain plus three stores. *)
  let fill_seq t ~ring ~relaxed rng buf ~off ~len =
    if Array.length t.scratch < len then t.scratch <- Array.make len 0.0;
    let g = t.scratch in
    Rng.fill_gaussian rng g ~off:0 ~len;
    let order = t.order in
    let rows = t.table.Table.rows in
    let stds = t.table.Table.stds in
    let frozen_row = if Array.length rows >= order then Array.unsafe_get rows (order - 1) else [||] in
    let frozen_std = Array.unsafe_get stds order in
    let k = ref t.k in
    let p = ref (t.k mod order) in
    for i = 0 to len - 1 do
      let kc = !k in
      let pp = !p in
      let m =
        if kc >= order then
          let top = if pp = 0 then 2 * order else pp + order in
          if relaxed then ar_dot_relaxed frozen_row ring ~top ~k:order
          else ar_dot frozen_row ring ~top ~k:order
        else if kc = 0 then 0.0
        else
          (* pre-steady-state: pp = kc, so the window top is kc + order *)
          let row = Array.unsafe_get rows (kc - 1) in
          if relaxed then ar_dot_relaxed row ring ~top:(pp + order) ~k:kc
          else ar_dot row ring ~top:(pp + order) ~k:kc
      in
      let std = if kc >= order then frozen_std else Array.unsafe_get stds kc in
      let x = m +. (std *. Array.unsafe_get g i) in
      Array.unsafe_set ring pp x;
      Array.unsafe_set ring (pp + order) x;
      Array.unsafe_set buf (off + i) x;
      let pn = pp + 1 in
      p := if pn = order then 0 else pn;
      k := kc + 1
    done;
    t.k <- t.k + len

  (* --- FFT kernel ------------------------------------------------- *)

  (* [win] maps sample k to index [hl + k - kp] for the block in
     progress; completed history sits below [hl], the oldest retained
     sample being [kp - hl] (earlier entries are zero during warmup,
     which is exact: those lags do not exist yet). A pair block [a]
     is the 2s samples [a*s .. (a+2)*s); partition q of block
     r = kp/s consumes pair [r - q - 1], whose spectrum was computed
     when that pair completed, at the start of block [a + 2]. *)

  (* Produce the next [s] samples into [win.(hl .. hl+s-1)],
     consuming exactly [s] innovations — the RNG consumption pattern
     is therefore independent of how callers batch their pulls. *)
  let produce t st rng =
    let plan = st.plan in
    let s = plan.Fft_plan.s in
    let ktot = plan.Fft_plan.ktot in
    let sc = fft_scratch_for ~s ~np:(Stdlib.max 1 (ktot - 1)) in
    let hl = st.hl in
    let win = st.win in
    let r = st.kp / s in
    (* Retire the previous block into history. *)
    if r > 0 then Array.blit win s win 0 hl;
    (* Pair r-2 just completed: push its spectrum onto the delay
       line (overwriting the expired pair r-2-(ktot-1)). *)
    if ktot > 1 && r >= 2 then begin
      let stride = s + 1 in
      let slot = (r - 2) mod (ktot - 1) in
      Fft.Real.forward plan.Fft_plan.rplan win ~off:(hl - (2 * s)) ~re:sc.sre ~im:sc.sim;
      Array.blit sc.sre 0 st.dlre (slot * stride) stride;
      Array.blit sc.sim 0 st.dlim (slot * stride) stride
    end;
    let fft_ready = ktot > 1 && r >= ktot in
    if fft_ready then begin
      (* Accumulate sum_q H_q * Z_(r-q-1) bin-major with register
         accumulators and invert once: hbuf entries s-1 .. 2s-2 are
         the pre-block contributions to the s in-block positions (the
         aliased prefix is discarded). *)
      let stride = s + 1 in
      let np = ktot - 1 in
      let qb = sc.qbase in
      for q = 1 to np do
        qb.(q - 1) <- (r - q - 1) mod np * stride
      done;
      let hr = plan.Fft_plan.hre and hi = plan.Fft_plan.him in
      let dlr = st.dlre and dli = st.dlim in
      for b = 0 to s do
        let ar = ref 0.0 and ai = ref 0.0 in
        for qi = 0 to np - 1 do
          let hb = (qi * stride) + b in
          let zb = Array.unsafe_get qb qi + b in
          let hrb = Array.unsafe_get hr hb and hib = Array.unsafe_get hi hb in
          let zrb = Array.unsafe_get dlr zb and zib = Array.unsafe_get dli zb in
          ar := !ar +. ((hrb *. zrb) -. (hib *. zib));
          ai := !ai +. ((hrb *. zib) +. (hib *. zrb))
        done;
        Array.unsafe_set sc.accre b !ar;
        Array.unsafe_set sc.accim b !ai
      done;
      Fft.Real.inverse plan.Fft_plan.rplan ~re:sc.accre ~im:sc.accim sc.hbuf ~off:0
    end;
    let order = t.order in
    let rows = t.table.Table.rows in
    let stds = t.table.Table.stds in
    let frozen_row = Array.unsafe_get rows (order - 1) in
    let frozen_std = Array.unsafe_get stds order in
    let seq_k = plan.Fft_plan.seq_k in
    let g = sc.gbuf in
    Rng.fill_gaussian rng g ~off:0 ~len:s;
    let kp = st.kp in
    let hbuf = sc.hbuf in
    for i = 0 to s - 1 do
      let kc = kp + i in
      let top = hl + i in
      let m =
        if fft_ready then
          hbuf.(s - 1 + i) +. ar_dot_relaxed frozen_row win ~top ~k:seq_k
        else if kc >= order then ar_dot_relaxed frozen_row win ~top ~k:order
        else if kc = 0 then 0.0
        else ar_dot_relaxed (Array.unsafe_get rows (kc - 1)) win ~top ~k:kc
      in
      let std = if kc >= order then frozen_std else Array.unsafe_get stds kc in
      win.(top) <- m +. (std *. Array.unsafe_get g i)
    done;
    st.kp <- kp + s

  let fill_fft t st rng buf ~off ~len =
    let s = st.plan.Fft_plan.s in
    let off = ref off and left = ref len in
    while !left > 0 do
      if t.k = st.kp then produce t st rng;
      (* Unserved tail of the current block: win.(hl + k - (kp - s)). *)
      let lo = st.hl + s - (st.kp - t.k) in
      let chunk = Stdlib.min !left (st.kp - t.k) in
      Array.blit st.win lo buf !off chunk;
      t.k <- t.k + chunk;
      off := !off + chunk;
      left := !left - chunk
    done

  let fill t rng buf ~off ~len =
    if len < 0 || off < 0 || off + len > Array.length buf then
      invalid_arg "Hosking.Block.fill: range outside the buffer";
    match t.impl with
    | Seq { ring; relaxed } -> fill_seq t ~ring ~relaxed rng buf ~off ~len
    | Fft_os st -> fill_fft t st rng buf ~off ~len

  (* Checkpoint state is the window plus the position counters —
     O(order), never O(horizon). The coefficient table, the partition
     spectra, and the pair-spectrum delay line are all re-derived on
     resume (the delay line is a pure function of [win]), so
     snapshots stay layout-independent; [scratch] is pure scratch. *)
  let save t w =
    let module W = Ss_checkpoint.W in
    match t.impl with
    | Seq { ring; _ } ->
        W.tag w "hosking-block";
        W.int w t.order;
        W.int w t.k;
        W.float_array w ring
    | Fft_os st ->
        W.tag w "hosking-block-fft";
        W.int w t.order;
        W.int w st.plan.Fft_plan.s;
        W.int w st.kp;
        W.int w t.k;
        W.float_array w st.win

  (* Recompute the delay-line spectra from the time-domain window:
     at block r = kp/s the live pairs are r-2 .. r-ktot; pair r-2 is
     pushed by the next [produce], the rest are recoverable from
     [win] (pair a starts at win index a*s + hl + s - kp, in-range
     for every live pair). *)
  let rebuild_delay st =
    let plan = st.plan in
    let s = plan.Fft_plan.s in
    let ktot = plan.Fft_plan.ktot in
    if ktot > 1 then begin
      let sc = fft_scratch_for ~s ~np:(ktot - 1) in
      let stride = s + 1 in
      let r = st.kp / s in
      for a = Stdlib.max 0 (r - ktot) to r - 3 do
        let slot = a mod (ktot - 1) in
        Fft.Real.forward plan.Fft_plan.rplan st.win
          ~off:((a * s) + st.hl + s - st.kp)
          ~re:sc.sre ~im:sc.sim;
        Array.blit sc.sre 0 st.dlre (slot * stride) stride;
        Array.blit sc.sim 0 st.dlim (slot * stride) stride
      done
    end

  let restore t r =
    let module R = Ss_checkpoint.R in
    match t.impl with
    | Seq { ring; _ } ->
        R.tag r "hosking-block";
        let order = R.int r in
        if order <> t.order then
          raise
            (Ss_checkpoint.Corrupt
               (Printf.sprintf "hosking-block: checkpoint order %d, generator order %d" order
                  t.order));
        t.k <- R.int r;
        R.float_array_into r ring
    | Fft_os st ->
        R.tag r "hosking-block-fft";
        let order = R.int r in
        if order <> t.order then
          raise
            (Ss_checkpoint.Corrupt
               (Printf.sprintf "hosking-block-fft: checkpoint order %d, generator order %d"
                  order t.order));
        let s = R.int r in
        if s <> st.plan.Fft_plan.s then
          raise
            (Ss_checkpoint.Corrupt
               (Printf.sprintf "hosking-block-fft: checkpoint partition %d, plan partition %d"
                  s st.plan.Fft_plan.s));
        st.kp <- R.int r;
        t.k <- R.int r;
        R.float_array_into r st.win;
        rebuild_delay st
end

let generate_into table rng buf =
  let n = Array.length buf in
  if n > Table.length table then invalid_arg "Hosking.generate_into: buffer too long";
  for k = 0 to n - 1 do
    let m = Table.cond_mean table buf k in
    buf.(k) <- m +. (Table.innovation_std table k *. Rng.gaussian rng)
  done

let generate table rng =
  let buf = Array.make (Table.length table) 0.0 in
  generate_into table rng buf;
  buf

(* The streaming generators reuse one pair of coefficient buffers
   across Durbin–Levinson steps (row k only ever reads row k-1), so
   the recursion allocates O(n) once instead of a fresh O(k) array
   per step — the same arithmetic, so output on a fixed seed is
   unchanged. *)
let generate_stream ~acf ~n rng =
  if n <= 0 then invalid_arg "Hosking.generate_stream: n <= 0";
  let r = acf.Acf.r in
  let xs = Array.make n 0.0 in
  xs.(0) <- Rng.gaussian rng;
  let prev = ref (Array.make (Stdlib.max 1 (n - 1)) 0.0) in
  let next = ref (Array.make (Stdlib.max 1 (n - 1)) 0.0) in
  let v = ref 1.0 in
  for k = 1 to n - 1 do
    v := dl_step ~r ~k ~prev:!prev ~next:!next ~v_prev:!v;
    let t = !prev in
    prev := !next;
    next := t;
    let row = !prev in
    let m = ar_dot row xs ~top:k ~k in
    xs.(k) <- m +. (sqrt !v *. Rng.gaussian rng)
  done;
  xs

let generate_truncated ~acf ~n ~max_order rng =
  if n <= 0 then invalid_arg "Hosking.generate_truncated: n <= 0";
  if max_order < 1 then invalid_arg "Hosking.generate_truncated: max_order < 1";
  if n <= max_order then generate_stream ~acf ~n rng
  else begin
    let r = acf.Acf.r in
    let xs = Array.make n 0.0 in
    xs.(0) <- Rng.gaussian rng;
    let prev = ref (Array.make max_order 0.0) in
    let next = ref (Array.make max_order 0.0) in
    let v = ref 1.0 in
    for k = 1 to max_order do
      v := dl_step ~r ~k ~prev:!prev ~next:!next ~v_prev:!v;
      let t = !prev in
      prev := !next;
      next := t;
      let row = !prev in
      if k < n then xs.(k) <- ar_dot row xs ~top:k ~k +. (sqrt !v *. Rng.gaussian rng)
    done;
    (* Frozen AR(max_order) filter beyond the exact prefix. *)
    let row = !prev in
    let std = sqrt !v in
    for k = max_order + 1 to n - 1 do
      xs.(k) <- ar_dot row xs ~top:k ~k:max_order +. (std *. Rng.gaussian rng)
    done;
    xs
  end

module Rng = Ss_stats.Rng
module Pool = Ss_parallel.Pool

(* Durbin–Levinson step: given phi_{k-1,.} (in [prev], length k-1),
   v_{k-1} and r(.), produce phi_{k,.} into [next] (length k) and
   return v_k. Shared by the table builder and the streaming
   generator. *)
let check_phi ~k phi_kk =
  if Float.is_nan phi_kk || abs_float phi_kk >= 1.0 then
    invalid_arg
      (Printf.sprintf
         "Hosking: autocorrelation not positive definite at lag %d (phi=%g)" k phi_kk)

let dl_step ~r ~k ~prev ~next ~v_prev =
  let acc = ref (r k) in
  for j = 1 to k - 1 do
    acc := !acc -. (prev.(j - 1) *. r (k - j))
  done;
  let phi_kk = !acc /. v_prev in
  check_phi ~k phi_kk;
  next.(k - 1) <- phi_kk;
  for j = 1 to k - 1 do
    next.(j - 1) <- prev.(j - 1) -. (phi_kk *. prev.(k - j - 1))
  done;
  v_prev *. (1.0 -. (phi_kk *. phi_kk))

(* Pool-parallel variant of the step above. The chunk width is a
   fixed constant, never derived from the pool size: partial sums are
   per-chunk and combined in chunk order on the calling domain, so
   the floating-point result is identical for every domain count. *)
let dot_chunk = 2048

let dl_step_pool pool ~r ~k ~prev ~next ~v_prev =
  let terms = k - 1 in
  let chunks = (terms + dot_chunk - 1) / dot_chunk in
  let partials =
    Pool.run pool
      (Array.init chunks (fun c ->
           fun () ->
             let jlo = 1 + (c * dot_chunk) in
             let jhi = Stdlib.min terms (jlo + dot_chunk - 1) in
             let s = ref 0.0 in
             for j = jlo to jhi do
               s := !s +. (Array.unsafe_get prev (j - 1) *. r (k - j))
             done;
             !s))
  in
  let acc = ref (r k) in
  Array.iter (fun p -> acc := !acc -. p) partials;
  let phi_kk = !acc /. v_prev in
  check_phi ~k phi_kk;
  next.(k - 1) <- phi_kk;
  (* Elementwise update: chunking cannot change any value. *)
  Pool.parallel_for pool ~chunk:dot_chunk ~lo:1 ~hi:terms (fun j ->
      Array.unsafe_set next (j - 1)
        (Array.unsafe_get prev (j - 1) -. (phi_kk *. Array.unsafe_get prev (k - j - 1))));
  v_prev *. (1.0 -. (phi_kk *. phi_kk))

(* AR dot product sum_{j=1..k} row.(j-1) * win.(top - j), 4-way
   unrolled. A single accumulator carries the chain through the
   unrolled adds, so the floating-point summation order is exactly
   that of the naive left-to-right loop — the unrolling only removes
   loop overhead and exposes independent loads, it never reassociates
   the sum. This is what lets the block kernel stay bit-identical to
   the historical per-slot path. [win.(top - 1)] must be the most
   recent value and the window must be contiguous going back [k]
   entries; no bounds checks are performed. *)
let ar_dot row win ~top ~k =
  let s = ref 0.0 in
  let j = ref 1 in
  let limit = k - 3 in
  while !j <= limit do
    let j0 = !j in
    let s0 = !s +. (Array.unsafe_get row (j0 - 1) *. Array.unsafe_get win (top - j0)) in
    let s1 = s0 +. (Array.unsafe_get row j0 *. Array.unsafe_get win (top - j0 - 1)) in
    let s2 = s1 +. (Array.unsafe_get row (j0 + 1) *. Array.unsafe_get win (top - j0 - 2)) in
    s := s2 +. (Array.unsafe_get row (j0 + 2) *. Array.unsafe_get win (top - j0 - 3));
    j := j0 + 4
  done;
  while !j <= k do
    s := !s +. (Array.unsafe_get row (!j - 1) *. Array.unsafe_get win (top - !j));
    incr j
  done;
  !s

(* Fast-math variant of [ar_dot]: four independent accumulators give
   the compiler/CPU four parallel dependency chains, roughly doubling
   throughput on long rows — at the price of REASSOCIATING the sum,
   so the result differs from [ar_dot] in the last ulps and is only
   eligible for the opt-in relaxed precision tier (never the default
   paths, whose fixtures are bitwise). Same access pattern and
   contract as [ar_dot] otherwise. *)
let ar_dot_relaxed row win ~top ~k =
  let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
  let j = ref 1 in
  let limit = k - 3 in
  while !j <= limit do
    let j0 = !j in
    s0 := !s0 +. (Array.unsafe_get row (j0 - 1) *. Array.unsafe_get win (top - j0));
    s1 := !s1 +. (Array.unsafe_get row j0 *. Array.unsafe_get win (top - j0 - 1));
    s2 := !s2 +. (Array.unsafe_get row (j0 + 1) *. Array.unsafe_get win (top - j0 - 2));
    s3 := !s3 +. (Array.unsafe_get row (j0 + 2) *. Array.unsafe_get win (top - j0 - 3));
    j := j0 + 4
  done;
  let s = ref ((!s0 +. !s2) +. (!s1 +. !s3)) in
  while !j <= k do
    s := !s +. (Array.unsafe_get row (!j - 1) *. Array.unsafe_get win (top - !j));
    incr j
  done;
  !s

module Table = struct
  type t = {
    rows : float array array;  (* rows.(k-1) = [| phi_{k,1}; ...; phi_{k,k} |] *)
    vars : float array;  (* vars.(k) = v_k, v_0 = 1 *)
    stds : float array;  (* sqrt of vars *)
    sums : float array;  (* sums.(k) = sum_j phi_{k,j}, sums.(0) = 0 *)
  }

  let length t = Array.length t.vars

  let build ~pool ~par_cutoff ~acf ~n =
    if n <= 0 || n > 20_000 then invalid_arg "Hosking.Table.make: n outside [1, 20000]";
    if par_cutoff < 2 then invalid_arg "Hosking.Table.make: par_cutoff < 2";
    let r = acf.Acf.r in
    let rows = Array.make (Stdlib.max 0 (n - 1)) [||] in
    let vars = Array.make n 1.0 in
    let sums = Array.make n 0.0 in
    let v = ref 1.0 in
    for k = 1 to n - 1 do
      let prev = if k = 1 then [||] else rows.(k - 2) in
      let next = Array.make k 0.0 in
      (* The k-recursion is inherently sequential; only the O(k)
         inner products of each step fan out, and only once they are
         long enough to amortize the dispatch. *)
      (v :=
         match pool with
         | Some p when k >= par_cutoff -> dl_step_pool p ~r ~k ~prev ~next ~v_prev:!v
         | _ -> dl_step ~r ~k ~prev ~next ~v_prev:!v);
      rows.(k - 1) <- next;
      vars.(k) <- !v;
      sums.(k) <- Array.fold_left ( +. ) 0.0 next
    done;
    { rows; vars; stds = Array.map sqrt vars; sums }

  let make ~acf ~n = build ~pool:None ~par_cutoff:4096 ~acf ~n

  let make_pooled ?pool ?(par_cutoff = 4096) ~acf ~n () = build ~pool ~par_cutoff ~acf ~n

  let check_k t k name =
    if k < 0 || k >= length t then invalid_arg ("Hosking.Table." ^ name ^ ": bad index")

  let cond_var t k =
    check_k t k "cond_var";
    t.vars.(k)

  let innovation_std t k =
    check_k t k "innovation_std";
    t.stds.(k)

  let row_sum t k =
    check_k t k "row_sum";
    t.sums.(k)

  let cond_mean t xs k =
    check_k t k "cond_mean";
    if k = 0 then 0.0 else ar_dot t.rows.(k - 1) xs ~top:k ~k
end

(* Streaming generator state over a double-buffered ring: value k is
   written at both [k mod order] and [k mod order + order], so the
   last [order] values are always contiguous, ending at
   [((k-1) mod order) + order] — the per-slot [Array.blit] shift of
   the closure-based stream is gone, and the window feeds [ar_dot]
   directly. *)
module Block = struct
  type t = {
    table : Table.t;
    order : int;
    relaxed : bool;  (* steady-state dot kernel: reassociated 4-acc sum *)
    ring : float array;  (* length 2 * order *)
    mutable k : int;  (* values generated so far *)
    mutable scratch : float array;  (* batched innovations, grown on demand *)
  }

  let create ?(relaxed = false) ~table ~order () =
    if order < 1 || order >= Table.length table then
      invalid_arg "Hosking.Block.create: order outside [1, table length)";
    { table; order; relaxed; ring = Array.make (2 * order) 0.0; k = 0; scratch = [||] }

  let generated t = t.k

  (* The innovations are independent of the generated values, so one
     [Rng.fill_gaussian] batch replaces [len] per-slot boxed calls —
     the same deviate sequence, read unboxed from a float array. The
     write position [p = k mod order] is carried incrementally and
     the frozen AR row/std are hoisted, so the steady-state slot cost
     is the [ar_dot] chain plus three stores. *)
  let fill t rng buf ~off ~len =
    if len < 0 || off < 0 || off + len > Array.length buf then
      invalid_arg "Hosking.Block.fill: range outside the buffer";
    if Array.length t.scratch < len then t.scratch <- Array.make len 0.0;
    let g = t.scratch in
    Rng.fill_gaussian rng g ~off:0 ~len;
    let order = t.order in
    let ring = t.ring in
    let rows = t.table.Table.rows in
    let stds = t.table.Table.stds in
    let frozen_row = if Array.length rows >= order then Array.unsafe_get rows (order - 1) else [||] in
    let frozen_std = Array.unsafe_get stds order in
    let relaxed = t.relaxed in
    let k = ref t.k in
    let p = ref (t.k mod order) in
    for i = 0 to len - 1 do
      let kc = !k in
      let pp = !p in
      let m =
        if kc >= order then
          let top = if pp = 0 then 2 * order else pp + order in
          if relaxed then ar_dot_relaxed frozen_row ring ~top ~k:order
          else ar_dot frozen_row ring ~top ~k:order
        else if kc = 0 then 0.0
        else
          (* pre-steady-state: pp = kc, so the window top is kc + order *)
          let row = Array.unsafe_get rows (kc - 1) in
          if relaxed then ar_dot_relaxed row ring ~top:(pp + order) ~k:kc
          else ar_dot row ring ~top:(pp + order) ~k:kc
      in
      let std = if kc >= order then frozen_std else Array.unsafe_get stds kc in
      let x = m +. (std *. Array.unsafe_get g i) in
      Array.unsafe_set ring pp x;
      Array.unsafe_set ring (pp + order) x;
      Array.unsafe_set buf (off + i) x;
      let pn = pp + 1 in
      p := if pn = order then 0 else pn;
      k := kc + 1
    done;
    t.k <- t.k + len

  (* Checkpoint state is the ring window plus the position counter —
     O(order), never O(horizon). The coefficient table is re-derived
     from the descriptor on resume; [scratch] is pure scratch. *)
  let save t w =
    let module W = Ss_checkpoint.W in
    W.tag w "hosking-block";
    W.int w t.order;
    W.int w t.k;
    W.float_array w t.ring

  let restore t r =
    let module R = Ss_checkpoint.R in
    R.tag r "hosking-block";
    let order = R.int r in
    if order <> t.order then
      raise
        (Ss_checkpoint.Corrupt
           (Printf.sprintf "hosking-block: checkpoint order %d, generator order %d" order
              t.order));
    t.k <- R.int r;
    R.float_array_into r t.ring
end

let generate_into table rng buf =
  let n = Array.length buf in
  if n > Table.length table then invalid_arg "Hosking.generate_into: buffer too long";
  for k = 0 to n - 1 do
    let m = Table.cond_mean table buf k in
    buf.(k) <- m +. (Table.innovation_std table k *. Rng.gaussian rng)
  done

let generate table rng =
  let buf = Array.make (Table.length table) 0.0 in
  generate_into table rng buf;
  buf

(* The streaming generators reuse one pair of coefficient buffers
   across Durbin–Levinson steps (row k only ever reads row k-1), so
   the recursion allocates O(n) once instead of a fresh O(k) array
   per step — the same arithmetic, so output on a fixed seed is
   unchanged. *)
let generate_stream ~acf ~n rng =
  if n <= 0 then invalid_arg "Hosking.generate_stream: n <= 0";
  let r = acf.Acf.r in
  let xs = Array.make n 0.0 in
  xs.(0) <- Rng.gaussian rng;
  let prev = ref (Array.make (Stdlib.max 1 (n - 1)) 0.0) in
  let next = ref (Array.make (Stdlib.max 1 (n - 1)) 0.0) in
  let v = ref 1.0 in
  for k = 1 to n - 1 do
    v := dl_step ~r ~k ~prev:!prev ~next:!next ~v_prev:!v;
    let t = !prev in
    prev := !next;
    next := t;
    let row = !prev in
    let m = ar_dot row xs ~top:k ~k in
    xs.(k) <- m +. (sqrt !v *. Rng.gaussian rng)
  done;
  xs

let generate_truncated ~acf ~n ~max_order rng =
  if n <= 0 then invalid_arg "Hosking.generate_truncated: n <= 0";
  if max_order < 1 then invalid_arg "Hosking.generate_truncated: max_order < 1";
  if n <= max_order then generate_stream ~acf ~n rng
  else begin
    let r = acf.Acf.r in
    let xs = Array.make n 0.0 in
    xs.(0) <- Rng.gaussian rng;
    let prev = ref (Array.make max_order 0.0) in
    let next = ref (Array.make max_order 0.0) in
    let v = ref 1.0 in
    for k = 1 to max_order do
      v := dl_step ~r ~k ~prev:!prev ~next:!next ~v_prev:!v;
      let t = !prev in
      prev := !next;
      next := t;
      let row = !prev in
      if k < n then xs.(k) <- ar_dot row xs ~top:k ~k +. (sqrt !v *. Rng.gaussian rng)
    done;
    (* Frozen AR(max_order) filter beyond the exact prefix. *)
    let row = !prev in
    let std = sqrt !v in
    for k = max_order + 1 to n - 1 do
      xs.(k) <- ar_dot row xs ~top:k ~k:max_order +. (std *. Rng.gaussian rng)
    done;
    xs
  end

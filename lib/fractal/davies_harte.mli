(** Davies–Harte circulant-embedding sampler.

    Generates exact stationary Gaussian paths with a prescribed
    autocorrelation in O(n log n) by embedding the covariance
    sequence in a circulant matrix and diagonalizing it with the FFT.
    Used for the long "empirical" reference traces (10^5+ frames)
    where Hosking's quadratic cost is prohibitive; cross-validated
    against Hosking in the test suite and in the [abl-gen] ablation
    bench.

    The embedding is valid when all circulant eigenvalues are
    non-negative — guaranteed for FGN. For arbitrary models the plan
    applies the standard approximate-circulant rule: negative
    eigenvalues are clipped to zero when their total mass is below
    1e-4 of the positive mass (the induced covariance error is
    bounded by that ratio); anything larger raises. *)

type plan
(** Precomputed eigenvalue data for a given autocorrelation and
    length; reusable across paths. *)

val plan : acf:Acf.t -> n:int -> plan
(** Build a plan for paths of length [n].
    @raise Invalid_argument if [n <= 0] or the circulant embedding
    has an eigenvalue below [-1e-6 * max eigenvalue] (the
    autocorrelation is not embeddable at this length). *)

val plan_length : plan -> int

val min_eigenvalue : plan -> float
(** Smallest circulant eigenvalue before clipping — a diagnostic for
    embeddability. *)

val generate : plan -> Ss_stats.Rng.t -> float array
(** Sample a zero-mean unit-variance Gaussian path of length
    [plan_length]. *)

val generate_into : plan -> Ss_stats.Rng.t -> float array -> unit
(** Sample into the first [plan_length] entries of an existing buffer
    — bit-identical to {!generate} on the same generator state, for
    replication loops that reuse one path buffer. The plan itself is
    never mutated, so one plan can serve many streams.
    @raise Invalid_argument if the buffer is shorter than
    [plan_length]. *)

(** Hurst-parameter estimation (paper Section 3.2, Step 1).

    Three estimators: variance–time plots (Fig 3), R/S "pox" analysis
    (Fig 4) and, as a cross-check, the low-frequency periodogram
    slope. Each returns both the point estimate and the underlying
    plot points + least-squares line so the figures can be
    regenerated exactly as the paper draws them. *)

type estimate = {
  h : float;  (** estimated Hurst parameter *)
  fit : Ss_stats.Regression.fit;  (** the log-log least-squares line *)
  points : (float * float) list;
      (** the log10-log10 plot points the line was fitted through *)
}

val variance_time :
  ?pool:Ss_parallel.Pool.t -> ?min_m:int -> ?max_m:int -> ?levels:int -> float array -> estimate
(** [variance_time x] computes [log10 var(X^(m))] against [log10 m]
    for [levels] (default 20) aggregation sizes log-spaced between
    [min_m] (default 10 — the paper ignores small [m]) and [max_m]
    (default [n/10]); the slope [-beta] gives [H = 1 - beta/2].
    With [pool] the aggregation-size grid cells run as independent
    domain jobs; results are gathered in grid order, so the estimate
    is identical for any domain count.
    @raise Invalid_argument if the series is shorter than
    [10 * min_m] or parameters are inconsistent. *)

val rs :
  ?pool:Ss_parallel.Pool.t -> ?min_n:int -> ?levels:int -> ?blocks:int -> float array -> estimate
(** [rs x] is the rescaled-adjusted-range analysis: for each block
    size [n] (log-spaced from [min_n], default 8, up to the series
    length) and each of [blocks] (default 10) non-overlapping
    starting points, compute R(t,n)/S(t,n) per paper Eq (8) and plot
    [log10 (R/S)] against [log10 n]; the slope estimates H directly
    (Eq 9). Blocks with zero sample variance are skipped. [pool]
    runs the block-size grid cells as domain jobs without changing
    the estimate.
    @raise Invalid_argument on degenerate input. *)

val periodogram : ?low_fraction:float -> float array -> estimate
(** Low-frequency periodogram regression: [H = (1 - slope)/2]. *)

module Rng = Ss_stats.Rng
module Fft = Ss_fft.Fft

type plan = {
  n : int;  (* requested path length *)
  m : int;  (* half-size of the circulant, a power of two >= n *)
  sqrt_lambda : float array;  (* sqrt of the 2m circulant eigenvalues *)
  min_eig : float;
}

let plan ~acf ~n =
  if n <= 0 then invalid_arg "Davies_harte.plan: n <= 0";
  let m = Fft.next_pow2 n in
  let two_m = 2 * m in
  (* Circulant first row: gamma(0..m), then mirrored gamma(m-1..1). *)
  let re = Array.make two_m 0.0 in
  let im = Array.make two_m 0.0 in
  for j = 0 to m do
    re.(j) <- acf.Acf.r j
  done;
  for j = m + 1 to two_m - 1 do
    re.(j) <- acf.Acf.r (two_m - j)
  done;
  Fft.forward re im;
  (* Eigenvalues are the (real) DFT of the symmetric first row. The
     standard approximate-circulant criterion: clip negative
     eigenvalues to zero provided the clipped mass is a negligible
     fraction of the total — the covariance error of the generated
     path is bounded by that ratio. *)
  let min_eig = Array.fold_left Stdlib.min re.(0) re in
  let neg_mass = Array.fold_left (fun a l -> if l < 0.0 then a -. l else a) 0.0 re in
  let pos_mass = Array.fold_left (fun a l -> if l > 0.0 then a +. l else a) 0.0 re in
  if neg_mass > 1e-4 *. pos_mass then
    invalid_arg
      (Printf.sprintf
         "Davies_harte.plan: embedding fails (min eigenvalue %g, clipped mass ratio %.2g); autocorrelation not embeddable at n=%d"
         min_eig (neg_mass /. pos_mass) n);
  let sqrt_lambda = Array.map (fun l -> sqrt (Stdlib.max l 0.0)) re in
  { n; m; sqrt_lambda; min_eig }

let plan_length p = p.n
let min_eigenvalue p = p.min_eig

let generate_into p rng dst =
  if Array.length dst < p.n then
    invalid_arg "Davies_harte.generate_into: buffer shorter than the plan";
  let two_m = 2 * p.m in
  let scale = 1.0 /. sqrt (float_of_int two_m) in
  let re = Array.make two_m 0.0 in
  let im = Array.make two_m 0.0 in
  (* Hermitian random spectrum: a_0, a_m real; a_k = conj(a_{2m-k}). *)
  re.(0) <- p.sqrt_lambda.(0) *. Rng.gaussian rng *. scale;
  re.(p.m) <- p.sqrt_lambda.(p.m) *. Rng.gaussian rng *. scale;
  let half = scale /. sqrt 2.0 in
  for k = 1 to p.m - 1 do
    let u = Rng.gaussian rng and v = Rng.gaussian rng in
    let s = p.sqrt_lambda.(k) *. half in
    re.(k) <- s *. u;
    im.(k) <- s *. v;
    re.(two_m - k) <- s *. u;
    im.(two_m - k) <- -.s *. v
  done;
  Fft.forward re im;
  Array.blit re 0 dst 0 p.n

let generate p rng =
  let dst = Array.make p.n 0.0 in
  generate_into p rng dst;
  dst

module D = Ss_stats.Descriptive
module T = Ss_stats.Timeseries
module Reg = Ss_stats.Regression

type estimate = {
  h : float;
  fit : Reg.fit;
  points : (float * float) list;
}

(* Log-spaced integer grid from lo to hi with ~levels points,
   deduplicated and sorted. *)
let log_grid ~lo ~hi ~levels =
  if lo < 1 || hi < lo || levels < 2 then invalid_arg "Hurst: bad grid parameters";
  let ratio = log (float_of_int hi /. float_of_int lo) /. float_of_int (levels - 1) in
  List.init levels (fun i ->
      int_of_float (Float.round (float_of_int lo *. exp (ratio *. float_of_int i))))
  |> List.sort_uniq compare
  |> List.filter (fun m -> m >= lo && m <= hi)

(* Each grid cell is an independent pure computation, so with a pool
   the cells become jobs; results are gathered in grid order, which
   keeps the estimate identical for any domain count (including the
   sequential pool-less path). *)
let grid_cells ?pool grid f =
  let cells = Array.of_list grid in
  let results =
    match pool with
    | None -> Array.map f cells
    | Some p -> Ss_parallel.Pool.map p f cells
  in
  List.filter_map Fun.id (Array.to_list results)

let variance_time ?pool ?(min_m = 10) ?max_m ?(levels = 20) x =
  let n = Array.length x in
  if n < 10 * min_m then invalid_arg "Hurst.variance_time: series too short";
  let max_m = match max_m with Some m -> m | None -> n / 10 in
  if max_m <= min_m then invalid_arg "Hurst.variance_time: max_m <= min_m";
  let grid = log_grid ~lo:min_m ~hi:max_m ~levels in
  let points =
    grid_cells ?pool grid (fun m ->
        let agg = T.aggregate x ~m in
        if Array.length agg < 2 then None
        else begin
          let v = D.variance agg in
          if v <= 0.0 then None
          else Some (log10 (float_of_int m), log10 v)
        end)
  in
  let fit = Reg.ols points in
  let beta = -.fit.Reg.slope in
  { h = 1.0 -. (beta /. 2.0); fit; points }

(* R/S statistic of the block x.(t0 .. t0+len-1), per paper Eq (8)
   with W_k the mean-adjusted partial sums. *)
let rs_statistic x ~t0 ~len =
  let mean =
    let s = ref 0.0 in
    for i = t0 to t0 + len - 1 do
      s := !s +. x.(i)
    done;
    !s /. float_of_int len
  in
  let var =
    let s = ref 0.0 in
    for i = t0 to t0 + len - 1 do
      let d = x.(i) -. mean in
      s := !s +. (d *. d)
    done;
    !s /. float_of_int len
  in
  if var <= 0.0 then None
  else begin
    let w = ref 0.0 in
    let wmax = ref 0.0 and wmin = ref 0.0 in
    for i = t0 to t0 + len - 1 do
      w := !w +. (x.(i) -. mean);
      if !w > !wmax then wmax := !w;
      if !w < !wmin then wmin := !w
    done;
    Some ((!wmax -. !wmin) /. sqrt var)
  end

let rs ?pool ?(min_n = 8) ?(levels = 20) ?(blocks = 10) x =
  let total = Array.length x in
  if total < 4 * min_n then invalid_arg "Hurst.rs: series too short";
  let grid = log_grid ~lo:min_n ~hi:total ~levels in
  let points =
    grid_cells ?pool grid (fun len ->
        (* Non-overlapping starting points t_i = i * total/blocks with
           (t_i - 1) + len <= total, as in the paper. *)
        let stride = Stdlib.max 1 (total / blocks) in
        let rec starts t acc =
          if t + len > total then List.rev acc else starts (t + stride) (t :: acc)
        in
        let pts =
          starts 0 []
          |> List.filter_map (fun t0 ->
                 match rs_statistic x ~t0 ~len with
                 | Some r when r > 0.0 -> Some (log10 (float_of_int len), log10 r)
                 | _ -> None)
        in
        Some pts)
    |> List.concat
  in
  if List.length points < 2 then invalid_arg "Hurst.rs: degenerate input";
  let fit = Reg.ols points in
  { h = fit.Reg.slope; fit; points }

let periodogram ?low_fraction x =
  let h, fit = Ss_fft.Periodogram.hurst_fit ?low_fraction x in
  let points =
    Ss_fft.Periodogram.compute x |> Array.to_list
    |> List.filter (fun (_, p) -> p > 0.0)
    |> List.map (fun (l, p) -> (log10 l, log10 p))
  in
  { h; fit; points }

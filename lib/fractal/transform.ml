module Dist = Ss_stats.Dist
module Special = Ss_stats.Special
module Quad = Ss_stats.Quadrature
module D = Ss_stats.Descriptive

type t = {
  dist : Dist.t;
  h : float -> float;
}

let clamp_gauss x = if x > 8.0 then 8.0 else if x < -8.0 then -8.0 else x

let make_with_cdf cdf dist =
  let h x =
    let p = cdf (clamp_gauss x) in
    (* normal_cdf(+-8) is strictly inside (0,1) in double precision,
       so the quantile domain is respected (the relaxed CDF's tail
       term is likewise strictly positive at |x| = 8). *)
    dist.Dist.quantile p
  in
  { dist; h }

let make dist = make_with_cdf Special.normal_cdf dist

(* The relaxed tier rebuilds [h] over the erf-free CDF; same clamp,
   same quantile, so outputs differ by at most ~7.5e-8 in probability
   before inversion. *)
let relax t = make_with_cdf Special.normal_cdf_relaxed t.dist

let dist t = t.dist
let apply1 t x = t.h x
let apply t xs = Array.map t.h xs

let quad_n = 128

let moments t =
  let mu = Quad.gaussian_expectation ~n:quad_n t.h in
  let m2 = Quad.gaussian_expectation ~n:quad_n (fun x -> t.h x *. t.h x) in
  let hx = Quad.gaussian_expectation ~n:quad_n (fun x -> t.h x *. x) in
  (mu, m2 -. (mu *. mu), hx)

let attenuation t =
  let _, var, hx = moments t in
  if var <= 0.0 then invalid_arg "Transform.attenuation: degenerate transform";
  let a = hx *. hx /. var in
  (* Schwarz guarantees a <= 1; clip quadrature rounding. *)
  Stdlib.min a 1.0

let attenuation_measured ~acf ~n ~lags rng t =
  if lags = [] then invalid_arg "Transform.attenuation_measured: no lags";
  List.iter
    (fun k ->
      if k <= 0 || k >= n then invalid_arg "Transform.attenuation_measured: lag out of range")
    lags;
  let x = Hosking.generate_stream ~acf ~n rng in
  let y = apply t x in
  let max_lag = List.fold_left Stdlib.max 0 lags in
  let rx = D.acf x ~max_lag in
  let ry = D.acf y ~max_lag in
  let ratios =
    List.filter_map
      (fun k -> if abs_float rx.(k) > 1e-6 then Some (ry.(k) /. rx.(k)) else None)
      lags
  in
  if ratios = [] then invalid_arg "Transform.attenuation_measured: background ACF vanishes at all lags";
  List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)

(* Normalized probabilists' Hermite polynomial he_k = He_k / sqrt(k!),
   by stable recurrence he_{k+1} = (x he_k - sqrt(k) he_{k-1}) / sqrt(k+1). *)
let hermite_normalized k x =
  if k = 0 then 1.0
  else begin
    let prev = ref 1.0 in
    let cur = ref x in
    for j = 1 to k - 1 do
      let fj = float_of_int j in
      let next = ((x *. !cur) -. (sqrt fj *. !prev)) /. sqrt (fj +. 1.0) in
      prev := !cur;
      cur := next
    done;
    !cur
  end

let hermite_coefficient t ~k =
  if k < 0 || k > 64 then invalid_arg "Transform.hermite_coefficient: k outside [0,64]";
  Quad.gaussian_expectation ~n:quad_n (fun x -> t.h x *. hermite_normalized k x)

(* Squared Hermite coefficients c_1^2 .. c_terms^2 over Var h. *)
let hermite_spectrum t ~terms =
  let _, var, _ = moments t in
  if var <= 0.0 then invalid_arg "Transform: degenerate transform";
  Array.init terms (fun j ->
      let c = hermite_coefficient t ~k:(j + 1) in
      c *. c /. var)

let eval_response spectrum r =
  let acc = ref 0.0 and rp = ref 1.0 in
  Array.iter
    (fun c2 ->
      rp := !rp *. r;
      acc := !acc +. (c2 *. !rp))
    spectrum;
  !acc

let predicted_rh t ~r ~terms =
  if terms < 1 then invalid_arg "Transform.predicted_rh: terms < 1";
  eval_response (hermite_spectrum t ~terms) r

let response ?(terms = 24) t =
  let spectrum = hermite_spectrum t ~terms in
  fun r -> eval_response spectrum r

let invert_response rho ~target =
  let lo0 = -0.999 and hi0 = 0.99999 in
  let flo = rho lo0 and fhi = rho hi0 in
  if target <= flo then lo0
  else if target >= fhi then hi0
  else begin
    let lo = ref lo0 and hi = ref hi0 in
    for _ = 1 to 60 do
      let mid = ( !lo +. !hi ) /. 2.0 in
      if rho mid < target then lo := mid else hi := mid
    done;
    (!lo +. !hi) /. 2.0
  end

let background_acf_for ?terms t ~target =
  let rho = response ?terms t in
  Acf.memoize
    (Acf.of_fun
       ~name:(Printf.sprintf "hermite-inv(%s)" target.Acf.name)
       (fun k -> invert_response rho ~target:(target.Acf.r k)))

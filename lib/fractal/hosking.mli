(** Hosking's exact method for sampling a stationary zero-mean,
    unit-variance Gaussian process with a prescribed autocorrelation
    (paper Section 2, Eqs 1–6).

    The Durbin–Levinson recursion produces, for every step [k], the
    partial linear regression coefficients [phi_{k,j}] and the
    conditional variance [v_k] of [X_k] given the past. These depend
    only on the autocorrelation, not on the sample path, so they can
    be computed once into a {!Table} and reused across the thousands
    of replications an importance-sampling study needs. The table is
    also what the likelihood-ratio computation of Appendix B
    consumes: it exposes conditional means and variances directly.

    Complexity: table construction O(n^2) time / O(n^2/2) memory;
    each generated path O(n^2) multiply–adds. For long traces where
    no conditional structure is needed, prefer {!Davies_harte}. *)

module Table : sig
  type t

  val make : acf:Acf.t -> n:int -> t
  (** Precompute coefficients for paths of length [n], sequentially
      ([make_pooled] without a pool).
      @raise Invalid_argument if [n <= 0 || n > 20_000] (the table is
      quadratic in memory) or if the recursion detects an invalid
      (non positive-definite) autocorrelation. *)

  val make_pooled :
    ?pool:Ss_parallel.Pool.t -> ?par_cutoff:int -> acf:Acf.t -> n:int -> unit -> t
  (** Like {!make}, but with [pool] the O(k) inner products of each
      Durbin–Levinson step run across domains once [k >= par_cutoff]
      (default 4096; the k-recursion itself stays sequential).
      Partial sums use fixed chunk boundaries combined in order, so
      the table is bit-identical for every pool size; the
      [pool = None] path keeps the historical strictly-sequential
      summation, which may differ from the pooled one in the last
      ulp. @raise Invalid_argument additionally if
      [par_cutoff < 2]. *)

  val length : t -> int
  (** Maximum path length. *)

  val cond_var : t -> int -> float
  (** [cond_var t k] is [v_k = Var(X_k | X_0..X_{k-1})]; [v_0 = 1].
      @raise Invalid_argument if [k] outside [0, n-1]. *)

  val cond_mean : t -> float array -> int -> float
  (** [cond_mean t xs k] is
      [E(X_k | X_{k-1} = xs.(k-1), ..., X_0 = xs.(0)) =
       sum_j phi_{k,j} xs.(k-j)]. Only the first [k] entries of [xs]
      are read. @raise Invalid_argument if [k] outside [0, n-1]. *)

  val innovation_std : t -> int -> float
  (** [sqrt (cond_var t k)], cached. *)

  val row_sum : t -> int -> float
  (** [row_sum t k = sum_j phi_{k,j}] — the response of the
      conditional mean to a constant unit shift of the whole past.
      Importance sampling uses it: shifting the background mean by
      [m*] shifts the conditional mean at step [k] by
      [m* * row_sum t k]. [row_sum t 0 = 0].
      @raise Invalid_argument if [k] outside [0, n-1]. *)
end

(** Precomputed, immutable overlap-save convolution plan for the
    frozen AR([order]) filter: the coefficient vector is uniformly
    partitioned into chunks of {!val-partition} lags and each
    partition beyond the first is stored as its length-[2*partition]
    real-FFT spectrum. One plan is a pure function of
    [(table, order)], holds no scratch state, and is shared freely
    across generators and domains (the Source layer caches it the way
    it caches tables). *)
module Fft_plan : sig
  type t

  val partition : int
  (** Fixed partition size (lags per partition, also the production
      block length of the FFT kernel). A constant so a stream's value
      sequence for a given seed never depends on tuning knobs. *)

  val make : table:Table.t -> order:int -> t
  (** @raise Invalid_argument if [order] outside
      [1, Table.length table - 1]. *)

  val order : t -> int
  val partition_size : t -> int
end

module Block : sig
  type t
  (** Streaming truncated-Hosking generator state: exact
      Durbin–Levinson recursion up to lag [order], frozen AR([order])
      beyond, over a double-buffered ring so the sliding window is
      always contiguous (no per-slot shifting) and the conditional
      mean runs through a 4-way-unrolled single-accumulator dot
      kernel. Successive {!fill}s produce exactly the stream of
      {!generate_truncated} / [Source.background_stream] on the same
      generator state, bit for bit, at any block-size split. *)

  val create :
    ?relaxed:bool -> ?fft_plan:Fft_plan.t -> table:Table.t -> order:int -> unit -> t
  (** Fresh state over a shared coefficient table. O(order) resident
      memory. With [relaxed:true] (default false) the conditional-mean
      dot products run through {!ar_dot_relaxed} instead of {!ar_dot}:
      roughly 2x faster on long rows but REASSOCIATED floating-point
      summation, so the stream is only statistically — not bitwise —
      equivalent to the exact tier (and seed-incompatible with its
      fixtures).

      With [fft_plan] (mutually exclusive with [relaxed]) the
      generator runs the overlap-save FFT kernel instead: the stream
      advances in blocks of [Fft_plan.partition] slots, the
      contribution of every lag beyond the partition size to all
      in-block positions is computed by one inverse real FFT over the
      accumulated partition spectra, and only the first
      [min(partition, order)] lags stay sequential — amortized
      O(order/partition + log partition + partition) per slot instead
      of O(order). Statistically equivalent to the exact stream
      (same innovation sequence per produced sample; the FFT merely
      reassociates the conditional-mean sums), but seed-incompatible
      with both other kernels, like the relaxed tier. The RNG
      consumption pattern is blocked, so the stream for a given seed
      is still independent of how callers batch their pulls.
      @raise Invalid_argument if [order] outside
      [1, Table.length table - 1] (the table must also hold the
      frozen row/std at index [order]), if the plan's order differs,
      or if both [relaxed] and [fft_plan] are given. *)

  val generated : t -> int
  (** Number of values produced so far. *)

  val fill : t -> Ss_stats.Rng.t -> float array -> off:int -> len:int -> unit
  (** Append the next [len] values of the stream into
      [buf.(off .. off+len-1)]. Zero per-slot allocation; draws
      exactly one Gaussian per value.
      @raise Invalid_argument if the range lies outside the
      buffer. *)

  val save : t -> Ss_checkpoint.W.t -> unit
  val restore : t -> Ss_checkpoint.R.t -> unit
  (** Checkpoint codec: O(order) state (ring or overlap-save window +
      position counters), never the coefficient table or the
      partition spectra — those are re-derived from the descriptor on
      resume (the FFT kernel's pair-spectrum delay line is a pure
      function of the saved window, so snapshots stay
      layout-independent). {!restore} requires a generator created
      with the same [order] and kernel and overwrites it in place.
      @raise Ss_checkpoint.Corrupt on order/kernel mismatch or
      malformed data. *)
end

val ar_dot : float array -> float array -> top:int -> k:int -> float
(** [ar_dot row win ~top ~k = sum_{j=1..k} row.(j-1) *. win.(top-j)],
    4-way unrolled behind a single accumulator so the summation order
    is exactly the naive left-to-right loop's — the bit-identity
    contract of every default code path. No bounds checks; the caller
    guarantees [row] holds [k] coefficients and [win.(top-k..top-1)]
    is readable. *)

val ar_dot_relaxed : float array -> float array -> top:int -> k:int -> float
(** Fast-math variant of {!ar_dot}: four independent accumulators
    (reassociated sum, ~2x throughput on long rows), combined as
    [(s0+s2)+(s1+s3)] plus a left-to-right remainder. Differs from
    {!ar_dot} in the last ulps; only the opt-in relaxed precision tier
    may use it. *)

val generate : Table.t -> Ss_stats.Rng.t -> float array
(** Sample one path of the table's full length. *)

val generate_into : Table.t -> Ss_stats.Rng.t -> float array -> unit
(** Overwrite an existing buffer with a fresh path (avoids per-path
    allocation in tight simulation loops). The buffer may be shorter
    than the table; it is filled completely.
    @raise Invalid_argument if the buffer is longer than the
    table. *)

val generate_stream : acf:Acf.t -> n:int -> Ss_stats.Rng.t -> float array
(** One-shot sampling without a precomputed table: runs the
    Durbin–Levinson recursion on the fly in O(n) memory and O(n^2)
    time, reusing one pair of coefficient buffers across steps (no
    per-step allocation). Produces the same distribution as
    {!generate}; use for a single long path when the quadratic table
    would not fit. @raise Invalid_argument if [n <= 0]. *)

val generate_truncated : acf:Acf.t -> n:int -> max_order:int -> Ss_stats.Rng.t -> float array
(** Approximate fast path: exact Hosking up to lag [max_order], then
    the order-[max_order] AR filter is frozen and applied in
    O(n * max_order). Exact for the first [max_order] samples, an
    AR(max_order) approximation afterwards; the ablation bench
    [abl-trunc] quantifies the ACF error. @raise Invalid_argument if
    [n <= 0 || max_order < 1]. *)

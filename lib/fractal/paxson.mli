(** Paxson-style approximate FFT synthesis of long-range dependent
    Gaussian paths ("Fast, Approximate Synthesis of Fractional
    Gaussian Noise for Generating Self-Similar Network Traffic").

    The circulant has the Davies–Harte shape — size
    [m = next_pow2 (2n)], folded first row [c_j = r(min(j, m-j))], so
    every lag a path can exhibit carries the model correlation — but
    where {!Davies_harte} refuses an autocorrelation whose embedding
    is not nonnegative definite, this sampler clips the negative
    eigenvalues to zero and carries on (the clipped-mass ratio is
    exposed as a diagnostic). One m-point FFT per path keeps it
    O(n log n), far below Hosking's O(n * order). The output is
    statistically faithful (sample ACF at short and medium lags,
    variance–time Hurst — gated in the test suite and in
    [throughput-smoke]) but deliberately NOT bitwise comparable to the
    exact backends: use it for bulk background traffic where the law,
    not the sample path, matters. Importance sampling refuses it, like
    Davies–Harte, because no per-step innovations exist. *)

type plan
(** Precomputed eigenvalue data for a given autocorrelation and
    length; reusable across paths. *)

val plan : acf:Acf.t -> n:int -> plan
(** Build a plan for paths of length [n]. Never refuses an
    autocorrelation: negative folded-circulant eigenvalues are clipped
    (see {!clipped_ratio}) — the clipping error is part of the
    approximation contract. @raise Invalid_argument if [n <= 0] or
    the spectrum is degenerate (no positive mass). *)

val plan_length : plan -> int

val clipped_ratio : plan -> float
(** Clipped negative eigenvalue mass over positive mass — 0 when the
    folded circulant was positive semidefinite; the induced covariance
    error is bounded by this ratio. *)

val generate : plan -> Ss_stats.Rng.t -> float array
(** Sample an approximately stationary zero-mean unit-variance path
    of length [plan_length]. Consumes [m] Gaussians. *)

val generate_into : plan -> Ss_stats.Rng.t -> float array -> unit
(** Sample into the first [plan_length] entries of an existing
    buffer — bit-identical to {!generate} on the same generator
    state. @raise Invalid_argument if the buffer is shorter than
    [plan_length]. *)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  if n <= 0 then invalid_arg "Fft.next_pow2: n <= 0";
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let two_pi = 8.0 *. atan 1.0

let check_lengths who re im =
  let n = Array.length re in
  if Array.length im <> n then
    invalid_arg
      (Printf.sprintf "Fft.%s: re/im length mismatch (%d vs %d)" who n (Array.length im));
  if not (is_pow2 n) then
    invalid_arg (Printf.sprintf "Fft.%s: length %d is not a power of two" who n);
  n

(* In-place bit-reversal permutation of the first [n] entries. *)
let bit_reverse ~n re im =
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done

let butterflies ~sign re im =
  let n = Array.length re in
  bit_reverse ~n re im;
  let len = ref 2 in
  while !len <= n do
    let ang = sign *. two_pi /. float_of_int !len in
    let wr = cos ang and wi = sin ang in
    let i = ref 0 in
    while !i < n do
      let cr = ref 1.0 and ci = ref 0.0 in
      let half = !len / 2 in
      for j = 0 to half - 1 do
        let a = !i + j and b = !i + j + half in
        let ur = Array.unsafe_get re a and ui = Array.unsafe_get im a in
        let vr0 = Array.unsafe_get re b and vi0 = Array.unsafe_get im b in
        let vr = (vr0 *. !cr) -. (vi0 *. !ci) in
        let vi = (vr0 *. !ci) +. (vi0 *. !cr) in
        Array.unsafe_set re a (ur +. vr);
        Array.unsafe_set im a (ui +. vi);
        Array.unsafe_set re b (ur -. vr);
        Array.unsafe_set im b (ui -. vi);
        let ncr = (!cr *. wr) -. (!ci *. wi) in
        ci := (!cr *. wi) +. (!ci *. wr);
        cr := ncr
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let forward re im =
  let n = check_lengths "forward" re im in
  if n > 1 then butterflies ~sign:(-1.0) re im

let inverse re im =
  let n = check_lengths "inverse" re im in
  if n > 1 then butterflies ~sign:1.0 re im;
  let fn = float_of_int n in
  for i = 0 to n - 1 do
    re.(i) <- re.(i) /. fn;
    im.(i) <- im.(i) /. fn
  done

(* Butterfly passes over input already in bit-reversed order, driven
   by a precomputed twiddle table instead of the per-stage complex
   rotation recurrence: [twr]/[twi] hold [e^(-2 pi i j / len)] for
   every stage, flattened as entry [half - 1 + j] for
   [half = len/2 = 1, 2, 4, ...] — [n - 1] entries total for an
   [n]-point transform. [conj] flips the table's sign convention
   (inverse transform). The first two stages carry only the trivial
   twiddles 1 and -i, so they run multiplication-free (the len = 4
   odd butterfly is a swap-and-negate). *)
let stages_tables ~conj ~twr ~twi ~n re im =
  let si = if conj then -1.0 else 1.0 in
  if n >= 2 then begin
    let i = ref 0 in
    while !i < n do
      let a = !i and b = !i + 1 in
      let ur = Array.unsafe_get re a and ui = Array.unsafe_get im a in
      let vr = Array.unsafe_get re b and vi = Array.unsafe_get im b in
      Array.unsafe_set re a (ur +. vr);
      Array.unsafe_set im a (ui +. vi);
      Array.unsafe_set re b (ur -. vr);
      Array.unsafe_set im b (ui -. vi);
      i := !i + 2
    done
  end;
  if n >= 4 then begin
    let i = ref 0 in
    while !i < n do
      let a = !i and b = !i + 2 in
      let ur = Array.unsafe_get re a and ui = Array.unsafe_get im a in
      let vr = Array.unsafe_get re b and vi = Array.unsafe_get im b in
      Array.unsafe_set re a (ur +. vr);
      Array.unsafe_set im a (ui +. vi);
      Array.unsafe_set re b (ur -. vr);
      Array.unsafe_set im b (ui -. vi);
      let a = !i + 1 and b = !i + 3 in
      let ur = Array.unsafe_get re a and ui = Array.unsafe_get im a in
      let vr0 = Array.unsafe_get re b and vi0 = Array.unsafe_get im b in
      (* w = -i forward, +i inverse: v * w = (si*vi0, -si*vr0). *)
      let vr = si *. vi0 and vi = -.si *. vr0 in
      Array.unsafe_set re a (ur +. vr);
      Array.unsafe_set im a (ui +. vi);
      Array.unsafe_set re b (ur -. vr);
      Array.unsafe_set im b (ui -. vi);
      i := !i + 4
    done
  end;
  let len = ref 8 in
  while !len <= n do
    let half = !len / 2 in
    let base = half - 1 in
    let i = ref 0 in
    while !i < n do
      for j = 0 to half - 1 do
        let a = !i + j and b = !i + j + half in
        let cr = Array.unsafe_get twr (base + j) in
        let ci = si *. Array.unsafe_get twi (base + j) in
        let ur = Array.unsafe_get re a and ui = Array.unsafe_get im a in
        let vr0 = Array.unsafe_get re b and vi0 = Array.unsafe_get im b in
        let vr = (vr0 *. cr) -. (vi0 *. ci) in
        let vi = (vr0 *. ci) +. (vi0 *. cr) in
        Array.unsafe_set re a (ur +. vr);
        Array.unsafe_set im a (ui +. vi);
        Array.unsafe_set re b (ur -. vr);
        Array.unsafe_set im b (ui -. vi)
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let dft_naive re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft.dft_naive: length mismatch";
  let out_re = Array.make n 0.0 and out_im = Array.make n 0.0 in
  for k = 0 to n - 1 do
    let sr = ref 0.0 and si = ref 0.0 in
    for j = 0 to n - 1 do
      let ang = -.two_pi *. float_of_int (j * k) /. float_of_int n in
      let c = cos ang and s = sin ang in
      sr := !sr +. ((re.(j) *. c) -. (im.(j) *. s));
      si := !si +. ((re.(j) *. s) +. (im.(j) *. c))
    done;
    out_re.(k) <- !sr;
    out_im.(k) <- !si
  done;
  (out_re, out_im)

let real_forward_magnitude2 x =
  let re = Array.copy x in
  let im = Array.make (Array.length x) 0.0 in
  forward re im;
  Array.init (Array.length x) (fun k -> (re.(k) *. re.(k)) +. (im.(k) *. im.(k)))

module Real = struct
  (* Real-input FFT of length [n] via one complex transform of size
     [m = n/2]: pack [z_j = x_(2j) + i x_(2j+1)], transform, then
     split the spectrum into the even/odd-subsequence DFTs
     [E_k = (Z_k + conj Z_(m-k)) / 2] and
     [O_k = -i (Z_k - conj Z_(m-k)) / 2] and recombine as
     [X_k = E_k + w^k O_k] with [w = e^(-2 pi i / n)].  The plan is
     immutable (twiddle tables only) and safe to share across
     domains. *)
  type plan = {
    n : int;  (** real length (power of two, >= 2) *)
    m : int;  (** complex transform size, [n/2] *)
    twr : float array;  (** stage twiddles for the size-[m] FFT *)
    twi : float array;
    wr : float array;  (** [w^k = e^(-2 pi i k / n)], k = 0..m/2 *)
    wi : float array;
    rev : int array;  (** bit-reversal permutation of [0, m) *)
  }

  let length p = p.n
  let bins p = p.m + 1

  let plan ~n =
    if n < 2 || not (is_pow2 n) then
      invalid_arg
        (Printf.sprintf "Fft.Real.plan: length %d is not a power of two >= 2" n);
    let m = n / 2 in
    let twr = Array.make (Stdlib.max 1 (m - 1)) 1.0
    and twi = Array.make (Stdlib.max 1 (m - 1)) 0.0 in
    let half = ref 1 in
    while !half < m do
      let base = !half - 1 in
      for j = 0 to !half - 1 do
        let ang = -.two_pi *. float_of_int j /. float_of_int (2 * !half) in
        twr.(base + j) <- cos ang;
        twi.(base + j) <- sin ang
      done;
      half := !half * 2
    done;
    let wr = Array.make ((m / 2) + 1) 1.0 and wi = Array.make ((m / 2) + 1) 0.0 in
    for k = 0 to m / 2 do
      let ang = -.two_pi *. float_of_int k /. float_of_int n in
      wr.(k) <- cos ang;
      wi.(k) <- sin ang
    done;
    let rev = Array.make m 0 in
    for i = 1 to m - 1 do
      rev.(i) <- (rev.(i lsr 1) lsr 1) lor (if i land 1 = 1 then m lsr 1 else 0)
    done;
    { n; m; twr; twi; wr; wi; rev }

  let check_spectrum who p re im =
    if Array.length re < p.m + 1 || Array.length im < p.m + 1 then
      invalid_arg
        (Printf.sprintf "Fft.Real.%s: spectrum buffers need %d bins" who (p.m + 1))

  let forward p x ~off ~re ~im =
    check_spectrum "forward" p re im;
    if off < 0 || off + p.n > Array.length x then
      invalid_arg "Fft.Real.forward: window out of bounds";
    let m = p.m in
    (* Pack z_j = x_(2j) + i x_(2j+1), straight into bit-reversed
       order so the butterfly passes start immediately. *)
    let rev = p.rev in
    for j = 0 to m - 1 do
      let d = Array.unsafe_get rev j in
      Array.unsafe_set re d (Array.unsafe_get x (off + (2 * j)));
      Array.unsafe_set im d (Array.unsafe_get x (off + (2 * j) + 1))
    done;
    if m > 1 then stages_tables ~conj:false ~twr:p.twr ~twi:p.twi ~n:m re im;
    (* Unpack the Hermitian spectrum in place: bins k and m-k are
       rewritten pairwise from Z_k, Z_(m-k) (both read first). *)
    let z0r = re.(0) and z0i = im.(0) in
    re.(0) <- z0r +. z0i;
    im.(0) <- 0.0;
    re.(m) <- z0r -. z0i;
    im.(m) <- 0.0;
    if m >= 2 then begin
      (* k = m/2: w^(m/2) = -i, E and O real => X_(m/2) = conj Z_(m/2). *)
      im.(m / 2) <- -.im.(m / 2);
      for k = 1 to (m / 2) - 1 do
        let j = m - k in
        let akr = re.(k) and aki = im.(k) in
        let bjr = re.(j) and bji = im.(j) in
        let er = 0.5 *. (akr +. bjr) and ei = 0.5 *. (aki -. bji) in
        let or_ = 0.5 *. (aki +. bji) and oi = -0.5 *. (akr -. bjr) in
        let wkr = p.wr.(k) and wki = p.wi.(k) in
        let tr = (or_ *. wkr) -. (oi *. wki) in
        let ti = (or_ *. wki) +. (oi *. wkr) in
        re.(k) <- er +. tr;
        im.(k) <- ei +. ti;
        re.(j) <- er -. tr;
        im.(j) <- -.(ei -. ti)
      done
    end

  let inverse p ~re ~im out ~off =
    check_spectrum "inverse" p re im;
    if off < 0 || off + p.n > Array.length out then
      invalid_arg "Fft.Real.inverse: window out of bounds";
    let m = p.m in
    (* Repack bins 0..m into the m-point complex spectrum
       Z_k = E_k + i O_k (inverse of the unpack above); destroys
       re/im, which double as the transform workspace. *)
    let x0 = re.(0) and xm = re.(m) in
    re.(0) <- 0.5 *. (x0 +. xm);
    im.(0) <- 0.5 *. (x0 -. xm);
    if m >= 2 then begin
      im.(m / 2) <- -.im.(m / 2);
      for k = 1 to (m / 2) - 1 do
        let j = m - k in
        let xkr = re.(k) and xki = im.(k) in
        let xjr = re.(j) and xji = im.(j) in
        let er = 0.5 *. (xkr +. xjr) and ei = 0.5 *. (xki -. xji) in
        let tr = 0.5 *. (xkr -. xjr) and ti = 0.5 *. (xki +. xji) in
        (* O_k = conj(w^k) * T, with T = w^k O_k recovered above. *)
        let wkr = p.wr.(k) and wki = p.wi.(k) in
        let or_ = (tr *. wkr) +. (ti *. wki) in
        let oi = (ti *. wkr) -. (tr *. wki) in
        (* Z_k = E + iO; Z_(m-k) = conj E + i conj O. *)
        re.(k) <- er -. oi;
        im.(k) <- ei +. or_;
        re.(j) <- er +. oi;
        im.(j) <- -.ei +. or_
      done
    end;
    if m > 1 then begin
      bit_reverse ~n:m re im;
      stages_tables ~conj:true ~twr:p.twr ~twi:p.twi ~n:m re im
    end;
    let inv_m = 1.0 /. float_of_int m in
    for j = 0 to m - 1 do
      Array.unsafe_set out (off + (2 * j)) (re.(j) *. inv_m);
      Array.unsafe_set out (off + (2 * j) + 1) (im.(j) *. inv_m)
    done
end

(** Radix-2 fast Fourier transform on split real/imaginary arrays.

    Hand-rolled iterative Cooley–Tukey used by the Davies–Harte
    sampler (circulant embedding of the target autocovariance), the
    Paxson approximate-FGN sampler, the periodogram Hurst estimator,
    and the overlap-save streaming convolution kernel ({!Real}).
    Sizes must be powers of two. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is true iff [n] is a positive power of two. *)

val next_pow2 : int -> int
(** Smallest power of two [>= n]. @raise Invalid_argument if
    [n <= 0]. *)

val forward : float array -> float array -> unit
(** [forward re im] replaces [(re, im)] by its in-place DFT
    [X_k = sum_j x_j exp(-2 pi i j k / n)].
    @raise Invalid_argument naming the offending length if the arrays
    differ in length or the length is not a power of two. *)

val inverse : float array -> float array -> unit
(** In-place inverse DFT including the [1/n] normalization, so
    [inverse] after [forward] restores the input.
    @raise Invalid_argument naming the offending length if the arrays
    differ in length or the length is not a power of two. *)

val dft_naive : float array -> float array -> float array * float array
(** O(n^2) reference DFT (any length), used as the test oracle. *)

val real_forward_magnitude2 : float array -> float array
(** [real_forward_magnitude2 x] returns [|X_k|^2] for k = 0..n-1 of a
    real input (zero imaginary part), without mutating [x].
    @raise Invalid_argument if the length is not a power of two. *)

(** Real-input transforms via one half-size complex FFT, with all
    twiddle factors precomputed into an immutable, shareable plan.
    This is the workhorse of the overlap-save streaming synthesis
    kernel, where the same size is transformed millions of times. *)
module Real : sig
  type plan
  (** Immutable twiddle tables for a fixed real length [n]. Safe to
      share across domains; carries no scratch state. *)

  val plan : n:int -> plan
  (** [plan ~n] prepares transforms of real length [n] ([n] a power
      of two [>= 2]). @raise Invalid_argument otherwise. *)

  val length : plan -> int
  (** The real length [n] the plan was built for. *)

  val bins : plan -> int
  (** Number of spectrum bins, [n/2 + 1]. *)

  val forward : plan -> float array -> off:int -> re:float array -> im:float array -> unit
  (** [forward p x ~off ~re ~im] writes the DFT of the [n] real
      samples [x.(off) .. x.(off + n - 1)] into bins [0 .. n/2] of
      [re]/[im] (the remaining Hermitian half is implied; bins [0]
      and [n/2] have zero imaginary part). [re]/[im] double as the
      transform workspace and must hold at least [bins p] entries.
      @raise Invalid_argument on out-of-bounds window or undersized
      spectrum buffers. *)

  val inverse : plan -> re:float array -> im:float array -> float array -> off:int -> unit
  (** [inverse p ~re ~im out ~off] writes the real inverse DFT
      (including the [1/n] normalization) of the Hermitian spectrum
      in bins [0 .. n/2] of [re]/[im] to
      [out.(off) .. out.(off + n - 1)], destroying [re]/[im].
      @raise Invalid_argument on out-of-bounds window or undersized
      spectrum buffers. *)
end

module Rng = Ss_stats.Rng

type event =
  | Drift of { start : int; ramp : int; factor : float }
  | Burst of { rate : float; mean_len : float; amplitude : float }
  | Stall of { start : int; len : int }
  | Dropout of { rate : float; mean_len : float }
  | Corrupt of { rate : float }
  | Misdeclare of { mean : float option; sigma2 : float option; hurst : float option }

let check_prob name p =
  if Float.is_nan p || p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Fault: %s rate %g outside [0,1]" name p)

let check_pos name x =
  if Float.is_nan x || x <= 0.0 then invalid_arg (Printf.sprintf "Fault: %s %g <= 0" name x)

let check_scale name x =
  if Float.is_nan x || x < 0.0 || x = infinity then
    invalid_arg (Printf.sprintf "Fault: %s %g not a finite nonnegative scale" name x)

let validate = function
  | Drift { start; ramp; factor } ->
    if start < 0 then invalid_arg "Fault: drift start < 0";
    if ramp < 0 then invalid_arg "Fault: drift ramp < 0";
    check_scale "drift factor" factor
  | Burst { rate; mean_len; amplitude } ->
    check_prob "burst" rate;
    check_pos "burst mean length" mean_len;
    check_scale "burst amplitude" amplitude
  | Stall { start; len } ->
    if start < 0 then invalid_arg "Fault: stall start < 0";
    if len < 0 then invalid_arg "Fault: stall len < 0"
  | Dropout { rate; mean_len } ->
    check_prob "dropout" rate;
    check_pos "dropout mean length" mean_len
  | Corrupt { rate } -> check_prob "corrupt" rate
  | Misdeclare { mean; sigma2; hurst } -> (
    (match mean with
    | Some m when Float.is_nan m || m < 0.0 -> invalid_arg "Fault: misdeclared mean < 0"
    | _ -> ());
    (match sigma2 with
    | Some s when Float.is_nan s || s < 0.0 -> invalid_arg "Fault: misdeclared sigma2 < 0"
    | _ -> ());
    match hurst with
    | Some h when Float.is_nan h || h <= 0.0 || h >= 1.0 ->
      invalid_arg "Fault: misdeclared hurst outside (0,1)"
    | _ -> ())

(* Geometric-ish episode process: each quiet slot starts an episode
   with probability [rate]; episode lengths are rounded exponentials
   of mean [mean_len] (min 1). Returns a per-slot "inside an episode"
   predicate. Draws exactly one uniform on quiet slots and one more
   on episode starts, so the schedule is a pure function of the
   substream. *)
let episodes rng ~rate ~mean_len =
  let remaining = ref 0 in
  fun () ->
    if !remaining > 0 then begin
      decr remaining;
      true
    end
    else if Rng.float rng < rate then begin
      let len =
        Stdlib.max 1 (int_of_float (Float.round (-.mean_len *. log1p (-.Rng.float rng))))
      in
      remaining := len - 1;
      true
    end
    else false

let compile rng event =
  validate event;
  match event with
  | Drift { start; ramp; factor } ->
    fun t w ->
      if t < start then w
      else
        let progress =
          if ramp <= 0 then 1.0
          else Stdlib.min 1.0 (float_of_int (t - start + 1) /. float_of_int ramp)
        in
        w *. (1.0 +. ((factor -. 1.0) *. progress))
  | Burst { rate; mean_len; amplitude } ->
    let inside = episodes rng ~rate ~mean_len in
    fun _t w -> if inside () then w *. amplitude else w
  | Stall { start; len } -> fun t w -> if t >= start && t < start + len then 0.0 else w
  | Dropout { rate; mean_len } ->
    let inside = episodes rng ~rate ~mean_len in
    fun _t w -> if inside () then 0.0 else w
  | Corrupt { rate } ->
    fun _t w ->
      if Rng.float rng < rate then (if Rng.bool rng then Float.nan else -1.0 -. w) else w
  | Misdeclare _ -> fun _t w -> w

let misdeclared spec (src : Source.t) =
  List.fold_left
    (fun (m, s, h) -> function
      | Misdeclare { mean; sigma2; hurst } ->
        ( Option.value mean ~default:m,
          Option.value sigma2 ~default:s,
          Option.value hurst ~default:h )
      | _ -> (m, s, h))
    (src.Source.mean, src.Source.sigma2, src.Source.hurst)
    spec

let wrap ?name ~rng spec (src : Source.t) =
  match spec with
  | [] -> src
  | _ ->
    List.iter validate spec;
    (* One substream per event, split in spec order on the caller, so
       each stochastic schedule is a fixed function of (seed, source
       index, event index) — the Fanout discipline. *)
    let transforms = List.map (fun ev -> compile (Rng.split rng) ev) spec in
    let t = ref 0 in
    let pull () =
      let w, c = src.Source.pull () in
      let slot = !t in
      incr t;
      (List.fold_left (fun w f -> f slot w) w transforms, c)
    in
    (* Native block path: pull a block from the wrapped source, then
       apply the event transforms slot by slot in slot order — the
       stochastic schedules (episode processes, corruption draws)
       advance exactly as under scalar pulls, so block and scalar
       wrapping are bit-identical. *)
    let pull_block wbuf cbuf off len =
      let f = src.Source.pull_block wbuf cbuf off len in
      for j = off to off + f - 1 do
        let slot = !t in
        incr t;
        wbuf.(j) <- List.fold_left (fun w g -> g slot w) wbuf.(j) transforms
      done;
      f
    in
    let mean, sigma2, hurst = misdeclared spec src in
    let name = match name with Some n -> n | None -> src.Source.name ^ "!" in
    Source.make ~pull_block ~name ~mean ~sigma2 ~hurst pull

let wrap_all ~rng specs sources =
  let n = Array.length sources in
  List.iter
    (fun (target, _) ->
      match target with
      | Some i when i < 0 || i >= n ->
        invalid_arg (Printf.sprintf "Fault.wrap_all: target %d outside [0,%d)" i n)
      | _ -> ())
    specs;
  let spec_for i =
    List.concat_map
      (fun (target, evs) ->
        match target with Some j when j <> i -> [] | _ -> evs)
      specs
  in
  (* Always split one substream per source, in index order, whether
     or not that source carries faults: the schedule of source [i] is
     then independent of which other sources are targeted. *)
  let subs = Rng.split_n rng n in
  Array.mapi (fun i src -> wrap ~rng:subs.(i) (spec_for i) src) sources

(* --- spec parsing ------------------------------------------------- *)

let parse_event s =
  let s = String.trim s in
  let attempts =
    [
      (fun () ->
        Scanf.sscanf s "drift@%d+%dx%f%!" (fun start ramp factor ->
            Drift { start; ramp; factor }));
      (fun () ->
        Scanf.sscanf s "burst@%f+%fx%f%!" (fun rate mean_len amplitude ->
            Burst { rate; mean_len; amplitude }));
      (fun () -> Scanf.sscanf s "stall@%d+%d%!" (fun start len -> Stall { start; len }));
      (fun () ->
        Scanf.sscanf s "dropout@%f+%f%!" (fun rate mean_len -> Dropout { rate; mean_len }));
      (fun () -> Scanf.sscanf s "corrupt@%f%!" (fun rate -> Corrupt { rate }));
      (fun () ->
        Scanf.sscanf s "mean=%f%!" (fun m ->
            Misdeclare { mean = Some m; sigma2 = None; hurst = None }));
      (fun () ->
        Scanf.sscanf s "sigma2=%f%!" (fun v ->
            Misdeclare { mean = None; sigma2 = Some v; hurst = None }));
      (fun () ->
        Scanf.sscanf s "hurst=%f%!" (fun h ->
            Misdeclare { mean = None; sigma2 = None; hurst = Some h }));
    ]
  in
  let rec first = function
    | [] -> invalid_arg (Printf.sprintf "Fault.parse: unrecognized event %S" s)
    | f :: rest -> (
      match f () with
      | ev ->
        validate ev;
        ev
      | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> first rest)
  in
  first attempts

let parse_group s =
  match String.index_opt s ':' with
  | None -> invalid_arg (Printf.sprintf "Fault.parse: group %S lacks 'target:'" s)
  | Some i ->
    let target = String.trim (String.sub s 0 i) in
    let events = String.sub s (i + 1) (String.length s - i - 1) in
    let target =
      if target = "*" then None
      else
        match int_of_string_opt target with
        | Some j when j >= 0 -> Some j
        | _ -> invalid_arg (Printf.sprintf "Fault.parse: bad target %S" target)
    in
    let events =
      String.split_on_char ',' events
      |> List.filter (fun s -> String.trim s <> "")
      |> List.map parse_event
    in
    if events = [] then invalid_arg (Printf.sprintf "Fault.parse: group %S has no events" s);
    (target, events)

let parse s =
  let groups =
    String.split_on_char ';' s |> List.filter (fun s -> String.trim s <> "")
  in
  if groups = [] then invalid_arg "Fault.parse: empty spec";
  List.map parse_group groups

let pp_event ppf = function
  | Drift { start; ramp; factor } -> Fmt.pf ppf "drift@%d+%dx%g" start ramp factor
  | Burst { rate; mean_len; amplitude } -> Fmt.pf ppf "burst@%g+%gx%g" rate mean_len amplitude
  | Stall { start; len } -> Fmt.pf ppf "stall@%d+%d" start len
  | Dropout { rate; mean_len } -> Fmt.pf ppf "dropout@%g+%g" rate mean_len
  | Corrupt { rate } -> Fmt.pf ppf "corrupt@%g" rate
  | Misdeclare { mean; sigma2; hurst } ->
    let field name = function None -> [] | Some v -> [ Printf.sprintf "%s=%g" name v ] in
    Fmt.pf ppf "%s"
      (String.concat "," (field "mean" mean @ field "sigma2" sigma2 @ field "hurst" hurst))

module Rng = Ss_stats.Rng
module W = Ss_checkpoint.W
module R = Ss_checkpoint.R

type event =
  | Drift of { start : int; ramp : int; factor : float }
  | Burst of { rate : float; mean_len : float; amplitude : float }
  | Stall of { start : int; len : int }
  | Dropout of { rate : float; mean_len : float }
  | Corrupt of { rate : float }
  | Misdeclare of { mean : float option; sigma2 : float option; hurst : float option }

let check_prob name p =
  if Float.is_nan p || p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Fault: %s rate %g outside [0,1]" name p)

let check_pos name x =
  if Float.is_nan x || x <= 0.0 then
    invalid_arg (Printf.sprintf "Fault: %s %g must be positive" name x)

let check_scale name x =
  if Float.is_nan x || x < 0.0 || x = infinity then
    invalid_arg (Printf.sprintf "Fault: %s %g not a finite nonnegative scale" name x)

let check_slots name v =
  if v < 0 then
    invalid_arg (Printf.sprintf "Fault: %s %d is negative (must be a slot count >= 0)" name v)

let validate = function
  | Drift { start; ramp; factor } ->
    check_slots "drift start" start;
    check_slots "drift ramp" ramp;
    check_scale "drift factor" factor
  | Burst { rate; mean_len; amplitude } ->
    check_prob "burst" rate;
    check_pos "burst mean length" mean_len;
    check_scale "burst amplitude" amplitude
  | Stall { start; len } ->
    check_slots "stall start" start;
    check_slots "stall len" len
  | Dropout { rate; mean_len } ->
    check_prob "dropout" rate;
    check_pos "dropout mean length" mean_len
  | Corrupt { rate } -> check_prob "corrupt" rate
  | Misdeclare { mean; sigma2; hurst } -> (
    (match mean with
    | Some m when Float.is_nan m || m < 0.0 ->
      invalid_arg (Printf.sprintf "Fault: misdeclared mean %g must be >= 0" m)
    | _ -> ());
    (match sigma2 with
    | Some s when Float.is_nan s || s < 0.0 ->
      invalid_arg (Printf.sprintf "Fault: misdeclared sigma2 %g must be >= 0" s)
    | _ -> ());
    match hurst with
    | Some h when Float.is_nan h || h <= 0.0 || h >= 1.0 ->
      invalid_arg (Printf.sprintf "Fault: misdeclared hurst %g outside (0,1)" h)
    | _ -> ())

(* Geometric-ish episode process: each quiet slot starts an episode
   with probability [rate]; episode lengths are rounded exponentials
   of mean [mean_len] (min 1). Returns a per-slot "inside an episode"
   predicate plus the residual-length cell, which together with the
   substream state is the whole episode state a checkpoint must
   carry. Draws exactly one uniform on quiet slots and one more on
   episode starts, so the schedule is a pure function of the
   substream. *)
let episodes rng ~rate ~mean_len =
  let remaining = ref 0 in
  let inside () =
    if !remaining > 0 then begin
      decr remaining;
      true
    end
    else if Rng.float rng < rate then begin
      let len =
        Stdlib.max 1 (int_of_float (Float.round (-.mean_len *. log1p (-.Rng.float rng))))
      in
      remaining := len - 1;
      true
    end
    else false
  in
  (inside, remaining)

(* A compiled event: the per-slot transform plus its checkpoint codec.
   Scripted events (drift, stall) and misdeclaration are pure
   functions of the slot index — nothing to save; the stochastic ones
   carry their substream (and episode residual). *)
type compiled = {
  apply : int -> float -> float;
  ev_save : W.t -> unit;
  ev_restore : R.t -> unit;
}

let stateless apply =
  { apply; ev_save = (fun w -> W.tag w "ev-pure"); ev_restore = (fun r -> R.tag r "ev-pure") }

let episodic rng ~rate ~mean_len mk =
  let inside, remaining = episodes rng ~rate ~mean_len in
  {
    apply = mk inside;
    ev_save =
      (fun w ->
        W.tag w "ev-episodic";
        Rng.save rng w;
        W.int w !remaining);
    ev_restore =
      (fun r ->
        R.tag r "ev-episodic";
        Rng.restore rng r;
        remaining := R.int r);
  }

let compile rng event =
  validate event;
  match event with
  | Drift { start; ramp; factor } ->
    stateless (fun t w ->
        if t < start then w
        else
          let progress =
            if ramp <= 0 then 1.0
            else Stdlib.min 1.0 (float_of_int (t - start + 1) /. float_of_int ramp)
          in
          w *. (1.0 +. ((factor -. 1.0) *. progress)))
  | Burst { rate; mean_len; amplitude } ->
    episodic rng ~rate ~mean_len (fun inside _t w -> if inside () then w *. amplitude else w)
  | Stall { start; len } ->
    stateless (fun t w -> if t >= start && t < start + len then 0.0 else w)
  | Dropout { rate; mean_len } ->
    episodic rng ~rate ~mean_len (fun inside _t w -> if inside () then 0.0 else w)
  | Corrupt { rate } ->
    {
      apply =
        (fun _t w ->
          if Rng.float rng < rate then (if Rng.bool rng then Float.nan else -1.0 -. w)
          else w);
      ev_save =
        (fun w ->
          W.tag w "ev-corrupt";
          Rng.save rng w);
      ev_restore =
        (fun r ->
          R.tag r "ev-corrupt";
          Rng.restore rng r);
    }
  | Misdeclare _ -> stateless (fun _t w -> w)

let misdeclared spec (src : Source.t) =
  List.fold_left
    (fun (m, s, h) -> function
      | Misdeclare { mean; sigma2; hurst } ->
        ( Option.value mean ~default:m,
          Option.value sigma2 ~default:s,
          Option.value hurst ~default:h )
      | _ -> (m, s, h))
    (src.Source.mean, src.Source.sigma2, src.Source.hurst)
    spec

let wrap ?name ~rng spec (src : Source.t) =
  match spec with
  | [] -> src
  | _ ->
    List.iter validate spec;
    (* One substream per event, split in spec order on the caller, so
       each stochastic schedule is a fixed function of (seed, source
       index, event index) — the Fanout discipline. *)
    let transforms = List.map (fun ev -> compile (Rng.split rng) ev) spec in
    let t = ref 0 in
    let pull () =
      let w, c = src.Source.pull () in
      let slot = !t in
      incr t;
      (List.fold_left (fun w ev -> ev.apply slot w) w transforms, c)
    in
    (* Native block path: pull a block from the wrapped source, then
       apply the event transforms slot by slot in slot order — the
       stochastic schedules (episode processes, corruption draws)
       advance exactly as under scalar pulls, so block and scalar
       wrapping are bit-identical. *)
    let pull_block wbuf cbuf off len =
      let f = src.Source.pull_block wbuf cbuf off len in
      for j = off to off + f - 1 do
        let slot = !t in
        incr t;
        wbuf.(j) <- List.fold_left (fun w ev -> ev.apply slot w) wbuf.(j) transforms
      done;
      f
    in
    let mean, sigma2, hurst = misdeclared spec src in
    let name = match name with Some n -> n | None -> src.Source.name ^ "!" in
    (* The wrapper checkpoints as: inner source state, then the slot
       counter, then each event's state in spec order — available only
       when the wrapped source itself supports checkpointing. *)
    let ckpt =
      match src.Source.ckpt with
      | None -> None
      | Some _ ->
        Some
          {
            Source.ck_save =
              (fun w ->
                Source.save src w;
                W.tag w "fault-wrap";
                W.int w !t;
                List.iter (fun ev -> ev.ev_save w) transforms);
            ck_restore =
              (fun r ->
                Source.restore src r;
                R.tag r "fault-wrap";
                t := R.int r;
                List.iter (fun ev -> ev.ev_restore r) transforms);
          }
    in
    Source.make ~pull_block ?ckpt ~name ~mean ~sigma2 ~hurst pull

let wrap_all ~rng specs sources =
  let n = Array.length sources in
  List.iter
    (fun (target, _) ->
      match target with
      | Some i when i < 0 || i >= n ->
        invalid_arg (Printf.sprintf "Fault.wrap_all: target %d outside [0,%d)" i n)
      | _ -> ())
    specs;
  let spec_for i =
    List.concat_map
      (fun (target, evs) ->
        match target with Some j when j <> i -> [] | _ -> evs)
      specs
  in
  (* Always split one substream per source, in index order, whether
     or not that source carries faults: the schedule of source [i] is
     then independent of which other sources are targeted. *)
  let subs = Rng.split_n rng n in
  Array.mapi (fun i src -> wrap ~rng:subs.(i) (spec_for i) src) sources

(* --- spec parsing ------------------------------------------------- *)

let known_kinds =
  "drift@START+RAMPxFACTOR, burst@RATE+LENxAMP, stall@START+LEN, dropout@RATE+LEN, \
   corrupt@RATE, mean=V, sigma2=V, hurst=V"

(* The event kind is identified by its prefix (before '@' or '=')
   first, then its arguments are parsed against that kind's one
   syntax — so a typo'd argument reports the kind's expected shape,
   and an unknown kind lists every known one, instead of the generic
   "unrecognized event" a try-them-all chain produces. *)
let parse_event s =
  let s = String.trim s in
  let scan kind expected scanner =
    try scanner () with
    | Scanf.Scan_failure _ | Failure _ | End_of_file ->
      invalid_arg
        (Printf.sprintf "Fault.parse: malformed %s event %S — expected %s" kind s expected)
  in
  let ev =
    match (String.index_opt s '@', String.index_opt s '=') with
    | Some i, _ -> (
      match String.sub s 0 i with
      | "drift" ->
        scan "drift" "drift@START+RAMPxFACTOR (slots, slots, scale)" (fun () ->
            Scanf.sscanf s "drift@%d+%dx%f%!" (fun start ramp factor ->
                Drift { start; ramp; factor }))
      | "burst" ->
        scan "burst" "burst@RATE+LENxAMP (rate in [0,1], mean length, amplitude)" (fun () ->
            Scanf.sscanf s "burst@%f+%fx%f%!" (fun rate mean_len amplitude ->
                Burst { rate; mean_len; amplitude }))
      | "stall" ->
        scan "stall" "stall@START+LEN (slots, slots)" (fun () ->
            Scanf.sscanf s "stall@%d+%d%!" (fun start len -> Stall { start; len }))
      | "dropout" ->
        scan "dropout" "dropout@RATE+LEN (rate in [0,1], mean length)" (fun () ->
            Scanf.sscanf s "dropout@%f+%f%!" (fun rate mean_len -> Dropout { rate; mean_len }))
      | "corrupt" ->
        scan "corrupt" "corrupt@RATE (rate in [0,1])" (fun () ->
            Scanf.sscanf s "corrupt@%f%!" (fun rate -> Corrupt { rate }))
      | kind ->
        invalid_arg
          (Printf.sprintf "Fault.parse: unknown fault kind %S in event %S; known kinds: %s"
             kind s known_kinds))
    | None, Some i -> (
      let field = String.sub s 0 i in
      let value () =
        scan field (field ^ "=VALUE (a float)") (fun () ->
            Scanf.sscanf s "%_s@=%f%!" (fun v -> v))
      in
      match field with
      | "mean" -> Misdeclare { mean = Some (value ()); sigma2 = None; hurst = None }
      | "sigma2" -> Misdeclare { mean = None; sigma2 = Some (value ()); hurst = None }
      | "hurst" -> Misdeclare { mean = None; sigma2 = None; hurst = Some (value ()) }
      | field ->
        invalid_arg
          (Printf.sprintf
             "Fault.parse: unknown misdeclare field %S in event %S; known kinds: %s" field s
             known_kinds))
    | None, None ->
      invalid_arg
        (Printf.sprintf "Fault.parse: unrecognized event %S; known kinds: %s" s known_kinds)
  in
  validate ev;
  ev

let parse_group s =
  match String.index_opt s ':' with
  | None -> invalid_arg (Printf.sprintf "Fault.parse: group %S lacks 'target:'" s)
  | Some i ->
    let target = String.trim (String.sub s 0 i) in
    let events = String.sub s (i + 1) (String.length s - i - 1) in
    let target =
      if target = "*" then None
      else
        match int_of_string_opt target with
        | Some j when j >= 0 -> Some j
        | _ -> invalid_arg (Printf.sprintf "Fault.parse: bad target %S" target)
    in
    let events =
      String.split_on_char ',' events
      |> List.filter (fun s -> String.trim s <> "")
      |> List.map parse_event
    in
    if events = [] then invalid_arg (Printf.sprintf "Fault.parse: group %S has no events" s);
    (target, events)

let parse s =
  let groups =
    String.split_on_char ';' s |> List.filter (fun s -> String.trim s <> "")
  in
  if groups = [] then invalid_arg "Fault.parse: empty spec";
  List.map parse_group groups

let pp_event ppf = function
  | Drift { start; ramp; factor } -> Fmt.pf ppf "drift@%d+%dx%g" start ramp factor
  | Burst { rate; mean_len; amplitude } -> Fmt.pf ppf "burst@%g+%gx%g" rate mean_len amplitude
  | Stall { start; len } -> Fmt.pf ppf "stall@%d+%d" start len
  | Dropout { rate; mean_len } -> Fmt.pf ppf "dropout@%g+%g" rate mean_len
  | Corrupt { rate } -> Fmt.pf ppf "corrupt@%g" rate
  | Misdeclare { mean; sigma2; hurst } ->
    let field name = function None -> [] | Some v -> [ Printf.sprintf "%s=%g" name v ] in
    Fmt.pf ppf "%s"
      (String.concat "," (field "mean" mean @ field "sigma2" sigma2 @ field "hurst" hurst))

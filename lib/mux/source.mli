(** Pull-based streaming VBR traffic sources.

    A source yields one arrival (work, e.g. bytes) per multiplexer
    slot, on demand, together with a strict-priority class for that
    slot (0 = highest; the composite MPEG source can put I frames in
    a higher class than P/B frames). Sources built from fitted models
    ({!of_model}, {!of_mpeg}) stream in O(order) resident memory: the
    background Gaussian process runs Hosking's Durbin–Levinson
    recursion exactly up to lag [order], then continues with the
    frozen AR([order]) filter over a sliding window — the streaming
    form of {!Ss_fractal.Hosking.generate_truncated}, so dependence
    is exact up to lag [order] and AR-approximated beyond, with no
    full-trace materialization. This is what lets [vbrsim mux
    --sources N] multiplex many long heterogeneous sources without
    O(N * slots) memory.

    Every source also exposes a {e block} pull ({!next_block}) that
    fills preallocated buffers many slots at a time. Model-backed
    sources implement it natively (cache-blocked AR kernel, or an
    FFT-exact materialized path); for hand-rolled pull functions a
    default adapter loops the scalar pull. Scalar and block pulls
    drain the same underlying stream, so they can be interleaved
    freely and produce bit-identical slot sequences. *)

exception End_of_stream
(** Raised by a pull function when the source has no further slots —
    a *clean departure*, not an error: {!Mux.run} catches it, retires
    the source and continues the run with the remaining sources
    (recording the departure slot in the report). Finite sources
    ({!of_array} with [cycle:false], model sources with a [horizon])
    raise it on exhaustion. *)

type ckpt = { ck_save : Ss_checkpoint.W.t -> unit; ck_restore : Ss_checkpoint.R.t -> unit }
(** Checkpoint capability of a source: [ck_save] serializes the pull
    state, [ck_restore] overwrites it in place such that the stream
    continues bit-for-bit from the saved slot. *)

type t = {
  name : string;
  mean : float;  (** nominal per-slot mean arrival (model bookkeeping) *)
  sigma2 : float;  (** nominal per-slot marginal variance *)
  hurst : float;  (** Hurst parameter of the underlying model *)
  pull : unit -> float * int;  (** next slot's (work, priority class) *)
  pull_block : float array -> int array -> int -> int -> int;
      (** [pull_block wbuf cbuf off len] fills
          [wbuf.(off .. off+len-1)] with the next [len] slots' work
          and [cbuf] likewise with their classes, returning the
          number of slots actually filled. A short count means the
          source departed cleanly after that many slots (the block
          analogue of {!End_of_stream}; subsequent calls return 0).
          Must raise [Invalid_argument] when the range falls outside
          either buffer. *)
  ckpt : ckpt option;
      (** Checkpoint support; [None] for hand-rolled pulls that did
          not supply one (such sources refuse {!save}). All built-in
          constructors except the importance-sampling variants
          provide it. *)
}

type backend = [ `Hosking | `Davies_harte | `Paxson ]
(** Background-synthesis backend for model sources. [`Hosking]
    (default) streams the truncated Durbin–Levinson recursion —
    open-ended, O(order) memory, exact to lag [order]. [`Davies_harte]
    materializes the whole fixed-[horizon] background path exactly
    (every lag, not just the first [order]) in O(horizon log horizon)
    via circulant embedding; it requires [~horizon] and the source
    departs cleanly when the horizon is exhausted. [`Paxson] is the
    approximate half-size-circulant FFT sampler
    ({!Ss_fractal.Paxson}): the same fixed-[horizon] contract as
    [`Davies_harte] at roughly twice its synthesis throughput, but
    only statistically faithful (gated on sample ACF and
    variance–time Hurst, never bitwise) — meant for bulk background
    traffic. Both materializing backends are refused by
    {!Mux_is.make_config}: approximate or not, they produce no
    per-step innovations for the streaming likelihood. *)

type precision = [ `Exact | `Relaxed ]
(** Arithmetic tier for model sources. [`Exact] (default) keeps every
    committed fixture bitwise: single-accumulator AR dot kernel,
    erf-backed [normal_cdf]. [`Relaxed] swaps in the 4-accumulator
    reassociated dot kernel ({!Ss_fractal.Hosking.ar_dot_relaxed})
    and the erf-free CDF ({!Ss_stats.Special.normal_cdf_relaxed},
    absolute error < 7.5e-8) — measurably faster, statistically
    equivalent, but NOT bit-compatible: relaxed runs have their own
    fixture set and the same seed produces different (equally valid)
    sample paths than the exact tier. *)

type kernel = [ `Exact | `Relaxed | `Fft ]
(** Streaming-synthesis kernel for model sources — supersedes
    {!precision} with a third tier. [`Exact] and [`Relaxed] are the
    two {!precision} tiers. [`Fft] runs the overlap-save FFT block
    kernel ({!Ss_fractal.Hosking.Fft_plan}): the frozen AR filter's
    contribution beyond the first partition of lags is computed
    spectrally per block of {!Ss_fractal.Hosking.Fft_plan.partition}
    slots, breaking the O(order)-per-slot ceiling — amortized
    O(order/partition + log partition + partition) per slot. Like
    [`Relaxed] it is statistically equivalent to (and gated against)
    the exact tier but seed-incompatible with it, and it uses the
    relaxed marginal transform. Only the streaming [`Hosking] backend
    is affected; materializing backends ignore the kernel for the
    background (the relaxed transform choice still applies). Refused
    by {!Mux_is.make_config} for non-[`Exact] values: importance
    sampling certifies likelihoods against the exact fixture tier. *)

val make :
  ?pull_block:(float array -> int array -> int -> int -> int) ->
  ?ckpt:ckpt ->
  name:string ->
  mean:float ->
  sigma2:float ->
  hurst:float ->
  (unit -> float * int) ->
  t
(** Wrap an arbitrary pull function. When [pull_block] is omitted, a
    default block implementation loops the scalar pull (bit-identical
    by construction); when supplied, the caller must guarantee the
    two pulls drain one shared stream. [ckpt] (default [None])
    declares checkpoint support for the wrapped state.
    @raise Invalid_argument if [mean < 0], [sigma2 < 0] or [hurst]
    outside (0,1). *)

val supports_checkpoint : t -> bool
(** Whether {!save}/{!restore} are available on this source. *)

val save : t -> Ss_checkpoint.W.t -> unit
(** Serialize the source's pull state (name-stamped). O(order) for
    streaming model sources; O(1) for materializing backends, whose
    path is regenerated from the recorded initial generator state on
    the first post-restore pull.
    @raise Invalid_argument if the source has no {!ckpt}. *)

val restore : t -> Ss_checkpoint.R.t -> unit
(** Overwrite the pull state in place from a {!save}d snapshot taken
    on an identically-constructed source; the stream continues
    bit-for-bit.
    @raise Ss_checkpoint.Corrupt on name or structure mismatch.
    @raise Invalid_argument if the source has no {!ckpt}. *)

val next : t -> float * int
(** Pull the next slot's arrival. *)

val next_block : t -> float array -> int array -> off:int -> len:int -> int
(** [next_block t wbuf cbuf ~off ~len] is
    [t.pull_block wbuf cbuf off len]. *)

val of_array : ?name:string -> ?hurst:float -> ?cycle:bool -> float array -> t
(** Replay a materialized arrival array (e.g. a loaded trace) slot by
    slot, class 0. [mean]/[sigma2] are the array's sample moments;
    [hurst] defaults to 0.5 (no a-priori LRD claim). With
    [cycle:false] (default) pulling past the end raises
    {!End_of_stream} (a clean departure under {!Mux.run}); with
    [cycle:true] the array repeats. The block path blits array
    segments directly.
    @raise Invalid_argument on an empty array. *)

val of_model :
  ?name:string ->
  ?order:int ->
  ?backend:backend ->
  ?precision:precision ->
  ?kernel:kernel ->
  ?horizon:int ->
  Ss_core.Model.t ->
  Ss_stats.Rng.t ->
  t
(** Stream the unified model's foreground process (marginal transform
    of the streaming background), class 0. [order] (default 512) is
    the exact-recursion depth / frozen AR order; resident memory and
    per-slot cost are O(order). The Hosking table is cached per
    (background ACF, order), so N same-model sources share one table.
    [mean] is the model's foreground mean; [sigma2] the transform's
    marginal variance by Gauss–Hermite quadrature. The foreground
    value is clamped at zero (histogram-inverse transforms can dip
    slightly negative in the far tail; {!Mux.run} rejects negative
    work).

    With [backend:`Davies_harte] ([`Paxson]) the background is
    synthesized exactly (approximately) over the whole (mandatory)
    [horizon] by circulant embedding — see {!backend}. With a
    [horizon] under the default [`Hosking] backend the source simply
    departs after that many slots. [precision:`Relaxed] swaps in the
    fast-math tier — see {!precision}; it only affects the Hosking
    kernel and the marginal transform, so it composes with every
    backend. [kernel] (see {!kernel}) supersedes [precision] with the
    additional [`Fft] overlap-save tier; when both are given they must
    agree. Default (neither given): [`Exact].
    @raise Invalid_argument if [order < 1] or [order > 19_999], if
    [horizon < 1], if a materializing backend ([`Davies_harte],
    [`Paxson]) is requested without [horizon], or if [precision] and
    [kernel] disagree. *)

val of_model_twisted :
  ?name:string ->
  ?order:int ->
  shift:(int -> float) ->
  ?probe:(k:int -> innovation:float -> unit) ->
  Ss_core.Model.t ->
  Ss_stats.Rng.t ->
  t
(** Importance-sampling variant of {!of_model}: the background
    Gaussian process is generated under the mean-shifted law
    [X'_k = X_k + shift k]. The history kept for the conditional
    means stores the *untwisted* values and the innovations drawn are
    those of the untwisted recursion — exactly the sampling scheme of
    [Ss_fastsim.Is_estimator.replicate] — so a
    [Ss_fastsim.Likelihood] streaming accumulator fed from [probe]
    (called once per slot with the global slot index [k] and the
    innovation, before the shifted value is emitted) reconstructs the
    exact log likelihood ratio of the path. With [shift = fun _ ->
    0.0] the emitted arrivals are bit-identical to {!of_model} on the
    same generator state. Always Hosking-backed: the likelihood
    accumulator needs the per-step innovations, which the
    materializing Davies–Harte backend does not produce. *)

val of_mpeg :
  ?name:string ->
  ?order:int ->
  ?backend:backend ->
  ?precision:precision ->
  ?kernel:kernel ->
  ?horizon:int ->
  ?phase:int ->
  ?priority:bool ->
  Ss_core.Mpeg.t ->
  Ss_stats.Rng.t ->
  t
(** Stream the Section-3.3 composite I/B/P process: slot [t] applies
    the transform of the frame kind at GOP position [phase + t]
    (clamped at zero, as {!Ss_core.Mpeg.arrival_fn} does). [phase]
    (default 0) staggers GOP alignment across sources. With
    [priority:true], I frames are class 0, P class 1, B class 2;
    otherwise every slot is class 0. [mean]/[sigma2] are the
    GOP-pattern-averaged per-slot moments. [backend]/[precision]/
    [kernel]/[horizon] govern the background synthesis exactly as in
    {!of_model} (under [`Relaxed] and [`Fft] the three per-kind
    transforms are relaxed once up front, not per slot).
    @raise Invalid_argument if [phase < 0], [order] out of range,
    [horizon < 1], or a materializing backend without [horizon]. *)

val background_stream :
  acf:Ss_fractal.Acf.t -> order:int -> Ss_stats.Rng.t -> unit -> float
(** The underlying streaming standard-normal background generator
    (exposed for tests and custom marginals): successive calls yield
    the truncated-Hosking path, bit-identical to
    [Ss_fractal.Hosking.generate_truncated ~acf ~max_order:order]
    driven by the same generator state.
    @raise Invalid_argument if [order < 1] or [order > 19_999]. *)

val background_stream_twisted :
  acf:Ss_fractal.Acf.t ->
  order:int ->
  shift:(int -> float) ->
  ?probe:(k:int -> innovation:float -> unit) ->
  Ss_stats.Rng.t ->
  unit ->
  float
(** {!background_stream} under the mean-shifted law, with the same
    untwisted-history / innovation-probe contract as
    {!of_model_twisted}. *)

val table_for : acf:Ss_fractal.Acf.t -> order:int -> Ss_fractal.Hosking.Table.t
(** The cached Hosking table backing model sources at this (ACF,
    order) pair — the table a streaming likelihood accumulator must
    be planned against. Safe to call from any domain: the
    Durbin–Levinson fit runs outside the cache lock (distinct keys
    fit concurrently on a cold start — shards warming different
    models never serialize), and same-key racers wait for the first
    fit instead of duplicating it, so concurrent lookups of one key
    return one shared, physically equal table.
    @raise Invalid_argument if [order < 1] or [order > 19_999]. *)

val plan_for : acf:Ss_fractal.Acf.t -> n:int -> Ss_fractal.Davies_harte.plan
(** The cached Davies–Harte plan backing [`Davies_harte] model
    sources at this (ACF, horizon) pair.
    @raise Invalid_argument if [n < 1] or the ACF is not embeddable
    at this length (see {!Ss_fractal.Davies_harte.plan}). *)

val paxson_plan_for : acf:Ss_fractal.Acf.t -> n:int -> Ss_fractal.Paxson.plan
(** The cached Paxson plan backing [`Paxson] model sources at this
    (ACF, horizon) pair — same cache discipline as {!plan_for}.
    @raise Invalid_argument if [n < 1] (Paxson plans never refuse on
    eigenvalue clipping; see {!Ss_fractal.Paxson.clipped_ratio}). *)

val fft_plan_for : acf:Ss_fractal.Acf.t -> order:int -> Ss_fractal.Hosking.Fft_plan.t
(** The cached overlap-save convolution plan backing [`Fft]-kernel
    model sources at this (ACF, order) pair — same cache discipline
    as {!table_for} (the build itself goes through {!table_for}, so a
    cold plan lookup may also populate the table cache). Plans are
    immutable and shared freely across sources and domains.
    @raise Invalid_argument if [order < 1] or [order > 19_999]. *)

val paxson_clipping_check : acf:Ss_fractal.Acf.t -> n:int -> allow:bool -> float
(** Gate on the Paxson backend's silent eigenvalue clipping: plans
    the (cached) Paxson synthesis and returns
    {!Ss_fractal.Paxson.clipped_ratio}. When the ratio exceeds 0.01
    and [allow] is false, refuses with a message naming the ACF, the
    ratio, and the [--allow-clipping] escape hatch — the CLI calls
    this before building [`Paxson] sources.
    @raise Invalid_argument on refusal or if [n < 1]. *)

val set_table_cache_capacity : int -> unit
(** Bound on the number of Hosking tables retained by the process
    (default 16, least-recently-used eviction). Tables are
    deterministic functions of their (ACF, order) key, so eviction
    only costs a rebuild: a re-fit after eviction is bit-identical.
    Lowering the capacity evicts immediately.
    @raise Invalid_argument if the capacity is [< 1]. *)

val table_cache_length : unit -> int
(** Number of Hosking tables currently cached (for tests and
    memory-budget diagnostics). *)

type cache_stats = { hits : int; misses : int; evictions : int }
(** Cumulative per-cache counters: [hits] lookups served from the
    cache (including waiters who picked up a concurrent builder's
    entry), [misses] lookups that had to build, [evictions] entries
    dropped by LRU pressure (capacity shrinks included). *)

val cache_stats : unit -> (string * cache_stats) list
(** Counters for every process-wide plan/table cache, keyed
    ["hosking-table"], ["davies-harte-plan"], ["paxson-plan"],
    ["hosking-fft-plan"]. Counters are monotone for the process
    lifetime — diff two snapshots to measure a phase (the throughput
    bench prints exactly that). *)

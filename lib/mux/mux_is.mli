(** Importance-sampling estimation of shared-buffer overflow in the
    multiplexer — the paper's Section-5 fast-simulation method lifted
    from the single queue to [N] superposed model sources.

    Each replication drives a fresh set of [N] streaming model
    sources ({!Source.of_model_twisted}) whose background Gaussian
    processes are generated under a mean-shifted law: one {!Twist.t}
    profile shared across sources, scaled per-source (all scales 1 by
    default — the aggregate drift is then [N] times the per-source
    shift's foreground effect). Histories store untwisted values, so
    each source's exact log likelihood ratio is accumulated by a
    streaming {!Ss_fastsim.Likelihood} accumulator fed from the
    source's innovation probe — the O(order)-memory truncated-Hosking
    generalization, matching the recursion the sources themselves
    run. Because the sources are independent, the joint ratio is the
    product (log: sum) of per-source ratios.

    The overflow event is the first passage of the {!Mux.run} shared
    queue (pure-delay, Lindley recursion from empty) above the
    [buffer] threshold within [slots] slots. A replication stops at
    first passage; the likelihood ratio evaluated at the stopping
    time keeps the estimator [1/N sum I_n L_n] unbiased (optional
    stopping), and weights are combined in the log domain
    ({!Ss_queueing.Mc.estimate_of_log_samples}) so deep-buffer runs
    never underflow the figure of merit.

    With [twist = 0] every weight is 1 and the estimator is exactly
    plain Monte Carlo on the same event. *)

type config = {
  model : Ss_core.Model.t;  (** unified model, one per source *)
  sources : int;  (** N, > 0 *)
  order : int;  (** truncated-Hosking exact depth / frozen AR order *)
  service : float;  (** aggregate service per slot, > 0 *)
  buffer : float;  (** overflow threshold on the shared queue, >= 0 *)
  slots : int;  (** horizon (slots per replication), > 0 *)
  twist : float;  (** per-source background mean shift (0 = plain MC) *)
  profile : Ss_fastsim.Twist.t;
      (** the actual shared per-slot shift; [Twist.constant twist]
          unless supplied explicitly *)
  scales : float array;
      (** per-source multipliers on the shared profile (length N) *)
  plans : Ss_fastsim.Likelihood.plan array;
      (** per-source likelihood plans (shared across replications;
          sources with equal scales share one plan) *)
}

val make_config :
  model:Ss_core.Model.t ->
  sources:int ->
  ?order:int ->
  ?backend:Source.backend ->
  ?kernel:Source.kernel ->
  service:float ->
  buffer:float ->
  slots:int ->
  twist:float ->
  ?profile:Ss_fastsim.Twist.t ->
  ?scales:float array ->
  unit ->
  config
(** Validate and precompute. [order] defaults to 256. When [profile]
    is given it overrides the constant [twist] (which then only
    labels the config); [scales] defaults to all ones. [backend] and
    [kernel] exist so callers that select a synthesis backend or a
    fast-math kernel tier get a clear error here rather than a silent
    behavior change: only the defaults [`Hosking] / [`Exact] are
    accepted — the likelihood accumulator consumes the per-step
    innovations of the exact scalar recursion, which neither the
    materializing syntheses nor the reassociated [`Relaxed] / blocked
    [`Fft] kernels produce.
    @raise Invalid_argument on violated constraints (see field docs),
    [backend:`Davies_harte]/[`Paxson], or a non-[`Exact] [kernel]. *)

type replication = {
  hit : bool;  (** the shared queue crossed [buffer] within [slots] *)
  log_weight : float;  (** [log (I * L)]: [neg_infinity] unless hit *)
  stop_slot : int;  (** 1-based first-passage slot, or [slots] *)
}

val replicate : config -> Ss_stats.Rng.t -> replication
(** Run one replication on the given substream: per-source substreams
    are split off in source-index order, so the result is a pure
    function of the substream. Stops the {!Mux.run} drive at first
    passage. *)

val estimate :
  ?pool:Ss_parallel.Pool.t ->
  config ->
  replications:int ->
  Ss_stats.Rng.t ->
  Ss_queueing.Mc.estimate
(** Fan [replications] replications out over the pool with the
    {!Ss_parallel.Fanout} substream discipline and fold the log
    weights with {!Ss_queueing.Mc.estimate_of_log_samples}. The
    estimate is bit-identical for any pool size, including none.
    @raise Invalid_argument if [replications <= 0]. *)

val mean_stop_slot :
  ?pool:Ss_parallel.Pool.t -> config -> replications:int -> Ss_stats.Rng.t -> float
(** Average first-passage slot — a diagnostic of how aggressively the
    twist pushes the aggregate across the buffer. *)

val sweep :
  ?pool:Ss_parallel.Pool.t ->
  config:(twist:float -> config) ->
  twists:float list ->
  replications:int ->
  Ss_stats.Rng.t ->
  Ss_fastsim.Valley.point list
(** Normalized-variance valley sweep over candidate twists, mirroring
    {!Ss_fastsim.Valley.sweep} (same estimator-agnostic core, same
    substream discipline). *)

val auto :
  ?pool:Ss_parallel.Pool.t ->
  config:(twist:float -> config) ->
  ?lo:float ->
  ?hi:float ->
  ?coarse:int ->
  replications:int ->
  Ss_stats.Rng.t ->
  Ss_fastsim.Valley.point
(** Coarse sweep + golden-section refinement of the twist, mirroring
    {!Ss_fastsim.Valley.auto}. *)

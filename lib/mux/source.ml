module Rng = Ss_stats.Rng
module Quad = Ss_stats.Quadrature
module Acf = Ss_fractal.Acf
module Hosking = Ss_fractal.Hosking
module Davies_harte = Ss_fractal.Davies_harte
module Paxson = Ss_fractal.Paxson
module Transform = Ss_fractal.Transform
module Gop = Ss_video.Gop
module Frame = Ss_video.Frame
module Model = Ss_core.Model
module Mpeg = Ss_core.Mpeg

module W = Ss_checkpoint.W
module R = Ss_checkpoint.R

exception End_of_stream

type ckpt = { ck_save : W.t -> unit; ck_restore : R.t -> unit }

type t = {
  name : string;
  mean : float;
  sigma2 : float;
  hurst : float;
  pull : unit -> float * int;
  pull_block : float array -> int array -> int -> int -> int;
  ckpt : ckpt option;
}

type backend = [ `Hosking | `Davies_harte | `Paxson ]
type precision = [ `Exact | `Relaxed ]
type kernel = [ `Exact | `Relaxed | `Fft ]

(* [?precision] predates [?kernel] (which supersedes it with the FFT
   tier); both are accepted, but a call giving both must not silently
   prefer one. *)
let resolve_kernel ~who ~precision ~kernel =
  match (precision, kernel) with
  | None, None -> `Exact
  | Some p, None -> (p :> kernel)
  | None, Some k -> k
  | Some p, Some k ->
    if (p :> kernel) = k then k
    else
      invalid_arg
        (who
       ^ ": ~precision and ~kernel disagree; pass just ~kernel (it supersedes ~precision)")

(* Default block implementation over a scalar pull: one call per slot
   in slot order, so adapted sources consume their state (and their
   substreams) exactly as per-slot pulls would — the block path is
   bit-identical by construction. A mid-block [End_of_stream] ends
   the block short; later blocks keep returning 0 because the
   underlying pull keeps raising. *)
let block_of_pull pull =
  fun wbuf cbuf off len ->
    if len < 0 || off < 0 || off + len > Array.length wbuf || off + len > Array.length cbuf
    then invalid_arg "Source.pull_block: range outside the buffers";
    let i = ref 0 in
    (try
       while !i < len do
         let w, c = pull () in
         wbuf.(off + !i) <- w;
         cbuf.(off + !i) <- c;
         incr i
       done
     with End_of_stream -> ());
    !i

let make ?pull_block ?ckpt ~name ~mean ~sigma2 ~hurst pull =
  if mean < 0.0 then invalid_arg "Source.make: mean < 0";
  if sigma2 < 0.0 then invalid_arg "Source.make: sigma2 < 0";
  if hurst <= 0.0 || hurst >= 1.0 then invalid_arg "Source.make: hurst outside (0,1)";
  let pull_block = match pull_block with Some f -> f | None -> block_of_pull pull in
  { name; mean; sigma2; hurst; pull; pull_block; ckpt }

let supports_checkpoint t = Option.is_some t.ckpt

let save t w =
  match t.ckpt with
  | Some c ->
    W.tag w "source";
    W.string w t.name;
    c.ck_save w
  | None ->
    invalid_arg
      (Printf.sprintf
         "Source.save: source %S does not support checkpointing (hand-rolled pull \
          without ~ckpt)"
         t.name)

let restore t r =
  match t.ckpt with
  | Some c ->
    R.tag r "source";
    let name = R.string r in
    if not (String.equal name t.name) then
      raise
        (Ss_checkpoint.Corrupt
           (Printf.sprintf "source: checkpoint holds state for %S, restoring into %S" name
              t.name));
    c.ck_restore r
  | None ->
    invalid_arg
      (Printf.sprintf "Source.restore: source %S does not support checkpointing" t.name)

let next t = t.pull ()
let next_block t wbuf cbuf ~off ~len = t.pull_block wbuf cbuf off len

let of_array ?(name = "array") ?(hurst = 0.5) ?(cycle = false) xs =
  if Array.length xs = 0 then invalid_arg "Source.of_array: empty array";
  let n = Array.length xs in
  let i = ref 0 in
  let pull () =
    if !i >= n then if cycle then i := 0 else raise End_of_stream;
    let v = xs.(!i) in
    incr i;
    (v, 0)
  in
  (* Native block path: segment blits from the backing array, classes
     all 0 — same replay order and the same exhaustion slot as the
     scalar pull. *)
  let pull_block wbuf cbuf off len =
    if len < 0 || off < 0 || off + len > Array.length wbuf || off + len > Array.length cbuf
    then invalid_arg "Source.pull_block: range outside the buffers";
    let filled = ref 0 in
    let continue = ref true in
    while !filled < len && !continue do
      if !i >= n then if cycle then i := 0 else continue := false;
      if !continue then begin
        let take = Stdlib.min (len - !filled) (n - !i) in
        Array.blit xs !i wbuf (off + !filled) take;
        i := !i + take;
        filled := !filled + take
      end
    done;
    Array.fill cbuf off !filled 0;
    !filled
  in
  let ckpt =
    {
      ck_save =
        (fun w ->
          W.tag w "array-src";
          W.int w !i);
      ck_restore =
        (fun r ->
          R.tag r "array-src";
          let i' = R.int r in
          if i' < 0 || i' > n then
            raise
              (Ss_checkpoint.Corrupt
                 (Printf.sprintf "array-src: replay index %d outside [0, %d]" i' n));
          i := i');
    }
  in
  make ~pull_block ~ckpt ~name ~mean:(Ss_stats.Descriptive.mean xs)
    ~sigma2:(Ss_stats.Descriptive.variance xs) ~hurst pull

(* One Hosking table (or Davies–Harte plan) per (background ACF,
   order/length) — N same-model sources share the O(order^2)
   coefficients.

   The key is a structural fingerprint of the ACF — its values
   sampled on a fixed lag grid — not the ACF's display name: two
   distinct models that happen to share a name must not collide. The
   table is fully determined by [r] on lags 0..order, so equal
   fingerprints that still differed beyond the grid could at worst
   share bit-identical-by-construction coefficients of a different
   model; 64 sampled lags spread across the whole range make that a
   measure-zero concern for the smooth ACF families used here. *)
let fingerprint ~acf ~order =
  let samples = 64 in
  let buf = Buffer.create (samples * 8) in
  for i = 0 to samples - 1 do
    let k = i * order / (samples - 1) in
    Buffer.add_int64_le buf (Int64.bits_of_float (acf.Acf.r k))
  done;
  Digest.string (Buffer.contents buf)

(* Bounded LRU under a mutex, shared by the table and plan caches.
   Values are deterministic functions of the key, so eviction only
   costs a rebuild — a re-fit after eviction is bit-identical (unit
   tested). Builds happen OUTSIDE the lock (construction is
   O(order^2)), inserted if-absent on completion, so a cold start
   never serializes distinct keys behind one Durbin–Levinson fit —
   N shards warming N different models fit concurrently. Same-key
   racers do not duplicate the fit either: the first requester
   registers the key as [pending] and builds; later requesters wait
   on the condition variable and pick up the winner's entry, so
   concurrent lookups of one key always yield one shared (physically
   equal) table. A failed build unregisters the key, wakes the
   waiters, and lets the next requester retry. *)
module Cache = struct
  type 'a entry = { value : 'a; mutable last_use : int }

  type stats = { hits : int; misses : int; evictions : int }

  type 'a t = {
    tbl : (string * int, 'a entry) Hashtbl.t;
    pending : (string * int, unit) Hashtbl.t;  (* keys being built *)
    built : Condition.t;  (* a pending build completed or failed *)
    mutex : Mutex.t;
    mutable cap : int;
    mutable tick : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create cap =
    {
      tbl = Hashtbl.create 8;
      pending = Hashtbl.create 4;
      built = Condition.create ();
      mutex = Mutex.create ();
      cap;
      tick = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let evict_lru_locked t =
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.last_use -> acc
          | _ -> Some (k, e.last_use))
        t.tbl None
    in
    match victim with
    | None -> ()
    | Some (k, _) ->
      Hashtbl.remove t.tbl k;
      t.evictions <- t.evictions + 1

  let stats t =
    Mutex.lock t.mutex;
    let s = { hits = t.hits; misses = t.misses; evictions = t.evictions } in
    Mutex.unlock t.mutex;
    s

  let set_capacity t cap =
    if cap < 1 then invalid_arg "Source.set_table_cache_capacity: capacity < 1";
    Mutex.lock t.mutex;
    t.cap <- cap;
    while Hashtbl.length t.tbl > t.cap do
      evict_lru_locked t
    done;
    Mutex.unlock t.mutex

  let length t =
    Mutex.lock t.mutex;
    let n = Hashtbl.length t.tbl in
    Mutex.unlock t.mutex;
    n

  let find_or_build t key build =
    let claim =
      Mutex.lock t.mutex;
      let rec decide () =
        match Hashtbl.find_opt t.tbl key with
        | Some e ->
          t.tick <- t.tick + 1;
          e.last_use <- t.tick;
          t.hits <- t.hits + 1;
          `Hit e.value
        | None ->
          if Hashtbl.mem t.pending key then begin
            (* Someone is fitting this key right now: wait for the
               completion broadcast instead of burning a domain on a
               duplicate O(order^2) fit, then re-check (the winner's
               entry is normally there; if the build failed or the
               entry was already evicted, retry as a builder). *)
            Condition.wait t.built t.mutex;
            decide ()
          end
          else begin
            Hashtbl.add t.pending key ();
            t.misses <- t.misses + 1;
            `Build
          end
      in
      let r = decide () in
      Mutex.unlock t.mutex;
      r
    in
    match claim with
    | `Hit v -> v
    | `Build ->
      let v =
        try build ()
        with e ->
          Mutex.lock t.mutex;
          Hashtbl.remove t.pending key;
          Condition.broadcast t.built;
          Mutex.unlock t.mutex;
          raise e
      in
      Mutex.lock t.mutex;
      Hashtbl.remove t.pending key;
      let winner =
        match Hashtbl.find_opt t.tbl key with
        | Some e ->
          (* Unreachable while pending dedup holds (only the claimant
             inserts this key), kept as insert-if-absent so a racing
             insert could never shadow an entry. *)
          t.tick <- t.tick + 1;
          e.last_use <- t.tick;
          e.value
        | None ->
          while Hashtbl.length t.tbl >= t.cap do
            evict_lru_locked t
          done;
          t.tick <- t.tick + 1;
          Hashtbl.add t.tbl key { value = v; last_use = t.tick };
          v
      in
      Condition.broadcast t.built;
      Mutex.unlock t.mutex;
      winner
end

let default_cache_capacity = 16
let table_cache : Hosking.Table.t Cache.t = Cache.create default_cache_capacity
let plan_cache : Davies_harte.plan Cache.t = Cache.create default_cache_capacity
let paxson_plan_cache : Paxson.plan Cache.t = Cache.create default_cache_capacity
let fft_plan_cache : Hosking.Fft_plan.t Cache.t = Cache.create default_cache_capacity
let set_table_cache_capacity cap = Cache.set_capacity table_cache cap
let table_cache_length () = Cache.length table_cache

type cache_stats = Cache.stats = { hits : int; misses : int; evictions : int }

let cache_stats () =
  [
    ("hosking-table", Cache.stats table_cache);
    ("davies-harte-plan", Cache.stats plan_cache);
    ("paxson-plan", Cache.stats paxson_plan_cache);
    ("hosking-fft-plan", Cache.stats fft_plan_cache);
  ]

let table_for ~acf ~order =
  if order < 1 || order > 19_999 then
    invalid_arg "Source.table_for: order outside [1, 19999]";
  Cache.find_or_build table_cache
    (fingerprint ~acf ~order, order)
    (fun () -> Hosking.Table.make ~acf ~n:(order + 1))

let plan_for ~acf ~n =
  if n < 1 then invalid_arg "Source.plan_for: n < 1";
  Cache.find_or_build plan_cache
    (fingerprint ~acf ~order:n, n)
    (fun () -> Davies_harte.plan ~acf ~n)

let paxson_plan_for ~acf ~n =
  if n < 1 then invalid_arg "Source.paxson_plan_for: n < 1";
  Cache.find_or_build paxson_plan_cache
    (fingerprint ~acf ~order:n, n)
    (fun () -> Paxson.plan ~acf ~n)

let fft_plan_for ~acf ~order =
  if order < 1 || order > 19_999 then
    invalid_arg "Source.fft_plan_for: order outside [1, 19999]";
  Cache.find_or_build fft_plan_cache
    (fingerprint ~acf ~order, order)
    (* The plan is a pure function of (ACF, order): the table lookup
       below hits (or populates) the table cache, and the partition
       spectra derived from any bit-identical re-fit are themselves
       bit-identical. *)
    (fun () -> Hosking.Fft_plan.make ~table:(table_for ~acf ~order) ~order)

(* Shared truncated-Hosking core. [shift]/[probe] hook in the
   importance sampler: the *untwisted* value is kept in [hist] (so
   conditional means stay those of the original law), the per-step
   innovation is reported to [probe] for likelihood accumulation, and
   [shift k] is added only to the emitted value. With both hooks
   absent the arithmetic is exactly that of the original
   [background_stream] (the innovation is merely let-bound), so the
   plain path stays bit-identical — and identical, in turn, to the
   block kernel ({!Ss_fractal.Hosking.Block}) that the plain model
   sources now run on. *)
let background_stream_gen ~acf ~order ~shift ~probe rng =
  let table = table_for ~acf ~order in
  (* [hist] holds the last [min k order] background values in
     chronological order; O(order) resident state. *)
  let hist = Array.make order 0.0 in
  let k = ref 0 in
  fun () ->
    let kk = if !k < order then !k else order in
    let m = Hosking.Table.cond_mean table hist kk in
    let innovation = Hosking.Table.innovation_std table kk *. Rng.gaussian rng in
    let x = m +. innovation in
    if !k < order then hist.(!k) <- x
    else begin
      Array.blit hist 1 hist 0 (order - 1);
      hist.(order - 1) <- x
    end;
    (match probe with None -> () | Some f -> f ~k:!k ~innovation);
    let out = match shift with None -> x | Some s -> x +. s !k in
    incr k;
    out

let background_stream ~acf ~order rng = background_stream_gen ~acf ~order ~shift:None ~probe:None rng

let background_stream_twisted ~acf ~order ~shift ?probe rng =
  background_stream_gen ~acf ~order ~shift:(Some shift) ~probe rng

let check_horizon who horizon =
  match horizon with
  | Some h when h < 1 -> invalid_arg (who ^ ": horizon < 1")
  | _ -> ()

(* Background block filler: [fill buf off len] appends up to [len]
   fresh background values, returning the count (short only once a
   finite horizon is exhausted). The Hosking backend streams through
   the cache-blocked ring kernel (relaxed dot kernel when the source
   runs the fast-math tier, overlap-save FFT kernel under [`Fft]); the
   Davies–Harte and Paxson backends materialize the whole
   fixed-horizon path (exactly resp. approximately, both O(n log n))
   on first use and replay it — the kernel choice only governs the
   streaming Hosking recursion, so it is ignored there. *)
let bg_filler ~who ~acf ~order ~backend ~horizon ~kernel rng =
  let materialized n generate =
    if order < 1 || order > 19_999 then invalid_arg (who ^ ": order outside [1, 19999]");
    (* Deferred so construction consumes no randomness — like the
       Hosking streams, the generator state only advances on pulls.
       An explicit option (not [lazy]) so restore can reset it: the
       checkpoint stores the generator's *initial* state ([rng0],
       captured here) plus the replay position — O(1), never the
       O(horizon) path, which is regenerated bit-identically from
       [rng0] on the first post-restore pull. *)
    let rng0 = Rng.copy rng in
    let path = ref None in
    let ensure () =
      match !path with
      | Some xs -> xs
      | None ->
        let xs = generate rng in
        path := Some xs;
        xs
    in
    let pos = ref 0 in
    let fill buf off len =
      let xs = ensure () in
      let take = Stdlib.min len (n - !pos) in
      Array.blit xs !pos buf off take;
      pos := !pos + take;
      take
    in
    let ckpt =
      {
        ck_save =
          (fun w ->
            W.tag w "bg-materialized";
            Rng.save rng0 w;
            W.int w !pos);
        ck_restore =
          (fun r ->
            R.tag r "bg-materialized";
            Rng.restore rng0 r;
            Rng.copy_into ~src:rng0 ~dst:rng;
            let pos' = R.int r in
            if pos' < 0 || pos' > n then
              raise
                (Ss_checkpoint.Corrupt
                   (Printf.sprintf "bg-materialized: position %d outside [0, %d]" pos' n));
            pos := pos';
            path := None);
      }
    in
    (fill, ckpt)
  in
  let require_horizon backend_name =
    match horizon with
    | Some h -> h
    | None ->
      invalid_arg
        (Printf.sprintf
           "%s: backend %s synthesizes a fixed-length path; pass ~horizon (or use `Hosking \
            for open-ended streaming)"
           who backend_name)
  in
  match backend with
  | `Hosking ->
    let table = table_for ~acf ~order in
    let blk =
      match kernel with
      | `Exact -> Hosking.Block.create ~table ~order ()
      | `Relaxed -> Hosking.Block.create ~relaxed:true ~table ~order ()
      | `Fft -> Hosking.Block.create ~fft_plan:(fft_plan_for ~acf ~order) ~table ~order ()
    in
    let remaining = ref (match horizon with None -> max_int | Some h -> h) in
    let fill buf off len =
      let take = if len < !remaining then len else !remaining in
      Hosking.Block.fill blk rng buf ~off ~len:take;
      remaining := !remaining - take;
      take
    in
    let ckpt =
      {
        ck_save =
          (fun w ->
            W.tag w "bg-hosking";
            Rng.save rng w;
            Hosking.Block.save blk w;
            W.int w !remaining);
        ck_restore =
          (fun r ->
            R.tag r "bg-hosking";
            Rng.restore rng r;
            Hosking.Block.restore blk r;
            remaining := R.int r);
      }
    in
    (fill, ckpt)
  | `Davies_harte ->
    let n = require_horizon "`Davies_harte" in
    let plan = plan_for ~acf ~n in
    materialized n (Davies_harte.generate plan)
  | `Paxson ->
    let n = require_horizon "`Paxson" in
    let plan = paxson_plan_for ~acf ~n in
    materialized n (Paxson.generate plan)

(* Clipping gate for the approximate Paxson backend: the plan never
   refuses (clipping negative circulant eigenvalues is its design
   trade), but silently distorting more than 1% of the spectral mass
   is a correctness hazard at the CLI boundary. Returns the ratio so
   callers can report it. *)
let paxson_clipping_check ~acf ~n ~allow =
  let plan = paxson_plan_for ~acf ~n in
  let ratio = Paxson.clipped_ratio plan in
  if ratio > 0.01 && not allow then
    invalid_arg
      (Printf.sprintf
         "Source.paxson_clipping_check: the Paxson backend clipped %.2f%% of the circulant \
          spectral mass for ACF %s at n=%d (limit 1%%) — the synthesized correlation \
          structure would be distorted; pass --allow-clipping to proceed anyway, or use \
          --backend davies-harte (exact, refuses non-embeddable ACFs) or --backend hosking"
         (100.0 *. ratio) acf.Acf.name n);
  ratio

(* Per-slot marginal moments of a transform, by Gauss-Hermite
   quadrature on the standard-normal background. *)
let transform_moments h =
  let m = Quad.gaussian_expectation ~n:128 (fun x -> Transform.apply1 h x) in
  let m2 = Quad.gaussian_expectation ~n:128 (fun x -> let y = Transform.apply1 h x in y *. y) in
  (m, Stdlib.max 0.0 (m2 -. (m *. m)))

let of_model_gen ~name ~order ~shift ~probe model rng =
  let acf = Model.background_acf model in
  let bg = background_stream_gen ~acf ~order ~shift ~probe rng in
  let h = model.Model.transform in
  let _, sigma2 = transform_moments h in
  (* Clamp at zero like [of_mpeg]: histogram-inverse transforms can
     dip slightly negative in the far tail, and Mux.run rejects
     negative work. *)
  let pull () = (Stdlib.max 0.0 (Transform.apply1 h (bg ())), 0) in
  make ~name ~mean:model.Model.mean ~sigma2 ~hurst:model.Model.hurst pull

let of_model ?(name = "model") ?(order = 512) ?(backend = `Hosking) ?precision ?kernel
    ?horizon model rng =
  check_horizon "Source.of_model" horizon;
  let kernel = resolve_kernel ~who:"Source.of_model" ~precision ~kernel in
  let acf = Model.background_acf model in
  let fill_bg, bg_ckpt =
    bg_filler ~who:"Source.of_model" ~acf ~order ~backend ~horizon ~kernel rng
  in
  (* The FFT kernel is already seed-incompatible with the exact tier,
     so it rides the relaxed marginal transform for the same per-slot
     speed; only [`Exact] keeps the erf-backed CDF. *)
  let h =
    if kernel = `Exact then model.Model.transform else Transform.relax model.Model.transform
  in
  let _, sigma2 = transform_moments h in
  (* Same per-slot arithmetic as the scalar path: transform, then the
     zero clamp of [of_model_gen]. The clamp is [Stdlib.max 0.0 w]
     monomorphized ([if 0.0 >= w then 0.0 else w] — the same
     definition on a float comparison, NaN passed through), avoiding
     a boxed polymorphic-compare call per slot. *)
  let pull_block wbuf cbuf off len =
    if len < 0 || off < 0 || off + len > Array.length wbuf || off + len > Array.length cbuf
    then invalid_arg "Source.pull_block: range outside the buffers";
    let f = fill_bg wbuf off len in
    for j = off to off + f - 1 do
      let w = Transform.apply1 h (Array.unsafe_get wbuf j) in
      wbuf.(j) <- (if 0.0 >= w then 0.0 else w)
    done;
    Array.fill cbuf off f 0;
    f
  in
  (* The scalar pull is the block path at block size one, so scalar
     and block consumption interleave coherently on one source. *)
  let wtmp = [| 0.0 |] and ctmp = [| 0 |] in
  let pull () = if pull_block wtmp ctmp 0 1 = 1 then (wtmp.(0), 0) else raise End_of_stream in
  (* The marginal transform is stateless: the background filler is the
     whole checkpointable state. *)
  make ~pull_block ~ckpt:bg_ckpt ~name ~mean:model.Model.mean ~sigma2
    ~hurst:model.Model.hurst pull

let of_model_twisted ?(name = "model-is") ?(order = 512) ~shift ?probe model rng =
  of_model_gen ~name ~order ~shift:(Some shift) ~probe model rng

let of_mpeg ?(name = "mpeg") ?(order = 512) ?(backend = `Hosking) ?precision ?kernel
    ?horizon ?(phase = 0) ?(priority = false) m rng =
  if phase < 0 then invalid_arg "Source.of_mpeg: phase < 0";
  check_horizon "Source.of_mpeg" horizon;
  let kernel = resolve_kernel ~who:"Source.of_mpeg" ~precision ~kernel in
  let relaxed = kernel <> `Exact in
  let gop = m.Mpeg.gop in
  let fill_bg, bg_ckpt =
    bg_filler ~who:"Source.of_mpeg" ~acf:m.Mpeg.background ~order ~backend ~horizon ~kernel
      rng
  in
  let klass kind =
    if not priority then 0
    else match kind with Frame.I -> 0 | Frame.P -> 1 | Frame.B -> 2
  in
  let transform =
    let exact kind = Ss_video.Composite.transform m.Mpeg.composite kind in
    if not relaxed then exact
    else begin
      (* Relax each per-kind transform once up front — [transform] is
         called per slot in the block loop. *)
      let ti = Transform.relax (exact Frame.I) in
      let tp = Transform.relax (exact Frame.P) in
      let tb = Transform.relax (exact Frame.B) in
      function Frame.I -> ti | Frame.P -> tp | Frame.B -> tb
    end
  in
  (* GOP-pattern-averaged per-slot moments: the process is
     cyclostationary, so average E[h_k] and E[h_k^2] over one
     pattern. *)
  let period = Gop.length gop in
  let mean, sigma2 =
    let sum_m = ref 0.0 and sum_m2 = ref 0.0 in
    for i = 0 to period - 1 do
      let h = transform (Gop.kind_at gop i) in
      let mk, vk = transform_moments h in
      sum_m := !sum_m +. mk;
      sum_m2 := !sum_m2 +. vk +. (mk *. mk)
    done;
    let m1 = !sum_m /. float_of_int period in
    (m1, Stdlib.max 0.0 ((!sum_m2 /. float_of_int period) -. (m1 *. m1)))
  in
  let t = ref phase in
  let pull_block wbuf cbuf off len =
    if len < 0 || off < 0 || off + len > Array.length wbuf || off + len > Array.length cbuf
    then invalid_arg "Source.pull_block: range outside the buffers";
    let f = fill_bg wbuf off len in
    for j = off to off + f - 1 do
      let kind = Gop.kind_at gop !t in
      incr t;
      let w = Transform.apply1 (transform kind) (Array.unsafe_get wbuf j) in
      wbuf.(j) <- (if 0.0 >= w then 0.0 else w);
      cbuf.(j) <- klass kind
    done;
    f
  in
  let wtmp = [| 0.0 |] and ctmp = [| 0 |] in
  let pull () =
    if pull_block wtmp ctmp 0 1 = 1 then (wtmp.(0), ctmp.(0)) else raise End_of_stream
  in
  let ckpt =
    {
      ck_save =
        (fun w ->
          bg_ckpt.ck_save w;
          W.tag w "mpeg-gop";
          W.int w !t);
      ck_restore =
        (fun r ->
          bg_ckpt.ck_restore r;
          R.tag r "mpeg-gop";
          t := R.int r);
    }
  in
  make ~pull_block ~ckpt ~name ~mean ~sigma2 ~hurst:m.Mpeg.i_model.Model.hurst pull

module Rng = Ss_stats.Rng
module Quad = Ss_stats.Quadrature
module Acf = Ss_fractal.Acf
module Hosking = Ss_fractal.Hosking
module Transform = Ss_fractal.Transform
module Gop = Ss_video.Gop
module Frame = Ss_video.Frame
module Model = Ss_core.Model
module Mpeg = Ss_core.Mpeg

exception End_of_stream

type t = {
  name : string;
  mean : float;
  sigma2 : float;
  hurst : float;
  pull : unit -> float * int;
}

let make ~name ~mean ~sigma2 ~hurst pull =
  if mean < 0.0 then invalid_arg "Source.make: mean < 0";
  if sigma2 < 0.0 then invalid_arg "Source.make: sigma2 < 0";
  if hurst <= 0.0 || hurst >= 1.0 then invalid_arg "Source.make: hurst outside (0,1)";
  { name; mean; sigma2; hurst; pull }

let next t = t.pull ()

let of_array ?(name = "array") ?(hurst = 0.5) ?(cycle = false) xs =
  if Array.length xs = 0 then invalid_arg "Source.of_array: empty array";
  let n = Array.length xs in
  let i = ref 0 in
  let pull () =
    if !i >= n then if cycle then i := 0 else raise End_of_stream;
    let v = xs.(!i) in
    incr i;
    (v, 0)
  in
  make ~name ~mean:(Ss_stats.Descriptive.mean xs)
    ~sigma2:(Ss_stats.Descriptive.variance xs) ~hurst pull

(* One Hosking table per (background ACF, order) — N same-model
   sources share the O(order^2) coefficients.

   The key is a structural fingerprint of the ACF — its values
   sampled on a fixed lag grid — not the ACF's display name: two
   distinct models that happen to share a name must not collide. The
   table is fully determined by [r] on lags 0..order, so equal
   fingerprints that still differed beyond the grid could at worst
   share bit-identical-by-construction coefficients of a different
   model; 64 sampled lags spread across the whole range make that a
   measure-zero concern for the smooth ACF families used here. *)
let fingerprint ~acf ~order =
  let samples = 64 in
  let buf = Buffer.create (samples * 8) in
  for i = 0 to samples - 1 do
    let k = i * order / (samples - 1) in
    Buffer.add_int64_le buf (Int64.bits_of_float (acf.Acf.r k))
  done;
  Digest.string (Buffer.contents buf)

let table_cache : (string * int, Hosking.Table.t) Hashtbl.t = Hashtbl.create 8
let table_cache_mutex = Mutex.create ()

let table_for ~acf ~order =
  if order < 1 || order > 19_999 then
    invalid_arg "Source.table_for: order outside [1, 19999]";
  let key = (fingerprint ~acf ~order, order) in
  let lookup () =
    Mutex.lock table_cache_mutex;
    let found = Hashtbl.find_opt table_cache key in
    Mutex.unlock table_cache_mutex;
    found
  in
  match lookup () with
  | Some t -> t
  | None ->
    (* Build outside the lock: construction is O(order^2) and the
       table is deterministic, so if two domains race here they build
       identical coefficients and the first insert wins. *)
    let t = Hosking.Table.make ~acf ~n:(order + 1) in
    Mutex.lock table_cache_mutex;
    let winner =
      match Hashtbl.find_opt table_cache key with
      | Some existing -> existing
      | None ->
        Hashtbl.add table_cache key t;
        t
    in
    Mutex.unlock table_cache_mutex;
    winner

(* Shared truncated-Hosking core. [shift]/[probe] hook in the
   importance sampler: the *untwisted* value is kept in [hist] (so
   conditional means stay those of the original law), the per-step
   innovation is reported to [probe] for likelihood accumulation, and
   [shift k] is added only to the emitted value. With both hooks
   absent the arithmetic is exactly that of the original
   [background_stream] (the innovation is merely let-bound), so the
   plain path stays bit-identical. *)
let background_stream_gen ~acf ~order ~shift ~probe rng =
  let table = table_for ~acf ~order in
  (* [hist] holds the last [min k order] background values in
     chronological order; O(order) resident state. *)
  let hist = Array.make order 0.0 in
  let k = ref 0 in
  fun () ->
    let kk = if !k < order then !k else order in
    let m = Hosking.Table.cond_mean table hist kk in
    let innovation = Hosking.Table.innovation_std table kk *. Rng.gaussian rng in
    let x = m +. innovation in
    if !k < order then hist.(!k) <- x
    else begin
      Array.blit hist 1 hist 0 (order - 1);
      hist.(order - 1) <- x
    end;
    (match probe with None -> () | Some f -> f ~k:!k ~innovation);
    let out = match shift with None -> x | Some s -> x +. s !k in
    incr k;
    out

let background_stream ~acf ~order rng = background_stream_gen ~acf ~order ~shift:None ~probe:None rng

let background_stream_twisted ~acf ~order ~shift ?probe rng =
  background_stream_gen ~acf ~order ~shift:(Some shift) ~probe rng

(* Per-slot marginal moments of a transform, by Gauss-Hermite
   quadrature on the standard-normal background. *)
let transform_moments h =
  let m = Quad.gaussian_expectation ~n:128 (fun x -> Transform.apply1 h x) in
  let m2 = Quad.gaussian_expectation ~n:128 (fun x -> let y = Transform.apply1 h x in y *. y) in
  (m, Stdlib.max 0.0 (m2 -. (m *. m)))

let of_model_gen ~name ~order ~shift ~probe model rng =
  let acf = Model.background_acf model in
  let bg = background_stream_gen ~acf ~order ~shift ~probe rng in
  let h = model.Model.transform in
  let _, sigma2 = transform_moments h in
  (* Clamp at zero like [of_mpeg]: histogram-inverse transforms can
     dip slightly negative in the far tail, and Mux.run rejects
     negative work. *)
  let pull () = (Stdlib.max 0.0 (Transform.apply1 h (bg ())), 0) in
  make ~name ~mean:model.Model.mean ~sigma2 ~hurst:model.Model.hurst pull

let of_model ?(name = "model") ?(order = 512) model rng =
  of_model_gen ~name ~order ~shift:None ~probe:None model rng

let of_model_twisted ?(name = "model-is") ?(order = 512) ~shift ?probe model rng =
  of_model_gen ~name ~order ~shift:(Some shift) ~probe model rng

let of_mpeg ?(name = "mpeg") ?(order = 512) ?(phase = 0) ?(priority = false) m rng =
  if phase < 0 then invalid_arg "Source.of_mpeg: phase < 0";
  let gop = m.Mpeg.gop in
  let bg = background_stream ~acf:m.Mpeg.background ~order rng in
  let klass kind =
    if not priority then 0
    else match kind with Frame.I -> 0 | Frame.P -> 1 | Frame.B -> 2
  in
  let transform kind = Ss_video.Composite.transform m.Mpeg.composite kind in
  (* GOP-pattern-averaged per-slot moments: the process is
     cyclostationary, so average E[h_k] and E[h_k^2] over one
     pattern. *)
  let period = Gop.length gop in
  let mean, sigma2 =
    let sum_m = ref 0.0 and sum_m2 = ref 0.0 in
    for i = 0 to period - 1 do
      let h = transform (Gop.kind_at gop i) in
      let mk, vk = transform_moments h in
      sum_m := !sum_m +. mk;
      sum_m2 := !sum_m2 +. vk +. (mk *. mk)
    done;
    let m1 = !sum_m /. float_of_int period in
    (m1, Stdlib.max 0.0 ((!sum_m2 /. float_of_int period) -. (m1 *. m1)))
  in
  let t = ref phase in
  let pull () =
    let kind = Gop.kind_at gop !t in
    incr t;
    let w = Stdlib.max 0.0 (Transform.apply1 (transform kind) (bg ())) in
    (w, klass kind)
  in
  make ~name ~mean ~sigma2 ~hurst:m.Mpeg.i_model.Model.hurst pull

(** Measurement-based conformance policing for admitted sources.

    The effective-bandwidth CAC ({!Admission}) trusts each source's
    declared [(mean, sigma2, H)] descriptor; this module checks the
    declaration against the traffic actually offered, online. Per
    source it keeps a windowed Welford accumulator (mean/variance
    over [config.window]-slot windows) and a streaming variance–time
    Hurst estimate ({!Ss_stats.Online_stats.Vt}); at every window
    close it issues a verdict and runs a sanction state machine.

    Conformance bands are LRD-aware: under the declared FGN model the
    window-of-W mean has standard deviation [sqrt(sigma2) * W^(H-1)]
    — far wider than the i.i.d. [1/sqrt(W)] — so the drift band is
    [max (mean_tol * mean) (envelope_sigmas * sigma_W)]. An honest
    H = 0.9 source is not flagged for being bursty; that is the
    point of policing self-similar traffic.

    Sanctions escalate: persistent drift ([grace] consecutive bad
    windows) first attempts {e renegotiation} — the CAC re-runs
    {!Admission.decide} with the old contract released and the
    measured descriptor as candidate; if granted the measured model
    becomes the new declared contract. A refused renegotiation
    demotes the source's priority class; the next strike throttles it
    (per-slot work clamped at its declared envelope
    [mean + envelope_sigmas * sqrt sigma2]); the next evicts it.
    Outright violation ([violation_factor]x the declared mean, or a
    NaN window) throttles immediately and evicts after [evict_after]
    consecutive bad windows; [corrupt_limit] corrupt slots (NaN /
    negative / infinite work, reported by {!Mux.run} via
    {!note_corrupt}) evict unconditionally. Throttles lift when the
    source conforms again; demotions, used-up renegotiations and
    evictions are sticky.

    All state is per-instance and single-threaded; {!Mux.run} calls
    {!observe}/{!note_corrupt} from its sequential admission loop, so
    policing composes with pooled source prefetch and stays
    bit-identical at any domain count. *)

type config = {
  window : int;  (** slots per measurement window (default 512) *)
  warmup_windows : int;  (** windows before verdicts start (default 1) *)
  mean_tol : float;  (** relative drift band on the mean (default 0.15) *)
  sigma2_tol : float;  (** relative upward band on sigma2 (default 1.5) *)
  hurst_tol : float;  (** absolute band on H (default 0.15) *)
  violation_factor : float;
      (** mean multiple that is an outright violation (default 2);
          the violation line is
          [max (violation_factor * mean) (mean + 2 * envelope_sigmas * sigma_W)] *)
  envelope_sigmas : float;  (** sigmas in drift bands and the throttle envelope (default 3) *)
  hurst_min_windows : int;
      (** closed windows before the variance-time H estimate is
          trusted in verdicts and renegotiated contracts (default 8) *)
  grace : int;  (** consecutive drifting windows before escalation (default 2) *)
  evict_after : int;  (** consecutive violating windows before eviction (default 3) *)
  corrupt_limit : int;  (** corrupt slots before unconditional eviction (default 16) *)
}

val default : config

type verdict =
  | Conforming
  | Drifting of Admission.descr  (** measured descriptor outside the declared bands *)
  | Violating of string  (** outright violation; human-readable reason *)

type event =
  | Flagged of verdict
  | Renegotiated of Admission.descr  (** contract replaced by the measured model *)
  | Demoted of int  (** cumulative priority-class demotion *)
  | Throttle_set of float  (** per-slot cap; [infinity] = throttle lifted *)
  | Evicted

type incident = { slot : int; source : string; event : event }

type t

val create : ?config:config -> ?cac:Admission.t -> Admission.descr array -> t
(** One policer state per source, judged against its declared
    descriptor. With [cac], renegotiations re-run admission against
    the live controller ({!Admission.renegotiate}) and evictions
    release the contract ({!Admission.evict}); without it,
    renegotiation is always granted.
    @raise Invalid_argument on an empty array, a malformed
    descriptor, or a malformed config. *)

val observe : t -> slot:int -> int -> float -> unit
(** Feed source [i]'s offered (pre-throttle) work for one slot.
    Closes a window — and possibly issues verdicts/sanctions — every
    [config.window] observations. Ignored for evicted sources.
    @raise Invalid_argument on an out-of-range index. *)

val note_corrupt : t -> slot:int -> int -> unit
(** Report a corrupt slot (NaN/negative/infinite work) for source
    [i]. Corrupt slots bypass {!observe} — they would poison the
    moment estimates — and evict the source at
    [config.corrupt_limit]. *)

val size : t -> int

val cap : t -> int -> float
(** Current per-slot cap; [infinity] = unthrottled. *)

val demotion : t -> int -> int
(** Cumulative priority-class demotion (added to the source's class
    by {!Mux.run}, saturating at the lowest class). *)

val evicted : t -> int -> bool

val detected_at : t -> int -> int option
(** Slot of the first flag against source [i], if any — the
    detection-latency numerator of [bench police]. *)

val declared : t -> int -> Admission.descr
(** Current contract (updated by renegotiation). *)

val measured : t -> int -> Admission.descr option
(** Measured descriptor of the last closed window. *)

val corrupt_slots : t -> int -> int

val incidents : t -> incident list
(** All incidents, in chronological order. *)

val incident_count : t -> int

val save : t -> Ss_checkpoint.W.t -> unit
val restore : t -> Ss_checkpoint.R.t -> unit
(** Checkpoint codec: full per-source policing state (windowed
    Welford, variance–time levels, escalation-ladder position, caps,
    eviction flags), the incident log, and — when the policer holds a
    CAC — the admitted-load list, so the post-run Norros overlay of a
    resumed run matches the uninterrupted one. {!restore} requires a
    policer created over the same source count (and CAC presence) and
    overwrites it in place, mid-window states included.
    @raise Ss_checkpoint.Corrupt on structure mismatch. *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_event : Format.formatter -> event -> unit
val pp_incident : Format.formatter -> incident -> unit

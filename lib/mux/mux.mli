(** Slotted shared-buffer statistical multiplexer (the paper's
    Section-1 motivation, run as an engine).

    Per slot, every source contributes one arrival; arrivals are
    admitted into a shared buffer in strict priority-class order
    (class 0 first). The admission room of a slot is
    [buffer + service - q]: work served during the slot frees space
    for that slot's arrivals. When a class does not fit, its sources
    share the remaining room proportionally to their offered work
    (fluid model) and the excess is counted as per-source loss. The
    queue then follows the Lindley recursion
    [q' = max 0 (q + admitted - service)] — with an infinite buffer
    and a single class this reproduces
    {!Ss_queueing.Trace_sim.queue_path} exactly (the equivalence is a
    unit test).

    The engine degrades gracefully instead of crashing: a source that
    raises {!Source.End_of_stream} departs cleanly (zero work from
    that slot on, departure slot in the report); a slot of corrupt
    work (NaN, negative, infinite) is zeroed and counted per source
    rather than poisoning the Lindley recursion; with a {!Police.t}
    attached, misbehaving sources are measured, throttled, demoted or
    evicted per its state machine while the run continues.

    All accounting is online ({!Ss_stats.Online_stats}): mean/max
    queue, delay and queue quantiles (P²), per-class virtual-delay
    quantiles, per-threshold overflow fractions, and per-source
    offered/admitted/lost totals — nothing stores a path, so a run is
    O(sources + order) resident memory regardless of [slots]. *)

type source_report = {
  name : string;
  offered : float;  (** total work presented to the buffer (post-policing) *)
  admitted : float;  (** work accepted into the buffer *)
  lost : float;  (** work dropped (buffer full) *)
  loss_fraction : float;  (** lost / offered (0 when nothing offered) *)
  mean_rate : float;  (** offered / slots *)
  peak_rate : float;  (** largest single-slot arrival *)
  corrupt_slots : int;  (** slots whose work was NaN/negative/infinite (zeroed) *)
  throttled : float;  (** work clamped off by the policer's per-slot cap *)
  discarded : float;  (** work discarded after policer eviction *)
  departed_at : int option;  (** slot of clean {!Source.End_of_stream} departure *)
}

type report = {
  slots : int;
  service : float;  (** per-slot service capacity *)
  buffer : float;  (** shared buffer ([infinity] = unbounded) *)
  offered_utilization : float;  (** aggregate offered rate / service *)
  carried_utilization : float;  (** served work / (service * slots) *)
  loss_fraction : float;  (** aggregate lost / offered *)
  mean_queue : float;
  max_queue : float;
  queue_quantiles : (float * float) list;  (** (p, P² estimate of q) *)
  delay_quantiles : (float * float) list;
      (** (p, P² estimate of virtual delay q/service, in slots) *)
  class_delay_quantiles : (int * (float * float) list) list;
      (** per priority class seen, (p, P² estimate of the virtual
          delay of a class-c arrival: backlog of classes <= c over
          service). Computed on a replay of the admitted work through
          strict-priority class backlogs, kept apart from the Lindley
          state; with a single class it coincides with
          [delay_quantiles] (exactly for an infinite buffer). *)
  overflow : (float * float) list;  (** (threshold b, fraction of slots with q > b) *)
  per_source : source_report array;
}

type checkpoint = {
  every : int;
      (** minimum slots between snapshots; the engine snapshots at the
          first block-boundary staging point at least [every] slots
          after the previous one, so the effective interval rounds up
          to the staging block *)
  save : slot:int -> (Ss_checkpoint.W.t -> unit) -> unit;
      (** called with the slot being snapshotted and a serializer that
          writes the full engine state (accumulators, estimators,
          per-source generator state, policer state) into the supplied
          writer; the callback owns framing and file I/O — typically
          {!Ss_checkpoint.to_file} with run metadata in [meta] *)
}
(** Periodic crash-safe snapshot hook for {!run}. Snapshots are taken
    only at staging points where every source sits exactly at slot
    [t], so the captured state is consistent and independent of the
    engine, block size, shard count and domain count: a run
    checkpointed under one configuration resumes bitwise under any
    other (enforced by test). *)

val run :
  ?pool:Ss_parallel.Pool.t ->
  ?shards:int ->
  ?buffer:float ->
  ?thresholds:float list ->
  ?quantiles:float list ->
  ?probe:(int -> float -> unit) ->
  ?police:Police.t ->
  ?trajectory:(slot:int -> served:float array -> delays:float array -> unit) ->
  ?checkpoint:checkpoint ->
  ?resume:Ss_checkpoint.R.t ->
  service:float ->
  slots:int ->
  Source.t array ->
  report
(** Drive the multiplexer for [slots] slots. [buffer] defaults to
    [infinity] (pure delay system, no loss); [thresholds] (default
    empty) are the queue levels whose exceedance fractions the report
    records; [quantiles] (default [0.5; 0.9; 0.99]) are the P²
    levels; [probe] (for tests/tracing) is called after every slot
    with the slot index and the updated queue length.

    {b Sharded engine.} The sources are partitioned into [shards]
    contiguous shards (default: the pool's domain count, or 1); each
    shard advances all its sources one whole staged block of slots
    through their block pulls and restages them slot-major, shards
    synchronizing only at a coarse per-block barrier
    ({!Ss_parallel.Barrier} — no per-slot or per-source cross-domain
    traffic). The sequential admission loop then consumes each slot's
    arrivals from one contiguous row. Results are {b bit-identical}
    at any shard count, any domain count, and to {!run_reference}:
    shards only choose which task pulls and restages a source's
    block, while every floating-point reduction runs on the caller in
    pinned source order. With [shards] larger than the source count,
    the excess shards are empty (clamped). A [probe] needs the strict
    per-slot lock-step of the reference engine (the importance
    sampler stops runs mid-slot), so probed runs are delegated to
    {!run_reference} verbatim; combining [probe] with an explicit
    [shards > 1] raises [Invalid_argument].

    With [trajectory], a per-source service/delay trajectory is
    exported: after every slot the sink is called with [served.(i)] —
    the work of source [i] served during that slot under strict
    priority across classes and fluid processor sharing within a
    class (each source's share of its class's service is proportional
    to its share of the class backlog) — and [delays.(i)], the
    virtual delay (in slots) a source-[i] arrival of that slot's
    priority class faces, i.e. the post-service backlog of classes at
    or above it over [service]. Both arrays are reused across slots:
    a sink that retains values must copy them. [Sum_i served.(i)]
    equals the slot's aggregate served work up to rounding, and the
    trajectory refines — never perturbs — the run: a run with a
    trajectory sink is bit-identical to one without
    ({!Ss_abr.Trajectory} is the standard consumer, feeding
    adaptive-bitrate clients a bandwidth process per source).

    With [police], each slot's offered work is first reported to the
    conformance monitor ({!Police.observe}), then the policer's
    sanctions are applied: work above the source's current cap is
    clamped (counted as [throttled]), the priority class is demoted
    by the source's current demotion (saturating at the lowest
    class), and an evicted source's work is discarded. A policer over
    conforming sources never alters traffic, so such a run is
    bit-identical to an unpoliced one. Policer calls happen on the
    sequential admission loop in slot order, composing with [pool].

    With [checkpoint], the engine periodically hands a full-state
    serializer to the callback (see {!type-checkpoint}); with
    [resume], the engine restores that state — over sources, policer
    and trajectory sink rebuilt identically by the caller — and
    continues from the snapshot slot, producing a report bitwise
    equal to the uninterrupted run's. Construction parameters are
    verified against the snapshot ({!Ss_checkpoint.Corrupt} on
    mismatch, with the offending field named). Checkpointing is
    observational: a run with [checkpoint] is bit-identical to one
    without.
    @raise Invalid_argument if [slots <= 0], [service <= 0],
    [buffer < 0], [shards < 1], no sources, a quantile outside (0,1),
    a negative threshold, a source yields a class outside [0, 63],
    [police] was created for a different number of sources, a
    checkpoint interval is < 1, checkpoint/resume is combined with
    [probe], or a source does not support checkpointing
    ({!Source.supports_checkpoint}).
    @raise Ss_checkpoint.Corrupt when [resume] does not match the
    reconstructed run or is structurally invalid. *)

val run_reference :
  ?pool:Ss_parallel.Pool.t ->
  ?buffer:float ->
  ?thresholds:float list ->
  ?quantiles:float list ->
  ?probe:(int -> float -> unit) ->
  ?police:Police.t ->
  ?trajectory:(slot:int -> served:float array -> delays:float array -> unit) ->
  ?checkpoint:checkpoint ->
  ?resume:Ss_checkpoint.R.t ->
  service:float ->
  slots:int ->
  Source.t array ->
  report
(** The pre-shard pooled-prefetch engine, kept verbatim: with [pool]
    each source is one fan-out item per staged block (source-major
    staging, the admission loop striding across it), every source
    still seeing one pull per slot in slot order. This is the
    bit-identity oracle the sharded {!run} is tested against and the
    baseline its speedup is benchmarked from; the two agree bitwise
    on every field of the report for identical inputs. Prefer {!run}
    everywhere else — the reference engine's per-slot strided reads
    and per-source fan-out items are exactly what the sharded engine
    exists to remove. Raises as {!run} (minus [shards]). *)

val equal_report : report -> report -> bool
(** Bitwise report equality: every float field (including nested
    quantile/overflow/per-source entries) compared by IEEE-754 bit
    pattern ([nan] equals [nan], [0.] differs from [-0.]), integer
    and name fields exactly. The equality the shard/domain-count
    identity tests and the CI smoke gate assert. *)

val pp_report : Format.formatter -> report -> unit
(** Multi-line text report: link summary, queue/delay statistics
    (per-class when more than one class appeared), overflow curve,
    per-source accounting table, and an incident table for sources
    with corrupt slots, throttling, discards or departures. *)
